(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Chapter 5 + the Chapter 6 oracle study), then
   measures the raw speed of the dynamic translator itself with
   Bechamel — the quantity behind the paper's "instructions needed to
   translate one instruction" overhead analysis (Section 5.1). *)

let translator_microbench () =
  print_newline ();
  print_endline "Translator micro-benchmarks (Bechamel)";
  print_endline "--------------------------------------";
  let open Bechamel in
  let w = Workloads.Registry.by_name "compress" in
  let mem, entry = Workloads.Wl.instantiate w in
  (* how many base instructions one cold page translation schedules *)
  let probe = Translator.Translate.create Translator.Params.default mem in
  ignore (Translator.Translate.entry probe entry);
  let insns = probe.totals.insns in
  let tests =
    Test.make_grouped ~name:"daisy"
      [ Test.make ~name:"translate-page"
          (Staged.stage (fun () ->
               let tr =
                 Translator.Translate.create Translator.Params.default mem
               in
               ignore (Translator.Translate.entry tr entry)));
        Test.make ~name:"interp-1k-insns"
          (Staged.stage (fun () ->
               let mem2, e2 = Workloads.Wl.instantiate w in
               let st = Ppc.Machine.create () in
               st.pc <- e2;
               let it = Ppc.Interp.create st mem2 in
               ignore (Ppc.Interp.run it ~fuel:1000))) ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) ->
        Printf.printf "%-28s %12.0f ns/run" name est;
        if name = "daisy/translate-page" then
          Printf.printf "  (%d base ins scheduled -> %.0f ns per base ins)"
            insns
            (est /. float_of_int insns);
        print_newline ()
      | _ -> ())
    results

let () =
  let t0 = Unix.gettimeofday () in
  print_endline "DAISY experiment suite: regenerating all tables and figures";
  Stats.Experiments.all ();
  (try translator_microbench ()
   with e ->
     Printf.printf "translator micro-benchmark skipped: %s\n"
       (Printexc.to_string e));
  Printf.printf "\nTotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
