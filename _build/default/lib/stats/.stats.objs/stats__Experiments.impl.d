lib/stats/experiments.ml: Array Baseline Hashtbl List Memsys Ppc Printf S390 Table Translator Vliw Vmm Workloads
