(* One entry point per table and figure of the paper's Chapter 5 (plus
   the Chapter 6 oracle study).  Each prints the same rows/series the
   paper reports, computed from our simulated runs; EXPERIMENTS.md
   records the paper-vs-measured comparison.

   Results are memoised: several tables share the same underlying run
   (e.g. the big-machine infinite-cache run feeds Tables 5.1/5.6/5.7). *)

module Params = Translator.Params
module Run = Vmm.Run
module Cfg = Vliw.Config

let workloads () = Workloads.Registry.all

let memo : (string, Run.result) Hashtbl.t = Hashtbl.create 64

let run_memo key ?params ?hierarchy (w : Workloads.Wl.t) =
  let k = w.name ^ "/" ^ key in
  match Hashtbl.find_opt memo k with
  | Some r -> r
  | None ->
    let r = Run.run ?params ?hierarchy w in
    Hashtbl.replace memo k r;
    r

(** Big-machine run, infinite caches. *)
let inf w = run_memo "inf" w

(** Big-machine run, the paper's 24-issue cache hierarchy. *)
let fin w = run_memo "fin" ~hierarchy:(Memsys.Hierarchy.paper_24issue ()) w

let eight_inf w =
  run_memo "8inf" ~params:{ Params.default with config = Cfg.eight_issue } w

let eight_fin w =
  run_memo "8fin"
    ~params:{ Params.default with config = Cfg.eight_issue }
    ~hierarchy:(Memsys.Hierarchy.paper_8issue ()) w

(* ------------------------------------------------------------------ *)

(** Table 5.1: pathlength reduction and code explosion. *)
let table_5_1 () =
  let rows =
    List.map
      (fun w ->
        let r = inf w in
        let pages = max 1 r.pages_translated in
        [ r.name; Table.f1 r.ilp_inf;
          Printf.sprintf "%dK"
            ((r.code_bytes / pages) / 1024) ])
      (workloads ())
  in
  let m = Table.mean (List.map (fun w -> (inf w).Run.ilp_inf) (workloads ())) in
  Table.render
    ~title:
      "Table 5.1: Pathlength reduction and code explosion (PowerPC -> VLIW)"
    ~header:[ "Program"; "PowerPC ins/VLIW"; "Avg translated page" ]
    (rows @ [ [ "MEAN"; Table.f1 m; "" ] ])

(** Figure 5.1: ILP for the ten machine configurations. *)
let figure_5_1 () =
  let configs = Array.to_list Cfg.figure_5_1 in
  let header = "Program" :: List.map (fun (c : Cfg.t) -> c.name) configs in
  let rows =
    List.map
      (fun w ->
        (inf w).Run.name
        :: List.map
             (fun (c : Cfg.t) ->
               let r =
                 run_memo ("cfg-" ^ c.name)
                   ~params:{ Params.default with config = c } w
               in
               Table.f2 r.ilp_inf)
             configs)
      (workloads ())
  in
  let means =
    "MEAN"
    :: List.map
         (fun (c : Cfg.t) ->
           Table.f2
             (Table.mean
                (List.map
                   (fun w ->
                     (run_memo ("cfg-" ^ c.name)
                        ~params:{ Params.default with config = c } w)
                       .Run.ilp_inf)
                   (workloads ()))))
         configs
  in
  Table.render
    ~title:
      "Figure 5.1: Pathlength reductions for different machine \
       configurations (ins/cycle)"
    ~header (rows @ [ means ])

(** Table 5.2: DAISY vs the traditional VLIW compiler (user code). *)
let table_5_2 () =
  let subset = [ "compress"; "lex"; "fgrep"; "sort"; "c_sieve" ] in
  let ws = List.map Workloads.Registry.by_name subset in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        let d = inf w in
        let t = run_memo "trad" ~params:(Baseline.Tradcomp.params w) w in
        [ w.name; Table.f1 d.ilp_inf; Table.f1 t.ilp_inf ])
      ws
  in
  let dm = Table.mean (List.map (fun w -> (inf w).Run.ilp_inf) ws) in
  let tm =
    Table.mean
      (List.map
         (fun w ->
           (run_memo "trad" ~params:(Baseline.Tradcomp.params w) w).Run.ilp_inf)
         ws)
  in
  Table.render
    ~title:"Table 5.2: ILP from DAISY vs a traditional VLIW compiler"
    ~header:[ "Program"; "DAISY ILP"; "Trad ILP" ]
    (rows @ [ [ "MEAN"; Table.f1 dm; Table.f1 tm ] ])

(** Table 5.3: finite caches, and the in-order base machine. *)
let table_5_3 () =
  let rows =
    List.map
      (fun w ->
        let i = inf w and f = fin w in
        let o = Baseline.Inorder.run w in
        [ i.Run.name; Table.f1 i.ilp_inf; Table.f1 f.ilp_fin; Table.f1 o.ipc ])
      (workloads ())
  in
  let m g = Table.mean (List.map g (workloads ())) in
  Table.render
    ~title:
      "Table 5.3: ILP with infinite/finite caches vs in-order base machine \
       (604E-class)"
    ~header:[ "Program"; "Inf Cache"; "Finite Cache"; "In-order base" ]
    (rows
    @ [ [ "MEAN";
          Table.f1 (m (fun w -> (inf w).Run.ilp_inf));
          Table.f1 (m (fun w -> (fin w).Run.ilp_fin));
          Table.f1 (m (fun w -> (Baseline.Inorder.run w).ipc)) ] ])

(** Table 5.4: loads/stores per VLIW and VLIWs between misses. *)
let table_5_4 () =
  let rows =
    List.map
      (fun w ->
        let r = fin w in
        let per v = float_of_int v /. float_of_int (max 1 r.vliws) in
        let between m =
          if m = 0 then "-" else Table.f1 (float_of_int r.vliws /. float_of_int m)
        in
        [ r.name; Table.f2 (per r.loads); Table.f2 (per r.stores);
          between r.load_misses; between r.store_misses;
          between (r.load_misses + r.store_misses) ])
      (workloads ())
  in
  Table.render
    ~title:
      "Table 5.4: Load, store, first-level cache characteristics \
       (VLIWs between misses)"
    ~header:
      [ "Program"; "Loads/VLIW"; "Stores/VLIW"; "Ld miss"; "St miss"; "Mem miss" ]
    rows

(** Figure 5.2: cache miss rates. *)
let figure_5_2 () =
  let rows =
    List.map
      (fun w ->
        let r = fin w in
        [ r.name; Table.pct r.miss_l0d; Table.pct r.miss_l0i;
          Table.pct r.miss_joint ])
      (workloads ())
  in
  Table.render
    ~title:"Figure 5.2: Cache miss rates (first-level D, first-level I, joint)"
    ~header:[ "Program"; "L0 DCache"; "L0 ICache"; "L1 JCache" ]
    rows

(** Table 5.5: the 8-issue machine. *)
let table_5_5 () =
  let rows =
    List.map
      (fun w ->
        let i = eight_inf w and f = eight_fin w in
        [ i.Run.name; Table.f1 i.ilp_inf; Table.f1 f.ilp_fin ])
      (workloads ())
  in
  let m g = Table.mean (List.map g (workloads ())) in
  Table.render ~title:"Table 5.5: Performance of the 8-issue machine"
    ~header:[ "Program"; "Inf Cache"; "Finite Cache" ]
    (rows
    @ [ [ "MEAN";
          Table.f1 (m (fun w -> (eight_inf w).Run.ilp_inf));
          Table.f1 (m (fun w -> (eight_fin w).Run.ilp_fin)) ] ])

(** Table 5.6: cross-page branches by type. *)
let table_5_6 () =
  let rows =
    List.map
      (fun w ->
        let r = inf w in
        let s = r.stats in
        let total = s.cross_direct + s.cross_lr + s.cross_ctr in
        [ r.name; Table.big s.cross_direct; Table.big s.cross_lr;
          Table.big s.cross_ctr; Table.big total;
          (if total = 0 then "-"
           else Table.f1 (float_of_int r.vliws /. float_of_int total)) ])
      (workloads ())
  in
  Table.render ~title:"Table 5.6: Cross-page branches by type"
    ~header:[ "Program"; "Direct"; "via Linkreg"; "via Counter"; "Total";
              "VLIWs/branch" ]
    rows

(** Table 5.7: run-time load/store aliasing. *)
let table_5_7 () =
  let rows =
    List.map
      (fun w ->
        let r = inf w in
        [ r.name; Table.big r.stats.aliases; Table.big r.vliws;
          (if r.stats.aliases = 0 then "-"
           else
             Table.big (r.vliws / r.stats.aliases)) ])
      (workloads ())
  in
  Table.render ~title:"Table 5.7: VLIWs per run-time load-store alias"
    ~header:[ "Program"; "Runtime aliases"; "VLIWs exec"; "VLIWs/alias" ]
    rows

let page_sizes = [ 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let page_run size w =
  run_memo
    (Printf.sprintf "page-%d" size)
    ~params:{ Params.default with page_size = size }
    w

(** Figure 5.3: ILP versus translation page size. *)
let figure_5_3 () =
  let header = "Program" :: List.map string_of_int page_sizes in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        w.name
        :: List.map (fun s -> Table.f2 (page_run s w).Run.ilp_inf) page_sizes)
      (workloads ())
  in
  Table.render ~title:"Figure 5.3: ILP versus input page size (bytes)"
    ~header rows

(** Figure 5.4: total translated code size versus page size. *)
let figure_5_4 () =
  let header = "Program" :: List.map string_of_int page_sizes in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        w.name
        :: List.map
             (fun s -> Table.big (page_run s w).Run.code_bytes)
             page_sizes)
      (workloads ())
  in
  Table.render
    ~title:"Figure 5.4: Total VLIW code size (bytes) versus input page size"
    ~header rows

(** Figure 5.5: direct cross-page jumps versus page size. *)
let figure_5_5 () =
  let header = "Program" :: List.map string_of_int page_sizes in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        w.name
        :: List.map
             (fun s -> Table.big (page_run s w).Run.stats.cross_direct)
             page_sizes)
      (workloads ())
  in
  Table.render
    ~title:"Figure 5.5: Direct cross-page jumps versus input page size"
    ~header rows

(** Table 5.8: the analytic compile-overhead model of Section 5.1. *)
let table_5_8 () =
  let i = 1024.0 in
  let pr = 1.5 and pv = 4.0 and pc = 4.0 in
  let ghz = 1.0e9 in
  let total_ins = 8.0e9 in
  let rows =
    List.map
      (fun (n_compile, pages) ->
        let reuse = total_ins /. (float_of_int pages *. i) in
        let t_page = float_of_int n_compile *. i /. pc in
        let t_base = total_ins /. pr /. ghz in
        let t_vliw =
          (total_ins /. pv /. ghz) +. (float_of_int pages *. t_page /. ghz)
        in
        [ string_of_int n_compile; string_of_int pages;
          Table.big (int_of_float reuse);
          Printf.sprintf "%+.0f%%" (100.0 *. (t_vliw -. t_base) /. t_base) ])
      [ (4000, 200); (4000, 1000); (4000, 10000);
        (1000, 200); (1000, 1000); (1000, 10000) ]
  in
  Table.render
    ~title:
      "Table 5.8: Overhead of dynamic compilation (analytic model, \
       Eq. 5.1-5.3)"
    ~header:[ "Ins to compile 1 ins"; "Unique pages"; "Reuse factor";
              "Time change" ]
    rows;
  (* the break-even derivations of Section 5.1 *)
  let breakeven ~n ~pc ~pr ~pv =
    (* t = r * i * (1/PR - 1/PV);  t = n * i / pc  =>  r *)
    let t = float_of_int n *. i /. pc in
    t /. (i *. ((1.0 /. pr) -. (1.0 /. pv)))
  in
  Printf.printf
    "\nBreak-even reuse (realistic: 3900 ins/ins, PR=1.5, PV=4): r = %.0f \
     (paper: 2340)\n"
    (breakeven ~n:3900 ~pc:4.0 ~pr:1.5 ~pv:4.0);
  Printf.printf
    "Break-even reuse (optimistic: 200 ins/ins, PR=1.5, PV=inf): r = %.0f \
     (paper: 60)\n"
    (let t = 200.0 *. i /. 5.0 in
     t /. (i /. 1.5))

(** Table 5.9: reuse factors for our workload suite. *)
let table_5_9 () =
  let rows =
    List.map
      (fun w ->
        let r = inf w in
        [ r.name; Table.big r.base_insns; Table.big r.static_insns;
          Table.big (r.base_insns / max 1 r.static_insns) ])
      (workloads ())
  in
  Table.render
    ~title:
      "Table 5.9: Reuse factors (dynamic instructions / static instructions \
       touched)"
    ~header:[ "Program"; "Dynamic ins"; "Static ins"; "Reuse factor" ]
    rows

(** Chapter 6: oracle parallelism vs DAISY. *)
let oracle () =
  let rows =
    List.map
      (fun w ->
        let d = inf w in
        let o = Baseline.Oracle.run w in
        [ d.Run.name; Table.f1 d.ilp_inf; Table.f1 o.ilp ])
      (workloads ())
  in
  Table.render
    ~title:
      "Chapter 6: Oracle parallelism (perfect prediction/disambiguation, \
       unlimited resources) vs DAISY"
    ~header:[ "Program"; "DAISY ILP"; "Oracle ILP" ]
    rows

(** DESIGN.md ablations: each translator feature on/off, mean ILP. *)
let ablations () =
  let variants =
    [ ("baseline (all on)", Params.default);
      ("no renaming", { Params.default with rename = false });
      ("no load speculation", { Params.default with load_spec = false });
      ("no store forwarding", { Params.default with store_forward = false });
      ("single path", { Params.default with multipath = false });
      ("window 24", { Params.default with window = 24 });
      ("join limit 0", { Params.default with join_limit = 0 });
      ("guarded indirect inlining", { Params.default with guard_indirect = true });
      ("adaptive alias response", { Params.default with adaptive_alias = true }) ]
  in
  let rows =
    List.map
      (fun (name, params) ->
        let ilps =
          List.map
            (fun w -> (run_memo ("abl-" ^ name) ~params w).Run.ilp_inf)
            (workloads ())
        in
        let aliases =
          List.fold_left
            (fun acc w ->
              acc + (run_memo ("abl-" ^ name) ~params w).Run.stats.aliases)
            0 (workloads ())
        in
        [ name; Table.f2 (Table.mean ilps); Table.big aliases ])
      variants
  in
  Table.render ~title:"Ablations: translator features (mean ILP, 24-issue)"
    ~header:[ "Variant"; "Mean ILP"; "Total aliases" ]
    rows

(** Retargetability (Section 2.2 / Appendix E): the same machinery runs
    an S/390 binary; reports ILP with and without the Chapter 6 guarded
    inlining of its register-indirect branches. *)
let s390_retarget () =
  let module A = S390.Asm in
  let build a =
    A.org a 0x100;
    A.word a Ppc.Mem.mmio_halt;
    A.org a 0x800;
    A.label a "main";
    A.set_base a "base";
    A.la a 10 0x200;
    A.ins a (SLL (10, 4));
    (* seed 128 bytes *)
    A.la a 5 128;
    A.la a 7 0;
    A.label a "seed";
    A.lr a 8 7;
    A.ins a (SLL (8, 3));
    A.ins a (RX (STC, 8, 7, 10, 0));
    A.la a 9 1;
    A.ar a 7 9;
    A.bct a 5 "seed";
    (* 200 outer iterations: copy, scan, checksum *)
    A.la a 11 200;
    A.la a 2 0;
    A.label a "outer";
    A.ins a (MVC (11, 256, 10, 0, 10));
    A.la a 5 32;
    A.la a 7 0;
    A.label a "sum";
    A.ins a (RX (IC, 8, 7, 10, 0));
    A.ar a 2 8;
    A.la a 9 1;
    A.ar a 7 9;
    A.bct a 5 "sum";
    A.bal a 14 "mix";
    A.bct a 11 "outer";
    A.ins a (RX (L, 3, 0, 0, 0x100));
    A.ins a (RX (ST_, 2, 0, 3, 0));
    A.label a "mix";
    A.ins a (SRL (2, 1));
    A.la a 9 7;
    A.ar a 2 9;
    A.br a 14
  in
  let measure params =
    let mem = Ppc.Mem.create 0x40000 in
    let a = A.create () in
    build a;
    let labels = A.assemble a mem in
    let st0 = Ppc.Machine.create () in
    st0.pc <- A.resolve labels "main";
    let it = S390.Interp.create st0 mem in
    let rcode = S390.Interp.run it ~fuel:2_000_000 in
    let mem2 = Ppc.Mem.create 0x40000 in
    let a2 = A.create () in
    build a2;
    let labels2 = A.assemble a2 mem2 in
    let vmm = Vmm.Monitor.create ~params ~frontend:S390.Frontend.s390 mem2 in
    let dcode =
      Vmm.Monitor.run vmm ~entry:(A.resolve labels2 "main") ~fuel:4_000_000
    in
    assert (rcode = dcode && Ppc.Machine.equal st0 vmm.st.m);
    ( float_of_int it.icount /. float_of_int (max 1 (vmm.stats.vliws + vmm.stats.interp_insns)),
      vmm.stats.cross_gpr,
      it.icount )
  in
  let base_ilp, base_x, insns = measure Params.default in
  let g_ilp, g_x, _ =
    measure { Params.default with guard_indirect = true }
  in
  Table.render
    ~title:
      "Retargetability: an S/390 program through the same translator/VMM        (Appendix E)"
    ~header:[ "Variant"; "ILP"; "Reg-indirect cross-page"; "S/390 ins" ]
    [ [ "plain"; Table.f2 base_ilp; Table.big base_x; Table.big insns ];
      [ "guarded inlining (Ch. 6)"; Table.f2 g_ilp; Table.big g_x; "" ] ];
  print_endline
    "(S/390 ILP is dominated by its decrement-and-branch back edges,";
  print_endline
    " which are register-indirect and deliberately not guarded -- the";
  print_endline
    " paper's observation that constant propagation and profile feedback";
  print_endline " are crucial for S/390.)"

(** Everything, in paper order. *)
let all () =
  table_5_1 ();
  figure_5_1 ();
  table_5_2 ();
  table_5_3 ();
  table_5_4 ();
  figure_5_2 ();
  table_5_5 ();
  table_5_6 ();
  table_5_7 ();
  figure_5_3 ();
  figure_5_4 ();
  figure_5_5 ();
  table_5_8 ();
  table_5_9 ();
  oracle ();
  ablations ();
  s390_retarget ()
