(* compress: LZW compression of ~16 KB of text, with the dictionary in
   an open-addressed hash table — the same structure (hashing, probing,
   code emission) as SPECint95 compress's inner loop.
   Exit code: bytes of output + number of codes assigned. *)

open Ppc

let text_len = 16 * 1024
let ht_slots = 8192  (* power of two; 8 bytes per slot: key, code *)

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.lwz a 15 14 0;              (* n *)
  Asm.addi a 14 14 4;
  Asm.li32 a 16 Wl.out_base;      (* out ptr *)
  Asm.li32 a 17 Wl.scratch_base;  (* hash table *)
  (* clear hash table *)
  Asm.li32 a 4 (ht_slots * 2);
  Asm.mtctr a 4;
  Asm.li a 5 0;
  Asm.mr a 6 17;
  Asm.label a "clear";
  Asm.stw a 5 6 0;
  Asm.addi a 6 6 4;
  Asm.bdnz a "clear";
  Asm.li32 a 18 256;              (* next_code *)
  Asm.lbz a 19 14 0;              (* prefix = first char *)
  Asm.li a 20 1;                  (* i *)
  Asm.label a "loop";
  Asm.cmpw a 20 15;
  Asm.bc a Asm.Ge "finish";
  Asm.lbzx a 4 14 20;             (* c *)
  (* key = (prefix << 8 | c) + 1 *)
  Asm.slwi a 5 19 8;
  Asm.or_ a 5 5 4;
  Asm.addi a 5 5 1;
  (* h = (key * 0x9E3779B1) >> 19 masked *)
  Asm.li32 a 6 0x9E3779B1;
  Asm.mullw a 7 5 6;
  Asm.srwi a 7 7 19;
  Asm.ins a (Rlwinm (7, 7, 0, 32 - 13, 31, false));  (* land (8192-1) *)
  Asm.label a "probe";
  Asm.slwi a 8 7 3;
  Asm.add a 8 8 17;               (* slot addr *)
  Asm.lwz a 9 8 0;                (* slot key *)
  Asm.cmpwi a 9 0;
  Asm.bc a Asm.Eq "miss";
  Asm.cmpw a 9 5;
  Asm.bc a Asm.Eq "hit";
  Asm.addi a 7 7 1;
  Asm.ins a (Rlwinm (7, 7, 0, 32 - 13, 31, false));
  Asm.b a "probe";
  Asm.label a "hit";
  Asm.lwz a 19 8 4;               (* prefix = stored code *)
  Asm.b a "next";
  Asm.label a "miss";
  (* emit prefix; insert key -> next_code; prefix = c *)
  Asm.mr a 3 19;
  Asm.bl a "putcode";
  Asm.stw a 5 8 0;
  Asm.stw a 18 8 4;
  Asm.addi a 18 18 1;
  Asm.mr a 19 4;
  Asm.label a "next";
  Asm.addi a 20 20 1;
  Asm.b a "loop";
  Asm.label a "finish";
  Asm.mr a 3 19;
  Asm.bl a "putcode";
  (* result = output bytes + codes assigned *)
  Asm.li32 a 4 Wl.out_base;
  Asm.sub a 5 16 4;
  Asm.add a 3 5 18;
  Wl.sys_exit a;
  (* the output routine, on its own page, like compress's output() *)
  Asm.org a 0x2000;
  Asm.label a "putcode";
  Asm.sth a 3 16 0;
  Asm.addi a 16 16 2;
  Asm.blr a

let workload : Wl.t =
  { name = "compress";
    description = "LZW compression with an open-addressed dictionary";
    build;
    init =
      (fun mem _ ->
        Wl.put_sized_string mem Wl.data_base (Inputs.text ~seed:95 text_len));
    mem_size = Wl.default_mem_size;
    fuel = 20_000_000 }
