(* Deterministic input generators for the benchmarks.

   The paper runs AIX utilities on real files; we synthesise inputs with
   a fixed-seed xorshift PRNG so every run (and the reference/DAISY
   pair of runs in particular) sees identical data. *)

type rng = { mutable s : int }

let rng seed = { s = (if seed = 0 then 0x9E3779B9 else seed land 0xFFFF_FFFF) }

let next r =
  (* xorshift32 *)
  let x = r.s in
  let x = x lxor (x lsl 13) land 0xFFFF_FFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xFFFF_FFFF in
  r.s <- x;
  x

let below r n = next r mod n

let words =
  [| "the"; "quick"; "brown"; "fox"; "jumps"; "over"; "lazy"; "dog";
     "daisy"; "vliw"; "translation"; "page"; "entry"; "branch"; "cache";
     "register"; "commit"; "precise"; "exception"; "oracle"; "parallel";
     "if"; "while"; "return"; "int"; "char"; "for"; "else"; "struct" |]

(** Pseudo-English text of roughly [len] bytes (words, digits,
    punctuation, newlines). *)
let text ?(seed = 12345) len =
  let r = rng seed in
  let b = Buffer.create len in
  while Buffer.length b < len do
    (match below r 10 with
    | 0 -> Buffer.add_string b (string_of_int (below r 100000))
    | 1 -> Buffer.add_string b "== !="
    | 2 ->
      Buffer.add_string b (words.(below r (Array.length words)));
      Buffer.add_string b "(x)"
    | _ -> Buffer.add_string b words.(below r (Array.length words)));
    Buffer.add_char b (if below r 8 = 0 then '\n' else ' ')
  done;
  Buffer.sub b 0 len

(** [len] pseudo-random 31-bit non-negative integers. *)
let ints ?(seed = 999) len =
  let r = rng seed in
  Array.init len (fun _ -> next r land 0x7FFF_FFFF)

(** Text with a known number of occurrences of [needle] sprinkled in. *)
let text_with_needles ?(seed = 777) ~needle ~count len =
  let base = text ~seed len in
  let b = Bytes.of_string base in
  let r = rng (seed + 1) in
  let m = String.length needle in
  let step = len / (count + 1) in
  for i = 1 to count do
    let pos = (i * step) + below r (step / 2) in
    if pos + m < len then Bytes.blit_string needle 0 b pos m
  done;
  Bytes.to_string b
