lib/workloads/compress.ml: Asm Inputs Ppc Wl
