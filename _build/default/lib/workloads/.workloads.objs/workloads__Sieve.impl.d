lib/workloads/sieve.ml: Asm Ppc Wl
