lib/workloads/fgrep.ml: Asm Inputs Ppc Wl
