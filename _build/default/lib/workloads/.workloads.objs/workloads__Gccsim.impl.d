lib/workloads/gccsim.ml: Asm Hashtbl List Mem Ppc Printf Wl
