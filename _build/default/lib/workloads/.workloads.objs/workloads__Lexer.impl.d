lib/workloads/lexer.ml: Asm Bytes Char Inputs List Mem Ppc Wl
