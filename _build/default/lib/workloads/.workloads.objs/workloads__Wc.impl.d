lib/workloads/wc.ml: Asm Inputs Ppc Wl
