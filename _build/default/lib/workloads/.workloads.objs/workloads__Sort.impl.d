lib/workloads/sort.ml: Asm Inputs Ppc Wl
