lib/workloads/inputs.ml: Array Buffer Bytes String
