lib/workloads/registry.ml: Cmp Compress Fgrep Gccsim Lexer List Printf Sieve Sort String Wc Wl
