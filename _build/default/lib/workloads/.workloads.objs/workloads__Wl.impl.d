lib/workloads/wl.ml: Array Asm Hashtbl Interp Mem Ppc String
