lib/workloads/cmp.ml: Asm Bytes Inputs Mem Ppc Wl
