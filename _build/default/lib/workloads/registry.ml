(* The benchmark registry, in the paper's Table 5.1 order. *)

let all : Wl.t list =
  [ Compress.workload;
    Lexer.workload;
    Fgrep.workload;
    Wc.workload;
    Cmp.workload;
    Sort.workload;
    Sieve.workload;
    Gccsim.workload ]

let by_name name =
  match List.find_opt (fun (w : Wl.t) -> w.name = name) all with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %S (have: %s)" name
         (String.concat ", " (List.map (fun (w : Wl.t) -> w.name) all)))
