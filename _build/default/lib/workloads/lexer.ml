(* lex: a table-driven DFA lexer over ~24 KB of text, mirroring the
   inner loop of the classic lex(1)-generated scanners: per character,
   a class lookup, a transition lookup, and token accounting on accept
   states.  Exit code: weighted token counts. *)

open Ppc

let text_len = 24 * 1024

(* Character classes. *)
let cls_other = 0
let cls_alpha = 1
let cls_digit = 2
let cls_space = 3
let cls_punct = 4
let n_cls = 5

(* States.  Bit 3 of a transition target marks "token completed of kind
   (target land 7)" before entering the low-3-bit state. *)
let st_start = 0
let st_ident = 1
let st_num = 2
let n_states = 3

let tok_ident = 1
let tok_num = 2
let tok_punct = 3

let class_table () =
  let t = Bytes.make 256 (Char.chr cls_other) in
  for c = Char.code 'a' to Char.code 'z' do
    Bytes.set t c (Char.chr cls_alpha)
  done;
  for c = Char.code 'A' to Char.code 'Z' do
    Bytes.set t c (Char.chr cls_alpha)
  done;
  for c = Char.code '0' to Char.code '9' do
    Bytes.set t c (Char.chr cls_digit)
  done;
  List.iter
    (fun c -> Bytes.set t (Char.code c) (Char.chr cls_space))
    [ ' '; '\t'; '\n' ];
  List.iter
    (fun c -> Bytes.set t (Char.code c) (Char.chr cls_punct))
    [ '('; ')'; '='; '!'; ';'; ','; '+'; '-' ];
  Bytes.to_string t

(* transition[state][class] = (emit lsl 3) lor next_state *)
let transition_table () =
  let t = Bytes.make (n_states * 8) '\000' in
  let set st cl ?(emit = 0) next =
    Bytes.set t ((st * 8) + cl) (Char.chr ((emit lsl 3) lor next))
  in
  (* start *)
  set st_start cls_alpha st_ident;
  set st_start cls_digit st_num;
  set st_start cls_space st_start;
  set st_start cls_punct ~emit:tok_punct st_start;
  set st_start cls_other st_start;
  (* ident *)
  set st_ident cls_alpha st_ident;
  set st_ident cls_digit st_ident;
  set st_ident cls_space ~emit:tok_ident st_start;
  set st_ident cls_punct ~emit:tok_ident st_start;
  set st_ident cls_other ~emit:tok_ident st_start;
  (* number *)
  set st_num cls_digit st_num;
  set st_num cls_alpha ~emit:tok_num st_ident;
  set st_num cls_space ~emit:tok_num st_start;
  set st_num cls_punct ~emit:tok_num st_start;
  set st_num cls_other ~emit:tok_num st_start;
  Bytes.to_string t

let cls_base = Wl.table_base          (* 256 bytes *)
let trans_base = Wl.table_base + 0x100
let counts_base = Wl.table_base + 0x200  (* 8 words *)

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.lwz a 15 14 0;             (* n *)
  Asm.addi a 14 14 4;
  Asm.li32 a 16 cls_base;
  Asm.li32 a 17 trans_base;
  Asm.li32 a 18 counts_base;
  Asm.li a 19 st_start;          (* state *)
  Asm.li a 20 0;                 (* i *)
  Asm.label a "loop";
  Asm.cmpw a 20 15;
  Asm.bc a Asm.Ge "done";
  Asm.lbzx a 4 14 20;            (* c *)
  Asm.lbzx a 5 16 4;             (* class *)
  Asm.slwi a 6 19 3;
  Asm.add a 6 6 5;
  Asm.lbzx a 7 17 6;             (* transition *)
  Asm.ins a (Rlwinm (19, 7, 0, 29, 31, false));  (* state = t land 7 *)
  Asm.srwi a 8 7 3;              (* emit kind *)
  Asm.cmpwi a 8 0;
  Asm.bc a Asm.Eq "noemit";
  Asm.mr a 3 8;
  Asm.bl a "tally";              (* token accounting on its own page *)
  Asm.label a "noemit";
  Asm.addi a 20 20 1;
  Asm.b a "loop";
  Asm.label a "done";
  (* result = idents + 1000*nums + 100000*puncts *)
  Asm.lwz a 4 18 (4 * tok_ident);
  Asm.lwz a 5 18 (4 * tok_num);
  Asm.lwz a 6 18 (4 * tok_punct);
  Asm.ins a (Mulli (5, 5, 1000));
  Asm.li32 a 7 100000;
  Asm.mullw a 6 6 7;
  Asm.add a 3 4 5;
  Asm.add a 3 3 6;
  Wl.sys_exit a;
  (* per-token bookkeeping, like the action bodies of a real scanner *)
  Asm.org a 0x2000;
  Asm.label a "tally";
  Asm.slwi a 24 3 2;
  Asm.lwzx a 25 18 24;
  Asm.addi a 25 25 1;
  Asm.stwx a 25 18 24;
  Asm.blr a

let workload : Wl.t =
  { name = "lex";
    description = "table-driven DFA lexer over generated text";
    build;
    init =
      (fun mem _ ->
        Wl.put_sized_string mem Wl.data_base (Inputs.text ~seed:90210 text_len);
        Mem.blit_string mem cls_base (class_table ());
        Mem.blit_string mem trans_base (transition_table ()));
    mem_size = Wl.default_mem_size;
    fuel = 10_000_000 }
