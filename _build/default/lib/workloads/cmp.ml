(* cmp: byte-compare two 16 KB buffers that differ near the end.
   Exit code: index of the first difference. *)

open Ppc

let buf_len = 16 * 1024
let diff_at = buf_len - 250

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.li32 a 15 Wl.data2_base;
  Asm.li32 a 16 buf_len;
  Asm.li a 17 0;                (* index *)
  Asm.label a "loop";
  Asm.cmpw a 17 16;
  Asm.bc a Asm.Ge "equal";
  Asm.lbzx a 4 14 17;
  Asm.lbzx a 5 15 17;
  Asm.cmpw a 4 5;
  Asm.bc a Asm.Ne "diff";
  Asm.addi a 17 17 1;
  Asm.b a "loop";
  Asm.label a "equal";
  Asm.li a 3 (-1);
  Wl.sys_exit a;
  Asm.label a "diff";
  Asm.mr a 3 17;
  Wl.sys_exit a

let workload : Wl.t =
  { name = "cmp";
    description = "byte compare of two 16K buffers";
    build;
    init =
      (fun mem _ ->
        let s = Inputs.text ~seed:31337 buf_len in
        Mem.blit_string mem Wl.data_base s;
        let b = Bytes.of_string s in
        Bytes.set b diff_at 'Z';
        Mem.blit_string mem Wl.data2_base (Bytes.to_string b));
    mem_size = Wl.default_mem_size;
    fuel = 10_000_000 }
