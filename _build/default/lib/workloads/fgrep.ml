(* fgrep: count occurrences of a fixed pattern in ~24 KB of text, with
   a first-character filter like the real utility's fast path.
   Exit code: number of matches. *)

open Ppc

let text_len = 24 * 1024
let needle = "zyxq"
let planted = 37

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.lwz a 15 14 0;             (* n *)
  Asm.addi a 14 14 4;            (* text *)
  Asm.li32 a 16 Wl.table_base;   (* pattern copied here by init *)
  Asm.lwz a 17 16 0;             (* m *)
  Asm.addi a 16 16 4;
  Asm.lbz a 18 16 0;             (* first pattern byte *)
  Asm.sub a 19 15 17;            (* last start = n - m *)
  Asm.li a 20 0;                 (* i *)
  Asm.li a 21 0;                 (* count *)
  Asm.label a "outer";
  Asm.cmpw a 20 19;
  Asm.bc a Asm.Gt "done";
  Asm.lbzx a 4 14 20;
  Asm.cmpw a 4 18;
  Asm.bc a Asm.Ne "next";
  (* inner compare from offset 1 *)
  Asm.li a 5 1;
  Asm.label a "inner";
  Asm.cmpw a 5 17;
  Asm.bc a Asm.Ge "hit";
  Asm.add a 6 20 5;
  Asm.lbzx a 7 14 6;
  Asm.lbzx a 8 16 5;
  Asm.cmpw a 7 8;
  Asm.bc a Asm.Ne "next";
  Asm.addi a 5 5 1;
  Asm.b a "inner";
  Asm.label a "hit";
  Asm.addi a 21 21 1;
  Asm.label a "next";
  Asm.addi a 20 20 1;
  Asm.b a "outer";
  Asm.label a "done";
  Asm.mr a 3 21;
  Wl.sys_exit a

let workload : Wl.t =
  { name = "fgrep";
    description = "fixed-string search over generated text";
    build;
    init =
      (fun mem _ ->
        Wl.put_sized_string mem Wl.data_base
          (Inputs.text_with_needles ~needle ~count:planted text_len);
        Wl.put_sized_string mem Wl.table_base needle);
    mem_size = Wl.default_mem_size;
    fuel = 10_000_000 }
