(* wc: line/word/character count over ~24 KB of generated text.
   Exit code: words + lines. *)

open Ppc

let text_len = 24 * 1024

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.lwz a 15 14 0;        (* length *)
  Asm.addi a 16 14 4;       (* ptr *)
  Asm.li a 17 0;            (* lines *)
  Asm.li a 18 0;            (* words *)
  Asm.li a 19 0;            (* chars *)
  Asm.li a 20 0;            (* in_word *)
  Asm.label a "loop";
  Asm.cmpwi a 15 0;
  Asm.bc a Asm.Eq "done";
  Asm.lbz a 4 16 0;
  Asm.addi a 19 19 1;
  Asm.cmpwi a 4 10;
  Asm.bc a Asm.Ne "notnl";
  Asm.addi a 17 17 1;
  Asm.label a "notnl";
  Asm.cmpwi a 4 32;
  Asm.bc a Asm.Eq "space";
  Asm.cmpwi a 4 10;
  Asm.bc a Asm.Eq "space";
  Asm.cmpwi a 4 9;
  Asm.bc a Asm.Eq "space";
  Asm.cmpwi a 20 0;
  Asm.bc a Asm.Ne "cont";
  Asm.addi a 18 18 1;
  Asm.li a 20 1;
  Asm.b a "cont";
  Asm.label a "space";
  Asm.li a 20 0;
  Asm.label a "cont";
  Asm.addi a 16 16 1;
  Asm.addi a 15 15 (-1);
  Asm.b a "loop";
  Asm.label a "done";
  Asm.add a 3 18 17;
  Wl.sys_exit a

let workload : Wl.t =
  { name = "wc";
    description = "line/word/char count over generated text";
    build;
    init =
      (fun mem _ ->
        Wl.put_sized_string mem Wl.data_base (Inputs.text ~seed:4242 text_len));
    mem_size = Wl.default_mem_size;
    fuel = 10_000_000 }
