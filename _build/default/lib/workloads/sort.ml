(* sort: recursive quicksort over 2048 random words, followed by a
   sortedness check.  Like the real utility the paper measures, this is
   call-heavy: the recursive routine lives on its own code page, saves
   the link register in a stack frame, and returns through it — which is
   what fills the via-Linkreg column of Table 5.6.
   Exit code: a positional checksum of the sorted array, or 0xBAD. *)

open Ppc

let n = 2048
let stack_top = 0x3F000

(* register conventions: r14 = array base (global), r1 = stack pointer,
   r3/r4 = lo/hi arguments, r29..r31 = callee-saved locals *)

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;
  Asm.li32 a 1 stack_top;
  Asm.li a 3 0;
  Asm.li32 a 4 (n - 1);
  Asm.bl a "quicksort";
  (* verify ascending and checksum *)
  Asm.li a 21 0;                   (* checksum *)
  Asm.li a 22 0;                   (* prev *)
  Asm.li a 23 0;                   (* index *)
  Asm.label a "vloop";
  Asm.cmpwi a 23 n;
  Asm.bc a Asm.Ge "vdone";
  Asm.slwi a 7 23 2;
  Asm.lwzx a 8 14 7;
  Asm.cmplw a 8 22;
  Asm.bc a Asm.Lt "bad";
  Asm.xor a 21 21 8;
  Asm.addi a 21 21 1;
  Asm.mr a 22 8;
  Asm.addi a 23 23 1;
  Asm.b a "vloop";
  Asm.label a "bad";
  Asm.li32 a 3 0xBAD;
  Wl.sys_exit a;
  Asm.label a "vdone";
  Asm.mr a 3 21;
  Wl.sys_exit a;

  (* the recursive routine, on its own page *)
  Asm.org a 0x2000;
  Asm.label a "quicksort";
  Asm.cmpw a 3 4;
  Asm.bc a Asm.Ge "qs_ret";
  Asm.mflr a 0;
  Asm.ins a (Stwu (1, 1, -16));
  Asm.stw a 0 1 12;
  Asm.stw a 29 1 8;
  Asm.stw a 30 1 4;
  Asm.stw a 31 1 0;
  Asm.mr a 30 3;                   (* lo *)
  Asm.mr a 31 4;                   (* hi *)
  (* partition with pivot a[hi] *)
  Asm.slwi a 8 31 2;
  Asm.lwzx a 5 14 8;               (* pivot *)
  Asm.addi a 6 30 (-1);            (* i *)
  Asm.mr a 7 30;                   (* j *)
  Asm.label a "qs_part";
  Asm.cmpw a 7 31;
  Asm.bc a Asm.Ge "qs_pdone";
  Asm.slwi a 8 7 2;
  Asm.lwzx a 9 14 8;
  Asm.cmpw a 9 5;
  Asm.bc a Asm.Gt "qs_pnext";
  Asm.addi a 6 6 1;
  Asm.slwi a 10 6 2;
  Asm.lwzx a 11 14 10;
  Asm.stwx a 9 14 10;
  Asm.stwx a 11 14 8;
  Asm.label a "qs_pnext";
  Asm.addi a 7 7 1;
  Asm.b a "qs_part";
  Asm.label a "qs_pdone";
  Asm.addi a 6 6 1;
  Asm.slwi a 10 6 2;
  Asm.lwzx a 11 14 10;
  Asm.slwi a 8 31 2;
  Asm.lwzx a 12 14 8;
  Asm.stwx a 12 14 10;
  Asm.stwx a 11 14 8;
  Asm.mr a 29 6;                   (* pivot index *)
  (* recurse on both halves *)
  Asm.mr a 3 30;
  Asm.addi a 4 29 (-1);
  Asm.bl a "quicksort";
  Asm.addi a 3 29 1;
  Asm.mr a 4 31;
  Asm.bl a "quicksort";
  Asm.lwz a 0 1 12;
  Asm.mtlr a 0;
  Asm.lwz a 29 1 8;
  Asm.lwz a 30 1 4;
  Asm.lwz a 31 1 0;
  Asm.addi a 1 1 16;
  Asm.label a "qs_ret";
  Asm.blr a

let workload : Wl.t =
  { name = "sort";
    description = "recursive quicksort of 2048 random words + verify";
    build;
    init =
      (fun mem _ -> Wl.put_int_array mem Wl.data_base (Inputs.ints ~seed:5150 n));
    mem_size = Wl.default_mem_size;
    fuel = 20_000_000 }
