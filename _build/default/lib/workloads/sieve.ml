(* c_sieve: the Stanford integer benchmark — Eratosthenes' sieve over
   8191 flags, repeated 10 times.  Exit code: number of primes found
   (1899). *)

open Ppc

let n = 8191
let iterations = 10

let build a =
  Asm.label a "main";
  Asm.li32 a 14 Wl.data_base;    (* flags *)
  Asm.li a 15 iterations;
  Asm.label a "outer";
  (* memset flags = 1 *)
  Asm.li32 a 4 n;
  Asm.mtctr a 4;
  Asm.li a 5 1;
  Asm.li a 6 0;
  Asm.label a "mset";
  Asm.stbx a 5 14 6;
  Asm.addi a 6 6 1;
  Asm.bdnz a "mset";
  Asm.li a 16 0;                 (* count *)
  Asm.li a 7 0;                  (* i *)
  Asm.label a "iloop";
  Asm.lbzx a 8 14 7;
  Asm.cmpwi a 8 0;
  Asm.bc a Asm.Eq "skip";
  (* prime = i + i + 3; k = i + prime *)
  Asm.add a 9 7 7;
  Asm.addi a 9 9 3;
  Asm.add a 10 7 9;
  Asm.label a "kloop";
  Asm.cmpwi a 10 n;
  Asm.bc a Asm.Ge "kdone";
  Asm.li a 11 0;
  Asm.stbx a 11 14 10;
  Asm.add a 10 10 9;
  Asm.b a "kloop";
  Asm.label a "kdone";
  Asm.addi a 16 16 1;
  Asm.label a "skip";
  Asm.addi a 7 7 1;
  Asm.cmpwi a 7 n;
  Asm.bc ~hint:true a Asm.Lt "iloop";
  Asm.addi a 15 15 (-1);
  Asm.cmpwi a 15 0;
  Asm.bc a Asm.Ne "outer";
  Asm.mr a 3 16;
  Wl.sys_exit a

let workload : Wl.t =
  { name = "c_sieve";
    description = "Eratosthenes' sieve, 8191 flags x 10 iterations";
    build;
    init = (fun _ _ -> ());
    mem_size = Wl.default_mem_size;
    fuel = 30_000_000 }
