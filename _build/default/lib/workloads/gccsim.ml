(* gcc stand-in: a compiler-like workload — a bytecode interpreter with
   computed (jump-table) dispatch driving calls into dozens of small
   functions deliberately spread across several code pages.

   The paper's gcc measurements are dominated by a large instruction
   working set, frequent indirect branches and cross-page control flow;
   this workload reproduces exactly those properties on a synthetic
   substrate (the repro_why substitution recorded in DESIGN.md).
   Exit code: the VM accumulator after the program halts. *)

open Ppc

let n_funcs = 40
let iterations = 80

(* Bytecode: 8 bytes per instruction (opcode word, operand word). *)
let op_halt = 0
let op_push = 1
let op_add = 2
let op_sub = 3
let op_mul = 4
let op_dup = 5
let op_load = 6
let op_store = 7
let op_jnz = 8
let op_call = 9
let op_xor = 10
let n_ops = 11

let jumptab_base = Wl.table_base + 0x400
let funtab_base = Wl.table_base + 0x600
let vars_base = Wl.scratch_base
let vmstack_base = Wl.data2_base
let bytecode_base = Wl.data_base

let handler_name k = Printf.sprintf "h_%d" k
let func_name k = Printf.sprintf "fn_%d" k

(* One synthetic "compiler pass" function: r3 in, r3 out. *)
let emit_func a k =
  Asm.label a (func_name k);
  (match k mod 4 with
  | 0 ->
    Asm.ins a (Mulli (3, 3, 3 + (k mod 7)));
    Asm.ins a (Xori (3, 3, (k * 0x61) land 0xFFFF));
    Asm.addi a 3 3 k;
    Asm.blr a
  | 1 ->
    (* small reduction loop *)
    Asm.li a 4 (3 + (k mod 3));
    Asm.mtctr a 4;
    Asm.label a (func_name k ^ "_l");
    Asm.srwi a 5 3 3;
    Asm.add a 3 3 5;
    Asm.addi a 3 3 1;
    Asm.bdnz a (func_name k ^ "_l");
    Asm.blr a
  | 2 ->
    Asm.slwi a 4 3 (1 + (k mod 4));
    Asm.sub a 3 4 3;
    Asm.ins a (Ori (3, 3, k land 0xFFFF));
    Asm.blr a
  | _ ->
    Asm.ins a (Andi (3, 4, 1));
    Asm.cmpwi a 4 0;
    Asm.bc a Asm.Eq (func_name k ^ "_e");
    Asm.addi a 3 3 (100 + k);
    Asm.blr a;
    Asm.label a (func_name k ^ "_e");
    Asm.srwi a 3 3 1;
    Asm.addi a 3 3 (k + 1);
    Asm.blr a)

let build a =
  Asm.label a "main";
  Asm.li32 a 14 bytecode_base;
  Asm.li a 15 0;                (* vm pc *)
  Asm.li32 a 16 vmstack_base;   (* vm sp *)
  Asm.li32 a 17 jumptab_base;
  Asm.li32 a 18 funtab_base;
  Asm.li32 a 22 vars_base;
  Asm.label a "dispatch";
  Asm.slwi a 4 15 3;
  Asm.lwzx a 5 14 4;            (* opcode *)
  Asm.addi a 6 4 4;
  Asm.lwzx a 19 14 6;           (* operand *)
  Asm.addi a 15 15 1;
  Asm.slwi a 6 5 2;
  Asm.lwzx a 7 17 6;
  Asm.mtctr a 7;
  Asm.bctr a;
  (* handlers *)
  Asm.label a (handler_name op_halt);
  Asm.addi a 16 16 (-4);
  Asm.lwz a 3 16 0;
  Wl.sys_exit a;
  Asm.label a (handler_name op_push);
  Asm.stw a 19 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_add);
  Asm.addi a 16 16 (-8);
  Asm.lwz a 4 16 0;
  Asm.lwz a 5 16 4;
  Asm.add a 4 4 5;
  Asm.stw a 4 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_sub);
  Asm.addi a 16 16 (-8);
  Asm.lwz a 4 16 0;
  Asm.lwz a 5 16 4;
  Asm.sub a 4 4 5;
  Asm.stw a 4 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_mul);
  Asm.addi a 16 16 (-8);
  Asm.lwz a 4 16 0;
  Asm.lwz a 5 16 4;
  Asm.mullw a 4 4 5;
  Asm.stw a 4 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_dup);
  Asm.lwz a 4 16 (-4);
  Asm.stw a 4 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_load);
  Asm.slwi a 4 19 2;
  Asm.lwzx a 5 22 4;
  Asm.stw a 5 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_store);
  Asm.addi a 16 16 (-4);
  Asm.lwz a 5 16 0;
  Asm.slwi a 4 19 2;
  Asm.stwx a 5 22 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_jnz);
  Asm.addi a 16 16 (-4);
  Asm.lwz a 4 16 0;
  Asm.cmpwi a 4 0;
  Asm.bc a Asm.Eq "dispatch";
  Asm.mr a 15 19;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_call);
  Asm.slwi a 4 19 2;
  Asm.lwzx a 5 18 4;
  Asm.mtctr a 5;
  Asm.addi a 16 16 (-4);
  Asm.lwz a 3 16 0;
  Asm.bctrl a;
  Asm.stw a 3 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  Asm.label a (handler_name op_xor);
  Asm.addi a 16 16 (-8);
  Asm.lwz a 4 16 0;
  Asm.lwz a 5 16 4;
  Asm.xor a 4 4 5;
  Asm.stw a 4 16 0;
  Asm.addi a 16 16 4;
  Asm.b a "dispatch";
  (* the function farm, spread across pages *)
  for k = 0 to n_funcs - 1 do
    Asm.org a (0x2000 + (k * 0x120));
    emit_func a k
  done

(* The bytecode program, assembled host-side. *)
let bytecode () =
  let prog = ref [] and n = ref 0 in
  let emit op operand =
    prog := (op, operand) :: !prog;
    incr n;
    !n - 1
  in
  ignore (emit op_push iterations);
  ignore (emit op_store 0);
  let loop_start = !n in
  (* body: feed constants through the function farm into vars 2..7 *)
  for j = 0 to 9 do
    ignore (emit op_push ((j * 13) + 1));
    ignore (emit op_call ((j * 7) mod n_funcs));
    ignore (emit op_store (2 + (j mod 6)))
  done;
  (* accumulate vars 2..7 into var 1 with add/xor/sub *)
  for j = 0 to 5 do
    ignore (emit op_load 1);
    ignore (emit op_load (2 + j));
    ignore (emit (match j mod 3 with 0 -> op_add | 1 -> op_xor | _ -> op_sub) 0)
    ;
    ignore (emit op_store 1)
  done;
  (* a little stack play *)
  ignore (emit op_load 1);
  ignore (emit op_dup 0);
  ignore (emit op_mul 0);
  ignore (emit op_store 8);
  (* v0--; loop while non-zero *)
  ignore (emit op_load 0);
  ignore (emit op_push 1);
  ignore (emit op_sub 0);
  ignore (emit op_dup 0);
  ignore (emit op_store 0);
  ignore (emit op_jnz loop_start);
  ignore (emit op_load 1);
  ignore (emit op_halt 0);
  List.rev !prog

let init mem labels =
  (* jump table *)
  for k = 0 to n_ops - 1 do
    Mem.store32 mem (jumptab_base + (4 * k))
      (Hashtbl.find labels (handler_name k))
  done;
  for k = 0 to n_funcs - 1 do
    Mem.store32 mem (funtab_base + (4 * k))
      (Hashtbl.find labels (func_name k))
  done;
  List.iteri
    (fun i (op, operand) ->
      Mem.store32 mem (bytecode_base + (8 * i)) op;
      Mem.store32 mem (bytecode_base + (8 * i) + 4) operand)
    (bytecode ())

let workload : Wl.t =
  { name = "gcc";
    description =
      "compiler-like bytecode VM: jump-table dispatch + cross-page calls";
    build;
    init;
    mem_size = Wl.default_mem_size;
    fuel = 20_000_000 }
