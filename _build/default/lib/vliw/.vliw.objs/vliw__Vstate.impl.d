lib/vliw/vstate.ml: Array Op Ppc
