lib/vliw/tree.ml: Format List Op String
