lib/vliw/op.ml: Format Ppc
