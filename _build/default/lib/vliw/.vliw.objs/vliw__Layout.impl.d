lib/vliw/layout.ml: List Tree
