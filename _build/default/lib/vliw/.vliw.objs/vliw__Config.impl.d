lib/vliw/config.ml: Array Tree
