lib/vliw/exec.ml: Array Insn Int64 Interp List Machine Mem Op Ppc Tree Vstate
