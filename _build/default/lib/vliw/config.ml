(* VLIW machine resource configurations.

   The paper's Figure 5.1 sweeps ten configurations described as
   "#Issue - #ALU - #MemAcc - #Branches"; the experiments additionally
   use a big 24-issue default and the 8-issue machine of Table 5.5. *)

type t = {
  name : string;
  issue : int;     (** total ALU + memory operations per VLIW *)
  alu : int;       (** ALU operations (commits/copies included) *)
  mem : int;       (** memory accesses *)
  branches : int;  (** conditional branches per tree instruction *)
}

let make name issue alu mem branches = { name; issue; alu; mem; branches }

(** The ten configurations of Figure 5.1, in paper order (1..10). *)
let figure_5_1 =
  [| make "4-2-2-1" 4 2 2 1;
     make "4-4-2-2" 4 4 2 2;
     make "4-4-4-3" 4 4 4 3;
     make "6-6-3-3" 6 6 3 3;
     make "8-8-4-3" 8 8 4 3;
     make "8-8-4-7" 8 8 4 7;
     make "8-8-8-7" 8 8 8 7;
     make "12-12-8-7" 12 12 8 7;
     make "16-16-8-7" 16 16 8 7;
     make "24-16-8-7" 24 16 8 7 |]

(** The big machine used for Tables 5.1, 5.3, 5.4: 24 ops per VLIW of
    which 8 may be memory accesses, with 7 conditional branches. *)
let default = figure_5_1.(9)

(** The 8-issue machine of Table 5.5 (at most 4 memory ops, 3 branches). *)
let eight_issue = figure_5_1.(4)

(** [fits cfg ~alu ~mem ~br] tells whether a VLIW with the given
    occupancy is within the configuration's resources. *)
let fits cfg ~alu ~mem ~br =
  alu <= cfg.alu && mem <= cfg.mem && alu + mem <= cfg.issue
  && br <= cfg.branches

(** Room for one more ALU op (commit or compute). *)
let alu_ok cfg (v : Tree.t) = fits cfg ~alu:(v.alu + 1) ~mem:v.mem ~br:v.br

(** Room for one more memory op. *)
let mem_ok cfg (v : Tree.t) = fits cfg ~alu:v.alu ~mem:(v.mem + 1) ~br:v.br

(** Room for one more conditional branch. *)
let br_ok cfg (v : Tree.t) = fits cfg ~alu:v.alu ~mem:v.mem ~br:(v.br + 1)
