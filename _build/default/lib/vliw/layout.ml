(* Binary size model for assembled VLIW code
   ("AssembleVLIWsIntoBinaryCode").

   We do not emit actual VLIW machine words — the bit-level encoding is
   explicitly out of the paper's scope too — but the code-expansion and
   instruction-cache experiments need faithful sizes and addresses.
   Model: a 4-byte header per VLIW (valid-entry marker + base-offset
   no-op of Section 3.5), 4 bytes per primitive operation, 4 bytes per
   conditional test, 4 bytes per exit. *)

(** Address where translated code begins in VLIW space. *)
let vliw_base = 0x8000_0000

(** The paper's N: a base page maps to an N-times-larger translated
    page. *)
let expansion = 4

let rec node_size (n : Tree.node) =
  (4 * List.length n.ops)
  + match n.kind with
    | Tree.Open | Exit _ -> 4
    | Branch { taken; fall; _ } -> 4 + node_size taken + node_size fall

(** Size in bytes of one assembled VLIW. *)
let size (t : Tree.t) = 4 + node_size t.root
