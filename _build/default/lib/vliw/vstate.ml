(* Runtime state of the VLIW machine.

   The architected base state (GPRs 0..31, CR fields 0..7, LR, CTR, XER
   bits, MSR, the privileged SPRs) lives directly in a {!Ppc.Machine.t},
   so the VMM can hand the same state to the reference interpreter for
   its interpretation episodes without copying.  On top of it sit the
   non-architected resources: 32 extra GPRs each with an exception tag
   and a carry extender bit, and 8 extra condition fields.  None of the
   extra state is visible to the base architecture, and — because
   commits are in order — none of it needs saving across interrupts. *)

(** Exception tag of a non-architected register (Section 2.1): set
    instead of faulting when a speculative operation goes wrong. *)
type tag =
  | Clean
  | Tfault of int  (** speculative load faulted at this address *)
  | Tmmio          (** speculative load hit I/O space; deferred *)

type t = {
  m : Ppc.Machine.t;       (** architected base state *)
  hi : int array;          (** r32..r63 *)
  ext : bool array;        (** carry extender bits of r32..r63 *)
  tags : tag array;        (** exception tags of r32..r63 *)
  crhi : int array;        (** cr8..cr15 (4-bit fields) *)
  crtags : tag array;      (** exception tags of cr8..cr15 *)
}

let create m =
  { m; hi = Array.make 32 0; ext = Array.make 32 false;
    tags = Array.make 32 Clean; crhi = Array.make 8 0;
    crtags = Array.make 8 Clean }

(** Value of GPR-space location [l] with its tag ([Op.zero] reads 0;
    architected locations are always clean). *)
let get t (l : Op.loc) =
  if l = Op.zero then (0, Clean)
  else if l < 32 then (t.m.gpr.(l), Clean)
  else if l < 64 then (t.hi.(l - 32), t.tags.(l - 32))
  else if l = Op.lr_loc then (t.m.lr, Clean)
  else if l = Op.ctr_loc then (t.m.ctr, Clean)
  else invalid_arg "Vstate.get"

(** Carry bit at location [l]: the machine CA ([Op.ca_loc]) or the
    extender bit of a renamed register. *)
let get_ca t (l : Op.loc) =
  if l = Op.ca_loc then t.m.xer_ca
  else if l >= 32 && l < 64 then t.ext.(l - 32)
  else invalid_arg "Vstate.get_ca"

(** Condition field at location [l] (0..15), with its tag. *)
let get_cr_tagged t (l : Op.loc) =
  if l < 8 then (Ppc.Machine.get_crf t.m l, Clean)
  else (t.crhi.(l - 8), t.crtags.(l - 8))

(** Condition field value, ignoring tags. *)
let get_cr t (l : Op.loc) =
  if l < 8 then Ppc.Machine.get_crf t.m l else t.crhi.(l - 8)

let set_gpr t (l : Op.loc) v =
  if l < 32 then t.m.gpr.(l) <- v
  else if l < 64 then (
    t.hi.(l - 32) <- v;
    t.tags.(l - 32) <- Clean)
  else if l = Op.lr_loc then t.m.lr <- v
  else if l = Op.ctr_loc then t.m.ctr <- v
  else invalid_arg "Vstate.set_gpr"

let set_ext t (l : Op.loc) b =
  if l >= 32 && l < 64 then t.ext.(l - 32) <- b
  else invalid_arg "Vstate.set_ext"

let set_tag t (l : Op.loc) tag =
  if l >= 32 && l < 64 then t.tags.(l - 32) <- tag
  else invalid_arg "Vstate.set_tag"

let set_cr t (l : Op.loc) v =
  if l < 8 then Ppc.Machine.set_crf t.m l v
  else (
    t.crhi.(l - 8) <- v land 0xF;
    t.crtags.(l - 8) <- Clean)

let set_cr_tag t (l : Op.loc) tag =
  if l >= 8 && l < 16 then t.crtags.(l - 8) <- tag
  else invalid_arg "Vstate.set_cr_tag"

(** Reset all non-architected state (used when entering fresh groups is
    not required — tags and pool values never survive recovery). *)
let clear_nonarch t =
  Array.fill t.tags 0 32 Clean;
  Array.fill t.crtags 0 8 Clean
