(* Tree VLIW instructions.

   A VLIW is a tree of conditional tests [Ebcioglu88]: all tests are
   evaluated against the state at VLIW entry, which selects one
   root-to-leaf path; the ALU/memory operations on that path execute in
   parallel (reads before writes), and the leaf names the successor.

   The translator grows trees through mutable "tips": a tip is an open
   leaf to which operations are appended and which is eventually closed
   with an exit or split by a conditional branch. *)

(** A conditional test: a CR bit over the 16 fields (0..63) and the
    sense in which the branch is taken. *)
type test = { bit : int; sense : bool }

type trap =
  | Tsc of int       (** system call; argument = base address after the sc *)
  | Trfi             (** return from interrupt *)
  | Tillegal of int  (** untranslatable word; argument = its base address *)

type exit =
  | Next of int      (** fall through to VLIW [id] of the same translation *)
  | OnPage of int    (** go to the valid entry for base page offset *)
  | OffPage of int   (** GO_ACROSS_PAGE to an absolute base address *)
  | Indirect of Op.loc * [ `Lr | `Ctr | `Gpr ]
      (** GO_ACROSS_PAGE through the (possibly renamed) location holding
          LR, CTR, or — for base architectures like S/390 where all
          branches are register-indirect — a plain GPR; the second
          component records the architected source for the
          cross-page-branch-type statistics *)
  | Trap of trap

type node = {
  mutable ops : (int * Op.t) list;  (** reversed; int = program-order seq *)
  mutable kind : kind;
}

and kind =
  | Open
  | Exit of exit
  | Branch of { test : test; taken : node; fall : node }

type t = {
  id : int;
  mutable root : node;
  mutable precise_entry : int;
      (** base-architecture address corresponding to the state at entry
          to this VLIW: every earlier base instruction has committed,
          none at or after this address has (Section 3.5) *)
  mutable is_entry : bool;  (** marked as a valid entry point *)
  mutable alu : int;        (** ALU slots used (including commits) *)
  mutable mem : int;        (** memory slots used *)
  mutable br : int;         (** conditional branches in the tree *)
  mutable free_gprs : int;  (** bitmask over r32..r63: 1 = free until path end *)
  mutable free_crs : int;   (** bitmask over cr8..cr15 *)
}

let new_node () = { ops = []; kind = Open }

let create ~id ~precise_entry =
  { id; root = new_node (); precise_entry; is_entry = false; alu = 0; mem = 0;
    br = 0; free_gprs = 0xFFFF_FFFF; free_crs = 0xFF }

(** Append an operation to a tip. *)
let add_op (tip : node) seq op = tip.ops <- (seq, op) :: tip.ops

let ops_in_order (n : node) = List.rev n.ops

(** Close a tip with an exit. *)
let close (tip : node) exit =
  assert (tip.kind = Open);
  tip.kind <- Exit exit

(** Split a tip with a conditional test; returns [(taken, fall)] tips. *)
let split (tip : node) test =
  assert (tip.kind = Open);
  let taken = new_node () and fall = new_node () in
  tip.kind <- Branch { test; taken; fall };
  (taken, fall)

(** Total number of operations in the tree (all paths). *)
let rec count_node n =
  List.length n.ops
  + match n.kind with
    | Open | Exit _ -> 0
    | Branch { taken; fall; _ } -> count_node taken + count_node fall

let op_count t = count_node t.root

(** All operations in the tree, any order. *)
let rec node_ops n =
  ops_in_order n
  @ match n.kind with
    | Open | Exit _ -> []
    | Branch { taken; fall; _ } -> node_ops taken @ node_ops fall

let all_ops t = node_ops t.root

let pp_exit ppf = function
  | Next id -> Format.fprintf ppf "b VLIW%d" id
  | OnPage off -> Format.fprintf ppf "b ONPAGE+0x%x" off
  | OffPage a -> Format.fprintf ppf "b OFFPAGE 0x%x" a
  | Indirect (l, `Lr) -> Format.fprintf ppf "b OFFPAGE (*%a as lr)" Op.pp_loc l
  | Indirect (l, `Ctr) -> Format.fprintf ppf "b OFFPAGE (*%a as ctr)" Op.pp_loc l
  | Indirect (l, `Gpr) -> Format.fprintf ppf "b OFFPAGE (*%a)" Op.pp_loc l
  | Trap (Tsc _) -> Format.fprintf ppf "sc"
  | Trap Trfi -> Format.fprintf ppf "rfi"
  | Trap (Tillegal a) -> Format.fprintf ppf "illegal@0x%x" a

let rec pp_node indent ppf n =
  let pad = String.make indent ' ' in
  List.iter
    (fun (_, op) -> Format.fprintf ppf "%s%a@\n" pad Op.pp op)
    (ops_in_order n);
  match n.kind with
  | Open -> Format.fprintf ppf "%s<open>@\n" pad
  | Exit e -> Format.fprintf ppf "%s%a@\n" pad pp_exit e
  | Branch { test; taken; fall } ->
    Format.fprintf ppf "%sif cr.bit%d=%b:@\n" pad test.bit test.sense;
    pp_node (indent + 2) ppf taken;
    Format.fprintf ppf "%selse:@\n" pad;
    pp_node (indent + 2) ppf fall

(** Print the whole tree instruction, paper-figure style. *)
let pp ppf t =
  Format.fprintf ppf "VLIW%d:  (entry=0x%x%s)@\n" t.id t.precise_entry
    (if t.is_entry then ", valid-entry" else "");
  pp_node 2 ppf t.root
