(* Branch-profile collection, for the "traditional VLIW compiler"
   baseline: the paper's traditional compiler schedules with profile
   directed feedback, so we give our stand-in real per-branch taken
   frequencies gathered from a reference run. *)

open Ppc

(** [collect w] runs [w] on the interpreter and returns a table mapping
    each conditional-branch address to (times taken, times executed). *)
let collect (w : Workloads.Wl.t) =
  let mem, entry = Workloads.Wl.instantiate w in
  let st = Machine.create () in
  st.pc <- entry;
  let it = Interp.create st mem in
  let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let record pc taken =
    let t, n = match Hashtbl.find_opt tbl pc with Some x -> x | None -> (0, 0) in
    Hashtbl.replace tbl pc ((t + if taken then 1 else 0), n + 1)
  in
  let rec go fuel =
    if fuel > 0 then begin
      let pc = st.pc in
      let cond =
        match Decode.decode (Mem.fetch mem pc) with
        | Some (Bc (bo, _, _, _, _) | Bclr (bo, _, _) | Bcctr (bo, _, _)) ->
          not (Insn.Bo.ignores_cond bo && Insn.Bo.no_ctr_dec bo)
        | Some _ | None -> false
        | exception Mem.Data_fault _ -> false
      in
      match Interp.step it with
      | () ->
        if cond then record pc (st.pc <> Interp.u32 (pc + 4));
        go (fuel - 1)
      | exception Mem.Halted _ -> ()
    end
  in
  go w.fuel;
  tbl
