lib/baseline/profile.ml: Decode Hashtbl Insn Interp Machine Mem Ppc Workloads
