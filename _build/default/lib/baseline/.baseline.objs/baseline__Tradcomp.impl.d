lib/baseline/tradcomp.ml: Profile Translator Vmm Workloads
