lib/baseline/oracle.ml: Array Hashtbl Interp List Machine Mem Option Ppc Translator Workloads
