lib/baseline/inorder.ml: Array Decode Hashtbl Interp List Machine Mem Memsys Ppc Translator Workloads
