(* A simple in-order superscalar timing model standing in for the
   PowerPC 604E of Table 5.3: 2-wide sustained in-order issue (one
   memory operation and one branch per cycle), a register scoreboard, a
   2-bit branch predictor with a misprediction penalty and a taken-
   branch fetch bubble, and its own cache hierarchy.  Only relative
   magnitudes matter: the paper reports a mean of 0.7 sustained IPC for
   these benchmarks on the 604E; this model lands near 1. *)

module Crack = Translator.Crack
module Res = Translator.Res
open Ppc

type result = {
  insns : int;
  cycles : int;
  ipc : float;
  mispredicts : int;
}

let issue_width = 2
let mem_per_cycle = 1
let mispredict_penalty = 5
let load_latency = 3
let taken_branch_bubble = 1
    (* taken branches redirect fetch: even predicted-taken branches cost
       a fetch bubble on this class of machine *)

let caches () =
  Memsys.Hierarchy.
    { name = "604e";
      ipath =
        [ { cache = Memsys.Cache.create ~name:"I" ~size:(16 * 1024) ~assoc:4 ~line:32;
            latency = 0 } ];
      dpath =
        [ { cache = Memsys.Cache.create ~name:"D" ~size:(16 * 1024) ~assoc:4 ~line:32;
            latency = 0 } ];
      shared =
        [ { cache = Memsys.Cache.create ~name:"L2" ~size:(512 * 1024) ~assoc:4 ~line:64;
            latency = 8 } ];
      mem_latency = 50 }

let operand_res : Crack.operand -> int option = function
  | Gpr i -> Some (Res.gpr i)
  | Lr -> Some Res.lr
  | Ctr -> Some Res.ctr
  | Zero | TmpG _ -> None

let operand_value (st : Machine.t) : Crack.operand -> int = function
  | Gpr i -> st.gpr.(i)
  | Lr -> st.lr
  | Ctr -> st.ctr
  | Zero | TmpG _ -> 0

(** [run w] replays [w]'s trace through the in-order pipeline model. *)
let run (w : Workloads.Wl.t) =
  let mem, entry = Workloads.Wl.instantiate w in
  let st = Machine.create () in
  st.pc <- entry;
  let it = Interp.create st mem in
  let h = caches () in
  let ready = Array.make Res.count 0 in
  let cycle = ref 1 and issued = ref 0 and mem_issued = ref 0 and br_issued = ref 0 in
  let mispredicts = ref 0 in
  let predictor : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let next_cycle () =
    incr cycle;
    issued := 0;
    mem_issued := 0;
    br_issued := 0
  in
  let advance_to c =
    if c > !cycle then (
      cycle := c;
      issued := 0;
      mem_issued := 0;
      br_issued := 0)
  in
  let rec go fuel =
    if fuel > 0 then begin
      let pc = st.pc in
      match Mem.fetch mem pc with
      | exception Mem.Data_fault _ -> (try Interp.step it with Mem.Halted _ -> ())
      | word ->
        let insn = Decode.decode word in
        (* instruction fetch *)
        let istall, _ = Memsys.Hierarchy.access h I pc 4 in
        if istall > 0 then advance_to (!cycle + istall);
        (* decode/crack for dependence modelling *)
        let prims, is_branch, is_cond =
          match insn with
          | None -> ([], false, false)
          | Some i ->
            let { Crack.prims; control } = Crack.crack pc i in
            let br, cond =
              match control with
              | Crack.Fallthru -> (false, false)
              | Jump _ | TrapC _ -> (true, false)
              | CondJump _ -> (true, true)
            in
            (prims, br, cond)
        in
        (* operand readiness *)
        let t = ref !cycle in
        let mem_ops = ref 0 in
        List.iter
          (fun prim ->
            let sh = Crack.shape prim in
            if sh.mem <> `No then incr mem_ops;
            List.iter
              (fun o -> match operand_res o with
                | Some r -> t := max !t ready.(r)
                | None -> ())
              sh.srcs_g;
            List.iter
              (fun (c : Crack.crf_operand) ->
                match c with
                | Crf f -> t := max !t ready.(Res.crf f)
                | TmpC _ -> ())
              sh.srcs_c;
            if sh.r_ca then t := max !t ready.(Res.ca);
            if sh.serial then t := max !t ready.(Res.slow))
          prims;
        advance_to !t;
        (* issue-slot constraints *)
        let needed = max 1 (List.length prims) in
        if
          !issued + needed > issue_width
          || !mem_issued + !mem_ops > mem_per_cycle
          || (is_branch && !br_issued >= 1)
        then next_cycle ();
        issued := !issued + needed;
        mem_issued := !mem_issued + !mem_ops;
        if is_branch then incr br_issued;
        (* execute architecturally *)
        (match Interp.step it with
        | () -> ()
        | exception Mem.Halted code -> raise (Mem.Halted code));
        (* latencies and write-back *)
        let completion = ref (!cycle + 1) in
        List.iter
          (fun prim ->
            let sh = Crack.shape prim in
            (match prim with
            | Crack.PLoad { w = lw; base; off; _ } ->
              let o =
                match off with
                | Crack.OffImm i -> i
                | OffReg r -> operand_value st r
              in
              let addr = Interp.u32 (operand_value st base + o) in
              if not (Mem.is_mmio addr) then (
                let dstall, _ =
                  Memsys.Hierarchy.access h D addr (Mem.width_bytes lw)
                in
                completion := max !completion (!cycle + load_latency + dstall))
            | Crack.PStore { w = sw; base; off; _ } ->
              let o =
                match off with
                | Crack.OffImm i -> i
                | OffReg r -> operand_value st r
              in
              let addr = Interp.u32 (operand_value st base + o) in
              if not (Mem.is_mmio addr) then
                ignore (Memsys.Hierarchy.access h D addr (Mem.width_bytes sw))
            | _ -> ());
            (match sh.dst_g with
            | Some o -> (
              match operand_res o with
              | Some r -> ready.(r) <- !completion
              | None -> ())
            | None -> ());
            (match sh.dst_c with
            | Some (Crack.Crf f) -> ready.(Res.crf f) <- !completion
            | Some (TmpC _) | None -> ());
            if sh.w_ca then ready.(Res.ca) <- !completion;
            if sh.serial then ready.(Res.slow) <- !completion)
          prims;
        (* branch prediction and fetch redirect *)
        let taken = is_branch && st.pc <> Interp.u32 (pc + 4) in
        if is_cond then begin
          let ctr2 =
            match Hashtbl.find_opt predictor pc with Some c -> c | None -> 1
          in
          let predicted = ctr2 >= 2 in
          Hashtbl.replace predictor pc
            (if taken then min 3 (ctr2 + 1) else max 0 (ctr2 - 1));
          if predicted <> taken then begin
            incr mispredicts;
            advance_to (!cycle + mispredict_penalty)
          end
          else if taken then advance_to (!cycle + taken_branch_bubble)
        end
        else if taken then advance_to (!cycle + taken_branch_bubble);
        go (fuel - 1)
    end
  in
  (try go w.fuel with Mem.Halted _ -> ());
  { insns = it.icount;
    cycles = max 1 !cycle;
    ipc = float_of_int it.icount /. float_of_int (max 1 !cycle);
    mispredicts = !mispredicts }
