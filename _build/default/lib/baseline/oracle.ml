(* Oracle parallelism (Chapter 6): schedule the dynamic execution trace
   with perfect branch prediction and perfect memory disambiguation —
   every operation issues one cycle after its last data dependence, with
   unlimited resources.  This is the limit the paper's "interpretive
   compilation" scheme approaches on re-execution with the same input.

   Dependences: true register dependences over the same resource space
   the translator uses, plus load-after-store dependences at word
   granularity through real effective addresses (computed from the
   machine state the trace provides).  Output and anti dependences
   vanish (infinite renaming); control dependences vanish (the trace IS
   the oracle's prediction). *)

module Crack = Translator.Crack
module Res = Translator.Res
open Ppc

type result = {
  insns : int;
  cycles : int;
  ilp : float;
}

let operand_res : Crack.operand -> int option = function
  | Gpr i -> Some (Res.gpr i)
  | Lr -> Some Res.lr
  | Ctr -> Some Res.ctr
  | Zero -> None
  | TmpG _ -> None

let operand_value (st : Machine.t) : Crack.operand -> int = function
  | Gpr i -> st.gpr.(i)
  | Lr -> st.lr
  | Ctr -> st.ctr
  | Zero -> 0
  | TmpG _ -> 0

(** [run w] replays the trace of [w] through the oracle scheduler. *)
let run (w : Workloads.Wl.t) =
  let mem, entry = Workloads.Wl.instantiate w in
  let st = Machine.create () in
  st.pc <- entry;
  let it = Interp.create st mem in
  let ready = Array.make Res.count 0 in
  let mem_ready : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let horizon = ref 0 in
  let word_keys addr bytes =
    let first = addr / 4 and last = (addr + bytes - 1) / 4 in
    if first = last then [ first ] else [ first; last ]
  in
  let schedule pc insn =
    let { Crack.prims; control } = Crack.crack pc insn in
    (* the instruction issues after all of its inputs *)
    let t = ref 0 in
    let dep r = t := max !t ready.(r) in
    let dep_operand o = Option.iter dep (operand_res o) in
    let writes = ref [] and mem_writes = ref [] in
    List.iter
      (fun prim ->
        let sh = Crack.shape prim in
        List.iter dep_operand sh.srcs_g;
        List.iter
          (fun (c : Crack.crf_operand) ->
            match c with Crf f -> dep (Res.crf f) | TmpC _ -> ())
          sh.srcs_c;
        if sh.r_ca then dep Res.ca;
        if sh.serial then dep Res.slow;
        (match prim with
        | Crack.PLoad { w; base; off; _ } ->
          let o =
            match off with Crack.OffImm i -> i | OffReg r -> operand_value st r
          in
          let addr = Interp.u32 (operand_value st base + o) in
          List.iter
            (fun k -> match Hashtbl.find_opt mem_ready k with
              | Some c -> t := max !t c
              | None -> ())
            (word_keys addr (Mem.width_bytes w))
        | Crack.PStore { w; base; off; _ } ->
          let o =
            match off with Crack.OffImm i -> i | OffReg r -> operand_value st r
          in
          let addr = Interp.u32 (operand_value st base + o) in
          mem_writes := word_keys addr (Mem.width_bytes w) @ !mem_writes
        | _ -> ());
        (match sh.dst_g with
        | Some o -> (match operand_res o with Some r -> writes := r :: !writes | None -> ())
        | None -> ());
        (match sh.dst_c with
        | Some (Crack.Crf f) -> writes := Res.crf f :: !writes
        | Some (TmpC _) | None -> ());
        if sh.w_ca then writes := Res.ca :: !writes;
        if sh.serial then writes := Res.slow :: !writes)
      prims;
    ignore control;
    let c = !t + 1 in
    List.iter (fun r -> ready.(r) <- c) !writes;
    List.iter (fun k -> Hashtbl.replace mem_ready k c) !mem_writes;
    if c > !horizon then horizon := c
  in
  it.trace <- Some schedule;
  let _ = Interp.run it ~fuel:w.fuel in
  { insns = it.icount;
    cycles = max 1 !horizon;
    ilp = float_of_int it.icount /. float_of_int (max 1 !horizon) }
