(* The "traditional VLIW compiler" comparison point of Table 5.2.

   The paper compares DAISY to the Moon–Ebcioglu compiler: whole-program
   scope, unbounded compile time, profile-directed feedback.  Our
   stand-in drives the same scheduling engine with the throttles the
   real-time constraint forces on DAISY removed: a whole-memory
   "page", a several-times larger scheduling window, a generous
   re-schedule budget, and real profiled branch probabilities instead
   of static guesses. *)

module Params = Translator.Params

(** Parameters for the traditional-compiler run of workload [w]
    (includes profile collection, i.e. a full interpreter pass). *)
let params (w : Workloads.Wl.t) =
  Params.traditional ~profile:(Profile.collect w) ()

(** ILP of [w] under the traditional compiler (infinite cache). *)
let run (w : Workloads.Wl.t) =
  Vmm.Run.run ~params:(params w) w
