lib/translator/res.ml: Vliw
