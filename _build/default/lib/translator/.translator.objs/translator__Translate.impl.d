lib/translator/translate.ml: Array Crack Float Frontend Hashtbl Insn Int List Mem Option Params Ppc Printf Queue Res Set Sys Vec Vliw
