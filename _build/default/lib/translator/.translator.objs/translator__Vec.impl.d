lib/translator/vec.ml: Array List
