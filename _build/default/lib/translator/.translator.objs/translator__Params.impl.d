lib/translator/params.ml: Hashtbl Vliw
