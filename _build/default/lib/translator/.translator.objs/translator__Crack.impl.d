lib/translator/crack.ml: Fun Insn List Ppc Vliw
