lib/translator/frontend.ml: Crack Ppc
