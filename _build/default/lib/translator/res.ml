(* The flattened space of architected resources the scheduler tracks
   dependences and renaming over.

   0..31   GPRs
   32      LR
   33      CTR
   34      CA          (renamed into the carry extender bit of a GPR)
   35      OV, 36 SO   (written only by mtxer; reads rarely serialize)
   37..44  CR fields 0..7
   45      "slow" serialized state: SRR0/1, DAR, DSISR, SPRGs, MSR, and
           the XER viewed as a whole. *)

let count = 46

let gpr i = i
let lr = 32
let ctr = 33
let ca = 34
let ov = 35
let so = 36
let crf i = 37 + i
let slow = 45

let is_gpr_space r = r < 34  (* GPRs, LR, CTR: renamed into the GPR pool *)
let is_crf r = r >= 37 && r < 45

(** The location an architected resource occupies when not renamed.
    Non-renameable resources (OV/SO/slow state) live in machine state
    and are never looked up through the maps; they get a dummy 0. *)
let identity_loc r : Vliw.Op.loc =
  if r < 32 then r
  else if r = lr then Vliw.Op.lr_loc
  else if r = ctr then Vliw.Op.ctr_loc
  else if r = ca then Vliw.Op.ca_loc
  else if is_crf r then r - 37
  else 0

(** Resources whose values can live in renamed registers. *)
let renameable r = is_gpr_space r || r = ca || is_crf r
