(* A minimal growable array. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let push v x =
  if v.len = Array.length v.data then (
    let cap = max 8 (2 * Array.length v.data) in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let last v = get v (v.len - 1)

(** Shallow copy (elements shared). *)
let copy v = { data = Array.sub v.data 0 v.len; len = v.len }

(** Copy with a per-element transform (for deep copies). *)
let map_copy f v = { data = Array.init v.len (fun i -> f v.data.(i)); len = v.len }

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))
