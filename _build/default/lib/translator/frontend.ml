(* Base-architecture front ends.

   DAISY is "dynamically architected": the same translator, scheduler,
   VLIW machine and VMM serve any base architecture whose state fits the
   migrant superset (Section 2.2).  A front end packages everything that
   is ISA-specific:

   - decoding + cracking one instruction at an address (with its byte
     length — S/390 instructions are 2/4/6 bytes);
   - an interpreter step over the shared architected state, for the
     VMM's interpretation episodes;
   - the classification of instructions that end an interpretation
     episode (calls, indirect and system instructions).

   The PowerPC front end lives here; {!S390.Frontend.s390} provides the
   second architecture. *)

type t = {
  name : string;
  decode_crack : Ppc.Mem.t -> int -> (Crack.cracked * int) option;
      (** decode and crack the instruction at an address; returns the
          primitives/control and the instruction length in bytes, or
          [None] if the bytes are not a valid instruction *)
  make_step : Ppc.Machine.t -> Ppc.Mem.t -> (unit -> unit);
      (** build an interpreter step function over the shared state *)
  is_episode_stop : Ppc.Mem.t -> int -> bool;
      (** does the instruction at [pc] end an interpretation episode
          (subroutine call, indirect branch, system instruction)? *)
  target_mask : int;
      (** architected masking of indirect branch targets (PowerPC clears
          the low two bits; S/390 applies the address mask) *)
}

let ppc : t =
  { name = "ppc";
    decode_crack =
      (fun mem pc ->
        match Ppc.Mem.fetch mem pc with
        | exception Ppc.Mem.Data_fault _ -> None
        | word -> (
          match Ppc.Decode.decode word with
          | None -> None
          | Some i -> Some (Crack.crack pc i, 4)));
    make_step =
      (fun st mem ->
        let it = Ppc.Interp.create st mem in
        fun () -> Ppc.Interp.step it);
    is_episode_stop =
      (fun mem pc ->
        match Ppc.Decode.decode (Ppc.Mem.fetch mem pc) with
        | Some (B (_, _, lk)) -> lk
        | Some (Bc (_, _, _, _, lk)) -> lk
        | Some (Bclr _ | Bcctr _ | Sc | Rfi) -> true
        | Some _ | None -> false
        | exception Ppc.Mem.Data_fault _ -> false);
    target_mask = 0xFFFF_FFFC }
