(* Decomposition of base-architecture instructions into RISC primitives
   with symbolic operands, plus a description of their control flow.

   The scheduler resolves symbolic operands against its per-path
   renaming maps: [Gpr]/[Lr]/[Ctr]/[Crf] name architected resources,
   [TmpG]/[TmpC] name instruction-local temporaries that exist only so
   CISC-ish decompositions (CTR-decrementing branches, for instance)
   have somewhere to put intermediate values.  Temporaries are always
   allocated from the non-architected pools and never committed —
   which is how the paper breaks the serialization of decrement-and-
   branch loops (Appendix D). *)

open Ppc

type operand = Gpr of int | Lr | Ctr | Zero | TmpG of int
type crf_operand = Crf of int | TmpC of int

(** A condition-register bit: field and bit index (0=LT .. 3=SO). *)
type crbit = crf_operand * int

type prim =
  | PBin of { op : Insn.xo_op; dst : operand; a : operand; b : operand }
  | PBinI of { op : Vliw.Op.ibin; dst : operand; a : operand; imm : int }
  | PLogic of { op : Insn.x_op; dst : operand; a : operand; b : operand }
  | PUn of { op : Insn.x1_op; dst : operand; a : operand }
  | PSrawi of { dst : operand; a : operand; sh : int }
  | PRlwinm of { dst : operand; a : operand; sh : int; mb : int; me : int }
  | PCmp of { signed : bool; dst : crf_operand; a : operand; b : operand }
  | PCmpI of { signed : bool; dst : crf_operand; a : operand; imm : int }
  | PLoad of { w : Insn.width; alg : bool; dst : operand; base : operand;
               off : offop }
  | PStore of { w : Insn.width; src : operand; base : operand; off : offop }
  | PCrop of { op : Insn.cr_op; t : crbit; a : crbit; b : crbit }
  | PMcrf of { dst : crf_operand; src : crf_operand }
  | PMfcr of { dst : operand }
  | PCrSet of { field : int; src : operand }  (** mtcrf, one field *)
  | PGetXer of { dst : operand }
  | PSetXer of { src : operand }
  | PGetSpr of { dst : operand; spr : Vliw.Op.slow_spr }
  | PSetSpr of { spr : Vliw.Op.slow_spr; src : operand }
  | PGetMsr of { dst : operand }
  | PSetMsr of { src : operand }

and offop = OffImm of int | OffReg of operand

(** Does this op set the carry bit? *)
let sets_ca = function
  | PBin { op = Addc | Adde | Subfc; _ } -> true
  | PBinI { op = IAddc; _ } -> true
  | PLogic { op = Sraw; _ } -> true
  | PSrawi _ -> true
  | _ -> false

let reads_ca = function PBin { op = Adde; _ } -> true | _ -> false

(** Branch target kinds.  [ViaReg r] is a register-indirect branch
    through GPR [r] (S/390-style; PowerPC uses LR/CTR). *)
type target = Direct of int | ViaLr | ViaCtr | ViaReg of int

type control =
  | Fallthru
  | Jump of target
  | CondJump of { test : crbit; sense : bool; target : target; hint : bool;
                  late_commit : operand option }
      (** take [target] if CR bit [test] = [sense]; [hint] = predicted
          taken by the static y-bit; [late_commit]: the branch
          decremented the named architected register into TmpG
          [ctr_tmp] and the scheduler must commit it in the branch's own
          VLIW, so the instruction is atomic at precise points *)
  | TrapC of Vliw.Tree.trap

type cracked = { prims : prim list; control : control }

let plain prims = { prims; control = Fallthru }

let reg ra = if ra = 0 then Zero else Gpr ra

let record rt = PCmpI { signed = true; dst = Crf 0; a = rt; imm = 0 }

let with_rc rc rt prims = if rc then prims @ [ record rt ] else prims

(* Decompose a BO field into condition-computing primitives and a final
   test, per the PowerPC semantics implemented by {!Ppc.Interp.bc_taken}.
   Temporaries TmpC 0/1 are used for the CTR test and the combination.

   The decremented CTR is computed into temporary TmpG 9 and NOT
   committed here: the scheduler commits it in the same VLIW as the
   branch itself, so that a rollback of the branch VLIW never observes a
   half-executed (already decremented) bdnz. *)
let ctr_tmp = 9

let decompose_bo bo bi =
  let dec = not (Insn.Bo.no_ctr_dec bo) in
  let pre =
    if dec then
      [ PBinI { op = IAdd; dst = TmpG ctr_tmp; a = Ctr; imm = -1 };
        PCmpI { signed = true; dst = TmpC 0; a = TmpG ctr_tmp; imm = 0 } ]
    else []
  in
  let ctr_test = ((TmpC 0, Insn.Crbit.eq), Insn.Bo.ctr_zero_sense bo) in
  let cond_test = ((Crf (bi / 4), bi mod 4), Insn.Bo.cond_sense bo) in
  match (dec, Insn.Bo.ignores_cond bo) with
  | false, true -> (pre, None, dec)  (* branch always *)
  | false, false -> (pre, Some cond_test, dec)
  | true, true -> (pre, Some ctr_test, dec)
  | true, false ->
    (* combined: taken iff (ctr bit = s1) && (cond bit = s2) *)
    let (cb, s1) = ctr_test and (db, s2) = cond_test in
    let op : Insn.cr_op =
      match (s1, s2) with
      | true, true -> Crand
      | true, false -> Crandc
      | false, true -> Crandc
      | false, false -> Crnor
    in
    let a, b = if (not s1) && s2 then (db, cb) else (cb, db) in
    ( pre @ [ PCrop { op; t = (TmpC 1, 0); a; b } ],
      Some ((TmpC 1, 0), true),
      dec )

(* LR update for the LK bit. *)
let link pc = PBinI { op = IAdd; dst = Lr; a = Zero; imm = pc + 4 }

let crack_branch pc bo bi ~target ~lk ~hint_bit =
  let pre, test, dec = decompose_bo bo bi in
  (* A branch-and-link through LR must read the pre-link value: the
     masked target is snapshotted into TmpG 0 before the link. *)
  let pre =
    match (target, lk) with
    | ViaLr, true ->
      pre @ [ PRlwinm { dst = TmpG 0; a = Lr; sh = 0; mb = 0; me = 29 } ]
    | _ -> pre
  in
  let pre = if lk then pre @ [ link pc ] else pre in
  match test with
  | None -> { prims = pre; control = Jump target }
  | Some (test, sense) ->
    { prims = pre;
      control =
        CondJump { test; sense; target; hint = hint_bit;
                   late_commit = (if dec then Some Ctr else None) } }

(** [crack pc insn] decomposes the instruction at address [pc]. *)
let crack pc (i : Insn.t) : cracked =
  match i with
  | Addi (rt, ra, si) -> plain [ PBinI { op = IAdd; dst = Gpr rt; a = reg ra; imm = si } ]
  | Addis (rt, ra, si) ->
    plain [ PBinI { op = IAdd; dst = Gpr rt; a = reg ra; imm = si lsl 16 } ]
  | Addic (rt, ra, si) ->
    plain [ PBinI { op = IAddc; dst = Gpr rt; a = Gpr ra; imm = si } ]
  | Mulli (rt, ra, si) -> plain [ PBinI { op = IMul; dst = Gpr rt; a = Gpr ra; imm = si } ]
  | Cmpi (bf, ra, si) ->
    plain [ PCmpI { signed = true; dst = Crf bf; a = Gpr ra; imm = si } ]
  | Cmpli (bf, ra, ui) ->
    plain [ PCmpI { signed = false; dst = Crf bf; a = Gpr ra; imm = ui } ]
  | Andi (rs, ra, ui) ->
    plain
      [ PBinI { op = IAnd; dst = Gpr ra; a = Gpr rs; imm = ui }; record (Gpr ra) ]
  | Ori (rs, ra, ui) -> plain [ PBinI { op = IOr; dst = Gpr ra; a = Gpr rs; imm = ui } ]
  | Oris (rs, ra, ui) ->
    plain [ PBinI { op = IOr; dst = Gpr ra; a = Gpr rs; imm = ui lsl 16 } ]
  | Xori (rs, ra, ui) -> plain [ PBinI { op = IXor; dst = Gpr ra; a = Gpr rs; imm = ui } ]
  | Xo (op, rt, ra, rb, rc) ->
    let b = if op = Neg then Zero else Gpr rb in
    plain (with_rc rc (Gpr rt) [ PBin { op; dst = Gpr rt; a = Gpr ra; b } ])
  | X (op, ra, rs, rb, rc) ->
    plain (with_rc rc (Gpr ra) [ PLogic { op; dst = Gpr ra; a = Gpr rs; b = Gpr rb } ])
  | X1 (op, ra, rs, rc) ->
    plain (with_rc rc (Gpr ra) [ PUn { op; dst = Gpr ra; a = Gpr rs } ])
  | Srawi (ra, rs, sh, rc) ->
    plain (with_rc rc (Gpr ra) [ PSrawi { dst = Gpr ra; a = Gpr rs; sh } ])
  | Cmp (bf, ra, rb) ->
    plain [ PCmp { signed = true; dst = Crf bf; a = Gpr ra; b = Gpr rb } ]
  | Cmpl (bf, ra, rb) ->
    plain [ PCmp { signed = false; dst = Crf bf; a = Gpr ra; b = Gpr rb } ]
  | Rlwinm (ra, rs, sh, mb, me, rc) ->
    plain (with_rc rc (Gpr ra) [ PRlwinm { dst = Gpr ra; a = Gpr rs; sh; mb; me } ])
  | Load (w, alg, rt, ra, d) ->
    plain [ PLoad { w; alg; dst = Gpr rt; base = reg ra; off = OffImm d } ]
  | Store (w, rs, ra, d) ->
    plain [ PStore { w; src = Gpr rs; base = reg ra; off = OffImm d } ]
  | Loadx (w, alg, rt, ra, rb) ->
    plain [ PLoad { w; alg; dst = Gpr rt; base = reg ra; off = OffReg (Gpr rb) } ]
  | Storex (w, rs, ra, rb) ->
    plain [ PStore { w; src = Gpr rs; base = reg ra; off = OffReg (Gpr rb) } ]
  | Lwzu (rt, ra, d) ->
    plain
      [ PLoad { w = Word; alg = false; dst = Gpr rt; base = Gpr ra; off = OffImm d };
        PBinI { op = IAdd; dst = Gpr ra; a = Gpr ra; imm = d } ]
  | Stwu (rs, ra, d) ->
    plain
      [ PStore { w = Word; src = Gpr rs; base = Gpr ra; off = OffImm d };
        PBinI { op = IAdd; dst = Gpr ra; a = Gpr ra; imm = d } ]
  | Lmw (rt, ra, d) ->
    plain
      (List.init (32 - rt) (fun k ->
           PLoad { w = Word; alg = false; dst = Gpr (rt + k); base = reg ra;
                   off = OffImm (d + (4 * k)) }))
  | Stmw (rs, ra, d) ->
    plain
      (List.init (32 - rs) (fun k ->
           PStore { w = Word; src = Gpr (rs + k); base = reg ra;
                    off = OffImm (d + (4 * k)) }))
  | B (li, aa, lk) ->
    let target = if aa then li else pc + li in
    { prims = (if lk then [ link pc ] else []);
      control = Jump (Direct (target land 0xFFFF_FFFF)) }
  | Bc (bo, bi, bd, aa, lk) ->
    let target = (if aa then bd else pc + bd) land 0xFFFF_FFFF in
    crack_branch pc bo bi ~target:(Direct target) ~lk ~hint_bit:(Insn.Bo.hint bo)
  | Bclr (bo, bi, lk) -> crack_branch pc bo bi ~target:ViaLr ~lk ~hint_bit:false
  | Bcctr (bo, bi, lk) -> crack_branch pc bo bi ~target:ViaCtr ~lk ~hint_bit:false
  | Crop (op, bt, ba, bb) ->
    plain
      [ PCrop { op; t = (Crf (bt / 4), bt mod 4); a = (Crf (ba / 4), ba mod 4);
                b = (Crf (bb / 4), bb mod 4) } ]
  | Mcrf (bf, bfa) -> plain [ PMcrf { dst = Crf bf; src = Crf bfa } ]
  | Mfcr rt -> plain [ PMfcr { dst = Gpr rt } ]
  | Mtcrf (fxm, rs) ->
    plain
      (List.filter_map
         (fun f -> if fxm land (0x80 lsr f) <> 0 then Some (PCrSet { field = f; src = Gpr rs }) else None)
         (List.init 8 Fun.id))
  | Mfspr (rt, LR) -> plain [ PBinI { op = IAdd; dst = Gpr rt; a = Lr; imm = 0 } ]
  | Mfspr (rt, CTR) -> plain [ PBinI { op = IAdd; dst = Gpr rt; a = Ctr; imm = 0 } ]
  | Mtspr (LR, rs) -> plain [ PBinI { op = IAdd; dst = Lr; a = Gpr rs; imm = 0 } ]
  | Mtspr (CTR, rs) -> plain [ PBinI { op = IAdd; dst = Ctr; a = Gpr rs; imm = 0 } ]
  | Mfspr (rt, XER) -> plain [ PGetXer { dst = Gpr rt } ]
  | Mtspr (XER, rs) -> plain [ PSetXer { src = Gpr rs } ]
  | Mfspr (rt, spr) ->
    let spr : Vliw.Op.slow_spr =
      match spr with
      | SRR0 -> Srr0 | SRR1 -> Srr1 | DAR -> Dar | DSISR -> Dsisr
      | SPRG0 -> Sprg0 | SPRG1 -> Sprg1
      | XER | LR | CTR -> assert false
    in
    plain [ PGetSpr { dst = Gpr rt; spr } ]
  | Mtspr (spr, rs) ->
    let spr : Vliw.Op.slow_spr =
      match spr with
      | SRR0 -> Srr0 | SRR1 -> Srr1 | DAR -> Dar | DSISR -> Dsisr
      | SPRG0 -> Sprg0 | SPRG1 -> Sprg1
      | XER | LR | CTR -> assert false
    in
    plain [ PSetSpr { spr; src = Gpr rs } ]
  | Mfmsr rt -> plain [ PGetMsr { dst = Gpr rt } ]
  | Mtmsr rs -> plain [ PSetMsr { src = Gpr rs } ]
  | Sc -> { prims = []; control = TrapC (Tsc (pc + 4)) }
  | Rfi -> { prims = []; control = TrapC Trfi }
  | Isync -> plain []

(** Shape of a primitive for the scheduler: operands read and written,
    plus scheduling class. *)
type shape = {
  srcs_g : operand list;      (** GPR-space reads (incl. LR/CTR/temps) *)
  srcs_c : crf_operand list;  (** condition-field reads *)
  r_ca : bool;
  r_so : bool;
  dst_g : operand option;
  dst_c : crf_operand option;
  w_ca : bool;
  mem : [ `No | `Load | `Store ];
  serial : bool;              (** reads/writes the slow serialized state *)
}

let base_shape =
  { srcs_g = []; srcs_c = []; r_ca = false; r_so = false; dst_g = None;
    dst_c = None; w_ca = false; mem = `No; serial = false }

let off_srcs = function OffImm _ -> [] | OffReg r -> [ r ]

let shape (p : prim) : shape =
  match p with
  | PBin { dst; a; b; _ } ->
    { base_shape with srcs_g = [ a; b ]; dst_g = Some dst; r_ca = reads_ca p;
      w_ca = sets_ca p }
  | PBinI { dst; a; _ } ->
    { base_shape with srcs_g = [ a ]; dst_g = Some dst; w_ca = sets_ca p }
  | PLogic { dst; a; b; _ } ->
    { base_shape with srcs_g = [ a; b ]; dst_g = Some dst; w_ca = sets_ca p }
  | PUn { dst; a; _ } -> { base_shape with srcs_g = [ a ]; dst_g = Some dst }
  | PSrawi { dst; a; _ } ->
    { base_shape with srcs_g = [ a ]; dst_g = Some dst; w_ca = true }
  | PRlwinm { dst; a; _ } -> { base_shape with srcs_g = [ a ]; dst_g = Some dst }
  | PCmp { dst; a; b; _ } ->
    { base_shape with srcs_g = [ a; b ]; dst_c = Some dst; r_so = true }
  | PCmpI { dst; a; _ } ->
    { base_shape with srcs_g = [ a ]; dst_c = Some dst; r_so = true }
  | PLoad { dst; base; off; _ } ->
    { base_shape with srcs_g = base :: off_srcs off; dst_g = Some dst; mem = `Load }
  | PStore { src; base; off; _ } ->
    { base_shape with srcs_g = src :: base :: off_srcs off; mem = `Store }
  | PCrop { t = tf, _; a = af, _; b = bf, _; _ } ->
    (* the target field is read-modified-written, but only when it is an
       architected field whose other bits must be preserved *)
    let rmw = match tf with Crf _ -> [ tf ] | TmpC _ -> [] in
    { base_shape with srcs_c = rmw @ [ af; bf ]; dst_c = Some tf }
  | PMcrf { dst; src } -> { base_shape with srcs_c = [ src ]; dst_c = Some dst }
  | PMfcr { dst } ->
    { base_shape with srcs_c = List.init 8 (fun f -> Crf f); dst_g = Some dst }
  | PCrSet { field; src } ->
    { base_shape with srcs_g = [ src ]; dst_c = Some (Crf field) }
  | PGetXer { dst } ->
    { base_shape with dst_g = Some dst; r_ca = true; r_so = true; serial = true }
  | PSetXer { src } ->
    { base_shape with srcs_g = [ src ]; w_ca = true; serial = true }
  | PGetSpr { dst; _ } -> { base_shape with dst_g = Some dst; serial = true }
  | PSetSpr { src; _ } -> { base_shape with srcs_g = [ src ]; serial = true }
  | PGetMsr { dst } -> { base_shape with dst_g = Some dst; serial = true }
  | PSetMsr { src } -> { base_shape with srcs_g = [ src ]; serial = true }
