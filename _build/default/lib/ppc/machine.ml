(* Architected state of the base architecture.

   Everything the base OS can see lives here: 32 GPRs, the condition
   register, LR/CTR, the XER bits, the machine state register and the
   interrupt save/restore registers.  All register values are kept as
   unsigned 32-bit quantities in OCaml ints. *)

let mask32 = 0xFFFF_FFFF

(** MSR bit masks (a small subset). *)
module Msr = struct
  let ee = 0x8000  (* external interrupts enabled *)
  let pr = 0x4000  (* problem (user) state *)
end

type t = {
  gpr : int array;        (** 32 general registers *)
  mutable cr : int;       (** 32-bit condition register, bit 0 = MSB *)
  mutable lr : int;
  mutable ctr : int;
  mutable xer_ca : bool;
  mutable xer_ov : bool;
  mutable xer_so : bool;
  mutable pc : int;
  mutable msr : int;
  mutable srr0 : int;
  mutable srr1 : int;
  mutable dar : int;
  mutable dsisr : int;
  mutable sprg0 : int;
  mutable sprg1 : int;
}

let create () =
  { gpr = Array.make 32 0; cr = 0; lr = 0; ctr = 0; xer_ca = false;
    xer_ov = false; xer_so = false; pc = 0; msr = Msr.ee; srr0 = 0; srr1 = 0;
    dar = 0; dsisr = 0; sprg0 = 0; sprg1 = 0 }

let copy t = { t with gpr = Array.copy t.gpr }

(** [get_crf t f] is the 4-bit value of condition field [f] (LT GT EQ SO
    from most to least significant). *)
let get_crf t f = (t.cr lsr (4 * (7 - f))) land 0xF

let set_crf t f v =
  let shift = 4 * (7 - f) in
  t.cr <- t.cr land lnot (0xF lsl shift) lor ((v land 0xF) lsl shift)

(** [get_crb t b] is condition register bit [b] (0 = MSB of CR0). *)
let get_crb t b = (t.cr lsr (31 - b)) land 1

let set_crb t b v =
  let shift = 31 - b in
  t.cr <- t.cr land lnot (1 lsl shift) lor ((v land 1) lsl shift)

let get_xer t =
  (if t.xer_so then 0x8000_0000 else 0)
  lor (if t.xer_ov then 0x4000_0000 else 0)
  lor if t.xer_ca then 0x2000_0000 else 0

let set_xer t v =
  t.xer_so <- v land 0x8000_0000 <> 0;
  t.xer_ov <- v land 0x4000_0000 <> 0;
  t.xer_ca <- v land 0x2000_0000 <> 0

let get_spr t : Insn.spr -> int = function
  | XER -> get_xer t
  | LR -> t.lr
  | CTR -> t.ctr
  | SRR0 -> t.srr0
  | SRR1 -> t.srr1
  | DAR -> t.dar
  | DSISR -> t.dsisr
  | SPRG0 -> t.sprg0
  | SPRG1 -> t.sprg1

let set_spr t (spr : Insn.spr) v =
  let v = v land mask32 in
  match spr with
  | XER -> set_xer t v
  | LR -> t.lr <- v
  | CTR -> t.ctr <- v
  | SRR0 -> t.srr0 <- v
  | SRR1 -> t.srr1 <- v
  | DAR -> t.dar <- v
  | DSISR -> t.dsisr <- v
  | SPRG0 -> t.sprg0 <- v
  | SPRG1 -> t.sprg1 <- v

(** Architected-state equality, used by the differential tests: DAISY
    execution must leave exactly the state the reference interpreter
    leaves. *)
let equal a b =
  a.gpr = b.gpr && a.cr = b.cr && a.lr = b.lr && a.ctr = b.ctr
  && a.xer_ca = b.xer_ca && a.xer_ov = b.xer_ov && a.xer_so = b.xer_so
  && a.msr = b.msr

let pp ppf t =
  for i = 0 to 31 do
    if i mod 4 = 0 then Format.fprintf ppf "@\n";
    Format.fprintf ppf "r%-2d=%08x " i t.gpr.(i)
  done;
  Format.fprintf ppf "@\ncr=%08x lr=%08x ctr=%08x xer=%08x pc=%08x msr=%04x"
    t.cr t.lr t.ctr (get_xer t) t.pc t.msr
