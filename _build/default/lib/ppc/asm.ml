(* A small two-pass assembler for the base architecture.

   Workloads and the miniature base OS are written against this eDSL:
   instructions are appended to a program, branch targets are symbolic
   labels, and [assemble] resolves labels and writes the encoded binary
   into simulated memory — after which everything downstream (the
   interpreter, the DAISY translator) sees only 32-bit PowerPC words,
   exactly as it would with a real binary. *)

type labels = (string, int) Hashtbl.t

type item =
  | I of Insn.t
  | Rel of (labels -> int -> Insn.t)
      (** resolved after label layout; args = label table, own address *)
  | Word of int
  | Space of int
  | Label of string
  | Align of int
  | Org of int

type t = { mutable items : item list (* reversed *) }

let create () = { items = [] }

let push t it = t.items <- it :: t.items

(** Emit a literal instruction. *)
let ins t i = push t (I i)

(** Define [name] at the current location. *)
let label t name = push t (Label name)

(** Move the location counter to the absolute address [addr]. *)
let org t addr = push t (Org addr)

(** Reserve [n] zero bytes. *)
let space t n = push t (Space n)

(** Emit a 32-bit data word. *)
let word t v = push t (Word v)

(** Align the location counter to a multiple of [n]. *)
let align t n = push t (Align n)

exception Unknown_label of string

let items_in_order t = List.rev t.items

let layout t =
  let labels : labels = Hashtbl.create 64 in
  let here = ref 0 in
  let place = function
    | I _ | Rel _ | Word _ -> here := !here + 4
    | Space n -> here := !here + n
    | Label name -> Hashtbl.replace labels name !here
    | Align n -> here := (!here + n - 1) / n * n
    | Org a -> here := a
  in
  List.iter place (items_in_order t);
  labels

(** [assemble t mem] lays the program out, resolves labels and writes
    the binary into [mem]; returns the label table. *)
let assemble t mem =
  let labels = layout t in
  let here = ref 0 in
  let emit = function
    | I i ->
      Mem.store_insn mem !here i;
      here := !here + 4
    | Rel f ->
      Mem.store_insn mem !here (f labels !here);
      here := !here + 4
    | Word v ->
      Bytes.set_int32_be mem.Mem.bytes !here (Int32.of_int v);
      here := !here + 4
    | Space n -> here := !here + n
    | Label _ -> ()
    | Align n -> here := (!here + n - 1) / n * n
    | Org a -> here := a
  in
  List.iter emit (items_in_order t);
  labels

let resolve labels name =
  match Hashtbl.find_opt labels name with
  | Some a -> a
  | None -> raise (Unknown_label name)

(* ------------------------------------------------------------------ *)
(* Sugar: common instructions with symbolic targets.                   *)

(** Conditions on a CR field, for branch sugar. *)
type cond = Lt | Gt | Eq | Ge | Le | Ne

let cond_bit : cond -> int = function
  | Lt | Ge -> Insn.Crbit.lt
  | Gt | Le -> Insn.Crbit.gt
  | Eq | Ne -> Insn.Crbit.eq

(* [Ge], [Le] and [Ne] branch when the corresponding bit is clear. *)
let cond_sense : cond -> bool = function
  | Lt | Gt | Eq -> true
  | Ge | Le | Ne -> false

let li t rt v = ins t (Addi (rt, 0, v))

(** Load an arbitrary 32-bit constant (lis/ori pair, or one addi). *)
let li32 t rt v =
  let v = v land 0xFFFF_FFFF in
  if v < 0x8000 then li t rt v
  else if v >= 0xFFFF_8000 then li t rt (v - 0x1_0000_0000)
  else begin
    let hi = v lsr 16 in
    let hi = if hi >= 0x8000 then hi - 0x1_0000 else hi in
    ins t (Addis (rt, 0, hi));
    if v land 0xFFFF <> 0 then ins t (Ori (rt, rt, v land 0xFFFF))
  end

(** Register move (or rs,rs). *)
let mr t rt rs = ins t (X (Or_, rt, rs, rs, false))

(** Load the address of a label (lis/ori or addi). *)
let la t rt name =
  (* reserve the two-word form so layout does not depend on the value *)
  push t (Rel (fun ls _ ->
      let v = resolve ls name in
      let hi = v lsr 16 in
      let hi = if hi >= 0x8000 then hi - 0x1_0000 else hi in
      Insn.Addis (rt, 0, hi)));
  push t (Rel (fun ls _ -> Insn.Ori (rt, rt, resolve ls name land 0xFFFF)))

(** Unconditional branch to a label. *)
let b t name =
  push t (Rel (fun ls addr -> B (resolve ls name - addr, false, false)))

(** Branch-and-link (call) to a label. *)
let bl t name =
  push t (Rel (fun ls addr -> B (resolve ls name - addr, false, true)))

(** Conditional branch on [cond] of CR field [cr] (default 0).
    [hint], when given, sets the static-prediction bit the paper's
    translator honours: [true] predicts taken. *)
let bc ?(cr = 0) ?hint t cond name =
  let bi = Insn.Crbit.of_field cr (cond_bit cond) in
  let bo = if cond_sense cond then Insn.Bo.if_true else Insn.Bo.if_false in
  let bo = match hint with Some true -> bo lor 1 | _ -> bo in
  push t (Rel (fun ls addr -> Bc (bo, bi, resolve ls name - addr, false, false)))

(** Decrement CTR; branch if it is then non-zero. *)
let bdnz t name =
  push t (Rel (fun ls addr -> Bc (Insn.Bo.dnz, 0, resolve ls name - addr, false, false)))

(** Return through the link register. *)
let blr t = ins t (Bclr (Insn.Bo.always, 0, false))

(** Indirect call through CTR. *)
let bctrl t = ins t (Bcctr (Insn.Bo.always, 0, true))

let bctr t = ins t (Bcctr (Insn.Bo.always, 0, false))

let mflr t rt = ins t (Mfspr (rt, LR))
let mtlr t rs = ins t (Mtspr (LR, rs))
let mtctr t rs = ins t (Mtspr (CTR, rs))

let cmpwi ?(cr = 0) t ra v = ins t (Cmpi (cr, ra, v))
let cmplwi ?(cr = 0) t ra v = ins t (Cmpli (cr, ra, v))
let cmpw ?(cr = 0) t ra rb = ins t (Cmp (cr, ra, rb))
let cmplw ?(cr = 0) t ra rb = ins t (Cmpl (cr, ra, rb))

let add t rt ra rb = ins t (Xo (Add, rt, ra, rb, false))
let sub t rt ra rb = ins t (Xo (Subf, rt, rb, ra, false))  (* rt <- ra - rb *)
let mullw t rt ra rb = ins t (Xo (Mullw, rt, ra, rb, false))
let divw t rt ra rb = ins t (Xo (Divw, rt, ra, rb, false))
let divwu t rt ra rb = ins t (Xo (Divwu, rt, ra, rb, false))
let and_ t ra rs rb = ins t (X (And_, ra, rs, rb, false))
let or_ t ra rs rb = ins t (X (Or_, ra, rs, rb, false))
let xor t ra rs rb = ins t (X (Xor_, ra, rs, rb, false))
let slw t ra rs rb = ins t (X (Slw, ra, rs, rb, false))
let srw t ra rs rb = ins t (X (Srw, ra, rs, rb, false))

(** Shift left immediate via rlwinm. *)
let slwi t ra rs sh = ins t (Rlwinm (ra, rs, sh, 0, 31 - sh, false))

(** Shift right (logical) immediate via rlwinm. *)
let srwi t ra rs sh = ins t (Rlwinm (ra, rs, 32 - sh, sh, 31, false))

let addi t rt ra v = ins t (Addi (rt, ra, v))
let lwz t rt ra d = ins t (Load (Word, false, rt, ra, d))
let lbz t rt ra d = ins t (Load (Byte, false, rt, ra, d))
let lhz t rt ra d = ins t (Load (Half, false, rt, ra, d))
let stw t rs ra d = ins t (Store (Word, rs, ra, d))
let stb t rs ra d = ins t (Store (Byte, rs, ra, d))
let sth t rs ra d = ins t (Store (Half, rs, ra, d))
let lwzx t rt ra rb = ins t (Loadx (Word, false, rt, ra, rb))
let lbzx t rt ra rb = ins t (Loadx (Byte, false, rt, ra, rb))
let stwx t rs ra rb = ins t (Storex (Word, rs, ra, rb))
let stbx t rs ra rb = ins t (Storex (Byte, rs, ra, rb))

(** Store word to the HALT MMIO address: ends the program with the
    value of [rs] as exit code. [scratch] is clobbered. *)
let halt t ~scratch rs =
  li32 t scratch Mem.mmio_halt;
  stw t rs scratch 0

(** Write the low byte of [rs] to the console MMIO address. *)
let putchar t ~scratch rs =
  li32 t scratch Mem.mmio_putchar;
  stw t rs scratch 0
