(* Bit-exact encoding of the {!Insn} subset into 32-bit PowerPC words.

   PowerPC numbers bits 0 (most significant) .. 31 (least significant);
   we build words as OCaml ints masked to 32 bits. *)

let mask32 = 0xFFFF_FFFF

(** [field v width shift] places the low [width] bits of [v] so that the
    field's least-significant bit lands at bit position [shift] counted
    from the least-significant end of the word. *)
let field v width shift = (v land ((1 lsl width) - 1)) lsl shift

let opcd op = field op 6 26

let d_form op rt ra imm = opcd op lor field rt 5 21 lor field ra 5 16 lor field imm 16 0

let x_form rt ra rb xo rc =
  opcd 31 lor field rt 5 21 lor field ra 5 16 lor field rb 5 11
  lor field xo 10 1
  lor if rc then 1 else 0

let xo_form rt ra rb xo rc =
  opcd 31 lor field rt 5 21 lor field ra 5 16 lor field rb 5 11
  lor field xo 9 1
  lor if rc then 1 else 0

let xl_form op bt ba bb xo lk =
  opcd op lor field bt 5 21 lor field ba 5 16 lor field bb 5 11
  lor field xo 10 1
  lor if lk then 1 else 0

let m_form rs ra sh mb me rc =
  opcd 21 lor field rs 5 21 lor field ra 5 16 lor field sh 5 11
  lor field mb 5 6 lor field me 5 1
  lor if rc then 1 else 0

let spr_field spr =
  let n = Insn.spr_num spr in
  (* the 10-bit SPR field has its two 5-bit halves swapped *)
  field (n land 0x1F) 5 16 lor field (n lsr 5) 5 11

let xo_op_code : Insn.xo_op -> int = function
  | Add -> 266
  | Addc -> 10
  | Adde -> 138
  | Subf -> 40
  | Subfc -> 8
  | Mullw -> 235
  | Mulhw -> 75
  | Mulhwu -> 11
  | Divw -> 491
  | Divwu -> 459
  | Neg -> 104

let x_op_code : Insn.x_op -> int = function
  | And_ -> 28
  | Or_ -> 444
  | Xor_ -> 316
  | Nand -> 476
  | Nor -> 124
  | Andc -> 60
  | Eqv -> 284
  | Slw -> 24
  | Srw -> 536
  | Sraw -> 792

let x1_op_code : Insn.x1_op -> int = function
  | Cntlzw -> 26
  | Extsb -> 954
  | Extsh -> 922

let cr_op_code : Insn.cr_op -> int = function
  | Crand -> 257
  | Cror -> 449
  | Crxor -> 193
  | Crnand -> 225
  | Crnor -> 33
  | Crandc -> 129
  | Creqv -> 289
  | Crorc -> 417

let load_opcd : Insn.width -> bool -> int = function
  | Word -> fun _ -> 32
  | Byte -> fun _ -> 34
  | Half -> fun alg -> if alg then 42 else 40

let store_opcd : Insn.width -> int = function Word -> 36 | Byte -> 38 | Half -> 44

let loadx_code : Insn.width -> bool -> int = function
  | Word -> fun _ -> 23
  | Byte -> fun _ -> 87
  | Half -> fun alg -> if alg then 343 else 279

let storex_code : Insn.width -> int = function
  | Word -> 151
  | Byte -> 215
  | Half -> 407

(** [encode insn] is the 32-bit instruction word for [insn]. *)
let encode (insn : Insn.t) : int =
  let w =
    match insn with
    | Insn.Addi (rt, ra, si) -> d_form 14 rt ra si
    | Addis (rt, ra, si) -> d_form 15 rt ra si
    | Addic (rt, ra, si) -> d_form 12 rt ra si
    | Mulli (rt, ra, si) -> d_form 7 rt ra si
    | Cmpi (bf, ra, si) -> d_form 11 (bf lsl 2) ra si
    | Cmpli (bf, ra, ui) -> d_form 10 (bf lsl 2) ra ui
    | Andi (rs, ra, ui) -> d_form 28 rs ra ui
    | Ori (rs, ra, ui) -> d_form 24 rs ra ui
    | Oris (rs, ra, ui) -> d_form 25 rs ra ui
    | Xori (rs, ra, ui) -> d_form 26 rs ra ui
    | Xo (op, rt, ra, rb, rc) -> xo_form rt ra rb (xo_op_code op) rc
    | X (op, ra, rs, rb, rc) -> x_form rs ra rb (x_op_code op) rc
    | X1 (op, ra, rs, rc) -> x_form rs ra 0 (x1_op_code op) rc
    | Srawi (ra, rs, sh, rc) -> x_form rs ra sh 824 rc
    | Cmp (bf, ra, rb) -> x_form (bf lsl 2) ra rb 0 false
    | Cmpl (bf, ra, rb) -> x_form (bf lsl 2) ra rb 32 false
    | Rlwinm (ra, rs, sh, mb, me, rc) -> m_form rs ra sh mb me rc
    | Load (w, alg, rt, ra, d) -> d_form (load_opcd w alg) rt ra d
    | Store (w, rs, ra, d) -> d_form (store_opcd w) rs ra d
    | Loadx (w, alg, rt, ra, rb) -> x_form rt ra rb (loadx_code w alg) false
    | Storex (w, rs, ra, rb) -> x_form rs ra rb (storex_code w) false
    | Lwzu (rt, ra, d) -> d_form 33 rt ra d
    | Stwu (rs, ra, d) -> d_form 37 rs ra d
    | Lmw (rt, ra, d) -> d_form 46 rt ra d
    | Stmw (rs, ra, d) -> d_form 47 rs ra d
    | B (li, aa, lk) ->
      opcd 18
      lor field (li asr 2) 24 2
      lor (if aa then 2 else 0)
      lor if lk then 1 else 0
    | Bc (bo, bi, bd, aa, lk) ->
      opcd 16 lor field bo 5 21 lor field bi 5 16
      lor field (bd asr 2) 14 2
      lor (if aa then 2 else 0)
      lor if lk then 1 else 0
    | Bclr (bo, bi, lk) -> xl_form 19 bo bi 0 16 lk
    | Bcctr (bo, bi, lk) -> xl_form 19 bo bi 0 528 lk
    | Crop (op, bt, ba, bb) -> xl_form 19 bt ba bb (cr_op_code op) false
    | Mcrf (bf, bfa) -> xl_form 19 (bf lsl 2) (bfa lsl 2) 0 0 false
    | Mfcr rt -> x_form rt 0 0 19 false
    | Mtcrf (fxm, rs) ->
      opcd 31 lor field rs 5 21 lor field fxm 8 12 lor field 144 10 1
    | Mfspr (rt, spr) -> opcd 31 lor field rt 5 21 lor spr_field spr lor field 339 10 1
    | Mtspr (spr, rs) -> opcd 31 lor field rs 5 21 lor spr_field spr lor field 467 10 1
    | Mfmsr rt -> x_form rt 0 0 83 false
    | Mtmsr rs -> x_form rs 0 0 146 false
    | Sc -> opcd 17 lor 2
    | Rfi -> xl_form 19 0 0 0 50 false
    | Isync -> xl_form 19 0 0 0 150 false
  in
  w land mask32
