(* Reference interpreter for the base architecture.

   This is the golden model: DAISY-translated execution must be
   observationally identical to it.  It is also reused by the VMM for
   the brief interpretation episodes the paper prescribes (after [rfi],
   and when recovering from an exception or a load/store alias inside a
   VLIW group).

   Interrupts are delivered exactly as the architecture specifies:
   SRR0/SRR1 capture the return point and MSR, and control transfers to
   the architected vector, where the miniature base OS resides. *)

let mask32 = 0xFFFF_FFFF

(** Sign-extend a 32-bit value to a native int. *)
let s32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let u32 v = v land mask32

module Vector = struct
  let dsi = 0x300      (* data storage interrupt *)
  let isi = 0x400      (* instruction storage interrupt *)
  let external_ = 0x500
  let program = 0x700  (* illegal / privileged instruction *)
  let syscall = 0xC00
end

type t = {
  st : Machine.t;
  mem : Mem.t;
  mutable icount : int;          (** dynamic base instructions executed *)
  mutable touched : (int, unit) Hashtbl.t;
      (** static instruction addresses executed at least once (reuse factor) *)
  mutable trace : (int -> Insn.t -> unit) option;
}

let create st mem = { st; mem; icount = 0; touched = Hashtbl.create 1024; trace = None }

(** Number of distinct static instruction words executed. *)
let static_touched t = Hashtbl.length t.touched

let interrupt (st : Machine.t) ~return_pc vector =
  st.srr0 <- return_pc;
  st.srr1 <- st.msr;
  st.msr <- st.msr land lnot (Machine.Msr.ee lor Machine.Msr.pr);
  st.pc <- vector

(** Deliver an external interrupt (between instructions). *)
let deliver_external (st : Machine.t) =
  interrupt st ~return_pc:st.pc Vector.external_

let record_cmp (st : Machine.t) bf lt gt =
  let eq = (not lt) && not gt in
  let v =
    (if lt then 8 else 0) lor (if gt then 4 else 0)
    lor (if eq then 2 else 0)
    lor if st.xer_so then 1 else 0
  in
  Machine.set_crf st bf v

let record_rc st result = record_cmp st 0 (s32 result < 0) (s32 result > 0)

let cmp_s st bf a b = record_cmp st bf (s32 a < s32 b) (s32 a > s32 b)
let cmp_u st bf a b = record_cmp st bf (a < b) (a > b)

(** Mask with ones in big-endian bit positions [lo..hi]. *)
let range_mask lo hi =
  let rec go i acc = if i > hi then acc else go (i + 1) (acc lor (1 lsl (31 - i))) in
  go lo 0

(** rlwinm mask from mb to me in big-endian bit numbering; [mb > me]
    denotes the wrap-around mask. *)
let mask_mb_me mb me =
  if mb <= me then range_mask mb me
  else mask32 land lnot (range_mask (me + 1) (mb - 1))

let rotl32 v n = u32 ((v lsl n) lor (v lsr (32 - n)))

let alu_xo (st : Machine.t) (op : Insn.xo_op) a b =
  match op with
  | Add -> u32 (a + b)
  | Addc ->
    let r = a + b in
    st.xer_ca <- r > mask32;
    u32 r
  | Adde ->
    let r = a + b + if st.xer_ca then 1 else 0 in
    st.xer_ca <- r > mask32;
    u32 r
  | Subf -> u32 (b - a)
  | Subfc ->
    let r = b - a in
    st.xer_ca <- b >= a;
    u32 r
  | Mullw -> u32 (s32 a * s32 b)
  | Mulhw ->
    let p = Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 b)) in
    u32 (Int64.to_int (Int64.shift_right p 32))
  | Mulhwu ->
    let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
    u32 (Int64.to_int (Int64.shift_right_logical p 32))
  | Divw -> if s32 b = 0 then 0 else u32 (s32 a / s32 b)
  | Divwu -> if b = 0 then 0 else a / b
  | Neg -> u32 (- (s32 a))

let alu_x (st : Machine.t) (op : Insn.x_op) s b =
  match op with
  | And_ -> s land b
  | Or_ -> s lor b
  | Xor_ -> s lxor b
  | Nand -> u32 (lnot (s land b))
  | Nor -> u32 (lnot (s lor b))
  | Andc -> s land u32 (lnot b)
  | Eqv -> u32 (lnot (s lxor b))
  | Slw ->
    let n = b land 0x3F in
    if n >= 32 then 0 else u32 (s lsl n)
  | Srw ->
    let n = b land 0x3F in
    if n >= 32 then 0 else s lsr n
  | Sraw ->
    let n = b land 0x3F in
    if n >= 32 then (
      st.xer_ca <- s land 0x8000_0000 <> 0 && s <> 0;
      if s land 0x8000_0000 <> 0 then mask32 else 0)
    else (
      let lost = s land ((1 lsl n) - 1) in
      st.xer_ca <- s land 0x8000_0000 <> 0 && lost <> 0;
      u32 (s32 s asr n))

let alu_x1 (op : Insn.x1_op) s =
  match op with
  | Cntlzw ->
    let rec go i = if i >= 32 then 32 else if s land (1 lsl (31 - i)) <> 0 then i else go (i + 1) in
    go 0
  | Extsb -> u32 (s32 ((s land 0xFF) lsl 24) asr 24)
  | Extsh -> u32 (s32 ((s land 0xFFFF) lsl 16) asr 16)

(** [bc_taken st bo bi] decides a conditional branch and performs the
    CTR decrement the BO field requests. *)
let bc_taken (st : Machine.t) bo bi =
  let ctr_ok =
    if Insn.Bo.no_ctr_dec bo then true
    else (
      st.ctr <- u32 (st.ctr - 1);
      let z = st.ctr = 0 in
      if Insn.Bo.ctr_zero_sense bo then z else not z)
  in
  let cond_ok =
    Insn.Bo.ignores_cond bo
    || Machine.get_crb st bi = if Insn.Bo.cond_sense bo then 1 else 0
  in
  ctr_ok && cond_ok

let ea (st : Machine.t) ra d = u32 ((if ra = 0 then 0 else st.gpr.(ra)) + d)
let eax (st : Machine.t) ra rb =
  u32 ((if ra = 0 then 0 else st.gpr.(ra)) + st.gpr.(rb))

let load_val mem (w : Insn.width) alg addr =
  let v = Mem.load mem w addr in
  if alg && w = Half then u32 (s32 ((v land 0xFFFF) lsl 16) asr 16) else v

(** Execute one decoded instruction.  [pc] is its address; on normal
    completion [st.pc] points at the next instruction. *)
let exec (t : t) pc (i : Insn.t) =
  let st = t.st and mem = t.mem in
  let g = st.gpr in
  let next = ref (u32 (pc + 4)) in
  (match i with
  | Addi (rt, ra, si) -> g.(rt) <- u32 ((if ra = 0 then 0 else g.(ra)) + si)
  | Addis (rt, ra, si) ->
    g.(rt) <- u32 ((if ra = 0 then 0 else g.(ra)) + (si lsl 16))
  | Addic (rt, ra, si) ->
    let r = g.(ra) + u32 si in
    st.xer_ca <- r > mask32;
    g.(rt) <- u32 r
  | Mulli (rt, ra, si) -> g.(rt) <- u32 (s32 g.(ra) * si)
  | Cmpi (bf, ra, si) -> cmp_s st bf g.(ra) (u32 si)
  | Cmpli (bf, ra, ui) -> cmp_u st bf g.(ra) ui
  | Andi (rs, ra, ui) ->
    g.(ra) <- g.(rs) land ui;
    record_rc st g.(ra)
  | Ori (rs, ra, ui) -> g.(ra) <- g.(rs) lor ui
  | Oris (rs, ra, ui) -> g.(ra) <- g.(rs) lor (ui lsl 16)
  | Xori (rs, ra, ui) -> g.(ra) <- g.(rs) lxor ui
  | Xo (op, rt, ra, rb, rc) ->
    g.(rt) <- alu_xo st op g.(ra) (if op = Neg then 0 else g.(rb));
    if rc then record_rc st g.(rt)
  | X (op, ra, rs, rb, rc) ->
    g.(ra) <- alu_x st op g.(rs) g.(rb);
    if rc then record_rc st g.(ra)
  | X1 (op, ra, rs, rc) ->
    g.(ra) <- alu_x1 op g.(rs);
    if rc then record_rc st g.(ra)
  | Srawi (ra, rs, sh, rc) ->
    let s = g.(rs) in
    let lost = if sh = 0 then 0 else s land ((1 lsl sh) - 1) in
    st.xer_ca <- s land 0x8000_0000 <> 0 && lost <> 0;
    g.(ra) <- u32 (s32 s asr sh);
    if rc then record_rc st g.(ra)
  | Cmp (bf, ra, rb) -> cmp_s st bf g.(ra) g.(rb)
  | Cmpl (bf, ra, rb) -> cmp_u st bf g.(ra) g.(rb)
  | Rlwinm (ra, rs, sh, mb, me, rc) ->
    g.(ra) <- rotl32 g.(rs) sh land mask_mb_me mb me;
    if rc then record_rc st g.(ra)
  | Load (w, alg, rt, ra, d) -> g.(rt) <- load_val mem w alg (ea st ra d)
  | Store (w, rs, ra, d) -> Mem.store mem w (ea st ra d) g.(rs)
  | Loadx (w, alg, rt, ra, rb) -> g.(rt) <- load_val mem w alg (eax st ra rb)
  | Storex (w, rs, ra, rb) -> Mem.store mem w (eax st ra rb) g.(rs)
  | Lwzu (rt, ra, d) ->
    let a = ea st ra d in
    g.(rt) <- Mem.load mem Word a;
    g.(ra) <- a
  | Stwu (rs, ra, d) ->
    let a = ea st ra d in
    Mem.store mem Word a g.(rs);
    g.(ra) <- a
  | Lmw (rt, ra, d) ->
    let a = ref (ea st ra d) in
    for r = rt to 31 do
      g.(r) <- Mem.load mem Word !a;
      a := u32 (!a + 4)
    done
  | Stmw (rs, ra, d) ->
    let a = ref (ea st ra d) in
    for r = rs to 31 do
      Mem.store mem Word !a g.(r);
      a := u32 (!a + 4)
    done
  | B (li, aa, lk) ->
    if lk then st.lr <- u32 (pc + 4);
    next := u32 (if aa then li else pc + li)
  | Bc (bo, bi, bd, aa, lk) ->
    if lk then st.lr <- u32 (pc + 4);
    if bc_taken st bo bi then next := u32 (if aa then bd else pc + bd)
  | Bclr (bo, bi, lk) ->
    let target = st.lr land lnot 3 in
    if lk then st.lr <- u32 (pc + 4);
    if bc_taken st bo bi then next := target
  | Bcctr (bo, bi, lk) ->
    if lk then st.lr <- u32 (pc + 4);
    if bc_taken st bo bi then next := st.ctr land lnot 3
  | Crop (op, bt, ba, bb) ->
    let a = Machine.get_crb st ba and b = Machine.get_crb st bb in
    let v =
      match op with
      | Crand -> a land b
      | Cror -> a lor b
      | Crxor -> a lxor b
      | Crnand -> 1 - (a land b)
      | Crnor -> 1 - (a lor b)
      | Crandc -> a land (1 - b)
      | Creqv -> 1 - (a lxor b)
      | Crorc -> a lor (1 - b)
    in
    Machine.set_crb st bt v
  | Mcrf (bf, bfa) -> Machine.set_crf st bf (Machine.get_crf st bfa)
  | Mfcr rt -> g.(rt) <- st.cr
  | Mtcrf (fxm, rs) ->
    for f = 0 to 7 do
      if fxm land (0x80 lsr f) <> 0 then
        Machine.set_crf st f ((g.(rs) lsr (4 * (7 - f))) land 0xF)
    done
  | Mfspr (rt, spr) -> g.(rt) <- Machine.get_spr st spr
  | Mtspr (spr, rs) -> Machine.set_spr st spr g.(rs)
  | Mfmsr rt -> g.(rt) <- st.msr
  | Mtmsr rs -> st.msr <- g.(rs) land 0xFFFF
  | Sc -> interrupt st ~return_pc:(u32 (pc + 4)) Vector.syscall
  | Rfi ->
    st.msr <- st.srr1;
    next := st.srr0 land lnot 3
  | Isync -> ());
  match i with Sc -> () | _ -> st.pc <- !next

(** Execute a single instruction, delivering data-storage and program
    interrupts to the base OS vectors.  Raises {!Mem.Halted} when the
    program stores to the halt MMIO word. *)
let step (t : t) =
  let st = t.st in
  let pc = st.pc in
  match Mem.fetch t.mem pc with
  | exception Mem.Data_fault _ -> interrupt st ~return_pc:pc Vector.isi
  | w -> (
    t.icount <- t.icount + 1;
    if not (Hashtbl.mem t.touched pc) then Hashtbl.add t.touched pc ();
    match Decode.decode w with
    | None -> interrupt st ~return_pc:pc Vector.program
    | Some i -> (
      (match t.trace with Some f -> f pc i | None -> ());
      try exec t pc i
      with Mem.Data_fault { addr; write } ->
        st.dar <- addr;
        st.dsisr <- if write then 0x0200_0000 else 0x4000_0000;
        interrupt st ~return_pc:pc Vector.dsi))

(** [run t ~fuel] steps until the program halts or [fuel] instructions
    have executed; returns the exit code, or [None] if fuel ran out. *)
let run (t : t) ~fuel =
  let rec go n =
    if n <= 0 then None
    else
      match step t with
      | () -> go (n - 1)
      | exception Mem.Halted code -> Some code
  in
  go fuel
