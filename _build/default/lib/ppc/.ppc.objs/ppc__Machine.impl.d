lib/ppc/machine.ml: Array Format Insn
