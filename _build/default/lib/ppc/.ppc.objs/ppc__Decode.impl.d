lib/ppc/decode.ml: Insn Option
