lib/ppc/encode.ml: Insn
