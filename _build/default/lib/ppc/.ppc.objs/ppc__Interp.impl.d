lib/ppc/interp.ml: Array Decode Hashtbl Insn Int64 Machine Mem
