lib/ppc/mem.ml: Buffer Bytes Char Encode Insn Int32 String
