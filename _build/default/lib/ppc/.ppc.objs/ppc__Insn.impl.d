lib/ppc/insn.ml: Format
