lib/ppc/asm.ml: Bytes Hashtbl Insn Int32 List Mem
