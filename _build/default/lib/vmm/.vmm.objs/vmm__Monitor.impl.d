lib/vmm/monitor.ml: Array Hashtbl Interp List Machine Mem Memsys Ppc Translator Vliw
