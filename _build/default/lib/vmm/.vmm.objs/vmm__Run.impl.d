lib/vmm/run.ml: Bytes Interp Machine Mem Memsys Monitor Ppc Printf Translator Vliw Workloads
