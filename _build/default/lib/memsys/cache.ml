(* A set-associative cache model with LRU replacement.

   Timing-only: it tracks tags, not data.  Geometry matches the paper's
   Chapter 5 configurations (size, associativity, line size); accesses
   report hit or miss and maintain the usual statistics. *)

type t = {
  name : string;
  line : int;        (** line size, bytes (power of two) *)
  assoc : int;
  sets : int;
  tags : int array;  (** sets * assoc entries; -1 = invalid *)
  stamp : int array; (** LRU timestamps *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

(** [create ~name ~size ~assoc ~line] builds a cache of [size] bytes. *)
let create ~name ~size ~assoc ~line =
  let sets = size / (assoc * line) in
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  { name; line; assoc; sets; tags = Array.make (sets * assoc) (-1);
    stamp = Array.make (sets * assoc) 0; tick = 0; accesses = 0; misses = 0 }

let line_of t addr = addr / t.line

(** [touch t addr] accesses the line containing [addr]; returns [true]
    on hit.  On miss the line is filled, evicting the LRU way. *)
let touch t addr =
  t.accesses <- t.accesses + 1;
  t.tick <- t.tick + 1;
  let lineno = line_of t addr in
  let set = lineno land (t.sets - 1) in
  let base = set * t.assoc in
  let rec find w =
    if w >= t.assoc then None
    else if t.tags.(base + w) = lineno then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    t.stamp.(base + w) <- t.tick;
    true
  | None ->
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.stamp.(base + w) < t.stamp.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- lineno;
    t.stamp.(base + !victim) <- t.tick;
    false

(** Touch every line overlapped by [addr, addr+bytes); true if all hit. *)
let touch_range t addr bytes =
  let first = line_of t addr and last = line_of t (addr + bytes - 1) in
  let hit = ref true in
  for l = first to last do
    if not (touch t (l * t.line)) then hit := false
  done;
  !hit

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0;
  t.accesses <- 0;
  t.misses <- 0
