(* Multi-level cache hierarchies, as configured in Chapter 5.

   An access probes the private (I- or D-side) levels and then the
   shared levels; the first level that hits determines the latency in
   cycles.  Latencies are totals per the paper's tables (L1 hits are
   free, an L2 hit costs its listed latency, and a full miss costs the
   main-memory latency). *)

type level = { cache : Cache.t; latency : int }

type t = {
  name : string;
  ipath : level list;
  dpath : level list;
  shared : level list;
  mem_latency : int;
}

type kind = I | D

(** [access t kind addr bytes] touches the hierarchy; returns
    [(stall_cycles, l1_hit)]. *)
let access t kind addr bytes =
  let path = (match kind with I -> t.ipath | D -> t.dpath) @ t.shared in
  let rec go = function
    | [] -> t.mem_latency
    | lvl :: rest ->
      if Cache.touch_range lvl.cache addr bytes then lvl.latency else go rest
  in
  let stall = go path in
  (stall, stall = 0)

let reset t =
  List.iter (fun l -> Cache.reset l.cache) (t.ipath @ t.dpath @ t.shared)

(** The hierarchy used with the 24-issue machine (Tables 5.3/5.4,
    Figure 5.2): 64K L1s with 256-byte lines, a 4M combined L2 at 12
    cycles, 88-cycle memory. *)
let paper_24issue () =
  { name = "24-issue";
    ipath =
      [ { cache = Cache.create ~name:"L0I" ~size:(64 * 1024) ~assoc:1 ~line:256;
          latency = 0 } ];
    dpath =
      [ { cache = Cache.create ~name:"L0D" ~size:(64 * 1024) ~assoc:4 ~line:256;
          latency = 0 } ];
    shared =
      [ { cache = Cache.create ~name:"L1J" ~size:(4 * 1024 * 1024) ~assoc:4 ~line:256;
          latency = 12 } ];
    mem_latency = 88 }

(** The hierarchy used with the 8-issue machine (Table 5.5): 4K L1s,
    64K L2s, a 4M combined L3 at 16 cycles, 92-cycle memory. *)
let paper_8issue () =
  { name = "8-issue";
    ipath =
      [ { cache = Cache.create ~name:"L1I" ~size:(4 * 1024) ~assoc:1 ~line:64;
          latency = 0 };
        { cache = Cache.create ~name:"L2I" ~size:(64 * 1024) ~assoc:2 ~line:128;
          latency = 4 } ];
    dpath =
      [ { cache = Cache.create ~name:"L1D" ~size:(4 * 1024) ~assoc:4 ~line:64;
          latency = 0 };
        { cache = Cache.create ~name:"L2D" ~size:(64 * 1024) ~assoc:4 ~line:128;
          latency = 4 } ];
    shared =
      [ { cache = Cache.create ~name:"L3J" ~size:(4 * 1024 * 1024) ~assoc:4 ~line:256;
          latency = 16 } ];
    mem_latency = 92 }

(** First-level caches, for the miss-rate figure. *)
let l0i t = (List.hd t.ipath).cache
let l0d t = (List.hd t.dpath).cache
let joint t = (List.hd t.shared).cache
