lib/memsys/cache.ml: Array
