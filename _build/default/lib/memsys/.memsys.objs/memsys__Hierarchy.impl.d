lib/memsys/hierarchy.ml: Cache List
