lib/memsys/tlb.ml: Array
