(* A small fully-parameterised TLB model, used for the ITLB that backs
   GO_ACROSS_PAGE (Section 3.4).  Like the caches it is timing-only:
   we count hits and misses; on a miss the VMM's "micro-interrupt"
   handler cost is charged by the caller. *)

type t = {
  entries : int;
  assoc : int;
  sets : int;
  tags : int array;
  stamp : int array;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(assoc = 4) ~entries () =
  let sets = entries / assoc in
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  { entries; assoc; sets; tags = Array.make entries (-1);
    stamp = Array.make entries 0; tick = 0; accesses = 0; misses = 0 }

(** [touch t vpn] looks up virtual page number [vpn]; true on hit. *)
let touch t vpn =
  t.accesses <- t.accesses + 1;
  t.tick <- t.tick + 1;
  let set = vpn land (t.sets - 1) in
  let base = set * t.assoc in
  let rec find w =
    if w >= t.assoc then None else if t.tags.(base + w) = vpn then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    t.stamp.(base + w) <- t.tick;
    true
  | None ->
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.stamp.(base + w) < t.stamp.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- vpn;
    t.stamp.(base + !victim) <- t.tick;
    false

(** Drop every mapping (code modification, cast-out: Section 3.4). *)
let flush t = Array.fill t.tags 0 t.entries (-1)

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses
