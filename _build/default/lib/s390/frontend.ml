(* The S/390 front end for the DAISY translator and VMM. *)

let s390 : Translator.Frontend.t =
  { name = "s390";
    decode_crack =
      (fun mem pc ->
        match Decode.decode mem pc with
        | None -> None
        | Some (i, len) -> Some (Crack.crack pc len i, len));
    make_step =
      (fun st mem ->
        let it = Interp.create st mem in
        fun () -> Interp.step it);
    is_episode_stop =
      (fun mem pc ->
        match Decode.decode mem pc with
        | Some ((Insn.BALR _ | BCR _ | BC _), _) -> true
        | Some (RX ((BAL | BCT), _, _, _, _), _) -> true
        | Some _ | None -> false);
    target_mask = Insn.amask land lnot 1 }
