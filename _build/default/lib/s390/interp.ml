(* Reference interpreter for the S/390 subset, operating directly on
   the shared superset state ({!Ppc.Machine.t}): GPR0..15 live in the
   first sixteen GPRs, the condition code lives one-hot in condition
   field 0, and the PC is the machine PC.  This is the golden model the
   DAISY-translated execution of S/390 binaries must match exactly. *)

module Machine = Ppc.Machine
module Mem = Ppc.Mem

let u32 = Ppc.Interp.u32
let s32 = Ppc.Interp.s32

(** Effective address d(x, b) in 31-bit mode. *)
let ea (st : Machine.t) ~x ~b ~d =
  let part r = if r = 0 then 0 else st.gpr.(r) in
  (part b + part x + d) land Insn.amask

let set_cc (st : Machine.t) cc = Machine.set_crf st 0 (Insn.cc_to_field cc)

(** CC of an arithmetic/logical result (subset rule: sign-based). *)
let cc_of_result v = if v = 0 then 0 else if s32 v < 0 then 1 else 2

let cc_of_scmp a b = if s32 a = s32 b then 0 else if s32 a < s32 b then 1 else 2
let cc_of_ucmp a b = if a = b then 0 else if a < b then 1 else 2

(** Is the current CC selected by branch mask [m]? *)
let mask_taken (st : Machine.t) m =
  let field = Machine.get_crf st 0 in
  List.exists (fun bit -> field land (8 lsr bit) <> 0) (Insn.mask_bits m)

type t = {
  st : Machine.t;
  mem : Mem.t;
  mutable icount : int;
  touched : (int, unit) Hashtbl.t;
}

(* Creating an interpreter normalizes the condition code into its
   one-hot embedding (a freshly reset machine has condition field 0
   all-zero, which corresponds to no legal S/390 CC; the architected
   initial CC is 0).  Both the reference runs and the VMM go through
   this, so the embedding invariant — exactly one of the four bits set
   — holds at all times, which the translator's complement-mask branch
   tests rely on. *)
let create (st : Machine.t) mem =
  if Machine.get_crf st 0 land 0xF = 0 then set_cc st 0;
  { st; mem; icount = 0; touched = Hashtbl.create 256 }

let static_touched t = Hashtbl.length t.touched

exception Illegal of int

let exec (t : t) pc (i : Insn.t) len =
  let st = t.st and mem = t.mem in
  let g = st.gpr in
  let next = ref (pc + len) in
  (match i with
  | RR (op, r1, r2) -> (
    match op with
    | LR_ -> g.(r1) <- g.(r2)
    | AR ->
      g.(r1) <- u32 (g.(r1) + g.(r2));
      set_cc st (cc_of_result g.(r1))
    | SR ->
      g.(r1) <- u32 (g.(r1) - g.(r2));
      set_cc st (cc_of_result g.(r1))
    | NR ->
      g.(r1) <- g.(r1) land g.(r2);
      set_cc st (cc_of_result g.(r1))
    | OR_ ->
      g.(r1) <- g.(r1) lor g.(r2);
      set_cc st (cc_of_result g.(r1))
    | XR_ ->
      g.(r1) <- g.(r1) lxor g.(r2);
      set_cc st (cc_of_result g.(r1))
    | CR_ -> set_cc st (cc_of_scmp g.(r1) g.(r2))
    | LTR ->
      g.(r1) <- g.(r2);
      set_cc st (cc_of_result g.(r1)))
  | BALR (r1, r2) ->
    let target = g.(r2) land Insn.amask in
    g.(r1) <- u32 (pc + len);
    if r2 <> 0 then next := target
  | BCR (m, r2) ->
    if r2 <> 0 && mask_taken st m then next := g.(r2) land Insn.amask
  | RX (op, r1, x2, b2, d2) -> (
    let a = ea st ~x:x2 ~b:b2 ~d:d2 in
    match op with
    | L -> g.(r1) <- Mem.load32 mem a
    | ST_ -> Mem.store32 mem a g.(r1)
    | A ->
      g.(r1) <- u32 (g.(r1) + Mem.load32 mem a);
      set_cc st (cc_of_result g.(r1))
    | S ->
      g.(r1) <- u32 (g.(r1) - Mem.load32 mem a);
      set_cc st (cc_of_result g.(r1))
    | N ->
      g.(r1) <- g.(r1) land Mem.load32 mem a;
      set_cc st (cc_of_result g.(r1))
    | O ->
      g.(r1) <- g.(r1) lor Mem.load32 mem a;
      set_cc st (cc_of_result g.(r1))
    | X ->
      g.(r1) <- g.(r1) lxor Mem.load32 mem a;
      set_cc st (cc_of_result g.(r1))
    | C -> set_cc st (cc_of_scmp g.(r1) (Mem.load32 mem a))
    | LA -> g.(r1) <- a
    | LH ->
      let v = Mem.load16 mem a in
      g.(r1) <- u32 (s32 ((v land 0xFFFF) lsl 16) asr 16)
    | STH -> Mem.store16 mem a g.(r1)
    | STC -> Mem.store8 mem a g.(r1)
    | IC -> g.(r1) <- g.(r1) land lnot 0xFF lor Mem.load8 mem a
    | BAL ->
      g.(r1) <- u32 (pc + len);
      next := a
    | BCT ->
      g.(r1) <- u32 (g.(r1) - 1);
      if g.(r1) <> 0 then next := a)
  | BC (m, x2, b2, d2) ->
    if mask_taken st m then next := ea st ~x:x2 ~b:b2 ~d:d2
  | SLL (r1, n) -> g.(r1) <- u32 (g.(r1) lsl n)
  | SRL (r1, n) -> g.(r1) <- g.(r1) lsr n
  | SI (op, d1, b1, i2) -> (
    let a = ea st ~x:0 ~b:b1 ~d:d1 in
    match op with
    | MVI -> Mem.store8 mem a i2
    | CLI -> set_cc st (cc_of_ucmp (Mem.load8 mem a) (i2 land 0xFF))
    | TM ->
      let v = Mem.load8 mem a land i2 in
      set_cc st (if v = 0 then 0 else 2))
  | MVC (l, d1, b1, d2, b2) ->
    let dst = ea st ~x:0 ~b:b1 ~d:d1 and src = ea st ~x:0 ~b:b2 ~d:d2 in
    for k = 0 to l do
      Mem.store8 mem (dst + k) (Mem.load8 mem (src + k))
    done);
  st.pc <- !next

(** Execute one instruction; raises {!Illegal} outside the subset and
    {!Ppc.Mem.Halted} on the halt store. *)
let step (t : t) =
  let pc = t.st.pc in
  match Decode.decode t.mem pc with
  | None -> raise (Illegal pc)
  | Some (i, len) ->
    t.icount <- t.icount + 1;
    if not (Hashtbl.mem t.touched pc) then Hashtbl.add t.touched pc ();
    exec t pc i len

(** Run until halt or [fuel] instructions; returns the exit code. *)
let run (t : t) ~fuel =
  let rec go n =
    if n <= 0 then None
    else
      match step t with
      | () -> go (n - 1)
      | exception Mem.Halted code -> Some code
  in
  go fuel
