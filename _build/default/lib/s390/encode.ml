(* Byte-exact encoding of the S/390 subset (RR, RX, RS, SI and SS
   instruction formats with their real opcodes). *)

let rr_opcode : Insn.rr_op -> int = function
  | LR_ -> 0x18
  | AR -> 0x1A
  | SR -> 0x1B
  | NR -> 0x14
  | OR_ -> 0x16
  | XR_ -> 0x17
  | CR_ -> 0x19
  | LTR -> 0x12

let rx_opcode : Insn.rx_op -> int = function
  | L -> 0x58
  | ST_ -> 0x50
  | A -> 0x5A
  | S -> 0x5B
  | N -> 0x54
  | O -> 0x56
  | X -> 0x57
  | C -> 0x59
  | LA -> 0x41
  | LH -> 0x48
  | STH -> 0x40
  | STC -> 0x42
  | IC -> 0x43
  | BAL -> 0x45
  | BCT -> 0x46

let si_opcode : Insn.si_op -> int = function
  | MVI -> 0x92
  | CLI -> 0x95
  | TM -> 0x91

(** [encode i] is the instruction's bytes (2, 4 or 6 of them).
    Raises [Invalid_argument] if a displacement exceeds the 12-bit
    field. *)
let encode (i : Insn.t) : int list =
  let bd b d =
    if d < 0 || d > 0xFFF then
      invalid_arg (Printf.sprintf "S390.Encode: displacement %d out of range" d);
    [ ((b land 0xF) lsl 4) lor ((d lsr 8) land 0xF); d land 0xFF ]
  in
  match i with
  | RR (op, r1, r2) -> [ rr_opcode op; ((r1 land 0xF) lsl 4) lor (r2 land 0xF) ]
  | BALR (r1, r2) -> [ 0x05; ((r1 land 0xF) lsl 4) lor (r2 land 0xF) ]
  | BCR (m, r2) -> [ 0x07; ((m land 0xF) lsl 4) lor (r2 land 0xF) ]
  | RX (op, r1, x2, b2, d2) ->
    (rx_opcode op :: [ ((r1 land 0xF) lsl 4) lor (x2 land 0xF) ]) @ bd b2 d2
  | BC (m, x2, b2, d2) ->
    (0x47 :: [ ((m land 0xF) lsl 4) lor (x2 land 0xF) ]) @ bd b2 d2
  | SLL (r1, n) -> (0x89 :: [ (r1 land 0xF) lsl 4 ]) @ bd 0 n
  | SRL (r1, n) -> (0x88 :: [ (r1 land 0xF) lsl 4 ]) @ bd 0 n
  | SI (op, d1, b1, i2) -> (si_opcode op :: [ i2 land 0xFF ]) @ bd b1 d1
  | MVC (l, d1, b1, d2, b2) -> (0xD2 :: [ l land 0xFF ]) @ bd b1 d1 @ bd b2 d2

let length i = List.length (encode i)

(** Write [i] into memory at [addr]; returns the next address. *)
let store (mem : Ppc.Mem.t) addr i =
  List.iteri (fun k b -> Bytes.set mem.bytes (addr + k) (Char.chr b)) (encode i);
  addr + length i
