lib/s390/interp.ml: Array Decode Hashtbl Insn List Ppc
