lib/s390/decode.ml: Bytes Char Insn Ppc
