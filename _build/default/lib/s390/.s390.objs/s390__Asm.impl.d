lib/s390/asm.ml: Bytes Encode Hashtbl Insn Int32 List Ppc Printf
