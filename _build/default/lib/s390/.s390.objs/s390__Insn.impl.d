lib/s390/insn.ml: Format List
