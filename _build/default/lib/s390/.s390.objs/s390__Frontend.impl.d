lib/s390/frontend.ml: Crack Decode Insn Interp Translator
