lib/s390/encode.ml: Bytes Char Insn List Ppc Printf
