lib/s390/crack.ml: Fun Insn List Option Ppc Translator
