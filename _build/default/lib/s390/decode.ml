(* Decoding the S/390 subset from memory.  Instruction length is given
   by the top two bits of the opcode (00 = 2 bytes, 01/10 = 4 bytes,
   11 = 6 bytes), exactly as the architecture specifies. *)

let byte (mem : Ppc.Mem.t) addr =
  if addr >= 0 && addr < mem.size then Char.code (Bytes.get mem.bytes addr)
  else raise (Ppc.Mem.Data_fault { addr; write = false })

let rr_of_opcode : int -> Insn.rr_op option = function
  | 0x18 -> Some LR_
  | 0x1A -> Some AR
  | 0x1B -> Some SR
  | 0x14 -> Some NR
  | 0x16 -> Some OR_
  | 0x17 -> Some XR_
  | 0x19 -> Some CR_
  | 0x12 -> Some LTR
  | _ -> None

let rx_of_opcode : int -> Insn.rx_op option = function
  | 0x58 -> Some L
  | 0x50 -> Some ST_
  | 0x5A -> Some A
  | 0x5B -> Some S
  | 0x54 -> Some N
  | 0x56 -> Some O
  | 0x57 -> Some X
  | 0x59 -> Some C
  | 0x41 -> Some LA
  | 0x48 -> Some LH
  | 0x40 -> Some STH
  | 0x42 -> Some STC
  | 0x43 -> Some IC
  | 0x45 -> Some BAL
  | 0x46 -> Some BCT
  | _ -> None

let si_of_opcode : int -> Insn.si_op option = function
  | 0x92 -> Some MVI
  | 0x95 -> Some CLI
  | 0x91 -> Some TM
  | _ -> None

(** [decode mem pc] is the instruction at [pc] and its byte length, or
    [None] if the bytes fall outside the subset. *)
let decode mem pc : (Insn.t * int) option =
  try
    match byte mem pc with
    | exception Ppc.Mem.Data_fault _ -> None
    | op -> (
    let b2nd () = byte mem (pc + 1) in
    let bd off =
      let hi = byte mem (pc + off) and lo = byte mem (pc + off + 1) in
      (hi lsr 4, ((hi land 0xF) lsl 8) lor lo)
    in
    match op with
    | 0x05 -> Some (Insn.BALR (b2nd () lsr 4, b2nd () land 0xF), 2)
    | 0x07 -> Some (Insn.BCR (b2nd () lsr 4, b2nd () land 0xF), 2)
    | _ when op < 0x40 -> (
      match rr_of_opcode op with
      | Some rr -> Some (Insn.RR (rr, b2nd () lsr 4, b2nd () land 0xF), 2)
      | None -> None)
    | 0x47 ->
      let b, d = bd 2 in
      Some (Insn.BC (b2nd () lsr 4, b2nd () land 0xF, b, d), 4)
    | 0x89 ->
      let b, d = bd 2 in
      if b = 0 && d <= 31 then Some (Insn.SLL (b2nd () lsr 4, d), 4) else None
    | 0x88 ->
      let b, d = bd 2 in
      if b = 0 && d <= 31 then Some (Insn.SRL (b2nd () lsr 4, d), 4) else None
    | 0xD2 ->
      let l = b2nd () in
      if l + 1 > Insn.max_mvc then None
      else
        let b1, d1 = bd 2 and b2, d2 = bd 4 in
        Some (Insn.MVC (l, d1, b1, d2, b2), 6)
    | _ when op >= 0x90 && op < 0xC0 -> (
      match si_of_opcode op with
      | Some si ->
        let b1, d1 = bd 2 in
        Some (Insn.SI (si, d1, b1, b2nd ()), 4)
      | None -> None)
    | _ -> (
      match rx_of_opcode op with
      | Some rx ->
        let b, d = bd 2 in
        Some (Insn.RX (rx, b2nd () lsr 4, b2nd () land 0xF, b, d), 4)
      | None -> None))
  with Ppc.Mem.Data_fault _ -> None
