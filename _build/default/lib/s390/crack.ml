(* Cracking S/390 instructions into the same RISC primitives the
   PowerPC front end uses (Appendix E of the paper shows exactly this
   conversion).  The notable differences from the PowerPC cracker:

   - effective addresses need base+index+displacement arithmetic and
     the 31-bit effective-address mask (Section 2.2's "Effective
     Address Mask Register"), so memory operations grow address
     temporaries;
   - the condition code is written one-hot into condition field 0 by
     the ordinary compare primitives (see {!Insn});
   - all branches are register-indirect: targets are computed into the
     snapshot temporary (TmpG 0) and the group exits through it, which
     is why the paper calls constant propagation "crucial for S/390";
   - BCT's decremented register is left in TmpG [Crack.ctr_tmp] and
     committed by the branch itself, like PowerPC's bdnz;
   - MVC decomposes into byte load/store primitive pairs. *)

module C = Translator.Crack
open C

let gpr r : operand = if r = 0 then Zero else Gpr r

(* Temp ids: 0 = branch-target snapshot, 1..3 = first EA, 4..6 = second
   EA, 7 = byte shuttle, 8 = scratch, 9 = Crack.ctr_tmp. *)

(* Compute d(x, b) & amask; returns (prims, address operand).  With no
   registers involved the displacement is the address. *)
let ea ~tmp ~x ~b ~d =
  if x = 0 && b = 0 then ([], Zero, d)
  else begin
    let t1 = TmpG tmp and t2 = TmpG (tmp + 1) and t3 = TmpG (tmp + 2) in
    let sum, pre =
      if x <> 0 && b <> 0 then
        (t1, [ PBin { op = Ppc.Insn.Add; dst = t1; a = gpr b; b = gpr x } ])
      else ((if b <> 0 then gpr b else gpr x), [])
    in
    let pre = pre @ [ PBinI { op = IAdd; dst = t2; a = sum; imm = d } ] in
    (* the 31-bit effective-address mask *)
    let pre = pre @ [ PRlwinm { dst = t3; a = t2; sh = 0; mb = 1; me = 31 } ] in
    (pre, t3, 0)
  end

let record r = PCmpI { signed = true; dst = Crf 0; a = Gpr r; imm = 0 }

let rr_binop : Insn.rr_op -> Ppc.Insn.x_op option = function
  | NR -> Some And_
  | OR_ -> Some Or_
  | XR_ -> Some Xor_
  | _ -> None

(* Decompose a branch mask into pre-primitives and a test. *)
let mask_test m : prim list * (crbit * bool) option =
  match Insn.mask_bits m with
  | [] -> ([], None)  (* never taken: caller handles *)
  | _ when m = 15 -> ([], None)
  | [ bit ] -> ([], Some ((Crf 0, bit), true))
  | bits when List.length bits = 3 ->
    (* complement of a single bit *)
    let missing = List.find (fun b -> not (List.mem b bits)) [ 0; 1; 2; 3 ] in
    ([], Some ((Crf 0, missing), false))
  | [ b1; b2 ] ->
    ( [ PCrop { op = Ppc.Insn.Cror; t = (TmpC 1, 0); a = (Crf 0, b1);
                b = (Crf 0, b2) } ],
      Some ((TmpC 1, 0), true) )
  | _ -> ([], None)

(* A branch target: direct when no registers are involved, otherwise
   computed (with the address mask) into the snapshot temp. *)
let target ~x ~b ~d =
  if x = 0 && b = 0 then ([], Direct (d land Insn.amask))
  else begin
    let pre, base, off = ea ~tmp:1 ~x ~b ~d in
    let pre =
      pre @ [ PBinI { op = IAdd; dst = TmpG 0; a = base; imm = off } ]
    in
    (pre, ViaReg (max b x))
  end

let branch ~mask ~pre_target ~tgt ~extra =
  let mpre, test = mask_test mask in
  match (mask, test) with
  | 0, _ -> { prims = extra; control = Fallthru }
  | 15, _ | _, None -> { prims = extra @ pre_target; control = Jump tgt }
  | _, Some (test, sense) ->
    { prims = extra @ pre_target @ mpre;
      control = CondJump { test; sense; target = tgt; hint = false;
                           late_commit = None } }

(** [crack pc len insn] decomposes one S/390 instruction. *)
let crack pc len (i : Insn.t) : C.cracked =
  let plain prims = { prims; control = Fallthru } in
  match i with
  | RR (LR_, r1, r2) ->
    plain [ PBinI { op = IAdd; dst = Gpr r1; a = gpr r2; imm = 0 } ]
  | RR (LTR, r1, r2) ->
    plain
      [ PBinI { op = IAdd; dst = Gpr r1; a = gpr r2; imm = 0 }; record r1 ]
  | RR (CR_, r1, r2) ->
    plain [ PCmp { signed = true; dst = Crf 0; a = Gpr r1; b = gpr r2 } ]
  | RR (AR, r1, r2) ->
    plain
      [ PBin { op = Add; dst = Gpr r1; a = Gpr r1; b = gpr r2 }; record r1 ]
  | RR (SR, r1, r2) ->
    plain
      [ PBin { op = Subf; dst = Gpr r1; a = gpr r2; b = Gpr r1 }; record r1 ]
  | RR (op, r1, r2) ->
    let x = Option.get (rr_binop op) in
    plain
      [ PLogic { op = x; dst = Gpr r1; a = Gpr r1; b = gpr r2 }; record r1 ]
  | BALR (r1, 0) ->
    plain [ PBinI { op = IAdd; dst = Gpr r1; a = Zero; imm = pc + len } ]
  | BALR (r1, r2) ->
    { prims =
        [ PRlwinm { dst = TmpG 0; a = Gpr r2; sh = 0; mb = 1; me = 31 };
          PBinI { op = IAdd; dst = Gpr r1; a = Zero; imm = pc + len } ];
      control = Jump (ViaReg r2) }
  | BCR (_, 0) -> plain []
  | BCR (mask, r2) ->
    branch ~mask
      ~pre_target:
        [ PRlwinm { dst = TmpG 0; a = Gpr r2; sh = 0; mb = 1; me = 31 } ]
      ~tgt:(ViaReg r2) ~extra:[]
  | BC (mask, x2, b2, d2) ->
    let pre_target, tgt = target ~x:x2 ~b:b2 ~d:d2 in
    branch ~mask ~pre_target ~tgt ~extra:[]
  | RX (BAL, r1, x2, b2, d2) ->
    let pre_target, tgt = target ~x:x2 ~b:b2 ~d:d2 in
    { prims =
        pre_target
        @ [ PBinI { op = IAdd; dst = Gpr r1; a = Zero; imm = pc + len } ];
      control = Jump tgt }
  | RX (BCT, r1, x2, b2, d2) ->
    let pre_target, tgt = target ~x:x2 ~b:b2 ~d:d2 in
    { prims =
        pre_target
        @ [ PBinI { op = IAdd; dst = TmpG C.ctr_tmp; a = Gpr r1; imm = -1 };
            PCmpI { signed = true; dst = TmpC 0; a = TmpG C.ctr_tmp; imm = 0 } ];
      control =
        CondJump { test = (TmpC 0, Ppc.Insn.Crbit.eq); sense = false;
                   target = tgt; hint = true; late_commit = Some (Gpr r1) } }
  | RX (LA, r1, x2, b2, d2) ->
    let pre, base, off = ea ~tmp:1 ~x:x2 ~b:b2 ~d:d2 in
    plain (pre @ [ PBinI { op = IAdd; dst = Gpr r1; a = base; imm = off } ])
  | RX (op, r1, x2, b2, d2) -> (
    let pre, base, off = ea ~tmp:1 ~x:x2 ~b:b2 ~d:d2 in
    let load w alg dst =
      PLoad { w; alg; dst; base; off = OffImm off }
    in
    match op with
    | L -> plain (pre @ [ load Word false (Gpr r1) ])
    | LH -> plain (pre @ [ load Half true (Gpr r1) ])
    | ST_ -> plain (pre @ [ PStore { w = Word; src = Gpr r1; base; off = OffImm off } ])
    | STH -> plain (pre @ [ PStore { w = Half; src = Gpr r1; base; off = OffImm off } ])
    | STC -> plain (pre @ [ PStore { w = Byte; src = Gpr r1; base; off = OffImm off } ])
    | IC ->
      plain
        (pre
        @ [ load Byte false (TmpG 7);
            PRlwinm { dst = TmpG 8; a = Gpr r1; sh = 0; mb = 0; me = 23 };
            PLogic { op = Or_; dst = Gpr r1; a = TmpG 8; b = TmpG 7 } ])
    | A | S | N | O | X ->
      let t = TmpG 7 in
      let combine =
        match op with
        | A -> PBin { op = Add; dst = Gpr r1; a = Gpr r1; b = t }
        | S -> PBin { op = Subf; dst = Gpr r1; a = t; b = Gpr r1 }
        | N -> PLogic { op = And_; dst = Gpr r1; a = Gpr r1; b = t }
        | O -> PLogic { op = Or_; dst = Gpr r1; a = Gpr r1; b = t }
        | _ -> PLogic { op = Xor_; dst = Gpr r1; a = Gpr r1; b = t }
      in
      plain (pre @ [ load Word false t; combine; record r1 ])
    | C ->
      plain
        (pre
        @ [ load Word false (TmpG 7);
            PCmp { signed = true; dst = Crf 0; a = Gpr r1; b = TmpG 7 } ])
    | LA | BAL | BCT -> assert false)
  | SLL (r1, n) ->
    plain
      [ (if n = 0 then PBinI { op = IAdd; dst = Gpr r1; a = Gpr r1; imm = 0 }
         else PRlwinm { dst = Gpr r1; a = Gpr r1; sh = n; mb = 0; me = 31 - n }) ]
  | SRL (r1, n) ->
    plain
      [ (if n = 0 then PBinI { op = IAdd; dst = Gpr r1; a = Gpr r1; imm = 0 }
         else PRlwinm { dst = Gpr r1; a = Gpr r1; sh = 32 - n; mb = n; me = 31 }) ]
  | SI (op, d1, b1, i2) -> (
    let pre, base, off = ea ~tmp:1 ~x:0 ~b:b1 ~d:d1 in
    match op with
    | MVI ->
      plain
        (pre
        @ [ PBinI { op = IAdd; dst = TmpG 7; a = Zero; imm = i2 land 0xFF };
            PStore { w = Byte; src = TmpG 7; base; off = OffImm off } ])
    | CLI ->
      plain
        (pre
        @ [ PLoad { w = Byte; alg = false; dst = TmpG 7; base; off = OffImm off };
            PCmpI { signed = false; dst = Crf 0; a = TmpG 7; imm = i2 land 0xFF } ])
    | TM ->
      plain
        (pre
        @ [ PLoad { w = Byte; alg = false; dst = TmpG 7; base; off = OffImm off };
            PBinI { op = IAnd; dst = TmpG 8; a = TmpG 7; imm = i2 land 0xFF };
            PCmpI { signed = true; dst = Crf 0; a = TmpG 8; imm = 0 } ]))
  | MVC (l, d1, b1, d2, b2) ->
    let pre1, dbase, doff = ea ~tmp:1 ~x:0 ~b:b1 ~d:d1 in
    let pre2, sbase, soff = ea ~tmp:4 ~x:0 ~b:b2 ~d:d2 in
    let moves =
      List.concat_map
        (fun k ->
          [ PLoad { w = Byte; alg = false; dst = TmpG 7; base = sbase;
                    off = OffImm (soff + k) };
            PStore { w = Byte; src = TmpG 7; base = dbase;
                     off = OffImm (doff + k) } ])
        (List.init (l + 1) Fun.id)
    in
    plain (pre1 @ pre2 @ moves)
