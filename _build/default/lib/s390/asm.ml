(* A small assembler for the S/390 subset.

   S/390 has no PC-relative branches: code addresses things through a
   base register that the classic prologue establishes with
   [BALR rb, 0].  The sugar here follows that convention: [set_base]
   names the base register and the label it covers, and the branch/EA
   helpers turn labels into base-relative displacements. *)

type item =
  | I of Insn.t
  | Rel of ((string, int) Hashtbl.t -> int -> Insn.t)
  | Label of string
  | Org of int
  | Space of int
  | Word of int  (* a literal-pool constant *)

type t = {
  mutable items : item list;  (* reversed *)
  mutable base_reg : int;
  mutable base_label : string;
}

let create () = { items = []; base_reg = 12; base_label = "" }

let push t it = t.items <- it :: t.items
let ins t i = push t (I i)
let label t name = push t (Label name)
let org t addr = push t (Org addr)
let space t n = push t (Space n)

(** Emit a 32-bit literal (define-constant). *)
let word t v = push t (Word v)

exception Unknown_label of string

let resolve labels name =
  match Hashtbl.find_opt labels name with
  | Some a -> a
  | None -> raise (Unknown_label name)

let layout t =
  let labels = Hashtbl.create 32 in
  let here = ref 0 in
  List.iter
    (fun item ->
      match item with
      | I i -> here := !here + Encode.length i
      | Rel _ -> here := !here + 4  (* all Rel items are 4-byte RX/BC forms *)
      | Label name -> Hashtbl.replace labels name !here
      | Org a -> here := a
      | Space n -> here := !here + n
      | Word _ -> here := !here + 4)
    (List.rev t.items);
  labels

(** Assemble into memory; returns the label table. *)
let assemble t (mem : Ppc.Mem.t) =
  let labels = layout t in
  let here = ref 0 in
  List.iter
    (fun item ->
      match item with
      | I i -> here := Encode.store mem !here i
      | Rel f -> here := Encode.store mem !here (f labels !here)
      | Label _ -> ()
      | Org a -> here := a
      | Space n -> here := !here + n
      | Word v ->
        Bytes.set_int32_be mem.bytes !here (Int32.of_int v);
        here := !here + 4)
    (List.rev t.items);
  labels

(* ------------------------------------------------------------------ *)
(* Sugar                                                               *)

(** Establish the base register: emits [BALR rb, 0] and records that
    displacements are relative to the next instruction's address. *)
let set_base t ?(reg = 12) name =
  ins t (BALR (reg, 0));
  t.base_reg <- reg;
  t.base_label <- name;
  label t name

let base_disp t labels name =
  let d = resolve labels name - resolve labels t.base_label in
  if d < 0 || d > 0xFFF then
    invalid_arg (Printf.sprintf "label %s out of base range (%d)" name d);
  d

(** Branch on mask to a label (base-relative). *)
let bc t m name =
  let tt = t in
  push t (Rel (fun ls _ -> Insn.BC (m, 0, tt.base_reg, base_disp tt ls name)))

let b t name = bc t 15 name

(* mask mnemonics: 8=zero/equal, 4=negative/low, 2=positive/high *)
let be t name = bc t 8 name
let bne t name = bc t 7 name
let bl_ t name = bc t 4 name
let bh t name = bc t 2 name
let bnl t name = bc t 11 name
let bnh t name = bc t 13 name

(** Call: BAL rl, label. *)
let bal t rl name =
  let tt = t in
  push t (Rel (fun ls _ -> Insn.RX (BAL, rl, 0, tt.base_reg, base_disp tt ls name)))

(** Decrement r and branch to label while non-zero. *)
let bct t r name =
  let tt = t in
  push t (Rel (fun ls _ -> Insn.RX (BCT, r, 0, tt.base_reg, base_disp tt ls name)))

(** Return through a linkage register. *)
let br t r = ins t (BCR (15, r))

(** Load a 32-bit constant through a literal pool... kept simple: LA for
    small values, or L from a literal planted by the test. *)
let la t r1 v =
  if v < 0 || v > 0xFFF then invalid_arg "la: immediate out of range";
  ins t (RX (LA, r1, 0, 0, v))

let lr t r1 r2 = ins t (RR (LR_, r1, r2))
let ar t r1 r2 = ins t (RR (AR, r1, r2))
let sr t r1 r2 = ins t (RR (SR, r1, r2))
let l t r1 ?(x = 0) ?(b = 0) d = ins t (RX (L, r1, x, b, d))
let st t r1 ?(x = 0) ?(b = 0) d = ins t (RX (ST_, r1, x, b, d))
