(* An S/390 subset — DAISY's second base architecture.

   The paper argues (Section 2.2, Appendix E) that the same migrant
   VLIW can be "dynamically architected" to emulate S/390: its state
   embeds into the superset state the VLIW already architects (16 GPRs
   into r0..r15, the 2-bit condition code into condition field 0), and
   its CISC features map onto the same RISC primitives — three-input
   address arithmetic, the effective-address mask register (we run in
   31-bit mode), storage-to-storage moves decomposed into byte
   primitives, and branches that are all register-indirect (which is
   why the paper calls constant propagation "crucial for S/390").

   Condition-code embedding (one-hot in condition field 0):
     CC0 (zero/equal)    -> the EQ bit
     CC1 (negative/low)  -> the LT bit
     CC2 (positive/high) -> the GT bit
     CC3 (overflow)      -> the SO bit
   A branch mask m (bit 8 selects CC0 .. bit 1 selects CC3) becomes a
   test of the corresponding field bits.

   Documented subset simplifications (applied identically by the
   interpreter and the translator, so translated execution still equals
   interpretation exactly):
   - arithmetic never sets CC3 (no overflow detection);
   - N/O/X set CC from the sign of the result like arithmetic;
   - TM sets CC0 when the tested bits are all zero and CC2 otherwise;
   - MVC lengths are limited to 12 bytes;
   - shifts take immediate amounts (B2 = 0, D2 <= 31). *)

type rr_op = LR_ | AR | SR | NR | OR_ | XR_ | CR_ | LTR

type rx_op = L | ST_ | A | S | N | O | X | C | LA | LH | STH | STC | IC | BAL | BCT

type si_op = MVI | CLI | TM

type t =
  | RR of rr_op * int * int          (** op r1, r2 *)
  | BALR of int * int                (** r1 <- next; branch to r2 (r2=0: none) *)
  | BCR of int * int                 (** mask, r2 (r2=0: no-op) *)
  | RX of rx_op * int * int * int * int  (** op r1, d2(x2, b2) *)
  | BC of int * int * int * int      (** mask, d2(x2, b2) *)
  | SLL of int * int                 (** r1, amount *)
  | SRL of int * int
  | SI of si_op * int * int * int    (** op d1(b1), i2 *)
  | MVC of int * int * int * int * int  (** len-1, d1(b1), d2(b2) *)

(** 31-bit addressing mode: the effective-address mask. *)
let amask = 0x7FFF_FFFF

(** Maximum MVC length (bytes) in this subset. *)
let max_mvc = 12

let rr_name = function
  | LR_ -> "lr" | AR -> "ar" | SR -> "sr" | NR -> "nr" | OR_ -> "or"
  | XR_ -> "xr" | CR_ -> "cr" | LTR -> "ltr"

let rx_name = function
  | L -> "l" | ST_ -> "st" | A -> "a" | S -> "s" | N -> "n" | O -> "o"
  | X -> "x" | C -> "c" | LA -> "la" | LH -> "lh" | STH -> "sth"
  | STC -> "stc" | IC -> "ic" | BAL -> "bal" | BCT -> "bct"

let si_name = function MVI -> "mvi" | CLI -> "cli" | TM -> "tm"

let pp ppf = function
  | RR (op, r1, r2) -> Format.fprintf ppf "%s r%d,r%d" (rr_name op) r1 r2
  | BALR (r1, r2) -> Format.fprintf ppf "balr r%d,r%d" r1 r2
  | BCR (m, r2) -> Format.fprintf ppf "bcr %d,r%d" m r2
  | RX (op, r1, x2, b2, d2) ->
    Format.fprintf ppf "%s r%d,%d(r%d,r%d)" (rx_name op) r1 d2 x2 b2
  | BC (m, x2, b2, d2) -> Format.fprintf ppf "bc %d,%d(r%d,r%d)" m d2 x2 b2
  | SLL (r1, n) -> Format.fprintf ppf "sll r%d,%d" r1 n
  | SRL (r1, n) -> Format.fprintf ppf "srl r%d,%d" r1 n
  | SI (op, d1, b1, i2) ->
    Format.fprintf ppf "%s %d(r%d),%d" (si_name op) d1 b1 i2
  | MVC (l, d1, b1, d2, b2) ->
    Format.fprintf ppf "mvc %d(%d,r%d),%d(r%d)" d1 (l + 1) b1 d2 b2

let to_string i = Format.asprintf "%a" pp i

(** The one-hot CC embedding into condition field 0. *)
let cc_to_field = function
  | 0 -> 0b0010  (* EQ *)
  | 1 -> 0b1000  (* LT *)
  | 2 -> 0b0100  (* GT *)
  | _ -> 0b0001  (* SO *)

(** Field-bit positions (0 = LT .. 3 = SO) selected by a branch mask. *)
let mask_bits m =
  List.concat
    [ (if m land 8 <> 0 then [ 2 ] else []);  (* CC0 -> EQ *)
      (if m land 4 <> 0 then [ 0 ] else []);  (* CC1 -> LT *)
      (if m land 2 <> 0 then [ 1 ] else []);  (* CC2 -> GT *)
      (if m land 1 <> 0 then [ 3 ] else []) ] (* CC3 -> SO *)
