(* Self-modifying code under DAISY (Section 3.2).

   A program JIT-compiles its own inner loop: it writes a short
   computation into an empty page, executes it, patches one instruction,
   and executes it again.  Under DAISY each store into a page whose
   translation exists trips the read-only bit, rolls back the current
   VLIW, and invalidates the stale translation; the next entry
   retranslates from the new bytes.  The base program needs no changes.

     dune exec examples/self_modifying.exe *)

open Ppc

let jit_page = 0x4000

let build a =
  Asm.org a 0x1000;
  Asm.label a "main";
  (* emit "mullw r3,r3,r3; blr" into the jit page *)
  Asm.li32 a 10 jit_page;
  Asm.li32 a 11 (Encode.encode (Xo (Mullw, 3, 3, 3, false)));
  Asm.stw a 11 10 0;
  Asm.li32 a 11 (Encode.encode (Bclr (Insn.Bo.always, 0, false)));
  Asm.stw a 11 10 4;
  Asm.ins a Isync;
  (* run it: 7^2 = 49 *)
  Asm.li a 3 7;
  Asm.mtctr a 10;
  Asm.bctrl a;
  Asm.mr a 20 3;
  (* patch the mullw into an add: f(x) = x + x *)
  Asm.li32 a 11 (Encode.encode (Xo (Add, 3, 3, 3, false)));
  Asm.stw a 11 10 0;
  Asm.ins a Isync;
  Asm.li a 3 7;
  Asm.mtctr a 10;
  Asm.bctrl a;
  (* result: 49 * 100 + 14 = 4914 *)
  Asm.ins a (Mulli (20, 20, 100));
  Asm.add a 3 3 20;
  Asm.halt a ~scratch:31 3

let () =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  build a;
  let labels = Asm.assemble a mem in
  let vmm = Vmm.Monitor.create mem in
  let code = Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels "main") ~fuel:100_000 in
  Format.printf "exit code: %s (expected 4914)@."
    (match code with Some c -> string_of_int c | None -> "-");
  Format.printf
    "translations invalidated by stores: %d@\nrollbacks: %d  interpretation \
     episodes: %d  pages translated: %d@."
    vmm.stats.code_invalidations vmm.stats.rollbacks
    vmm.stats.interp_episodes vmm.tr.totals.pages;
  if code <> Some 4914 then exit 1
