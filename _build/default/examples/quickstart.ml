(* Quickstart: the paper's Figure 2.2 / Appendix C worked example.

   We assemble the 11-instruction PowerPC fragment the paper uses to
   illustrate the translation algorithm, hand it to the dynamic
   translator, print the resulting tree VLIWs (compare them with
   Figure 2.2: the xor is hoisted with its result renamed and committed
   in the next VLIW, the sub and cntlz land on conditional tips), then
   execute it under the VMM and check it against the interpreter.

     dune exec examples/quickstart.exe *)

open Ppc
module Vec = Translator.Vec

let build a =
  (* conditions and inputs are established on the entry page... *)
  Asm.org a 0x1000;
  Asm.label a "main";
  Asm.li a 2 10;
  Asm.li a 3 32;
  Asm.li a 5 0xF0;
  Asm.li a 6 0x3C;
  Asm.li a 7 0xFF;
  Asm.li a 10 50;
  Asm.li a 11 8;
  Asm.cmpwi a 2 10;       (* cr0: EQ *)
  Asm.cmpwi ~cr:1 a 3 99; (* cr1: not EQ *)
  Asm.b a "fragment";

  (* ...and the paper's fragment occupies its own page *)
  Asm.org a 0x2000;
  Asm.label a "fragment";
  Asm.add a 1 2 3;                          (*  1: add  r1,r2,r3   *)
  Asm.bc ~cr:0 a Asm.Eq "L1";               (*  2: bc   L1         *)
  Asm.slwi a 12 1 3;                        (*  3: sli  r12,r1,3   *)
  Asm.xor a 4 5 6;                          (*  4: xor  r4,r5,r6   *)
  Asm.and_ a 8 4 7;                         (*  5: and  r8,r4,r7   *)
  Asm.bc ~cr:1 a Asm.Eq "L2";               (*  6: bc   L2         *)
  Asm.b a "offpage";                        (*  7: b    OFFPAGE    *)
  Asm.label a "L1";
  Asm.sub a 9 10 11;                        (*  8: sub  r9,r10,r11 *)
  Asm.b a "offpage";                        (*  9: b    OFFPAGE    *)
  Asm.label a "L2";
  Asm.ins a (X1 (Cntlzw, 11, 4, false));    (* 10: cntlz r11,r4    *)
  Asm.b a "offpage";                        (* 11: b    OFFPAGE    *)

  Asm.org a 0x3000;
  Asm.label a "offpage";
  Asm.add a 3 8 12;
  Asm.add a 3 3 11;
  Asm.halt a ~scratch:31 3

let () =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  build a;
  let labels = Asm.assemble a mem in
  let vmm = Vmm.Monitor.create mem in

  (* 1. translate the fragment page and show the tree VLIWs *)
  let page, _entry = Translator.Translate.entry vmm.tr (Hashtbl.find labels "fragment") in
  print_endline "Translation of the Figure 2.2 fragment into tree VLIWs:";
  print_endline "(s. = speculative, rN with N>=32 = non-architected rename)";
  print_newline ();
  Vec.iter (fun v -> Format.printf "%a@." Vliw.Tree.pp v) page.vliws;

  (* 2. run the whole program under DAISY and cross-check *)
  let code = Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels "main") ~fuel:10_000 in
  let mem2 = Mem.create 0x40000 in
  let a2 = Asm.create () in
  build a2;
  let labels2 = Asm.assemble a2 mem2 in
  let st = Machine.create () in
  st.pc <- Hashtbl.find labels2 "main";
  let it = Interp.create st mem2 in
  let rcode = Interp.run it ~fuel:10_000 in
  Format.printf "DAISY exit code: %s; interpreter exit code: %s; %s@."
    (match code with Some c -> string_of_int c | None -> "-")
    (match rcode with Some c -> string_of_int c | None -> "-")
    (if code = rcode && Machine.equal st vmm.st.m then "states agree"
     else "STATES DIVERGE");
  Format.printf "VLIWs executed: %d for %d base instructions@."
    vmm.stats.vliws it.icount
