examples/s390_demo.mli:
