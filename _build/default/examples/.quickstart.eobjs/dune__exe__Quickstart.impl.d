examples/quickstart.ml: Asm Format Hashtbl Interp Machine Mem Ppc Translator Vliw Vmm
