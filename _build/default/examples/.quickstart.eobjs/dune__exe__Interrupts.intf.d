examples/interrupts.mli:
