examples/precise_exceptions.ml: Array Asm Format Hashtbl Interp Machine Mem Ppc Vmm
