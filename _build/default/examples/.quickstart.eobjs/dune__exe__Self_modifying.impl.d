examples/self_modifying.ml: Asm Encode Format Hashtbl Insn Mem Ppc Vmm
