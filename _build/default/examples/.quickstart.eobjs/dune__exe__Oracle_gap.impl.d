examples/oracle_gap.ml: Array Baseline Format Sys Translator Vliw Vmm Workloads
