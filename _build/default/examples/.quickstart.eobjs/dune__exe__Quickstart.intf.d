examples/quickstart.mli:
