examples/interrupts.ml: Format Ppc Vmm Workloads
