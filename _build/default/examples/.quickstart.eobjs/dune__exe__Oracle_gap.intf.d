examples/oracle_gap.mli:
