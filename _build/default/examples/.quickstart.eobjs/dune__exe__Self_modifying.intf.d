examples/self_modifying.mli:
