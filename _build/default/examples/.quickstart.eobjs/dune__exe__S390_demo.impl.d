examples/s390_demo.ml: Format Hashtbl Ppc S390 Translator Vliw Vmm
