(* Transparent external interrupts (Section 3.3).

   The compress workload runs under DAISY while a timer delivers an
   external interrupt every 500 VLIWs.  The mini OS's first-level
   handler (itself running as translated code) counts the interrupts
   and returns with rfi; after each rfi the VMM briefly interprets and
   re-enters translated code at a valid entry point, exactly as
   Section 3.4 prescribes.  The program's result must be unaffected.

     dune exec examples/interrupts.exe *)

let () =
  let w = Workloads.Registry.by_name "compress" in
  (* reference: no interrupts *)
  let rcode, _, _, _ = Vmm.Run.reference w in
  (* DAISY with the timer firing *)
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Vmm.Monitor.create mem in
  vmm.timer_interval <- Some 500;
  let code = Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2) in
  let counted =
    Ppc.Mem.load32 mem (Workloads.Wl.table_base + 0xF00)
  in
  Format.printf "exit code: %s (undisturbed run: %s)@."
    (match code with Some c -> string_of_int c | None -> "-")
    (match rcode with Some c -> string_of_int c | None -> "-");
  Format.printf
    "external interrupts delivered: %d; handler (translated OS code) \
     counted: %d@."
    vmm.stats.external_interrupts counted;
  Format.printf "interpretation episodes after rfi: %d@."
    vmm.stats.interp_episodes;
  if code <> rcode || counted = 0 then exit 1
