(* Precise exceptions under aggressive speculation (Sections 2.1/3.5).

   A loop walks a linked list that ends in an unmapped sentinel pointer.
   The translator speculatively hoists the next-pointer load above the
   loop exit test, so on the last iteration the VLIW machine performs a
   load that faults — but only sets the exception tag of a renamed
   register.  On the path where the value is really needed, the commit
   raises, the VLIW rolls back, and the VMM re-executes from the precise
   base address by interpretation, delivering a clean DSI (with DAR and
   SRR0 exactly as the base architecture specifies) to the mini OS —
   which here recovers and continues the program.

     dune exec examples/precise_exceptions.exe *)

open Ppc

let list_base = 0x20000
let bad_ptr = 0x00E0_0000  (* unmapped *)

let build a =
  (* DSI handler: record DAR and the faulting instruction address, then
     steer the program to its exit path by faking a NULL result *)
  Asm.org a Interp.Vector.dsi;
  Asm.ins a (Mfspr (25, DAR));
  Asm.ins a (Mfspr (26, SRR0));
  Asm.li a 4 0;                 (* pretend the load returned NULL *)
  Asm.ins a (Mfspr (27, SRR0));
  Asm.addi a 27 27 4;           (* skip the faulting load *)
  Asm.ins a (Mtspr (SRR0, 27));
  Asm.ins a Rfi;

  Asm.org a 0x1000;
  Asm.label a "main";
  Asm.li32 a 3 list_base;       (* current node *)
  Asm.li a 9 0;                 (* sum of payloads *)
  Asm.label a "walk";
  Asm.cmpwi a 3 0;
  Asm.bc a Asm.Eq "done";
  Asm.lwz a 5 3 4;              (* payload *)
  Asm.add a 9 9 5;
  Asm.lwz a 4 3 0;              (* next pointer: faults on the sentinel *)
  Asm.mr a 3 4;
  Asm.b a "walk";
  Asm.label a "done";
  Asm.mr a 3 9;
  Asm.halt a ~scratch:31 3

let init mem =
  (* 8 nodes; the last points into unmapped space *)
  let rec link i addr =
    Mem.store32 mem (addr + 4) (i * 10);
    if i = 7 then Mem.store32 mem addr bad_ptr
    else begin
      let next = addr + 16 in
      Mem.store32 mem addr next;
      link (i + 1) next
    end
  in
  link 0 list_base

let () =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  build a;
  let labels = Asm.assemble a mem in
  init mem;
  let vmm = Vmm.Monitor.create mem in
  let code = Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels "main") ~fuel:100_000 in
  (* reference *)
  let mem2 = Mem.create 0x40000 in
  let a2 = Asm.create () in
  build a2;
  let labels2 = Asm.assemble a2 mem2 in
  init mem2;
  let st = Machine.create () in
  st.pc <- Hashtbl.find labels2 "main";
  let it = Interp.create st mem2 in
  let rcode = Interp.run it ~fuel:100_000 in
  Format.printf "sum of payloads: %s (interpreter: %s) — %s@."
    (match code with Some c -> string_of_int c | None -> "-")
    (match rcode with Some c -> string_of_int c | None -> "-")
    (if code = rcode && Machine.equal st vmm.st.m then "precise recovery OK"
     else "DIVERGED");
  Format.printf
    "DAR seen by handler: 0x%x (the unmapped sentinel)@\nrollbacks: %d  \
     interpretation episodes: %d@."
    vmm.st.m.gpr.(25) vmm.stats.rollbacks vmm.stats.interp_episodes;
  if code <> rcode then exit 1
