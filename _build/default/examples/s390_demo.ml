(* Dynamically re-architecting DAISY for S/390 (Appendix E).

   The same translator, tree-VLIW machine and VMM that run PowerPC
   binaries here run an S/390 binary: a string-to-upper routine built
   from the CISCy pieces the paper highlights — base+index+displacement
   addressing under the 31-bit effective-address mask, an MVC
   storage-to-storage move decomposed into RISC byte primitives, CLI/TM
   condition-code tests mapped one-hot onto a condition field, and
   BAL/BCR call/return through plain GPRs (S/390 branches are all
   register-indirect, which the resulting trees make very visible).

     dune exec examples/s390_demo.exe *)

module A = S390.Asm
module Vec = Translator.Vec

let li16 a r v =
  A.la a r (v lsr 4);
  A.ins a (SLL (r, 4))

let build a =
  A.org a 0x100;
  A.word a Ppc.Mem.mmio_halt;
  A.org a 0x800;
  A.label a "main";
  A.set_base a "base";
  (* copy the 12-byte source string to a work buffer with MVC *)
  li16 a 6 0x2000;  (* source *)
  li16 a 7 0x2100;  (* work *)
  A.ins a (MVC (11, 0, 7, 0, 6));
  (* uppercase the work buffer: 12 iterations of load/test/adjust *)
  A.la a 5 12;
  A.la a 2 0;       (* count of letters uppercased *)
  A.label a "loop";
  A.ins a (SI (CLI, 0, 7, 0x61));      (* < 'a'? *)
  A.bl_ a "next";
  A.ins a (SI (CLI, 0, 7, 0x7A));      (* > 'z'? *)
  A.bh a "next";
  A.ins a (RX (IC, 8, 0, 7, 0));       (* insert character *)
  A.la a 9 0x20;
  A.sr a 8 9;                          (* to upper *)
  A.ins a (RX (STC, 8, 0, 7, 0));
  A.la a 9 1;
  A.ar a 2 9;
  A.label a "next";
  A.la a 9 1;
  A.ar a 7 9;
  A.bct a 5 "loop";
  (* call a checksum routine through BAL/BCR *)
  li16 a 7 0x2100;
  A.bal a 14 "checksum";
  (* exit code: checksum + 256 * letters *)
  A.ins a (SLL (2, 8));
  A.ar a 2 10;
  A.ins a (RX (L, 3, 0, 0, 0x100));
  A.ins a (RX (ST_, 2, 0, 3, 0));
  (* r10 <- byte sum of 12 bytes at r7 *)
  A.label a "checksum";
  A.la a 10 0;
  A.la a 5 12;
  A.la a 11 0;
  A.label a "ck_loop";
  A.ins a (RX (IC, 11, 0, 7, 0));
  A.ar a 10 11;
  A.la a 9 1;
  A.ar a 7 9;
  A.bct a 5 "ck_loop";
  A.br a 14

let init mem = Ppc.Mem.blit_string mem 0x2000 "Daisy/s390!\x00"

let () =
  (* reference: the S/390 interpreter *)
  let mem = Ppc.Mem.create 0x40000 in
  let a = A.create () in
  build a;
  let labels = A.assemble a mem in
  init mem;
  let st = Ppc.Machine.create () in
  st.pc <- A.resolve labels "main";
  let it = S390.Interp.create st mem in
  let rcode = S390.Interp.run it ~fuel:100_000 in

  (* DAISY with the S/390 front end *)
  let mem2 = Ppc.Mem.create 0x40000 in
  let a2 = A.create () in
  build a2;
  let labels2 = A.assemble a2 mem2 in
  init mem2;
  let vmm = Vmm.Monitor.create ~frontend:S390.Frontend.s390 mem2 in
  let dcode =
    Vmm.Monitor.run vmm ~entry:(A.resolve labels2 "main") ~fuel:200_000
  in
  Format.printf "S/390 under DAISY: exit %s (interpreter: %s) — %s@."
    (match dcode with Some c -> string_of_int c | None -> "-")
    (match rcode with Some c -> string_of_int c | None -> "-")
    (if rcode = dcode && Ppc.Machine.equal st vmm.st.m then "states agree"
     else "DIVERGED");
  Format.printf "uppercased copy: %S@."
    (Ppc.Mem.read_string mem2 0x2100 11);
  Format.printf
    "base instructions %d, tree VLIWs executed %d (ILP %.2f); \
     register-indirect cross-page branches: %d@.@."
    it.icount vmm.stats.vliws
    (float_of_int it.icount /. float_of_int (max 1 vmm.stats.vliws))
    vmm.stats.cross_gpr;
  (* show a few of the translated trees, Appendix-E style *)
  (match Hashtbl.find_opt vmm.tr.pages 0 with
  | Some page ->
    print_endline "First tree VLIWs of the translation:";
    let shown = ref 0 in
    Vec.iter
      (fun v ->
        if !shown < 4 then (
          incr shown;
          Format.printf "%a@." Vliw.Tree.pp v))
      page.vliws
  | None -> ())
