(* The parallelism ladder (Chapters 5 and 6).

   For one workload, measure ILP at each rung between a minimal machine
   and the oracle: the in-order base machine, DAISY on the smallest and
   the biggest configuration, the traditional compiler, and the oracle
   schedule of the dynamic trace with unlimited resources — the gap the
   paper's interpretive-compilation proposal aims to close.

     dune exec examples/oracle_gap.exe [workload]      *)

module Params = Translator.Params

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c_sieve" in
  let w = Workloads.Registry.by_name name in
  Format.printf "Parallelism ladder for %s:@." w.name;
  let inorder = Baseline.Inorder.run w in
  Format.printf "  %-34s %6.2f@." "in-order base machine (604E-class)" inorder.ipc;
  let small =
    Vmm.Run.run ~params:{ Params.default with config = Vliw.Config.figure_5_1.(0) } w
  in
  Format.printf "  %-34s %6.2f@." "DAISY, 4-issue (4-2-2-1)" small.ilp_inf;
  let eight =
    Vmm.Run.run ~params:{ Params.default with config = Vliw.Config.eight_issue } w
  in
  Format.printf "  %-34s %6.2f@." "DAISY, 8-issue (8-8-4-3)" eight.ilp_inf;
  let big = Vmm.Run.run w in
  Format.printf "  %-34s %6.2f@." "DAISY, 24-issue (24-16-8-7)" big.ilp_inf;
  let trad = Vmm.Run.run ~params:(Baseline.Tradcomp.params w) w in
  Format.printf "  %-34s %6.2f@." "traditional VLIW compiler" trad.ilp_inf;
  let oracle = Baseline.Oracle.run w in
  Format.printf "  %-34s %6.2f@." "oracle (unlimited, perfect)" oracle.ilp
