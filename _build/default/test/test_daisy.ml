(* Differential tests: every program must produce exactly the same exit
   code, architected register state, memory image and console output
   when run under DAISY (translate + VLIW execution + VMM recovery) as
   under the reference interpreter. *)

open Ppc
module Params = Translator.Params

let mem_size = 0x40000

(* Build a fresh memory image from an assembler program. *)
let build_mem build =
  let mem = Mem.create mem_size in
  let a = Asm.create () in
  build a;
  let labels = Asm.assemble a mem in
  (mem, labels)

let run_ref build ~entry ~fuel =
  let mem, labels = build_mem build in
  let st = Machine.create () in
  st.pc <- Hashtbl.find labels entry;
  let t = Interp.create st mem in
  let code = Interp.run t ~fuel in
  (code, st, mem, t)

let run_daisy ?(params = Params.default) build ~entry ~fuel =
  let mem, labels = build_mem build in
  let vmm = Vmm.Monitor.create ~params mem in
  let code = Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels entry) ~fuel in
  (code, vmm.st.m, mem, vmm)

(* Compare a program across the two execution engines. *)
let differential ?(params = Params.default) ?(fuel = 2_000_000) name build =
  let rcode, rst, rmem, _ = run_ref build ~entry:"main" ~fuel in
  let dcode, dst, dmem, _ = run_daisy ~params build ~entry:"main" ~fuel in
  Alcotest.(check (option int)) (name ^ ": exit code") rcode dcode;
  Alcotest.(check bool)
    (name ^ ": architected state")
    true (Machine.equal rst dst);
  Alcotest.(check string) (name ^ ": console") (Mem.output rmem) (Mem.output dmem);
  Alcotest.(check bool)
    (name ^ ": memory image")
    true (Bytes.equal rmem.bytes dmem.bytes)

let exit_with a rs = Asm.halt a ~scratch:31 rs

(* ------------------------------------------------------------------ *)
(* Hand-written programs                                               *)

let t_straightline () =
  differential "straightline" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 7;
      Asm.li a 2 5;
      Asm.add a 3 1 2;
      Asm.mullw a 4 3 3;
      Asm.sub a 5 4 1;
      Asm.xor a 6 5 4;
      exit_with a 5)

let t_branches () =
  differential "branches" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 10;
      Asm.li a 2 0;
      Asm.label a "loop";
      Asm.cmpwi a 1 5;
      Asm.bc a Asm.Gt "big";
      Asm.addi a 2 2 1;
      Asm.b a "next";
      Asm.label a "big";
      Asm.addi a 2 2 100;
      Asm.label a "next";
      Asm.addi a 1 1 (-1);
      Asm.cmpwi a 1 0;
      Asm.bc a Asm.Ne "loop";
      exit_with a 2)

let t_bdnz_sum () =
  differential "bdnz sum" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 100;
      Asm.mtctr a 1;
      Asm.li a 2 0;
      Asm.li a 3 0;
      Asm.label a "loop";
      Asm.addi a 3 3 1;
      Asm.add a 2 2 3;
      Asm.bdnz a "loop";
      exit_with a 2)

let t_memory () =
  differential "loads and stores" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 0x8000;
      Asm.li a 2 50;
      Asm.mtctr a 2;
      Asm.li a 3 0;
      (* fill array with i*i *)
      Asm.li a 4 0;
      Asm.label a "fill";
      Asm.mullw a 5 4 4;
      Asm.slwi a 6 4 2;
      Asm.stwx a 5 1 6;
      Asm.addi a 4 4 1;
      Asm.bdnz a "fill";
      (* sum it *)
      Asm.li a 2 50;
      Asm.mtctr a 2;
      Asm.li a 4 0;
      Asm.li a 7 0;
      Asm.label a "sum";
      Asm.slwi a 6 4 2;
      Asm.lwzx a 5 1 6;
      Asm.add a 7 7 5;
      Asm.addi a 4 4 1;
      Asm.bdnz a "sum";
      exit_with a 7)

let t_call_chain () =
  differential "calls" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 3 3;
      Asm.bl a "f";
      Asm.bl a "f";
      Asm.bl a "g";
      exit_with a 3;
      Asm.label a "f";
      Asm.mullw a 3 3 3;
      Asm.blr a;
      Asm.label a "g";
      Asm.ins a (Mfspr (10, LR));
      Asm.addi a 3 3 1;
      Asm.ins a (Mtspr (LR, 10));
      Asm.blr a)

let t_carry_chain () =
  differential "carry chain" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 0xFFFF_FFFF;
      Asm.li a 2 1;
      Asm.ins a (Xo (Addc, 3, 1, 2, false));
      Asm.li a 4 10;
      Asm.ins a (Xo (Adde, 5, 4, 4, false));
      Asm.ins a (Xo (Adde, 6, 5, 5, false));
      Asm.ins a (Addic (7, 1, 1));
      Asm.ins a (Xo (Adde, 8, 7, 7, false));
      exit_with a 6)

let t_cr_ops () =
  differential "cr ops" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 3;
      Asm.cmpwi a 1 3;
      Asm.cmpwi ~cr:1 a 1 5;
      Asm.cmpwi ~cr:2 a 1 1;
      Asm.ins a (Crop (Crand, 0, 6, 2));
      Asm.ins a (Crop (Cror, 1, 5, 9));
      Asm.ins a (Mcrf (3, 1));
      Asm.ins a (Mfcr 6);
      exit_with a 6)

let t_mtcrf () =
  differential "mtcrf" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 0x1234_5678;
      Asm.ins a (Mtcrf (0xA5, 1));
      Asm.ins a (Mfcr 2);
      exit_with a 2)

let t_lmw_stmw () =
  differential "lmw/stmw" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 0x9000;
      Asm.li a 25 11;
      Asm.li a 26 22;
      Asm.li a 27 33;
      Asm.li a 28 44;
      Asm.li a 29 55;
      Asm.li a 30 66;
      Asm.ins a (Stmw (25, 1, 0));
      Asm.li a 25 0;
      Asm.li a 28 0;
      Asm.ins a (Lmw (25, 1, 0));
      Asm.add a 3 25 28;
      exit_with a 3)

let t_indirect () =
  differential "indirect dispatch" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 9 0;
      Asm.li a 10 4;  (* iterations *)
      Asm.label a "loop";
      (* select a handler by parity *)
      Asm.ins a (Andi (10, 11, 1));
      Asm.cmpwi a 11 0;
      Asm.bc a Asm.Eq "even";
      Asm.la a 5 "h_odd";
      Asm.b a "disp";
      Asm.label a "even";
      Asm.la a 5 "h_even";
      Asm.label a "disp";
      Asm.mtctr a 5;
      Asm.bctrl a;
      Asm.addi a 10 10 (-1);
      Asm.cmpwi a 10 0;
      Asm.bc a Asm.Ne "loop";
      exit_with a 9;
      Asm.label a "h_odd";
      Asm.addi a 9 9 1;
      Asm.blr a;
      Asm.label a "h_even";
      Asm.addi a 9 9 100;
      Asm.blr a)

let t_syscall () =
  differential "syscall through translated OS" (fun a ->
      Asm.org a Interp.Vector.syscall;
      (* handler: r3 = r3 * 2 + 1, return *)
      Asm.add a 3 3 3;
      Asm.addi a 3 3 1;
      Asm.ins a Rfi;
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 3 10;
      Asm.ins a Sc;
      Asm.ins a Sc;
      exit_with a 3)

let t_page_fault () =
  differential "page fault recovery" (fun a ->
      Asm.org a Interp.Vector.dsi;
      (* handler: note the fault, fix base register, retry *)
      Asm.ins a (Mfspr (20, DAR));
      Asm.li32 a 21 0x8000;  (* patch the bad pointer *)
      Asm.ins a (Mfspr (22, SRR0));
      Asm.ins a Rfi;
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 21 0x00E0_0000;  (* out of bounds *)
      Asm.li a 5 7;
      Asm.stw a 5 21 0;           (* faults; handler repairs r21 *)
      Asm.stw a 5 21 0;           (* retried store succeeds *)
      Asm.lwz a 3 21 0;
      Asm.add a 3 3 20;           (* fold DAR into result *)
      exit_with a 3)

let t_spec_load_fault () =
  (* A load that would fault sits after a guarding branch; speculation
     hoists it above the guard, the tag must be discarded on the taken
     path and honoured on the fall-through path. *)
  differential "guarded faulting load" (fun a ->
      Asm.org a Interp.Vector.dsi;
      Asm.li a 3 777;
      exit_with a 3;
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 4 0x00E0_0000;  (* bad pointer *)
      Asm.li a 5 1;
      Asm.cmpwi a 5 0;
      Asm.bc a Asm.Ne "skip";    (* always taken: load must not fault *)
      Asm.lwz a 6 4 0;
      Asm.label a "skip";
      Asm.li a 3 42;
      exit_with a 3)

let t_alias () =
  (* Store/load to the same address in quick succession: the load is
     hoisted above the store and the runtime alias check must recover. *)
  differential "store-load alias" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 0x8000;
      Asm.li32 a 2 0x8000;  (* same address through a different register *)
      Asm.li a 9 0;
      Asm.li a 10 20;
      Asm.mtctr a 10;
      Asm.label a "loop";
      Asm.stw a 9 1 0;      (* store i *)
      Asm.lwz a 5 2 0;      (* load must see i *)
      Asm.add a 9 9 5;
      Asm.addi a 9 9 1;
      Asm.bdnz a "loop";
      exit_with a 9)

let t_self_modify () =
  (* The program overwrites an instruction in its own page and must
     observe the new semantics (translation invalidation). *)
  differential "self-modifying code" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      (* patch target initially: addi r3, r3, 1 *)
      Asm.li a 3 0;
      Asm.bl a "patchee";
      (* overwrite the addi with addi r3, r3, 100 *)
      Asm.la a 5 "patch_site";
      Asm.li32 a 6 (Encode.encode (Addi (3, 3, 100)));
      Asm.stw a 6 5 0;
      Asm.ins a Isync;
      Asm.bl a "patchee";
      exit_with a 3;
      Asm.label a "patchee";
      Asm.label a "patch_site";
      Asm.addi a 3 3 1;
      Asm.blr a;
      Asm.align a 16)

let t_cross_page () =
  (* Code split across two 4K pages exercises OFFPAGE branches. *)
  differential "cross page branches" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 3 0;
      Asm.li a 4 6;
      Asm.label a "loop";
      Asm.bl a "far";          (* lives on another page *)
      Asm.addi a 4 4 (-1);
      Asm.cmpwi a 4 0;
      Asm.bc a Asm.Ne "loop";
      exit_with a 3;
      Asm.org a 0x2100;        (* a different 4K page *)
      Asm.label a "far";
      Asm.addi a 3 3 5;
      Asm.blr a)

let t_mmio_seq () =
  (* Loads from the I/O sequence register must happen exactly once
     each, in order — speculative I/O loads must be deferred. *)
  differential "mmio sequence register" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li32 a 1 Mem.mmio_seq;
      Asm.li a 9 0;
      Asm.li a 10 5;
      Asm.mtctr a 10;
      Asm.label a "loop";
      Asm.lwz a 5 1 0;   (* seq register increments per read *)
      Asm.add a 9 9 5;
      Asm.bdnz a "loop";
      exit_with a 9)

let t_srawi_ca () =
  differential "srawi carry" (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 (-7);
      Asm.ins a (Srawi (2, 1, 1, false));   (* -4, CA=1 *)
      Asm.li a 3 0;
      Asm.ins a (Xo (Adde, 4, 3, 3, false));
      Asm.li a 5 8;
      Asm.ins a (Srawi (6, 5, 2, false));   (* 2, CA=0 *)
      Asm.ins a (Xo (Adde, 7, 4, 4, false));
      exit_with a 7)

let t_window_pressure () =
  (* Long dependent chain to push paths past the window limit. *)
  differential "window pressure"
    ~params:{ Params.default with window = 8 }
    (fun a ->
      Asm.org a 0x1000;
      Asm.label a "main";
      Asm.li a 1 1;
      for _ = 1 to 60 do
        Asm.add a 1 1 1
      done;
      exit_with a 1)

(* ------------------------------------------------------------------ *)
(* Ablations: each switch must preserve correctness.                   *)

let ablation name params =
  Alcotest.test_case name `Quick (fun () ->
      differential ~params name (fun a ->
          Asm.org a 0x1000;
          Asm.label a "main";
          Asm.li32 a 1 0x8000;
          Asm.li a 2 30;
          Asm.mtctr a 2;
          Asm.li a 3 0;
          Asm.li a 4 1;
          Asm.label a "loop";
          Asm.stw a 3 1 0;
          Asm.lwz a 5 1 0;
          Asm.add a 3 5 4;
          Asm.cmpwi a 3 100;
          Asm.bc a Asm.Gt "reset";
          Asm.b a "cont";
          Asm.label a "reset";
          Asm.li a 3 0;
          Asm.label a "cont";
          Asm.bdnz a "loop";
          exit_with a 3))

(* ------------------------------------------------------------------ *)
(* Random differential programs                                        *)

(* Generate structurally-valid random programs: straight-line arithmetic
   over r1..r8, guarded loads/stores into a scratch buffer, a few
   forward branches, a bounded loop. *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 1 8 in
  let body_insn =
    frequency
      [ (4, map3 (fun t a b -> `I (Insn.Xo (Add, t, a, b, false))) reg reg reg);
        (2, map3 (fun t a b -> `I (Insn.Xo (Subf, t, a, b, false))) reg reg reg);
        (2, map3 (fun t a b -> `I (Insn.Xo (Mullw, t, a, b, false))) reg reg reg);
        (2, map3 (fun t a b -> `I (Insn.X (Xor_, t, a, b, false))) reg reg reg);
        (2, map3 (fun t a b -> `I (Insn.X (And_, t, a, b, false))) reg reg reg);
        (1, map3 (fun t a b -> `I (Insn.Xo (Addc, t, a, b, false))) reg reg reg);
        (1, map3 (fun t a b -> `I (Insn.Xo (Adde, t, a, b, false))) reg reg reg);
        (2, map2 (fun t v -> `I (Insn.Addi (t, t, v))) reg (int_range (-100) 100));
        (1, map2 (fun t a -> `I (Insn.X1 (Cntlzw, t, a, false))) reg reg);
        (1, map3 (fun t a sh -> `I (Insn.Rlwinm (t, a, sh, 0, 31, false))) reg reg (int_bound 31));
        (1, map2 (fun t a -> `I (Insn.Srawi (t, a, 3, false))) reg reg);
        (2, map2 (fun t slot -> `Load (t, slot)) reg (int_bound 15));
        (2, map2 (fun s slot -> `Store (s, slot)) reg (int_bound 15));
        (1, map2 (fun r v -> `CmpSkip (r, v)) reg (int_range (-50) 50)) ]
  in
  let* n = int_range 5 40 in
  let* body = list_repeat n body_insn in
  let* loop_count = int_range 1 8 in
  return (body, loop_count)

let program_to_asm (body, loop_count) a =
  Asm.org a 0x1000;
  Asm.label a "main";
  (* deterministic-ish initial values *)
  for r = 1 to 8 do
    Asm.li32 a r (r * 0x0101 + 7)
  done;
  Asm.li32 a 20 0x8000;  (* scratch buffer *)
  Asm.li a 21 loop_count;
  Asm.mtctr a 21;
  Asm.label a "loop";
  List.iteri
    (fun i item ->
      match item with
      | `I insn -> Asm.ins a insn
      | `Load (t, slot) -> Asm.lwz a t 20 (4 * slot)
      | `Store (s, slot) -> Asm.stw a s 20 (4 * slot)
      | `CmpSkip (r, v) ->
        let lbl = Printf.sprintf "skip%d" i in
        Asm.cmpwi a r v;
        Asm.bc a Asm.Lt lbl;
        Asm.addi a r r 1;
        Asm.label a lbl)
    body;
  Asm.bdnz a "loop";
  (* fold state into r3 *)
  Asm.li a 3 0;
  for r = 1 to 8 do
    Asm.add a 3 3 r
  done;
  Asm.halt a ~scratch:31 3

let prop_differential params_name params =
  QCheck.Test.make
    ~name:("random programs: daisy = interpreter (" ^ params_name ^ ")")
    ~count:120
    (QCheck.make gen_program)
    (fun prog ->
      let build = program_to_asm prog in
      let rcode, rst, rmem, _ = run_ref build ~entry:"main" ~fuel:500_000 in
      let dcode, dst, dmem, _ =
        run_daisy ~params build ~entry:"main" ~fuel:500_000
      in
      rcode = dcode && Machine.equal rst dst && Bytes.equal rmem.bytes dmem.bytes)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_differential "default" Params.default;
        prop_differential "no-rename" { Params.default with rename = false };
        prop_differential "no-load-spec" { Params.default with load_spec = false };
        prop_differential "single-path" { Params.default with multipath = false };
        prop_differential "tiny-machine"
          { Params.default with config = Vliw.Config.figure_5_1.(0) };
        prop_differential "small-pages" { Params.default with page_size = 256 } ]
  in
  Alcotest.run "daisy"
    [ ( "differential",
        [ Alcotest.test_case "straightline" `Quick t_straightline;
          Alcotest.test_case "branches" `Quick t_branches;
          Alcotest.test_case "bdnz sum" `Quick t_bdnz_sum;
          Alcotest.test_case "memory" `Quick t_memory;
          Alcotest.test_case "calls" `Quick t_call_chain;
          Alcotest.test_case "carry chain" `Quick t_carry_chain;
          Alcotest.test_case "cr ops" `Quick t_cr_ops;
          Alcotest.test_case "mtcrf" `Quick t_mtcrf;
          Alcotest.test_case "lmw/stmw" `Quick t_lmw_stmw;
          Alcotest.test_case "indirect" `Quick t_indirect;
          Alcotest.test_case "syscall" `Quick t_syscall;
          Alcotest.test_case "page fault" `Quick t_page_fault;
          Alcotest.test_case "guarded faulting load" `Quick t_spec_load_fault;
          Alcotest.test_case "store-load alias" `Quick t_alias;
          Alcotest.test_case "self-modifying" `Quick t_self_modify;
          Alcotest.test_case "cross page" `Quick t_cross_page;
          Alcotest.test_case "mmio sequence" `Quick t_mmio_seq;
          Alcotest.test_case "srawi carry" `Quick t_srawi_ca;
          Alcotest.test_case "window pressure" `Quick t_window_pressure ] );
      ( "ablations",
        [ ablation "no renaming" { Params.default with rename = false };
          ablation "no load speculation" { Params.default with load_spec = false };
          ablation "single path" { Params.default with multipath = false };
          ablation "256-byte pages" { Params.default with page_size = 256 };
          ablation "smallest machine"
            { Params.default with config = Vliw.Config.figure_5_1.(0) } ] );
      ("random", qsuite) ]
