(* Tests for the workload substrate: deterministic inputs, host-side
   checks of the algorithms the assembly implements (golden values
   computed in OCaml), and structural properties of the images. *)

open Workloads

let test_inputs_deterministic () =
  Alcotest.(check string) "text" (Inputs.text ~seed:7 500) (Inputs.text ~seed:7 500);
  Alcotest.(check bool) "seeds differ" true
    (Inputs.text ~seed:7 500 <> Inputs.text ~seed:8 500);
  Alcotest.(check bool) "ints" (true)
    (Inputs.ints ~seed:3 100 = Inputs.ints ~seed:3 100)

let test_needles_planted () =
  let needle = "zyxq" in
  let s = Inputs.text_with_needles ~needle ~count:10 4000 in
  let count = ref 0 in
  for i = 0 to String.length s - String.length needle do
    if String.sub s i (String.length needle) = needle then incr count
  done;
  Alcotest.(check int) "all planted needles present" 10 !count

(* host-side golden values for the workload exit codes *)

let wc_expected () =
  let s = Inputs.text ~seed:4242 (24 * 1024) in
  let lines = ref 0 and words = ref 0 and in_word = ref false in
  String.iter
    (fun c ->
      if c = '\n' then incr lines;
      if c = ' ' || c = '\n' || c = '\t' then in_word := false
      else if not !in_word then (
        incr words;
        in_word := true))
    s;
  !words + !lines

let test_wc_golden () =
  let w = Registry.by_name "wc" in
  let code, _, _, _ = Vmm.Run.reference w in
  Alcotest.(check (option int)) "wc result matches host computation"
    (Some (wc_expected ())) code

let test_cmp_golden () =
  let w = Registry.by_name "cmp" in
  let code, _, _, _ = Vmm.Run.reference w in
  Alcotest.(check (option int)) "cmp finds the planted difference"
    (Some ((16 * 1024) - 250)) code

let test_fgrep_golden () =
  let w = Registry.by_name "fgrep" in
  let code, _, _, _ = Vmm.Run.reference w in
  Alcotest.(check (option int)) "fgrep counts the planted needles" (Some 37) code

let test_sieve_golden () =
  (* primes of the classic benchmark form: count i in [0,8191) with
     flags semantics of the Stanford sieve *)
  let n = 8191 in
  let flags = Array.make n true in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if flags.(i) then begin
      let prime = i + i + 3 in
      let k = ref (i + prime) in
      while !k < n do
        flags.(!k) <- false;
        k := !k + prime
      done;
      incr count
    end
  done;
  let w = Registry.by_name "c_sieve" in
  let code, _, _, _ = Vmm.Run.reference w in
  Alcotest.(check (option int)) "sieve counts primes" (Some !count) code

let test_sort_sorts () =
  (* after the run, the array in memory must be the host-sorted input *)
  let w = Registry.by_name "sort" in
  let code, _, mem, _ = Vmm.Run.reference w in
  Alcotest.(check bool) "did not fail verify" true (code <> Some 0xBAD);
  let expect = Inputs.ints ~seed:5150 2048 in
  Array.sort compare expect;
  let ok = ref true in
  Array.iteri
    (fun i v -> if Ppc.Mem.load32 mem (Wl.data_base + (4 * i)) <> v then ok := false)
    expect;
  Alcotest.(check bool) "memory holds the sorted array" true !ok

let test_compress_roundtrippable () =
  (* LZW invariant: every emitted code is < next_code at emission time;
     verify the output decodes back to the input with a host decoder *)
  let w = Registry.by_name "compress" in
  let code, _, mem, _ = Vmm.Run.reference w in
  Alcotest.(check bool) "ran" true (code <> None);
  let input = Inputs.text ~seed:95 (16 * 1024) in
  (* read emitted halfword codes until we reproduce the input length *)
  let dict = Hashtbl.create 4096 in
  let next_code = ref 256 in
  let out = Buffer.create (String.length input) in
  let str_of c = if c < 256 then String.make 1 (Char.chr c) else Hashtbl.find dict c in
  let pos = ref Wl.out_base in
  let read_code () =
    let v = Ppc.Mem.load16 mem !pos in
    pos := !pos + 2;
    v
  in
  let prev = ref (read_code ()) in
  Buffer.add_string out (str_of !prev);
  (try
     while Buffer.length out < String.length input do
       let c = read_code () in
       let s =
         if c < !next_code then str_of c
         else str_of !prev ^ String.make 1 (str_of !prev).[0]
       in
       Buffer.add_string out s;
       Hashtbl.replace dict !next_code (str_of !prev ^ String.make 1 s.[0]);
       incr next_code;
       prev := c
     done
   with Not_found -> Alcotest.fail "decoder lost sync");
  Alcotest.(check bool) "LZW output decodes to the input" true
    (Buffer.contents out = input)

let test_gcc_vm_host_model () =
  (* replay the bytecode program on a host-side model of the VM *)
  let w = Registry.by_name "gcc" in
  let code, _, _, _ = Vmm.Run.reference w in
  let funs k x =
    let u32 v = v land 0xFFFF_FFFF in
    match k mod 4 with
    | 0 -> u32 ((u32 (x * (3 + (k mod 7))) lxor (k * 0x61 land 0xFFFF)) + k)
    | 1 ->
      let x = ref x in
      for _ = 1 to 3 + (k mod 3) do
        x := u32 (!x + (!x lsr 3) + 1)
      done;
      !x
    | 2 -> u32 (u32 (x lsl (1 + (k mod 4))) - x) lor (k land 0xFFFF)
    | _ -> if x land 1 <> 0 then u32 (x + 100 + k) else u32 ((x lsr 1) + k + 1)
  in
  let prog = Array.of_list (Gccsim.bytecode ()) in
  let vars = Array.make 64 0 and stack = Array.make 1024 0 in
  let sp = ref 0 and pc = ref 0 and result = ref None in
  let u32 v = v land 0xFFFF_FFFF in
  while !result = None do
    let op, arg = prog.(!pc) in
    incr pc;
    if op = Gccsim.op_halt then (decr sp; result := Some stack.(!sp))
    else if op = Gccsim.op_push then (stack.(!sp) <- arg; incr sp)
    else if op = Gccsim.op_add then (sp := !sp - 2; stack.(!sp) <- u32 (stack.(!sp) + stack.(!sp + 1)); incr sp)
    else if op = Gccsim.op_sub then (sp := !sp - 2; stack.(!sp) <- u32 (stack.(!sp) - stack.(!sp + 1)); incr sp)
    else if op = Gccsim.op_mul then (sp := !sp - 2; stack.(!sp) <- u32 (stack.(!sp) * stack.(!sp + 1)); incr sp)
    else if op = Gccsim.op_xor then (sp := !sp - 2; stack.(!sp) <- stack.(!sp) lxor stack.(!sp + 1); incr sp)
    else if op = Gccsim.op_dup then (stack.(!sp) <- stack.(!sp - 1); incr sp)
    else if op = Gccsim.op_load then (stack.(!sp) <- vars.(arg); incr sp)
    else if op = Gccsim.op_store then (decr sp; vars.(arg) <- stack.(!sp))
    else if op = Gccsim.op_jnz then (decr sp; if stack.(!sp) <> 0 then pc := arg)
    else if op = Gccsim.op_call then stack.(!sp - 1) <- funs arg stack.(!sp - 1)
    else failwith "bad opcode"
  done;
  Alcotest.(check (option int)) "assembly VM matches host model" !result code

let test_mini_os_vectors () =
  (* the OS image places handlers at the architected vectors *)
  let w = Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "vector 0x%x populated" v)
        true
        (Ppc.Decode.decode (Ppc.Mem.fetch mem v) <> None))
    [ 0x300; 0x400; 0x500; 0x700; 0xC00 ]

let test_all_halt_within_fuel () =
  List.iter
    (fun (w : Wl.t) ->
      let code, _, _, it = Vmm.Run.reference w in
      Alcotest.(check bool) (w.name ^ " halts") true (code <> None);
      Alcotest.(check bool)
        (w.name ^ " uses < 80% of fuel")
        true
        (it.icount * 5 < w.fuel * 4))
    Registry.all

let () =
  Alcotest.run "workloads"
    [ ( "inputs",
        [ Alcotest.test_case "deterministic" `Quick test_inputs_deterministic;
          Alcotest.test_case "needles" `Quick test_needles_planted ] );
      ( "golden",
        [ Alcotest.test_case "wc" `Quick test_wc_golden;
          Alcotest.test_case "cmp" `Quick test_cmp_golden;
          Alcotest.test_case "fgrep" `Quick test_fgrep_golden;
          Alcotest.test_case "sieve" `Quick test_sieve_golden;
          Alcotest.test_case "sort" `Quick test_sort_sorts;
          Alcotest.test_case "compress decodes" `Quick test_compress_roundtrippable;
          Alcotest.test_case "gcc vm model" `Quick test_gcc_vm_host_model ] );
      ( "images",
        [ Alcotest.test_case "os vectors" `Quick test_mini_os_vectors;
          Alcotest.test_case "fuel budgets" `Quick test_all_halt_within_fuel ] ) ]
