test/test_workloads.ml: Alcotest Array Buffer Char Gccsim Hashtbl Inputs List Ppc Printf Registry String Vmm Wl Workloads
