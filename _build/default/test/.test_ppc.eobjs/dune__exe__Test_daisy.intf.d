test/test_daisy.mli:
