test/test_vmm.ml: Alcotest Array Asm Char Hashtbl List Mem Memsys Ppc String Translator Vliw Vmm Workloads
