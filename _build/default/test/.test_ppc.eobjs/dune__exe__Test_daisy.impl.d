test/test_daisy.ml: Alcotest Array Asm Bytes Encode Hashtbl Insn Interp List Machine Mem Ppc Printf QCheck QCheck_alcotest Translator Vliw Vmm
