test/test_translator.ml: Alcotest Array Asm Hashtbl List Mem Ppc Printf Random Translator Vliw
