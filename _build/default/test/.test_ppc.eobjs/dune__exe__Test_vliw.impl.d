test/test_vliw.ml: Alcotest Array Config Exec Layout List Op Ppc QCheck QCheck_alcotest Tree Vliw Vstate
