test/test_baseline.ml: Alcotest Asm Baseline Hashtbl Insn List Mem Memsys Ppc Printf Translator Vmm Workloads
