test/test_s390.ml: Alcotest Array Bytes List Ppc Printexc Printf QCheck QCheck_alcotest S390 Translator Vliw Vmm
