test/test_ppc.ml: Alcotest Array Asm Char Decode Encode Hashtbl Insn Interp List Machine Mem Ppc QCheck QCheck_alcotest
