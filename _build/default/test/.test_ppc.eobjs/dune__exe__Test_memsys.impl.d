test/test_memsys.ml: Alcotest Array Cache Hierarchy List Memsys QCheck QCheck_alcotest Tlb
