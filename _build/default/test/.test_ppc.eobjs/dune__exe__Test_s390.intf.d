test/test_s390.mli:
