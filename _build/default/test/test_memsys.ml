(* Tests for the memory-system models: set-associative caches (against
   a naive reference model), multi-level hierarchies and the TLB. *)

open Memsys

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_direct_mapped_conflict () =
  (* two lines mapping to the same set in a direct-mapped cache evict
     each other *)
  let c = Cache.create ~name:"t" ~size:1024 ~assoc:1 ~line:64 in
  Alcotest.(check bool) "cold miss" false (Cache.touch c 0);
  Alcotest.(check bool) "hit" true (Cache.touch c 0);
  Alcotest.(check bool) "conflict miss" false (Cache.touch c 1024);
  Alcotest.(check bool) "evicted" false (Cache.touch c 0)

let test_assoc_no_conflict () =
  let c = Cache.create ~name:"t" ~size:2048 ~assoc:2 ~line:64 in
  ignore (Cache.touch c 0);
  ignore (Cache.touch c 1024);
  Alcotest.(check bool) "way 1 retained" true (Cache.touch c 0);
  Alcotest.(check bool) "way 2 retained" true (Cache.touch c 1024)

let test_lru_eviction () =
  let c = Cache.create ~name:"t" ~size:2048 ~assoc:2 ~line:64 in
  ignore (Cache.touch c 0);       (* set 0, way A *)
  ignore (Cache.touch c 1024);    (* set 0, way B *)
  ignore (Cache.touch c 0);       (* A is now MRU *)
  ignore (Cache.touch c 2048);    (* evicts B (LRU) *)
  Alcotest.(check bool) "MRU kept" true (Cache.touch c 0);
  Alcotest.(check bool) "LRU evicted" false (Cache.touch c 1024)

let test_touch_range () =
  let c = Cache.create ~name:"t" ~size:4096 ~assoc:4 ~line:64 in
  Alcotest.(check bool) "spanning access misses" false (Cache.touch_range c 60 8);
  Alcotest.(check bool) "both lines present" true (Cache.touch_range c 60 8);
  Alcotest.(check int) "two misses recorded" 2 c.misses

let test_miss_rate_and_reset () =
  let c = Cache.create ~name:"t" ~size:1024 ~assoc:1 ~line:64 in
  ignore (Cache.touch c 0);
  ignore (Cache.touch c 0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Cache.miss_rate c);
  Cache.reset c;
  Alcotest.(check int) "reset" 0 c.accesses;
  Alcotest.(check bool) "cold again" false (Cache.touch c 0)

(* reference model: per set, a most-recently-used list of line numbers *)
let prop_cache_vs_reference =
  let gen = QCheck.Gen.(list_size (int_range 1 400) (int_bound 8191)) in
  QCheck.Test.make ~name:"cache agrees with reference LRU model" ~count:200
    (QCheck.make gen) (fun addrs ->
      let line = 16 and assoc = 2 and sets = 8 in
      let c = Cache.create ~name:"t" ~size:(line * assoc * sets) ~assoc ~line in
      let ref_sets = Array.make sets [] in
      List.for_all
        (fun addr ->
          let ln = addr / line in
          let s = ln mod sets in
          let hit_ref = List.mem ln ref_sets.(s) in
          let mru = ln :: List.filter (( <> ) ln) ref_sets.(s) in
          ref_sets.(s) <- List.filteri (fun i _ -> i < assoc) mru;
          let hit = Cache.touch c addr in
          hit = hit_ref)
        addrs)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)

let test_hierarchy_latencies () =
  let h = Hierarchy.paper_24issue () in
  let stall, l1 = Hierarchy.access h D 0x1000 4 in
  Alcotest.(check int) "full miss costs memory latency" 88 stall;
  Alcotest.(check bool) "not an L1 hit" false l1;
  let stall, l1 = Hierarchy.access h D 0x1000 4 in
  Alcotest.(check int) "L1 hit free" 0 stall;
  Alcotest.(check bool) "L1 hit" true l1;
  (* evict from tiny L1?  use the 8-issue hierarchy's 4K L1 *)
  let h8 = Hierarchy.paper_8issue () in
  ignore (Hierarchy.access h8 D 0 4);
  (* conflict out of the 4K direct... L1D is 4-way; fill the set *)
  ignore (Hierarchy.access h8 D 4096 4);
  ignore (Hierarchy.access h8 D 8192 4);
  ignore (Hierarchy.access h8 D 12288 4);
  ignore (Hierarchy.access h8 D 16384 4);
  let stall, _ = Hierarchy.access h8 D 0 4 in
  Alcotest.(check int) "L2 hit costs its latency" 4 stall

let test_hierarchy_i_d_split () =
  let h = Hierarchy.paper_24issue () in
  ignore (Hierarchy.access h I 0x4000 4);
  let stall, _ = Hierarchy.access h D 0x4000 4 in
  (* the D side missed L1 but hits the shared joint cache *)
  Alcotest.(check int) "joint hit after I fill" 12 stall

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)

let test_tlb () =
  let t = Tlb.create ~entries:16 ~assoc:4 () in
  Alcotest.(check bool) "cold" false (Tlb.touch t 5);
  Alcotest.(check bool) "hit" true (Tlb.touch t 5);
  Tlb.flush t;
  Alcotest.(check bool) "flushed" false (Tlb.touch t 5);
  Alcotest.(check (float 1e-9)) "rate" (2.0 /. 3.0) (Tlb.miss_rate t)

let test_tlb_capacity () =
  let t = Tlb.create ~entries:8 ~assoc:2 () in
  (* 4 sets x 2 ways; vpn k maps to set k mod 4 *)
  ignore (Tlb.touch t 0);
  ignore (Tlb.touch t 4);
  ignore (Tlb.touch t 8);  (* evicts vpn 0 (LRU in set 0) *)
  Alcotest.(check bool) "way kept" true (Tlb.touch t 4);
  Alcotest.(check bool) "LRU evicted" false (Tlb.touch t 0)

let () =
  Alcotest.run "memsys"
    [ ( "cache",
        [ Alcotest.test_case "direct-mapped conflicts" `Quick test_direct_mapped_conflict;
          Alcotest.test_case "associativity" `Quick test_assoc_no_conflict;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "range touch" `Quick test_touch_range;
          Alcotest.test_case "miss rate + reset" `Quick test_miss_rate_and_reset;
          QCheck_alcotest.to_alcotest prop_cache_vs_reference ] );
      ( "hierarchy",
        [ Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "I/D split + joint" `Quick test_hierarchy_i_d_split ] );
      ( "tlb",
        [ Alcotest.test_case "basic" `Quick test_tlb;
          Alcotest.test_case "capacity" `Quick test_tlb_capacity ] ) ]
