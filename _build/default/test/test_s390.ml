(* The second base architecture: S/390-subset tests.

   Encoding round trips, interpreter semantics (condition codes,
   address masking, MVC), and — the paper's headline claim — full
   differential equivalence between the S/390 interpreter and DAISY
   executing the same S/390 binary through the shared tree-VLIW
   machinery, with no changes to the scheduler or the VMM. *)

module A = S390.Asm
module I = S390.Insn
module SInterp = S390.Interp
module Params = Translator.Params

(* ------------------------------------------------------------------ *)
(* Encode / decode                                                     *)

let roundtrip i =
  let mem = Ppc.Mem.create 0x1000 in
  let _ = S390.Encode.store mem 0x100 i in
  match S390.Decode.decode mem 0x100 with
  | Some (i', len) ->
    Alcotest.(check string) (I.to_string i) (I.to_string i) (I.to_string i');
    Alcotest.(check int) "length" (S390.Encode.length i) len
  | None -> Alcotest.failf "%s did not decode" (I.to_string i)

let test_roundtrip () =
  List.iter roundtrip
    [ I.RR (LR_, 1, 2); RR (AR, 15, 0); RR (SR, 3, 3); RR (NR, 4, 5);
      RR (OR_, 6, 7); RR (XR_, 8, 9); RR (CR_, 10, 11); RR (LTR, 12, 13);
      BALR (14, 15); BALR (12, 0); BCR (15, 14); BCR (8, 3);
      RX (L, 1, 2, 3, 0xFFF); RX (ST_, 4, 0, 5, 0); RX (A, 6, 7, 8, 100);
      RX (S, 1, 0, 2, 4); RX (N, 1, 0, 2, 4); RX (O, 1, 0, 2, 4);
      RX (X, 1, 0, 2, 4); RX (C, 1, 0, 2, 4); RX (LA, 9, 10, 11, 2047);
      RX (LH, 1, 0, 2, 8); RX (STH, 1, 0, 2, 8); RX (STC, 1, 0, 2, 8);
      RX (IC, 1, 0, 2, 8); RX (BAL, 14, 0, 12, 0x400);
      RX (BCT, 5, 0, 12, 0x100); BC (7, 0, 12, 0x200); SLL (3, 31);
      SRL (4, 1); SI (MVI, 100, 3, 0xAB); SI (CLI, 200, 4, 0x20);
      SI (TM, 300, 5, 0x80); MVC (11, 64, 6, 128, 7) ]

let test_lengths () =
  Alcotest.(check int) "RR = 2 bytes" 2 (S390.Encode.length (I.RR (LR_, 1, 2)));
  Alcotest.(check int) "RX = 4" 4 (S390.Encode.length (I.RX (L, 1, 0, 2, 0)));
  Alcotest.(check int) "SS = 6" 6 (S390.Encode.length (I.MVC (3, 0, 1, 0, 2)))

let test_mvc_limit () =
  let mem = Ppc.Mem.create 0x1000 in
  let _ = S390.Encode.store mem 0x100 (I.MVC (40, 0, 1, 0, 2)) in
  Alcotest.(check bool) "over-limit MVC rejected" true
    (S390.Decode.decode mem 0x100 = None)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)

let run_s390 ?(fuel = 200_000) build =
  let mem = Ppc.Mem.create 0x40000 in
  let a = A.create () in
  build a;
  let labels = A.assemble a mem in
  let st = Ppc.Machine.create () in
  st.pc <- A.resolve labels "main";
  let it = SInterp.create st mem in
  let code = SInterp.run it ~fuel in
  (code, st, mem, it)

let build_prelude a =
  (* literal pool at a fixed low address *)
  A.org a 0x100;
  A.label a "lit_halt";
  A.word a Ppc.Mem.mmio_halt;
  A.org a 0x800;
  A.label a "main";
  A.set_base a "base"

(* load a 16-bit constant (multiple of 16) via la + sll *)
let li16 a r v =
  assert (v land 0xF = 0 && v lsr 4 <= 0xFFF);
  A.la a r (v lsr 4);
  A.ins a (SLL (r, 4))

(* exit with the value in r2 *)
let emit_halt a =
  A.ins a (RX (L, 3, 0, 0, 0x100));   (* r3 = &halt *)
  A.ins a (RX (ST_, 2, 0, 3, 0))      (* store r2 -> halt *)

let test_cc_arith () =
  let code, st, _, _ =
    run_s390 (fun a ->
        build_prelude a;
        A.la a 1 10;
        A.la a 2 10;
        A.sr a 2 1;                       (* 0 -> CC0 *)
        A.be a "was_zero";
        A.la a 2 999;
        emit_halt a;
        A.label a "was_zero";
        A.la a 5 7;
        A.ar a 2 5;                       (* 7 -> CC2 *)
        A.bh a "pos";
        A.la a 2 998;
        emit_halt a;
        A.label a "pos";
        A.lr a 2 5;
        emit_halt a)
  in
  Alcotest.(check (option int)) "flows through CC tests" (Some 7) code;
  Alcotest.(check int) "cc one-hot" (I.cc_to_field 2) (Ppc.Machine.get_crf st 0)

let test_address_mask () =
  (* LA masks to 31 bits even when the base has bit 31 set *)
  let _, st, _, _ =
    run_s390 (fun a ->
        A.org a 0x200;
        A.label a "big";
        A.word a 0x8000_1000;
        build_prelude a;
        A.ins a (RX (L, 4, 0, 0, 0x200));
        A.ins a (RX (LA, 5, 0, 4, 8));
        A.la a 2 0;
        emit_halt a)
  in
  Alcotest.(check int) "31-bit mask applied" 0x1008 st.gpr.(5)

let test_mvc_overlap () =
  (* the classic one-byte-overlap MVC propagates (memset behaviour) *)
  let _, _, mem, _ =
    run_s390 (fun a ->
        build_prelude a;
        A.la a 6 0x300;
        A.ins a (SI (MVI, 0, 6, 0x5A));            (* seed byte *)
        A.ins a (MVC (7, 1, 6, 0, 6));             (* 8 bytes, dst = src+1 *)
        A.la a 2 0;
        emit_halt a)
  in
  for k = 0 to 8 do
    Alcotest.(check int)
      (Printf.sprintf "byte %d propagated" k)
      0x5A
      (Ppc.Mem.load8 mem (0x300 + k))
  done

let test_bct_loop () =
  let code, _, _, it =
    run_s390 (fun a ->
        build_prelude a;
        A.la a 5 100;   (* counter *)
        A.la a 2 0;     (* sum *)
        A.la a 6 3;
        A.label a "loop";
        A.ar a 2 6;
        A.bct a 5 "loop";
        emit_halt a)
  in
  Alcotest.(check (option int)) "sum 3*100" (Some 300) code;
  Alcotest.(check bool) "ran the loop" true (it.icount > 200)

let test_bal_call () =
  let code, _, _, _ =
    run_s390 (fun a ->
        build_prelude a;
        A.la a 2 5;
        A.bal a 14 "double";
        A.bal a 14 "double";
        emit_halt a;
        A.label a "double";
        A.ar a 2 2;
        A.br a 14)
  in
  Alcotest.(check (option int)) "call/return twice" (Some 20) code

let test_tm_cli () =
  let code, _, _, _ =
    run_s390 (fun a ->
        build_prelude a;
        A.la a 6 0x300;
        A.ins a (SI (MVI, 0, 6, 0xA5));
        A.ins a (SI (TM, 0, 6, 0x80));   (* bit set -> CC2 (subset) *)
        A.bh a "bit_set";
        A.la a 2 111;
        emit_halt a;
        A.label a "bit_set";
        A.ins a (SI (CLI, 0, 6, 0xA5)); (* equal -> CC0 *)
        A.be a "eq";
        A.la a 2 222;
        emit_halt a;
        A.label a "eq";
        A.la a 2 42;
        emit_halt a)
  in
  Alcotest.(check (option int)) "tm + cli path" (Some 42) code

(* ------------------------------------------------------------------ *)
(* Differential: S/390 under DAISY                                     *)

let differential ?(params = Params.default) name build =
  let rcode, rst, rmem, _ = run_s390 build in
  let mem = Ppc.Mem.create 0x40000 in
  let a = A.create () in
  build a;
  let labels = A.assemble a mem in
  let vmm = Vmm.Monitor.create ~params ~frontend:S390.Frontend.s390 mem in
  let dcode =
    Vmm.Monitor.run vmm ~entry:(A.resolve labels "main") ~fuel:400_000
  in
  Alcotest.(check (option int)) (name ^ ": exit") rcode dcode;
  Alcotest.(check bool)
    (name ^ ": architected state")
    true
    (Ppc.Machine.equal rst vmm.st.m);
  Alcotest.(check bool)
    (name ^ ": memory")
    true
    (Bytes.equal rmem.bytes mem.bytes);
  vmm

let t_diff_arith () =
  ignore
    (differential "arith" (fun a ->
         build_prelude a;
         A.la a 1 100;
         A.la a 2 0;
         A.la a 3 17;
         A.label a "loop";
         A.ar a 2 3;
         A.ins a (RR (XR_, 3, 2));
         A.ins a (SLL (3, 1));
         A.ins a (SRL (3, 3));
         A.ins a (RR (NR, 3, 2));
         A.ins a (RR (OR_, 3, 1));
         A.bct a 1 "loop";
         emit_halt a))

let t_diff_memcpy () =
  let vmm =
    differential "memcpy via MVC" (fun a ->
        build_prelude a;
        (* source: 96 bytes seeded via STC loop *)
        A.la a 5 96;
        li16 a 6 0x2000;  (* src *)
        A.la a 7 0;
        A.label a "seed";
        A.lr a 8 7;
        A.ins a (SLL (8, 2));
        A.ins a (RX (STC, 8, 7, 6, 0));
        A.la a 9 1;
        A.ar a 7 9;
        A.bct a 5 "seed";
        (* copy 96 bytes in 12-byte MVCs *)
        A.la a 5 8;
        li16 a 6 0x2000;
        li16 a 10 0x2800; (* dst *)
        A.label a "copy";
        A.ins a (MVC (11, 0, 10, 0, 6));
        A.la a 9 12;
        A.ar a 6 9;
        A.ar a 10 9;
        A.bct a 5 "copy";
        (* checksum the copy *)
        A.la a 5 24;
        li16 a 10 0x2800;
        A.la a 2 0;
        A.label a "sum";
        A.ins a (RX (L, 8, 0, 10, 0));
        A.ar a 2 8;
        A.la a 9 4;
        A.ar a 10 9;
        A.bct a 5 "sum";
        emit_halt a)
  in
  Alcotest.(check bool) "register-indirect cross-page branches happened" true
    (vmm.stats.cross_gpr > 0)

let t_diff_search () =
  ignore
    (differential "byte scan with CLI" (fun a ->
         build_prelude a;
         (* plant a sentinel *)
         li16 a 6 0x2100;
         A.ins a (SI (MVI, 77, 6, 0xEE));
         A.la a 2 0;     (* index *)
         A.label a "scan";
         A.ins a (SI (CLI, 0, 6, 0xEE));
         A.be a "found";
         A.la a 9 1;
         A.ar a 6 9;
         A.ar a 2 9;
         A.b a "scan";
         A.label a "found";
         emit_halt a))

let t_diff_dispatch () =
  ignore
    (differential "indirect dispatch via BALR/BCR" (fun a ->
         build_prelude a;
         A.la a 2 0;
         A.la a 5 6;   (* iterations *)
         A.label a "loop";
         (* select handler by parity of r5 *)
         A.lr a 7 5;
         A.ins a (SI (MVI, 0x380, 0, 1));  (* scratch noise *)
         A.ins a (RR (NR, 7, 5));
         A.la a 8 1;
         A.ins a (RR (NR, 7, 8));
         A.ins a (RR (LTR, 7, 7));
         A.be a "even";
         A.bal a 14 "h_odd";
         A.b a "next";
         A.label a "even";
         A.bal a 14 "h_even";
         A.label a "next";
         A.bct a 5 "loop";
         emit_halt a;
         A.label a "h_odd";
         A.la a 9 1;
         A.ar a 2 9;
         A.br a 14;
         A.label a "h_even";
         A.la a 9 100;
         A.ar a 2 9;
         A.br a 14))

let t_diff_guarded () =
  (* the guarded indirect inlining of Chapter 6 must preserve results *)
  let vmm =
    differential "guarded inlining"
      ~params:{ Params.default with guard_indirect = true }
      (fun a ->
        build_prelude a;
        A.la a 2 0;
        A.la a 5 9;
        A.label a "loop";
        A.lr a 7 5;
        A.la a 8 1;
        A.ins a (RR (NR, 7, 8));
        A.ins a (RR (LTR, 7, 7));
        A.be a "even";
        A.bal a 14 "h_odd";
        A.b a "next";
        A.label a "even";
        A.bal a 14 "h_even";
        A.label a "next";
        A.bct a 5 "loop";
        emit_halt a;
        A.label a "h_odd";
        A.la a 9 1;
        A.ar a 2 9;
        A.br a 14;
        A.label a "h_even";
        A.la a 9 100;
        A.ar a 2 9;
        A.br a 14)
  in
  ignore vmm

let t_diff_tiny_machine () =
  ignore
    (differential "tiny machine config"
       ~params:{ Params.default with config = Vliw.Config.figure_5_1.(0) }
       (fun a ->
         build_prelude a;
         A.la a 1 40;
         A.la a 2 0;
         A.la a 3 5;
         li16 a 10 0x2200;
         A.label a "loop";
         A.ar a 2 3;
         A.ins a (RX (ST_, 2, 0, 10, 0));
         A.ins a (RX (L, 4, 0, 10, 0));
         A.ar a 2 4;
         A.bct a 1 "loop";
         emit_halt a))

let t_translated_trees () =
  (* the S/390 fragment really goes through the tree-VLIW machinery *)
  let mem = Ppc.Mem.create 0x40000 in
  let a = A.create () in
  build_prelude a;
  A.la a 1 4;
  A.la a 2 0;
  A.label a "loop";
  A.ar a 2 1;
  A.bct a 1 "loop";
  emit_halt a;
  let labels = A.assemble a mem in
  let tr =
    Translator.Translate.create ~frontend:S390.Frontend.s390 Params.default mem
  in
  let page, _ = Translator.Translate.entry tr (A.resolve labels "main") in
  Alcotest.(check bool) "several VLIWs" true (Translator.Vec.length page.vliws > 2);
  Alcotest.(check bool) "instructions scheduled" true (tr.totals.insns > 5)

let t_regress_split_selfupdate () =
  (* Regression: a self-updating instruction (AR r2,r2 reads and writes
     r2) whose value write and CC record land in different VLIWs, with
     an alias rollback in between, used to re-execute the update.  The
     staged-commit mechanism must keep every precise point consistent.
     The MVI stores into the word the loop reloads, forcing alias
     rollbacks every iteration. *)
  ignore
    (differential "split self-update + rollback" (fun a ->
         build_prelude a;
         li16 a 10 0x2000;
         A.la a 11 5;
         A.label a "loop";
         A.ins a (RX (L, 2, 0, 10, 20));
         A.ins a (RR (OR_, 4, 3));
         A.bc a 4 "sk";
         A.ar a 2 3;
         A.label a "sk";
         A.ins a (SI (MVI, 21, 10, 92));
         A.ins a (RR (XR_, 3, 2));
         A.ins a (RR (AR, 8, 8));
         A.bct a 11 "loop";
         A.ins a (RR (XR_, 2, 8));
         emit_halt a))

(* ------------------------------------------------------------------ *)
(* Random differential programs                                       *)

type ritem =
  | RRop of S390.Insn.rr_op * int * int
  | Shift of bool * int * int
  | LoadSlot of int * int
  | StoreSlot of int * int
  | Skip of int
  | Mvi of int * int
  | MvcSlots of int * int * int

let gen_item =
  let open QCheck.Gen in
  let reg = int_range 2 8 in
  oneof
    [ (let* op =
         oneofl S390.Insn.[ LR_; AR; SR; NR; OR_; XR_; CR_; LTR ]
       and* a = reg
       and* b = reg in
       return (RRop (op, a, b)));
      map3 (fun l r n -> Shift (l, r, n)) QCheck.Gen.bool reg (int_range 0 7);
      map2 (fun r s -> LoadSlot (r, s)) reg (int_bound 15);
      map2 (fun r s -> StoreSlot (r, s)) reg (int_bound 15);
      map (fun m -> Skip m) (oneofl [ 8; 7; 4; 2; 11; 13 ]);
      map2 (fun s v -> Mvi (s, v)) (int_bound 15) (int_bound 255);
      (let* l = int_range 0 7 and* d = int_bound 12 and* sr = int_bound 12 in
       return (MvcSlots (l, d, sr))) ]

let gen_program = QCheck.Gen.(list_size (int_range 4 30) gen_item)

let random_to_asm items a =
  A.org a 0x100;
  A.word a Ppc.Mem.mmio_halt;
  A.org a 0x800;
  A.label a "main";
  A.set_base a "base";
  (* seed registers and a scratch buffer pointer *)
  for r = 2 to 8 do
    A.la a r ((r * 97) + 5)
  done;
  li16 a 10 0x2000;
  A.la a 11 5;  (* outer loop count *)
  A.label a "loop";
  List.iteri
    (fun i item ->
      match item with
      | RRop (op, r1, r2) -> A.ins a (RR (op, r1, r2))
      | Shift (left, r, n) -> A.ins a (if left then SLL (r, n) else SRL (r, n))
      | LoadSlot (r, s) -> A.ins a (RX (L, r, 0, 10, 4 * s))
      | StoreSlot (r, s) -> A.ins a (RX (ST_, r, 0, 10, 4 * s))
      | Skip m ->
        let lbl = Printf.sprintf "sk%d" i in
        A.bc a m lbl;
        A.ins a (RR (AR, 2, 3));
        A.label a lbl
      | Mvi (s, v) -> A.ins a (SI (MVI, (4 * s) + 1, 10, v))
      | MvcSlots (l, d, sr) -> A.ins a (MVC (l, d, 10, 64 + sr, 10)))
    items;
  A.bct a 11 "loop";
  (* fold registers into r2 and halt *)
  for r = 3 to 8 do
    A.ins a (RR (XR_, 2, r))
  done;
  emit_halt a

let prop_random params_name params =
  QCheck.Test.make
    ~name:("random s390 programs: daisy = interpreter (" ^ params_name ^ ")")
    ~count:80 (QCheck.make gen_program)
    (fun items ->
      try
      let build = random_to_asm items in
      let rcode, rst, rmem, _ = run_s390 ~fuel:100_000 build in
      let mem = Ppc.Mem.create 0x40000 in
      let a = A.create () in
      build a;
      let labels = A.assemble a mem in
      let vmm = Vmm.Monitor.create ~params ~frontend:S390.Frontend.s390 mem in
      let dcode =
        Vmm.Monitor.run vmm ~entry:(A.resolve labels "main") ~fuel:300_000
      in
      rcode = dcode
      && Ppc.Machine.equal rst vmm.st.m
      && Bytes.equal rmem.bytes mem.bytes
      with e ->
        Printf.printf "EXN: %s\n%!" (Printexc.to_string e);
        false)

let random_suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random "default" Params.default;
      prop_random "guarded" { Params.default with guard_indirect = true };
      prop_random "tiny machine"
        { Params.default with config = Vliw.Config.figure_5_1.(0) };
      prop_random "small pages" { Params.default with page_size = 512 } ]

let () =
  Alcotest.run "s390"
    [ ( "codec",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "lengths" `Quick test_lengths;
          Alcotest.test_case "mvc limit" `Quick test_mvc_limit ] );
      ( "interp",
        [ Alcotest.test_case "condition codes" `Quick test_cc_arith;
          Alcotest.test_case "address mask" `Quick test_address_mask;
          Alcotest.test_case "mvc overlap" `Quick test_mvc_overlap;
          Alcotest.test_case "bct loop" `Quick test_bct_loop;
          Alcotest.test_case "bal call" `Quick test_bal_call;
          Alcotest.test_case "tm + cli" `Quick test_tm_cli ] );
      ( "differential",
        [ Alcotest.test_case "arith loop" `Quick t_diff_arith;
          Alcotest.test_case "memcpy via MVC" `Quick t_diff_memcpy;
          Alcotest.test_case "byte scan" `Quick t_diff_search;
          Alcotest.test_case "dispatch" `Quick t_diff_dispatch;
          Alcotest.test_case "tiny machine" `Quick t_diff_tiny_machine;
          Alcotest.test_case "guarded inlining" `Quick t_diff_guarded;
          Alcotest.test_case "tree translation" `Quick t_translated_trees;
          Alcotest.test_case "split self-update + rollback" `Quick
            t_regress_split_selfupdate ] );
      ("random", random_suite) ]
