(* Tests for the comparison models: profile collection, the oracle
   scheduler and the in-order pipeline model. *)

module Params = Translator.Params

let test_profile_counts () =
  let w = Workloads.Registry.by_name "cmp" in
  let tbl = Baseline.Profile.collect w in
  Alcotest.(check bool) "found branches" true (Hashtbl.length tbl > 0);
  Hashtbl.iter
    (fun pc (taken, total) ->
      Alcotest.(check bool)
        (Printf.sprintf "branch 0x%x: taken <= total" pc)
        true
        (taken >= 0 && taken <= total))
    tbl;
  (* cmp's main loop branch is strongly biased *)
  let max_total = Hashtbl.fold (fun _ (_, n) acc -> max acc n) tbl 0 in
  Alcotest.(check bool) "hot loop profiled" true (max_total > 10_000)

let test_oracle_bounds () =
  List.iter
    (fun (w : Workloads.Wl.t) ->
      let o = Baseline.Oracle.run w in
      let d = Vmm.Run.run w in
      Alcotest.(check bool)
        (w.name ^ ": oracle >= DAISY")
        true (o.ilp >= d.ilp_inf -. 0.01);
      Alcotest.(check int) (w.name ^ ": same trace length") d.base_insns o.insns;
      Alcotest.(check bool) (w.name ^ ": oracle cycles positive") true (o.cycles > 0))
    Workloads.Registry.all

let test_oracle_serial_chain () =
  (* a pure dependence chain has oracle ILP ~1 *)
  let open Ppc in
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  Workloads.Wl.mini_os a;
  Asm.org a 0x1000;
  Asm.label a "main";
  Asm.li a 1 1;
  for _ = 1 to 200 do
    Asm.add a 1 1 1
  done;
  Asm.mr a 3 1;
  Asm.halt a ~scratch:31 3;
  let labels = Asm.assemble a mem in
  ignore labels;
  (* wrap as a workload *)
  let w : Workloads.Wl.t =
    { name = "chain";
      description = "serial chain";
      build =
        (fun a ->
          Asm.label a "main";
          Asm.li a 1 1;
          for _ = 1 to 200 do
            Asm.add a 1 1 1
          done;
          Asm.mr a 3 1;
          Asm.halt a ~scratch:31 3);
      init = (fun _ _ -> ());
      mem_size = 0x40000;
      fuel = 100_000 }
  in
  let o = Baseline.Oracle.run w in
  Alcotest.(check bool) "serial chain near ILP 1" true (o.ilp < 1.3)

let test_oracle_parallel () =
  (* independent operations have high oracle ILP *)
  let w : Workloads.Wl.t =
    { name = "par";
      description = "independent ops";
      build =
        (fun a ->
          let open Ppc in
          Asm.label a "main";
          for r = 1 to 8 do
            Asm.li a r r
          done;
          for _ = 1 to 40 do
            for r = 1 to 8 do
              Asm.ins a (Insn.Xo (Add, r, r, r, false))
            done
          done;
          Asm.mr a 3 1;
          Asm.halt a ~scratch:31 3);
      init = (fun _ _ -> ());
      mem_size = 0x40000;
      fuel = 100_000 }
  in
  let o = Baseline.Oracle.run w in
  Alcotest.(check bool) "independent chains parallel" true (o.ilp > 4.0)

let test_inorder_bounds () =
  List.iter
    (fun (w : Workloads.Wl.t) ->
      let r = Baseline.Inorder.run w in
      Alcotest.(check bool) (w.name ^ ": ipc <= width") true (r.ipc <= 2.0);
      Alcotest.(check bool) (w.name ^ ": ipc > 0.2") true (r.ipc > 0.2))
    Workloads.Registry.all

let test_inorder_below_daisy () =
  let ipcs =
    List.map (fun w -> (Baseline.Inorder.run w).Baseline.Inorder.ipc)
      Workloads.Registry.all
  in
  let daisy =
    List.map
      (fun w ->
        (Vmm.Run.run ~hierarchy:(Memsys.Hierarchy.paper_24issue ()) w).ilp_fin)
      Workloads.Registry.all
  in
  let mean xs = List.fold_left ( +. ) 0. xs /. 8.0 in
  Alcotest.(check bool) "DAISY mean well above the in-order base" true
    (mean daisy > 1.5 *. mean ipcs)

let test_trad_beats_daisy_on_average () =
  let subset = [ "compress"; "lex"; "fgrep"; "sort"; "c_sieve" ] in
  let pairs =
    List.map
      (fun n ->
        let w = Workloads.Registry.by_name n in
        let d = Vmm.Run.run w in
        let t = Vmm.Run.run ~params:(Baseline.Tradcomp.params w) w in
        (d.ilp_inf, t.ilp_inf))
      subset
  in
  let mean f = List.fold_left (fun acc p -> acc +. f p) 0. pairs /. 5.0 in
  Alcotest.(check bool) "traditional compiler ahead on average" true
    (mean snd > mean fst)

let () =
  Alcotest.run "baseline"
    [ ("profile", [ Alcotest.test_case "collection" `Quick test_profile_counts ]);
      ( "oracle",
        [ Alcotest.test_case "bounds vs DAISY" `Quick test_oracle_bounds;
          Alcotest.test_case "serial chain" `Quick test_oracle_serial_chain;
          Alcotest.test_case "parallel ops" `Quick test_oracle_parallel ] );
      ( "inorder",
        [ Alcotest.test_case "ipc bounds" `Quick test_inorder_bounds;
          Alcotest.test_case "below DAISY" `Quick test_inorder_below_daisy ] );
      ( "traditional",
        [ Alcotest.test_case "ahead of DAISY" `Quick test_trad_beats_daisy_on_average ] ) ]
