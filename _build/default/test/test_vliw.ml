(* Unit tests for the tree-VLIW machine: tree construction, resource
   accounting, the two-phase executor's parallel semantics, exception
   tags, carry extenders, rollback atomicity and the size model. *)

open Vliw
module T = Tree

let mk () = T.create ~id:0 ~precise_entry:0x1000

let run_vliw ?(st = Vstate.create (Ppc.Machine.create ())) ?(mem = Ppc.Mem.create 0x1000)
    vliw =
  (Exec.run st mem vliw, st, mem)

let seq = ref 0
let add tip op =
  incr seq;
  T.add_op tip !seq op

(* ------------------------------------------------------------------ *)
(* Tree structure                                                      *)

let test_split_close () =
  let v = mk () in
  add v.root (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 5; spec = false });
  let taken, fall = T.split v.root { bit = 2; sense = true } in
  T.close taken (T.OffPage 0x2000);
  add fall (Op.BinI { op = IAdd; rt = 2; ra = Op.zero; imm = 7; spec = false });
  T.close fall (T.Next 1);
  Alcotest.(check int) "op count" 2 (T.op_count v);
  Alcotest.(check bool) "size positive" true (Layout.size v > 8)

let test_size_model () =
  let v = mk () in
  let base = Layout.size v in
  add v.root (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 1; spec = false });
  Alcotest.(check int) "op adds 4 bytes" (base + 4) (Layout.size v);
  let t, f = T.split v.root { bit = 0; sense = true } in
  T.close t (T.OffPage 0);
  T.close f (T.OffPage 0);
  (* split: +4 test, two exits replace the one open tip: +4 *)
  Alcotest.(check int) "branch adds test+exit" (base + 12) (Layout.size v)

(* ------------------------------------------------------------------ *)
(* Config resource model                                               *)

let test_config_fits () =
  let c = Config.figure_5_1.(0) in
  (* 4-2-2-1 *)
  Alcotest.(check bool) "alu bound" false (Config.fits c ~alu:3 ~mem:0 ~br:0);
  Alcotest.(check bool) "mem bound" false (Config.fits c ~alu:0 ~mem:3 ~br:0);
  Alcotest.(check bool) "issue bound" false (Config.fits c ~alu:2 ~mem:2 ~br:0 |> not);
  Alcotest.(check bool) "issue total" true (Config.fits c ~alu:2 ~mem:2 ~br:1);
  Alcotest.(check bool) "branch bound" false (Config.fits c ~alu:1 ~mem:1 ~br:2);
  let big = Config.default in
  Alcotest.(check bool) "24-issue total" false
    (Config.fits big ~alu:16 ~mem:8 ~br:7 |> not);
  Alcotest.(check bool) "24-issue alu cap" false (Config.fits big ~alu:17 ~mem:0 ~br:0)

(* ------------------------------------------------------------------ *)
(* Executor semantics                                                  *)

let test_parallel_reads () =
  (* swap via parallel semantics: both ops read entry values *)
  let v = mk () in
  add v.root (Op.BinI { op = IAdd; rt = 1; ra = 2; imm = 0; spec = false });
  add v.root (Op.BinI { op = IAdd; rt = 2; ra = 1; imm = 0; spec = false });
  T.close v.root (T.OffPage 0);
  let st = Vstate.create (Ppc.Machine.create ()) in
  st.m.gpr.(1) <- 111;
  st.m.gpr.(2) <- 222;
  (match run_vliw ~st v with
  | Exec.Done _, _, _ -> ()
  | _ -> Alcotest.fail "expected Done");
  Alcotest.(check int) "r1 gets old r2" 222 st.m.gpr.(1);
  Alcotest.(check int) "r2 gets old r1" 111 st.m.gpr.(2)

let test_commit_order () =
  (* two commits of the same architected register: later wins *)
  let v = mk () in
  add v.root (Op.CommitG { arch = 3; src = 32 });
  add v.root (Op.CommitG { arch = 3; src = 33 });
  T.close v.root (T.OffPage 0);
  let st = Vstate.create (Ppc.Machine.create ()) in
  Vstate.set_gpr st 32 10;
  Vstate.set_gpr st 33 20;
  ignore (run_vliw ~st v);
  Alcotest.(check int) "last commit wins" 20 st.m.gpr.(3)

let test_tag_propagation () =
  (* speculative chain: faulting load -> consumer -> commit raises *)
  let v = mk () in
  add v.root
    (Op.LoadOp { w = Word; alg = false; rt = 40; base = Op.zero;
                 off = OImm 0x10_0000; spec = true; passed = false });
  T.close v.root (T.Next 1);
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  (match Exec.run st mem v with
  | Done _ -> ()
  | Rollback _ -> Alcotest.fail "speculative fault must not roll back");
  Alcotest.(check bool) "tag set" true (Vstate.get st 40 <> (0, Vstate.Clean));
  (* a speculative consumer propagates *)
  let v2 = mk () in
  add v2.root (Op.BinI { op = IAdd; rt = 41; ra = 40; imm = 1; spec = true });
  T.close v2.root (T.Next 2);
  ignore (Exec.run st mem v2);
  (match Vstate.get st 41 with
  | _, Vstate.Tfault _ -> ()
  | _ -> Alcotest.fail "tag must propagate through speculative ops");
  (* committing the tagged value rolls back *)
  let v3 = mk () in
  add v3.root (Op.CommitG { arch = 5; src = 41 });
  T.close v3.root (T.Next 3);
  match Exec.run st mem v3 with
  | Rollback (Rtag _) -> ()
  | _ -> Alcotest.fail "commit of tagged register must roll back"

let test_rollback_atomic () =
  (* a VLIW that writes two registers and then faults must change nothing *)
  let v = mk () in
  add v.root (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 42; spec = false });
  add v.root (Op.CommitG { arch = 2; src = 35 });
  add v.root
    (Op.LoadOp { w = Word; alg = false; rt = 3; base = Op.zero;
                 off = OImm 0x10_0000; spec = false; passed = false });
  T.close v.root (T.Next 1);
  let st = Vstate.create (Ppc.Machine.create ()) in
  Vstate.set_gpr st 35 7;
  let snapshot = Ppc.Machine.copy st.m in
  let mem = Ppc.Mem.create 0x1000 in
  (match Exec.run st mem v with
  | Rollback (Rfault { addr; write = false }) ->
    Alcotest.(check int) "fault address" 0x10_0000 addr
  | _ -> Alcotest.fail "expected fault rollback");
  Alcotest.(check bool) "architected state unchanged" true
    (Ppc.Machine.equal snapshot st.m)

let test_carry_extender () =
  (* renamed addc: carry goes to the extender; CommitCa moves it to CA *)
  let v = mk () in
  add v.root (Op.BinI { op = IAddc; rt = 40; ra = 1; imm = 1; spec = true });
  T.close v.root (T.Next 1);
  let st = Vstate.create (Ppc.Machine.create ()) in
  st.m.gpr.(1) <- 0xFFFF_FFFF;
  let mem = Ppc.Mem.create 0x1000 in
  ignore (Exec.run st mem v);
  Alcotest.(check bool) "extender set" true (Vstate.get_ca st 40);
  Alcotest.(check bool) "machine CA untouched" false st.m.xer_ca;
  let v2 = mk () in
  add v2.root (Op.CommitCa { src = 40 });
  T.close v2.root (T.Next 2);
  ignore (Exec.run st mem v2);
  Alcotest.(check bool) "CA committed" true st.m.xer_ca

let test_branch_selects_path () =
  let v = mk () in
  let taken, fall = T.split v.root { bit = Ppc.Insn.Crbit.eq; sense = true } in
  add taken (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 1; spec = false });
  T.close taken (T.OffPage 0);
  add fall (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 2; spec = false });
  T.close fall (T.OffPage 4);
  let st = Vstate.create (Ppc.Machine.create ()) in
  Ppc.Machine.set_crf st.m 0 0b0010;  (* EQ *)
  let mem = Ppc.Mem.create 0x1000 in
  (match Exec.run st mem v with
  | Done { exit = T.OffPage 0; _ } -> ()
  | _ -> Alcotest.fail "taken path expected");
  Alcotest.(check int) "taken side ops ran" 1 st.m.gpr.(1);
  Ppc.Machine.set_crf st.m 0 0b1000;  (* LT *)
  (match Exec.run st mem v with
  | Done { exit = T.OffPage 4; _ } -> ()
  | _ -> Alcotest.fail "fall path expected");
  Alcotest.(check int) "fall side ops ran" 2 st.m.gpr.(1)

let test_tagged_branch_rolls_back () =
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  (* produce a tagged condition field (dependent ops in separate
     VLIWs — parallel semantics would otherwise read the clean entry
     value of r40) *)
  let v0 = mk () in
  add v0.root
    (Op.LoadOp { w = Word; alg = false; rt = 40; base = Op.zero;
                 off = OImm 0x10_0000; spec = true; passed = false });
  T.close v0.root (T.Next 1);
  ignore (Exec.run st mem v0);
  let v1 = mk () in
  add v1.root (Op.CmpIOp { signed = true; crt = 9; ra = 40; imm = 0; spec = true });
  T.close v1.root (T.Next 1);
  ignore (Exec.run st mem v1);
  let v = mk () in
  let t, f = T.split v.root { bit = (9 * 4) + 2; sense = true } in
  T.close t (T.OffPage 0);
  T.close f (T.OffPage 4);
  match Exec.run st mem v with
  | Rollback (Rtag _) -> ()
  | _ -> Alcotest.fail "branch on tagged condition must roll back"

let test_mmio_load_deferred () =
  (* non-speculative MMIO load applies its side effect only on success *)
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  let v = mk () in
  add v.root
    (Op.LoadOp { w = Word; alg = false; rt = 1; base = Op.zero;
                 off = OImm Ppc.Mem.mmio_seq; spec = false; passed = false });
  (* and a faulting op after it *)
  add v.root
    (Op.LoadOp { w = Word; alg = false; rt = 2; base = Op.zero;
                 off = OImm 0x10_0000; spec = false; passed = false });
  T.close v.root (T.Next 1);
  (match Exec.run st mem v with Rollback _ -> () | _ -> Alcotest.fail "rollback");
  Alcotest.(check int) "device untouched on rollback" 0 mem.seq;
  let v2 = mk () in
  add v2.root
    (Op.LoadOp { w = Word; alg = false; rt = 1; base = Op.zero;
                 off = OImm Ppc.Mem.mmio_seq; spec = false; passed = false });
  T.close v2.root (T.Next 1);
  ignore (Exec.run st mem v2);
  Alcotest.(check int) "device read once" 1 mem.seq;
  Alcotest.(check int) "value delivered" 1 st.m.gpr.(1)

let test_alias_check_called () =
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  let v = mk () in
  add v.root (Op.StoreOp { w = Word; rs = 1; base = Op.zero; off = OImm 0x100 });
  T.close v.root (T.Next 1);
  let called = ref false in
  (match Exec.run st mem ~alias_check:(fun accs ->
       called := true;
       Alcotest.(check int) "one access" 1 (List.length accs);
       false)
      v
   with
  | Rollback Ralias -> ()
  | _ -> Alcotest.fail "alias veto must roll back");
  Alcotest.(check bool) "callback ran" true !called;
  Alcotest.(check int) "store not applied" 0 (Ppc.Mem.load32 mem 0x100)

(* qcheck: a random straight-line VLIW either completes or rolls back
   with NO architected change. *)
let prop_rollback_atomicity =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (frequency
           [ (4, map3 (fun rt ra imm -> Op.BinI { op = IAdd; rt; ra; imm; spec = false })
                (int_range 0 31) (int_range 0 31) (int_range (-50) 50));
             (2, map (fun rt ->
                  Op.LoadOp { w = Word; alg = false; rt; base = Op.zero;
                              off = OImm 0x20_0000; spec = false; passed = false })
                (int_range 0 31));
             (2, map2 (fun rs off ->
                  Op.StoreOp { w = Word; rs; base = Op.zero; off = OImm (off * 4) })
                (int_range 0 31) (int_range 0 100)) ]))
  in
  QCheck.Test.make ~name:"rollback leaves architected state unchanged" ~count:300
    (QCheck.make gen) (fun ops ->
      let v = mk () in
      List.iteri (fun i op -> T.add_op v.root i op) ops;
      T.close v.root (T.Next 1);
      let st = Vstate.create (Ppc.Machine.create ()) in
      for r = 0 to 31 do
        st.m.gpr.(r) <- r * 1234
      done;
      let snap = Ppc.Machine.copy st.m in
      let mem = Ppc.Mem.create 0x1000 in
      match Exec.run st mem v with
      | Done _ -> true
      | Rollback _ -> Ppc.Machine.equal snap st.m)

let () =
  Alcotest.run "vliw"
    [ ( "tree",
        [ Alcotest.test_case "split and close" `Quick test_split_close;
          Alcotest.test_case "size model" `Quick test_size_model ] );
      ("config", [ Alcotest.test_case "fits" `Quick test_config_fits ]);
      ( "exec",
        [ Alcotest.test_case "parallel reads" `Quick test_parallel_reads;
          Alcotest.test_case "commit order" `Quick test_commit_order;
          Alcotest.test_case "tag propagation" `Quick test_tag_propagation;
          Alcotest.test_case "rollback atomicity" `Quick test_rollback_atomic;
          Alcotest.test_case "carry extender" `Quick test_carry_extender;
          Alcotest.test_case "branch path select" `Quick test_branch_selects_path;
          Alcotest.test_case "tagged branch" `Quick test_tagged_branch_rolls_back;
          Alcotest.test_case "mmio deferral" `Quick test_mmio_load_deferred;
          Alcotest.test_case "alias veto" `Quick test_alias_check_called;
          QCheck_alcotest.to_alcotest prop_rollback_atomicity ] ) ]
