(* Tests for the translator: instruction cracking, BO decomposition,
   and structural invariants of generated translations (resource bounds,
   branch budgets, commit placement) checked over random programs. *)

open Ppc
module Crack = Translator.Crack
module Params = Translator.Params
module Translate = Translator.Translate
module Vec = Translator.Vec
module T = Vliw.Tree

(* ------------------------------------------------------------------ *)
(* Crack                                                               *)

let prim_count i = List.length (Crack.crack 0x1000 i).prims

let test_crack_simple () =
  Alcotest.(check int) "addi one prim" 1 (prim_count (Addi (1, 2, 3)));
  Alcotest.(check int) "record adds a compare" 2
    (prim_count (Xo (Add, 1, 2, 3, true)));
  Alcotest.(check int) "andi. always records" 2 (prim_count (Andi (1, 2, 3)));
  Alcotest.(check int) "lwzu = load + update" 2 (prim_count (Lwzu (1, 2, 4)));
  Alcotest.(check int) "lmw r28 = 4 loads" 4 (prim_count (Lmw (28, 1, 0)));
  Alcotest.(check int) "stmw r20 = 12 stores" 12 (prim_count (Stmw (20, 1, 0)));
  Alcotest.(check int) "mtcrf 0xFF = 8 field sets" 8 (prim_count (Mtcrf (0xFF, 3)));
  Alcotest.(check int) "mtcrf 0x11 = 2 field sets" 2 (prim_count (Mtcrf (0x11, 3)))

let test_crack_branch_kinds () =
  let ctl i = (Crack.crack 0x1000 i).control in
  (match ctl (B (0x100, false, false)) with
  | Crack.Jump (Direct 0x1100) -> ()
  | _ -> Alcotest.fail "relative direct branch");
  (match ctl (B (0x2000, true, false)) with
  | Crack.Jump (Direct 0x2000) -> ()
  | _ -> Alcotest.fail "absolute branch");
  (match ctl (Bclr (20, 0, false)) with
  | Crack.Jump ViaLr -> ()
  | _ -> Alcotest.fail "blr");
  (match ctl (Bcctr (20, 0, false)) with
  | Crack.Jump ViaCtr -> ()
  | _ -> Alcotest.fail "bctr");
  (match ctl (Bc (12, 2, 8, false, false)) with
  | Crack.CondJump { sense = true; late_commit = None; _ } -> ()
  | _ -> Alcotest.fail "bt");
  (match ctl (Bc (4, 2, 8, false, false)) with
  | Crack.CondJump { sense = false; _ } -> ()
  | _ -> Alcotest.fail "bf");
  (* bdnz: decrement into a temp, ctr committed by the branch *)
  match ctl (Bc (16, 0, -8, false, false)) with
  | Crack.CondJump { late_commit = Some Crack.Ctr; sense = false; _ } -> ()
  | _ -> Alcotest.fail "bdnz"

let test_crack_link () =
  (* bl writes LR *)
  let { Crack.prims; control } = Crack.crack 0x1000 (B (0x40, false, true)) in
  Alcotest.(check int) "one link prim" 1 (List.length prims);
  (match List.hd prims with
  | Crack.PBinI { dst = Lr; imm; _ } -> Alcotest.(check int) "lr = pc+4" 0x1004 imm
  | _ -> Alcotest.fail "link prim shape");
  match control with
  | Crack.Jump (Direct 0x1040) -> ()
  | _ -> Alcotest.fail "bl target"

let test_crack_bclrl_snapshot () =
  (* indirect branches snapshot their masked target into TmpG 0; for
     bclrl this is also what preserves the pre-link LR *)
  let has_snapshot i =
    let { Crack.prims; _ } = Crack.crack 0x1000 i in
    List.exists
      (function
        | Crack.PRlwinm { dst = TmpG 0; a = Lr | Ctr; mb = 0; me = 29; _ } -> true
        | _ -> false)
      prims
  in
  Alcotest.(check bool) "bclrl snapshot" true (has_snapshot (Bclr (20, 0, true)));
  (* plain returns read LR directly; no snapshot overhead *)
  Alcotest.(check bool) "blr has no snapshot" false (has_snapshot (Bclr (20, 0, false)));
  Alcotest.(check bool) "bctr has no snapshot" false (has_snapshot (Bcctr (20, 0, false)))

let test_shape_serial () =
  let serial i =
    List.exists (fun p -> (Crack.shape p).serial) (Crack.crack 0 i).prims
  in
  Alcotest.(check bool) "mfspr srr0 serial" true (serial (Mfspr (1, SRR0)));
  Alcotest.(check bool) "mtmsr serial" true (serial (Mtmsr 1));
  Alcotest.(check bool) "mflr not serial" false (serial (Mfspr (1, LR)));
  Alcotest.(check bool) "mtctr not serial" false (serial (Mtspr (CTR, 1)))

(* ------------------------------------------------------------------ *)
(* Translation invariants                                              *)

let build_random_program seed =
  let rng = Random.State.make [| seed |] in
  fun a ->
    Asm.org a 0x1000;
    Asm.label a "main";
    for r = 1 to 8 do
      Asm.li32 a r ((r * 37) + 1)
    done;
    Asm.li32 a 20 0x8000;
    Asm.li a 21 4;
    Asm.mtctr a 21;
    Asm.label a "loop";
    for i = 0 to 25 do
      match Random.State.int rng 8 with
      | 0 -> Asm.add a (1 + (i mod 8)) (1 + ((i + 1) mod 8)) (1 + ((i + 2) mod 8))
      | 1 -> Asm.mullw a (1 + (i mod 8)) (1 + ((i + 3) mod 8)) (1 + (i mod 8))
      | 2 -> Asm.lwz a (1 + (i mod 8)) 20 (4 * (i mod 16))
      | 3 -> Asm.stw a (1 + (i mod 8)) 20 (4 * (i mod 16))
      | 4 ->
        let lbl = Printf.sprintf "s%d_%d" seed i in
        Asm.cmpwi a (1 + (i mod 8)) 50;
        Asm.bc a Asm.Lt lbl;
        Asm.addi a (1 + (i mod 8)) (1 + (i mod 8)) 1;
        Asm.label a lbl
      | 5 -> Asm.ins a (Srawi (1 + (i mod 8), 1 + ((i + 1) mod 8), 2, false))
      | 6 -> Asm.ins a (Xo (Addc, 1 + (i mod 8), 1 + ((i + 1) mod 8), 1 + ((i + 2) mod 8), false))
      | _ -> Asm.xor a (1 + (i mod 8)) (1 + ((i + 1) mod 8)) (1 + ((i + 2) mod 8))
    done;
    Asm.bdnz a "loop";
    Asm.li a 3 0;
    Asm.halt a ~scratch:31 3

(* recount a tree's resources from its structure *)
let rec count_node (n : T.node) =
  let alu, mem =
    List.fold_left
      (fun (a, m) (_, op) ->
        if Vliw.Op.is_mem op then (a, m + 1) else (a + 1, m))
      (0, 0) n.ops
  in
  match n.kind with
  | T.Open | Exit _ -> (alu, mem, 0)
  | Branch { taken; fall; _ } ->
    let a1, m1, b1 = count_node taken in
    let a2, m2, b2 = count_node fall in
    (alu + a1 + a2, mem + m1 + m2, 1 + b1 + b2)

let check_page_invariants (cfg : Vliw.Config.t) (page : Translate.xpage) =
  Vec.iter
    (fun (v : T.t) ->
      let alu, mem, br = count_node v.root in
      Alcotest.(check int) "alu counter matches" v.alu alu;
      Alcotest.(check int) "mem counter matches" v.mem mem;
      Alcotest.(check int) "br counter matches" v.br br;
      Alcotest.(check bool)
        (Printf.sprintf "VLIW %d within resources (%d alu, %d mem, %d br)"
           v.id alu mem br)
        true
        (Vliw.Config.fits cfg ~alu ~mem ~br);
      (* no open tips survive translation *)
      let rec no_open (n : T.node) =
        match n.kind with
        | T.Open -> false
        | Exit _ -> true
        | Branch { taken; fall; _ } -> no_open taken && no_open fall
      in
      Alcotest.(check bool) "no open tips" true (no_open v.root))
    page.vliws;
  (* every entry id is a valid marked entry *)
  Hashtbl.iter
    (fun _off id ->
      Alcotest.(check bool) "entry marked" true (Vec.get page.vliws id).T.is_entry)
    page.entries

let test_invariants_config cfg () =
  for seed = 1 to 10 do
    let mem = Mem.create 0x40000 in
    let a = Asm.create () in
    build_random_program seed a;
    let labels = Asm.assemble a mem in
    let params = { Params.default with config = cfg } in
    let tr = Translate.create params mem in
    let page, _ = Translate.entry tr (Hashtbl.find labels "main") in
    check_page_invariants cfg page
  done

let test_layout_addresses () =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  build_random_program 3 a;
  let labels = Asm.assemble a mem in
  let tr = Translate.create Params.default mem in
  let page, _ = Translate.entry tr (Hashtbl.find labels "main") in
  (* addresses are disjoint, sorted, and sizes match the model *)
  let prev_end = ref 0 in
  Vec.iteri
    (fun id v ->
      let addr = Vec.get page.addrs id and size = Vec.get page.sizes id in
      Alcotest.(check int) "size matches model" (Vliw.Layout.size v) size;
      Alcotest.(check bool) "addresses increase" true (addr >= !prev_end);
      prev_end := addr + size)
    page.vliws;
  Alcotest.(check bool) "based at VLIW_BASE region" true
    (Vec.get page.addrs 0
     >= Vliw.Layout.vliw_base + (page.base * Vliw.Layout.expansion))

let test_invalidate () =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  build_random_program 4 a;
  let labels = Asm.assemble a mem in
  let tr = Translate.create Params.default mem in
  let entry = Hashtbl.find labels "main" in
  let _ = Translate.entry tr entry in
  Alcotest.(check bool) "translated" true (Translate.translated tr entry);
  Translate.invalidate tr entry;
  Alcotest.(check bool) "dropped" false (Translate.translated tr entry);
  Alcotest.(check int) "counted" 1 tr.totals.invalidations;
  let _ = Translate.entry tr entry in
  Alcotest.(check bool) "retranslated" true (Translate.translated tr entry)

let test_join_limit_bounds_code () =
  (* higher join limits may only grow the translation *)
  let size k =
    let mem = Mem.create 0x40000 in
    let a = Asm.create () in
    build_random_program 5 a;
    let labels = Asm.assemble a mem in
    let tr = Translate.create { Params.default with join_limit = k } mem in
    let _ = Translate.entry tr (Hashtbl.find labels "main") in
    tr.totals.code_bytes
  in
  let s0 = size 0 and s2 = size 2 and s6 = size 6 in
  Alcotest.(check bool) "k=0 smallest" true (s0 <= s2);
  Alcotest.(check bool) "k grows code" true (s2 <= s6)

let test_store_forwarding () =
  (* a must-alias store/load pair: the load becomes a register copy *)
  let build fwd a =
    ignore fwd;
    Asm.org a 0x1000;
    Asm.label a "main";
    Asm.li32 a 20 0x8000;
    Asm.li a 5 1234;
    Asm.stw a 5 20 16;
    Asm.lwz a 6 20 16;   (* must-alias: same base gen, offset, width *)
    Asm.add a 3 6 5;
    Asm.halt a ~scratch:31 3
  in
  let count_loads params =
    let mem = Mem.create 0x40000 in
    let a = Asm.create () in
    build () a;
    let labels = Asm.assemble a mem in
    let tr = Translate.create params mem in
    let page, _ = Translate.entry tr (Hashtbl.find labels "main") in
    let loads = ref 0 in
    Vec.iter
      (fun v ->
        List.iter
          (fun (_, op) -> if Vliw.Op.is_load op then incr loads)
          (T.all_ops v))
      page.vliws;
    !loads
  in
  let with_fwd = count_loads Params.default in
  let without = count_loads { Params.default with store_forward = false } in
  Alcotest.(check bool) "forwarding removes the load" true (with_fwd < without)

let test_profile_probabilities () =
  (* a profile table overrides the static guesses *)
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl 0x1000 (90, 100);
  let p = { Params.default with profile = Some tbl } in
  Alcotest.(check (float 1e-9)) "profiled" 0.9
    (Translate.guess_prob p ~hint:false ~backward:false ~pc:0x1000);
  Alcotest.(check (float 1e-9)) "unprofiled backward" p.prob_backward
    (Translate.guess_prob p ~hint:false ~backward:true ~pc:0x2000);
  Alcotest.(check (float 1e-9)) "hint" p.prob_hint
    (Translate.guess_prob p ~hint:true ~backward:false ~pc:0x2000)

let () =
  Alcotest.run "translator"
    [ ( "crack",
        [ Alcotest.test_case "prim counts" `Quick test_crack_simple;
          Alcotest.test_case "branch kinds" `Quick test_crack_branch_kinds;
          Alcotest.test_case "link register" `Quick test_crack_link;
          Alcotest.test_case "bclrl snapshot" `Quick test_crack_bclrl_snapshot;
          Alcotest.test_case "serial shapes" `Quick test_shape_serial ] );
      ( "invariants",
        [ Alcotest.test_case "24-issue" `Quick
            (test_invariants_config Vliw.Config.default);
          Alcotest.test_case "8-issue" `Quick
            (test_invariants_config Vliw.Config.eight_issue);
          Alcotest.test_case "4-issue minimal" `Quick
            (test_invariants_config Vliw.Config.figure_5_1.(0));
          Alcotest.test_case "layout addresses" `Quick test_layout_addresses;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "join limit vs code size" `Quick
            test_join_limit_bounds_code;
          Alcotest.test_case "profile probabilities" `Quick
            test_profile_probabilities;
          Alcotest.test_case "store-to-load forwarding" `Quick
            test_store_forwarding ] ) ]
