bin/daisy.ml: Arg Array Baseline Cmd Cmdliner Format List Memsys Printf Stats String Term Translator Vliw Vmm Workloads
