bin/daisy.mli:
