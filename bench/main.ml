(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Chapter 5 + the Chapter 6 oracle study), then
   measures the raw speed of the dynamic translator itself with
   Bechamel — the quantity behind the paper's "instructions needed to
   translate one instruction" overhead analysis (Section 5.1). *)

(* Returns (base instructions in the probed page, [(name, ns/run)]). *)
let translator_microbench () =
  print_newline ();
  print_endline "Translator micro-benchmarks (Bechamel)";
  print_endline "--------------------------------------";
  let open Bechamel in
  let w = Workloads.Registry.by_name "compress" in
  let mem, entry = Workloads.Wl.instantiate w in
  (* how many base instructions one cold page translation schedules *)
  let probe = Translator.Translate.create Translator.Params.default mem in
  ignore (Translator.Translate.entry probe entry);
  let insns = probe.totals.insns in
  let tests =
    Test.make_grouped ~name:"daisy"
      [ Test.make ~name:"translate-page"
          (Staged.stage (fun () ->
               let tr =
                 Translator.Translate.create Translator.Params.default mem
               in
               ignore (Translator.Translate.entry tr entry)));
        Test.make ~name:"interp-1k-insns"
          (Staged.stage (fun () ->
               let mem2, e2 = Workloads.Wl.instantiate w in
               let st = Ppc.Machine.create () in
               st.pc <- e2;
               let it = Ppc.Interp.create st mem2 in
               ignore (Ppc.Interp.run it ~fuel:1000))) ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) ->
        estimates := (name, est) :: !estimates;
        Printf.printf "%-28s %12.0f ns/run" name est;
        if name = "daisy/translate-page" then
          Printf.printf "  (%d base ins scheduled -> %.0f ns per base ins)"
            insns
            (est /. float_of_int insns);
        print_newline ()
      | _ -> ())
    results;
  (insns, !estimates)

(* Cold-vs-warm persistent-translation-cache series: run every registry
   workload twice against one fresh cache directory and record how much
   translation work the warm start avoided (all of it, when the cache
   behaves) and what each run cost in wall time. *)
let tcache_series () =
  print_newline ();
  print_endline "Persistent translation cache: cold vs warm";
  print_endline "------------------------------------------";
  let module J = Obs.Json in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_bench_tcache.%d" (Unix.getpid ()))
  in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let cold, cold_s = time (fun () -> Vmm.Run.run ~tcache_dir:dir w) in
        let warm, warm_s = time (fun () -> Vmm.Run.run ~tcache_dir:dir w) in
        Printf.printf
          "%-10s pages %3d -> %d   insns %6d -> %d   hits %3d   %.3fs -> %.3fs\n"
          w.name cold.pages_translated warm.pages_translated
          cold.insns_translated warm.insns_translated warm.stats.tcache_hits
          cold_s warm_s;
        J.Obj
          [ ("name", J.Str w.name);
            ("cold_pages_translated", J.Int cold.pages_translated);
            ("warm_pages_translated", J.Int warm.pages_translated);
            ("cold_insns_translated", J.Int cold.insns_translated);
            ("warm_insns_translated", J.Int warm.insns_translated);
            ("warm_tcache_hits", J.Int warm.stats.tcache_hits);
            ("cold_tcache_persists", J.Int cold.stats.tcache_persists);
            ("cold_seconds", J.Float cold_s);
            ("warm_seconds", J.Float warm_s) ])
      Workloads.Registry.all
  in
  let removed, _skipped = Tcache.Store.clear_dir dir in
  (try Sys.rmdir dir with Sys_error _ -> ());
  Printf.printf "(cache entries written and cleaned up: %d)\n" removed;
  J.Arr rows

(* Checkpoint-overhead series: the cost of crash safety.  Each registry
   workload runs plain and supervised (periodic snapshots at a sweep of
   cadences), interleaved, best-of-N wall times.  The headline number
   is the fractional ns/base-insn overhead at the default cadence — the
   cost a long production run pays for being resumable after kill -9. *)
let checkpoint_series () =
  print_newline ();
  print_endline "Checkpoint overhead: plain vs supervised";
  print_endline "----------------------------------------";
  let module J = Obs.Json in
  let everys = [ 10_000; 50_000; 200_000 ] in
  let default_every = 50_000 in
  (* execution is deterministic, so wall-time noise is one-sided (host
     scheduling only ever adds time): the minimum of the interleaved
     samples is the robust estimator, not the median *)
  let minimum l = List.fold_left min infinity l in
  let time_run (w : Workloads.Wl.t) attach =
    let mem, entry = Workloads.Wl.instantiate w in
    let vmm = Vmm.Monitor.create mem in
    attach vmm;
    let t0 = Unix.gettimeofday () in
    ignore (Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2));
    (Unix.gettimeofday () -. t0, vmm.stats)
  in
  let reps = 7 in
  let default_overheads = ref [] in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        let _, _, _, it = Vmm.Run.reference w in
        let base = float_of_int (max 1 it.Ppc.Interp.icount) in
        let plain_samples = ref [] in
        let per_every =
          List.map
            (fun every ->
              let dir =
                Filename.concat (Filename.get_temp_dir_name ())
                  (Printf.sprintf "daisy_bench_ck.%d.%s.%d" (Unix.getpid ())
                     w.name every)
              in
              let snapshots = ref 0 and seconds = ref 0. in
              let samples =
                List.init reps (fun _ ->
                    (* interleave a plain run with every supervised one
                       so host-load drift hits both sides equally *)
                    plain_samples :=
                      fst (time_run w (fun _ -> ())) :: !plain_samples;
                    let dt, stats =
                      time_run w (fun vmm ->
                          ignore
                            (Guard.Supervise.attach ~checkpoint_dir:dir
                               ~checkpoint_every:every ~workload:w.name vmm))
                    in
                    snapshots := stats.checkpoints_written;
                    seconds := stats.checkpoint_seconds;
                    dt)
              in
              let bytes =
                List.fold_left
                  (fun acc f ->
                    acc
                    + (try
                         (Unix.stat (Filename.concat dir f)).Unix.st_size
                       with Unix.Unix_error _ -> 0))
                  0
                  (try Array.to_list (Sys.readdir dir)
                   with Sys_error _ -> [])
              in
              ignore (Tcache.Store.clear_dir dir);
              (try
                 Array.iter
                   (fun f -> Sys.remove (Filename.concat dir f))
                   (Sys.readdir dir);
                 Sys.rmdir dir
               with Sys_error _ -> ());
              (every, minimum samples, !snapshots, bytes, !seconds))
            everys
        in
        (* the plain estimate uses every interleaved sample, so it sees
           the same spread of host conditions as the supervised runs *)
        let plain_ns = minimum !plain_samples *. 1e9 /. base in
        let rows =
          List.map
            (fun (every, ck, snapshots, bytes, seconds) ->
              let ck_ns = ck *. 1e9 /. base in
              let overhead = (ck_ns -. plain_ns) /. plain_ns in
              if every = default_every then
                default_overheads := overhead :: !default_overheads;
              Printf.printf
                "%-10s every %6d   %7.1f -> %7.1f ns/insn   %+6.1f%%   %3d snapshots (%d B, %.1f ms)\n"
                w.name every plain_ns ck_ns (overhead *. 100.) snapshots
                bytes (seconds *. 1000.);
              J.Obj
                [ ("every", J.Int every);
                  ("ns_per_base_insn", J.Float ck_ns);
                  ("overhead_frac", J.Float overhead);
                  ("snapshots", J.Int snapshots);
                  ("snapshot_bytes", J.Int bytes);
                  ("write_seconds", J.Float seconds) ])
            per_every
        in
        J.Obj
          [ ("name", J.Str w.name);
            ("base_insns", J.Int it.Ppc.Interp.icount);
            ("plain_ns_per_base_insn", J.Float plain_ns);
            ("checkpointed", J.Arr rows) ])
      Workloads.Registry.all
  in
  let mean_default =
    match !default_overheads with
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf "mean overhead at default cadence (every %d): %+.1f%%\n"
    default_every (mean_default *. 100.);
  ( J.Obj
      [ ("default_every", J.Int default_every);
        ("overhead_frac_default_mean", J.Float mean_default);
        ("workloads", J.Arr rows) ],
    mean_default )

(* Observability-overhead series: what the always-on flight recorder
   costs.  Each registry workload runs bare and with the full recorder
   stack (flight ring + region profile fed through the bridge, exactly
   what a default [daisy run] attaches), interleaved best-of-N, and the
   row reports the fractional slowdown per base instruction.  This is
   the number that justifies "always-on": it has to stay small. *)
let obs_overhead_series () =
  print_newline ();
  print_endline "Observability overhead: flight recorder off vs on";
  print_endline "-------------------------------------------------";
  let module J = Obs.Json in
  let minimum l = List.fold_left min infinity l in
  let time_run (w : Workloads.Wl.t) attach =
    let mem, entry = Workloads.Wl.instantiate w in
    let vmm = Vmm.Monitor.create mem in
    attach vmm;
    let t0 = Unix.gettimeofday () in
    ignore (Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2));
    Unix.gettimeofday () -. t0
  in
  let reps = 7 in
  let overheads = ref [] in
  let rows =
    List.map
      (fun (w : Workloads.Wl.t) ->
        let _, _, _, it = Vmm.Run.reference w in
        let base = float_of_int (max 1 it.Ppc.Interp.icount) in
        let plain = ref [] and recorded = ref [] in
        let events = ref 0 in
        for _ = 1 to reps do
          (* interleaved, like the checkpoint series: host-load drift
             hits both sides equally *)
          plain := time_run w (fun _ -> ()) :: !plain;
          let flight = Obs.Flight.create () in
          let profile =
            Obs.Profile.create
              ~page_size:Translator.Params.default.page_size ()
          in
          let bridge = Obs.Bridge.create ~profile ~flight () in
          recorded :=
            time_run w (fun vmm -> Obs.Bridge.attach bridge vmm)
            :: !recorded;
          events := Obs.Flight.total flight
        done;
        let plain_ns = minimum !plain *. 1e9 /. base in
        let rec_ns = minimum !recorded *. 1e9 /. base in
        let overhead = (rec_ns -. plain_ns) /. plain_ns in
        overheads := overhead :: !overheads;
        Printf.printf
          "%-10s %7.1f -> %7.1f ns/insn   %+6.1f%%   %d events through the ring\n"
          w.name plain_ns rec_ns (overhead *. 100.) !events;
        J.Obj
          [ ("name", J.Str w.name);
            ("base_insns", J.Int it.Ppc.Interp.icount);
            ("plain_ns_per_base_insn", J.Float plain_ns);
            ("recorder_ns_per_base_insn", J.Float rec_ns);
            ("overhead_frac", J.Float overhead);
            ("events_recorded", J.Int !events) ])
      Workloads.Registry.all
  in
  let mean =
    match !overheads with
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf "mean recorder overhead: %+.1f%%\n" (mean *. 100.);
  (J.Obj [ ("overhead_frac_mean", J.Float mean); ("workloads", J.Arr rows) ],
   mean)

(* Serve-fleet series: the multi-tenant shared-cache economics.  A
   fleet of short sessions runs twice over one cache directory through
   the serve layer's domain pool and translate gate — the cold pass
   measures how much of the translate storm the gate coalesced versus
   naive per-session translation, the warm pass measures the headline
   claim: aggregate hit rate and zero retranslation across the whole
   fleet. *)
let serve_fleet_series () =
  print_newline ();
  print_endline "Serve fleet: shared translation cache, cold vs warm";
  print_endline "---------------------------------------------------";
  let module J = Obs.Json in
  let sessions = 100 in
  let domains = 4 in
  let workloads = [ "wc"; "cmp" ] in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_bench_serve.%d" (Unix.getpid ()))
  in
  (* the naive baseline: with no shared cache, every session translates
     its own working set — one isolated uncached run per workload gives
     the per-session page count *)
  let naive_per_session =
    List.map (fun name ->
        (name, (Vmm.Run.run (Workloads.Registry.by_name name)).pages_translated))
      workloads
  in
  let naive =
    List.init sessions (fun i ->
        snd (List.nth naive_per_session (i mod List.length naive_per_session)))
    |> List.fold_left ( + ) 0
  in
  let pool = Serve.Pool.create ~domains () in
  let shared = Serve.Shared.create ~dir () in
  let line tag (r : Serve.Fleet.report) =
    Printf.printf
      "%-5s %3d sessions  %2d failed  hit rate %.3f  pages %4d  \
       p50 %6.1fms  p99 %6.1fms  coalesced %d  %.2fs\n"
      tag r.sessions r.failures r.hit_rate r.pages_translated r.p50_ms
      r.p99_ms r.gate_waits r.wall_seconds
  in
  let finish () =
    Serve.Pool.shutdown pool;
    ignore (Tcache.Store.clear_dir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  match
    let cold, _ = Serve.Fleet.run ~pool ~shared ~sessions workloads in
    line "cold" cold;
    let warm, _ =
      Serve.Fleet.run ~first_id:sessions ~pool ~shared ~sessions workloads
    in
    line "warm" warm;
    (cold, warm)
  with
  | cold, warm ->
    finish ();
    Printf.printf
      "naive per-session translation: %d pages; shared cold fleet: %d \
       (%.1fx less)\n"
      naive cold.pages_translated
      (float_of_int naive /. float_of_int (max 1 cold.pages_translated));
    J.Obj
      [ ("sessions", J.Int sessions); ("domains", J.Int domains);
        ("workloads", J.Arr (List.map (fun w -> J.Str w) workloads));
        ("naive_pages_translated", J.Int naive);
        ("cold", Serve.Fleet.report_json cold);
        ("warm", Serve.Fleet.report_json warm) ]
  | exception e ->
    finish ();
    raise e

(* Chaos-serving series: a whole fleet under the fault cocktail with
   per-session deadlines and a tight admission queue — the serving
   failure model measured rather than asserted.  The numbers that
   matter: p99 stays bounded, every failure is typed (crash and
   mismatch stay zero), poisoned cache entries self-heal, and the
   coordinator ends the run with nothing stuck or leaked. *)
let serve_chaos_series () =
  print_newline ();
  print_endline "Serve chaos: fleet under fault cocktail, deadlines, shedding";
  print_endline "------------------------------------------------------------";
  let module J = Obs.Json in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_bench_chaos.%d" (Unix.getpid ()))
  in
  let cfg =
    { Serve.Chaos.default with
      sessions = 32; domains = 4; queue_cap = 4; seed = 9;
      (* generous: "deadlines enforced" is the point, not flakiness *)
      deadline_ms = Some 30_000 }
  in
  let finish () =
    ignore (Tcache.Store.clear_dir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  match Serve.Chaos.run ~dir cfg with
  | r, _ ->
    finish ();
    Printf.printf
      "%d sessions  ok %d  deadline %d  cancelled %d  crash %d  mismatch %d\n"
      r.sessions r.ok r.deadline_failures r.cancelled_failures
      r.crash_failures r.mismatch_failures;
    Printf.printf
      "p50 %.1fms  p99 %.1fms  injected %d  self-heals %d  strikes %d  \
       sheds %d  retries %d\n"
      r.p50_ms r.p99_ms r.injected r.self_heals r.ladder_strikes r.sheds
      r.retries;
    (match Serve.Chaos.verdict r with
    | `Clean -> print_endline "contract: clean"
    | `Violations v ->
      print_endline ("contract VIOLATED: " ^ String.concat "; " v));
    Serve.Chaos.report_json r
  | exception e ->
    finish ();
    raise e

(* Storage-chaos series: the same serving fleet, but the disk is the
   adversary — every session's cache runs on a seeded fault backend
   (ENOSPC, EIO, short writes, torn renames) while the guest-level
   injectors stay quiet, so whatever breaks is storage handling alone.
   The fleet invariant under measurement: a disk fault costs at most
   one retranslation and never a crash, a mismatch, or leaked shared
   state.  Afterwards a clean warm fleet over the surviving store heals
   the holes (its translation count is the price actually paid), and
   `fsck --repair` must leave the tree clean. *)
let storage_chaos_series () =
  print_newline ();
  print_endline "Storage chaos: fleet on a lying disk, then warm heal + fsck";
  print_endline "-----------------------------------------------------------";
  let module J = Obs.Json in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_bench_storage.%d" (Unix.getpid ()))
  in
  let cfg =
    { Serve.Chaos.default with
      sessions = 32; domains = 4; queue_cap = 8; seed = 11;
      inject = Fault.Inject.quiet;
      storage = Some Fsio.storage_cocktail }
  in
  let finish () =
    ignore (Tcache.Store.clear_dir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  match
    let r, _ = Serve.Chaos.run ~dir cfg in
    let pool = Serve.Pool.create ~domains:cfg.domains () in
    let shared = Serve.Shared.create ~dir () in
    let heal =
      Fun.protect
        ~finally:(fun () -> Serve.Pool.shutdown pool)
        (fun () ->
          fst
            (Serve.Fleet.run ~first_id:cfg.sessions ~pool ~shared
               ~sessions:cfg.sessions cfg.workloads))
    in
    let repaired = Guard.Fsck.run ~repair:true ~tcache_dir:dir () in
    let fsck_clean = Guard.Fsck.all_clean (Guard.Fsck.run ~tcache_dir:dir ()) in
    (r, heal, repaired, fsck_clean)
  with
  | r, heal, repaired, fsck_clean ->
    finish ();
    Printf.printf
      "%d sessions  ok %d  crash %d  mismatch %d  stuck gates %d  leaked \
       pins %d\n"
      r.sessions r.ok r.crash_failures r.mismatch_failures r.stuck_gates
      r.leaked_pins;
    Printf.printf
      "disk faults %d  degraded ops %d  storage strikes %d  self-heals %d\n"
      r.storage_injected r.tcache_degraded r.storage_faults r.self_heals;
    let fsck_issues =
      List.fold_left (fun n rep -> n + Guard.Fsck.issues rep) 0 repaired
    in
    Printf.printf
      "warm heal: %d failed  %d pages retranslated (bound: %d faults)  \
       fsck: %d issue(s) repaired, %s\n"
      heal.Serve.Fleet.failures heal.pages_translated r.storage_injected
      fsck_issues
      (if fsck_clean then "clean" else "NOT CLEAN");
    (match Serve.Chaos.verdict r with
    | `Clean -> print_endline "contract: clean"
    | `Violations v ->
      print_endline ("contract VIOLATED: " ^ String.concat "; " v));
    J.Obj
      [ ("sessions", J.Int r.sessions); ("ok", J.Int r.ok);
        ("crash_failures", J.Int r.crash_failures);
        ("mismatch_failures", J.Int r.mismatch_failures);
        ("stuck_gates", J.Int r.stuck_gates);
        ("leaked_pins", J.Int r.leaked_pins);
        ("storage_injected", J.Int r.storage_injected);
        ("tcache_degraded", J.Int r.tcache_degraded);
        ("storage_faults", J.Int r.storage_faults);
        ("self_heals", J.Int r.self_heals);
        ("heal_failures", J.Int heal.failures);
        ("heal_pages_translated", J.Int heal.pages_translated);
        ("fsck_issues_repaired", J.Int fsck_issues);
        ("fsck_clean", J.Bool fsck_clean) ]
  | exception e ->
    finish ();
    raise e

(* Tier-promotion series: what the tier-2 superblock scheduler buys on
   the hot-region workloads.  Three measured points per workload:

     tier1     — the one-pass page translator alone (the baseline);
     cold      — tier-2 enabled from a cold cache: the background
                 compile, swap-in and deopt machinery all on the run's
                 critical path, promotion landing mid-run;
     warm      — the same run again over the persisted region image:
                 the whole run executes promoted, which is the honest
                 "ILP on promoted regions" number;

   plus the traditional-VLIW-compiler reference (whole-program static
   compilation, the ceiling tier-2 approaches).  The acceptance bar:
   warm ILP strictly above tier-1 on both c_sieve (single hot page,
   wider window) and compress (cross-page SCC, speculation across the
   former page boundary).  Promotion runs --tier2-sync equivalent
   (inline compiles) so the series is deterministic. *)
let tier_promotion_series () =
  print_newline ();
  print_endline "Tier-2 promotion: tier-1 vs cold promotion vs warm start";
  print_endline "--------------------------------------------------------";
  let module J = Obs.Json in
  let sync_cfg = { Obs.Tier.default with submit = None } in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun name ->
        let w = Workloads.Registry.by_name name in
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "daisy_bench_tier.%d.%s" (Unix.getpid ()) name)
        in
        let tier1, tier1_s = time (fun () -> Vmm.Run.run w) in
        let run_tier () =
          let captured = ref None in
          let r =
            Vmm.Run.run ~tcache_dir:dir
              ~instrument:(fun vmm ->
                captured := Some vmm;
                ignore (Obs.Tier.attach ~cfg:sync_cfg vmm))
              w
          in
          (r, Option.get !captured)
        in
        let (cold, cold_vmm), cold_s = time run_tier in
        let (warm, warm_vmm), warm_s = time run_tier in
        let trad = Vmm.Run.run ~params:(Baseline.Tradcomp.params w) w in
        ignore (Tcache.Store.clear_dir dir);
        (try Sys.rmdir dir with Sys_error _ -> ());
        (* the same cold promotion again, but compiled on a background
           domain whose minor heap is pre-sized like the daemon's
           submit pool — async compile latency vs the inline number
           above is what that GC tuning buys *)
        let adir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "daisy_bench_tier_async.%d.%s" (Unix.getpid ())
               name)
        in
        let apool =
          Serve.Pool.create ~domains:1 ~minor_heap_words:(1 lsl 22) ()
        in
        let async_cfg =
          { Obs.Tier.default with
            submit = Some (fun job -> Serve.Pool.submit apool job) }
        in
        let async_vmm =
          let captured = ref None in
          ignore
            (Vmm.Run.run ~tcache_dir:adir
               ~instrument:(fun vmm ->
                 captured := Some vmm;
                 ignore (Obs.Tier.attach ~cfg:async_cfg vmm))
               w);
          Serve.Pool.drain apool;
          Serve.Pool.shutdown apool;
          ignore (Tcache.Store.clear_dir adir);
          (try Sys.rmdir adir with Sys_error _ -> ());
          Option.get !captured
        in
        let sync_compile_ms =
          cold_vmm.Vmm.Monitor.stats.tier2_compile_seconds *. 1e3
        in
        let async_compile_ms =
          async_vmm.Vmm.Monitor.stats.tier2_compile_seconds *. 1e3
        in
        let ns_per_insn r s =
          s *. 1e9 /. float_of_int (max 1 r.Vmm.Run.base_insns)
        in
        let mips r s = float_of_int r.Vmm.Run.base_insns /. s /. 1e6 in
        Printf.printf
          "%-10s ILP %.2f -> %.2f cold -> %.2f warm (tradcomp %.2f)\n"
          name tier1.ilp_inf cold.ilp_inf warm.ilp_inf trad.ilp_inf;
        Printf.printf
          "           promotions %d (%.1f ms compile), deopts %d, region \
           VLIWs %d/%d, %.0f -> %.0f emulated KIPS\n"
          cold_vmm.Vmm.Monitor.stats.tier2_promotions sync_compile_ms
          cold_vmm.stats.tier2_deopts warm_vmm.stats.tier2_vliws warm.vliws
          (mips tier1 tier1_s *. 1e3)
          (mips warm warm_s *. 1e3);
        Printf.printf
          "           compile latency: %.1f ms sync -> %.1f ms async \
           (pre-sized minor heap)\n"
          sync_compile_ms async_compile_ms;
        J.Obj
          [ ("name", J.Str name);
            ("tier1_ilp_inf", J.Float tier1.ilp_inf);
            ("cold_ilp_inf", J.Float cold.ilp_inf);
            ("warm_ilp_inf", J.Float warm.ilp_inf);
            ("tradcomp_ilp_inf", J.Float trad.ilp_inf);
            ("promotions", J.Int cold_vmm.stats.tier2_promotions);
            ("deopts", J.Int cold_vmm.stats.tier2_deopts);
            ("compile_ms", J.Float sync_compile_ms);
            ("sync_compile_ms", J.Float sync_compile_ms);
            ("async_compile_ms", J.Float async_compile_ms);
            ("cold_region_vliws", J.Int cold_vmm.stats.tier2_vliws);
            ("warm_region_vliws", J.Int warm_vmm.stats.tier2_vliws);
            ("tier1_ns_per_insn", J.Float (ns_per_insn tier1 tier1_s));
            ("cold_ns_per_insn", J.Float (ns_per_insn cold cold_s));
            ("warm_ns_per_insn", J.Float (ns_per_insn warm warm_s));
            ("tier1_mips", J.Float (mips tier1 tier1_s));
            ("warm_mips", J.Float (mips warm warm_s)) ])
      [ "c_sieve"; "compress" ]
  in
  J.Arr rows

(* Host-throughput series: wall-clock speed of the two VLIW execution
   engines over the whole registry.  This is the fleet-migration metric
   — nanoseconds of host time per emulated base instruction — measured
   (best of three) rather than asserted, for the tree walker and the
   staged closure engine side by side. *)
let host_throughput_series () =
  print_newline ();
  print_endline "Host throughput: tree walker vs staged closures";
  print_endline "-----------------------------------------------";
  let module J = Obs.Json in
  let engines = [ ("tree", Vmm.Monitor.Tree); ("compiled", Vmm.Monitor.Compiled) ] in
  let speedups = ref [] in
  let rows =
    List.concat_map
      (fun (w : Workloads.Wl.t) ->
        (* base-instruction count from the reference interpreter; the
           VMM runs below skip re-verification timing noise by timing
           only create + execute *)
        let _, _, _, it = Vmm.Run.reference w in
        let base_insns = it.Ppc.Interp.icount in
        let per_engine =
          List.map
            (fun (ename, engine) ->
              let best = ref infinity in
              let stats = ref None in
              for _ = 1 to 3 do
                let mem, entry = Workloads.Wl.instantiate w in
                let vmm = Vmm.Monitor.create ~engine mem in
                let t0 = Unix.gettimeofday () in
                ignore (Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2));
                let dt = Unix.gettimeofday () -. t0 in
                if dt < !best then best := dt;
                stats := Some vmm.stats
              done;
              let s = Option.get !stats in
              let seconds = !best in
              let ns_per_insn = seconds *. 1e9 /. float_of_int (max 1 base_insns) in
              let mips = float_of_int base_insns /. (seconds *. 1e6) in
              let compile_ms_per_page =
                if s.compiled_pages > 0 then
                  s.compile_seconds *. 1000. /. float_of_int s.compiled_pages
                else 0.
              in
              Printf.printf
                "%-10s %-8s %8.3f ms   %7.1f ns/insn   %7.2f MIPS   %d pages staged (%.3f ms/page)\n"
                w.name ename (seconds *. 1000.) ns_per_insn mips
                s.compiled_pages compile_ms_per_page;
              ( ename, ns_per_insn,
                J.Obj
                  [ ("name", J.Str w.name);
                    ("engine", J.Str ename);
                    ("seconds", J.Float seconds);
                    ("base_insns", J.Int base_insns);
                    ("ns_per_base_insn", J.Float ns_per_insn);
                    ("emulated_mips", J.Float mips);
                    ("compiled_pages", J.Int s.compiled_pages);
                    ("direct_link_hits", J.Int s.direct_link_hits);
                    ("compile_ms_per_page", J.Float compile_ms_per_page) ] ))
            engines
        in
        (match per_engine with
        | [ (_, tree_ns, _); (_, compiled_ns, _) ] when compiled_ns > 0. ->
          speedups := (tree_ns /. compiled_ns) :: !speedups
        | _ -> ());
        List.map (fun (_, _, row) -> row) per_engine)
      Workloads.Registry.all
  in
  let mean_speedup =
    match !speedups with
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf "mean speedup (tree -> compiled): %.2fx\n" mean_speedup;
  (J.Arr rows, mean_speedup)

(* Machine-readable results: every workload's headline series (infinite
   and finite cache) plus the translator's raw speed, for trend tracking
   across commits. *)
let write_bench_json path micro =
  let module J = Obs.Json in
  let workload (w : Workloads.Wl.t) =
    let i = Stats.Experiments.inf w in
    let f = Stats.Experiments.fin w in
    J.Obj
      [ ("name", J.Str w.name);
        ("base_insns", J.Int i.base_insns);
        ("ilp_inf", J.Float i.ilp_inf);
        ("ilp_fin", J.Float f.ilp_fin);
        ("cycles_infinite", J.Int i.cycles_infinite);
        ("cycles_finite", J.Int f.cycles_finite);
        ("stall_cycles", J.Int f.stall_cycles);
        ("miss_l0d", J.Float f.miss_l0d);
        ("miss_l0i", J.Float f.miss_l0i);
        ("miss_joint", J.Float f.miss_joint);
        ("vliws", J.Int i.vliws);
        ("interp_insns", J.Int i.interp_insns);
        ("pages_translated", J.Int i.pages_translated);
        ("code_bytes", J.Int i.code_bytes) ]
  in
  let ws = Workloads.Registry.all in
  let mean_ilp =
    List.fold_left
      (fun acc w -> acc +. (Stats.Experiments.inf w).Vmm.Run.ilp_inf)
      0.0 ws
    /. float_of_int (max 1 (List.length ws))
  in
  let translator =
    match micro with
    | None -> J.Null
    | Some (insns, ests) ->
      let get name =
        match List.assoc_opt name ests with
        | Some ns -> J.Float ns
        | None -> J.Null
      in
      let per_insn =
        match List.assoc_opt "daisy/translate-page" ests with
        | Some ns when insns > 0 -> J.Float (ns /. float_of_int insns)
        | _ -> J.Null
      in
      J.Obj
        [ ("translate_page_ns", get "daisy/translate-page");
          ("ns_per_base_insn", per_insn);
          ("interp_1k_insns_ns", get "daisy/interp-1k-insns") ]
  in
  let tcache =
    try tcache_series ()
    with e ->
      Printf.printf "tcache series skipped: %s\n" (Printexc.to_string e);
      J.Null
  in
  let host_throughput, mean_speedup =
    try host_throughput_series ()
    with e ->
      Printf.printf "host-throughput series skipped: %s\n"
        (Printexc.to_string e);
      (J.Null, 0.)
  in
  let checkpoint, mean_ck_overhead =
    try checkpoint_series ()
    with e ->
      Printf.printf "checkpoint series skipped: %s\n" (Printexc.to_string e);
      (J.Null, 0.)
  in
  let obs_overhead, mean_obs_overhead =
    try obs_overhead_series ()
    with e ->
      Printf.printf "obs-overhead series skipped: %s\n" (Printexc.to_string e);
      (J.Null, 0.)
  in
  let serve_fleet =
    try serve_fleet_series ()
    with e ->
      Printf.printf "serve-fleet series skipped: %s\n" (Printexc.to_string e);
      J.Null
  in
  let serve_chaos =
    try serve_chaos_series ()
    with e ->
      Printf.printf "serve-chaos series skipped: %s\n" (Printexc.to_string e);
      J.Null
  in
  let storage_chaos =
    try storage_chaos_series ()
    with e ->
      Printf.printf "storage-chaos series skipped: %s\n"
        (Printexc.to_string e);
      J.Null
  in
  let tier_promotion =
    try tier_promotion_series ()
    with e ->
      Printf.printf "tier-promotion series skipped: %s\n"
        (Printexc.to_string e);
      J.Null
  in
  let j =
    J.Obj
      [ ("schema", J.Str "daisy-bench-v9");
        ("workloads", J.Arr (List.map workload ws));
        ("mean_ilp_inf", J.Float mean_ilp);
        ("translator", translator);
        ("tcache", tcache);
        ("host_throughput", host_throughput);
        ("mean_engine_speedup", J.Float mean_speedup);
        ("checkpoint", checkpoint);
        ("checkpoint_overhead_default_mean", J.Float mean_ck_overhead);
        ("obs_overhead", obs_overhead);
        ("obs_overhead_frac_mean", J.Float mean_obs_overhead);
        ("serve_fleet", serve_fleet);
        ("serve_chaos", serve_chaos);
        ("storage_chaos", storage_chaos);
        ("tier_promotion", tier_promotion) ]
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> J.to_channel oc j);
  Printf.printf "\nwrote %s\n" path

let () =
  let t0 = Unix.gettimeofday () in
  print_endline "DAISY experiment suite: regenerating all tables and figures";
  Stats.Experiments.all ();
  let micro =
    try Some (translator_microbench ())
    with e ->
      Printf.printf "translator micro-benchmark skipped: %s\n"
        (Printexc.to_string e);
      None
  in
  (try write_bench_json "BENCH_daisy.json" micro
   with e ->
     Printf.printf "BENCH_daisy.json skipped: %s\n" (Printexc.to_string e));
  Printf.printf "\nTotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
