(* Tests for the persistent translation cache: codec round-trips
   (hand-built, property-based, and over real translator output), store
   semantics (miss/persist/hit/evict, atomicity hygiene), corruption and
   version-mismatch detection, warm-start behaviour across the whole
   workload registry, and the self-modifying-code interaction — after a
   [Code_invalidated] the warm run must not find the evicted entry. *)

module T = Vliw.Tree
module Op = Vliw.Op
module Codec = Tcache.Codec
module Store = Tcache.Store
module Translate = Translator.Translate
module Vec = Translator.Vec

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_tcache.%d.%d" (Unix.getpid ()) !n)
    in
    Store.mkdir_p d;
    d

(* --- structural equality ------------------------------------------

   [Vec.t] carries spare array capacity, so polymorphic equality on
   xpages is wrong; compare through [Vec.to_list] and sort the entry
   table. *)

let entries_alist h =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let xpage_equal (a : Translate.xpage) (b : Translate.xpage) =
  a.base = b.base && a.psize = b.psize && a.code_bytes = b.code_bytes
  && a.next_addr = b.next_addr && a.insns_scheduled = b.insns_scheduled
  && Vec.to_list a.vliws = Vec.to_list b.vliws
  && Vec.to_list a.addrs = Vec.to_list b.addrs
  && Vec.to_list a.sizes = Vec.to_list b.sizes
  && entries_alist a.entries = entries_alist b.entries

let roundtrip_tree t =
  let b = Buffer.create 256 in
  Codec.put_tree b t;
  Codec.get_tree (Codec.reader (Buffer.contents b))

(* --- codec: every constructor once -------------------------------- *)

let all_ops : Op.t list =
  let dec what = function Some v -> v | None -> failwith ("bad " ^ what) in
  let xo i = dec "xo" (Ppc.Insn.xo_of_code i) in
  let x i = dec "x" (Ppc.Insn.x_of_code i) in
  let x1 i = dec "x1" (Ppc.Insn.x1_of_code i) in
  let w i = dec "width" (Ppc.Insn.width_of_code i) in
  let cr i = dec "cr_op" (Ppc.Insn.cr_op_of_code i) in
  let ib i = dec "ibin" (Op.ibin_of_code i) in
  let spr i = dec "spr" (Op.spr_of_code i) in
  [ Bin { op = xo 0; rt = 1; ra = 2; rb = 3; ca = Op.ca_loc; spec = false };
    Bin { op = xo 10; rt = 70; ra = Op.zero; rb = 4; ca = -1; spec = true };
    BinI { op = ib 0; rt = 5; ra = 6; imm = -32768; spec = true };
    BinI { op = ib 5; rt = 5; ra = 6; imm = 0x7FFF_FFFF; spec = false };
    Logic { op = x 9; rt = 7; ra = 8; rb = 9; spec = false };
    Un { op = x1 2; rt = 10; ra = 11; spec = true };
    SrawiOp { rt = 1; ra = 2; sh = 31; spec = false };
    RlwinmOp { rt = 1; ra = 2; sh = 3; mb = 0; me = 31; spec = true };
    CmpOp { signed = true; crt = 0; ra = 1; rb = 2; spec = false };
    CmpIOp { signed = false; crt = 7; ra = 1; imm = -1; spec = true };
    LoadOp
      { w = w 0; alg = false; rt = 3; base = 4; off = Op.OImm (-4);
        spec = true; passed = true };
    LoadOp
      { w = w 2; alg = true; rt = 3; base = 4; off = Op.OReg 9; spec = false;
        passed = false };
    StoreOp { w = w 1; rs = 5; base = 6; off = Op.OImm 8 };
    CropOp { op = cr 7; bt = 1; ba = 2; bb = 3; old = 4; spec = false };
    McrfOp { dst = 0; src = 7; spec = true };
    MfcrOp { rt = 12; srcs = Array.init 8 (fun i -> i * 4) };
    CrSetOp { crt = 3; rs = 4; pos = 2 };
    GetXer { rt = 13 };
    SetXer { rs = 14 };
    GetSpr { rt = 15; spr = spr 0 };
    SetSpr { spr = spr 7; rs = 16 };
    GetMsr { rt = 17 };
    SetMsr { rs = 18 };
    CommitG { arch = 31; src = 90 };
    CommitCr { arch = 7; src = 91 };
    CommitLr { src = Op.lr_loc };
    CommitCtr { src = Op.ctr_loc };
    CommitCa { src = Op.ca_loc } ]

let all_exits : T.exit list =
  [ Next 3; OnPage 0xFFC; OffPage 0x123456; Indirect (Op.lr_loc, `Lr);
    Indirect (Op.ctr_loc, `Ctr); Indirect (7, `Gpr); Trap (Tsc 0x2004);
    Trap Trfi; Trap (Tillegal 0x3000) ]

let test_codec_kitchen_sink () =
  (* one tree whose nodes collectively carry every op constructor and
     every exit kind *)
  let leaf ops exit : T.node = { ops; kind = Exit exit } in
  let rec chain seq exits =
    match exits with
    | [] -> failwith "empty"
    | [ e ] -> leaf (List.mapi (fun i op -> (seq + i, op)) all_ops) e
    | e :: rest ->
      { T.ops = [ (seq, List.nth all_ops (seq mod List.length all_ops)) ];
        kind =
          Branch
            { test = { bit = seq mod 32; sense = seq mod 2 = 0 };
              taken = leaf [] e;
              fall = chain (seq + 1) rest } }
  in
  let tree =
    { T.id = 42; root = chain 0 all_exits; precise_entry = 0x1234;
      is_entry = true; alu = 5; mem = 2; br = 3; free_gprs = 10;
      free_crs = 4 }
  in
  Alcotest.(check bool) "round-trips" true (roundtrip_tree tree = tree)

let test_codec_rejects_garbage () =
  let bad s =
    match Codec.decode_xpage s with
    | _ -> Alcotest.failf "decoded %S" s
    | exception Codec.Corrupt _ -> ()
  in
  bad "";
  bad "\x00";
  bad (String.make 64 '\xFF');
  (* a valid page truncated at every prefix must never decode *)
  let mem, entry = Workloads.Wl.instantiate (Workloads.Registry.by_name "wc") in
  let tr = Translate.create Translator.Params.default mem in
  let page, _ = Translate.entry tr entry in
  let s = Codec.encode_xpage page in
  for len = 0 to String.length s - 1 do
    bad (String.sub s 0 len)
  done

(* --- codec: property-based ---------------------------------------- *)

let gen_tree : T.t QCheck.Gen.t =
  let open QCheck.Gen in
  let loc = int_range (-1) 80 in
  let imm = int_range (-0x8000_0000) 0x7FFF_FFFF in
  let op : Op.t t =
    oneof
      [ map (fun ((rt, ra, rb), spec) ->
            Op.Bin
              { op = Option.get (Ppc.Insn.xo_of_code 0); rt; ra; rb;
                ca = Op.ca_loc; spec })
          (pair (triple loc loc loc) bool);
        map (fun ((code, rt, ra), imm) ->
            Op.BinI
              { op = Option.get (Op.ibin_of_code code); rt; ra; imm;
                spec = false })
          (pair (triple (int_range 0 5) loc loc) imm);
        map (fun ((code, rt, ra), rb) ->
            Op.Logic
              { op = Option.get (Ppc.Insn.x_of_code code); rt; ra; rb;
                spec = true })
          (pair (triple (int_range 0 9) loc loc) loc);
        map (fun ((rt, base, off), (spec, passed)) ->
            Op.LoadOp
              { w = Option.get (Ppc.Insn.width_of_code 2); alg = false; rt;
                base; off = Op.OImm off; spec; passed })
          (pair (triple loc loc imm) (pair bool bool));
        map (fun (rs, base, off) ->
            Op.StoreOp
              { w = Option.get (Ppc.Insn.width_of_code 0); rs; base;
                off = Op.OReg off })
          (triple loc loc loc);
        map (fun (arch, src) -> Op.CommitG { arch; src }) (pair loc loc);
        map (fun rt -> Op.MfcrOp { rt; srcs = Array.make 8 (-1) }) loc ]
  in
  let ops = list_size (int_range 0 6) (pair small_nat op) in
  let exit : T.exit t =
    oneof
      [ map (fun i -> T.Next i) small_nat;
        map (fun i -> T.OnPage i) (int_range 0 4092);
        map (fun i -> T.OffPage i) (int_range 0 0x3FFFF);
        map (fun l -> T.Indirect (l, `Lr)) loc;
        map (fun a -> T.Trap (Tsc a)) small_nat;
        return (T.Trap Trfi) ]
  in
  let rec node depth =
    if depth = 0 then map2 (fun ops e -> { T.ops; kind = Exit e }) ops exit
    else
      frequency
        [ (2, map2 (fun ops e -> { T.ops; kind = Exit e }) ops exit);
          ( 1,
            map2
              (fun (ops, (bit, sense)) (taken, fall) ->
                { T.ops; kind = Branch { test = { bit; sense }; taken; fall } })
              (pair ops (pair (int_range 0 31) bool))
              (pair (node (depth - 1)) (node (depth - 1))) ) ]
  in
  map2
    (fun root (id, (precise_entry, (is_entry, (alu, (mem, br))))) ->
      { T.id; root; precise_entry; is_entry; alu; mem; br;
        free_gprs = alu + 1; free_crs = br + 1 })
    (node 4)
    (pair small_nat
       (pair small_nat (pair bool (pair small_nat (pair small_nat small_nat)))))

let prop_tree_roundtrip =
  QCheck.Test.make ~name:"decode (encode tree) = tree" ~count:500
    (QCheck.make gen_tree)
    (fun t -> roundtrip_tree t = t)

(* --- codec + store over real translator output -------------------- *)

let translated_page name =
  let mem, entry = Workloads.Wl.instantiate (Workloads.Registry.by_name name) in
  let tr = Translate.create Translator.Params.default mem in
  let page, _ = Translate.entry tr entry in
  (mem, page)

let test_codec_real_page () =
  List.iter
    (fun name ->
      let _, page = translated_page name in
      let page' = Codec.decode_xpage (Codec.encode_xpage page) in
      Alcotest.(check bool) (name ^ " page round-trips") true
        (xpage_equal page page'))
    [ "wc"; "compress"; "sort" ]

let test_store_lifecycle () =
  let dir = fresh_dir () in
  let store =
    Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"test-fp-v1" ()
  in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  (match Store.probe store ~key with
  | `Miss -> ()
  | _ -> Alcotest.fail "expected initial miss");
  ignore (Store.persist store ~key page ~spec_inhibited:true);
  (match Store.probe store ~key with
  | `Hit (page', spec_inhibited) ->
    Alcotest.(check bool) "hit page equals persisted page" true
      (xpage_equal page page');
    Alcotest.(check bool) "spec_inhibited round-trips" true spec_inhibited
  | _ -> Alcotest.fail "expected hit");
  (* a different fingerprint never sees the entry *)
  let other =
    Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"test-fp-v2" ()
  in
  (match Store.probe other ~key:(Store.key other ~base:page.base bytes) with
  | `Miss -> ()
  | _ -> Alcotest.fail "fingerprint must fork the namespace");
  Alcotest.(check bool) "evict removes" true (Store.evict store ~key);
  Alcotest.(check bool) "evict is idempotent" false (Store.evict store ~key);
  (match Store.probe store ~key with
  | `Miss -> ()
  | _ -> Alcotest.fail "expected miss after evict");
  ignore (Store.clear_dir dir)

let test_store_detects_corruption () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  ignore (Store.persist store ~key page ~spec_inhibited:false);
  let path = Filename.concat dir (key ^ ".dtc") in
  let original = In_channel.with_open_bin path In_channel.input_all in
  let write s = Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc s)
  in
  let expect_corrupt what =
    match Store.probe store ~key with
    | `Corrupt _ -> ()
    | `Hit _ -> Alcotest.failf "%s went undetected" what
    | `Miss -> Alcotest.failf "%s reported as miss" what
    | `Skipped m -> Alcotest.failf "%s skipped instead of corrupt: %s" what m
  in
  (* truncation, at several depths *)
  write (String.sub original 0 (String.length original / 2));
  expect_corrupt "truncation to half";
  write (String.sub original 0 3);
  expect_corrupt "truncation into magic";
  (* bit flip in the payload: caught by the checksum *)
  let flipped = Bytes.of_string original in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  write (Bytes.to_string flipped);
  expect_corrupt "payload bit flip";
  (* version mismatch *)
  let vers = Bytes.of_string original in
  Bytes.set vers 4 (Char.chr (Codec.version + 1));
  write (Bytes.to_string vers);
  expect_corrupt "version mismatch";
  (* and an intact entry still reads back *)
  write original;
  (match Store.probe store ~key with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "restored entry should hit");
  (* list_dir sees through the same validation *)
  write (String.sub original 0 (String.length original - 2));
  (match Store.list_dir dir with
  | [ info ] -> (
    match info.status with
    | `Corrupt _ -> ()
    | `Skipped m -> Alcotest.failf "list_dir skipped the corruption: %s" m
    | `Ok -> Alcotest.fail "list_dir missed the corruption")
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  ignore (Store.clear_dir dir)

(* --- warm start across the registry ------------------------------- *)

let test_warm_start_registry () =
  let dir = fresh_dir () in
  List.iter
    (fun (w : Workloads.Wl.t) ->
      let cold = Vmm.Run.run ~tcache_dir:dir w in
      let warm = Vmm.Run.run ~tcache_dir:dir w in
      (* Run.run itself verified both runs against the reference
         interpreter (registers, memory, console); here we check the
         warm start did zero translation work yet behaved identically *)
      Alcotest.(check int) (w.name ^ ": warm pages translated") 0
        warm.pages_translated;
      Alcotest.(check int) (w.name ^ ": warm insns scheduled") 0
        warm.insns_translated;
      Alcotest.(check bool) (w.name ^ ": warm hit the cache") true
        (warm.stats.tcache_hits > 0);
      Alcotest.(check bool) (w.name ^ ": cold persisted") true
        (cold.stats.tcache_persists > 0);
      Alcotest.(check bool) (w.name ^ ": same exit") true
        (cold.exit_code = warm.exit_code);
      Alcotest.(check int) (w.name ^ ": same VLIWs executed") cold.vliws
        warm.vliws;
      Alcotest.(check int) (w.name ^ ": same cycles") cold.cycles_infinite
        warm.cycles_infinite;
      Alcotest.(check bool) (w.name ^ ": same ILP") true
        (cold.ilp_inf = warm.ilp_inf))
    Workloads.Registry.all;
  ignore (Store.clear_dir dir)

let test_warm_survives_corrupt_entry () =
  let dir = fresh_dir () in
  let w = Workloads.Registry.by_name "wc" in
  let cold = Vmm.Run.run ~tcache_dir:dir w in
  (* truncate one entry on disk *)
  (match Store.list_dir dir with
  | info :: _ ->
    let path = Filename.concat dir (info.key ^ ".dtc") in
    let s = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub s 0 (String.length s / 3)))
  | [] -> Alcotest.fail "cold run persisted nothing");
  let warm = Vmm.Run.run ~tcache_dir:dir w in
  Alcotest.(check bool) "corrupt entry counted" true
    (warm.stats.tcache_corrupt >= 1);
  Alcotest.(check bool) "run still completed correctly" true
    (warm.exit_code = cold.exit_code);
  (* the retranslation was re-persisted, so a third run is all-hit *)
  let third = Vmm.Run.run ~tcache_dir:dir w in
  Alcotest.(check int) "third run all from cache" 0 third.pages_translated;
  ignore (Store.clear_dir dir)

(* --- self-modifying code × cache ----------------------------------

   The JIT program from examples/self_modifying.ml: it writes a
   two-instruction function (mullw; blr) into an empty page, runs it,
   patches the mullw into an add, and runs it again.  The store into
   the translated page must evict the persisted entry keyed on the
   pre-store bytes, so no later run can install the invalidated
   translation generation. *)

let jit_page = 0x4000

let build_selfmod a =
  let open Ppc in
  Asm.org a 0x1000;
  Asm.label a "main";
  Asm.li32 a 10 jit_page;
  Asm.li32 a 11 (Encode.encode (Xo (Mullw, 3, 3, 3, false)));
  Asm.stw a 11 10 0;
  Asm.li32 a 11 (Encode.encode (Bclr (Insn.Bo.always, 0, false)));
  Asm.stw a 11 10 4;
  Asm.ins a Isync;
  Asm.li a 3 7;
  Asm.mtctr a 10;
  Asm.bctrl a;
  Asm.mr a 20 3;
  Asm.li32 a 11 (Encode.encode (Xo (Add, 3, 3, 3, false)));
  Asm.stw a 11 10 0;
  Asm.ins a Isync;
  Asm.li a 3 7;
  Asm.mtctr a 10;
  Asm.bctrl a;
  Asm.ins a (Mulli (20, 20, 100));
  Asm.add a 3 3 20;
  Asm.halt a ~scratch:31 3

let run_selfmod ~tcache_dir =
  let mem = Ppc.Mem.create 0x40000 in
  let a = Ppc.Asm.create () in
  build_selfmod a;
  let labels = Ppc.Asm.assemble a mem in
  let vmm = Vmm.Monitor.create ~tcache_dir mem in
  let code =
    Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels "main") ~fuel:100_000
  in
  (code, vmm)

(* the jit page's bytes at first-translation time: mullw + blr at its
   base, zeroes elsewhere *)
let jit_page_bytes ~psize =
  let open Ppc in
  let b = Bytes.make psize '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int (Encode.encode (Xo (Mullw, 3, 3, 3, false))));
  Bytes.set_int32_be b 4
    (Int32.of_int (Encode.encode (Bclr (Insn.Bo.always, 0, false))));
  Bytes.to_string b

let test_selfmod_evicts () =
  let dir = fresh_dir () in
  let code, vmm = run_selfmod ~tcache_dir:dir in
  Alcotest.(check (option int)) "cold exit" (Some 4914) code;
  Alcotest.(check bool) "store tripped the read-only bit" true
    (vmm.stats.code_invalidations > 0);
  Alcotest.(check bool) "invalidation evicted the entry" true
    (vmm.stats.tcache_evicts >= 1);
  (* the entry for the pre-patch generation is gone: probing under the
     mullw-bytes key must miss, so no run can reuse the invalidated
     translation *)
  let store =
    Store.open_store ~dir ~frontend:"ppc"
      ~fingerprint:(Translator.Params.fingerprint Translator.Params.default) ()
  in
  let psize = Translator.Params.default.page_size in
  let stale_key = Store.key store ~base:jit_page (jit_page_bytes ~psize) in
  (match Store.probe store ~key:stale_key with
  | `Miss -> ()
  | `Hit _ -> Alcotest.fail "stale pre-patch entry survived eviction"
  | `Corrupt m -> Alcotest.failf "stale entry corrupt instead of gone: %s" m
  | `Skipped m -> Alcotest.failf "stale entry skipped instead of gone: %s" m);
  (* warm run: correct result, hits for the stable pages, and the same
     eviction dance for the JIT page's two generations *)
  let code', vmm' = run_selfmod ~tcache_dir:dir in
  Alcotest.(check (option int)) "warm exit" (Some 4914) code';
  Alcotest.(check bool) "warm run hit the cache" true
    (vmm'.stats.tcache_hits >= 1);
  ignore (Store.clear_dir dir)

(* --- adaptive retranslation × cache -------------------------------

   Spec-inhibition is run-time state the content address cannot see:
   the bytes never change, only the VMM's opinion of them.  The evict
   on [Retranslate_adaptive] plus the [spec_inhibited] flag persisted
   with the retranslation keep warm starts faithful. *)

let test_spec_inhibited_flag_roundtrip () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  ignore (Store.persist store ~key page ~spec_inhibited:false);
  (match Store.probe store ~key with
  | `Hit (_, si) -> Alcotest.(check bool) "flag off" false si
  | _ -> Alcotest.fail "expected hit");
  (* overwrite in place with the flag set, as a retranslation would *)
  ignore (Store.persist store ~key page ~spec_inhibited:true);
  (match Store.probe store ~key with
  | `Hit (_, si) -> Alcotest.(check bool) "flag on" true si
  | _ -> Alcotest.fail "expected hit");
  ignore (Store.clear_dir dir)

(* --- skip semantics: the store is not the only tenant --------------

   Anything in the cache directory that is not a readable entry file —
   a directory wearing the [.dtc] suffix, a stray README — is skipped
   and reported, never deleted, and never an exception. *)

let test_store_skips_junk () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  ignore (Store.persist store ~key page ~spec_inhibited:false);
  Store.mkdir_p (Filename.concat dir "imposter.dtc");
  Out_channel.with_open_bin (Filename.concat dir "README") (fun oc ->
      Out_channel.output_string oc "not a cache entry\n");
  (* probing the directory skips with a reason instead of raising *)
  (match Store.probe store ~key:"imposter" with
  | `Skipped _ -> ()
  | _ -> Alcotest.fail "expected skip for a directory entry");
  (* the real entry is still served *)
  (match Store.probe store ~key with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "expected hit despite junk in the directory");
  (* listing marks the directory skipped; strays are reported apart *)
  let skipped =
    List.filter
      (fun (i : Store.info) ->
        match i.status with `Skipped _ -> true | _ -> false)
      (Store.list_dir dir)
  in
  Alcotest.(check int) "one skipped entry" 1 (List.length skipped);
  Alcotest.(check (list string)) "strays reported" [ "README" ]
    (Store.stray_files dir);
  (* clear removes only what is the store's and removable *)
  let removed, skipped_n = Store.clear_dir dir in
  Alcotest.(check int) "removed the real entry" 1 removed;
  Alcotest.(check int) "skipped directory + stray" 2 skipped_n;
  Alcotest.(check bool) "stray untouched" true
    (Sys.file_exists (Filename.concat dir "README"));
  Sys.remove (Filename.concat dir "README");
  Unix.rmdir (Filename.concat dir "imposter.dtc")

let test_warm_counts_skipped () =
  let dir = fresh_dir () in
  let w = Workloads.Registry.by_name "wc" in
  let cold = Vmm.Run.run ~tcache_dir:dir w in
  (* replace one entry with a same-named directory: the warm start must
     skip it, count it, retranslate and still verify (the failed
     re-persist over the directory is silently best-effort) *)
  (match Store.list_dir dir with
  | info :: _ ->
    let path = Filename.concat dir (info.key ^ ".dtc") in
    Sys.remove path;
    Store.mkdir_p path
  | [] -> Alcotest.fail "cold run persisted nothing");
  let warm = Vmm.Run.run ~tcache_dir:dir w in
  Alcotest.(check bool) "skip counted" true (warm.stats.tcache_skipped >= 1);
  Alcotest.(check bool) "run still completed correctly" true
    (warm.exit_code = cold.exit_code);
  Alcotest.(check bool) "skipped page retranslated" true
    (warm.pages_translated >= 1);
  ignore (Store.clear_dir dir)

(* A missing or never-populated cache directory is an empty cache, not
   an error: every directory tool reports empty, and the CLI (which
   builds on them) exits 0.  Regression test for `daisy tcache stats`
   on a directory that does not exist. *)
let test_missing_dir_is_empty () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_test_tcache_missing.%d" (Unix.getpid ()))
  in
  (* the directory must NOT exist *)
  Alcotest.(check bool) "precondition" false (Sys.file_exists dir);
  Alcotest.(check (list string)) "ls: no entries" []
    (List.map (fun (i : Store.info) -> i.key) (Store.list_dir dir));
  Alcotest.(check (list string)) "no strays" [] (Store.stray_files dir);
  Alcotest.(check (pair int int)) "clear: nothing to do" (0, 0)
    (Store.clear_dir dir);
  Alcotest.(check bool) "tools did not create it" false (Sys.file_exists dir);
  (* the CLI itself: every subcommand exits 0 on the missing dir (the
     binary is a declared test dependency, built next to this suite) *)
  let daisy =
    Filename.concat
      (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
      "daisy.exe"
  in
  Alcotest.(check bool) "daisy binary present" true (Sys.file_exists daisy);
  List.iter
    (fun sub ->
      Alcotest.(check int)
        ("daisy tcache " ^ sub ^ " exits 0")
        0
        (Sys.command
           (Filename.quote_command daisy ~stdout:Filename.null
              [ "tcache"; sub; dir ])))
    [ "stats"; "ls"; "clear" ]

(* A writer killed between temp-file creation and rename leaves an
   orphaned *.tmp; opening the store sweeps them, leaving real entries
   and foreign files alone. *)
let test_open_sweeps_orphan_tmp () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let _, page = translated_page "wc" in
  let k = Store.key store ~base:page.base "bytes" in
  ignore (Store.persist store ~key:k page ~spec_inhibited:false);
  let touch name =
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc "torn")
  in
  touch ".tcache-orphan-a.tmp";
  touch ".tcache-orphan-b.tmp";
  touch "README";
  let store2 = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  Alcotest.(check int) "orphans swept" 2 store2.swept_tmp;
  Alcotest.(check bool) "no temp files left" false
    (Array.exists
       (fun f -> Filename.check_suffix f ".tmp")
       (Sys.readdir dir));
  (match Store.probe store2 ~key:k with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "real entry lost in the sweep");
  Alcotest.(check (list string)) "foreign file untouched" [ "README" ]
    (Store.stray_files dir);
  Sys.remove (Filename.concat dir "README");
  ignore (Store.clear_dir dir)

let () =
  Alcotest.run "tcache"
    [ ( "codec",
        [ Alcotest.test_case "kitchen sink" `Quick test_codec_kitchen_sink;
          Alcotest.test_case "rejects garbage" `Quick
            test_codec_rejects_garbage;
          Alcotest.test_case "real pages" `Quick test_codec_real_page;
          QCheck_alcotest.to_alcotest prop_tree_roundtrip ] );
      ( "store",
        [ Alcotest.test_case "lifecycle" `Quick test_store_lifecycle;
          Alcotest.test_case "corruption" `Quick
            test_store_detects_corruption;
          Alcotest.test_case "spec flag" `Quick
            test_spec_inhibited_flag_roundtrip;
          Alcotest.test_case "skips junk" `Quick test_store_skips_junk;
          Alcotest.test_case "missing dir is empty" `Quick
            test_missing_dir_is_empty;
          Alcotest.test_case "open sweeps orphan tmp" `Quick
            test_open_sweeps_orphan_tmp ] );
      ( "warm start",
        [ Alcotest.test_case "registry" `Slow test_warm_start_registry;
          Alcotest.test_case "corrupt entry" `Quick
            test_warm_survives_corrupt_entry;
          Alcotest.test_case "skipped entry" `Quick test_warm_counts_skipped;
          Alcotest.test_case "self-modifying" `Quick test_selfmod_evicts ] ) ]
