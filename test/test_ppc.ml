(* Tests for the base-architecture substrate: instruction encode/decode
   round-trips (exhaustive-ish via qcheck), interpreter semantics against
   hand-computed results, assembler label resolution, memory faults and
   interrupt delivery. *)

open Ppc

let check_insn msg expected actual =
  Alcotest.(check string) msg (Insn.to_string expected) (Insn.to_string actual)

(* ------------------------------------------------------------------ *)
(* Encode/decode round trip                                            *)

let roundtrip i =
  match Decode.decode (Encode.encode i) with
  | Some i' -> check_insn (Insn.to_string i) i i'
  | None ->
    Alcotest.failf "%s (%08x) did not decode" (Insn.to_string i)
      (Encode.encode i)

let test_roundtrip_fixed () =
  List.iter roundtrip
    [ Addi (1, 2, -3);
      Addi (0, 0, 32767);
      Addis (3, 0, -0x8000);
      Addic (5, 6, 100);
      Mulli (7, 8, -42);
      Cmpi (3, 9, -1);
      Cmpli (7, 10, 0xFFFF);
      Andi (11, 12, 0xF0F0);
      Ori (1, 1, 0);
      Oris (2, 3, 0x8000);
      Xori (4, 5, 0x1234);
      Xo (Add, 1, 2, 3, false);
      Xo (Subf, 31, 30, 29, true);
      Xo (Neg, 4, 5, 0, false);
      Xo (Mullw, 6, 7, 8, false);
      Xo (Divw, 9, 10, 11, true);
      Xo (Addc, 1, 2, 3, false);
      Xo (Adde, 1, 2, 3, false);
      X (And_, 1, 2, 3, true);
      X (Nor, 4, 5, 6, false);
      X (Sraw, 7, 8, 9, false);
      X (Slw, 10, 11, 12, true);
      X1 (Cntlzw, 13, 14, false);
      X1 (Extsb, 15, 16, true);
      Srawi (17, 18, 31, false);
      Cmp (0, 1, 2);
      Cmpl (7, 3, 4);
      Rlwinm (5, 6, 7, 8, 9, true);
      Load (Word, false, 1, 2, -4);
      Load (Byte, false, 3, 4, 0x7FFF);
      Load (Half, true, 5, 6, -0x8000);
      Load (Half, false, 7, 8, 2);
      Store (Word, 9, 10, 4);
      Store (Byte, 11, 12, -1);
      Store (Half, 13, 14, 100);
      Loadx (Word, false, 1, 2, 3);
      Loadx (Half, true, 4, 5, 6);
      Storex (Byte, 7, 8, 9);
      Lwzu (1, 2, 8);
      Stwu (1, 1, -16);
      Lmw (25, 1, 4);
      Stmw (25, 1, 4);
      B (0x1000, false, false);
      B (-0x1000, false, true);
      B (0x100, true, false);
      Bc (12, 2, 0x40, false, false);
      Bc (4, 31, -0x40, false, true);
      Bc (16, 0, 8, false, false);
      Bclr (20, 0, false);
      Bclr (12, 2, true);
      Bcctr (20, 0, true);
      Crop (Crand, 1, 2, 3);
      Crop (Crnor, 31, 30, 29);
      Mcrf (1, 7);
      Mfcr 5;
      Mtcrf (0xFF, 6);
      Mtcrf (0x80, 7);
      Mfspr (1, LR);
      Mfspr (2, CTR);
      Mfspr (3, XER);
      Mfspr (4, SRR0);
      Mtspr (SRR1, 5);
      Mtspr (SPRG0, 6);
      Mtspr (DAR, 7);
      Mfmsr 8;
      Mtmsr 9;
      Sc;
      Rfi;
      Isync ]

(* Random instruction generator for the property test. *)
let gen_insn =
  let open QCheck.Gen in
  let gpr = int_bound 31 in
  let crf = int_bound 7 in
  let crb = int_bound 31 in
  let simm = map (fun v -> v - 0x8000) (int_bound 0xFFFF) in
  let uimm = int_bound 0xFFFF in
  let disp = simm in
  let rc = bool in
  let width = oneofl [ Insn.Byte; Insn.Half; Insn.Word ] in
  let spr =
    oneofl [ Insn.XER; LR; CTR; SRR0; SRR1; DAR; DSISR; SPRG0; SPRG1 ]
  in
  let xo_op =
    oneofl
      [ Insn.Add; Addc; Adde; Subf; Subfc; Mullw; Mulhw; Mulhwu; Divw; Divwu; Neg ]
  in
  let x_op =
    oneofl [ Insn.And_; Or_; Xor_; Nand; Nor; Andc; Eqv; Slw; Srw; Sraw ]
  in
  let x1_op = oneofl [ Insn.Cntlzw; Extsb; Extsh ] in
  let cr_op =
    oneofl [ Insn.Crand; Cror; Crxor; Crnand; Crnor; Crandc; Creqv; Crorc ]
  in
  let boff = map (fun v -> (v - 0x2000) * 4) (int_bound 0x3FFF) in
  let lioff = map (fun v -> (v - 0x80_0000) * 4) (int_bound 0xFF_FFFF) in
  oneof
    [ map3 (fun a b c -> Insn.Addi (a, b, c)) gpr gpr simm;
      map3 (fun a b c -> Insn.Addis (a, b, c)) gpr gpr simm;
      map3 (fun a b c -> Insn.Addic (a, b, c)) gpr gpr simm;
      map3 (fun a b c -> Insn.Mulli (a, b, c)) gpr gpr simm;
      map3 (fun a b c -> Insn.Cmpi (a, b, c)) crf gpr simm;
      map3 (fun a b c -> Insn.Cmpli (a, b, c)) crf gpr uimm;
      map3 (fun a b c -> Insn.Andi (a, b, c)) gpr gpr uimm;
      map3 (fun a b c -> Insn.Ori (a, b, c)) gpr gpr uimm;
      map3 (fun a b c -> Insn.Xori (a, b, c)) gpr gpr uimm;
      (let* op = xo_op and* a = gpr and* b = gpr and* c = gpr and* r = rc in
       return (Insn.Xo (op, a, b, c, r)));
      (let* op = x_op and* a = gpr and* b = gpr and* c = gpr and* r = rc in
       return (Insn.X (op, a, b, c, r)));
      (let* op = x1_op and* a = gpr and* b = gpr and* r = rc in
       return (Insn.X1 (op, a, b, r)));
      (let* a = gpr and* b = gpr and* sh = int_bound 31 and* r = rc in
       return (Insn.Srawi (a, b, sh, r)));
      map3 (fun a b c -> Insn.Cmp (a, b, c)) crf gpr gpr;
      map3 (fun a b c -> Insn.Cmpl (a, b, c)) crf gpr gpr;
      (let* a = gpr and* b = gpr and* sh = int_bound 31 and* mb = int_bound 31
       and* me = int_bound 31 and* r = rc in
       return (Insn.Rlwinm (a, b, sh, mb, me, r)));
      (let* w = width and* alg = bool and* a = gpr and* b = gpr and* d = disp in
       let alg = alg && w = Insn.Half in
       return (Insn.Load (w, alg, a, b, d)));
      (let* w = width and* a = gpr and* b = gpr and* d = disp in
       return (Insn.Store (w, a, b, d)));
      (let* w = width and* alg = bool and* a = gpr and* b = gpr and* c = gpr in
       let alg = alg && w = Insn.Half in
       return (Insn.Loadx (w, alg, a, b, c)));
      (let* w = width and* a = gpr and* b = gpr and* c = gpr in
       return (Insn.Storex (w, a, b, c)));
      map3 (fun a b c -> Insn.Lwzu (a, b, c)) gpr gpr disp;
      map3 (fun a b c -> Insn.Stwu (a, b, c)) gpr gpr disp;
      map3 (fun a b c -> Insn.Lmw (a, b, c)) gpr gpr disp;
      map3 (fun a b c -> Insn.Stmw (a, b, c)) gpr gpr disp;
      (let* li = lioff and* aa = bool and* lk = bool in
       return (Insn.B (li, aa, lk)));
      (let* bo = oneofl [ 20; 12; 4; 16; 18; 13; 5 ] and* bi = crb
       and* bd = boff and* lk = bool in
       return (Insn.Bc (bo, bi, bd, false, lk)));
      (let* bo = oneofl [ 20; 12; 4 ] and* bi = crb and* lk = bool in
       return (Insn.Bclr (bo, bi, lk)));
      (let* bo = oneofl [ 20; 12; 4 ] and* bi = crb and* lk = bool in
       return (Insn.Bcctr (bo, bi, lk)));
      (let* op = cr_op and* a = crb and* b = crb and* c = crb in
       return (Insn.Crop (op, a, b, c)));
      map2 (fun a b -> Insn.Mcrf (a, b)) crf crf;
      map (fun a -> Insn.Mfcr a) gpr;
      map2 (fun m a -> Insn.Mtcrf (m, a)) (int_bound 255) gpr;
      map2 (fun a s -> Insn.Mfspr (a, s)) gpr spr;
      map2 (fun s a -> Insn.Mtspr (s, a)) spr gpr;
      map (fun a -> Insn.Mfmsr a) gpr;
      map (fun a -> Insn.Mtmsr a) gpr;
      oneofl [ Insn.Sc; Insn.Rfi; Insn.Isync ] ]

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_insn (fun i ->
      match Decode.decode (Encode.encode i) with
      | Some i' -> i = i'
      | None -> false)

let prop_encode_32bit =
  QCheck.Test.make ~name:"encodings fit in 32 bits" ~count:2000 arb_insn
    (fun i ->
      let w = Encode.encode i in
      w >= 0 && w <= 0xFFFF_FFFF)

(* The decoder is the fuzzer's front line: any word, including ones
   that are not 32-bit values at all, must yield [Some i] or [None] —
   never an exception.  (Field extraction used to let [Invalid_argument]
   escape on pathological inputs.) *)
let prop_decode_total =
  let extremes =
    [ -1; min_int; max_int; 0; 0xFFFF_FFFF; 0x1_0000_0000; 1 lsl 62 ]
  in
  QCheck.Test.make ~name:"decode never raises" ~count:2000
    QCheck.(
      frequency
        [ (1, oneofl extremes); (8, map (fun w -> w land 0xFFFF_FFFF) int) ])
    (fun w ->
      match Decode.decode w with Some _ | None -> true)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)

(* Run [prog] starting at 0x1000 until halt; return machine + memory. *)
let run_asm ?(fuel = 100_000) build =
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  Asm.org a 0x1000;
  build a;
  let labels = Asm.assemble a mem in
  let st = Machine.create () in
  st.pc <- 0x1000;
  let t = Interp.create st mem in
  let code = Interp.run t ~fuel in
  (code, st, mem, labels, t)

let exit_with a rs = Asm.halt a ~scratch:31 rs

let test_arith () =
  let code, st, _, _, _ =
    run_asm (fun a ->
        Asm.li a 1 7;
        Asm.li a 2 5;
        Asm.add a 3 1 2;
        Asm.sub a 4 1 2;
        Asm.mullw a 5 1 2;
        Asm.li a 6 (-20);
        Asm.divw a 7 6 2;
        exit_with a 3)
  in
  Alcotest.(check (option int)) "exit code" (Some 12) code;
  Alcotest.(check int) "sub" 2 st.gpr.(4);
  Alcotest.(check int) "mullw" 35 st.gpr.(5);
  Alcotest.(check int) "divw" 0xFFFF_FFFC st.gpr.(7)

let test_carry () =
  let _, st, _, _, _ =
    run_asm (fun a ->
        Asm.li32 a 1 0xFFFF_FFFF;
        Asm.li a 2 1;
        Asm.ins a (Xo (Addc, 3, 1, 2, false));  (* carry out *)
        Asm.li a 4 0;
        Asm.ins a (Xo (Adde, 5, 4, 4, false));  (* 0+0+CA = 1 *)
        exit_with a 5)
  in
  Alcotest.(check int) "addc wraps" 0 st.gpr.(3);
  Alcotest.(check int) "adde picks up carry" 1 st.gpr.(5)

let test_cr_logic () =
  let _, st, _, _, _ =
    run_asm (fun a ->
        Asm.li a 1 3;
        Asm.cmpwi a 1 3;                        (* cr0 = EQ *)
        Asm.cmpwi ~cr:1 a 1 5;                  (* cr1 = LT *)
        Asm.ins a (Crop (Crand, 0, Insn.Crbit.of_field 0 Insn.Crbit.eq,
                         Insn.Crbit.of_field 1 Insn.Crbit.lt));
        Asm.ins a (Mfcr 6);
        exit_with a 6)
  in
  (* CR0 now has LT bit = (EQ0 && LT1) = 1; original EQ still set *)
  Alcotest.(check int) "crand result" 1 ((st.cr lsr 31) land 1);
  Alcotest.(check int) "cr0 eq still set" 1 ((st.cr lsr 29) land 1)

let test_rlwinm () =
  let _, st, _, _, _ =
    run_asm (fun a ->
        Asm.li32 a 1 0x1234_5678;
        Asm.slwi a 2 1 4;
        Asm.srwi a 3 1 8;
        Asm.ins a (Rlwinm (4, 1, 8, 24, 31, false)); (* extract top byte *)
        exit_with a 4)
  in
  Alcotest.(check int) "slwi" 0x2345_6780 st.gpr.(2);
  Alcotest.(check int) "srwi" 0x0012_3456 st.gpr.(3);
  Alcotest.(check int) "rotate+mask" 0x12 st.gpr.(4)

let test_cntlzw () =
  let _, st, _, _, _ =
    run_asm (fun a ->
        Asm.li a 1 0;
        Asm.ins a (X1 (Cntlzw, 2, 1, false));
        Asm.li a 3 1;
        Asm.ins a (X1 (Cntlzw, 4, 3, false));
        Asm.li32 a 5 0x8000_0000;
        Asm.ins a (X1 (Cntlzw, 6, 5, false));
        exit_with a 2)
  in
  Alcotest.(check int) "clz 0" 32 st.gpr.(2);
  Alcotest.(check int) "clz 1" 31 st.gpr.(4);
  Alcotest.(check int) "clz msb" 0 st.gpr.(6)

let test_loads_stores () =
  let _, st, mem, _, _ =
    run_asm (fun a ->
        Asm.li32 a 1 0x2000;
        Asm.li32 a 2 0xDEAD_BEEF;
        Asm.stw a 2 1 0;
        Asm.lbz a 3 1 0;
        Asm.lhz a 4 1 2;
        Asm.ins a (Load (Half, true, 5, 1, 0));  (* lha of 0xDEAD *)
        Asm.lwz a 6 1 0;
        exit_with a 6)
  in
  Alcotest.(check int) "word" 0xDEAD_BEEF (Mem.load32 mem 0x2000);
  Alcotest.(check int) "lbz top byte (big endian)" 0xDE st.gpr.(3);
  Alcotest.(check int) "lhz low half" 0xBEEF st.gpr.(4);
  Alcotest.(check int) "lha sign extends" 0xFFFF_DEAD st.gpr.(5)

let test_lmw_stmw () =
  let _, st, _, _, _ =
    run_asm (fun a ->
        Asm.li32 a 1 0x3000;
        Asm.li a 28 111;
        Asm.li a 29 222;
        Asm.li a 30 333;
        Asm.li a 31 444;
        Asm.ins a (Stmw (28, 1, 0));
        Asm.li a 28 0;
        Asm.li a 29 0;
        Asm.li a 30 0;
        Asm.li a 31 0;
        Asm.ins a (Lmw (28, 1, 0));
        Asm.halt a ~scratch:9 28)
  in
  Alcotest.(check (list int)) "lmw restores"
    [ 111; 222; 333; 444 ]
    [ st.gpr.(28); st.gpr.(29); st.gpr.(30); st.gpr.(31) ]

let test_branch_loop () =
  (* Sum 1..10 with a bdnz loop. *)
  let code, st, _, _, _ =
    run_asm (fun a ->
        Asm.li a 1 10;
        Asm.mtctr a 1;
        Asm.li a 2 0;
        Asm.li a 3 0;
        Asm.label a "loop";
        Asm.addi a 3 3 1;
        Asm.add a 2 2 3;
        Asm.bdnz a "loop";
        exit_with a 2)
  in
  Alcotest.(check (option int)) "sum 1..10" (Some 55) code;
  Alcotest.(check int) "ctr exhausted" 0 st.ctr

let test_call_return () =
  let code, _, _, _, _ =
    run_asm (fun a ->
        Asm.li a 3 5;
        Asm.bl a "double";
        Asm.bl a "double";
        exit_with a 3;
        Asm.label a "double";
        Asm.add a 3 3 3;
        Asm.blr a)
  in
  Alcotest.(check (option int)) "double twice" (Some 20) code

let test_indirect_ctr () =
  let code, _, _, _, _ =
    run_asm (fun a ->
        Asm.la a 5 "target";
        Asm.mtctr a 5;
        Asm.bctr a;
        Asm.li a 3 0;
        exit_with a 3;
        Asm.label a "target";
        Asm.li a 3 99;
        exit_with a 3)
  in
  Alcotest.(check (option int)) "bctr lands on target" (Some 99) code

let test_syscall_and_rfi () =
  (* Install a trivial OS handler at the syscall vector: it doubles r3
     and returns. *)
  let code, _, _, _, _ =
    run_asm (fun a ->
        Asm.li a 3 21;
        Asm.ins a Sc;
        exit_with a 3;
        Asm.org a Interp.Vector.syscall;
        Asm.add a 3 3 3;
        Asm.ins a Rfi)
  in
  Alcotest.(check (option int)) "sc doubles via handler" (Some 42) code

let test_data_fault_delivery () =
  (* A load from unmapped space should vector to 0x300 with DAR set. *)
  let code, st, _, _, _ =
    run_asm (fun a ->
        Asm.li32 a 4 0x00F0_0000;  (* beyond the 256K memory, not MMIO *)
        Asm.lwz a 5 4 0;
        Asm.li a 3 1;
        exit_with a 3;
        Asm.org a Interp.Vector.dsi;
        Asm.ins a (Mfspr (6, DAR));
        Asm.li a 3 77;
        exit_with a 3)
  in
  Alcotest.(check (option int)) "fault handler ran" (Some 77) code;
  Alcotest.(check int) "dar holds address" 0x00F0_0000 st.gpr.(6);
  Alcotest.(check int) "srr0 is faulting insn" 0x1004 st.srr0

let test_mmio_console () =
  let _, _, mem, _, _ =
    run_asm (fun a ->
        Asm.li a 3 (Char.code 'h');
        Asm.putchar a ~scratch:30 3;
        Asm.li a 3 (Char.code 'i');
        Asm.putchar a ~scratch:30 3;
        Asm.li a 3 0;
        exit_with a 3)
  in
  Alcotest.(check string) "console output" "hi" (Mem.output mem)

(* The MMIO load-decode rule, pinned: a load of any width whose
   enclosing word is the sequence register ticks it once and returns the
   new count masked to the load's width; every other I/O-space load
   reads as 0 with no side effect.  (The three widths used to disagree:
   halfword loads always read 0, word loads required exact address
   equality.) *)
let test_mmio_load_decode () =
  let mem = Mem.create 0x1000 in
  Alcotest.(check int) "word read ticks" 1 (Mem.load32 mem Mem.mmio_seq);
  Alcotest.(check int) "byte in seq word ticks" 2 (Mem.load8 mem (Mem.mmio_seq + 3));
  Alcotest.(check int) "half in seq word ticks" 3 (Mem.load16 mem (Mem.mmio_seq + 2));
  Alcotest.(check int) "device counted every read" 3 mem.seq;
  (* width masking: run the counter past one byte *)
  mem.seq <- 0x1FE;
  Alcotest.(check int) "byte read masks to 8 bits" 0xFF (Mem.load8 mem Mem.mmio_seq);
  Alcotest.(check int) "half read masks to 16 bits" 0x200 (Mem.load16 mem Mem.mmio_seq);
  (* any other MMIO address reads 0, silently, at every width *)
  List.iter
    (fun addr ->
      Alcotest.(check int) "other mmio byte" 0 (Mem.load8 mem addr);
      Alcotest.(check int) "other mmio half" 0 (Mem.load16 mem addr);
      Alcotest.(check int) "other mmio word" 0 (Mem.load32 mem addr))
    [ Mem.mmio_halt; Mem.mmio_putchar; Mem.mmio_base + 0x100 ];
  Alcotest.(check int) "no stray ticks" 0x200 mem.seq

let test_asm_labels () =
  let _, _, _, labels, _ =
    run_asm (fun a ->
        Asm.label a "start";
        Asm.li a 3 0;
        Asm.align a 16;
        Asm.label a "aligned";
        exit_with a 3)
  in
  Alcotest.(check int) "start label" 0x1000 (Hashtbl.find labels "start");
  Alcotest.(check int) "aligned label" 0x1010 (Hashtbl.find labels "aligned")

let test_reuse_counting () =
  let _, _, _, _, t =
    run_asm (fun a ->
        Asm.li a 1 100;
        Asm.mtctr a 1;
        Asm.li a 2 0;
        Asm.label a "loop";
        Asm.addi a 2 2 1;
        Asm.bdnz a "loop";
        exit_with a 2)
  in
  Alcotest.(check bool) "dynamic >> static" true (t.icount > 100);
  Alcotest.(check bool) "static small" true (Interp.static_touched t < 20)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_encode_32bit; prop_decode_total ]
  in
  Alcotest.run "ppc"
    [ ("roundtrip", [ Alcotest.test_case "fixed vectors" `Quick test_roundtrip_fixed ] @ qsuite);
      ( "interp",
        [ Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "carry chain" `Quick test_carry;
          Alcotest.test_case "cr logic" `Quick test_cr_logic;
          Alcotest.test_case "rlwinm" `Quick test_rlwinm;
          Alcotest.test_case "cntlzw" `Quick test_cntlzw;
          Alcotest.test_case "loads/stores" `Quick test_loads_stores;
          Alcotest.test_case "lmw/stmw" `Quick test_lmw_stmw;
          Alcotest.test_case "bdnz loop" `Quick test_branch_loop;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "indirect via ctr" `Quick test_indirect_ctr;
          Alcotest.test_case "sc + rfi" `Quick test_syscall_and_rfi;
          Alcotest.test_case "data fault delivery" `Quick test_data_fault_delivery;
          Alcotest.test_case "mmio console" `Quick test_mmio_console;
          Alcotest.test_case "mmio load decode" `Quick test_mmio_load_decode;
          Alcotest.test_case "reuse counting" `Quick test_reuse_counting ] );
      ( "asm",
        [ Alcotest.test_case "labels and align" `Quick test_asm_labels ] ) ]
