(* Tests for the VMM: workload-level differential equivalence under
   several parameter sets, external-interrupt transparency, adaptive
   alias retranslation, the cast-out-free translation cache, and the
   measured-run harness. *)

module Params = Translator.Params
module Run = Vmm.Run

let golden =
  [ ("compress", 11415); ("lex", 152801411); ("fgrep", 37); ("wc", 4691);
    ("cmp", 16134); ("sort", 928213246); ("c_sieve", 1899);
    ("gcc", 4294885376) ]

let test_golden_exit_codes () =
  List.iter
    (fun (name, expect) ->
      let w = Workloads.Registry.by_name name in
      let r = Run.run w in
      Alcotest.(check (option int)) name (Some expect) r.exit_code)
    golden

(* Run.run raises Mismatch on any divergence, so these are full
   differential checks of every workload under each parameter set. *)
let workload_differential params () =
  List.iter
    (fun w -> ignore (Run.run ~params w))
    Workloads.Registry.all

let test_finite_cache_run () =
  let w = Workloads.Registry.by_name "compress" in
  let r = Run.run ~hierarchy:(Memsys.Hierarchy.paper_24issue ()) w in
  Alcotest.(check bool) "stalls accrued" true (r.stall_cycles > 0);
  Alcotest.(check bool) "finite <= infinite ILP" true (r.ilp_fin <= r.ilp_inf);
  Alcotest.(check bool) "misses counted" true (r.load_misses > 0 || r.imiss > 0)

let test_timer_transparency () =
  let w = Workloads.Registry.by_name "wc" in
  let rcode, _, _, _ = Run.reference w in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Vmm.Monitor.create mem in
  vmm.timer_interval <- Some 300;
  let code = Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2) in
  Alcotest.(check (option int)) "result undisturbed" rcode code;
  Alcotest.(check bool) "interrupts fired" true (vmm.stats.external_interrupts > 10);
  let counted = Ppc.Mem.load32 mem (Workloads.Wl.table_base + 0xF00) in
  Alcotest.(check int) "handler saw them all" vmm.stats.external_interrupts counted

(* External interrupts through the fault hook: delivered at a VLIW-tree
   boundary, they must be architecturally invisible.  [Run.run] diffs
   registers, memory and console against the pure interpreter; only the
   mini OS's interrupt counter is allowed to differ.  The hook must not
   fire on the immediate re-entry after delivery — the interrupted VLIW
   has not executed yet, so re-firing forever would (correctly) starve
   the run.  The toggle interrupts every executed VLIW boundary exactly
   once; the qcheck property generalises to every Nth poll. *)
let boundary_run fire =
  let w = Workloads.Registry.by_name "wc" in
  let captured = ref None in
  let r =
    Run.run
      ~ignore_mem:[ Workloads.Wl.interrupt_count_addr ]
      ~instrument:(fun vmm ->
        captured := Some vmm;
        vmm.boundary_hook <- Some fire)
      w
  in
  (r, Option.get !captured)

let test_interrupt_every_boundary () =
  let armed = ref false in
  let polls = ref 0 in
  let r, vmm =
    boundary_run (fun () ->
        incr polls;
        armed := not !armed;
        !armed)
  in
  Alcotest.(check (option int)) "result undisturbed" (Some 4691) r.exit_code;
  (* the hook is only polled with EE set, so every [true] delivers:
     interrupts taken = boundaries armed = every second poll *)
  Alcotest.(check int) "interrupt at every armed boundary"
    ((!polls + 1) / 2) vmm.stats.external_interrupts;
  Alcotest.(check bool) "interrupts fired" true
    (vmm.stats.external_interrupts > 10);
  let counted = Ppc.Mem.load32 vmm.mem Workloads.Wl.interrupt_count_addr in
  Alcotest.(check int) "handler saw them all" vmm.stats.external_interrupts
    counted;
  Alcotest.(check bool) "transparency is not degradation" false
    (Run.degraded r.stats)

let prop_boundary_interrupts =
  QCheck.Test.make ~name:"interrupt at every Nth VLIW boundary is transparent"
    ~count:8
    QCheck.(int_range 2 50)
    (fun interval ->
      let polls = ref 0 in
      let r, vmm =
        boundary_run (fun () ->
            incr polls;
            !polls mod interval = 0)
      in
      let counted = Ppc.Mem.load32 vmm.mem Workloads.Wl.interrupt_count_addr in
      (* Run.run already verified state/memory/console differentially *)
      r.exit_code = Some 4691
      && vmm.stats.external_interrupts > 0
      && counted = vmm.stats.external_interrupts
      && not (Run.degraded r.stats))

let test_adaptive_alias () =
  let w = Workloads.Registry.by_name "sort" in
  let base = Run.run w in
  let adaptive = Run.run ~params:{ Params.default with adaptive_alias = true } w in
  Alcotest.(check (option int)) "same result" base.exit_code adaptive.exit_code;
  Alcotest.(check bool) "retranslation triggered" true
    (adaptive.stats.adaptive_retranslations > 0);
  Alcotest.(check bool) "aliases reduced" true
    (adaptive.stats.aliases < base.stats.aliases)

let test_crosspage_stats () =
  let w = Workloads.Registry.by_name "gcc" in
  let r = Run.run w in
  Alcotest.(check bool) "indirect calls via CTR" true (r.stats.cross_ctr > 1000);
  Alcotest.(check bool) "returns via LR" true (r.stats.cross_lr > 100)

let test_small_pages_crosspage () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let small = Run.run ~params:{ Params.default with page_size = 256 } w in
  let big = Run.run w in
  Alcotest.(check bool) "smaller pages force more direct cross-page jumps" true
    (small.stats.cross_direct >= big.stats.cross_direct)

let test_reuse_factors () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let r = Run.run w in
  Alcotest.(check bool) "reuse far above break-even" true
    (r.base_insns / max 1 r.static_insns > 2340)

let test_translation_work_is_bounded () =
  (* the join-limit guarantee: scheduled instructions stay within a
     small multiple of the distinct static instructions *)
  List.iter
    (fun (w : Workloads.Wl.t) ->
      let r = Run.run w in
      let bound =
        (Params.default.join_limit + 1) * 4 * (r.static_insns + 64)
      in
      Alcotest.(check bool)
        (w.name ^ ": translation work bounded")
        true (r.insns_translated < bound))
    Workloads.Registry.all

let test_castout_pool () =
  (* a tiny translated-code budget forces cast-outs and retranslation,
     but never changes results; the OS vector page is pinned *)
  let w = Workloads.Registry.by_name "gcc" in
  let rcode, _, _, _ = Run.reference w in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Vmm.Monitor.create mem in
  vmm.code_budget <- Some 1500;
  Hashtbl.replace vmm.pinned 0 ();
  let code = Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2) in
  Alcotest.(check (option int)) "result unchanged" rcode code;
  Alcotest.(check bool) "cast-outs happened" true (vmm.castouts > 0);
  Alcotest.(check bool) "itlb flushed on cast-out" true (vmm.itlb.misses > 0)

let test_itlb_counts () =
  let w = Workloads.Registry.by_name "gcc" in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Vmm.Monitor.create mem in
  let _ = Vmm.Monitor.run vmm ~entry ~fuel:(w.fuel * 2) in
  Alcotest.(check bool) "itlb accessed per cross-page branch" true
    (vmm.itlb.accesses
     >= vmm.stats.cross_direct + vmm.stats.cross_lr + vmm.stats.cross_ctr);
  Alcotest.(check bool) "misses rare once warm" true
    (vmm.itlb.misses * 10 < vmm.itlb.accesses)

let test_console_via_syscall () =
  (* a program printing through sc/putchar, run under DAISY *)
  let open Ppc in
  let mem = Mem.create 0x40000 in
  let a = Asm.create () in
  Workloads.Wl.mini_os a;
  Asm.org a 0x1000;
  Asm.label a "main";
  String.iter
    (fun c ->
      Asm.li a 3 (Char.code c);
      Workloads.Wl.sys_putchar a)
    "daisy";
  Asm.li a 3 0;
  Workloads.Wl.sys_exit a;
  let labels = Asm.assemble a mem in
  let vmm = Vmm.Monitor.create mem in
  let code = Vmm.Monitor.run vmm ~entry:(Hashtbl.find labels "main") ~fuel:100_000 in
  Alcotest.(check (option int)) "exit" (Some 0) code;
  Alcotest.(check string) "console" "daisy" (Mem.output mem);
  (* some syscalls execute inside the post-rfi interpretation episodes,
     so only the first is guaranteed to trap out of translated code *)
  Alcotest.(check bool) "syscalls trapped from translated code" true
    (vmm.stats.syscalls >= 1)

(* Hang semantics: when the reference and the translated run both
   exhaust their fuel, there is no verification point — the executions
   were cut at unrelated places — so [Run.run] reports [None] instead
   of raising [Mismatch] on their incomparable intermediate states. *)
let test_hang_semantics () =
  let spin =
    { Workloads.Wl.name = "spin"; description = "infinite loop (hang test)";
      build =
        (fun a ->
          Ppc.Asm.label a "main";
          Ppc.Asm.b a "main");
      init = (fun _ _ -> ());
      mem_size = Workloads.Wl.default_mem_size; fuel = 5_000 }
  in
  let r = Run.run spin in
  Alcotest.(check (option int)) "both sides out of fuel" None r.exit_code;
  Alcotest.(check bool) "hang is not degradation" false
    (Run.degraded r.stats)

let () =
  Alcotest.run "vmm"
    [ ( "workloads",
        [ Alcotest.test_case "golden exit codes" `Quick test_golden_exit_codes;
          Alcotest.test_case "differential: 8-issue" `Quick
            (workload_differential
               { Params.default with config = Vliw.Config.eight_issue });
          Alcotest.test_case "differential: tiny machine" `Quick
            (workload_differential
               { Params.default with config = Vliw.Config.figure_5_1.(0) });
          Alcotest.test_case "differential: 512-byte pages" `Quick
            (workload_differential { Params.default with page_size = 512 });
          Alcotest.test_case "differential: adaptive alias" `Quick
            (workload_differential { Params.default with adaptive_alias = true });
          Alcotest.test_case "differential: no rename" `Quick
            (workload_differential { Params.default with rename = false }) ] );
      ( "features",
        [ Alcotest.test_case "finite-cache run" `Quick test_finite_cache_run;
          Alcotest.test_case "timer transparency" `Quick test_timer_transparency;
          Alcotest.test_case "interrupt every boundary" `Quick
            test_interrupt_every_boundary;
          QCheck_alcotest.to_alcotest prop_boundary_interrupts;
          Alcotest.test_case "adaptive alias" `Quick test_adaptive_alias;
          Alcotest.test_case "cross-page stats" `Quick test_crosspage_stats;
          Alcotest.test_case "small pages" `Quick test_small_pages_crosspage;
          Alcotest.test_case "reuse factors" `Quick test_reuse_factors;
          Alcotest.test_case "bounded translation work" `Quick
            test_translation_work_is_bounded;
          Alcotest.test_case "cast-out pool" `Quick test_castout_pool;
          Alcotest.test_case "itlb" `Quick test_itlb_counts;
          Alcotest.test_case "console via syscall" `Quick test_console_via_syscall;
          Alcotest.test_case "hang semantics" `Quick test_hang_semantics ] ) ]
