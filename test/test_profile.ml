(* Tests for the region profiler and its persistence: codec round-trips
   (property-based), corruption and version refusal, commutative merge
   and the accumulate-equals-sum acceptance property, temp-file hygiene,
   synthetic region (SCC) detection, the flight recorder's ring
   arithmetic, and the end-to-end crash-dump path — an injected
   translator fault must leave a dump whose event tail names the
   faulting page. *)

module Profile = Obs.Profile
module Pstore = Obs.Pstore
module Flight = Obs.Flight
module Monitor = Vmm.Monitor
module Codec = Tcache.Codec

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_profile.%d.%d" (Unix.getpid ()) !n)
    in
    Tcache.Store.mkdir_p d;
    d

(* --- structural views (hashtables defeat polymorphic equality) ----- *)

let pages_alist (p : Profile.t) =
  Hashtbl.fold
    (fun _ (q : Profile.page) acc ->
      ( q.base,
        (q.entries, q.vliws, q.interp_insns, q.translations,
         q.insns_scheduled, q.code_bytes) )
      :: acc)
    p.pages []
  |> List.sort compare

let edges_alist (p : Profile.t) =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) p.edges []
  |> List.sort compare

let profile_equal a b =
  a.Profile.page_size = b.Profile.page_size
  && a.runs = b.runs
  && pages_alist a = pages_alist b
  && edges_alist a = edges_alist b

(* --- generator ----------------------------------------------------- *)

let all_kinds =
  [ Profile.Taken; Profile.Fall; Profile.Lr; Profile.Ctr; Profile.Gpr;
    Profile.Interp ]

let gen_profile : Profile.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* shift = int_range 6 12 in
  let page_size = 1 lsl shift in
  let aligned = map (fun i -> i * page_size) (int_range 0 64) in
  let* runs = int_range 1 20 in
  let* npages = int_range 0 12 in
  let* nedges = int_range 0 24 in
  let* page_rows =
    list_repeat npages
      (tup2 aligned
         (tup2 (int_range 0 10_000)
            (tup2 (int_range 0 10_000)
               (tup2 (int_range 0 10_000)
                  (tup2 (int_range 0 100)
                     (tup2 (int_range 0 10_000) (int_range 0 4096)))))))
  in
  let* edge_rows =
    list_repeat nedges
      (tup2 aligned (tup2 aligned (tup2 (oneofl all_kinds) (int_range 1 10_000))))
  in
  let p = Profile.create ~page_size () in
  p.runs <- runs;
  List.iter
    (fun (base, (entries, (vliws, (interp, (xl, (sched, bytes)))))) ->
      let q = Profile.page p base in
      q.entries <- entries;
      q.vliws <- vliws;
      q.interp_insns <- interp;
      q.translations <- xl;
      q.insns_scheduled <- sched;
      q.code_bytes <- bytes)
    page_rows;
  List.iter
    (fun (src, (dst, (kind, n))) -> Profile.edge_n p ~src ~dst ~kind n)
    edge_rows;
  return p

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"decode (encode profile) = profile" ~count:300
    (QCheck.make gen_profile) (fun p ->
      let fe, fp, q =
        Pstore.decode (Pstore.encode ~frontend:"ppc" ~fingerprint:"fp:test" p)
      in
      fe = "ppc" && fp = "fp:test" && profile_equal p q)

(* --- corruption and version refusal -------------------------------- *)

let sample_profile () =
  let p = Profile.create ~page_size:4096 () in
  Profile.enter p ~page:0x1000 ~vliws_so_far:0;
  Profile.enter p ~page:0x2000 ~vliws_so_far:10;
  Profile.interp p ~pc:0x2004 ~insns:7;
  Profile.translated p ~page:0x1000 ~insns:40 ~bytes:256;
  Profile.edge_n p ~src:0x1000 ~dst:0x2000 ~kind:Profile.Taken 5;
  Profile.edge_n p ~src:0x2000 ~dst:0x1000 ~kind:Profile.Lr 4;
  Profile.flush p ~vliws_total:30;
  p

let expect_corrupt what s =
  match Pstore.decode s with
  | _ -> Alcotest.failf "%s: decode accepted corrupt input" what
  | exception Codec.Corrupt _ -> ()

let test_codec_rejects_corruption () =
  let good = Pstore.encode ~frontend:"ppc" ~fingerprint:"fp" (sample_profile ()) in
  ignore (Pstore.decode good);
  (* payload is covered by the checksum: flipping any payload byte must
     trip it (the header before the digest is covered by the length and
     fingerprint checks in [load]) *)
  let payload_start = String.length good - 10 in
  for i = payload_start to String.length good - 1 do
    let b = Bytes.of_string good in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    expect_corrupt (Printf.sprintf "flip@%d" i) (Bytes.to_string b)
  done;
  expect_corrupt "truncated" (String.sub good 0 (String.length good - 3));
  expect_corrupt "bad magic" ("XPRF" ^ String.sub good 4 (String.length good - 4));
  expect_corrupt "empty" ""

let test_codec_refuses_future_version () =
  let good = Pstore.encode ~frontend:"ppc" ~fingerprint:"fp" (sample_profile ()) in
  let b = Bytes.of_string good in
  Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) + 1));
  match Pstore.decode (Bytes.to_string b) with
  | _ -> Alcotest.fail "decode accepted a future version"
  | exception Codec.Corrupt msg ->
    Alcotest.(check bool) "refusal names the version" true
      (String.length msg >= 7 && String.sub msg 0 7 = "version")

(* --- merge and accumulate ------------------------------------------ *)

let test_merge_commutes () =
  let totals p =
    (Profile.total_entries p, Profile.total_edges p, p.Profile.runs)
  in
  let ab =
    let a = sample_profile () and b = sample_profile () in
    Profile.edge_n b ~src:0x3000 ~dst:0x1000 ~kind:Profile.Ctr 9;
    Profile.merge ~into:a b;
    totals a
  and ba =
    let a = sample_profile () and b = sample_profile () in
    Profile.edge_n b ~src:0x3000 ~dst:0x1000 ~kind:Profile.Ctr 9;
    Profile.merge ~into:b a;
    totals b
  in
  Alcotest.(check (triple int int int)) "merge order is irrelevant" ab ba

(* The acceptance property: page counters accumulate across runs, edge
   heat is the per-run mean (promotion thresholds are per-run figures,
   so a hundred accumulated runs must not read a hundred times hotter). *)
let test_accumulate_is_sum () =
  let dir = fresh_dir () in
  let store () = Pstore.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp:acc" () in
  let one = sample_profile () in
  let _, _ = Pstore.accumulate (store ()) (sample_profile ()) in
  let merged, _ = Pstore.accumulate (store ()) (sample_profile ()) in
  Alcotest.(check int) "entries = 2x one run"
    (2 * Profile.total_entries one)
    (Profile.total_entries merged);
  Alcotest.(check int) "edges = per-run mean, not the sum"
    (Profile.total_edges one)
    (Profile.total_edges merged);
  Alcotest.(check int) "runs counted" 2 merged.Profile.runs;
  match Pstore.load (store ()) with
  | `Hit p ->
    Alcotest.(check bool) "reload equals merged" true (profile_equal p merged)
  | _ -> Alcotest.fail "expected a hit after accumulate"

let test_open_sweeps_orphan_tmp () =
  let dir = fresh_dir () in
  let orphan = Filename.concat dir ".profile123.tmp" in
  let oc = open_out_bin orphan in
  output_string oc "half-written";
  close_out oc;
  let keep = Filename.concat dir "README" in
  let oc = open_out_bin keep in
  close_out oc;
  let s = Pstore.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  Alcotest.(check int) "swept one" 1 s.Pstore.swept_tmp;
  Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
  Alcotest.(check bool) "foreign file untouched" true (Sys.file_exists keep)

(* --- regions (SCC) -------------------------------------------------- *)

let test_regions_finds_cycle () =
  let p = Profile.create ~page_size:4096 () in
  (* hot 2-cycle A<->B, a hot one-way edge into C (no cycle), and a cold
     2-cycle D<->E below threshold *)
  Profile.edge_n p ~src:0x1000 ~dst:0x2000 ~kind:Profile.Taken 100;
  Profile.edge_n p ~src:0x2000 ~dst:0x1000 ~kind:Profile.Lr 90;
  Profile.edge_n p ~src:0x2000 ~dst:0x3000 ~kind:Profile.Fall 80;
  Profile.edge_n p ~src:0x4000 ~dst:0x5000 ~kind:Profile.Taken 2;
  Profile.edge_n p ~src:0x5000 ~dst:0x4000 ~kind:Profile.Taken 2;
  match Profile.regions ~threshold:10 p with
  | [ r ] ->
    Alcotest.(check (list int)) "members" [ 0x1000; 0x2000 ] r.Profile.rpages;
    Alcotest.(check int) "internal weight" 190 r.internal_weight;
    Alcotest.(check int) "edge count" 2 (List.length r.redges)
  | rs -> Alcotest.failf "expected exactly one region, got %d" (List.length rs)

let test_regions_self_loop () =
  let p = Profile.create ~page_size:4096 () in
  Profile.edge_n p ~src:0x1000 ~dst:0x1000 ~kind:Profile.Gpr 50;
  Profile.edge_n p ~src:0x2000 ~dst:0x3000 ~kind:Profile.Taken 50;
  match Profile.regions ~threshold:1 p with
  | [ r ] ->
    Alcotest.(check (list int)) "self-loop is a region" [ 0x1000 ]
      r.Profile.rpages
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

(* A page that is merely *visited* (entered, translated) but has no hot
   edge at all must never surface as a region: singleton SCCs only count
   with a self-loop. *)
let test_regions_single_node_no_edge () =
  let p = Profile.create ~page_size:4096 () in
  Profile.enter p ~page:0x1000 ~vliws_so_far:0;
  Profile.translated p ~page:0x1000 ~insns:64 ~bytes:512;
  Profile.flush p ~vliws_total:100_000;
  Alcotest.(check int) "no region without an edge" 0
    (List.length (Profile.regions ~threshold:1 p))

(* Two disjoint cycles at exactly equal heat: both must be reported,
   each with its own member set — equal heat must not collapse, mask or
   drop either one.  Rank order between equals is unspecified; sort. *)
let test_regions_disjoint_equal_heat () =
  let p = Profile.create ~page_size:4096 () in
  Profile.edge_n p ~src:0x1000 ~dst:0x2000 ~kind:Profile.Taken 40;
  Profile.edge_n p ~src:0x2000 ~dst:0x1000 ~kind:Profile.Lr 40;
  Profile.edge_n p ~src:0x7000 ~dst:0x8000 ~kind:Profile.Taken 40;
  Profile.edge_n p ~src:0x8000 ~dst:0x7000 ~kind:Profile.Lr 40;
  match Profile.regions ~threshold:10 p with
  | [ a; b ] ->
    let members =
      List.sort compare [ a.Profile.rpages; b.Profile.rpages ]
    in
    Alcotest.(check (list (list int))) "both cycles present"
      [ [ 0x1000; 0x2000 ]; [ 0x7000; 0x8000 ] ]
      members;
    Alcotest.(check int) "equal internal weight" a.Profile.internal_weight
      b.Profile.internal_weight
  | rs -> Alcotest.failf "expected two regions, got %d" (List.length rs)

(* The threshold is inclusive: an edge at exactly [threshold] keeps the
   cycle alive; one traversal fewer dissolves it. *)
let test_regions_threshold_boundary () =
  let build n =
    let p = Profile.create ~page_size:4096 () in
    Profile.edge_n p ~src:0x1000 ~dst:0x2000 ~kind:Profile.Taken n;
    Profile.edge_n p ~src:0x2000 ~dst:0x1000 ~kind:Profile.Taken n;
    p
  in
  (match Profile.regions ~threshold:10 (build 10) with
  | [ r ] ->
    Alcotest.(check (list int)) "heat == threshold is kept"
      [ 0x1000; 0x2000 ] r.Profile.rpages
  | rs -> Alcotest.failf "at threshold: expected one region, got %d"
            (List.length rs));
  Alcotest.(check int) "heat == threshold - 1 dissolves" 0
    (List.length (Profile.regions ~threshold:10 (build 9)))

(* --- flight ring ---------------------------------------------------- *)

let test_flight_ring_wraps () =
  let dir = fresh_dir () in
  let f = Flight.create ~capacity:8 ~dir () in
  for c = 1 to 11 do
    Flight.push f (Monitor.Syscall_trap { cycle = c; next = 0 })
  done;
  Alcotest.(check int) "total" 11 (Flight.total f);
  Alcotest.(check int) "dropped" 3 (Flight.dropped f);
  let cycles =
    List.map
      (function Monitor.Syscall_trap { cycle; _ } -> cycle | _ -> -1)
      (Flight.events f)
  in
  Alcotest.(check (list int)) "oldest-first tail" [ 4; 5; 6; 7; 8; 9; 10; 11 ]
    cycles

let test_flight_dump_first_wins () =
  let dir = fresh_dir () in
  let f = Flight.create ~capacity:8 ~dir () in
  Flight.push f (Monitor.External_interrupt { cycle = 1 });
  let first = Flight.dump f ~reason:"quarantine" in
  Alcotest.(check bool) "first dump written" true (first <> None);
  Alcotest.(check (option string)) "repeat suppressed" None
    (Flight.dump f ~reason:"quarantine");
  Alcotest.(check int) "one dump listed" 1 (List.length (Flight.dumps f))

(* --- end to end: translator fault -> crash dump --------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_fault_leaves_crash_dump () =
  let dir = fresh_dir () in
  let w = Workloads.Registry.by_name "c_sieve" in
  let params = { Translator.Params.default with page_size = 64 } in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Monitor.create ~params mem in
  let flight = Flight.create ~dir () in
  let profile = Obs.Profile.create ~page_size:params.page_size () in
  let bridge = Obs.Bridge.create ~profile ~flight () in
  Obs.Bridge.attach bridge vmm;
  let inject =
    Fault.Inject.create
      { Fault.Inject.quiet with translator_fault_rate = 0.5 }
  in
  Fault.Inject.attach inject vmm;
  ignore (Monitor.run vmm ~entry ~fuel:(w.fuel * 2));
  Alcotest.(check bool) "faults fired" true (vmm.stats.translator_faults > 0);
  Alcotest.(check bool) "quarantined" true (vmm.stats.quarantines > 0);
  (* the ring's tail must name the faulting page... *)
  let fault_pages =
    List.filter_map
      (function
        | Monitor.Translator_fault { page; _ } -> Some page
        | _ -> None)
      (Flight.events flight)
  in
  Alcotest.(check bool) "tail names a faulting page" true (fault_pages <> []);
  (* ...and so must the dump on disk, along with the region graph *)
  match Flight.dumps flight with
  | [] -> Alcotest.fail "no crash dump written"
  | (reason, path) :: _ ->
    Alcotest.(check string) "reason" "quarantine" reason;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let field name = function
      | Obs.Json.Obj kvs -> List.assoc name kvs
      | _ -> Alcotest.failf "dump is not an object"
    in
    let d = Obs.Json.parse s in
    let tail =
      match field "events" d with
      | Obs.Json.Arr evs -> evs
      | _ -> Alcotest.fail "events is not an array"
    in
    let named n e =
      match field "name" e with Obs.Json.Str s -> s = n | _ -> false
    in
    Alcotest.(check bool) "tail has the quarantine trigger" true
      (List.exists (named "quarantine") tail);
    let pages_of name =
      List.filter_map
        (fun e ->
          if named name e then
            match field "page" e with Obs.Json.Int p -> Some p | _ -> None
          else None)
        tail
    in
    (* the dump snapshots the FIRST quarantine, so compare within the
       dump itself: the page the trigger quarantined must appear as a
       faulting page earlier in the same tail *)
    let dumped_fault_pages = pages_of "translator_fault" in
    Alcotest.(check bool) "dump tail names the faulting page" true
      (dumped_fault_pages <> []);
    Alcotest.(check bool) "quarantined page is a faulting page" true
      (List.exists
         (fun p -> List.mem p dumped_fault_pages)
         (pages_of "quarantine"));
    Alcotest.(check bool) "dump carries the region graph" true
      (contains ~needle:"\"regions\"" s)

let () =
  Alcotest.run "profile"
    [ ( "codec",
        [ QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_codec_rejects_corruption;
          Alcotest.test_case "refuses future version" `Quick
            test_codec_refuses_future_version ] );
      ( "store",
        [ Alcotest.test_case "merge commutes" `Quick test_merge_commutes;
          Alcotest.test_case "accumulate is sum" `Quick
            test_accumulate_is_sum;
          Alcotest.test_case "open sweeps orphan tmp" `Quick
            test_open_sweeps_orphan_tmp ] );
      ( "regions",
        [ Alcotest.test_case "finds cycle" `Quick test_regions_finds_cycle;
          Alcotest.test_case "self loop" `Quick test_regions_self_loop;
          Alcotest.test_case "single node no edge" `Quick
            test_regions_single_node_no_edge;
          Alcotest.test_case "disjoint equal heat" `Quick
            test_regions_disjoint_equal_heat;
          Alcotest.test_case "threshold boundary" `Quick
            test_regions_threshold_boundary ] );
      ( "flight",
        [ Alcotest.test_case "ring wraps" `Quick test_flight_ring_wraps;
          Alcotest.test_case "dump first-wins" `Quick
            test_flight_dump_first_wins;
          Alcotest.test_case "fault leaves crash dump" `Quick
            test_fault_leaves_crash_dump ] ) ]
