(* Tests for the multi-tenant serve layer and the concurrency it leans
   on: the domain pool, domain-safe metrics/trace sinks, the per-key
   translate gate, the store under a multi-domain hammer (no
   corruption, no duplicate translation per content key, stable entry
   counts), LRU eviction with session pinning, whole fleets over a
   shared cache, and the daemon's socket protocol end to end. *)

module Store = Tcache.Store
module Translate = Translator.Translate
module Metrics = Obs.Metrics

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_serve.%d.%d" (Unix.getpid ()) !n)
    in
    Store.mkdir_p d;
    d

let rm_rf dir =
  ignore (Store.clear_dir dir);
  (try Sys.remove (Filename.concat dir ".dtclock") with Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

(* --- the domain pool ----------------------------------------------- *)

let test_pool_runs_everything () =
  let pool = Serve.Pool.create ~domains:4 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 200 do
    Serve.Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Serve.Pool.drain pool;
  Alcotest.(check int) "every job ran" 200 (Atomic.get hits);
  (* a raising job is contained and the pool keeps going *)
  Serve.Pool.submit pool (fun () -> failwith "boom");
  Serve.Pool.submit pool (fun () -> Atomic.incr hits);
  Serve.Pool.drain pool;
  Alcotest.(check int) "pool survives a raising job" 201 (Atomic.get hits);
  Serve.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown refused"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Serve.Pool.submit pool (fun () -> ()))

(* A job that occupies a runner until released — the scaffolding for
   every bounded-queue test below. *)
let blocker () =
  let release = Atomic.make false and started = Atomic.make false in
  let job () =
    Atomic.set started true;
    while not (Atomic.get release) do
      ignore (Unix.select [] [] [] 0.002)
    done
  in
  let wait_started () =
    while not (Atomic.get started) do
      ignore (Unix.select [] [] [] 0.002)
    done
  in
  (job, wait_started, fun () -> Atomic.set release true)

let test_pool_bounded_queue () =
  let pool = Serve.Pool.create ~queue_cap:2 ~domains:1 () in
  let job, wait_started, release = blocker () in
  Serve.Pool.submit pool job;
  wait_started ();
  let ran = Atomic.make 0 and cancelled = Atomic.make 0 in
  let submit () =
    Serve.Pool.try_submit
      ~cancel:(fun () -> Atomic.incr cancelled)
      pool
      (fun () -> Atomic.incr ran)
  in
  Alcotest.(check bool) "first queued" true (submit () = `Accepted);
  Alcotest.(check bool) "second queued" true (submit () = `Accepted);
  (match submit () with
  | `Busy d -> Alcotest.(check int) "busy reports the depth" 2 d
  | `Accepted | `Closed -> Alcotest.fail "expected `Busy at capacity");
  Alcotest.(check int) "depth counts queued only" 2 (Serve.Pool.depth pool);
  Alcotest.(check int) "active counts running only" 1 (Serve.Pool.active pool);
  release ();
  Serve.Pool.drain pool;
  Alcotest.(check int) "admitted jobs all ran" 2 (Atomic.get ran);
  Serve.Pool.shutdown pool;
  Alcotest.(check bool) "closed after shutdown" true (submit () = `Closed);
  Alcotest.(check int) "no spurious cancels" 0 (Atomic.get cancelled)

let test_pool_shutdown_cancels_queued () =
  let pool = Serve.Pool.create ~domains:1 () in
  let job, wait_started, release = blocker () in
  Serve.Pool.submit pool job;
  wait_started ();
  let ran = Atomic.make 0 and cancelled = Atomic.make 0 in
  for _ = 1 to 5 do
    Serve.Pool.submit
      ~cancel:(fun () -> Atomic.incr cancelled)
      pool
      (fun () -> Atomic.incr ran)
  done;
  (* shutdown joins the runner, which is parked in [job]; release it
     from a helper thread so the join can complete *)
  let t =
    Thread.create
      (fun () ->
        ignore (Unix.select [] [] [] 0.05);
        release ())
      ()
  in
  Serve.Pool.shutdown pool;
  Thread.join t;
  Alcotest.(check int) "queued jobs were not run" 0 (Atomic.get ran);
  Alcotest.(check int) "every queued job saw its cancel" 5
    (Atomic.get cancelled)

(* --- domain-safe observability sinks ------------------------------- *)

let test_metrics_domain_safe () =
  let m = Metrics.create ~label:"hammer" () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m ~buckets:[ 1.; 10.; 100. ] "h" in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.Counter.inc c;
              Metrics.Gauge.set g (float_of_int i);
              Metrics.Histogram.observe h (float_of_int ((d * i) mod 150))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no increment lost" (4 * per_domain)
    (Metrics.Counter.value c);
  Alcotest.(check int) "no observation lost" (4 * per_domain) h.Metrics.Histogram.count;
  let json = Obs.Json.to_string (Metrics.to_json m) in
  Alcotest.(check bool) "label exported" true
    (let needle = {|"label":"hammer"|} in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length json
       && (String.sub json i n = needle || scan (i + 1))
     in
     scan 0)

let test_trace_domain_safe () =
  let t = Obs.Trace.create ~capacity:256 () in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1_000 do
              Obs.Trace.emit t ~ts:i ~name:(string_of_int d) ~ph:Obs.Trace.I []
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "every emit counted" 4_000 (Obs.Trace.total t);
  Alcotest.(check int) "ring capped" 256 (Obs.Trace.length t);
  let seen = ref 0 in
  Obs.Trace.iter (fun _ -> incr seen) t;
  Alcotest.(check int) "iter sees the retained tail" 256 !seen

(* --- the translate gate -------------------------------------------- *)

let test_gate_coalesces () =
  let shared = Serve.Shared.create ~dir:(fresh_dir ()) () in
  let translated = Atomic.make 0 in
  let attempts = 64 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to attempts do
              match Serve.Shared.gate shared ~page:0 ~key:"k" with
              | `Proceed ->
                Atomic.incr translated;
                (* hold the gate long enough that the other domains
                   actually pile up on it *)
                ignore (Unix.select [] [] [] 0.001);
                Serve.Shared.release shared ~page:0 ~key:"k" ~ok:true
              | `Waited -> ()
            done))
  in
  List.iter Domain.join ds;
  let s = Serve.Shared.stats shared in
  Alcotest.(check int) "wins == translations" (Atomic.get translated) s.gate_wins;
  Alcotest.(check int) "every attempt accounted" (4 * attempts)
    (s.gate_wins + s.gate_waits);
  Alcotest.(check bool) "storm actually coalesced" true (s.gate_waits > 0);
  Alcotest.(check int) "nothing left in flight" 0 s.inflight_keys

let test_gate_failure_releases_waiters () =
  let shared = Serve.Shared.create ~dir:(fresh_dir ()) () in
  Alcotest.(check bool) "winner proceeds" true
    (Serve.Shared.gate shared ~page:0 ~key:"k" = `Proceed);
  let waited = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        match Serve.Shared.gate shared ~page:0 ~key:"k" with
        | `Waited -> Atomic.set waited true
        | `Proceed -> ())
  in
  ignore (Unix.select [] [] [] 0.05);
  (* the winner dies without installing; the waiter must still wake *)
  Serve.Shared.release shared ~page:0 ~key:"k" ~ok:false;
  Domain.join d;
  Alcotest.(check bool) "waiter woke after failed release" true
    (Atomic.get waited);
  Alcotest.(check int) "failure counted" 1
    (Serve.Shared.stats shared).gate_failures;
  (* and the key is free again for a retry *)
  Alcotest.(check bool) "key reusable" true
    (Serve.Shared.gate shared ~page:0 ~key:"k" = `Proceed);
  Serve.Shared.release shared ~page:0 ~key:"k" ~ok:true

(* --- the store under a multi-domain hammer (the satellite) --------- *)

let translated_page () =
  let mem, entry =
    Workloads.Wl.instantiate (Workloads.Registry.by_name "wc")
  in
  let tr = Translate.create Translator.Params.default mem in
  fst (Translate.entry tr entry)

let test_store_hammer () =
  let dir = fresh_dir () in
  let shared = Serve.Shared.create ~dir () in
  let page = translated_page () in
  let n_keys = 8 and n_domains = 4 and iters = 50 in
  (* distinct synthetic page contents -> distinct content keys; every
     domain cycles over the same overlapping key set *)
  let probe_store =
    Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"hammer-fp" ()
  in
  let keys =
    Array.init n_keys (fun i ->
        Store.key probe_store ~base:page.Translate.base
          (Printf.sprintf "synthetic page %d" i))
  in
  let translations = Array.init n_keys (fun _ -> Atomic.make 0) in
  let anomalies = Atomic.make 0 in
  let ds =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            (* each domain opens its OWN handle on the shared dir —
               cross-handle safety is the point *)
            let store =
              Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"hammer-fp" ()
            in
            for i = 0 to iters - 1 do
              let k = (i + d) mod n_keys in
              let key = keys.(k) in
              match Store.probe store ~key with
              | `Hit (p, _) ->
                if not (p.Translate.base = page.Translate.base) then
                  Atomic.incr anomalies
              | `Corrupt _ | `Skipped _ -> Atomic.incr anomalies
              | `Miss -> (
                match Serve.Shared.gate shared ~page:k ~key with
                | `Proceed -> (
                  (* the miss may be stale — re-probe under ownership,
                     exactly like the VMM's gate path does *)
                  match Store.probe store ~key with
                  | `Hit _ ->
                    Serve.Shared.release shared ~page:k ~key ~ok:true
                  | `Miss ->
                    Atomic.incr translations.(k);
                    ignore
                      (Store.persist store ~key page ~spec_inhibited:false);
                    Serve.Shared.release shared ~page:k ~key ~ok:true
                  | `Corrupt _ | `Skipped _ ->
                    Atomic.incr anomalies;
                    Serve.Shared.release shared ~page:k ~key ~ok:false)
                | `Waited -> (
                  (* the winner released after its persist: we must
                     see a whole entry now, never a torn one *)
                  match Store.probe store ~key with
                  | `Hit _ -> ()
                  | `Miss | `Corrupt _ | `Skipped _ ->
                    Atomic.incr anomalies))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no corruption, no torn reads" 0
    (Atomic.get anomalies);
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "key %d translated exactly once" i)
        1 (Atomic.get c))
    translations;
  Alcotest.(check int) "entry count stable" n_keys
    (List.length (Store.entry_files dir));
  List.iter
    (fun (info : Store.info) ->
      Alcotest.(check bool) ("entry parses: " ^ info.key) true
        (info.status = `Ok))
    (Store.list_dir dir);
  rm_rf dir

(* --- LRU eviction with pinning ------------------------------------- *)

let test_budget_eviction_and_pinning () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"evict-fp" () in
  let page = translated_page () in
  let key i = Store.key store ~base:page.Translate.base (string_of_int i) in
  let bytes = ref 0 in
  for i = 0 to 2 do
    bytes := Store.persist store ~key:(key i) page ~spec_inhibited:false
  done;
  (* stagger mtimes: entry 0 oldest, entry 2 newest *)
  List.iteri
    (fun i k ->
      let t = Unix.time () -. float_of_int (300 - (i * 100)) in
      Unix.utimes (Store.path_of store k) t t)
    [ key 0; key 1; key 2 ];
  (* budget for exactly one entry, middle key pinned: both unpinned
     entries go, oldest included; the pinned one survives *)
  let r =
    Store.enforce_budget ~pinned:(fun k -> k = key 1) store ~budget:!bytes
  in
  Alcotest.(check int) "two cast out" 2 r.Store.evicted;
  Alcotest.(check bool) "budget met" false r.Store.pinned_over;
  Alcotest.(check (list string)) "pinned entry survived"
    [ key 1 ^ ".dtc" ]
    (Store.entry_files dir);
  (* unreachable budget: the pin wins over the budget and says so *)
  let r = Store.enforce_budget ~pinned:(fun k -> k = key 1) store ~budget:0 in
  Alcotest.(check int) "nothing evictable" 0 r.Store.evicted;
  Alcotest.(check bool) "reported as pinned-over" true r.Store.pinned_over;
  rm_rf dir

let test_probe_refreshes_lru () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"lru-fp" () in
  let page = translated_page () in
  let key i = Store.key store ~base:page.Translate.base (string_of_int i) in
  let bytes = ref 0 in
  for i = 0 to 1 do
    bytes := Store.persist store ~key:(key i) page ~spec_inhibited:false
  done;
  let old = Unix.time () -. 500. in
  Unix.utimes (Store.path_of store (key 0)) old old;
  Unix.utimes (Store.path_of store (key 1)) (old +. 100.) (old +. 100.);
  (* a hit on the oldest entry promotes it; the other entry is now the
     LRU victim *)
  (match Store.probe store ~key:(key 0) with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "expected a hit");
  ignore (Store.enforce_budget store ~budget:!bytes);
  Alcotest.(check (list string)) "recently-probed entry survived"
    [ key 0 ^ ".dtc" ]
    (Store.entry_files dir);
  rm_rf dir

(* --- fleets over a shared cache ------------------------------------ *)

let test_fleet_cold_then_warm () =
  let dir = fresh_dir () in
  let pool = Serve.Pool.create ~domains:4 () in
  let shared = Serve.Shared.create ~dir () in
  let cold, outcomes =
    Serve.Fleet.run ~pool ~shared ~sessions:8 [ "wc" ]
  in
  Alcotest.(check int) "cold: all verified" 0 cold.Serve.Fleet.failures;
  Alcotest.(check int) "cold: ids distinct" 8
    (List.length
       (List.sort_uniq compare
          (List.map (fun (o : Serve.Session.outcome) -> o.id) outcomes)));
  (* the gate made the unique page set the whole fleet's translation
     bill: what one session translates alone bounds what eight did *)
  let solo = (Vmm.Run.run (Workloads.Registry.by_name "wc")).pages_translated in
  Alcotest.(check bool)
    (Printf.sprintf "cold: %d pages for the fleet <= %d for one session"
       cold.pages_translated solo)
    true
    (cold.Serve.Fleet.pages_translated <= solo);
  let warm, _ =
    Serve.Fleet.run ~first_id:8 ~pool ~shared ~sessions:8 [ "wc" ]
  in
  Serve.Pool.shutdown pool;
  Alcotest.(check int) "warm: all verified" 0 warm.Serve.Fleet.failures;
  Alcotest.(check int) "warm: zero pages retranslated" 0
    warm.Serve.Fleet.pages_translated;
  Alcotest.(check int) "warm: zero misses" 0 warm.Serve.Fleet.tcache_misses;
  Alcotest.(check (float 0.0001)) "warm: hit rate 1.0" 1.0
    warm.Serve.Fleet.hit_rate;
  Alcotest.(check int) "warm: gate never engaged" 0 warm.Serve.Fleet.gate_wins;
  Alcotest.(check int) "no pins leak" 0
    (Serve.Shared.stats shared).pinned_keys;
  rm_rf dir

(* --- session supervision: typed failures, clean teardown ----------- *)

let test_session_typed_failures () =
  let dir = fresh_dir () in
  let shared = Serve.Shared.create ~dir () in
  (* unknown workload: a typed Crash outcome, never an exception *)
  let o = Serve.Session.run ~shared ~id:0 "no-such-workload" in
  (match o.result with
  | Error (Serve.Session.Crash _) -> ()
  | _ -> Alcotest.fail "expected Crash for an unknown workload");
  (* a deadline that expired in the queue: typed, and nothing ran *)
  let o =
    Serve.Session.run
      ~deadline_at:(Unix.gettimeofday () -. 1.)
      ~shared ~id:1 "wc"
  in
  (match o.result with
  | Error (Serve.Session.Deadline _) -> ()
  | _ -> Alcotest.fail "expected Deadline for a pre-expired budget");
  Alcotest.(check (float 0.001)) "pre-expired session did no work" 0. o.seconds;
  (* an in-flight budget: the watchdog unwinds at a commit boundary;
     the instrument slows every boundary down so the budget must trip
     regardless of host speed *)
  let o =
    Serve.Session.run
      ~deadline_at:(Unix.gettimeofday () +. 0.02)
      ~instrument:(fun vmm ->
        let prev = vmm.Vmm.Monitor.tick_hook in
        vmm.Vmm.Monitor.tick_hook <-
          Some
            (fun ~pc ->
              ignore (Unix.select [] [] [] 0.002);
              match prev with Some f -> f ~pc | None -> ()))
      ~shared ~id:2 "wc"
  in
  (match o.result with
  | Error (Serve.Session.Deadline s) ->
    Alcotest.(check bool) "deadline carries elapsed seconds" true (s > 0.)
  | _ -> Alcotest.fail "expected Deadline from the in-flight watchdog");
  (* whatever the failure, no session leaks pins into the coordinator *)
  Alcotest.(check int) "no pins leaked by failed sessions" 0
    (Serve.Shared.stats shared).pinned_keys;
  Alcotest.(check int) "no gates left in flight" 0
    (Serve.Shared.stats shared).inflight_keys;
  rm_rf dir

(* --- corrupt-entry self-healing (the satellite) -------------------- *)

let test_fleet_corrupt_entry_self_heals () =
  let dir = fresh_dir () in
  let pool = Serve.Pool.create ~domains:4 () in
  let shared = Serve.Shared.create ~dir () in
  let cold, _ = Serve.Fleet.run ~pool ~shared ~sessions:4 [ "wc" ] in
  Alcotest.(check int) "cold fleet clean" 0 cold.Serve.Fleet.failures;
  (* flip one bit in the middle of an installed entry on disk *)
  let victim = List.hd (Store.entry_files dir) in
  let path = Filename.concat dir victim in
  let b =
    Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
  in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (* a warm fleet over the poisoned cache: the first prober quarantines
     the entry, the gate winner retranslates, nobody fails *)
  let warm, _ = Serve.Fleet.run ~first_id:4 ~pool ~shared ~sessions:8 [ "wc" ] in
  Alcotest.(check int) "corruption surfaced to no session" 0
    warm.Serve.Fleet.failures;
  Alcotest.(check bool) "poisoned entry was quarantined" true
    (warm.Serve.Fleet.tcache_quarantined >= 1);
  Alcotest.(check bool) "gate winner retranslated the page" true
    (warm.Serve.Fleet.pages_translated >= 1);
  Alcotest.(check bool) "quarantine file set aside for ops" true
    (Store.quarantined_files dir <> []);
  (* healed: the next fleet runs fully warm again *)
  let healed, _ =
    Serve.Fleet.run ~first_id:12 ~pool ~shared ~sessions:4 [ "wc" ]
  in
  Serve.Pool.shutdown pool;
  Alcotest.(check int) "healed fleet clean" 0 healed.Serve.Fleet.failures;
  Alcotest.(check int) "healed fleet retranslates nothing" 0
    healed.Serve.Fleet.pages_translated;
  rm_rf dir

(* --- the chaos harness --------------------------------------------- *)

let test_chaos_invariants () =
  let dir = fresh_dir () in
  let r, outcomes =
    Serve.Chaos.run ~dir
      { Serve.Chaos.default with
        sessions = 16; domains = 4; queue_cap = 2; seed = 11;
        (* aggressive tier-2 promotion inside every session: the
           cocktail's faults must also be absorbed while superblock
           regions are live *)
        tier2 =
          Some
            { Obs.Tier.default with
              min_heat = 2_000; edge_threshold = 50 } }
  in
  (match Serve.Chaos.verdict r with
  | `Clean -> ()
  | `Violations v ->
    let details =
      List.filter_map
        (fun (o : Serve.Session.outcome) ->
          match o.result with
          | Error f ->
            Some
              (Printf.sprintf "#%d %s: %s" o.id
                 (Serve.Session.failure_class f)
                 (Serve.Session.failure_detail f))
          | Ok _ -> None)
        outcomes
    in
    Alcotest.fail
      ("chaos contract violated: " ^ String.concat "; " v ^ " ["
      ^ String.concat " | " details ^ "]"));
  Alcotest.(check bool) "cocktail actually fired" true (r.Serve.Chaos.injected > 0);
  Alcotest.(check bool)
    (Printf.sprintf "tight queue cap actually shed (sheds=%d)"
       r.Serve.Chaos.sheds)
    true
    (r.Serve.Chaos.sheds > 0);
  Alcotest.(check bool) "shed submissions were retried in" true
    (r.Serve.Chaos.retries > 0);
  rm_rf dir

(* --- the daemon over its socket ------------------------------------ *)

let test_server_roundtrip () =
  let dir = fresh_dir () in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_test_serve.%d.sock" (Unix.getpid ()))
  in
  let server =
    Thread.create
      (fun () ->
        Serve.Server.serve ~domains:2 ~socket_path ~dir ())
      ()
  in
  Alcotest.(check bool) "daemon came up" true
    (Serve.Client.wait_ready ~timeout:10. ~socket_path ());
  let ok req =
    match Serve.Client.request ~socket_path req with
    | Serve.Client.Ok_json payload -> payload
    | Serve.Client.Err { cls; detail } ->
      Alcotest.fail (Printf.sprintf "%s -> ERR %s %s" req cls detail)
  in
  let contains hay needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check string) "ping" {|"pong"|} (ok "PING");
  Alcotest.(check bool) "run reports success" true
    (contains (ok "RUN wc") {|"ok":true|});
  Alcotest.(check bool) "fleet runs warm off the RUN's entries" true
    (contains (ok "FLEET 4 wc") {|"pages_translated":0|});
  Alcotest.(check bool) "stats sees the sessions" true
    (contains (ok "STATS") {|"sessions_started":5|});
  (match Serve.Client.request ~socket_path "NOSUCH" with
  | Serve.Client.Err { cls; _ } ->
    Alcotest.(check string) "unknown command is a proto error" "proto" cls
  | Serve.Client.Ok_json _ -> Alcotest.fail "unknown command accepted");
  (* a RUN whose deadline passed while queued gets a typed deadline
     failure, never a hang or an untyped crash *)
  (match Serve.Client.request ~socket_path "RUN wc 0" with
  | Serve.Client.Err { cls; _ } ->
    Alcotest.(check string) "expired budget is a deadline error" "deadline"
      cls
  | Serve.Client.Ok_json _ -> Alcotest.fail "0ms deadline reported success");
  let health = ok "HEALTH" in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("HEALTH carries " ^ field) true
        (contains health ("\"" ^ field ^ "\":")))
    [ "queue_depth"; "inflight_sessions"; "sheds"; "deadline_failures";
      "crash_failures"; "ladder_strikes"; "self_heals" ];
  Alcotest.(check bool) "HEALTH counted the deadline failure" true
    (contains health {|"deadline_failures":1|});
  ignore (ok "SHUTDOWN");
  Thread.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path);
  rm_rf dir

let test_server_sheds_and_client_retries () =
  let dir = fresh_dir () in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_test_shed.%d.sock" (Unix.getpid ()))
  in
  (* queue_cap 0: every RUN sheds — deterministic busy replies *)
  let server =
    Thread.create
      (fun () ->
        Serve.Server.serve ~domains:1 ~queue_cap:0 ~socket_path ~dir ())
      ()
  in
  Alcotest.(check bool) "daemon came up" true
    (Serve.Client.wait_ready ~timeout:10. ~socket_path ());
  (match Serve.Client.request ~socket_path "RUN wc" with
  | Serve.Client.Err { cls = "busy"; detail } ->
    (match
       Serve.Client.retry_after_s (Serve.Client.Err { cls = "busy"; detail })
     with
    | Some s -> Alcotest.(check bool) "retry hint >= 25ms" true (s >= 0.025)
    | None -> Alcotest.fail ("busy without parseable hint: " ^ detail))
  | Serve.Client.Err { cls; _ } -> Alcotest.fail ("expected busy, got " ^ cls)
  | Serve.Client.Ok_json _ -> Alcotest.fail "cap-0 daemon accepted a RUN");
  (* the retry helper keeps retrying busy replies, then gives up with
     the last shed reply rather than raising *)
  (match
     Serve.Client.request_retry
       ~policy:
         { Serve.Retry.attempts = 3; base_s = 0.002; max_s = 0.01;
           multiplier = 2.0; jitter = 0.5 }
       ~seed:42 ~socket_path "RUN wc"
   with
  | Serve.Client.Err { cls = "busy"; _ } -> ()
  | _ -> Alcotest.fail "expected busy after exhausted retries");
  (* every shed was counted; PING and HEALTH still answer instantly *)
  (match Serve.Client.request ~socket_path "HEALTH" with
  | Serve.Client.Ok_json payload ->
    let contains needle =
      let n = String.length needle in
      let rec scan i =
        i + n <= String.length payload
        && (String.sub payload i n = needle || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "sheds counted (>= 4)" true
      (contains {|"sheds":4|} || contains {|"sheds":5|}
      || contains {|"sheds":6|})
  | _ -> Alcotest.fail "HEALTH failed under shedding");
  (match Serve.Client.request ~socket_path "SHUTDOWN" with
  | Serve.Client.Ok_json _ -> ()
  | _ -> Alcotest.fail "SHUTDOWN failed");
  Thread.join server;
  rm_rf dir

let test_server_shutdown_wakes_queued () =
  let dir = fresh_dir () in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_test_wake.%d.sock" (Unix.getpid ()))
  in
  let server =
    Thread.create
      (fun () -> Serve.Server.serve ~domains:1 ~socket_path ~dir ())
      ()
  in
  Alcotest.(check bool) "daemon came up" true
    (Serve.Client.wait_ready ~timeout:10. ~socket_path ());
  (* occupy the single domain with a fleet, stack RUNs behind it, then
     shut down: every queued client must get a reply — typed cancelled
     if it was still queued, OK if it slipped in first.  The assertion
     is liveness: all the joins below complete. *)
  let fleet =
    Thread.create
      (fun () -> ignore (Serve.Client.request ~socket_path "FLEET 6 wc"))
      ()
  in
  ignore (Unix.select [] [] [] 0.05);
  let replies = Array.make 3 None in
  let runs =
    Array.init 3 (fun i ->
        Thread.create
          (fun () ->
            replies.(i) <-
              Some
                (try
                   match Serve.Client.request ~socket_path "RUN wc" with
                   | Serve.Client.Ok_json _ -> "ok"
                   | Serve.Client.Err { cls; _ } -> cls
                 with Serve.Client.Unreachable _ -> "unreachable"))
          ())
  in
  ignore (Unix.select [] [] [] 0.05);
  (match Serve.Client.request ~socket_path "SHUTDOWN" with
  | Serve.Client.Ok_json _ -> ()
  | _ -> Alcotest.fail "SHUTDOWN failed");
  Array.iter Thread.join runs;
  Thread.join fleet;
  Thread.join server;
  Array.iteri
    (fun i r ->
      match r with
      | Some ("ok" | "cancelled" | "deadline") -> ()
      | Some other ->
        Alcotest.fail (Printf.sprintf "RUN %d got unexpected reply %s" i other)
      | None -> Alcotest.fail (Printf.sprintf "RUN %d never replied" i))
    replies;
  rm_rf dir

let () =
  Alcotest.run "serve"
    [ ( "pool",
        [ Alcotest.test_case "runs everything" `Quick test_pool_runs_everything;
          Alcotest.test_case "bounded queue sheds" `Quick
            test_pool_bounded_queue;
          Alcotest.test_case "shutdown cancels queued" `Quick
            test_pool_shutdown_cancels_queued ] );
      ( "obs",
        [ Alcotest.test_case "metrics domain-safe" `Quick
            test_metrics_domain_safe;
          Alcotest.test_case "trace domain-safe" `Quick test_trace_domain_safe ] );
      ( "gate",
        [ Alcotest.test_case "coalesces" `Quick test_gate_coalesces;
          Alcotest.test_case "failure releases waiters" `Quick
            test_gate_failure_releases_waiters ] );
      ( "store",
        [ Alcotest.test_case "multi-domain hammer" `Slow test_store_hammer;
          Alcotest.test_case "budget eviction + pinning" `Quick
            test_budget_eviction_and_pinning;
          Alcotest.test_case "probe refreshes LRU" `Quick
            test_probe_refreshes_lru ] );
      ( "session",
        [ Alcotest.test_case "typed failures" `Slow test_session_typed_failures ] );
      ( "fleet",
        [ Alcotest.test_case "cold then warm" `Slow test_fleet_cold_then_warm;
          Alcotest.test_case "corrupt entry self-heals" `Slow
            test_fleet_corrupt_entry_self_heals ] );
      ( "chaos",
        [ Alcotest.test_case "invariants under cocktail" `Slow
            test_chaos_invariants ] );
      ( "server",
        [ Alcotest.test_case "socket roundtrip" `Slow test_server_roundtrip;
          Alcotest.test_case "sheds and client retries" `Slow
            test_server_sheds_and_client_retries;
          Alcotest.test_case "shutdown wakes queued" `Slow
            test_server_shutdown_wakes_queued ] ) ]
