(* Tests for the multi-tenant serve layer and the concurrency it leans
   on: the domain pool, domain-safe metrics/trace sinks, the per-key
   translate gate, the store under a multi-domain hammer (no
   corruption, no duplicate translation per content key, stable entry
   counts), LRU eviction with session pinning, whole fleets over a
   shared cache, and the daemon's socket protocol end to end. *)

module Store = Tcache.Store
module Translate = Translator.Translate
module Metrics = Obs.Metrics

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_serve.%d.%d" (Unix.getpid ()) !n)
    in
    Store.mkdir_p d;
    d

let rm_rf dir =
  ignore (Store.clear_dir dir);
  (try Sys.remove (Filename.concat dir ".dtclock") with Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

(* --- the domain pool ----------------------------------------------- *)

let test_pool_runs_everything () =
  let pool = Serve.Pool.create ~domains:4 in
  let hits = Atomic.make 0 in
  for _ = 1 to 200 do
    Serve.Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Serve.Pool.drain pool;
  Alcotest.(check int) "every job ran" 200 (Atomic.get hits);
  (* a raising job is contained and the pool keeps going *)
  Serve.Pool.submit pool (fun () -> failwith "boom");
  Serve.Pool.submit pool (fun () -> Atomic.incr hits);
  Serve.Pool.drain pool;
  Alcotest.(check int) "pool survives a raising job" 201 (Atomic.get hits);
  Serve.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown refused"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Serve.Pool.submit pool (fun () -> ()))

(* --- domain-safe observability sinks ------------------------------- *)

let test_metrics_domain_safe () =
  let m = Metrics.create ~label:"hammer" () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m ~buckets:[ 1.; 10.; 100. ] "h" in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.Counter.inc c;
              Metrics.Gauge.set g (float_of_int i);
              Metrics.Histogram.observe h (float_of_int ((d * i) mod 150))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no increment lost" (4 * per_domain)
    (Metrics.Counter.value c);
  Alcotest.(check int) "no observation lost" (4 * per_domain) h.Metrics.Histogram.count;
  let json = Obs.Json.to_string (Metrics.to_json m) in
  Alcotest.(check bool) "label exported" true
    (let needle = {|"label":"hammer"|} in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length json
       && (String.sub json i n = needle || scan (i + 1))
     in
     scan 0)

let test_trace_domain_safe () =
  let t = Obs.Trace.create ~capacity:256 () in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1_000 do
              Obs.Trace.emit t ~ts:i ~name:(string_of_int d) ~ph:Obs.Trace.I []
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "every emit counted" 4_000 (Obs.Trace.total t);
  Alcotest.(check int) "ring capped" 256 (Obs.Trace.length t);
  let seen = ref 0 in
  Obs.Trace.iter (fun _ -> incr seen) t;
  Alcotest.(check int) "iter sees the retained tail" 256 !seen

(* --- the translate gate -------------------------------------------- *)

let test_gate_coalesces () =
  let shared = Serve.Shared.create ~dir:(fresh_dir ()) () in
  let translated = Atomic.make 0 in
  let attempts = 64 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to attempts do
              match Serve.Shared.gate shared ~page:0 ~key:"k" with
              | `Proceed ->
                Atomic.incr translated;
                (* hold the gate long enough that the other domains
                   actually pile up on it *)
                ignore (Unix.select [] [] [] 0.001);
                Serve.Shared.release shared ~page:0 ~key:"k" ~ok:true
              | `Waited -> ()
            done))
  in
  List.iter Domain.join ds;
  let s = Serve.Shared.stats shared in
  Alcotest.(check int) "wins == translations" (Atomic.get translated) s.gate_wins;
  Alcotest.(check int) "every attempt accounted" (4 * attempts)
    (s.gate_wins + s.gate_waits);
  Alcotest.(check bool) "storm actually coalesced" true (s.gate_waits > 0);
  Alcotest.(check int) "nothing left in flight" 0 s.inflight_keys

let test_gate_failure_releases_waiters () =
  let shared = Serve.Shared.create ~dir:(fresh_dir ()) () in
  Alcotest.(check bool) "winner proceeds" true
    (Serve.Shared.gate shared ~page:0 ~key:"k" = `Proceed);
  let waited = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        match Serve.Shared.gate shared ~page:0 ~key:"k" with
        | `Waited -> Atomic.set waited true
        | `Proceed -> ())
  in
  ignore (Unix.select [] [] [] 0.05);
  (* the winner dies without installing; the waiter must still wake *)
  Serve.Shared.release shared ~page:0 ~key:"k" ~ok:false;
  Domain.join d;
  Alcotest.(check bool) "waiter woke after failed release" true
    (Atomic.get waited);
  Alcotest.(check int) "failure counted" 1
    (Serve.Shared.stats shared).gate_failures;
  (* and the key is free again for a retry *)
  Alcotest.(check bool) "key reusable" true
    (Serve.Shared.gate shared ~page:0 ~key:"k" = `Proceed);
  Serve.Shared.release shared ~page:0 ~key:"k" ~ok:true

(* --- the store under a multi-domain hammer (the satellite) --------- *)

let translated_page () =
  let mem, entry =
    Workloads.Wl.instantiate (Workloads.Registry.by_name "wc")
  in
  let tr = Translate.create Translator.Params.default mem in
  fst (Translate.entry tr entry)

let test_store_hammer () =
  let dir = fresh_dir () in
  let shared = Serve.Shared.create ~dir () in
  let page = translated_page () in
  let n_keys = 8 and n_domains = 4 and iters = 50 in
  (* distinct synthetic page contents -> distinct content keys; every
     domain cycles over the same overlapping key set *)
  let probe_store =
    Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"hammer-fp"
  in
  let keys =
    Array.init n_keys (fun i ->
        Store.key probe_store ~base:page.Translate.base
          (Printf.sprintf "synthetic page %d" i))
  in
  let translations = Array.init n_keys (fun _ -> Atomic.make 0) in
  let anomalies = Atomic.make 0 in
  let ds =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            (* each domain opens its OWN handle on the shared dir —
               cross-handle safety is the point *)
            let store =
              Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"hammer-fp"
            in
            for i = 0 to iters - 1 do
              let k = (i + d) mod n_keys in
              let key = keys.(k) in
              match Store.probe store ~key with
              | `Hit (p, _) ->
                if not (p.Translate.base = page.Translate.base) then
                  Atomic.incr anomalies
              | `Corrupt _ | `Skipped _ -> Atomic.incr anomalies
              | `Miss -> (
                match Serve.Shared.gate shared ~page:k ~key with
                | `Proceed -> (
                  (* the miss may be stale — re-probe under ownership,
                     exactly like the VMM's gate path does *)
                  match Store.probe store ~key with
                  | `Hit _ ->
                    Serve.Shared.release shared ~page:k ~key ~ok:true
                  | `Miss ->
                    Atomic.incr translations.(k);
                    ignore
                      (Store.persist store ~key page ~spec_inhibited:false);
                    Serve.Shared.release shared ~page:k ~key ~ok:true
                  | `Corrupt _ | `Skipped _ ->
                    Atomic.incr anomalies;
                    Serve.Shared.release shared ~page:k ~key ~ok:false)
                | `Waited -> (
                  (* the winner released after its persist: we must
                     see a whole entry now, never a torn one *)
                  match Store.probe store ~key with
                  | `Hit _ -> ()
                  | `Miss | `Corrupt _ | `Skipped _ ->
                    Atomic.incr anomalies))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no corruption, no torn reads" 0
    (Atomic.get anomalies);
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "key %d translated exactly once" i)
        1 (Atomic.get c))
    translations;
  Alcotest.(check int) "entry count stable" n_keys
    (List.length (Store.entry_files dir));
  List.iter
    (fun (info : Store.info) ->
      Alcotest.(check bool) ("entry parses: " ^ info.key) true
        (info.status = `Ok))
    (Store.list_dir dir);
  rm_rf dir

(* --- LRU eviction with pinning ------------------------------------- *)

let test_budget_eviction_and_pinning () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"evict-fp" in
  let page = translated_page () in
  let key i = Store.key store ~base:page.Translate.base (string_of_int i) in
  let bytes = ref 0 in
  for i = 0 to 2 do
    bytes := Store.persist store ~key:(key i) page ~spec_inhibited:false
  done;
  (* stagger mtimes: entry 0 oldest, entry 2 newest *)
  List.iteri
    (fun i k ->
      let t = Unix.time () -. float_of_int (300 - (i * 100)) in
      Unix.utimes (Store.path_of store k) t t)
    [ key 0; key 1; key 2 ];
  (* budget for exactly one entry, middle key pinned: both unpinned
     entries go, oldest included; the pinned one survives *)
  let r =
    Store.enforce_budget ~pinned:(fun k -> k = key 1) store ~budget:!bytes
  in
  Alcotest.(check int) "two cast out" 2 r.Store.evicted;
  Alcotest.(check bool) "budget met" false r.Store.pinned_over;
  Alcotest.(check (list string)) "pinned entry survived"
    [ key 1 ^ ".dtc" ]
    (Store.entry_files dir);
  (* unreachable budget: the pin wins over the budget and says so *)
  let r = Store.enforce_budget ~pinned:(fun k -> k = key 1) store ~budget:0 in
  Alcotest.(check int) "nothing evictable" 0 r.Store.evicted;
  Alcotest.(check bool) "reported as pinned-over" true r.Store.pinned_over;
  rm_rf dir

let test_probe_refreshes_lru () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"lru-fp" in
  let page = translated_page () in
  let key i = Store.key store ~base:page.Translate.base (string_of_int i) in
  let bytes = ref 0 in
  for i = 0 to 1 do
    bytes := Store.persist store ~key:(key i) page ~spec_inhibited:false
  done;
  let old = Unix.time () -. 500. in
  Unix.utimes (Store.path_of store (key 0)) old old;
  Unix.utimes (Store.path_of store (key 1)) (old +. 100.) (old +. 100.);
  (* a hit on the oldest entry promotes it; the other entry is now the
     LRU victim *)
  (match Store.probe store ~key:(key 0) with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "expected a hit");
  ignore (Store.enforce_budget store ~budget:!bytes);
  Alcotest.(check (list string)) "recently-probed entry survived"
    [ key 0 ^ ".dtc" ]
    (Store.entry_files dir);
  rm_rf dir

(* --- fleets over a shared cache ------------------------------------ *)

let test_fleet_cold_then_warm () =
  let dir = fresh_dir () in
  let pool = Serve.Pool.create ~domains:4 in
  let shared = Serve.Shared.create ~dir () in
  let cold, outcomes =
    Serve.Fleet.run ~pool ~shared ~sessions:8 [ "wc" ]
  in
  Alcotest.(check int) "cold: all verified" 0 cold.Serve.Fleet.failures;
  Alcotest.(check int) "cold: ids distinct" 8
    (List.length
       (List.sort_uniq compare
          (List.map (fun (o : Serve.Session.outcome) -> o.id) outcomes)));
  (* the gate made the unique page set the whole fleet's translation
     bill: what one session translates alone bounds what eight did *)
  let solo = (Vmm.Run.run (Workloads.Registry.by_name "wc")).pages_translated in
  Alcotest.(check bool)
    (Printf.sprintf "cold: %d pages for the fleet <= %d for one session"
       cold.pages_translated solo)
    true
    (cold.Serve.Fleet.pages_translated <= solo);
  let warm, _ =
    Serve.Fleet.run ~first_id:8 ~pool ~shared ~sessions:8 [ "wc" ]
  in
  Serve.Pool.shutdown pool;
  Alcotest.(check int) "warm: all verified" 0 warm.Serve.Fleet.failures;
  Alcotest.(check int) "warm: zero pages retranslated" 0
    warm.Serve.Fleet.pages_translated;
  Alcotest.(check int) "warm: zero misses" 0 warm.Serve.Fleet.tcache_misses;
  Alcotest.(check (float 0.0001)) "warm: hit rate 1.0" 1.0
    warm.Serve.Fleet.hit_rate;
  Alcotest.(check int) "warm: gate never engaged" 0 warm.Serve.Fleet.gate_wins;
  Alcotest.(check int) "no pins leak" 0
    (Serve.Shared.stats shared).pinned_keys;
  rm_rf dir

(* --- the daemon over its socket ------------------------------------ *)

let test_server_roundtrip () =
  let dir = fresh_dir () in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy_test_serve.%d.sock" (Unix.getpid ()))
  in
  let server =
    Thread.create
      (fun () ->
        Serve.Server.serve ~domains:2 ~socket_path ~dir ())
      ()
  in
  Alcotest.(check bool) "daemon came up" true
    (Serve.Client.wait_ready ~timeout:10. ~socket_path ());
  let ok req =
    match Serve.Client.request ~socket_path req with
    | Serve.Client.Ok_json payload -> payload
    | Serve.Client.Err msg -> Alcotest.fail (req ^ " -> ERR " ^ msg)
  in
  let contains hay needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check string) "ping" {|"pong"|} (ok "PING");
  Alcotest.(check bool) "run reports success" true
    (contains (ok "RUN wc") {|"ok":true|});
  Alcotest.(check bool) "fleet runs warm off the RUN's entries" true
    (contains (ok "FLEET 4 wc") {|"pages_translated":0|});
  Alcotest.(check bool) "stats sees the sessions" true
    (contains (ok "STATS") {|"sessions_started":5|});
  (match Serve.Client.request ~socket_path "NOSUCH" with
  | Serve.Client.Err _ -> ()
  | Serve.Client.Ok_json _ -> Alcotest.fail "unknown command accepted");
  ignore (ok "SHUTDOWN");
  Thread.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path);
  rm_rf dir

let () =
  Alcotest.run "serve"
    [ ( "pool",
        [ Alcotest.test_case "runs everything" `Quick test_pool_runs_everything ] );
      ( "obs",
        [ Alcotest.test_case "metrics domain-safe" `Quick
            test_metrics_domain_safe;
          Alcotest.test_case "trace domain-safe" `Quick test_trace_domain_safe ] );
      ( "gate",
        [ Alcotest.test_case "coalesces" `Quick test_gate_coalesces;
          Alcotest.test_case "failure releases waiters" `Quick
            test_gate_failure_releases_waiters ] );
      ( "store",
        [ Alcotest.test_case "multi-domain hammer" `Slow test_store_hammer;
          Alcotest.test_case "budget eviction + pinning" `Quick
            test_budget_eviction_and_pinning;
          Alcotest.test_case "probe refreshes LRU" `Quick
            test_probe_refreshes_lru ] );
      ( "fleet",
        [ Alcotest.test_case "cold then warm" `Slow test_fleet_cold_then_warm ] );
      ( "server",
        [ Alcotest.test_case "socket roundtrip" `Slow test_server_roundtrip ] ) ]
