(* Tests for the fault-injection framework and the degradation ladder:
   every injector class fired at full tilt against the whole workload
   registry still verifies bit-exact against the reference interpreter
   (that check lives inside [Vmm.Run.run] itself), with the matching
   ladder counters engaged; the differential fuzzer is deterministic
   from its seed, its clean and fault-cocktail corpora are
   mismatch-free, and the shrinker/reproducer machinery round-trips. *)

module Inject = Fault.Inject
module Fuzz = Fault.Fuzz
module Run = Vmm.Run
module Wl = Workloads.Wl
module T = Vliw.Tree

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_fault.%d.%d" (Unix.getpid ()) !n)
    in
    Tcache.Store.mkdir_p d;
    d

(* Run one workload with an injector attached.  [Run.run] raises
   {!Run.Mismatch} if the faulted execution diverges from the reference
   interpreter in any observable way, so merely returning is the
   compatibility assertion. *)
let run_with ?tcache_dir (cfg : Inject.config) w =
  let inj = Inject.create cfg in
  let ignore_mem =
    if cfg.interrupt_rate > 0. then [ Wl.interrupt_count_addr ] else []
  in
  let r = Run.run ?tcache_dir ~instrument:(Inject.attach inj) ~ignore_mem w in
  (r, inj)

let sum_registry cfg f =
  List.fold_left
    (fun acc w ->
      let r, inj = run_with cfg w in
      acc + f r inj)
    0 Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Injector classes, one at a time, across the registry                *)

let test_quiet_is_noop () =
  let r, inj = run_with Inject.quiet (Workloads.Registry.by_name "wc") in
  Alcotest.(check int) "nothing fired" 0 (Inject.total inj);
  Alcotest.(check bool) "not degraded" false (Run.degraded r.stats);
  Alcotest.(check (option int)) "golden exit" (Some 4691) r.exit_code

let test_translator_faults () =
  let cfg = { Inject.quiet with translator_fault_rate = 1.0 } in
  let quarantines =
    sum_registry cfg (fun r inj ->
        Alcotest.(check bool) (r.name ^ ": injector fired") true
          (inj.n_translator > 0);
        Alcotest.(check bool) (r.name ^ ": faults counted") true
          (r.stats.translator_faults > 0);
        Alcotest.(check bool) (r.name ^ ": degraded") true
          (Run.degraded r.stats);
        r.stats.quarantines)
  in
  Alcotest.(check bool) "quarantines engaged" true (quarantines > 0)

let test_translator_pins_to_interp () =
  (* every translation attempt crashes: the ladder must end with the
     pages pinned to interpretation and the run still bit-exact *)
  let cfg = { Inject.quiet with translator_fault_rate = 1.0 } in
  let r, _ = run_with cfg (Workloads.Registry.by_name "wc") in
  Alcotest.(check (option int)) "correct exit, fully interpreted"
    (Some 4691) r.exit_code;
  Alcotest.(check int) "no VLIW ever executed" 0 r.vliws;
  Alcotest.(check bool) "pages pinned" true (r.stats.interp_pinned >= 1)

let test_bitflips () =
  let cfg = { Inject.quiet with bitflip_rate = 1.0 } in
  let exec_faults =
    sum_registry cfg (fun r inj ->
        Alcotest.(check bool) (r.name ^ ": flips injected") true
          (inj.n_bitflips > 0);
        r.stats.exec_faults)
  in
  (* every flip is detectable by construction (open tip / bad CR bit),
     either eagerly by the digest check or lazily by the datapath *)
  Alcotest.(check bool) "corruptions caught" true (exec_faults > 0)

let test_interrupts_transparent () =
  let cfg = { Inject.quiet with interrupt_rate = 0.05 } in
  let delivered =
    sum_registry cfg (fun r inj ->
        Alcotest.(check int) (r.name ^ ": every firing delivered")
          inj.n_interrupts r.stats.external_interrupts;
        Alcotest.(check bool) (r.name ^ ": interrupts are not degradation")
          false (Run.degraded r.stats);
        r.stats.external_interrupts)
  in
  Alcotest.(check bool) "interrupts delivered somewhere" true (delivered > 0)

let test_storms () =
  let cfg = { Inject.quiet with storm_rate = 0.01 } in
  let checked =
    sum_registry cfg (fun r inj ->
        if inj.n_storms > 0 then begin
          (* each storm forces at least one rollback + interpretation
             episode, and a masked storm is not a degradation *)
          Alcotest.(check bool) (r.name ^ ": rollbacks") true
            (r.stats.rollbacks >= inj.n_storms);
          Alcotest.(check bool) (r.name ^ ": episodes") true
            (r.stats.interp_episodes > 0);
          1
        end
        else 0)
  in
  Alcotest.(check bool) "storms fired somewhere" true (checked > 0)

let test_tcache_poison () =
  let dir = fresh_dir () in
  let w = Workloads.Registry.by_name "wc" in
  let cfg = { Inject.quiet with tcache_poison_rate = 1.0 } in
  let cold, inj = run_with ~tcache_dir:dir cfg w in
  Alcotest.(check bool) "entries poisoned" true (inj.n_poisoned > 0);
  Alcotest.(check (option int)) "cold exit" (Some 4691) cold.exit_code;
  (* warm start against the poisoned store: the codec rejects the
     flipped entries and the VMM retranslates *)
  let warm = Run.run ~tcache_dir:dir w in
  Alcotest.(check bool) "corruption detected on warm start" true
    (warm.stats.tcache_corrupt > 0);
  Alcotest.(check (option int)) "warm exit" (Some 4691) warm.exit_code;
  ignore (Tcache.Store.clear_dir dir)

let test_tcache_quarantine_self_heals () =
  let dir = fresh_dir () in
  let w = Workloads.Registry.by_name "wc" in
  let cold = Run.run ~tcache_dir:dir w in
  Alcotest.(check bool) "entries persisted" true
    (cold.stats.tcache_persists > 0);
  (* truncate one entry mid-file: a torn write / partial disk failure *)
  let victim =
    Filename.concat dir (List.hd (Tcache.Store.entry_files dir))
  in
  let s = In_channel.with_open_bin victim In_channel.input_all in
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_string oc (String.sub s 0 (String.length s / 2)));
  (* warm start: the corrupt entry is detected, QUARANTINED (set aside
     as .dtc.bad, off the probe path), and retranslated — the run
     itself still verifies *)
  let warm = Run.run ~tcache_dir:dir w in
  Alcotest.(check bool) "corruption detected" true
    (warm.stats.tcache_corrupt > 0);
  Alcotest.(check bool) "corrupt entry quarantined" true
    (warm.stats.tcache_quarantined > 0);
  Alcotest.(check (option int)) "warm run still verifies" (Some 4691)
    warm.exit_code;
  Alcotest.(check bool) "quarantine file set aside for post-mortem" true
    (Tcache.Store.quarantined_files dir <> []);
  (* the retranslation was re-persisted: a third run is fully warm *)
  let healed = Run.run ~tcache_dir:dir w in
  Alcotest.(check int) "healed run sees no corruption" 0
    healed.stats.tcache_corrupt;
  Alcotest.(check int) "healed run translates nothing" 0
    healed.pages_translated;
  ignore (Tcache.Store.clear_dir dir)

let test_cocktail_registry () =
  (* the acceptance gate: every class at a nonzero rate, all eight
     workloads, all verifying identically *)
  let fired =
    sum_registry Inject.cocktail (fun _ inj -> Inject.total inj)
  in
  Alcotest.(check bool) "cocktail fired across the registry" true (fired > 0)

(* ------------------------------------------------------------------ *)
(* The detectability contract behind the bit-flip class                *)

let test_open_tip_raises () =
  let v = T.create ~id:0 ~precise_entry:0x1000 in
  (* root left Open: reaching it must raise, not execute garbage *)
  let st = Vliw.Vstate.create (Ppc.Machine.create ()) in
  (match Vliw.Exec.run st (Ppc.Mem.create 0x1000) v with
  | _ -> Alcotest.fail "open tip executed"
  | exception Vliw.Exec.Error _ -> ())

let test_bad_cr_bit_raises () =
  let v = T.create ~id:0 ~precise_entry:0x1000 in
  let taken, fall = T.split v.root { bit = 97; sense = true } in
  T.close taken (T.OffPage 0x2000);
  T.close fall (T.OffPage 0x3000);
  let st = Vliw.Vstate.create (Ppc.Machine.create ()) in
  (match Vliw.Exec.run st (Ppc.Mem.create 0x1000) v with
  | _ -> Alcotest.fail "out-of-range CR bit evaluated"
  | exception Vliw.Exec.Error _ -> ())

let test_degraded_mapping () =
  let clean = Run.run (Workloads.Registry.by_name "wc") in
  Alcotest.(check bool) "clean run not degraded" false
    (Run.degraded clean.stats);
  let pinned, _ =
    run_with
      { Inject.quiet with translator_fault_rate = 1.0 }
      (Workloads.Registry.by_name "wc")
  in
  Alcotest.(check bool) "pinned run degraded" true (Run.degraded pinned.stats)

(* ------------------------------------------------------------------ *)
(* The differential fuzzer                                             *)

let verdicts (s : Fuzz.summary) =
  List.map (fun (o : Fuzz.outcome) -> o.verdict) s.outcomes

let test_fuzz_deterministic () =
  let a = Fuzz.fuzz ~seed:5 ~pages:30 () in
  let b = Fuzz.fuzz ~seed:5 ~pages:30 () in
  Alcotest.(check bool) "same verdicts from same seed" true
    (verdicts a = verdicts b);
  Alcotest.(check int) "counts partition the corpus" a.pages
    (a.matched + a.hung + a.mismatched);
  let c = Fuzz.fuzz ~faults:Inject.cocktail ~seed:5 ~pages:15 () in
  let d = Fuzz.fuzz ~faults:Inject.cocktail ~seed:5 ~pages:15 () in
  Alcotest.(check bool) "deterministic under injection too" true
    (verdicts c = verdicts d)

let test_fuzz_clean_corpus () =
  let s = Fuzz.fuzz ~seed:1 ~pages:120 () in
  Alcotest.(check int) "no mismatches" 0 s.mismatched;
  Alcotest.(check bool) "mostly matched" true (s.matched > s.hung)

let test_fuzz_cocktail_corpus () =
  let s = Fuzz.fuzz ~faults:Inject.cocktail ~seed:2 ~pages:60 () in
  Alcotest.(check int) "no mismatches under injection" 0 s.mismatched

(* ------------------------------------------------------------------ *)
(* Shrinking and reproducers                                           *)

let test_shrinker () =
  let mk i = Fuzz.Op (Ppc.Insn.Addi (3, 3, i)) in
  let slots = Array.init 20 mk in
  (* pretend only slots 7 and 13 matter: the shrinker must nop out
     everything else and keep exactly those two *)
  let still (s : Fuzz.slot array) =
    s.(7) <> Fuzz.Op Fuzz.nop && s.(13) <> Fuzz.Op Fuzz.nop
  in
  let small = Fuzz.shrink ~still slots in
  Array.iteri
    (fun i s ->
      if i = 7 || i = 13 then
        Alcotest.(check bool) (Printf.sprintf "slot %d kept" i) true
          (s = mk i)
      else
        Alcotest.(check bool) (Printf.sprintf "slot %d nopped" i) true
          (s = Fuzz.Op Fuzz.nop))
    small

let test_reproducer_roundtrip () =
  let dir = fresh_dir () in
  let seed = 77 and index = 3 and fuel = 50_000 in
  let rng = Random.State.make [| seed; index; 0 |] in
  let slots = Fuzz.gen_slots rng ~insns:48 ~allow_raw:true in
  let path =
    Fuzz.write_reproducer ~dir ~seed ~index ~fuel ~message:"round-trip" slots
  in
  let seed', index', fuel', slots' = Fuzz.read_reproducer path in
  Alcotest.(check int) "seed" seed seed';
  Alcotest.(check int) "index" index index';
  Alcotest.(check int) "fuel" fuel fuel';
  Alcotest.(check bool) "same words" true
    (Array.map Fuzz.slot_word slots = Array.map Fuzz.slot_word slots');
  (* replaying the file reaches the same verdict as the original run *)
  let direct = Fuzz.run_slots ~seed ~index ~fuel slots in
  let replayed = Fuzz.replay path in
  Alcotest.(check bool) "replay verdict matches" true (direct = replayed);
  Sys.remove path

let () =
  Alcotest.run "fault"
    [ ( "injectors",
        [ Alcotest.test_case "quiet config is a no-op" `Quick
            test_quiet_is_noop;
          Alcotest.test_case "translator faults" `Slow test_translator_faults;
          Alcotest.test_case "pin to interpretation" `Quick
            test_translator_pins_to_interp;
          Alcotest.test_case "bit-flips" `Slow test_bitflips;
          Alcotest.test_case "spurious interrupts" `Slow
            test_interrupts_transparent;
          Alcotest.test_case "page-fault storms" `Slow test_storms;
          Alcotest.test_case "tcache poisoning" `Quick test_tcache_poison;
          Alcotest.test_case "tcache quarantine self-heals" `Quick
            test_tcache_quarantine_self_heals;
          Alcotest.test_case "full cocktail" `Slow test_cocktail_registry ] );
      ( "detectability",
        [ Alcotest.test_case "open tip raises" `Quick test_open_tip_raises;
          Alcotest.test_case "bad CR bit raises" `Quick test_bad_cr_bit_raises;
          Alcotest.test_case "degraded mapping" `Quick test_degraded_mapping ]
      );
      ( "fuzzer",
        [ Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "clean corpus" `Slow test_fuzz_clean_corpus;
          Alcotest.test_case "cocktail corpus" `Slow test_fuzz_cocktail_corpus
        ] );
      ( "reproducers",
        [ Alcotest.test_case "shrinker" `Quick test_shrinker;
          Alcotest.test_case "round-trip" `Quick test_reproducer_roundtrip ]
      ) ]
