(* Tests for the pluggable storage layer (lib/fsio) and the stores'
   degradation contracts on top of it:

   - the atomic-commit discipline: a crash at ANY durable step leaves
     the destination either absent or whole, never torn (enumerated
     exhaustively and property-checked over random contents);
   - crash-point enumeration per store: translation cache, profile
     store, checkpoints and the flight recorder each recover to a
     valid prefix from every possible crash offset;
   - graceful degradation: ENOSPC mid-install leaves no partial entry
     (the page survives in the memory overlay), EIO on probe degrades
     to a typed skip instead of raising, a checkpoint storage fault
     becomes a ladder strike;
   - fsck: a hand-torn entry and a dead writer's temp file are
     reported and repaired, leaving the tree clean. *)

module Store = Tcache.Store
module Pstore = Obs.Pstore
module Flight = Obs.Flight
module Checkpoint = Guard.Checkpoint
module Fsck = Guard.Fsck
module Monitor = Vmm.Monitor
module Wl = Workloads.Wl

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_fsio.%d.%d" (Unix.getpid ()) !n)
    in
    Store.mkdir_p d;
    d

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let listing dir = Array.to_list (Sys.readdir dir) |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The commit primitive                                                *)

(* After a crash at any durable step, the destination file is either
   absent or byte-identical to the contents; anything else in the
   directory is an orphaned temp file fsck knows how to sweep. *)
let check_crash_invariant ~dir ~file ~contents =
  let dst = Filename.concat dir file in
  (match Sys.file_exists dst with
  | false -> ()
  | true ->
    let got = In_channel.with_open_bin dst In_channel.input_all in
    Alcotest.(check string) "destination is whole or absent" contents got);
  List.iter
    (fun f ->
      if f <> file then
        Alcotest.(check bool)
          (Printf.sprintf "leftover %s is an orphan temp" f)
          true
          (Filename.check_suffix f ".tmp"))
    (listing dir)

let commit_steps contents =
  let dir = fresh_dir () in
  let io, inj = Fsio.faulty Fsio.fault_quiet in
  Fsio.commit io ~dir ~file:"entry.bin" contents;
  let n = Fsio.steps inj in
  rm_rf dir;
  n

let test_commit_crash_points () =
  List.iter
    (fun size ->
      let contents = String.init size (fun i -> Char.chr (i land 0xff)) in
      let steps = commit_steps contents in
      Alcotest.(check bool)
        (Printf.sprintf "size %d has durable steps" size)
        true (steps > 0);
      for crash_at = 0 to steps - 1 do
        let dir = fresh_dir () in
        let io, _ =
          Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
        in
        (match Fsio.commit io ~dir ~file:"entry.bin" contents with
        | () ->
          Alcotest.failf "size %d: crash point %d never fired" size crash_at
        | exception Fsio.Crash _ -> ());
        check_crash_invariant ~dir ~file:"entry.bin" ~contents;
        rm_rf dir
      done)
    [ 0; 1; 4095; 4096; 9000 ]

let prop_commit_crash =
  QCheck.Test.make ~name:"commit: any crash point leaves no torn entry"
    ~count:60
    QCheck.(pair (string_of_size QCheck.Gen.(0 -- 12_000)) small_nat)
    (fun (contents, offset) ->
      let steps = commit_steps contents in
      let crash_at = offset mod steps in
      let dir = fresh_dir () in
      let io, _ =
        Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
      in
      let crashed =
        match Fsio.commit io ~dir ~file:"entry.bin" contents with
        | () -> false
        | exception Fsio.Crash _ -> true
      in
      let dst = Filename.concat dir "entry.bin" in
      let whole_or_absent =
        (not (Sys.file_exists dst))
        || In_channel.with_open_bin dst In_channel.input_all = contents
      in
      let only_orphans =
        List.for_all
          (fun f -> f = "entry.bin" || Filename.check_suffix f ".tmp")
          (listing dir)
      in
      rm_rf dir;
      crashed && whole_or_absent && only_orphans)

let test_commit_fault_cleans_temp () =
  let dir = fresh_dir () in
  let io, inj =
    Fsio.faulty { Fsio.fault_quiet with eio_write_rate = 1.0 }
  in
  (match Fsio.commit io ~dir ~file:"entry.bin" "payload" with
  | () -> Alcotest.fail "EIO write must fault"
  | exception Fsio.Fault { cls = Fsio.Eio; _ } -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
  Alcotest.(check bool) "the fault was counted" true (Fsio.faults_fired inj > 0);
  Alcotest.(check (list string)) "no temp file survives the fault" []
    (listing dir);
  rm_rf dir

let test_commit_readonly () =
  let dir = fresh_dir () in
  let io, _ = Fsio.faulty { Fsio.fault_quiet with readonly = true } in
  (match Fsio.commit io ~dir ~file:"entry.bin" "payload" with
  | () -> Alcotest.fail "readonly mount must fault"
  | exception Fsio.Fault { cls = Fsio.Readonly; _ } -> ());
  Alcotest.(check (list string)) "nothing written" [] (listing dir);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Translation cache                                                   *)

let translated_page name =
  let mem, entry =
    Workloads.Wl.instantiate (Workloads.Registry.by_name name)
  in
  let tr = Translator.Translate.create Translator.Params.default mem in
  let page, _ = Translator.Translate.entry tr entry in
  (mem, page)

(* Open + persist under a step-counting quiet injector, so the crash
   run below replays exactly the same durable-step sequence. *)
let tcache_persist ~io dir =
  let store = Store.open_store ~io ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  ignore (Store.persist store ~key page ~spec_inhibited:true);
  key

let test_tcache_crash_points () =
  let steps =
    let dir = fresh_dir () in
    let io, inj = Fsio.faulty Fsio.fault_quiet in
    ignore (tcache_persist ~io dir);
    rm_rf dir;
    Fsio.steps inj
  in
  Alcotest.(check bool) "persist has durable steps" true (steps > 0);
  for crash_at = 0 to steps - 1 do
    let dir = fresh_dir () in
    let io, _ =
      Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
    in
    (match tcache_persist ~io dir with
    | _ -> Alcotest.failf "crash point %d never fired" crash_at
    | exception Fsio.Crash _ -> ());
    (* recovery: reopening with honest io sweeps orphans and every
       surviving entry parses clean — a full hit or a clean miss *)
    let store =
      Store.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" ()
    in
    let mem, page = translated_page "wc" in
    let bytes = Ppc.Mem.read_string mem page.base page.psize in
    let key = Store.key store ~base:page.base bytes in
    (match Store.probe store ~key with
    | `Hit (page', si) ->
      Alcotest.(check bool) "hit page base" true (page'.base = page.base);
      Alcotest.(check bool) "hit spec flag" true si
    | `Miss -> ()
    | `Corrupt m -> Alcotest.failf "crash %d left a torn entry: %s" crash_at m
    | `Skipped m -> Alcotest.failf "crash %d left a skip: %s" crash_at m);
    List.iter
      (fun (i : Store.info) ->
        match i.status with
        | `Ok -> ()
        | `Corrupt m | `Skipped m ->
          Alcotest.failf "crash %d: %s is not clean: %s" crash_at i.key m)
      (Store.list_dir dir);
    rm_rf dir
  done

let test_tcache_enospc_no_partial () =
  let dir = fresh_dir () in
  let io, inj =
    Fsio.faulty { Fsio.fault_quiet with enospc_rate = 1.0 }
  in
  let store = Store.open_store ~io ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  let mem, page = translated_page "wc" in
  let bytes = Ppc.Mem.read_string mem page.base page.psize in
  let key = Store.key store ~base:page.base bytes in
  ignore (Store.persist store ~key page ~spec_inhibited:true);
  Alcotest.(check bool) "the ENOSPC fired" true (Fsio.faults_fired inj > 0);
  Alcotest.(check int) "store degraded once" 1 (Store.degraded_count store);
  Alcotest.(check int) "entry parked in overlay" 1 (Store.overlay_count store);
  Alcotest.(check (list string)) "no partial entry on disk" []
    (Store.entry_files dir);
  Alcotest.(check (list string)) "no orphan left behind" []
    (Store.orphan_files dir);
  (* the page is still served, from memory *)
  (match Store.probe store ~key with
  | `Hit (page', _) ->
    Alcotest.(check bool) "overlay hit" true (page'.base = page.base)
  | _ -> Alcotest.fail "overlay must serve the parked page");
  rm_rf dir

let test_tcache_eio_probe_degrades () =
  let dir = fresh_dir () in
  (* persist honestly, then probe through a disk that fails every read *)
  let key = tcache_persist ~io:Fsio.real dir in
  let io, _ = Fsio.faulty { Fsio.fault_quiet with eio_read_rate = 1.0 } in
  let store = Store.open_store ~io ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  (match Store.probe store ~key with
  | `Skipped m ->
    Alcotest.(check bool)
      (Printf.sprintf "typed storage skip (got %S)" m)
      true
      (String.length m >= 8 && String.sub m 0 8 = "storage:")
  | `Hit _ -> Alcotest.fail "EIO read cannot hit"
  | `Miss -> Alcotest.fail "EIO read is not a miss"
  | `Corrupt m -> Alcotest.failf "EIO read is not corruption: %s" m);
  Alcotest.(check bool) "probe degraded the store" true
    (Store.degraded_count store > 0);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Profile store                                                       *)

let sample_profile () =
  let p = Obs.Profile.create ~page_size:4096 () in
  p.runs <- 1;
  let q = Obs.Profile.page p 0x1000 in
  q.entries <- 3;
  q.vliws <- 10;
  Obs.Profile.edge_n p ~src:0x1000 ~dst:0x2000 ~kind:Obs.Profile.Taken 5;
  p

let pstore_save_twice ~io dir =
  let s = Pstore.open_store ~io ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  ignore (Pstore.save s (sample_profile ()));
  ignore (Pstore.save s (sample_profile ()))

let test_pstore_crash_points () =
  let steps =
    let dir = fresh_dir () in
    let io, inj = Fsio.faulty Fsio.fault_quiet in
    pstore_save_twice ~io dir;
    rm_rf dir;
    Fsio.steps inj
  in
  for crash_at = 0 to steps - 1 do
    let dir = fresh_dir () in
    let io, _ =
      Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
    in
    (match pstore_save_twice ~io dir with
    | () -> Alcotest.failf "crash point %d never fired" crash_at
    | exception Fsio.Crash _ -> ());
    let s = Pstore.open_store ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
    (match Pstore.load s with
    | `Hit p ->
      Alcotest.(check int) "recovered profile runs" 1 p.Obs.Profile.runs
    | `Miss -> ()
    | `Corrupt m -> Alcotest.failf "crash %d left a torn profile: %s" crash_at m
    | `Skipped m -> Alcotest.failf "crash %d left a skip: %s" crash_at m);
    rm_rf dir
  done

let test_pstore_enospc_degrades () =
  let dir = fresh_dir () in
  let io, _ = Fsio.faulty { Fsio.fault_quiet with enospc_rate = 1.0 } in
  let s = Pstore.open_store ~io ~dir ~frontend:"ppc" ~fingerprint:"fp" () in
  ignore (Pstore.save s (sample_profile ()));
  Alcotest.(check int) "save degraded" 1 (Pstore.degraded_count s);
  (* the heat data survives in memory for this process *)
  (match Pstore.load s with
  | `Hit p -> Alcotest.(check int) "memory fallback" 1 p.Obs.Profile.runs
  | _ -> Alcotest.fail "load must serve the in-memory profile");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)

let checkpoint_write_two ~io dir =
  let w = Workloads.Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  let vmm = Monitor.create mem in
  let ck = Checkpoint.attach ~dir ~every:1 ~io ~workload:w.name vmm in
  Ppc.Mem.store32 vmm.mem (Wl.scratch_base + 0x40) 0xBEEF;
  ignore (Checkpoint.write ck ~pc:0x1000);
  Ppc.Mem.store32 vmm.mem (Wl.scratch_base + 0x44) 0xF00D;
  ignore (Checkpoint.write ck ~pc:0x1004);
  vmm

let test_checkpoint_crash_points () =
  let steps =
    let dir = fresh_dir () in
    let io, inj = Fsio.faulty Fsio.fault_quiet in
    ignore (checkpoint_write_two ~io dir);
    rm_rf dir;
    Fsio.steps inj
  in
  for crash_at = 0 to steps - 1 do
    let dir = fresh_dir () in
    let io, _ =
      Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
    in
    (match checkpoint_write_two ~io dir with
    | _ -> Alcotest.failf "crash point %d never fired" crash_at
    | exception Fsio.Crash _ -> ());
    (* the loader restores from the longest valid prefix; it must never
       raise, whatever the crash left behind *)
    (match Checkpoint.load ~dir () with
    | None | Some _ -> ());
    rm_rf dir
  done

let test_checkpoint_fault_is_a_strike () =
  let dir = fresh_dir () in
  let io, _ = Fsio.faulty { Fsio.fault_quiet with enospc_rate = 1.0 } in
  let w = Workloads.Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  let vmm = Monitor.create mem in
  let events = ref [] in
  vmm.event_hook <- Some (fun ev -> events := ev :: !events);
  let ck = Checkpoint.attach ~dir ~every:1 ~io ~workload:w.name vmm in
  Ppc.Mem.store32 vmm.mem (Wl.scratch_base + 0x40) 0xBEEF;
  Alcotest.(check int) "faulted write reports 0 bytes" 0
    (Checkpoint.write ck ~pc:0x1000);
  Alcotest.(check int) "one storage strike" 1 vmm.stats.storage_faults;
  Alcotest.(check bool) "strike degrades the verdict" true
    (Vmm.Run.degraded vmm.stats);
  Alcotest.(check bool) "Storage_fault event emitted" true
    (List.exists
       (function Monitor.Storage_fault _ -> true | _ -> false)
       !events);
  Alcotest.(check (list string)) "no partial snapshot" []
    (listing dir |> List.filter (fun f -> Filename.check_suffix f ".dgck"));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let flight_dump ~io dir =
  let f = Flight.create ~capacity:16 ~dir ~io () in
  Flight.push f (Monitor.External_interrupt { cycle = 1 });
  Flight.push f (Monitor.External_interrupt { cycle = 2 });
  (f, Flight.dump f ~reason:"test")

let test_flight_crash_points () =
  let steps =
    let dir = fresh_dir () in
    let io, inj = Fsio.faulty Fsio.fault_quiet in
    ignore (flight_dump ~io dir);
    rm_rf dir;
    Fsio.steps inj
  in
  for crash_at = 0 to steps - 1 do
    let dir = fresh_dir () in
    let io, _ =
      Fsio.faulty { Fsio.fault_quiet with crash_at = Some crash_at }
    in
    (match flight_dump ~io dir with
    | _ -> Alcotest.failf "crash point %d never fired" crash_at
    | exception Fsio.Crash _ -> ());
    (* whatever the crash left, every surviving dump is whole JSON *)
    let report = Fsck.crash dir in
    Alcotest.(check int)
      (Printf.sprintf "crash %d leaves no torn dump" crash_at)
      0
      (List.length report.Fsck.r_torn);
    rm_rf dir
  done

let test_flight_parks_on_fault () =
  let dir = fresh_dir () in
  let io, _ = Fsio.faulty { Fsio.fault_quiet with eio_write_rate = 1.0 } in
  let f, path = flight_dump ~io dir in
  Alcotest.(check bool) "dump reports failure" true (path = None);
  Alcotest.(check bool) "fault counted" true (Flight.io_degraded f > 0);
  Alcotest.(check int) "dump parked in memory" 1
    (List.length (Flight.pending_dumps f));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)

let test_fsck_repairs_torn_entry () =
  let dir = fresh_dir () in
  let key = tcache_persist ~io:Fsio.real dir in
  let path = Filename.concat dir (key ^ ".dtc") in
  let original = In_channel.with_open_bin path In_channel.input_all in
  (* tear the entry by hand, and leave a dead writer's temp file *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub original 0 (String.length original / 2)));
  Out_channel.with_open_bin
    (Filename.concat dir ".commit-0-0.tmp")
    (fun oc -> Out_channel.output_string oc "dead writer");
  let before = Fsck.tcache dir in
  Alcotest.(check int) "tear reported" 1 (List.length before.Fsck.r_torn);
  Alcotest.(check int) "orphan reported" 1 (List.length before.Fsck.r_orphans);
  Alcotest.(check bool) "not clean before repair" false (Fsck.clean before);
  let repaired = Fsck.tcache ~repair:true dir in
  Alcotest.(check bool) "repair resolves everything" true
    (Fsck.clean repaired);
  let after = Fsck.tcache dir in
  Alcotest.(check int) "no torn entries remain" 0
    (List.length after.Fsck.r_torn);
  Alcotest.(check int) "no orphans remain" 0 (List.length after.Fsck.r_orphans);
  Alcotest.(check int) "the corpse is quarantined" 1 after.Fsck.r_quarantined;
  rm_rf dir

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fsio"
    [ ( "commit",
        [ Alcotest.test_case "crash-point enumeration" `Quick
            test_commit_crash_points;
          qcheck prop_commit_crash;
          Alcotest.test_case "fault removes temp" `Quick
            test_commit_fault_cleans_temp;
          Alcotest.test_case "readonly mount" `Quick test_commit_readonly ] );
      ( "tcache",
        [ Alcotest.test_case "crash-point enumeration" `Quick
            test_tcache_crash_points;
          Alcotest.test_case "ENOSPC mid-install" `Quick
            test_tcache_enospc_no_partial;
          Alcotest.test_case "EIO probe degrades" `Quick
            test_tcache_eio_probe_degrades ] );
      ( "pstore",
        [ Alcotest.test_case "crash-point enumeration" `Quick
            test_pstore_crash_points;
          Alcotest.test_case "ENOSPC degrades to memory" `Quick
            test_pstore_enospc_degrades ] );
      ( "checkpoint",
        [ Alcotest.test_case "crash-point enumeration" `Quick
            test_checkpoint_crash_points;
          Alcotest.test_case "storage fault is a strike" `Quick
            test_checkpoint_fault_is_a_strike ] );
      ( "flight",
        [ Alcotest.test_case "crash-point enumeration" `Quick
            test_flight_crash_points;
          Alcotest.test_case "parks dumps on fault" `Quick
            test_flight_parks_on_fault ] );
      ( "fsck",
        [ Alcotest.test_case "repairs a torn entry" `Quick
            test_fsck_repairs_torn_entry ] ) ]
