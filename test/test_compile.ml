(* The staged (closure-compiled) VLIW execution engine against the
   interpretive tree walker.

   Three layers of evidence that the two engines are the same machine:
   hand-built trees run through [Exec.run] and [Compile.exec_vliw] on
   identical states (outcome, rollback reason, accesses and final state
   compared field by field), a qcheck differential over random
   straight-line VLIWs, and whole-workload runs through [Vmm.Run.run] —
   which already verifies each engine bit-for-bit against the reference
   interpreter — compared engine against engine, plus seeded fuzz
   corpora (clean and full fault cocktail) where every page now runs
   under both engines. *)

open Vliw
module T = Tree
module C = Compile

let seq = ref 0

(* reset the op-sequence counter: equivalence checks build the same
   tree twice (once per engine) and must number ops identically *)
let mk () =
  seq := 0;
  T.create ~id:0 ~precise_entry:0x1000

let add tip op =
  incr seq;
  T.add_op tip !seq op

(* ------------------------------------------------------------------ *)
(* Outcome comparison                                                  *)

(* Both engines' results folded into one comparable shape.  The staged
   engine reports its exit as a [C.cexit]; map it back to the tree form
   it was compiled from. *)
let exit_of_cexit : C.cexit -> T.exit = function
  | C.Cnext cv -> T.Next cv.c_id
  | C.Cnext_id id -> T.Next id
  | C.Conpage l -> T.OnPage l.l_off
  | C.Coffpage a -> T.OffPage a
  | C.Cindirect (l, k) -> T.Indirect (l, k)
  | C.Ctrap tr -> T.Trap tr

type outcome =
  | ODone of T.exit * int * Exec.access list  (** exit, nops, accesses *)
  | ORoll of Exec.reason
  | OError of string

(* Accesses are compared as sets keyed by [seq]: the staged engine
   reports them in program order, the interpretive one in the order its
   write list happened to accumulate. *)
let by_seq l =
  List.sort (fun (a : Exec.access) (b : Exec.access) -> compare a.seq b.seq) l

let run_interp ?(alias = true) st mem v =
  match Exec.run st mem ~alias_check:(fun _ -> alias) v with
  | Exec.Done { exit; accesses; nops } -> ODone (exit, nops, by_seq accesses)
  | Exec.Rollback r -> ORoll r
  | exception Exec.Error m -> OError m

let run_compiled ?(alias = true) cp cv =
  match C.exec_vliw cp cv ~alias_check:(fun _ -> alias) with
  | leaf ->
    ODone
      (exit_of_cexit leaf.C.exit, leaf.C.nops, by_seq (C.accesses cp.C.scratch))
  | exception Exec.Roll r -> ORoll r
  | exception Exec.Error m -> OError m

let outcome_str = function
  | ODone (_, nops, accs) ->
    Printf.sprintf "Done (nops %d, %d accesses)" nops (List.length accs)
  | ORoll Exec.Ralias -> "Rollback alias"
  | ORoll (Exec.Rfault { addr; write }) ->
    Printf.sprintf "Rollback fault %x write:%b" addr write
  | ORoll (Exec.Rtag _) -> "Rollback tag"
  | OError m -> "Error " ^ m

let outcome_t = Alcotest.testable (fun fmt o -> Fmt.string fmt (outcome_str o)) ( = )

(* Run one tree under both engines from identical initial states and
   require the same outcome and the same final machine, pool, memory,
   device and console state. *)
let check_equiv ?(setup = fun (_ : Vstate.t) (_ : Ppc.Mem.t) -> ()) ?(alias = true)
    name (build : unit -> T.t) =
  let fresh () =
    let st = Vstate.create (Ppc.Machine.create ()) in
    let mem = Ppc.Mem.create 0x2000 in
    setup st mem;
    (st, mem)
  in
  let ist, imem = fresh () in
  let oi = run_interp ~alias ist imem (build ()) in
  let cst, cmem = fresh () in
  let cp = C.stage ~st:cst ~mem:cmem ~scratch:(C.create_scratch ()) [| build () |] in
  let oc = run_compiled ~alias cp (C.get cp 0) in
  Alcotest.check outcome_t (name ^ ": outcome") oi oc;
  Alcotest.(check bool)
    (name ^ ": architected state")
    true
    (Ppc.Machine.equal ist.m cst.m);
  Alcotest.(check bool) (name ^ ": pool") true (ist.hi = cst.hi && ist.ext = cst.ext);
  Alcotest.(check bool)
    (name ^ ": cr pool")
    true
    (ist.crhi = cst.crhi && ist.tags = cst.tags && ist.crtags = cst.crtags);
  Alcotest.(check bool) (name ^ ": memory") true (Bytes.equal imem.bytes cmem.bytes);
  Alcotest.(check int) (name ^ ": device seq") imem.seq cmem.seq;
  Alcotest.(check string)
    (name ^ ": console")
    (Ppc.Mem.output imem) (Ppc.Mem.output cmem)

(* ------------------------------------------------------------------ *)
(* Hand-built trees                                                    *)

let test_parallel_swap () =
  check_equiv "swap" (fun () ->
      let v = mk () in
      add v.root (Op.BinI { op = IAdd; rt = 1; ra = 2; imm = 0; spec = false });
      add v.root (Op.BinI { op = IAdd; rt = 2; ra = 1; imm = 0; spec = false });
      T.close v.root (T.OffPage 0);
      v)
    ~setup:(fun st _ ->
      st.m.gpr.(1) <- 111;
      st.m.gpr.(2) <- 222)

let test_branch_path () =
  (* both senses of a compiled branch select the same leaf as the walker *)
  List.iter
    (fun cr0 ->
      check_equiv (Printf.sprintf "branch cr0=%x" cr0) (fun () ->
          let v = mk () in
          add v.root (Op.BinI { op = IAdd; rt = 3; ra = Op.zero; imm = 7; spec = false });
          let t, f = T.split v.root { bit = 2; sense = true } in
          add t (Op.BinI { op = IAdd; rt = 4; ra = Op.zero; imm = 1; spec = false });
          T.close t (T.OffPage 0x2000);
          add f (Op.BinI { op = IAdd; rt = 4; ra = Op.zero; imm = 2; spec = false });
          T.close f (T.OnPage 0x40);
          v)
        ~setup:(fun st _ -> Ppc.Machine.set_crf st.m 0 cr0))
    [ 0x0; 0x2; 0xF ]

let test_fault_rollback () =
  check_equiv "nonspec faulting load" (fun () ->
      let v = mk () in
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 1; base = Op.zero;
                     off = OImm 0x10_0000; spec = false; passed = false });
      T.close v.root (T.Next 1);
      v)

let test_store_fault_rollback () =
  check_equiv "out-of-bounds store" (fun () ->
      let v = mk () in
      add v.root (Op.StoreOp { w = Word; rs = 1; base = Op.zero; off = OImm 0x10_0000 });
      T.close v.root (T.Next 1);
      v)

let test_spec_load_tags () =
  (* speculative faulting load tags instead of rolling back; consuming
     the tag non-speculatively rolls back in both engines *)
  check_equiv "speculative faulting load" (fun () ->
      let v = mk () in
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 40; base = Op.zero;
                     off = OImm 0x10_0000; spec = true; passed = false });
      add v.root (Op.BinI { op = IAdd; rt = 1; ra = 40; imm = 0; spec = false });
      T.close v.root (T.Next 1);
      v)

let test_tagged_branch () =
  check_equiv "branch on tagged condition" (fun () ->
      let v = mk () in
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 40; base = Op.zero;
                     off = OImm 0x10_0000; spec = true; passed = false });
      add v.root (Op.CmpIOp { signed = true; crt = 9; ra = 40; imm = 0; spec = true });
      T.close v.root (T.Next 1);
      v);
  (* consuming VLIW: test the pool CR written above *)
  let build () =
    let v = mk () in
    let t, f = T.split v.root { bit = (9 * 4) + 2; sense = true } in
    T.close t (T.OffPage 0);
    T.close f (T.OffPage 4);
    v
  in
  let setup (st : Vstate.t) _ = Vstate.set_cr_tag st 9 (Vstate.Tfault 0x10_0000) in
  check_equiv "consume tagged CR" build ~setup

let test_mmio_deferred () =
  (* a non-speculative MMIO load defers the device read to apply: the
     sequence register ticks exactly once, in both engines *)
  check_equiv "mmio seq load" (fun () ->
      let v = mk () in
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 1; base = Op.zero;
                     off = OImm Ppc.Mem.mmio_seq; spec = false; passed = false });
      T.close v.root (T.Next 1);
      v)

let test_mmio_rolled_back () =
  (* ... and when a later op faults, the device is never touched *)
  check_equiv "mmio load + fault" (fun () ->
      let v = mk () in
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 1; base = Op.zero;
                     off = OImm Ppc.Mem.mmio_seq; spec = false; passed = false });
      add v.root
        (Op.LoadOp { w = Word; alg = false; rt = 2; base = Op.zero;
                     off = OImm 0x10_0000; spec = false; passed = false });
      T.close v.root (T.Next 1);
      v)

let test_alias_veto () =
  check_equiv "alias veto" ~alias:false (fun () ->
      let v = mk () in
      add v.root (Op.StoreOp { w = Word; rs = 1; base = Op.zero; off = OImm 0x100 });
      T.close v.root (T.Next 1);
      v)

let test_open_tip () =
  check_equiv "open tip" (fun () ->
      let v = mk () in
      add v.root (Op.BinI { op = IAdd; rt = 1; ra = Op.zero; imm = 5; spec = false });
      v)

let test_corrupt_loc () =
  (* a corrupted operand location surfaces as the same typed Error *)
  check_equiv "corrupt source loc" (fun () ->
      let v = mk () in
      add v.root (Op.BinI { op = IAdd; rt = 1; ra = 77; imm = 0; spec = false });
      T.close v.root (T.Next 1);
      v)

let test_carry_chain () =
  check_equiv "carry chain" (fun () ->
      let v = mk () in
      add v.root
        (Op.Bin { op = Addc; rt = 3; ra = 1; rb = 2; ca = Op.ca_loc; spec = false });
      add v.root
        (Op.Bin { op = Adde; rt = 4; ra = 1; rb = 2; ca = Op.ca_loc; spec = false });
      T.close v.root (T.Next 1);
      v)
    ~setup:(fun st _ ->
      st.m.gpr.(1) <- 0xFFFF_FFFF;
      st.m.gpr.(2) <- 2;
      st.m.xer_ca <- true)

(* ------------------------------------------------------------------ *)
(* qcheck differential: random straight-line VLIWs                     *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 10)
      (frequency
         [ (4,
            map3
              (fun rt ra imm -> Op.BinI { op = IAdd; rt; ra; imm; spec = false })
              (int_range 0 31) (int_range 0 31) (int_range (-100) 100));
           (2,
            map3
              (fun rt ra rb ->
                Op.Bin { op = Add; rt; ra; rb; ca = Op.ca_loc; spec = false })
              (int_range 0 31) (int_range 0 31) (int_range 0 31));
           (2,
            map2
              (fun rt off ->
                Op.LoadOp { w = Word; alg = false; rt; base = Op.zero;
                            off = OImm (off * 4); spec = false; passed = false })
              (int_range 0 31) (int_range 0 100));
           (1,
            map2
              (fun rt off ->
                Op.LoadOp { w = Word; alg = false; rt = 32 + rt; base = Op.zero;
                            off = OImm (0x10_0000 + (off * 4)); spec = true;
                            passed = false })
              (int_range 0 8) (int_range 0 100));
           (2,
            map2
              (fun rs off ->
                Op.StoreOp { w = Word; rs; base = Op.zero; off = OImm (off * 4) })
              (int_range 0 31) (int_range 0 100));
           (1,
            map2
              (fun crt ra -> Op.CmpIOp { signed = true; crt; ra; imm = 0; spec = false })
              (int_range 0 7) (int_range 0 31)) ]))

let prop_differential =
  QCheck.Test.make ~name:"random VLIW: staged = interpretive" ~count:500
    (QCheck.make gen_ops
       ~print:(fun ops -> String.concat "; " (List.map Op.to_string ops)))
    (fun ops ->
      let build () =
        let v = mk () in
        List.iter (add v.root) ops;
        T.close v.root (T.Next 1);
        v
      in
      let fresh () =
        let st = Vstate.create (Ppc.Machine.create ()) in
        let mem = Ppc.Mem.create 0x2000 in
        for r = 0 to 31 do
          st.m.gpr.(r) <- r * 12345
        done;
        (st, mem)
      in
      let ist, imem = fresh () in
      let oi = run_interp ist imem (build ()) in
      let cst, cmem = fresh () in
      let cp =
        C.stage ~st:cst ~mem:cmem ~scratch:(C.create_scratch ()) [| build () |]
      in
      let oc = run_compiled cp (C.get cp 0) in
      let ok =
        oi = oc
        && Ppc.Machine.equal ist.m cst.m
        && ist.hi = cst.hi && ist.tags = cst.tags
        && Bytes.equal imem.bytes cmem.bytes
      in
      if not ok then begin
        (* counterexample detail beyond the shrunk op list *)
        Printf.eprintf "diverged: %s vs %s\n" (outcome_str oi) (outcome_str oc);
        Printf.eprintf "machine_eq %b hi %b tags %b mem %b\n"
          (Ppc.Machine.equal ist.m cst.m) (ist.hi = cst.hi) (ist.tags = cst.tags)
          (Bytes.equal imem.bytes cmem.bytes);
        (match (oi, oc) with
        | ODone (e1, n1, a1), ODone (e2, n2, a2) ->
          Printf.eprintf "exits_eq %b nops %d/%d accs %d/%d\n" (e1 = e2) n1
            n2 (List.length a1) (List.length a2);
          List.iter2
            (fun (x : Exec.access) (y : Exec.access) ->
              Printf.eprintf
                "  acc seq %d/%d addr %x/%x bytes %d/%d passed %b/%b store %b/%b\n"
                x.seq y.seq x.addr y.addr x.bytes y.bytes x.passed_store
                y.passed_store x.store y.store)
            a1 a2
        | _ -> ())
      end;
      ok)

(* ------------------------------------------------------------------ *)
(* Direct linking                                                      *)

let test_direct_link_patched () =
  (* in-range Next exits become direct closure references at staging *)
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  let v0 = mk () in
  T.close v0.root (T.Next 1);
  let v1 = T.create ~id:1 ~precise_entry:0x1004 in
  T.close v1.root (T.Next 99);
  let cp = C.stage ~st ~mem ~scratch:(C.create_scratch ()) [| v0; v1 |] in
  let leaf0 = C.exec_vliw cp (C.get cp 0) ~alias_check:(fun _ -> true) in
  (match leaf0.C.exit with
  | C.Cnext cv -> Alcotest.(check int) "linked to tree 1" 1 cv.C.c_id
  | _ -> Alcotest.fail "expected a direct-linked Next");
  let leaf1 = C.exec_vliw cp (C.get cp 1) ~alias_check:(fun _ -> true) in
  match leaf1.C.exit with
  | C.Cnext_id 99 -> ()
  | _ -> Alcotest.fail "out-of-range Next must stay unlinked"

let test_onpage_memo () =
  let st = Vstate.create (Ppc.Machine.create ()) in
  let mem = Ppc.Mem.create 0x1000 in
  let v = mk () in
  T.close v.root (T.OnPage 0x40);
  let cp = C.stage ~st ~mem ~scratch:(C.create_scratch ()) [| v |] in
  let leaf = C.exec_vliw cp (C.get cp 0) ~alias_check:(fun _ -> true) in
  match leaf.C.exit with
  | C.Conpage l ->
    Alcotest.(check int) "offset kept" 0x40 l.C.l_off;
    Alcotest.(check int) "starts unresolved" (-1) l.C.l_entry;
    (* the monitor memoizes the resolved id here *)
    l.C.l_entry <- 3;
    let leaf' = C.exec_vliw cp (C.get cp 0) ~alias_check:(fun _ -> true) in
    (match leaf'.C.exit with
    | C.Conpage l' -> Alcotest.(check int) "memo survives" 3 l'.C.l_entry
    | _ -> Alcotest.fail "exit changed shape")
  | _ -> Alcotest.fail "expected OnPage"

(* ------------------------------------------------------------------ *)
(* Whole workloads: engine vs engine through the verified harness      *)

let test_registry_differential () =
  List.iter
    (fun (w : Workloads.Wl.t) ->
      (* each run is itself verified bit-for-bit against the reference
         interpreter by Run.run; comparing the two engines' dynamic
         statistics on top pins them to the same execution path *)
      let rt = Vmm.Run.run ~engine:Vmm.Monitor.Tree w in
      let rc = Vmm.Run.run ~engine:Vmm.Monitor.Compiled w in
      let ci name f = Alcotest.(check int) (w.name ^ ": " ^ name) (f rt) (f rc) in
      Alcotest.(check bool)
        (w.name ^ ": exit code") true (rt.exit_code = rc.exit_code);
      ci "vliws" (fun r -> r.Vmm.Run.vliws);
      ci "interp insns" (fun r -> r.Vmm.Run.interp_insns);
      ci "loads" (fun r -> r.Vmm.Run.loads);
      ci "stores" (fun r -> r.Vmm.Run.stores);
      ci "rollbacks" (fun r -> r.Vmm.Run.stats.rollbacks);
      ci "onpage jumps" (fun r -> r.Vmm.Run.stats.onpage_jumps);
      Alcotest.(check bool)
        (w.name ^ ": tree engine stages nothing") true
        (rt.stats.compiled_pages = 0);
      Alcotest.(check bool)
        (w.name ^ ": compiled engine staged pages") true
        (rc.stats.compiled_pages > 0))
    Workloads.Registry.all

let test_fuzz_clean () =
  (* run_slots executes every page under both engines *)
  let s = Fault.Fuzz.fuzz ~seed:7 ~pages:40 () in
  Alcotest.(check int) "clean corpus mismatches" 0 s.mismatched

let test_fuzz_cocktail () =
  let s = Fault.Fuzz.fuzz ~faults:Fault.Inject.cocktail ~seed:9 ~pages:30 () in
  Alcotest.(check int) "cocktail corpus mismatches" 0 s.mismatched

let () =
  Alcotest.run "compile"
    [ ( "equivalence",
        [ Alcotest.test_case "parallel swap" `Quick test_parallel_swap;
          Alcotest.test_case "branch paths" `Quick test_branch_path;
          Alcotest.test_case "fault rollback" `Quick test_fault_rollback;
          Alcotest.test_case "store fault rollback" `Quick
            test_store_fault_rollback;
          Alcotest.test_case "speculative load tags" `Quick test_spec_load_tags;
          Alcotest.test_case "tagged branch" `Quick test_tagged_branch;
          Alcotest.test_case "mmio deferred" `Quick test_mmio_deferred;
          Alcotest.test_case "mmio rolled back" `Quick test_mmio_rolled_back;
          Alcotest.test_case "alias veto" `Quick test_alias_veto;
          Alcotest.test_case "open tip" `Quick test_open_tip;
          Alcotest.test_case "corrupt loc" `Quick test_corrupt_loc;
          Alcotest.test_case "carry chain" `Quick test_carry_chain;
          QCheck_alcotest.to_alcotest prop_differential ] );
      ( "linking",
        [ Alcotest.test_case "Next direct-linked" `Quick test_direct_link_patched;
          Alcotest.test_case "OnPage memoized" `Quick test_onpage_memo ] );
      ( "engines",
        [ Alcotest.test_case "registry differential" `Slow
            test_registry_differential;
          Alcotest.test_case "fuzz corpus, clean" `Slow test_fuzz_clean;
          Alcotest.test_case "fuzz corpus, cocktail" `Slow test_fuzz_cocktail ] )
    ]
