(* Tests for the supervision subsystem (lib/guard): deterministic
   checkpoint/restore, graceful SIGTERM shutdown, watchdog deadlines,
   and sampled shadow verification. *)

module Run = Vmm.Run
module Monitor = Vmm.Monitor
module Checkpoint = Guard.Checkpoint
module Supervise = Guard.Supervise
module Watchdog = Guard.Watchdog
module Shadow = Guard.Shadow
module Wl = Workloads.Wl

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)

let rm_rf dir =
  let rec go path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  go dir

let fresh_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisy-guard-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Tcache.Store.mkdir_p dir;
  dir

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore                                                  *)

(* Cut a run short with a small fuel budget — the in-process stand-in
   for kill -9 — then resume from the checkpoint directory and let
   [Run.run]'s differential verification prove the completed execution
   is bit-identical to an uninterrupted one: same exit code, same
   architected state, same memory, same console. *)
let test_resume_bit_identical () =
  let dir = fresh_dir "resume" in
  let w = Workloads.Registry.by_name "wc" in
  let mem, entry = Wl.instantiate w in
  let vmm = Monitor.create mem in
  ignore
    (Supervise.attach ~checkpoint_dir:dir ~checkpoint_every:2_000
       ~workload:w.name vmm);
  let code = Monitor.run vmm ~entry ~fuel:20_000 in
  Alcotest.(check (option int)) "cut short mid-run" None code;
  Alcotest.(check bool) "snapshots written" true
    (vmm.stats.checkpoints_written > 0);
  let l = Option.get (Checkpoint.load ~dir ()) in
  Alcotest.(check int) "nothing dropped" 0 l.dropped;
  Alcotest.(check string) "workload recorded" "wc" l.last.s_workload;
  let r =
    Run.run w
      ~prepare:(fun vmm ->
        let pc, consumed = Checkpoint.restore_into l vmm in
        Some (pc, max 1 ((w.fuel * 2) - consumed)))
  in
  Alcotest.(check (option int)) "golden exit code" (Some 4691) r.exit_code;
  Alcotest.(check bool) "resumed run was clean" false (Run.degraded r.stats);
  rm_rf dir

(* The degradation ladder's verdict must survive a round-trip: a run
   that was degraded before the crash must still report exit 4 after
   resuming, even if nothing fails again. *)
let test_degraded_state_survives () =
  let dir = fresh_dir "degraded" in
  let w = Workloads.Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  let vmm = Monitor.create mem in
  vmm.stats.quarantines <- 3;
  vmm.stats.interp_pinned <- 1;
  vmm.stats.deadline_hits <- 2;
  vmm.stats.vliws <- 1000;
  vmm.stats.interp_insns <- 500;
  Hashtbl.replace vmm.page_health 0x1000
    { Monitor.failures = 5; backoff_until = 1234; pinned_interp = true };
  let ck = Checkpoint.attach ~dir ~every:1 ~workload:w.name vmm in
  Ppc.Mem.store32 vmm.mem (Wl.scratch_base + 0x40) 0xBEEF;
  ignore (Checkpoint.write ck ~pc:0x1058);
  let l = Option.get (Checkpoint.load ~dir ()) in
  let mem2, _ = Wl.instantiate w in
  let vmm2 = Monitor.create mem2 in
  let pc, consumed = Checkpoint.restore_into l vmm2 in
  Alcotest.(check int) "resume pc" 0x1058 pc;
  Alcotest.(check int) "consumed cycles" 1500 consumed;
  Alcotest.(check int) "quarantines" 3 vmm2.stats.quarantines;
  Alcotest.(check int) "pins" 1 vmm2.stats.interp_pinned;
  Alcotest.(check int) "deadline hits" 2 vmm2.stats.deadline_hits;
  Alcotest.(check bool) "still degraded" true (Run.degraded vmm2.stats);
  (match Hashtbl.find_opt vmm2.page_health 0x1000 with
  | Some h ->
    Alcotest.(check int) "failures" 5 h.Monitor.failures;
    Alcotest.(check int) "backoff" 1234 h.backoff_until;
    Alcotest.(check bool) "pin survives" true h.pinned_interp
  | None -> Alcotest.fail "page health lost");
  Alcotest.(check int) "dirty memory restored" 0xBEEF
    (Ppc.Mem.load32 vmm2.mem (Wl.scratch_base + 0x40));
  rm_rf dir

(* A corrupt snapshot invalidates itself and everything after it (later
   deltas assume the earlier image), so [load] restores the longest
   valid prefix. *)
let test_longest_valid_prefix () =
  let dir = fresh_dir "prefix" in
  let w = Workloads.Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  let vmm = Monitor.create mem in
  let ck = Checkpoint.attach ~dir ~every:1 ~workload:w.name vmm in
  let addr i = Wl.scratch_base + (i * 8) in
  List.iter
    (fun i ->
      Ppc.Mem.store32 vmm.mem (addr i) (0x100 + i);
      ignore (Checkpoint.write ck ~pc:0x1000))
    [ 0; 1; 2 ];
  let flip_byte path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let b = Bytes.of_string s in
    let i = Bytes.length b - 1 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  (* corrupt the middle snapshot: only ck-000000 survives *)
  flip_byte (Filename.concat dir "ck-000001.dgck");
  let l = Option.get (Checkpoint.load ~dir ()) in
  Alcotest.(check int) "valid prefix" 1 l.valid;
  Alcotest.(check int) "rest dropped" 2 l.dropped;
  let mem2, _ = Wl.instantiate w in
  let vmm2 = Monitor.create mem2 in
  ignore (Checkpoint.restore_into l vmm2);
  Alcotest.(check int) "first delta applied" 0x100
    (Ppc.Mem.load32 vmm2.mem (addr 0));
  Alcotest.(check int) "later deltas not applied" 0
    (Ppc.Mem.load32 vmm2.mem (addr 1));
  (* corrupt only the last: the first two restore *)
  flip_byte (Filename.concat dir "ck-000002.dgck");
  Sys.remove (Filename.concat dir "ck-000001.dgck");
  ignore (Checkpoint.write ck ~pc:0x1000);
  (* directory now: valid 000000, (rewritten valid 000003), corrupt 000002 —
     reload sees 000000 valid, then 000002 invalid, drops the rest *)
  let l = Option.get (Checkpoint.load ~dir ()) in
  Alcotest.(check int) "stops at first bad file" 1 l.valid;
  rm_rf dir;
  Alcotest.(check bool) "missing dir loads as empty" true
    (Checkpoint.load ~dir () = None)

(* SIGTERM discipline, without the signal: the flag is polled at commit
   boundaries only, a final snapshot is written, and {!Terminated}
   unwinds.  Resuming from that snapshot completes the run with the
   golden exit code. *)
let test_graceful_termination_and_resume () =
  let dir = fresh_dir "sigterm" in
  let w = Workloads.Registry.by_name "wc" in
  let mem, entry = Wl.instantiate w in
  let vmm = Monitor.create mem in
  ignore
    (Supervise.attach ~checkpoint_dir:dir ~checkpoint_every:max_int
       ~workload:w.name vmm);
  Supervise.request_termination ();
  (match Monitor.run vmm ~entry ~fuel:(w.fuel * 2) with
  | exception Supervise.Terminated -> ()
  | _ -> Alcotest.fail "run was not terminated");
  Supervise.terminate := false;
  Alcotest.(check int) "final snapshot written" 1
    vmm.stats.checkpoints_written;
  let l = Option.get (Checkpoint.load ~dir ()) in
  let r =
    Run.run w
      ~prepare:(fun vmm ->
        let pc, consumed = Checkpoint.restore_into l vmm in
        Some (pc, max 1 ((w.fuel * 2) - consumed)))
  in
  Alcotest.(check (option int)) "completes after resume" (Some 4691)
    r.exit_code;
  rm_rf dir

(* Resuming under different translation parameters is refused: the run
   would no longer be comparable to the one that wrote the snapshot. *)
let test_incompatible_params_refused () =
  let dir = fresh_dir "incompat" in
  let w = Workloads.Registry.by_name "wc" in
  let mem, _ = Wl.instantiate w in
  let vmm = Monitor.create mem in
  let ck = Checkpoint.attach ~dir ~every:1 ~workload:w.name vmm in
  ignore (Checkpoint.write ck ~pc:0x1000);
  let l = Option.get (Checkpoint.load ~dir ()) in
  let mem2, _ = Wl.instantiate w in
  let vmm2 =
    Monitor.create
      ~params:{ Translator.Params.default with page_size = 512 }
      mem2
  in
  (match Checkpoint.restore_into l vmm2 with
  | exception Checkpoint.Incompatible _ -> ()
  | _ -> Alcotest.fail "fingerprint mismatch not refused");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Watchdog deadlines                                                  *)

(* A translation budget every page overruns: the ladder quarantines
   each page, the run completes fully interpreted, and [Run.run]'s
   differential verification still passes — a deadline is a performance
   event, never a correctness one. *)
let test_translate_deadline_degrades () =
  let w = Workloads.Registry.by_name "wc" in
  let captured = ref None in
  let r =
    Run.run w
      ~instrument:(fun vmm ->
        captured := Some vmm;
        (* a negative budget makes every translation overrun,
           deterministically — zero would race the clock's granularity *)
        Watchdog.attach { Watchdog.none with translate_s = Some (-1.) } vmm)
  in
  let vmm = Option.get !captured in
  Alcotest.(check (option int)) "still correct" (Some 4691) r.exit_code;
  Alcotest.(check bool) "deadlines fired" true (vmm.stats.deadline_hits > 0);
  Alcotest.(check bool) "run degraded" true (Run.degraded r.stats);
  Alcotest.(check bool) "fell back to interpretation" true
    (vmm.stats.interp_insns > 0)

(* The runaway-loop detector: a branch-to-self revisits the same commit
   boundary forever with no interpretation in between.  The progress
   limit quarantines the page; the (genuinely infinite) loop then burns
   its fuel in the interpreter. *)
let spin_workload =
  { Wl.name = "spin"; description = "infinite loop (watchdog test)";
    build =
      (fun a ->
        Ppc.Asm.label a "main";
        Ppc.Asm.b a "main");
    init = (fun _ _ -> ()); mem_size = Wl.default_mem_size; fuel = 5_000 }

let test_progress_detector () =
  let mem, entry = Wl.instantiate spin_workload in
  let vmm = Monitor.create mem in
  Watchdog.attach { Watchdog.none with progress = Some 16 } vmm;
  let code = Monitor.run vmm ~entry ~fuel:10_000 in
  Alcotest.(check (option int)) "loop never exits" None code;
  Alcotest.(check bool) "runaway detected" true (vmm.stats.deadline_hits > 0);
  Alcotest.(check bool) "page quarantined" true (vmm.stats.quarantines > 0);
  Alcotest.(check bool) "loop continued by interpretation" true
    (vmm.stats.interp_insns > 0)

(* ------------------------------------------------------------------ *)
(* Sampled shadow verification                                         *)

(* A silently corrupted branch sense commits plausible state down the
   wrong path — no digest or datapath check can see it.  With shadow
   verification at 100% sampling the run must detect every divergence,
   write a reproducer, repair, and complete with the correct result
   via the ladder. *)
let test_shadow_catches_silent_faults () =
  let dir = fresh_dir "shadow" in
  let w = Workloads.Registry.by_name "wc" in
  let inject =
    Fault.Inject.create { Fault.Inject.quiet with seed = 7; silent_rate = 1.0 }
  in
  let captured = ref None in
  let r =
    Run.run w
      ~instrument:(fun vmm ->
        captured := Some vmm;
        Fault.Inject.attach inject vmm;
        ignore
          (Shadow.attach
             { Shadow.default with sample = 1.0; out_dir = Some dir }
             vmm))
  in
  let vmm = Option.get !captured in
  Alcotest.(check (option int)) "correct result despite corruption"
    (Some 4691) r.exit_code;
  Alcotest.(check bool) "faults were injected" true (inject.n_silent > 0);
  Alcotest.(check bool) "every live corruption caught" true
    (vmm.stats.shadow_divergences > 0);
  Alcotest.(check bool) "run degraded" true (Run.degraded r.stats);
  Alcotest.(check bool) "reproducer written" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".txt")
       (Sys.readdir dir));
  rm_rf dir

(* Without injected faults the shadow must stay silent: sampled replays
   verify and the run is not degraded. *)
let test_shadow_clean_run () =
  let w = Workloads.Registry.by_name "wc" in
  let captured = ref None in
  let r =
    Run.run w
      ~instrument:(fun vmm ->
        captured := Some vmm;
        ignore (Shadow.attach { Shadow.default with sample = 0.2 } vmm))
  in
  let vmm = Option.get !captured in
  Alcotest.(check (option int)) "clean result" (Some 4691) r.exit_code;
  Alcotest.(check bool) "packets were checked" true
    (vmm.stats.shadow_checked > 0);
  Alcotest.(check int) "no divergences" 0 vmm.stats.shadow_divergences;
  Alcotest.(check bool) "not degraded" false (Run.degraded r.stats)

(* Checkpointing and shadow verification compose: a degraded-by-shadow
   run cut short and resumed still reports its divergences. *)
let test_shadow_divergence_survives_checkpoint () =
  let dir = fresh_dir "shadow-ck" in
  let w = Workloads.Registry.by_name "wc" in
  let inject =
    Fault.Inject.create { Fault.Inject.quiet with seed = 7; silent_rate = 1.0 }
  in
  let mem, entry = Wl.instantiate w in
  let vmm = Monitor.create mem in
  Fault.Inject.attach inject vmm;
  ignore
    (Supervise.attach ~checkpoint_dir:dir ~checkpoint_every:2_000
       ~shadow:{ Shadow.default with sample = 1.0 } ~workload:w.name vmm);
  ignore (Monitor.run vmm ~entry ~fuel:50_000);
  Alcotest.(check bool) "divergences before the cut" true
    (vmm.stats.shadow_divergences > 0);
  let l = Option.get (Checkpoint.load ~dir ()) in
  let mem2, _ = Wl.instantiate w in
  let vmm2 = Monitor.create mem2 in
  ignore (Checkpoint.restore_into l vmm2);
  Alcotest.(check int) "divergence count survives"
    vmm.stats.shadow_divergences vmm2.stats.shadow_divergences;
  Alcotest.(check bool) "degraded verdict survives" true
    (Run.degraded vmm2.stats);
  rm_rf dir

let () =
  Alcotest.run "guard"
    [ ( "checkpoint",
        [ Alcotest.test_case "resume is bit-identical" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "degraded state survives" `Quick
            test_degraded_state_survives;
          Alcotest.test_case "longest valid prefix" `Quick
            test_longest_valid_prefix;
          Alcotest.test_case "graceful termination" `Quick
            test_graceful_termination_and_resume;
          Alcotest.test_case "incompatible params refused" `Quick
            test_incompatible_params_refused ] );
      ( "watchdog",
        [ Alcotest.test_case "translate deadline degrades" `Quick
            test_translate_deadline_degrades;
          Alcotest.test_case "progress detector" `Quick test_progress_detector ]
      );
      ( "shadow",
        [ Alcotest.test_case "catches silent faults" `Quick
            test_shadow_catches_silent_faults;
          Alcotest.test_case "clean run stays silent" `Quick
            test_shadow_clean_run;
          Alcotest.test_case "divergences survive checkpoint" `Quick
            test_shadow_divergence_survives_checkpoint ] ) ]
