(* Tests for the tier-2 promotion driver: an attached driver must
   promote hot regions without perturbing a single architected bit
   (Run.run diffs registers, memory and console against the reference
   interpreter), a store into a promoted member page must deopt back to
   tier-1 and still verify, a persisted region image must re-promote on
   warm start without recompiling, and a hot single page later absorbed
   into a cross-page SCC must be superseded by the wider image. *)

module Params = Translator.Params
module Run = Vmm.Run
module Monitor = Vmm.Monitor
module Tier = Obs.Tier

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "daisy_test_tier.%d.%d" (Unix.getpid ()) !n)
    in
    Tcache.Store.mkdir_p d;
    d

(* Synchronous, eager promotion: compiles run inline on the execution
   thread, so every test is deterministic. *)
let sync_cfg =
  { Tier.default with min_heat = 2_000; edge_threshold = 50; submit = None }

let run_with_tier ?cfg ?tcache_dir w =
  let captured = ref None in
  let r =
    Run.run ?tcache_dir
      ~instrument:(fun vmm -> captured := Some (vmm, Tier.attach ?cfg vmm))
      w
  in
  match !captured with
  | Some (vmm, t) ->
    Tier.finish t;
    (r, vmm, t)
  | None -> Alcotest.fail "instrument was never called"

(* --- promotion is architecturally invisible ------------------------- *)

let test_promotion_differential () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let r, vmm, t = run_with_tier ~cfg:sync_cfg w in
  Alcotest.(check (option int)) "exit code" (Some 1899) r.Run.exit_code;
  Alcotest.(check bool) "promoted" true (vmm.stats.tier2_promotions >= 1);
  Alcotest.(check bool) "region actually executed" true
    (vmm.stats.tier2_vliws > 0);
  Alcotest.(check bool) "driver installed it" true (t.Tier.installed >= 1);
  Alcotest.(check bool) "no deopt on a clean run" true
    (vmm.stats.tier2_deopts = 0)

(* The same property across every workload: promotion at aggressive
   thresholds must never change an observable result (Run.run raises
   Mismatch on any divergence). *)
let test_promotion_differential_all () =
  List.iter
    (fun w -> ignore (run_with_tier ~cfg:sync_cfg w))
    Workloads.Registry.all

(* --- self-modifying store in a member page deopts ------------------- *)

let test_selfmod_deopts () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let poked = ref false in
  let r =
    Run.run
      ~instrument:(fun vmm ->
        ignore (Tier.attach ~cfg:sync_cfg vmm);
        (* after the tier driver: fires at committed boundaries only,
           exactly like the fault injector's selfmod class *)
        let prev = vmm.Monitor.tick_hook in
        vmm.Monitor.tick_hook <-
          Some
            (fun ~pc ->
              (match prev with Some h -> h ~pc | None -> ());
              if not !poked then
                match Monitor.live_regions vmm with
                | r :: _ ->
                  let base = r.Monitor.r_members.(0) in
                  (* same-value store: pure code-invalidation signal *)
                  Ppc.Mem.store8 vmm.Monitor.mem base
                    (Ppc.Mem.load8 vmm.Monitor.mem base);
                  poked := true
                | [] -> ()))
      w
  in
  Alcotest.(check bool) "store landed" true !poked;
  Alcotest.(check (option int)) "still bit-exact" (Some 1899) r.Run.exit_code

let test_selfmod_deopt_counted () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let captured = ref None in
  let poked = ref false in
  let _ =
    Run.run
      ~instrument:(fun vmm ->
        captured := Some vmm;
        ignore (Tier.attach ~cfg:sync_cfg vmm);
        let prev = vmm.Monitor.tick_hook in
        vmm.Monitor.tick_hook <-
          Some
            (fun ~pc ->
              (match prev with Some h -> h ~pc | None -> ());
              if not !poked then
                match Monitor.live_regions vmm with
                | r :: _ ->
                  Ppc.Mem.store8 vmm.Monitor.mem r.Monitor.r_members.(0)
                    (Ppc.Mem.load8 vmm.Monitor.mem r.Monitor.r_members.(0));
                  poked := true
                | [] -> ()))
      w
  in
  match !captured with
  | None -> Alcotest.fail "no vmm"
  | Some vmm ->
    Alcotest.(check bool) "deopt recorded" true (vmm.stats.tier2_deopts >= 1)

(* --- warm start ------------------------------------------------------ *)

let test_warm_start_repromotes () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let dir = fresh_dir () in
  let _, vmm1, _ = run_with_tier ~cfg:sync_cfg ~tcache_dir:dir w in
  Alcotest.(check bool) "cold run promoted" true
    (vmm1.stats.tier2_promotions >= 1);
  (* the image must come from disk: installed (and counted as a cached
     promotion) at attach time, before a single VLIW has run *)
  let at_attach = ref (-1) in
  let r2 =
    Run.run ~tcache_dir:dir
      ~instrument:(fun vmm ->
        let t = Tier.attach ~cfg:sync_cfg vmm in
        at_attach := t.Tier.installed)
      w
  in
  Alcotest.(check (option int)) "warm exit code" (Some 1899) r2.Run.exit_code;
  Alcotest.(check bool) "installed at attach time" true (!at_attach >= 1)

(* A stale image must NOT re-promote: the region key is computed over
   the *current* member bytes, so flipping one byte before the warm
   start makes the lookup miss.  No execution needed — warm_start runs
   at attach time. *)
let test_warm_start_rejects_stale () =
  let w = Workloads.Registry.by_name "c_sieve" in
  let dir = fresh_dir () in
  let _, vmm1, _ = run_with_tier ~cfg:sync_cfg ~tcache_dir:dir w in
  let base =
    match Monitor.live_regions vmm1 with
    | r :: _ -> r.Monitor.r_members.(0)
    | [] -> Alcotest.fail "cold run left no live region"
  in
  Alcotest.(check bool) "region persisted" true
    (List.exists
       (fun (i : Tcache.Store.info) -> i.kind = `Region)
       (Tcache.Store.list_dir dir));
  (* pristine bytes: attach re-promotes without running anything *)
  let mem, _ = Workloads.Wl.instantiate w in
  let vmm = Monitor.create ~tcache_dir:dir mem in
  let t = Tier.attach ~cfg:sync_cfg vmm in
  Alcotest.(check bool) "pristine bytes re-promote" true (t.Tier.installed >= 1);
  (* one flipped byte in a member page: key misses, nothing installs *)
  let mem, _ = Workloads.Wl.instantiate w in
  Ppc.Mem.store8 mem base (Ppc.Mem.load8 mem base lxor 0xFF);
  let vmm = Monitor.create ~tcache_dir:dir mem in
  let t = Tier.attach ~cfg:sync_cfg vmm in
  Alcotest.(check int) "stale bytes do not re-promote" 0 t.Tier.installed

(* --- upgrade: a wider SCC supersedes a hot single page --------------- *)

let test_upgrade_absorbs_single () =
  let w = Workloads.Registry.by_name "compress" in
  (* huge edge threshold first would block the SCC; aggressive single
     promotion plus a reachable edge threshold reproduces the observed
     single-then-SCC sequence *)
  let cfg =
    { Tier.default with min_heat = 2_000; edge_threshold = 250;
      submit = None }
  in
  let captured = ref None in
  let r =
    Run.run
      ~instrument:(fun vmm -> captured := Some (vmm, Tier.attach ~cfg vmm))
      w
  in
  Alcotest.(check (option int)) "exit code" (Some 11415) r.Run.exit_code;
  match !captured with
  | None -> Alcotest.fail "no vmm"
  | Some (vmm, _) ->
    Alcotest.(check bool) "promoted more than once" true
      (vmm.stats.tier2_promotions >= 2);
    Alcotest.(check bool) "the narrow image was superseded" true
      (vmm.stats.tier2_deopts >= 1);
    let widest =
      List.fold_left
        (fun n (r : Monitor.region) -> max n (Array.length r.r_members))
        0
        (Monitor.live_regions vmm)
    in
    Alcotest.(check bool) "a multi-page region survives" true (widest >= 2)

let () =
  Alcotest.run "tier"
    [ ( "promotion",
        [ Alcotest.test_case "differential (c_sieve)" `Quick
            test_promotion_differential;
          Alcotest.test_case "differential (all workloads)" `Slow
            test_promotion_differential_all ] );
      ( "deopt",
        [ Alcotest.test_case "selfmod stays bit-exact" `Quick
            test_selfmod_deopts;
          Alcotest.test_case "selfmod counted" `Quick
            test_selfmod_deopt_counted ] );
      ( "warm",
        [ Alcotest.test_case "repromotes from cache" `Quick
            test_warm_start_repromotes;
          Alcotest.test_case "content-keyed" `Quick
            test_warm_start_rejects_stale ] );
      ( "upgrade",
        [ Alcotest.test_case "SCC absorbs single" `Quick
            test_upgrade_absorbs_single ] ) ]
