(* Tests for the observability layer: JSON round-trips, the metrics
   registry, the trace ring, per-page hotness accounting, and — most
   importantly — that attaching telemetry to a run changes nothing
   observable while its numbers agree exactly with the VMM's own. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* --- JSON --------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\te\r \x01");
        ("neg", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("t", Json.Bool true);
        ("nil", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Str "x"; Json.Obj [] ]) ]
  in
  let v' = Json.parse (Json.to_string v) in
  Alcotest.(check bool) "round-trips" true (v = v')

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | _ -> Alcotest.failf "parsed %S" s
    | exception Json.Parse_error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated"

(* --- Metrics ------------------------------------------------------ *)

let test_metrics_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m "widgets" in
  Metrics.Counter.add c 42;
  Metrics.Counter.inc c;
  let g = Metrics.gauge m "ratio" in
  Metrics.Gauge.set g 3.25;
  let h = Metrics.histogram m ~buckets:[ 1.; 4.; 16. ] "sizes" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 3.; 3.; 10.; 100. ];
  let j = Json.parse (Json.to_string (Metrics.to_json m)) in
  let counter =
    Option.bind (Json.member "counters" j) (Json.member "widgets")
  in
  Alcotest.(check (option int)) "counter" (Some 43)
    (Option.bind counter Json.to_int);
  let gauge = Option.bind (Json.member "gauges" j) (Json.member "ratio") in
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 3.25)
    (Option.bind gauge Json.to_float);
  let hist = Option.bind (Json.member "histograms" j) (Json.member "sizes") in
  let buckets =
    Option.bind (Option.bind hist (Json.member "buckets")) Json.to_list
    |> Option.value ~default:[]
  in
  let counts =
    List.filter_map
      (fun b -> Option.bind (Json.member "count" b) Json.to_int)
      buckets
  in
  Alcotest.(check (list int)) "bucket counts" [ 1; 2; 1; 1 ] counts;
  Alcotest.(check (option (float 1e-9))) "sum" (Some 116.5)
    (Option.bind (Option.bind hist (Json.member "sum")) Json.to_float);
  Alcotest.(check (option int)) "count" (Some 5)
    (Option.bind (Option.bind hist (Json.member "count")) Json.to_int)

let test_metrics_duplicate () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Metrics: duplicate metric \"x\"") (fun () ->
      ignore (Metrics.gauge m "x"))

(* --- Trace ring --------------------------------------------------- *)

let test_ring_bound () =
  let t = Trace.create ~capacity:4 () in
  for ts = 1 to 10 do
    Trace.emit t ~ts ~name:"e" ~ph:Trace.I [ ("n", Json.Int ts) ]
  done;
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check int) "total" 10 (Trace.total t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let retained = List.map (fun (e : Trace.ev) -> e.ts) (Trace.to_list t) in
  Alcotest.(check (list int)) "keeps the last events" [ 7; 8; 9; 10 ] retained;
  let j = Json.parse (Json.to_string (Trace.to_chrome t)) in
  let evs =
    Option.bind (Json.member "traceEvents" j) Json.to_list
    |> Option.value ~default:[]
  in
  Alcotest.(check int) "chrome export has the retained events" 4
    (List.length evs)

(* --- Runs with telemetry attached --------------------------------- *)

let run_traced ?metrics ?hotness name =
  let tracer = Trace.create ~capacity:(1 lsl 20) () in
  let bridge = Obs.Bridge.create ~tracer ?metrics ?hotness () in
  let w = Workloads.Registry.by_name name in
  let r =
    Vmm.Run.run ~instrument:(fun vmm -> Obs.Bridge.attach bridge vmm) w
  in
  (r, tracer)

let test_translate_balance () =
  let r, tracer = run_traced "compress" in
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tracer);
  let begins = ref 0 and ends = ref 0 and insns = ref 0 in
  Trace.iter
    (fun (e : Trace.ev) ->
      if e.name = "translate" then
        match e.ph with
        | Trace.B -> incr begins
        | Trace.E ->
          incr ends;
          (match Option.bind (List.assoc_opt "insns" e.args) Json.to_int with
          | Some n -> insns := !insns + n
          | None -> Alcotest.fail "translate end without insns arg")
        | _ -> ())
    tracer;
  Alcotest.(check bool) "translations happened" true (!begins > 0);
  Alcotest.(check int) "balanced begin/end" !begins !ends;
  Alcotest.(check int) "event insns sum to translator totals"
    r.totals.Translator.Translate.insns !insns

let test_disabled_changes_nothing () =
  let w = Workloads.Registry.by_name "wc" in
  let plain = Vmm.Run.run w in
  let traced, _ = run_traced "wc" in
  (* Run.run itself verifies architected state and memory against the
     reference interpreter, so agreement of the measurements is the
     remaining observable surface. *)
  Alcotest.(check (option int)) "exit" plain.exit_code traced.exit_code;
  Alcotest.(check int) "vliws" plain.vliws traced.vliws;
  Alcotest.(check int) "interp_insns" plain.interp_insns traced.interp_insns;
  Alcotest.(check int) "base_insns" plain.base_insns traced.base_insns;
  Alcotest.(check int) "cycles" plain.cycles_infinite traced.cycles_infinite;
  Alcotest.(check int) "rollbacks" plain.stats.rollbacks
    traced.stats.rollbacks;
  Alcotest.(check int) "pages" plain.pages_translated traced.pages_translated;
  Alcotest.(check int) "code bytes" plain.code_bytes traced.code_bytes;
  Alcotest.(check (float 1e-12)) "ilp" plain.ilp_inf traced.ilp_inf

let test_hotness_accounting () =
  let hotness = Obs.Hotness.create () in
  let r, _ = run_traced ~hotness "wc" in
  Obs.Hotness.flush hotness ~vliws_total:r.vliws;
  let pages = Obs.Hotness.ranked hotness in
  Alcotest.(check bool) "pages profiled" true (pages <> []);
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 pages in
  Alcotest.(check int) "VLIWs fully attributed" r.vliws
    (sum (fun (p : Obs.Hotness.page) -> p.vliws));
  Alcotest.(check int) "translation work fully attributed"
    r.insns_translated
    (sum (fun (p : Obs.Hotness.page) -> p.insns_scheduled))

let test_metrics_agree_with_run () =
  let metrics = Metrics.create () in
  let r, _ = run_traced ~metrics "wc" in
  Obs.Bridge.record_result metrics r;
  let counter name =
    match Metrics.find_counter metrics name with
    | Some c -> Metrics.Counter.value c
    | None -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "vliws" r.vliws (counter "vliws");
  Alcotest.(check int) "interp_insns" r.interp_insns (counter "interp_insns");
  Alcotest.(check int) "aliases" r.stats.aliases (counter "aliases");
  Alcotest.(check int) "pages_translated" r.pages_translated
    (counter "pages_translated");
  Alcotest.(check int) "loads" r.loads (counter "loads")

(* --- Table hardening ---------------------------------------------- *)

let test_table_ragged () =
  (* short and long rows must render, not raise *)
  Stats.Table.render ~header:[ "a"; "b"; "c" ]
    [ [ "only" ]; [ "x"; "y"; "z" ]; [ "p"; "q"; "r"; "extra" ] ]

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors ] );
      ( "metrics",
        [ Alcotest.test_case "roundtrip" `Quick test_metrics_roundtrip;
          Alcotest.test_case "duplicate" `Quick test_metrics_duplicate ] );
      ( "trace",
        [ Alcotest.test_case "ring bound" `Quick test_ring_bound;
          Alcotest.test_case "translate balance" `Slow test_translate_balance
        ] );
      ( "purity",
        [ Alcotest.test_case "tracing changes nothing" `Quick
            test_disabled_changes_nothing ] );
      ( "hotness",
        [ Alcotest.test_case "accounting" `Quick test_hotness_accounting ] );
      ( "bridge",
        [ Alcotest.test_case "metrics agree with run" `Quick
            test_metrics_agree_with_run ] );
      ( "table",
        [ Alcotest.test_case "ragged rows" `Quick test_table_ragged ] ) ]
