(* The `daisy client` side of the serve protocol: connect, send one
   request line, read one reply line.  Kept dependency-free of the
   server internals so it doubles as the protocol's reference
   consumer. *)

type reply =
  | Ok_json of string   (** the JSON payload after "OK " *)
  | Err of string       (** the daemon's error message *)

exception Unreachable of string
  (** could not connect / daemon hung up before replying *)

let parse_reply line =
  if line = "OK" then Ok_json ""
  else if String.length line >= 3 && String.sub line 0 3 = "OK " then
    Ok_json (String.sub line 3 (String.length line - 3))
  else if String.length line >= 4 && String.sub line 0 4 = "ERR " then
    Err (String.sub line 4 (String.length line - 4))
  else Err ("malformed reply: " ^ line)

(** Send [request] (no trailing newline) to the daemon at
    [socket_path]; one round trip per call. *)
let request ~socket_path req =
  let fd =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    with Unix.Unix_error (e, _, _) ->
      raise
        (Unreachable
           (Printf.sprintf "cannot connect to %s: %s" socket_path
              (Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc req;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | line -> parse_reply line
      | exception End_of_file ->
        raise (Unreachable "daemon closed the connection without replying"))

(** Poll [request "PING"] until the daemon answers or [timeout] elapses
    — the race-free way to wait for a freshly-forked daemon to bind. *)
let wait_ready ?(timeout = 10.0) ~socket_path () =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match request ~socket_path "PING" with
    | Ok_json _ -> true
    | Err _ -> true  (* it answered; that's ready enough *)
    | exception Unreachable _ ->
      if Unix.gettimeofday () > deadline then false
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()
