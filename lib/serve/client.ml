(* The `daisy client` side of the serve protocol: connect, send one
   request line, read one reply line.  Kept dependency-free of the
   server internals so it doubles as the protocol's reference
   consumer.

   Three failure planes, kept distinct because callers must react
   differently to each:
   - [Err {cls; detail}]: the daemon answered and said no.  The class
     is machine-readable (`busy` carries a retry hint, `deadline` /
     `mismatch` / `crash` / `cancelled` describe the session, `proto`
     means our request was malformed).
   - [Unreachable]: no daemon answered — connect refused, or it hung
     up before replying.  Retryable by definition.
   - [Protocol]: something answered but not in protocol — a reply line
     that is neither `OK ...` nor `ERR ...`.  NOT retryable; we are
     probably talking to the wrong socket. *)

type reply =
  | Ok_json of string  (** the JSON payload after "OK " *)
  | Err of { cls : string; detail : string }
      (** the daemon's typed refusal: class + human detail *)

exception Unreachable of string
  (** could not connect / daemon hung up before replying *)

exception Protocol of string
  (** the peer replied outside the OK/ERR protocol *)

let parse_reply line =
  let after prefix =
    let n = String.length prefix in
    String.sub line n (String.length line - n)
  in
  if line = "OK" then Ok_json ""
  else if String.length line >= 3 && String.sub line 0 3 = "OK " then
    Ok_json (after "OK ")
  else if String.length line >= 4 && String.sub line 0 4 = "ERR " then begin
    let rest = after "ERR " in
    match String.index_opt rest ' ' with
    | Some i ->
      Err
        { cls = String.sub rest 0 i;
          detail = String.sub rest (i + 1) (String.length rest - i - 1) }
    | None -> Err { cls = rest; detail = "" }
  end
  else raise (Protocol ("malformed reply: " ^ line))

(** A shed reply's backoff hint, in seconds: `ERR busy <retry_after_ms>`. *)
let retry_after_s = function
  | Err { cls = "busy"; detail } ->
    Option.map
      (fun ms -> float_of_int ms /. 1000.)
      (int_of_string_opt (String.trim detail))
  | _ -> None

(** Send [request] (no trailing newline) to the daemon at
    [socket_path]; one round trip per call. *)
let request ~socket_path req =
  let fd =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    with Unix.Unix_error (e, _, _) ->
      raise
        (Unreachable
           (Printf.sprintf "cannot connect to %s: %s" socket_path
              (Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc req;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | line -> parse_reply line
      | exception End_of_file ->
        raise (Unreachable "daemon closed the connection without replying"))

(** [request] with the retry contract applied: `busy` sheds and
    [Unreachable] daemons are retried under [policy]'s jittered
    exponential backoff (a shed's retry_after_ms hint overrides the
    computed sleep); every other reply — OK or a typed failure — is
    final and returned as-is.  [deadline] (absolute) bounds the whole
    exchange.  Gives up with the last shed reply or re-raises the last
    [Unreachable]. *)
let request_retry ?policy ?seed ?deadline ~socket_path req =
  let outcome =
    Retry.run ?policy ?seed ?deadline (fun ~attempt:_ ->
        match request ~socket_path req with
        | Ok_json _ as r -> `Ok r
        | Err _ as r -> (
          match retry_after_s r with
          | Some hint -> `Retry (`Busy r, Some hint)
          | None ->
            if (match r with Err e -> e.cls = "busy" | _ -> false) then
              (* busy without a parseable hint: still retryable *)
              `Retry (`Busy r, None)
            else `Fail r)
        | exception Unreachable msg -> `Retry (`Down msg, None))
  in
  match outcome with
  | Ok r | Error (`Fail r) -> r
  | Error (`Exhausted (`Busy r)) -> r
  | Error (`Exhausted (`Down msg)) -> raise (Unreachable msg)

(** Poll [request "PING"] until the daemon answers or [timeout] elapses
    — the race-free way to wait for a freshly-forked daemon to bind.
    Backoff is jittered-exponential from 10ms, capped at 250ms: fast
    enough to catch a quick daemon, decorrelated enough that a fleet of
    waiting clients does not stampede the listener the moment it
    binds. *)
let wait_ready ?(timeout = 10.0) ~socket_path () =
  let deadline = Unix.gettimeofday () +. timeout in
  let policy =
    { Retry.attempts = max_int; base_s = 0.01; max_s = 0.25;
      multiplier = 2.0; jitter = 0.5 }
  in
  match
    Retry.run ~policy ~deadline (fun ~attempt:_ ->
        match request ~socket_path "PING" with
        | Ok_json _ | Err _ -> `Ok ()  (* it answered; ready enough *)
        | exception Unreachable _ -> `Retry ((), None))
  with
  | Ok () -> true
  | Error _ -> false
