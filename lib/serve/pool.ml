(* A bounded pool of OCaml 5 domains draining a shared work queue.

   Sessions are CPU-bound (a whole VMM run each), so the pool is sized
   in domains, not threads: [domains] runners are spawned once and each
   loops dequeue → run until [shutdown].  Jobs are thunks that own
   their results (the fleet writes into a preallocated slot per
   session); a job that raises is contained — the exception is caught
   and dropped by the runner, never the domain — so one broken session
   cannot take a runner down with it.  [drain] is the barrier the fleet
   needs: it returns once the queue is empty AND every dequeued job has
   finished. *)

type t = {
  q : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and shutdown *)
  all_done : Condition.t;  (* signalled when a runner goes idle *)
  mutable active : int;    (* jobs currently executing *)
  mutable closed : bool;
  mutable runners : unit Domain.t list;
}

let runner t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.q then begin
      (* closed and drained *)
      Mutex.unlock t.lock
    end
    else begin
      let job = Queue.pop t.q in
      t.active <- t.active + 1;
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      if t.active = 0 && Queue.is_empty t.q then Condition.broadcast t.all_done;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains <= 0 then invalid_arg "Pool.create: domains must be positive";
  let t =
    { q = Queue.create (); lock = Mutex.create ();
      nonempty = Condition.create (); all_done = Condition.create ();
      active = 0; closed = false; runners = [] }
  in
  t.runners <- List.init domains (fun _ -> Domain.spawn (runner t));
  t

let size t = List.length t.runners

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

(** Block until every submitted job has completed.  Safe to interleave
    with further submits from other threads, but then "drained" is a
    moment, not a state. *)
let drain t =
  Mutex.lock t.lock;
  while t.active > 0 || not (Queue.is_empty t.q) do
    Condition.wait t.all_done t.lock
  done;
  Mutex.unlock t.lock

(** Finish the queue, stop the runners, join the domains. *)
let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.runners
