(* A bounded pool of OCaml 5 domains draining a shared work queue.

   Sessions are CPU-bound (a whole VMM run each), so the pool is sized
   in domains, not threads: [domains] runners are spawned once and each
   loops dequeue → run until [shutdown].  Jobs are thunks that own
   their results (the fleet writes into a preallocated slot per
   session); a job that raises is contained — the exception is caught
   and dropped by the runner, never the domain — so one broken session
   cannot take a runner down with it.  [drain] is the barrier the fleet
   needs: it returns once the queue is empty AND every dequeued job has
   finished.

   Two admission properties matter to the daemon sitting on top:

   - The queue is bounded ([queue_cap]).  [try_submit] refuses work
     when the backlog is full instead of letting latency grow without
     limit — that refusal is what the server turns into `ERR busy`
     with a retry hint.  [submit] (used by in-process drivers that
     would rather wait than shed) still always enqueues.

   - Shutdown is not silent.  Every job may carry a [cancel] callback;
     when [shutdown] finds jobs still queued it runs their cancels
     instead of their bodies, so a connection thread blocked on a
     queued session gets an answer ("cancelled") rather than a
     permanent hang.  Running jobs finish normally. *)

type job = {
  run : unit -> unit;
  cancel : unit -> unit;  (** called instead of [run] if shed at shutdown *)
}

type t = {
  q : job Queue.t;
  queue_cap : int;         (* refuse [try_submit] past this backlog *)
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and shutdown *)
  all_done : Condition.t;  (* signalled when a runner goes idle *)
  mutable active : int;    (* jobs currently executing *)
  mutable closed : bool;
  mutable runners : unit Domain.t list;
}

let runner ?minor_heap_words t () =
  (* compile-heavy jobs (tier-2 region scheduling) allocate in bursts;
     a pre-sized minor heap keeps the runner out of back-to-back minor
     collections contending with the execution domains.  Gc.set on this
     domain only — OCaml 5 minor heaps are per-domain. *)
  (match minor_heap_words with
  | Some w -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = w }
  | None -> ());
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.q then begin
      (* closed and drained *)
      Mutex.unlock t.lock
    end
    else begin
      let job = Queue.pop t.q in
      t.active <- t.active + 1;
      Mutex.unlock t.lock;
      (try job.run () with _ -> ());
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      if t.active = 0 && Queue.is_empty t.q then Condition.broadcast t.all_done;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

(** [minor_heap_words] pre-sizes each runner domain's minor heap (in
    words) before it starts draining jobs — the tier-2 submit pool
    passes ~4 Mwords so background region compiles stop paying minor-GC
    latency that inline compiles never saw. *)
let create ?(queue_cap = max_int) ?minor_heap_words ~domains () =
  if domains <= 0 then invalid_arg "Pool.create: domains must be positive";
  if queue_cap < 0 then invalid_arg "Pool.create: queue_cap must be >= 0";
  (match minor_heap_words with
  | Some w when w <= 0 ->
    invalid_arg "Pool.create: minor_heap_words must be positive"
  | _ -> ());
  let t =
    { q = Queue.create (); queue_cap; lock = Mutex.create ();
      nonempty = Condition.create (); all_done = Condition.create ();
      active = 0; closed = false; runners = [] }
  in
  t.runners <-
    List.init domains (fun _ -> Domain.spawn (runner ?minor_heap_words t));
  t

let size t = List.length t.runners
let queue_cap t = t.queue_cap

(** Queued (not yet running) jobs right now. *)
let depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.q in
  Mutex.unlock t.lock;
  d

(** Jobs executing right now. *)
let active t =
  Mutex.lock t.lock;
  let a = t.active in
  Mutex.unlock t.lock;
  a

let enqueue_locked t job =
  Queue.push job t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let no_cancel () = ()

(** Unconditional enqueue — in-process drivers that prefer waiting over
    shedding.  Raises once the pool is shut down. *)
let submit ?(cancel = no_cancel) t run =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  enqueue_locked t { run; cancel }

(** Bounded enqueue: [`Busy depth] when the backlog is at capacity (the
    caller turns this into load shedding), [`Closed] after shutdown. *)
let try_submit ?(cancel = no_cancel) t run =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    `Closed
  end
  else begin
    let d = Queue.length t.q in
    if d >= t.queue_cap then begin
      Mutex.unlock t.lock;
      `Busy d
    end
    else begin
      enqueue_locked t { run; cancel };
      `Accepted
    end
  end

(** Block until every submitted job has completed.  Safe to interleave
    with further submits from other threads, but then "drained" is a
    moment, not a state. *)
let drain t =
  Mutex.lock t.lock;
  while t.active > 0 || not (Queue.is_empty t.q) do
    Condition.wait t.all_done t.lock
  done;
  Mutex.unlock t.lock

(** Stop accepting work, cancel everything still queued, let running
    jobs finish, join the domains.  The cancel callbacks run on the
    shutting-down thread, outside the pool lock, so they may take locks
    of their own (the server's wake their waiting connection
    threads). *)
let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  let shed = Queue.fold (fun acc j -> j :: acc) [] t.q in
  Queue.clear t.q;
  Condition.broadcast t.nonempty;
  (* waiters in [drain] must see the emptied queue too *)
  Condition.broadcast t.all_done;
  Mutex.unlock t.lock;
  List.iter (fun j -> try j.cancel () with _ -> ()) (List.rev shed);
  List.iter Domain.join t.runners
