(* One guest session: a full differentially-verified `Vmm.Run` with its
   own memory image, VMM, metrics registry and (optionally) checkpoint
   directory — sharing only the translation-cache directory, through
   the coordinator's gate/pin discipline.

   Isolation inventory: the workload is re-instantiated per session
   (fresh guest memory), `Run.run` creates a fresh Monitor + Machine +
   translator, the metrics registry is per-session and labeled with the
   session id, and the checkpoint dir (when given) is
   [<root>/session-<id>].  The ONLY shared mutable state is the cache
   directory, and every mutation of it goes through the store's
   directory lock; the only shared in-process state is the coordinator,
   behind its own mutex.

   Supervision contract: [run] is TOTAL.  Whatever a session does —
   unknown workload, translator crash, verification mismatch, deadline
   expiry, fault injection — the caller gets an [outcome] with a typed
   [failure], never an exception, and the session's footprint in shared
   state is gone: pins released (the refcounts other sessions' budget
   enforcement consults), checkpoint directory removed, byte budget
   re-applied.  That totality is what lets the daemon treat sessions as
   crash-only components. *)

type failure =
  | Mismatch of string   (** differential verification failed *)
  | Deadline of float    (** session budget expired after this many s *)
  | Cancelled of string  (** shed before running (shutdown, queue) *)
  | Crash of string      (** any other exception, message preserved *)

let failure_class = function
  | Mismatch _ -> "mismatch"
  | Deadline _ -> "deadline"
  | Cancelled _ -> "cancelled"
  | Crash _ -> "crash"

(* Error details travel on one protocol line; newlines would truncate
   the reply and desynchronize the stream. *)
let sanitize s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let failure_detail = function
  | Mismatch msg -> sanitize msg
  | Deadline s when s <= 0. -> "deadline expired before the session started"
  | Deadline s -> Printf.sprintf "session budget expired after %.3fs" s
  | Cancelled why -> sanitize why
  | Crash msg -> sanitize msg

type outcome = {
  id : int;
  workload : string;
  seconds : float;  (** wall-clock session latency *)
  result : (Vmm.Run.result, failure) Stdlib.result;
      (** the session never lets an exception escape to the pool *)
  metrics : Obs.Metrics.t;  (** labeled [session-<id>] *)
}

let ok o = Result.is_ok o.result

(** An outcome for a session that never ran — the pool shed it at
    shutdown, or its deadline passed while it sat in the queue. *)
let cancelled ~id ~workload why =
  { id; workload; seconds = 0.;
    result = Error (Cancelled why);
    metrics = Obs.Metrics.create ~label:(Printf.sprintf "session-%d" id) () }

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(** Run workload [name] as session [id] against [shared]'s cache
    directory.  Translation work is gated through [shared] so a cold
    fleet translates each page once; every cache key the session
    touches is pinned for its lifetime, then unpinned and the byte
    budget enforced as it leaves — on every exit path.

    [deadline_at] is an absolute [Unix.gettimeofday] instant: already
    past, the session fails [Deadline] without running (it expired in
    the queue); otherwise the remaining time becomes a
    {!Guard.Watchdog} session budget checked at every commit boundary.
    [instrument] is an extra hook over the session's own (fault
    injectors, extra observers); it runs after the session wires its
    gate/pin hooks, so it may chain them.  [tier2] attaches the tier-2
    promotion driver ({!Obs.Tier}) — last, after [instrument], so no
    other attachment replaces the hooks it chains; promotion compiles
    run synchronously on the session's own pool domain (a session is
    already off the accept path, so there is no main loop to protect).
    [ignore_mem] passes through to {!Vmm.Run.run}'s verifier — word
    addresses whose divergence is expected (the interrupt count under
    injection, say). *)
let run ?params ?engine ?checkpoint_root ?deadline_at ?instrument ?tier2
    ?tcache_io ?(ignore_mem = []) ~shared ~id name =
  let metrics = Obs.Metrics.create ~label:(Printf.sprintf "session-%d" id) () in
  let touched : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let touched_lock = Mutex.create () in
  let store = ref None in
  let checkpoint_dir =
    Option.map
      (fun root -> Filename.concat root (Printf.sprintf "session-%d" id))
      checkpoint_root
  in
  let instrument_session (vmm : Vmm.Monitor.t) =
    store := vmm.tcache;
    vmm.translate_gate <- Some (Shared.gate shared);
    vmm.translate_release <- Some (Shared.release shared);
    vmm.tcache_touch <-
      Some
        (fun ~key ->
          (* first touch per key per session pins it; the session's own
             set keeps the refcount at one per live session *)
          Mutex.lock touched_lock;
          let fresh = not (Hashtbl.mem touched key) in
          if fresh then Hashtbl.add touched key ();
          Mutex.unlock touched_lock;
          if fresh then Shared.pin shared ~key);
    (match checkpoint_dir with
    | None -> ()
    | Some dir ->
      ignore (Guard.Supervise.attach ~checkpoint_dir:dir ~workload:name vmm));
    (match deadline_at with
    | None -> ()
    | Some d ->
      (* session budget = time left from queue admission to now; the
         watchdog chains the tick hook Supervise may have installed *)
      Guard.Watchdog.attach
        { Guard.Watchdog.none with
          session_s = Some (d -. Unix.gettimeofday ()) }
        vmm);
    (match instrument with Some f -> f vmm | None -> ());
    match tier2 with
    | None -> ()
    | Some cfg ->
      ignore (Obs.Tier.attach ~cfg:{ cfg with Obs.Tier.submit = None } vmm)
  in
  let t0 = Unix.gettimeofday () in
  let result =
    if
      match deadline_at with
      | Some d -> Unix.gettimeofday () > d
      | None -> false
    then
      (* it expired while queued: still a deadline to the client —
         [Cancelled] is reserved for shutdown/shedding *)
      Error (Deadline 0.)
    else
      match
        let w = Workloads.Registry.by_name name in
        Vmm.Run.run ?params ?engine ~instrument:instrument_session
          ~ignore_mem ~tcache_dir:(Shared.dir shared) ?tcache_io w
      with
      | r -> Ok r
      | exception Vmm.Run.Mismatch msg -> Error (Mismatch msg)
      | exception Guard.Watchdog.Expired s -> Error (Deadline s)
      | exception e -> Error (Crash (Printexc.to_string e))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  (* leave: drop this session's pins, apply the capacity budget now
     that its hot set no longer needs protection, remove its
     checkpoints.  Best-effort each, and unconditional — a crashed or
     deadlined session must not leak pins into the shared table. *)
  Hashtbl.iter (fun key () -> Shared.unpin shared ~key) touched;
  (match !store with
  | Some s -> ( try Shared.enforce_budget shared s with _ -> ())
  | None -> ());
  Option.iter rm_rf checkpoint_dir;
  (match result with
  | Ok r -> Obs.Bridge.record_result metrics r
  | Error _ -> ());
  { id; workload = name; seconds; result; metrics }

let outcome_json o =
  let open Obs.Json in
  let base =
    [ ("id", Int o.id); ("workload", Str o.workload);
      ("seconds", Float o.seconds); ("ok", Bool (ok o)) ]
  in
  Obj
    (match o.result with
    | Error f ->
      base
      @ [ ("error_class", Str (failure_class f));
          ("error", Str (failure_detail f)) ]
    | Ok r ->
      base
      @ [ ("exit_code",
           match r.exit_code with Some c -> Int c | None -> Null);
          ("base_insns", Int r.base_insns);
          ("pages_translated", Int r.pages_translated);
          ("tcache_hits", Int r.stats.tcache_hits);
          ("tcache_misses", Int r.stats.tcache_misses);
          ("tcache_quarantined", Int r.stats.tcache_quarantined);
          ("tcache_degraded", Int r.stats.tcache_degraded);
          ("storage_faults", Int r.stats.storage_faults);
          ("tier2_promotions", Int r.stats.tier2_promotions);
          ("tier2_deopts", Int r.stats.tier2_deopts);
          ("degraded", Bool (Vmm.Run.degraded r.stats)) ])
