(* One guest session: a full differentially-verified `Vmm.Run` with its
   own memory image, VMM, metrics registry and (optionally) checkpoint
   directory — sharing only the translation-cache directory, through
   the coordinator's gate/pin discipline.

   Isolation inventory: the workload is re-instantiated per session
   (fresh guest memory), `Run.run` creates a fresh Monitor + Machine +
   translator, the metrics registry is per-session and labeled with the
   session id, and the checkpoint dir (when given) is
   [<root>/session-<id>].  The ONLY shared mutable state is the cache
   directory, and every mutation of it goes through the store's
   directory lock; the only shared in-process state is the coordinator,
   behind its own mutex. *)

type outcome = {
  id : int;
  workload : string;
  seconds : float;  (** wall-clock session latency *)
  result : (Vmm.Run.result, string) Stdlib.result;
      (** [Error] carries a verification-mismatch or crash message;
          the session never lets an exception escape to the pool *)
  metrics : Obs.Metrics.t;  (** labeled [session-<id>] *)
}

let ok o = Result.is_ok o.result

(** Run workload [name] as session [id] against [shared]'s cache
    directory.  Translation work is gated through [shared] so a cold
    fleet translates each page once; every cache key the session
    touches is pinned for its lifetime, then unpinned and the byte
    budget enforced as it leaves. *)
let run ?params ?engine ?checkpoint_root ~shared ~id name =
  let w = Workloads.Registry.by_name name in
  let metrics = Obs.Metrics.create ~label:(Printf.sprintf "session-%d" id) () in
  let touched : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let touched_lock = Mutex.create () in
  let store = ref None in
  let instrument (vmm : Vmm.Monitor.t) =
    store := vmm.tcache;
    vmm.translate_gate <- Some (Shared.gate shared);
    vmm.translate_release <- Some (Shared.release shared);
    vmm.tcache_touch <-
      Some
        (fun ~key ->
          (* first touch per key per session pins it; the session's own
             set keeps the refcount at one per live session *)
          Mutex.lock touched_lock;
          let fresh = not (Hashtbl.mem touched key) in
          if fresh then Hashtbl.add touched key ();
          Mutex.unlock touched_lock;
          if fresh then Shared.pin shared ~key);
    match checkpoint_root with
    | None -> ()
    | Some root ->
      let dir = Filename.concat root (Printf.sprintf "session-%d" id) in
      ignore (Guard.Supervise.attach ~checkpoint_dir:dir ~workload:name vmm)
  in
  let t0 = Unix.gettimeofday () in
  let result =
    match
      Vmm.Run.run ?params ?engine ~instrument
        ~tcache_dir:(Shared.dir shared) w
    with
    | r -> Ok r
    | exception Vmm.Run.Mismatch msg -> Error msg
    | exception e -> Error (Printexc.to_string e)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  (* leave: drop this session's pins, then apply the capacity budget
     now that its hot set no longer needs protection *)
  Hashtbl.iter (fun key () -> Shared.unpin shared ~key) touched;
  (match !store with
  | Some s -> Shared.enforce_budget shared s
  | None -> ());
  (match result with
  | Ok r -> Obs.Bridge.record_result metrics r
  | Error _ -> ());
  { id; workload = name; seconds; result; metrics }

let outcome_json o =
  let open Obs.Json in
  let base =
    [ ("id", Int o.id); ("workload", Str o.workload);
      ("seconds", Float o.seconds); ("ok", Bool (ok o)) ]
  in
  Obj
    (match o.result with
    | Error msg -> base @ [ ("error", Str msg) ]
    | Ok r ->
      base
      @ [ ("exit_code",
           match r.exit_code with Some c -> Int c | None -> Null);
          ("base_insns", Int r.base_insns);
          ("pages_translated", Int r.pages_translated);
          ("tcache_hits", Int r.stats.tcache_hits);
          ("tcache_misses", Int r.stats.tcache_misses);
          ("degraded", Bool (Vmm.Run.degraded r.stats)) ])
