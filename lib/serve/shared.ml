(* The shared-cache coordinator: one per served tcache directory.

   Every session opens its own `Tcache.Store` on the directory (stores
   are cheap handles; the store's own directory lock makes concurrent
   installs safe).  What the store cannot do alone is *coalesce*: on a
   cold cache, N sessions entering the same hot page all miss and all
   translate — N-1 of those translations are pure waste, renamed over
   each other.  This module is the missing single-writer discipline:

   - [gate]/[release] implement a per-content-key in-flight table.  The
     first session to miss on a key wins the gate and translates; the
     rest block on a condition variable, and when the winner releases
     they re-probe the store and (install succeeded) hit.  The VMM
     calls these through its [translate_gate]/[translate_release]
     hooks, so the whole mechanism costs nothing outside serve.

   - [pin]/[unpin] refcount the keys each live session is executing
     from (fed by the VMM's [tcache_touch] hook).  [enforce_budget]
     passes the pin set to the store's LRU castout, so capacity
     eviction never yanks a page hot in a running guest.

   All state is behind one mutex; the hold times are a hashtable lookup
   each, never a translation. *)

type t = {
  dir : string;
  budget : int option;  (** entry-byte budget; [None] = unbounded *)
  lock : Mutex.t;
  released : Condition.t;
  inflight : (string, unit) Hashtbl.t;  (** keys being translated now *)
  pins : (string, int) Hashtbl.t;       (** key -> live-session refcount *)
  (* counters; atomics so [stats] needs no lock ordering story *)
  gate_wins : int Atomic.t;      (** gate acquisitions (unique translations) *)
  gate_waits : int Atomic.t;     (** coalesced: blocked behind a winner *)
  gate_failures : int Atomic.t;  (** winner released without installing *)
  evictions : int Atomic.t;
  evicted_bytes : int Atomic.t;
}

let create ?budget ~dir () =
  { dir; budget; lock = Mutex.create (); released = Condition.create ();
    inflight = Hashtbl.create 32; pins = Hashtbl.create 64;
    gate_wins = Atomic.make 0; gate_waits = Atomic.make 0;
    gate_failures = Atomic.make 0; evictions = Atomic.make 0;
    evicted_bytes = Atomic.make 0 }

let dir t = t.dir

(* --- the translate gate (Monitor.translate_gate / _release) -------- *)

let gate t ~page:_ ~key =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.inflight key) then begin
    Hashtbl.add t.inflight key ();
    Atomic.incr t.gate_wins;
    Mutex.unlock t.lock;
    `Proceed
  end
  else begin
    Atomic.incr t.gate_waits;
    while Hashtbl.mem t.inflight key do
      Condition.wait t.released t.lock
    done;
    Mutex.unlock t.lock;
    `Waited
  end

let release t ~page:_ ~key ~ok =
  Mutex.lock t.lock;
  Hashtbl.remove t.inflight key;
  if not ok then Atomic.incr t.gate_failures;
  (* broadcast, not signal: waiters on *different* keys share the
     condition variable *)
  Condition.broadcast t.released;
  Mutex.unlock t.lock

(* --- session pinning (Monitor.tcache_touch) ------------------------ *)

let pin t ~key =
  Mutex.lock t.lock;
  Hashtbl.replace t.pins key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins key));
  Mutex.unlock t.lock

let unpin t ~key =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.pins key with
  | Some n when n > 1 -> Hashtbl.replace t.pins key (n - 1)
  | Some _ -> Hashtbl.remove t.pins key
  | None -> ());
  Mutex.unlock t.lock

let pinned t key =
  Mutex.lock t.lock;
  let p = Hashtbl.mem t.pins key in
  Mutex.unlock t.lock;
  p

(* --- capacity ------------------------------------------------------ *)

(** Apply the byte budget to the directory, sparing pinned keys.
    Called by sessions as they finish; a no-op without a budget. *)
let enforce_budget t (store : Tcache.Store.t) =
  match t.budget with
  | None -> ()
  | Some budget ->
    let r = Tcache.Store.enforce_budget ~pinned:(pinned t) store ~budget in
    if r.evicted > 0 then begin
      ignore (Atomic.fetch_and_add t.evictions r.evicted);
      ignore (Atomic.fetch_and_add t.evicted_bytes r.evicted_bytes)
    end

type stats = {
  gate_wins : int;
  gate_waits : int;
  gate_failures : int;
  evictions : int;
  evicted_bytes : int;
  pinned_keys : int;
  inflight_keys : int;
}

let stats t =
  Mutex.lock t.lock;
  let pinned_keys = Hashtbl.length t.pins in
  let inflight_keys = Hashtbl.length t.inflight in
  Mutex.unlock t.lock;
  { gate_wins = Atomic.get t.gate_wins; gate_waits = Atomic.get t.gate_waits;
    gate_failures = Atomic.get t.gate_failures;
    evictions = Atomic.get t.evictions;
    evicted_bytes = Atomic.get t.evicted_bytes; pinned_keys; inflight_keys }

let stats_json t =
  let s = stats t in
  Obs.Json.Obj
    [ ("gate_wins", Obs.Json.Int s.gate_wins);
      ("gate_waits", Obs.Json.Int s.gate_waits);
      ("gate_failures", Obs.Json.Int s.gate_failures);
      ("evictions", Obs.Json.Int s.evictions);
      ("evicted_bytes", Obs.Json.Int s.evicted_bytes);
      ("pinned_keys", Obs.Json.Int s.pinned_keys);
      ("inflight_keys", Obs.Json.Int s.inflight_keys) ]
