(* The chaos harness: a whole serving fleet under the PR-3 fault
   cocktail, with the failure model's promises checked at the end.

   Each session gets its own seeded {!Fault.Inject} instance (seed
   derived from the run seed and the session id, so any individual
   session replays exactly), attached through the session-instrument
   hook alongside the normal gate/pin wiring.  Admission goes through
   the bounded pool exactly the way a remote client's would — via
   [try_submit], retrying shed submissions under the shared
   jittered-backoff policy — so the load-shedding path is exercised by
   construction, not just when the host happens to be slow.

   What the report asserts (and the acceptance gate checks):
   - no session outcome is missing: every admitted session ends in a
     typed outcome, even under shutdown;
   - [stuck_gates] and [leaked_pins] are the coordinator's in-flight
     and pin tables after quiesce — both must be zero, or a failing
     session leaked shared state;
   - injected faults are absorbed by the ladder ([crash_failures] and
     [mismatch_failures] stay zero under the cocktail, which contains
     no silent corruption) while [self_heals] counts poisoned cache
     entries that were quarantined and retranslated rather than
     surfaced to a client.

   This module lives in serve, not fault, because the dependency
   arrow must point serve -> fault: guard already depends on fault,
   and serve on guard. *)

type config = {
  seed : int;
  sessions : int;
  domains : int;
  queue_cap : int;       (** pool backlog bound; small = lots of shedding *)
  workloads : string list;
  deadline_ms : int option;  (** per-session budget, from admission *)
  inject : Fault.Inject.config;  (** rates; per-session seeds derive from [seed] *)
  budget : int option;   (** shared-cache byte budget *)
  tier2 : Obs.Tier.config option;
      (** attach tier-2 promotion inside every session, so injected
          faults also land while regions are live *)
  storage : Fsio.fault_config option;
      (** when set, every session's translation cache runs on a seeded
          fault backend (per-session seeds derive from [seed], like the
          injectors) — ENOSPC, EIO, short writes, torn renames *)
}

let default =
  { seed = 7; sessions = 32; domains = 4; queue_cap = 8;
    workloads = [ "wc"; "cmp" ]; deadline_ms = None;
    inject = Fault.Inject.cocktail; budget = None; tier2 = None;
    storage = None }

type report = {
  sessions : int;
  ok : int;
  mismatch_failures : int;
  deadline_failures : int;
  cancelled_failures : int;
  crash_failures : int;
  p50_ms : float;
  p99_ms : float;
  wall_seconds : float;
  injected : int;        (** faults that actually fired, all classes *)
  storage_injected : int;  (** storage faults the fault backend fired *)
  tcache_degraded : int;   (** cache ops absorbed by the memory overlay *)
  storage_faults : int;    (** faults that reached the degraded verdict *)
  self_heals : int;      (** corrupt cache entries quarantined *)
  ladder_strikes : int;  (** page quarantines (degradation ladder) *)
  sheds : int;           (** submissions refused by the full queue *)
  retries : int;         (** re-submissions after a shed *)
  stuck_gates : int;     (** in-flight gate keys after quiesce; must be 0 *)
  leaked_pins : int;     (** pinned keys after quiesce; must be 0 *)
}

(** Run the fleet in-process against cache directory [dir].  Uses its
    own pool and coordinator (sized from [cfg]); returns once every
    session has an outcome and the pool is quiesced. *)
let run ?params ?engine ?checkpoint_root ~dir (cfg : config) =
  if cfg.sessions <= 0 then invalid_arg "Chaos.run: sessions must be positive";
  if cfg.workloads = [] then invalid_arg "Chaos.run: no workloads";
  let pool = Pool.create ~queue_cap:cfg.queue_cap ~domains:cfg.domains () in
  let shared = Shared.create ?budget:cfg.budget ~dir () in
  let wl = Array.of_list cfg.workloads in
  let out : Session.outcome option array = Array.make cfg.sessions None in
  let injectors =
    Array.init cfg.sessions (fun id ->
        Fault.Inject.create
          { cfg.inject with seed = cfg.seed + (id * 0x9E3779B9) })
  in
  (* per-session seeded storage backends, same derivation as the fault
     injectors so any one session's disk-fault stream replays exactly *)
  let storage =
    Option.map
      (fun (fc : Fsio.fault_config) ->
        Array.init cfg.sessions (fun id ->
            Fsio.faulty { fc with seed = cfg.seed + (id * 0x9E3779B9) }))
      cfg.storage
  in
  let session_io id =
    Option.map (fun arr -> fst arr.(id)) storage
  in
  let sheds = ref 0 and retries = ref 0 in
  let t0 = Unix.gettimeofday () in
  (* generous but bounded: a shed submission retries under backoff
     until the queue drains; the daemon equivalent is the client's
     --retries loop *)
  let policy =
    { Retry.attempts = 1000; base_s = 0.002; max_s = 0.05; multiplier = 2.0;
      jitter = 0.5 }
  in
  for i = 0 to cfg.sessions - 1 do
    let workload = wl.(i mod Array.length wl) in
    let job () =
      let deadline_at =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
          cfg.deadline_ms
      in
      out.(i) <-
        Some
          (Session.run ?params ?engine ?checkpoint_root ?deadline_at
             ~instrument:(Fault.Inject.attach injectors.(i))
             ?tier2:cfg.tier2
             ?tcache_io:(session_io i)
             ~ignore_mem:
               (* delivered interrupts are counted by the mini OS at a
                  known word the reference interpreter never sees *)
               (if cfg.inject.interrupt_rate > 0. then
                  [ Workloads.Wl.interrupt_count_addr ]
                else [])
             ~shared ~id:i workload)
    in
    let cancel () =
      out.(i) <-
        Some (Session.cancelled ~id:i ~workload "pool shut down")
    in
    match
      Retry.run ~policy ~seed:(cfg.seed + i) (fun ~attempt ->
          if attempt > 0 then incr retries;
          match Pool.try_submit ~cancel pool job with
          | `Accepted -> `Ok ()
          | `Closed -> `Fail ()
          | `Busy _ ->
            incr sheds;
            `Retry ((), None))
    with
    | Ok () -> ()
    | Error _ -> cancel ()
  done;
  Pool.drain pool;
  Pool.shutdown pool;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let coord = Shared.stats shared in
  let outcomes =
    Array.to_list out
    |> List.filter_map Fun.id
    |> List.sort (fun (a : Session.outcome) b -> compare a.id b.id)
  in
  let by_class cls =
    List.length
      (List.filter
         (fun (o : Session.outcome) ->
           match o.result with
           | Error f -> Session.failure_class f = cls
           | Ok _ -> false)
         outcomes)
  in
  let stat f =
    List.fold_left
      (fun n (o : Session.outcome) ->
        match o.result with Ok r -> n + f r | Error _ -> n)
      0 outcomes
  in
  let lat =
    List.map (fun (o : Session.outcome) -> o.seconds) outcomes
    |> Array.of_list
  in
  Array.sort compare lat;
  ( { sessions = cfg.sessions;
    ok = List.length (List.filter Session.ok outcomes);
    mismatch_failures = by_class "mismatch";
    deadline_failures = by_class "deadline";
    cancelled_failures =
      by_class "cancelled" + (cfg.sessions - List.length outcomes);
    crash_failures = by_class "crash";
    p50_ms = Fleet.quantile_ms lat 0.5;
    p99_ms = Fleet.quantile_ms lat 0.99;
    wall_seconds;
    injected =
      Array.fold_left (fun n inj -> n + Fault.Inject.total inj) 0 injectors;
    storage_injected =
      (match storage with
      | None -> 0
      | Some arr ->
        Array.fold_left (fun n (_, inj) -> n + Fsio.faults_fired inj) 0 arr);
    tcache_degraded = stat (fun r -> r.stats.tcache_degraded);
    storage_faults = stat (fun r -> r.stats.storage_faults);
    self_heals = stat (fun r -> r.stats.tcache_quarantined);
    ladder_strikes = stat (fun r -> r.stats.quarantines);
      sheds = !sheds;
      retries = !retries;
      stuck_gates = coord.inflight_keys;
      leaked_pins = coord.pinned_keys },
    outcomes )

(** The chaos run's contract: every session accounted for with a typed
    outcome, no shared state left behind, no fault surfaced as a crash
    or mismatch.  Deadline/cancelled failures are legitimate (they are
    the failure model working); [`Violations] lists what broke. *)
let verdict r =
  let v = ref [] in
  let check cond msg = if not cond then v := msg :: !v in
  check
    (r.ok + r.mismatch_failures + r.deadline_failures + r.cancelled_failures
     + r.crash_failures
    = r.sessions)
    "sessions unaccounted for";
  check (r.stuck_gates = 0) "gate keys left in flight";
  check (r.leaked_pins = 0) "pins leaked";
  check (r.crash_failures = 0) "untyped/crash failures";
  check (r.mismatch_failures = 0) "verification mismatches";
  match !v with [] -> `Clean | v -> `Violations (List.rev v)

let report_json r =
  let open Obs.Json in
  Obj
    [ ("sessions", Int r.sessions); ("ok", Int r.ok);
      ("mismatch_failures", Int r.mismatch_failures);
      ("deadline_failures", Int r.deadline_failures);
      ("cancelled_failures", Int r.cancelled_failures);
      ("crash_failures", Int r.crash_failures);
      ("p50_ms", Float r.p50_ms); ("p99_ms", Float r.p99_ms);
      ("wall_seconds", Float r.wall_seconds);
      ("injected", Int r.injected);
      ("storage_injected", Int r.storage_injected);
      ("tcache_degraded", Int r.tcache_degraded);
      ("storage_faults", Int r.storage_faults);
      ("self_heals", Int r.self_heals);
      ("ladder_strikes", Int r.ladder_strikes);
      ("sheds", Int r.sheds); ("retries", Int r.retries);
      ("stuck_gates", Int r.stuck_gates);
      ("leaked_pins", Int r.leaked_pins) ]
