(* The `daisy serve` daemon: a Unix-domain-socket front door over a
   domain pool and one shared cache coordinator.

   Protocol: one request per line, one reply per line — `OK <json>` or
   `ERR <message>` — so a shell can drive it with printf | nc and the
   client stays trivial.

     PING                    liveness check
     RUN <workload>          one session; replies with its summary
     FLEET <n> <workload..>  n sessions round-robin over the workloads;
                             replies with the aggregate fleet report
     STATS                   coordinator + cache-directory numbers
     SHUTDOWN                drain and stop the daemon

   Threading: the accept loop owns the listener; each connection gets a
   systhread (connections spend their life blocked on session results,
   so cheap threads fit); all guest execution goes through the bounded
   domain [Pool] — the pool IS the admission control, a burst of RUNs
   queues rather than oversubscribing the host. *)

type t = {
  socket_path : string;
  listener : Unix.file_descr;
  pool : Pool.t;
  shared : Shared.t;
  next_id : int Atomic.t;
  stop : bool Atomic.t;
  params : Translator.Params.t;
  engine : Vmm.Monitor.engine option;
  checkpoint_root : string option;
}

(* Run [f] on the pool and block this (connection) thread for the
   result, re-raising what [f] raised. *)
let on_pool pool f =
  let lock = Mutex.create () in
  let ready = Condition.create () in
  let slot = ref None in
  Pool.submit pool (fun () ->
      let r = match f () with v -> Ok v | exception e -> Error e in
      Mutex.lock lock;
      slot := Some r;
      Condition.signal ready;
      Mutex.unlock lock);
  Mutex.lock lock;
  while !slot = None do
    Condition.wait ready lock
  done;
  let r = Option.get !slot in
  Mutex.unlock lock;
  match r with Ok v -> v | Error e -> raise e

let split_words s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun w -> w <> "")

let stats_json t =
  let dir = Shared.dir t.shared in
  let entries = List.length (Tcache.Store.entry_files dir) in
  Obs.Json.Obj
    [ ("coordinator", Shared.stats_json t.shared);
      ("cache_dir", Obs.Json.Str dir);
      ("cache_entries", Obs.Json.Int entries);
      ("cache_bytes", Obs.Json.Int (Tcache.Store.dir_bytes dir));
      ("sessions_started", Obs.Json.Int (Atomic.get t.next_id));
      ("pool_domains", Obs.Json.Int (Pool.size t.pool)) ]

let respond t line =
  match split_words line with
  | [ "PING" ] -> Printf.sprintf "OK %s" (Obs.Json.to_string (Obs.Json.Str "pong"))
  | [ "RUN"; w ] -> (
    let id = Atomic.fetch_and_add t.next_id 1 in
    match
      on_pool t.pool (fun () ->
          Session.run ~params:t.params ?engine:t.engine
            ?checkpoint_root:t.checkpoint_root ~shared:t.shared ~id w)
    with
    | o -> Printf.sprintf "OK %s" (Obs.Json.to_string (Session.outcome_json o))
    | exception e -> Printf.sprintf "ERR %s" (Printexc.to_string e))
  | "FLEET" :: n :: (_ :: _ as workloads) -> (
    match int_of_string_opt n with
    | None | Some 0 -> Printf.sprintf "ERR bad session count %S" n
    | Some n when n < 0 -> Printf.sprintf "ERR bad session count %d" n
    | Some n -> (
      let first_id = Atomic.fetch_and_add t.next_id n in
      match
        Fleet.run ~params:t.params ?engine:t.engine
          ?checkpoint_root:t.checkpoint_root ~first_id ~pool:t.pool
          ~shared:t.shared ~sessions:n workloads
      with
      | report, _ ->
        Printf.sprintf "OK %s" (Obs.Json.to_string (Fleet.report_json report))
      | exception e -> Printf.sprintf "ERR %s" (Printexc.to_string e)))
  | [ "STATS" ] ->
    Printf.sprintf "OK %s" (Obs.Json.to_string (stats_json t))
  | [ "SHUTDOWN" ] ->
    Atomic.set t.stop true;
    Printf.sprintf "OK %s" (Obs.Json.to_string (Obs.Json.Str "bye"))
  | [] -> "ERR empty request"
  | cmd :: _ -> Printf.sprintf "ERR unknown command %S" cmd

(* Wake the accept loop after SHUTDOWN: connect once to our own socket
   and drop the connection.  Blunt, but portable — closing a listener
   out from under a blocked accept is not. *)
let poke t =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let handle t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         output_string oc (respond t line);
         output_char oc '\n';
         flush oc;
         if not (Atomic.get t.stop) then loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  if Atomic.get t.stop then poke t;
  try Unix.close fd with Unix.Unix_error _ -> ()

(** Bind, listen and serve until a SHUTDOWN request.  Blocks the
    calling thread; returns the number of sessions started. *)
let serve ?(params = Translator.Params.default) ?engine ?budget
    ?checkpoint_root ?(domains = 4) ~socket_path ~dir () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* a stale socket file from a dead daemon blocks bind; take the name *)
  (match Unix.lstat socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket_path
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  let t =
    { socket_path; listener; pool = Pool.create ~domains;
      shared = Shared.create ?budget ~dir (); next_id = Atomic.make 0;
      stop = Atomic.make false; params; engine; checkpoint_root }
  in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept t.listener with
      | fd, _ ->
        ignore (Thread.create (fun () -> handle t fd) ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  accept_loop ();
  Pool.shutdown t.pool;
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Atomic.get t.next_id
