(* The `daisy serve` daemon: a Unix-domain-socket front door over a
   domain pool and one shared cache coordinator.

   Protocol: one request per line, one reply per line — `OK <json>` or
   `ERR <class> <detail>` — so a shell can drive it with printf | nc
   and the client stays trivial.

     PING                         liveness check
     RUN <workload> [deadline_ms] one session; replies with its summary
     FLEET <n> <workload..> [deadline_ms]
                                  n sessions round-robin over the
                                  workloads; replies with the aggregate
                                  fleet report
     STATS                        coordinator + cache-directory numbers
     HEALTH                       daemon vitals: queue depth, in-flight
                                  sessions, shed/failure counters
     SHUTDOWN                     drain and stop the daemon

   Error classes are part of the protocol, not prose: `proto` (bad
   request), `busy <retry_after_ms>` (load shed — the detail is the
   client's backoff hint), `deadline`, `mismatch`, `crash`,
   `cancelled`, `internal`.  A client branches on the class; the detail
   is for humans.

   Threading: the accept loop owns the listener; each connection gets a
   systhread (connections spend their life blocked on session results,
   so cheap threads fit); all guest execution goes through the bounded
   domain [Pool].  The pool IS the admission control: its queue cap
   bounds the backlog, and past it RUN sheds with `busy` rather than
   letting queue latency grow without limit.

   Supervision: sessions are crash-only ({!Session.run} is total and
   tears its shared-state footprint down on every path), so the daemon
   never needs to distinguish a clean session from a crashed one — it
   maps the typed failure to a reply line and moves on.  The one
   cross-cutting liveness rule lives here: every connection thread
   blocked on a pool slot is woken at shutdown through the job's cancel
   callback, so SHUTDOWN can never strand a client mid-request. *)

type t = {
  socket_path : string;
  listener : Unix.file_descr;
  pool : Pool.t;
  shared : Shared.t;
  next_id : int Atomic.t;
  stop : bool Atomic.t;
  params : Translator.Params.t;
  engine : Vmm.Monitor.engine option;
  checkpoint_root : string option;
  session_instrument : (id:int -> Vmm.Monitor.t -> unit) option;
      (** extra per-session hook — fault injection, extra observers *)
  tier2 : Obs.Tier.config option;
      (** attach the tier-2 promotion driver to every session *)
  ignore_mem : int list;
      (** verifier word addresses expected to diverge (chaos mode) *)
  storage : Fsio.fault_config option;
      (** when set, every session's cache runs on a seeded fault
          backend; seeds derive from the session id so a run replays *)
  storage_injectors : Fsio.injector list ref;  (* guarded by [storage_lock] *)
  storage_lock : Mutex.t;
  (* vitals, all atomics so HEALTH needs no lock *)
  sheds : int Atomic.t;            (* requests refused with `busy` *)
  completed : int Atomic.t;        (* sessions that ran to an outcome *)
  f_mismatch : int Atomic.t;
  f_deadline : int Atomic.t;
  f_cancelled : int Atomic.t;
  f_crash : int Atomic.t;
  ladder_strikes : int Atomic.t;   (* page quarantines across sessions *)
  self_heals : int Atomic.t;       (* corrupt cache entries quarantined *)
  tcache_degraded : int Atomic.t;  (* cache ops parked in memory overlays *)
  storage_faults : int Atomic.t;   (* checkpoint/store disk-fault strikes *)
  avg_ms : float Atomic.t;         (* EWMA session latency, for hints *)
}

let ok_json j = "OK " ^ Obs.Json.to_string j

let err cls detail =
  Printf.sprintf "ERR %s %s" cls (Session.sanitize detail)

(* Every finished session flows through here, RUN and FLEET alike, so
   HEALTH sees one consistent set of vitals. *)
let note_outcome t (o : Session.outcome) =
  Atomic.incr t.completed;
  (match o.result with
  | Ok r ->
    ignore (Atomic.fetch_and_add t.ladder_strikes r.stats.quarantines);
    ignore (Atomic.fetch_and_add t.self_heals r.stats.tcache_quarantined);
    ignore (Atomic.fetch_and_add t.tcache_degraded r.stats.tcache_degraded);
    ignore (Atomic.fetch_and_add t.storage_faults r.stats.storage_faults)
  | Error (Session.Mismatch _) -> Atomic.incr t.f_mismatch
  | Error (Session.Deadline _) -> Atomic.incr t.f_deadline
  | Error (Session.Cancelled _) -> Atomic.incr t.f_cancelled
  | Error (Session.Crash _) -> Atomic.incr t.f_crash);
  (* racy read-modify-write is fine: this feeds a backoff *hint* *)
  let ms = o.seconds *. 1000. in
  let old = Atomic.get t.avg_ms in
  Atomic.set t.avg_ms (if old = 0. then ms else (0.8 *. old) +. (0.2 *. ms))

(* How long a shed client should wait before retrying: roughly the
   time for its place in line to clear, from the observed session
   latency.  A hint, never a promise. *)
let retry_after_ms t ~depth =
  let avg = Atomic.get t.avg_ms in
  let est =
    avg *. float_of_int (depth + 1) /. float_of_int (Pool.size t.pool)
  in
  max 25 (int_of_float est)

let split_words s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun w -> w <> "")

(* `RUN wc 5000` / `FLEET 8 wc cmp 5000`: a trailing integer token is a
   per-session deadline in ms (workload names are never integers). *)
let split_deadline words =
  match List.rev words with
  | last :: (_ :: _ as rev_rest) -> (
    match int_of_string_opt last with
    | Some ms -> (List.rev rev_rest, Some ms)
    | None -> (words, None))
  | _ -> (words, None)

let deadline_at = function
  | None -> None
  | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

(* A fresh seeded storage backend for session [id]; the injector is
   kept so HEALTH can report how many disk faults actually fired. *)
let fresh_session_io t ~id =
  Option.map
    (fun (fc : Fsio.fault_config) ->
      let io, inj = Fsio.faulty { fc with seed = fc.seed + (id * 0x9E3779B9) } in
      Mutex.lock t.storage_lock;
      t.storage_injectors := inj :: !(t.storage_injectors);
      Mutex.unlock t.storage_lock;
      io)
    t.storage

let storage_injected t =
  Mutex.lock t.storage_lock;
  let n =
    List.fold_left (fun n inj -> n + Fsio.faults_fired inj) 0
      !(t.storage_injectors)
  in
  Mutex.unlock t.storage_lock;
  n

let stats_json t =
  let dir = Shared.dir t.shared in
  let entries = List.length (Tcache.Store.entry_files dir) in
  Obs.Json.Obj
    [ ("coordinator", Shared.stats_json t.shared);
      ("cache_dir", Obs.Json.Str dir);
      ("cache_entries", Obs.Json.Int entries);
      ("cache_bytes", Obs.Json.Int (Tcache.Store.dir_bytes dir));
      ("cache_quarantined",
       Obs.Json.Int (List.length (Tcache.Store.quarantined_files dir)));
      ("sessions_started", Obs.Json.Int (Atomic.get t.next_id));
      ("pool_domains", Obs.Json.Int (Pool.size t.pool)) ]

let health_json t =
  let cap = Pool.queue_cap t.pool in
  Obs.Json.Obj
    [ ("queue_depth", Obs.Json.Int (Pool.depth t.pool));
      ("inflight_sessions", Obs.Json.Int (Pool.active t.pool));
      ("pool_domains", Obs.Json.Int (Pool.size t.pool));
      ("queue_cap",
       if cap = max_int then Obs.Json.Null else Obs.Json.Int cap);
      ("sessions_started", Obs.Json.Int (Atomic.get t.next_id));
      ("sessions_completed", Obs.Json.Int (Atomic.get t.completed));
      ("sheds", Obs.Json.Int (Atomic.get t.sheds));
      ("mismatch_failures", Obs.Json.Int (Atomic.get t.f_mismatch));
      ("deadline_failures", Obs.Json.Int (Atomic.get t.f_deadline));
      ("cancelled_failures", Obs.Json.Int (Atomic.get t.f_cancelled));
      ("crash_failures", Obs.Json.Int (Atomic.get t.f_crash));
      ("ladder_strikes", Obs.Json.Int (Atomic.get t.ladder_strikes));
      ("self_heals", Obs.Json.Int (Atomic.get t.self_heals));
      ("storage_injected", Obs.Json.Int (storage_injected t));
      ("tcache_degraded", Obs.Json.Int (Atomic.get t.tcache_degraded));
      ("storage_faults", Obs.Json.Int (Atomic.get t.storage_faults));
      ("avg_session_ms", Obs.Json.Float (Atomic.get t.avg_ms)) ]

(* One RUN request: admit through the bounded queue, block this
   connection thread on a slot the job (or its shutdown cancel) fills.
   The fill is idempotent so a cancel racing a completed job is
   harmless. *)
let run_one t ~workload ~deadline_ms =
  let lock = Mutex.create () in
  let ready = Condition.create () in
  let slot = ref None in
  let fill r =
    Mutex.lock lock;
    if !slot = None then begin
      slot := Some r;
      Condition.signal ready
    end;
    Mutex.unlock lock
  in
  let deadline_at = deadline_at deadline_ms in
  let job () =
    (* the id is allocated by the job, not the request, so shed
       requests never burn ids and sessions_started counts real runs *)
    let id = Atomic.fetch_and_add t.next_id 1 in
    let o =
      Session.run ~params:t.params ?engine:t.engine
        ?checkpoint_root:t.checkpoint_root ?deadline_at
        ?instrument:
          (Option.map (fun f -> f ~id) t.session_instrument)
        ?tier2:t.tier2 ?tcache_io:(fresh_session_io t ~id)
        ~ignore_mem:t.ignore_mem ~shared:t.shared ~id workload
    in
    note_outcome t o;
    fill (`Outcome o)
  in
  match Pool.try_submit ~cancel:(fun () -> fill `Shutdown) t.pool job with
  | `Busy depth ->
    Atomic.incr t.sheds;
    err "busy" (string_of_int (retry_after_ms t ~depth))
  | `Closed -> err "cancelled" "daemon is shutting down"
  | `Accepted -> (
    Mutex.lock lock;
    while !slot = None do
      Condition.wait ready lock
    done;
    let r = Option.get !slot in
    Mutex.unlock lock;
    match r with
    | `Shutdown -> err "cancelled" "daemon shut down before the session ran"
    | `Outcome (o : Session.outcome) -> (
      match o.result with
      | Ok _ -> ok_json (Session.outcome_json o)
      | Error f -> err (Session.failure_class f) (Session.failure_detail f)))

let run_fleet t ~sessions ~workloads ~deadline_ms =
  (* shed the whole request while the backlog is at capacity — a fleet
     admitted into a full queue would just convert the cap into a lie *)
  let depth = Pool.depth t.pool in
  if depth >= Pool.queue_cap t.pool then begin
    Atomic.incr t.sheds;
    err "busy" (string_of_int (retry_after_ms t ~depth))
  end
  else begin
    let first_id = Atomic.fetch_and_add t.next_id sessions in
    match
      Fleet.run ~params:t.params ?engine:t.engine
        ?checkpoint_root:t.checkpoint_root
        ?deadline_at:(deadline_at deadline_ms)
        ?instrument:t.session_instrument ?tier2:t.tier2
        ?session_io:
          (Option.map
             (fun _ ~id -> Option.get (fresh_session_io t ~id))
             t.storage)
        ~ignore_mem:t.ignore_mem ~first_id
        ~pool:t.pool ~shared:t.shared ~sessions workloads
    with
    | report, outcomes ->
      List.iter (note_outcome t) outcomes;
      ok_json (Fleet.report_json report)
    | exception Invalid_argument msg -> err "cancelled" msg
    | exception e -> err "internal" (Printexc.to_string e)
  end

let respond t line =
  match split_words line with
  | [ "PING" ] -> ok_json (Obs.Json.Str "pong")
  | "RUN" :: rest -> (
    match split_deadline rest with
    | [ w ], deadline_ms -> run_one t ~workload:w ~deadline_ms
    | _ -> err "proto" "usage: RUN <workload> [deadline_ms]")
  | "FLEET" :: n :: (_ :: _ as rest) -> (
    let workloads, deadline_ms = split_deadline rest in
    match int_of_string_opt n with
    | None -> err "proto" (Printf.sprintf "bad session count %S" n)
    | Some n when n <= 0 ->
      err "proto" (Printf.sprintf "bad session count %d" n)
    | Some _ when workloads = [] ->
      err "proto" "usage: FLEET <n> <workload..> [deadline_ms]"
    | Some sessions -> run_fleet t ~sessions ~workloads ~deadline_ms)
  | [ "STATS" ] -> ok_json (stats_json t)
  | [ "HEALTH" ] -> ok_json (health_json t)
  | [ "SHUTDOWN" ] ->
    Atomic.set t.stop true;
    ok_json (Obs.Json.Str "bye")
  | [] -> err "proto" "empty request"
  | cmd :: _ -> err "proto" (Printf.sprintf "unknown command %S" cmd)

(* Wake the accept loop after SHUTDOWN: connect once to our own socket
   and drop the connection.  Blunt, but portable — closing a listener
   out from under a blocked accept is not. *)
let poke t =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Per-connection supervision: [respond] already maps session failures
   to typed replies, so the only exceptions left here are I/O on a
   dead peer — logged to /dev/null by design (the peer is gone) — and
   anything truly unexpected, which becomes `ERR internal` rather than
   a dead connection thread. *)
let handle t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         let reply =
           try respond t line
           with e -> err "internal" (Printexc.to_string e)
         in
         output_string oc reply;
         output_char oc '\n';
         flush oc;
         if not (Atomic.get t.stop) then loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  if Atomic.get t.stop then poke t;
  try Unix.close fd with Unix.Unix_error _ -> ()

(** Bind, listen and serve until a SHUTDOWN request.  Blocks the
    calling thread; returns the number of sessions started.
    [queue_cap] bounds the pool backlog (load shedding past it);
    [session_instrument] is an extra per-session VMM hook, keyed by
    session id — the chaos flags use it to attach fault injectors.
    [tier2] turns on tier-2 region promotion inside every session.
    [storage] puts every session's translation cache on a seeded
    disk-fault backend (`--chaos-storage`); HEALTH then reports how
    many faults fired and how many cache ops degraded to memory. *)
let serve ?(params = Translator.Params.default) ?engine ?budget
    ?checkpoint_root ?(domains = 4) ?queue_cap ?session_instrument ?tier2
    ?storage ?(ignore_mem = []) ~socket_path ~dir () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* a stale socket file from a dead daemon blocks bind; take the name *)
  (match Unix.lstat socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket_path
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  let t =
    { socket_path; listener; pool = Pool.create ?queue_cap ~domains ();
      shared = Shared.create ?budget ~dir (); next_id = Atomic.make 0;
      stop = Atomic.make false; params; engine; checkpoint_root;
      session_instrument; tier2; ignore_mem; storage;
      storage_injectors = ref []; storage_lock = Mutex.create ();
      sheds = Atomic.make 0; completed = Atomic.make 0;
      f_mismatch = Atomic.make 0; f_deadline = Atomic.make 0;
      f_cancelled = Atomic.make 0; f_crash = Atomic.make 0;
      ladder_strikes = Atomic.make 0; self_heals = Atomic.make 0;
      tcache_degraded = Atomic.make 0; storage_faults = Atomic.make 0;
      avg_ms = Atomic.make 0. }
  in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept t.listener with
      | fd, _ ->
        ignore (Thread.create (fun () -> handle t fd) ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  accept_loop ();
  (* cancels everything still queued — each cancel wakes its waiting
     connection thread with a typed `cancelled` reply *)
  Pool.shutdown t.pool;
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Atomic.get t.next_id
