(* Jittered exponential backoff: the one retry discipline every
   polling/retrying path in the serve layer shares.

   Fixed-interval retry loops are how a fleet of clients turns one
   hiccup into a synchronized stampede: everyone who failed at t fails
   again together at t+d.  This module owns the alternative — sleeps
   that double per attempt, are capped, and carry a random jitter so
   retriers decorrelate — plus the two contracts the serve protocol
   adds on top:

   - a server hint ([retry_after_ms] from an `ERR busy` shed) overrides
     the computed backoff for that attempt: the daemon knows its queue
     better than the client's exponent does;
   - an absolute deadline truncates the last sleep and then stops the
     loop, so a caller with a request budget never oversleeps it.

   Used by {!Client.wait_ready} (daemon-start polling), the client's
   busy/unreachable retries, and the chaos driver's admission loop. *)

type policy = {
  attempts : int;      (** total tries, including the first *)
  base_s : float;      (** backoff before the second try *)
  max_s : float;       (** backoff cap *)
  multiplier : float;  (** backoff growth per attempt *)
  jitter : float;      (** fraction of each sleep randomized, 0..1 *)
}

let default =
  { attempts = 6; base_s = 0.05; max_s = 2.0; multiplier = 2.0; jitter = 0.5 }

(** How long to sleep after failed attempt [attempt] (0-based), or
    [None] when the policy says give up — attempts exhausted, or the
    whole remaining time to [deadline] already spent.  [hint_s] is a
    server-provided floor-and-override (jittered upward only, so a
    herd sheds together but returns spread out). *)
let delay ?hint_s ?deadline policy ~rng ~attempt =
  if attempt >= policy.attempts - 1 then None
  else begin
    let exp =
      policy.base_s *. (policy.multiplier ** float_of_int attempt)
    in
    let nominal = match hint_s with Some h -> h | None -> min exp policy.max_s in
    let jittered =
      nominal *. (1. +. (policy.jitter *. Random.State.float rng 1.))
    in
    match deadline with
    | None -> Some jittered
    | Some d ->
      let left = d -. Unix.gettimeofday () in
      if left <= 0. then None else Some (min jittered left)
  end

let sleep s = if s > 0. then ignore (Unix.select [] [] [] s)

(** Run [f ~attempt] until it returns [`Ok] or [`Fail], or the policy
    gives up on a chain of [`Retry]s.  A [`Retry] carries an optional
    server sleep hint (seconds).  [deadline] is an absolute
    [Unix.gettimeofday] instant; [seed] makes the jitter reproducible
    in tests. *)
let run ?(policy = default) ?seed ?deadline f =
  let rng =
    Random.State.make
      (match seed with
      | Some s -> [| s; 0x52455452 |]
      | None -> [| Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) |])
  in
  let rec go attempt =
    match f ~attempt with
    | `Ok v -> Ok v
    | `Fail e -> Error (`Fail e)
    | `Retry (reason, hint_s) -> (
      match delay ?hint_s ?deadline policy ~rng ~attempt with
      | None -> Error (`Exhausted reason)
      | Some s ->
        sleep s;
        go (attempt + 1))
  in
  go 0
