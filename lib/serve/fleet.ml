(* Fleet driver: N sessions through the domain pool against one shared
   cache, plus the aggregate numbers the serve economics are judged by
   — warm-hit rate, session-latency quantiles, and how much of a
   cold-cache translate storm the gate actually coalesced.

   Failures are typed (see {!Session.failure}) and the report carries a
   per-class breakdown: a chaos run that shows 40 deadline failures and
   0 crashes is a healthy system under an aggressive budget; the same
   totals with the classes swapped is a broken one. *)

type report = {
  sessions : int;
  failures : int;  (** sessions whose run raised or failed verification *)
  mismatch_failures : int;   (** per-class breakdown of [failures] *)
  deadline_failures : int;
  cancelled_failures : int;
  crash_failures : int;
  wall_seconds : float;  (** whole-fleet wall clock *)
  p50_ms : float;  (** session-latency quantiles, nearest-rank *)
  p99_ms : float;
  tcache_hits : int;    (** summed over sessions *)
  tcache_misses : int;
  hit_rate : float;     (** hits / (hits + misses); 1.0 when no probes *)
  pages_translated : int;  (** fresh translation work across the fleet *)
  tcache_quarantined : int;  (** corrupt entries self-healed, summed *)
  tcache_degraded : int;  (** cache ops parked in memory on storage faults *)
  storage_faults : int;   (** checkpoint/store writes that hit a disk fault *)
  gate_wins : int;      (** unique translations granted by the gate *)
  gate_waits : int;     (** duplicate requests coalesced into waiting *)
  gate_failures : int;
  evictions : int;
  evicted_bytes : int;
  tier2_promotions : int;  (** regions promoted to tier-2, summed *)
  tier2_deopts : int;      (** promotions rolled back, summed *)
}

let quantile_ms sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    1000. *. sorted.(max 0 (min (n - 1) rank))

(** Run [sessions] guests over [pool], assigning workloads round-robin
    from [workloads].  Session ids start at [first_id] so successive
    fleets over one daemon stay distinguishable in labels and
    checkpoint paths.  Gate/eviction numbers are deltas over this fleet
    only, even when [shared] is reused across fleets.

    [deadline_at] passes through to every session; [instrument] is
    keyed by session id so per-session attachments (fault injectors
    seeded per id, say) land on the right VMM.  [session_io], also
    keyed by id, gives each session its own storage backend — the
    storage-chaos harness hands out per-session seeded fault backends
    here.  A session the pool sheds at shutdown surfaces as a
    [Cancelled] outcome, not a silently dropped slot. *)
let run ?params ?engine ?checkpoint_root ?deadline_at ?instrument ?tier2
    ?session_io ?ignore_mem ?(first_id = 0) ~pool ~shared ~sessions workloads =
  if sessions <= 0 then invalid_arg "Fleet.run: sessions must be positive";
  if workloads = [] then invalid_arg "Fleet.run: no workloads";
  let wl = Array.of_list workloads in
  let out : Session.outcome option array = Array.make sessions None in
  let before = Shared.stats shared in
  let t0 = Unix.gettimeofday () in
  for i = 0 to sessions - 1 do
    let id = first_id + i and workload = wl.(i mod Array.length wl) in
    Pool.submit
      ~cancel:(fun () ->
        out.(i) <- Some (Session.cancelled ~id ~workload "pool shut down"))
      pool
      (fun () ->
        out.(i) <-
          Some
            (Session.run ?params ?engine ?checkpoint_root ?deadline_at
               ?instrument:(Option.map (fun f -> f ~id) instrument)
               ?tier2
               ?tcache_io:(Option.map (fun f -> f ~id) session_io)
               ?ignore_mem ~shared ~id workload))
  done;
  Pool.drain pool;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let after = Shared.stats shared in
  let outcomes =
    Array.to_list out
    |> List.filter_map Fun.id
    |> List.sort (fun (a : Session.outcome) b -> compare a.id b.id)
  in
  (* a dropped slot (job vanished without even a cancel) still counts
     as a failure alongside the typed ones *)
  let by_class cls =
    List.length
      (List.filter
         (fun (o : Session.outcome) ->
           match o.result with
           | Error f -> Session.failure_class f = cls
           | Ok _ -> false)
         outcomes)
  in
  let failures =
    sessions - List.length outcomes
    + List.length (List.filter (fun o -> not (Session.ok o)) outcomes)
  in
  let sum f = List.fold_left (fun n o -> n + f o) 0 outcomes in
  let stat f =
    sum (fun (o : Session.outcome) ->
        match o.result with Ok r -> f r | Error _ -> 0)
  in
  let hits = stat (fun r -> r.stats.tcache_hits) in
  let misses = stat (fun r -> r.stats.tcache_misses) in
  let lat =
    List.map (fun (o : Session.outcome) -> o.seconds) outcomes
    |> Array.of_list
  in
  Array.sort compare lat;
  let report =
    { sessions; failures;
      mismatch_failures = by_class "mismatch";
      deadline_failures = by_class "deadline";
      cancelled_failures = by_class "cancelled";
      crash_failures = by_class "crash";
      wall_seconds;
      p50_ms = quantile_ms lat 0.5; p99_ms = quantile_ms lat 0.99;
      tcache_hits = hits; tcache_misses = misses;
      hit_rate =
        (if hits + misses = 0 then 1.0
         else float_of_int hits /. float_of_int (hits + misses));
      pages_translated = stat (fun r -> r.pages_translated);
      tcache_quarantined = stat (fun r -> r.stats.tcache_quarantined);
      tcache_degraded = stat (fun r -> r.stats.tcache_degraded);
      storage_faults = stat (fun r -> r.stats.storage_faults);
      gate_wins = after.gate_wins - before.gate_wins;
      gate_waits = after.gate_waits - before.gate_waits;
      gate_failures = after.gate_failures - before.gate_failures;
      evictions = after.evictions - before.evictions;
      evicted_bytes = after.evicted_bytes - before.evicted_bytes;
      tier2_promotions = stat (fun r -> r.stats.tier2_promotions);
      tier2_deopts = stat (fun r -> r.stats.tier2_deopts) }
  in
  (report, outcomes)

let report_json r =
  let open Obs.Json in
  Obj
    [ ("sessions", Int r.sessions); ("failures", Int r.failures);
      ("mismatch_failures", Int r.mismatch_failures);
      ("deadline_failures", Int r.deadline_failures);
      ("cancelled_failures", Int r.cancelled_failures);
      ("crash_failures", Int r.crash_failures);
      ("wall_seconds", Float r.wall_seconds);
      ("p50_ms", Float r.p50_ms); ("p99_ms", Float r.p99_ms);
      ("tcache_hits", Int r.tcache_hits);
      ("tcache_misses", Int r.tcache_misses);
      ("hit_rate", Float r.hit_rate);
      ("pages_translated", Int r.pages_translated);
      ("tcache_quarantined", Int r.tcache_quarantined);
      ("tcache_degraded", Int r.tcache_degraded);
      ("storage_faults", Int r.storage_faults);
      ("gate_wins", Int r.gate_wins); ("gate_waits", Int r.gate_waits);
      ("gate_failures", Int r.gate_failures);
      ("evictions", Int r.evictions);
      ("evicted_bytes", Int r.evicted_bytes);
      ("tier2_promotions", Int r.tier2_promotions);
      ("tier2_deopts", Int r.tier2_deopts) ]
