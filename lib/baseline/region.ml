(* Tier-2 region compilation: the superblock scheduler applied at run
   time to one hot region.

   The one-pass translator stops at page boundaries (GO_ACROSS_PAGE),
   which is exactly the measured Table-5.2 gap between DAISY and the
   traditional compiler.  A promoted region closes that gap where it
   pays: the member pages are re-translated as ONE translation unit —
   a single whole-memory "page" whose [Translate.unit_filter] admits
   only the member pages — under the traditional compiler's throttles
   (wide window, generous join limit), so scheduling and speculation
   cross the former page boundaries freely while every escape from the
   region closes as a guarded OFFPAGE exit back to the monitor.

   Unlike {!Tradcomp}, no profile pass runs: this is a *runtime* tier,
   so it uses the translator's static branch heuristics plus whatever
   heat the observability layer already collected to pick the region.
   Guarded indirect inlining is disabled — the compile runs on a
   background domain where peeking at live register values would race
   the executing machine. *)

module Params = Translator.Params
module Translate = Translator.Translate
module Vec = Translator.Vec

let rec pow2_ceil n k = if k >= n then k else pow2_ceil n (k * 2)

(** The single-unit size covering a memory of [mem_size] bytes. *)
let unit_size mem_size = pow2_ceil mem_size 4096

(** Region-scheduler parameters derived from the tier-1 [params]: same
    machine config, whole-memory unit, traditional-compiler window and
    join limit.  [watch_code] is off — write protection of the member
    pages stays the *monitor's* job (its region-aware alias check and
    on-store hook), the unit here would otherwise alias all of memory. *)
let params ~mem_size (t1 : Params.t) =
  { t1 with
    Params.page_size = unit_size mem_size;
    join_limit = max 8 t1.join_limit;
    window = max 384 t1.window;
    profile = None; guard_indirect = false; adaptive_alias = false;
    watch_code = false }

(** The cache-namespace fingerprint of region images compiled under
    tier-1 [params] for a memory of [mem_size] bytes. *)
let fingerprint ~mem_size t1 = Params.fingerprint (params ~mem_size t1)

(** A fresh region translator over [mem] restricted to the (sorted)
    tier-1 page bases [members].  The caller seeds it with entry points
    ({!compile}) or installs a cached image into it. *)
let translator ~(t1 : Params.t) ~frontend mem ~members =
  let p = params ~mem_size:(Ppc.Mem.size mem) t1 in
  let tr = Translate.create ~frontend p mem in
  let set = Hashtbl.create (Array.length members) in
  Array.iter (fun b -> Hashtbl.replace set b ()) members;
  let mask = lnot (t1.Params.page_size - 1) in
  tr.Translate.unit_filter <- Some (fun a -> Hashtbl.mem set (a land mask));
  tr

type compiled = {
  c_members : int array;   (** sorted member tier-1 page bases *)
  c_tr : Translate.t;      (** owns the image; hand to [Monitor.promote] *)
  c_xpage : Translate.xpage;
  c_insns : int;           (** base instructions scheduled *)
  c_vliws : int;           (** tree VLIWs in the image *)
  c_seconds : float;       (** wall-clock compile time *)
}

(** Compile the region covering [members], seeding the image from each
    address in [entries] (the entry points tier-1 observed).  Raises
    whatever the translator raises on undecodable input — callers on
    the background path drop the candidate rather than crash. *)
let compile ~(t1 : Params.t) ~frontend mem ~members ~entries =
  let tr = translator ~t1 ~frontend mem ~members in
  let t0 = Sys.time () in
  let i0 = tr.Translate.totals.insns in
  List.iter (fun e -> ignore (Translate.entry tr e)) entries;
  let c_seconds = Sys.time () -. t0 in
  let c_xpage =
    match Hashtbl.fold (fun _ p _ -> Some p) tr.Translate.pages None with
    | Some p -> p
    | None -> invalid_arg "Region.compile: no entries"
  in
  { c_members = members; c_tr = tr; c_xpage;
    c_insns = tr.Translate.totals.insns - i0;
    c_vliws = Vec.length c_xpage.vliws; c_seconds }
