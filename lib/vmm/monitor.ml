(* The Virtual Machine Monitor (Chapter 3).

   Owns the execution of translated code and every event the paper's
   VMM fields:

   - "translation missing" / "invalid entry": a branch lands on a base
     address with no valid translated entry point; the translator is
     invoked and execution resumes in the fresh VLIWs;
   - exceptions inside a VLIW (page faults, tagged-register consumption,
     deferred I/O-space loads): the VLIW is rolled back — it has
     whole-instruction semantics — and the VMM re-executes from the
     precise base address at VLIW entry *by interpretation*, which
     re-raises the fault exactly where the base architecture would and
     delivers it to the base OS through the architected vectors;
   - run-time aliasing between a speculative load that bypassed a store
     and that store: rollback plus an interpretation episode;
   - self-modifying code: stores into pages whose translation exists
     trip the per-page read-only bit, the translation is invalidated and
     execution continues from the next precise point;
   - rfi: per Section 3.4, the VMM interprets from the rfi target until
     the next call, cross-page branch or backward branch, then re-enters
     translated code at a (possibly fresh) valid entry point. *)

module T = Vliw.Tree
module Exec = Vliw.Exec
module C = Vliw.Compile
module Translate = Translator.Translate
module Params = Translator.Params
module Vec = Translator.Vec
open Ppc

type stats = {
  mutable vliws : int;            (** tree VLIWs executed *)
  mutable interp_insns : int;     (** base instructions run by interpretation *)
  mutable interp_episodes : int;
  mutable rollbacks : int;
  mutable aliases : int;          (** alias rollbacks (Table 5.7) *)
  mutable cross_direct : int;     (** cross-page branches (Table 5.6) *)
  mutable cross_lr : int;
  mutable cross_ctr : int;
  mutable cross_gpr : int;  (** register-indirect (S/390-style) *)
  mutable onpage_jumps : int;
  mutable loads : int;
  mutable stores : int;
  mutable vliws_with_load_miss : int;  (** set by the cache hooks *)
  mutable syscalls : int;
  mutable external_interrupts : int;
  mutable adaptive_retranslations : int;
  mutable code_invalidations : int;
  mutable stall_cycles : int;     (** finite-cache stalls *)
  mutable itlb_misses : int;
  mutable tcache_hits : int;      (** pages installed from the persistent cache *)
  mutable tcache_misses : int;
  mutable tcache_corrupt : int;   (** entries rejected (truncated, bad version…) *)
  mutable tcache_quarantined : int;
      (** corrupt entries set aside on disk so the next translation
          heals the cache instead of every session re-tripping on them *)
  mutable tcache_persists : int;  (** fresh translations written out *)
  mutable tcache_evicts : int;    (** entries dropped after invalidation *)
  mutable tcache_skipped : int;   (** unreadable / non-entry paths ignored *)
  mutable tcache_degraded : int;
      (** storage faults the cache absorbed by degrading to its
          in-memory overlay — the session kept serving, durability was
          lost (mirrors the store's own [degraded_count]) *)
  (* --- storage (lib/fsio) --- *)
  mutable storage_faults : int;
      (** typed Storage strikes: a durable store (checkpoints) hit a
          storage fault and the run continued degraded *)
  (* --- degradation ladder (failure containment) --- *)
  mutable translator_faults : int;  (** exceptions escaping translation *)
  mutable exec_faults : int;     (** malformed VLIWs caught at run time *)
  mutable quarantines : int;     (** pages demoted to interpretation *)
  mutable degrade_retries : int; (** re-translations after backoff expiry *)
  mutable interp_pinned : int;   (** pages permanently pinned to interp *)
  (* --- staged (closure-compiled) execution engine --- *)
  mutable compiled_pages : int;      (** pages staged into closures *)
  mutable compile_seconds : float;   (** wall time spent staging *)
  mutable direct_link_hits : int;    (** on-page jumps resolved via the
                                         memoized slot, no Hashtbl *)
  mutable spec_log_hwm : int;        (** speculative-load log high water *)
  (* --- supervision (lib/guard) --- *)
  mutable deadline_hits : int;       (** watchdog deadlines fired *)
  mutable shadow_checked : int;      (** committed packets shadow-verified *)
  mutable shadow_divergences : int;  (** shadow checks that found a divergence *)
  mutable checkpoints_written : int;
  mutable checkpoint_seconds : float;  (** wall time spent writing checkpoints *)
  (* --- tiered recompilation (tier-2 regions) --- *)
  mutable tier2_promotions : int;   (** regions swapped in *)
  mutable tier2_deopts : int;       (** regions demoted back to tier-1 *)
  mutable tier2_entries : int;      (** monitor entries into region code *)
  mutable tier2_vliws : int;        (** VLIWs executed under a region image *)
  mutable tier2_offregion_exits : int;
      (** transfers that left a region for tier-1 code (soft exits — the
          region image guards every escape, so these are not deopts) *)
  mutable tier2_compile_seconds : float;
      (** wall time staging region images (subset of compile_seconds) *)
}

let fresh_stats () =
  { vliws = 0; interp_insns = 0; interp_episodes = 0; rollbacks = 0;
    aliases = 0; cross_direct = 0; cross_lr = 0; cross_ctr = 0; cross_gpr = 0;
    onpage_jumps = 0; loads = 0; stores = 0; vliws_with_load_miss = 0;
    syscalls = 0; external_interrupts = 0; adaptive_retranslations = 0;
    code_invalidations = 0; stall_cycles = 0; itlb_misses = 0;
    tcache_hits = 0; tcache_misses = 0; tcache_corrupt = 0;
    tcache_quarantined = 0;
    tcache_persists = 0; tcache_evicts = 0; tcache_skipped = 0;
    tcache_degraded = 0; storage_faults = 0;
    translator_faults = 0; exec_faults = 0; quarantines = 0;
    degrade_retries = 0; interp_pinned = 0;
    compiled_pages = 0; compile_seconds = 0.; direct_link_hits = 0;
    spec_log_hwm = 0;
    deadline_hits = 0; shadow_checked = 0; shadow_divergences = 0;
    checkpoints_written = 0; checkpoint_seconds = 0.;
    tier2_promotions = 0; tier2_deopts = 0; tier2_entries = 0;
    tier2_vliws = 0; tier2_offregion_exits = 0; tier2_compile_seconds = 0. }

(* --- Instrumentation interface -------------------------------------

   The VMM reports its interesting moments through a single optional
   [event_hook]; the observability layer (lib/obs) subscribes here
   without the VMM depending on it.  Timestamps are VLIW cycles
   ([vliws + interp_insns] so far).  With no hook attached the cost of
   a site is one [None] test and no allocation. *)

type cross_kind =
  | Xdirect         (** direct cross-page branch *)
  | Xlr             (** register-indirect via the link register *)
  | Xctr            (** register-indirect via the count register *)
  | Xgpr            (** register-indirect via a GPR (S/390-style) *)
  | Xinvalid_entry  (** on-page jump to an offset with no valid entry *)

type rollback_kind =
  | RbAlias          (** speculative load bypassed a conflicting store *)
  | RbSelfmod        (** VLIW stored into the page it executes from *)
  | RbFault          (** non-speculative access fault *)
  | RbTag            (** tagged (deferred-exception) register consumed *)
  | RbTagged_target  (** indirect branch on a tagged value *)

(* How control left one page for another.  Exit edges are the region
   profiler's raw material: unlike {!cross_kind} (which describes the
   *mechanism* of a single transfer), an edge names both endpoint pages,
   so a stream of them assembles into a weighted cross-page CFG.
   Architectural transfers (sc / rfi / interrupt delivery) deliberately
   emit no edge — a region scheduler cannot promote across them. *)
type edge_kind =
  | Etaken   (** direct cross-page branch *)
  | Efall    (** execution fell off the page end into the next page *)
  | Elr      (** register-indirect via the link register *)
  | Ectr     (** register-indirect via the count register *)
  | Egpr     (** register-indirect via a GPR *)
  | Einterp  (** control crossed pages inside an interpretation episode *)

type event =
  | Translate_begin of { cycle : int; page : int; entry : int }
  | Translate_end of {
      cycle : int;
      page : int;
      entry : int;
      insns : int;   (** base instructions scheduled (incl. re-scheduling) *)
      vliws : int;   (** tree VLIWs created *)
      bytes : int;   (** translated code bytes laid out *)
      groups : int;  (** VLIW groups built *)
    }
  | Interp_begin of { cycle : int; pc : int }
  | Interp_end of { cycle : int; pc : int; insns : int; next : int }
  | Rolled_back of { cycle : int; pc : int; kind : rollback_kind }
  | Cross_page of { cycle : int; kind : cross_kind; target : int }
  | Exit_edge of { cycle : int; src : int; dst : int; kind : edge_kind }
      (** control moved from page [src] to a different page [dst] (both
          page bases) by a promotable transfer.  Emitted by the shared
          exit handlers, so the tree walker and the staged
          closure-compiled engine produce identical edge streams, and by
          the interpreter when an episode ends on another page. *)
  | Page_enter of { cycle : int; page : int; vliws_so_far : int }
  | Retranslate_adaptive of { cycle : int; page : int }
  | Castout of { cycle : int; page : int }
  | Code_invalidated of { cycle : int; page : int }
  | Syscall_trap of { cycle : int; next : int }
  | External_interrupt of { cycle : int }
  | Tcache_hit of {
      cycle : int;
      page : int;
      vliws : int;    (** tree VLIWs installed without translating *)
      bytes : int;    (** translated code bytes in the entry *)
      seconds : float;  (** wall time to load and decode the entry *)
    }
  | Tcache_miss of { cycle : int; page : int }
  | Tcache_corrupt of { cycle : int; page : int; reason : string }
  | Tcache_quarantine of { cycle : int; page : int; reason : string }
      (** a corrupt entry was set aside on disk ([.dtc.bad]); the gate
          winner's retranslation will persist a fresh entry in its place *)
  | Tcache_persist of { cycle : int; page : int; bytes : int }
  | Tcache_evict of { cycle : int; page : int }
  | Tcache_skipped of { cycle : int; page : int; reason : string }
  | Translator_fault of { cycle : int; page : int; entry : int; reason : string }
  | Exec_fault of { cycle : int; page : int; pc : int; reason : string }
  | Quarantine of { cycle : int; page : int; failures : int; until : int }
      (** page demoted to interpretation until cycle [until] *)
  | Degrade_retry of { cycle : int; page : int }
      (** backoff expired; translation is being attempted again *)
  | Interp_pinned of { cycle : int; page : int }
      (** failure budget exhausted; page interprets forever *)
  | Vliw_compiled of { cycle : int; page : int; vliws : int; seconds : float }
      (** a page's trees were staged into closures (compiled engine) *)
  | Deadline of {
      cycle : int;
      page : int;
      stage : deadline_stage;
      seconds : float;  (** elapsed when the deadline fired (0 for Dprogress) *)
    }  (** a watchdog budget was exceeded; the page takes a ladder strike *)
  | Shadow_divergence of { cycle : int; page : int; pc : int; reason : string }
      (** a committed packet's architected effects disagreed with the
          reference interpreter's re-execution *)
  | Checkpoint_written of {
      cycle : int;
      seq : int;      (** ordinal of the checkpoint file *)
      bytes : int;    (** file size *)
      pages : int;    (** dirty memory pages included *)
      seconds : float;
    }
  | Region_promoted of {
      cycle : int;
      id : int;       (** monitor-assigned region ordinal *)
      pages : int;    (** member tier-1 pages *)
      insns : int;    (** base instructions scheduled into the image *)
      vliws : int;    (** tree VLIWs in the region image *)
      seconds : float;  (** background compile wall time (0. when cached) *)
      cached : bool;  (** image came from the persistent cache *)
    }  (** a hot region's superblock image was swapped in atomically *)
  | Region_deopt of { cycle : int; id : int; page : int; reason : string }
      (** a region was demoted back to tier-1: member pages unmapped,
          staged image dropped, persistent entry evicted *)
  | Tcache_degraded of { cycle : int; page : int }
      (** a storage fault made the cache fall back to its in-memory
          overlay for this page — the session keeps serving, the entry
          lost durability *)
  | Storage_fault of {
      cycle : int;
      store : string;  (** "tcache", "checkpoint", "profile", "flight" *)
      op : string;     (** the IO operation that faulted *)
      reason : string;
    }  (** a typed Storage strike from a durable store; the run
          continues but the verdict degrades *)

and deadline_stage =
  | Dtranslate  (** per-page translation wall-clock budget *)
  | Dcompile    (** per-page staging (closure-compilation) budget *)
  | Dprogress   (** runaway-loop detector: no commit progress in K ticks *)

(* Per-page failure tracking for the degradation ladder.  A page climbs
   down the ladder one rung per failure: quarantine (translation
   dropped, interpretation-only until [backoff_until]), retry with the
   backoff doubling each time, and finally — after [max_page_failures]
   strikes — a permanent pin to interpretation.  The interpreter is the
   always-correct path, so every rung preserves architected state. *)
type health = {
  mutable failures : int;
  mutable backoff_until : int;   (** VMM cycle before which we interpret *)
  mutable pinned_interp : bool;  (** never try translation again *)
}

(** Which execution engine runs installed translations: the interpretive
    tree walker ([Exec.run]) or the staged closure-compiled engine
    ([Vliw.Compile]).  Both produce bit-identical architected state;
    [Compiled] is the default. *)
type engine = Tree | Compiled

(* A promoted tier-2 region: a set of tier-1 pages re-translated as one
   translation unit through the superblock scheduler (wide window, high
   join limit, speculation across the former page boundaries).  The
   image lives in its own single-"page" translator whose [unit_filter]
   admits exactly the member pages, so every escape from the region is
   a guarded OFFPAGE exit back to the monitor — promotion never changes
   where control can go, only how fast it gets there. *)
type region = {
  r_id : int;                      (** monitor-assigned ordinal *)
  r_members : int array;           (** sorted member tier-1 page bases *)
  r_set : (int, unit) Hashtbl.t;   (** member bases, for O(1) tests *)
  r_tr : Translate.t;              (** owns the region's single xpage *)
  mutable r_staged : (Translate.xpage * C.page) option;
      (** closure-staged form; regions can't live in [t.compiled]
          because the region xpage's base (0) would collide with a
          genuine tier-1 page *)
  mutable r_aliases : int;
      (** alias rollbacks under this image; crossing the same threshold
          that triggers tier-1 adaptive retranslation deopts instead *)
}

type t = {
  tr : Translate.t;
  st : Vliw.Vstate.t;
  fe : Translator.Frontend.t;
  interp_step : unit -> unit;
  mem : Mem.t;
  stats : stats;
  tcache : Tcache.Store.t option;
      (** the persistent translation cache, when [run --tcache] gave us
          a directory *)
  mutable engine : engine;
  cscratch : C.scratch;
      (** shared scratch buffers of the staged engine (one VLIW executes
          at a time, so one set serves every staged page) *)
  compiled : (int, Translate.xpage * C.page) Hashtbl.t;
      (** staged pages by base; the source [xpage] is kept so staleness
          is detected by physical identity (invalidation replaces the
          object) plus tree count (extension grows it in place) *)
  (* speculative loads that bypassed stores, outstanding in the current
     group execution — a cleared-on-entry preallocated buffer, not a
     per-VLIW list (struct-of-arrays mirroring [Exec.access]) *)
  mutable spec_addr : int array;
  mutable spec_bytes : int array;
  mutable spec_seq : int array;
  mutable spec_n : int;
  mutable current_page : int;  (** base of the page we are executing *)
  mutable invalidated : bool;  (** current page's translation was dropped *)
  (* --- tiered recompilation --- *)
  regions : (int, region) Hashtbl.t;
      (** member tier-1 page base -> its promoted region.  [goto_base]
          consults this first, so installing/removing mappings on the
          main thread IS the atomic swap: in-flight VLIWs finish under
          whatever image dispatched them, and the very next transfer
          lands on the other tier. *)
  mutable region_seq : int;
  mutable active_region : region option;
      (** region currently executing, if any; keyed by physical identity *)
  mutable promote_pending : bool;
      (** a region was just installed while execution is direct-linked
          inside a tier-1 image, which never passes [goto_base]: the
          next VLIW boundary re-dispatches explicitly if its page now
          belongs to a region.  One-shot. *)
  mutable pending_selfmod : bool;
      (** the VLIW being checked stores into the page it executes from *)
  mutable fetch_hook : (addr:int -> size:int -> unit) option;
      (** I-cache model: called once per VLIW executed *)
  mutable access_hook : (Exec.access -> unit) option;
      (** D-cache model: called per memory access *)
  mutable interp_fetch_hook : (int -> unit) option;
      (** I-side hook for interpreted instructions *)
  mutable timer_interval : int option;
      (** deliver an external interrupt every N VLIWs (when MSR.EE) *)
  mutable timer_count : int;
  alias_tally : (int, int) Hashtbl.t;  (** alias rollbacks per page *)
  itlb : Memsys.Tlb.t;
      (** backs GO_ACROSS_PAGE (Section 3.4): maps base page numbers to
          translated frames; misses charge the micro-interrupt handler *)
  mutable itlb_miss_cost : int;
  mutable code_budget : int option;
      (** bound on live translated-code bytes; exceeding it casts out
          the least-recently-entered page translations (Section 3.1) *)
  mutable pinned : (int, unit) Hashtbl.t;
      (** pages never cast out (interrupt handlers etc., Section 3.7) *)
  lru : (int, int) Hashtbl.t;  (** page base -> last-entered stamp *)
  mutable lru_tick : int;
  mutable castouts : int;
  max_episode : int;
  mutable event_hook : (event -> unit) option;
      (** instrumentation sink (lib/obs subscribes here) *)
  mutable resume_pc : int;
      (** precise base address to resume from after [run] returns [None]
          on exhausted fuel — the debugger's single-stepping hook *)
  (* --- degradation ladder --- *)
  page_health : (int, health) Hashtbl.t;
  mutable max_page_failures : int;  (** strikes before the permanent pin *)
  mutable backoff_base : int;       (** first quarantine length, in cycles *)
  (* --- fault-injection hooks (lib/fault attaches here; every one
     defaults to [None] and costs a single test when unused) --- *)
  mutable translate_hook : (page:int -> entry:int -> unit) option;
      (** called before fresh translation work; may raise to simulate a
          translator crash or timeout *)
  mutable install_hook : (Translate.xpage -> unit) option;
      (** called after a page is translated, extended or installed from
          the persistent cache (digest recording, bit-flip injection) *)
  mutable page_check : (Translate.xpage -> string option) option;
      (** integrity check on page entry; [Some reason] quarantines *)
  mutable boundary_hook : (unit -> bool) option;
      (** polled at VLIW boundaries while MSR.EE is set; [true] delivers
          a (spurious) external interrupt there *)
  mutable prefault_hook : (unit -> bool) option;
      (** polled before each VLIW; [true] forces a fault-style rollback
          and an interpretation episode (page-fault storms) *)
  mutable tcache_persist_hook : (string -> unit) option;
      (** called with the entry's path after each persist (poisoning) *)
  (* --- shared-cache service (lib/serve attaches here) --- *)
  mutable translate_gate :
    (page:int -> key:string -> [ `Proceed | `Waited ]) option;
      (** consulted after a store miss, before fresh translation of a
          page with no in-memory translation.  [`Proceed]: this VMM won
          the content key and must translate (and later release);
          [`Waited]: another session translated the same key while we
          blocked — re-probe the store instead of duplicating the work *)
  mutable translate_release : (page:int -> key:string -> ok:bool -> unit) option;
      (** the gate owner is done with [key]; [ok] tells whether a
          translation was installed.  Called on every exit path out of
          the translate attempt — a gate owner that failed must still
          wake its waiters or they block forever *)
  mutable tcache_touch : (key:string -> unit) option;
      (** a store entry under [key] was hit or persisted by this VMM —
          the serve layer pins such keys against budget eviction while
          the session lives *)
  (* --- supervision (lib/guard attaches here) --- *)
  mutable translate_budget : float option;
      (** wall-clock allowance (seconds) per fresh page translation;
          overruns take a ladder strike instead of being absorbed *)
  mutable compile_budget : float option;
      (** wall-clock allowance per page staging (compiled engine) *)
  mutable progress_limit : int option;
      (** runaway-loop detector: fire after this many consecutive VLIW
          boundaries at the same precise pc with no interpretation in
          between.  [None] (the default) disables the detector — a
          legitimate single-VLIW counted loop revisits its entry pc
          once per iteration, so the limit must exceed any iteration
          count the workload can legally run. *)
  mutable progress_pc : int;      (** detector state: last boundary pc *)
  mutable progress_ticks : int;   (** consecutive boundaries at that pc *)
  mutable tick_hook : (pc:int -> unit) option;
      (** called at every committed boundary (VLIW entry, post-episode)
          with the precise base address; the guard's checkpoint cadence
          and termination poll live here.  May raise to unwind the run. *)
  mutable shadow_arm : (pc:int -> unit) option;
      (** called immediately before a VLIW executes, with its precise
          entry pc; the shadow verifier snapshots state here when its
          sampler selects the packet *)
  mutable shadow_abort : (unit -> unit) option;
      (** the armed packet did not commit (rollback or execution
          fault); the shadow snapshot is discarded *)
  mutable shadow_commit : (next:int -> int option) option;
      (** the armed packet committed and control is about to move to
          base address [next].  Returns [None] to continue normally, or
          [Some pc] after a detected divergence: state has been repaired
          to the pre-packet snapshot and the VMM must re-execute from
          [pc] (the page has been given a ladder strike, so it will be
          interpreted) *)
}

(** The VMM's clock: VLIW cycles plus interpreted instructions. *)
let now t = t.stats.vliws + t.stats.interp_insns

(* [emit] takes a thunk so the disabled path allocates nothing. *)
let emit t ev = match t.event_hook with Some h -> h (ev ()) | None -> ()

(* --- Persistent translation cache (lib/tcache) ---------------------

   The content-addressed key is computed from the page's *current*
   bytes, so every call site must run before those bytes change; the
   self-modifying-code hook qualifies because [Mem.t.on_store] fires
   before the store lands. *)

let tcache_key t store base =
  let len = min t.tr.params.page_size (Mem.size t.mem - base) in
  Tcache.Store.key store ~base (Mem.read_string t.mem base len)

(* The store degrades to its in-memory overlay silently (it must never
   raise into a guest run); the monitor mirrors the store's degraded
   count into the stats after every cache operation so each absorbed
   storage fault surfaces exactly once as a [Tcache_degraded] event. *)
let tcache_sync_degraded t store base =
  let d = Tcache.Store.degraded_count store in
  while t.stats.tcache_degraded < d do
    t.stats.tcache_degraded <- t.stats.tcache_degraded + 1;
    emit t (fun () -> Tcache_degraded { cycle = now t; page = base })
  done

(* Probe the store for [addr]'s page and install the decoded
   translation; any anomaly counts as corrupt and falls through to a
   normal translate.  A corrupt entry is also *quarantined* — set aside
   on disk — so under a shared cache one poisoned file costs one
   retranslation by the gate winner instead of a corrupt-parse per
   session per probe, and the winner's persist heals the key. *)
let tcache_probe t addr =
  match t.tcache with
  | None -> ()
  | Some store ->
    let base = Translate.page_base t.tr addr in
    let key = tcache_key t store base in
    let t0 = Sys.time () in
    let corrupt reason =
      t.stats.tcache_corrupt <- t.stats.tcache_corrupt + 1;
      emit t (fun () -> Tcache_corrupt { cycle = now t; page = base; reason });
      if Tcache.Store.quarantine store ~key then begin
        t.stats.tcache_quarantined <- t.stats.tcache_quarantined + 1;
        emit t (fun () ->
            Tcache_quarantine { cycle = now t; page = base; reason })
      end
    in
    (match Tcache.Store.probe store ~key with
    | `Hit (page, spec_inhibited) when page.base = base ->
      let seconds = Sys.time () -. t0 in
      Translate.install t.tr ~spec_inhibited page;
      t.stats.tcache_hits <- t.stats.tcache_hits + 1;
      emit t (fun () ->
          Tcache_hit
            { cycle = now t; page = base; vliws = Vec.length page.vliws;
              bytes = page.code_bytes; seconds });
      (match t.tcache_touch with Some f -> f ~key | None -> ());
      (match t.install_hook with Some f -> f page | None -> ())
    | `Hit _ -> corrupt "page base mismatch"
    | `Miss ->
      t.stats.tcache_misses <- t.stats.tcache_misses + 1;
      emit t (fun () -> Tcache_miss { cycle = now t; page = base })
    | `Corrupt reason -> corrupt reason
    | `Skipped reason ->
      t.stats.tcache_skipped <- t.stats.tcache_skipped + 1;
      emit t (fun () -> Tcache_skipped { cycle = now t; page = base; reason }));
    tcache_sync_degraded t store base

(* Write [page]'s translation out (also after an extension of an
   already-persisted page: same key, superset entry, plain overwrite). *)
let tcache_persist t (page : Translate.xpage) =
  match t.tcache with
  | None -> ()
  | Some store ->
    let key = tcache_key t store page.base in
    let spec_inhibited = Translate.load_spec_inhibited t.tr page.base in
    (match Tcache.Store.persist store ~key page ~spec_inhibited with
    | bytes ->
      t.stats.tcache_persists <- t.stats.tcache_persists + 1;
      emit t (fun () ->
          Tcache_persist { cycle = now t; page = page.base; bytes });
      (match t.tcache_touch with Some f -> f ~key | None -> ());
      (match t.tcache_persist_hook with
      | Some f -> f (Tcache.Store.path_of store key)
      | None -> ())
    | exception Sys_error _ -> () (* unwritable dir: cache is best-effort *));
    tcache_sync_degraded t store page.base

(* Drop the entry for a page whose translation just became invalid
   (self-modifying code, adaptive retranslation).  Cast-outs do NOT
   evict: a translation dropped only for code-cache capacity is still
   correct, and the refill becomes a cache hit. *)
let tcache_evict t base =
  match t.tcache with
  | None -> ()
  | Some store ->
    let key = tcache_key t store base in
    if Tcache.Store.evict store ~key then begin
      t.stats.tcache_evicts <- t.stats.tcache_evicts + 1;
      emit t (fun () -> Tcache_evict { cycle = now t; page = base })
    end;
    tcache_sync_degraded t store base

(* Drop the staged form of a page whose translation just became invalid
   (self-modifying code, adaptive retranslation, quarantine, cast-out).
   The identity check in [compiled_for] would catch the staleness
   anyway, but dropping eagerly keeps the cache from pinning dead
   closure graphs. *)
let drop_compiled t base = Hashtbl.remove t.compiled base

(* --- Tier-2 regions ------------------------------------------------

   Promotion maps every member tier-1 page base to a [region] record;
   demotion removes the mappings and drops the staged image.  Both are
   plain main-thread Hashtbl updates consulted only at [goto_base], so
   the swap in either direction is atomic with respect to execution:
   no VLIW ever observes a half-installed region. *)

let member_bytes t base =
  let len = min t.tr.params.page_size (Mem.size t.mem - base) in
  Mem.read_string t.mem base len

(* The persistent key of a region image: the *set* of member-page
   contents (plus the member bases and the region scheduler's
   fingerprint), so any byte change in any member page — or a different
   grouping — misses and falls back to a fresh background compile. *)
let tcache_region_key t store (r : region) =
  Tcache.Store.region_key store
    ~fingerprint:(Params.fingerprint r.r_tr.params)
    ~members:r.r_members
    ~bytes:(Array.to_list (Array.map (member_bytes t) r.r_members))

let tcache_evict_region t (r : region) =
  match t.tcache with
  | None -> ()
  | Some store ->
    let key = tcache_region_key t store r in
    if Tcache.Store.evict store ~key then begin
      t.stats.tcache_evicts <- t.stats.tcache_evicts + 1;
      emit t (fun () -> Tcache_evict { cycle = now t; page = r.r_members.(0) })
    end;
    tcache_sync_degraded t store r.r_members.(0)

(** Demote [r] back to tier-1: unmap every member (only where the
    mapping still points at [r]), drop the staged image, and evict the
    persistent region entry.  Callers on the self-modifying-code path
    run before the member bytes change, so the content key still
    matches the stale entry being evicted. *)
let deopt_region t (r : region) ~page ~reason =
  Array.iter
    (fun b ->
      match Hashtbl.find_opt t.regions b with
      | Some r' when r' == r -> Hashtbl.remove t.regions b
      | _ -> ())
    r.r_members;
  r.r_staged <- None;
  (match t.active_region with
  | Some r' when r' == r -> t.active_region <- None
  | _ -> ());
  tcache_evict_region t r;
  t.stats.tier2_deopts <- t.stats.tier2_deopts + 1;
  emit t (fun () -> Region_deopt { cycle = now t; id = r.r_id; page; reason })

(* --- Speculative-load log ------------------------------------------

   Outstanding speculative loads of the current group execution, kept
   in a preallocated buffer that is cleared by resetting [spec_n] —
   the per-VLIW [List.filter … @ log] churn this replaces allocated on
   every VLIW with passed loads. *)

let spec_clear t = t.spec_n <- 0

let spec_push t addr bytes seq =
  let n = t.spec_n in
  if n = Array.length t.spec_addr then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.spec_addr <- grow t.spec_addr;
    t.spec_bytes <- grow t.spec_bytes;
    t.spec_seq <- grow t.spec_seq
  end;
  t.spec_addr.(n) <- addr;
  t.spec_bytes.(n) <- bytes;
  t.spec_seq.(n) <- seq;
  t.spec_n <- n + 1;
  if t.spec_n > t.stats.spec_log_hwm then t.stats.spec_log_hwm <- t.spec_n

(* Does any outstanding speculative load later in program order than
   [sseq] overlap the store [saddr]/[sbytes]? *)
let spec_conflicts t saddr sbytes sseq =
  let rec go i =
    i < t.spec_n
    && ((t.spec_seq.(i) > sseq
        && t.spec_addr.(i) < saddr + sbytes
        && saddr < t.spec_addr.(i) + t.spec_bytes.(i))
       || go (i + 1))
  in
  go 0

let create ?(params = Params.default) ?(frontend = Translator.Frontend.ppc)
    ?(engine = Compiled) ?tcache_dir ?tcache_io mem =
  let m = Machine.create () in
  let st = Vliw.Vstate.create m in
  let tr = Translate.create ~frontend params mem in
  let tcache =
    Option.map
      (fun dir ->
        Tcache.Store.open_store ?io:tcache_io ~dir ~frontend:frontend.name
          ~fingerprint:(Params.fingerprint params) ())
      tcache_dir
  in
  let t =
    { tr; st; fe = frontend; interp_step = frontend.make_step m mem; mem;
      stats = fresh_stats (); tcache;
      engine; cscratch = C.create_scratch (); compiled = Hashtbl.create 32;
      spec_addr = Array.make 32 0; spec_bytes = Array.make 32 0;
      spec_seq = Array.make 32 0; spec_n = 0;
      current_page = -1; invalidated = false;
      regions = Hashtbl.create 4; region_seq = 0; active_region = None;
      promote_pending = false;
      pending_selfmod = false; fetch_hook = None; access_hook = None;
      interp_fetch_hook = None; timer_interval = None; timer_count = 0;
      alias_tally = Hashtbl.create 8;
      itlb = Memsys.Tlb.create ~entries:64 ~assoc:4 (); itlb_miss_cost = 10;
      code_budget = None; pinned = Hashtbl.create 4; lru = Hashtbl.create 32;
      lru_tick = 0; castouts = 0; max_episode = 64; event_hook = None;
      resume_pc = -1;
      page_health = Hashtbl.create 8; max_page_failures = 5;
      backoff_base = 256;
      translate_hook = None; install_hook = None; page_check = None;
      boundary_hook = None; prefault_hook = None;
      tcache_persist_hook = None;
      translate_gate = None; translate_release = None; tcache_touch = None;
      translate_budget = None; compile_budget = None; progress_limit = None;
      progress_pc = -1; progress_ticks = 0; tick_hook = None;
      shadow_arm = None; shadow_abort = None; shadow_commit = None }
  in
  (* feed run-time register values to the translator's guarded inlining
     of indirect branches (Chapter 6) *)
  tr.guard_hint <-
    Some
      (fun r ->
        if r < 32 then m.gpr.(r)
        else if r = Translator.Res.lr then m.lr
        else m.ctr);
  (* the per-unit read-only bit: stores into translated pages invalidate *)
  if params.watch_code then
    mem.on_store <-
      Some
        (fun addr _n ->
          (* a store into any member page of a promoted region fails the
             region's whole-unit assumption: deopt before the bytes
             change (the stale persistent entry is evicted under its
             still-matching content key) *)
          (match Hashtbl.find_opt t.regions (Translate.page_base tr addr) with
          | Some r ->
            deopt_region t r ~page:(Translate.page_base tr addr)
              ~reason:"self-modifying code in member page"
          | None -> ());
          if Translate.translated tr addr then (
            (* the hook fires before the bytes change, so the page still
               digests to the key the stale entry was stored under *)
            tcache_evict t (Translate.page_base tr addr);
            Translate.invalidate tr addr;
            drop_compiled t (Translate.page_base tr addr);
            t.stats.code_invalidations <- t.stats.code_invalidations + 1;
            emit t (fun () ->
                Code_invalidated
                  { cycle = now t; page = Translate.page_base tr addr });
            if Translate.page_base tr addr = t.current_page then
              t.invalidated <- true));
  t

let overlap (a : Exec.access) (b : Exec.access) =
  a.addr < b.addr + b.bytes && b.addr < a.addr + a.bytes

(* Does a store at [addr] hit code of the unit we are executing?  Under
   a promoted region any member page counts: instructions later in the
   VLIW may have been speculated from any of them. *)
let store_hits_code t addr =
  let base = addr land lnot (t.tr.params.page_size - 1) in
  match t.active_region with
  | Some r -> Hashtbl.mem r.r_set base
  | None -> base = t.current_page

(* The runtime alias check of Section 2.1 / Table 5.7: a store conflicts
   with a speculative load that is later in program order but already
   executed. *)
let alias_check t (accesses : Exec.access list) =
  (* a store into the very page we are executing must roll the VLIW
     back: instructions after the store may have been translated from
     the code it just overwrote (Section 3.2) *)
  if
    t.tr.params.watch_code
    && List.exists
      (fun (a : Exec.access) -> a.store && store_hits_code t a.addr)
      accesses
  then (
    t.pending_selfmod <- true;
    false)
  else
    not
      (List.exists
         (fun (s : Exec.access) ->
           s.store
           && (List.exists
                 (fun (l : Exec.access) ->
                   (not l.store) && l.passed_store && l.seq > s.seq
                   && overlap l s)
                 accesses
              || spec_conflicts t s.addr s.bytes s.seq))
         accesses)

(* The same check over the staged engine's scratch buffers: no lists
   are built, every probe is an indexed read. *)
let alias_check_c t (s : C.scratch) =
  let n = s.a_n in
  let selfmod =
    t.tr.params.watch_code
    && begin
         let found = ref false in
         for i = 0 to n - 1 do
           if s.a_store.(i) && store_hits_code t s.a_addr.(i) then
             found := true
         done;
         !found
       end
  in
  if selfmod then (
    t.pending_selfmod <- true;
    false)
  else begin
    let ok = ref true in
    for si = 0 to n - 1 do
      if !ok && s.a_store.(si) then begin
        let sa = s.a_addr.(si) and sb = s.a_bytes.(si) and ss = s.a_seq.(si) in
        for li = 0 to n - 1 do
          if
            !ok
            && (not s.a_store.(li))
            && s.a_passed.(li)
            && s.a_seq.(li) > ss
            && s.a_addr.(li) < sa + sb
            && sa < s.a_addr.(li) + s.a_bytes.(li)
          then ok := false
        done;
        if !ok && spec_conflicts t sa sb ss then ok := false
      end
    done;
    !ok
  end

(* Interpret from [start] until the next call, cross-page branch,
   backward branch, sc/rfi, or the episode cap — then return the next
   base address to re-enter translated code at (Section 3.4). *)
let interpret_episode t start =
  let m = t.st.m in
  Vliw.Vstate.clear_nonarch t.st;
  m.pc <- start;
  t.stats.interp_episodes <- t.stats.interp_episodes + 1;
  emit t (fun () -> Interp_begin { cycle = now t; pc = start });
  let insns0 = t.stats.interp_insns in
  let page_mask = lnot (t.tr.params.page_size - 1) in
  let ended_on_stop = ref false in
  let rec go n =
    let pc = m.pc in
    let stop_kind = t.fe.is_episode_stop t.mem pc in
    (match t.interp_fetch_hook with Some f -> f pc | None -> ());
    t.interp_step ();
    t.stats.interp_insns <- t.stats.interp_insns + 1;
    let crossed = m.pc land page_mask <> pc land page_mask in
    let backward = m.pc < pc in
    if n > 1 && not (stop_kind || crossed || backward) then go (n - 1)
    else ended_on_stop := stop_kind
  in
  go t.max_episode;
  emit t (fun () ->
      Interp_end
        { cycle = now t; pc = start; insns = t.stats.interp_insns - insns0;
          next = m.pc });
  (* An episode that walked onto another page is an exit edge too —
     unless it ended on sc/rfi, whose page change is the architectural
     trap transfer, not promotable control flow. *)
  (match t.event_hook with
  | None -> ()
  | Some _ ->
    let src = start land page_mask and dst = m.pc land page_mask in
    if (not !ended_on_stop) && src <> dst then
      emit t (fun () ->
          Exit_edge { cycle = now t; src; dst; kind = Einterp }));
  m.pc

exception Out_of_fuel

exception Deliver of int
(** internal: unwind to the driver and resume at an interrupt vector *)

exception Translate_deadline of float
(** internal: a fresh translation finished but blew its wall-clock
    budget; carries the elapsed seconds *)

(* --- Degradation ladder --------------------------------------------

   Any failure during translation or translated execution must not take
   the run down: the interpreter is the always-correct path, so the
   monitor demotes the failing page to it.  One failure = one rung:

     1. quarantine — the translation is dropped and the page executes
        by interpretation episodes for an exponentially-growing number
        of cycles;
     2. retry — once the backoff expires, translation is attempted
        again (a transient fault heals here);
     3. pin — after [max_page_failures] strikes the page interprets for
        the rest of the run.

   Architected state is preserved at every rung: translator faults
   happen before any translated code runs, and execution faults
   ({!Vliw.Exec.Error}) are raised before any VLIW write is applied. *)

let health t base =
  match Hashtbl.find_opt t.page_health base with
  | Some h -> h
  | None ->
    let h = { failures = 0; backoff_until = 0; pinned_interp = false } in
    Hashtbl.add t.page_health base h;
    h

(** One more strike against [base]: drop whatever translation exists
    and either extend the quarantine or pin the page for good. *)
let record_failure t base =
  (* a ladder strike against a member page voids its region's
     whole-unit assumption too: shadow divergence, execution faults,
     watchdog deadlines and quarantines all funnel through here, so the
     deopt triggers are exactly the tier-1 failure triggers *)
  (match Hashtbl.find_opt t.regions base with
  | Some r -> deopt_region t r ~page:base ~reason:"ladder strike"
  | None -> ());
  Translate.invalidate t.tr base;
  drop_compiled t base;
  let h = health t base in
  h.failures <- h.failures + 1;
  t.stats.quarantines <- t.stats.quarantines + 1;
  if h.failures >= t.max_page_failures then begin
    h.backoff_until <- max_int;
    if not h.pinned_interp then begin
      h.pinned_interp <- true;
      t.stats.interp_pinned <- t.stats.interp_pinned + 1;
      emit t (fun () -> Interp_pinned { cycle = now t; page = base })
    end
  end
  else h.backoff_until <- now t + (t.backoff_base lsl (h.failures - 1));
  emit t (fun () ->
      Quarantine
        { cycle = now t; page = base; failures = h.failures;
          until = h.backoff_until })

(* One committed VLIW boundary: feed the runaway-loop detector and the
   supervision tick hook.  The detector counts consecutive boundaries
   that re-enter the *same* precise pc without any interpretation in
   between; [progress_limit] strikes in a row means translated code is
   spinning without committing past this point (e.g. a miscompiled
   backward branch), so the page is quarantined and the caller must
   recover by interpretation — the always-correct path — instead of
   dispatching the same loop again.  Returns [true] when it fired. *)
let boundary_tick t ~pc =
  let fired =
    match t.progress_limit with
    | None -> false
    | Some k ->
      if pc = t.progress_pc then begin
        t.progress_ticks <- t.progress_ticks + 1;
        if t.progress_ticks >= k then begin
          t.progress_ticks <- 0;
          t.progress_pc <- -1;
          t.stats.deadline_hits <- t.stats.deadline_hits + 1;
          emit t (fun () ->
              Deadline
                { cycle = now t; page = t.current_page; stage = Dprogress;
                  seconds = 0. });
          record_failure t t.current_page;
          true
        end
        else false
      end
      else begin
        t.progress_pc <- pc;
        t.progress_ticks <- 0;
        false
      end
  in
  (match t.tick_hook with Some f -> f ~pc | None -> ());
  fired

(* Stage (or re-stage) the closure-compiled form of [page], lazily on
   first dispatch.  Staleness is physical identity plus tree count:
   invalidation replaces the xpage object in [tr.pages], and an
   in-place extension grows its [vliws] — either way the staged form
   is rebuilt here. *)
let compiled_for t (page : Translate.xpage) : C.page =
  match Hashtbl.find_opt t.compiled page.base with
  | Some (src, cp) when src == page && C.n_staged cp = Vec.length page.vliws ->
    cp
  | _ ->
    let t0 = Sys.time () in
    let trees = Array.init (Vec.length page.vliws) (Vec.get page.vliws) in
    let cp =
      C.stage ?budget:t.compile_budget ~st:t.st ~mem:t.mem ~scratch:t.cscratch
        trees
    in
    let seconds = Sys.time () -. t0 in
    t.stats.compiled_pages <- t.stats.compiled_pages + 1;
    t.stats.compile_seconds <- t.stats.compile_seconds +. seconds;
    Hashtbl.replace t.compiled page.base (page, cp);
    emit t (fun () ->
        Vliw_compiled
          { cycle = now t; page = page.base; vliws = Array.length trees;
            seconds });
    cp

(** Which rung is [base] on right now? *)
let page_mode t base =
  match Hashtbl.find_opt t.page_health base with
  | None -> `Translate
  | Some h ->
    if h.pinned_interp || now t < h.backoff_until then `Interp
    else if h.failures > 0 then `Retry
    else `Translate

(** Swap a compiled region image in.  [tr] is the region's dedicated
    translator (single whole-memory "page", [unit_filter] = the member
    set) holding the already-translated image; [members] are the sorted
    tier-1 page bases it covers.  Installation is a set of main-thread
    Hashtbl writes consulted only at the next [goto_base], so in-flight
    execution never observes a partial swap.  Refused when any member is
    already promoted or sits on a ladder rung — the interpreter owns
    unhealthy pages. *)
let promote t ~members ~(tr : Translate.t) ?(insns = 0) ?(seconds = 0.)
    ?(cached = false) () =
  let healthy b =
    match Hashtbl.find_opt t.page_health b with
    | Some h -> h.failures = 0 && not h.pinned_interp
    | None -> true
  in
  if Array.length members = 0 then Error `Empty
  else if Array.exists (fun b -> Hashtbl.mem t.regions b) members then
    Error `Already_promoted
  else if not (Array.for_all healthy members) then Error `Unhealthy
  else begin
    t.region_seq <- t.region_seq + 1;
    let set = Hashtbl.create (Array.length members) in
    Array.iter (fun b -> Hashtbl.replace set b ()) members;
    let r =
      { r_id = t.region_seq; r_members = members; r_set = set; r_tr = tr;
        r_staged = None; r_aliases = 0 }
    in
    Array.iter (fun b -> Hashtbl.replace t.regions b r) members;
    t.promote_pending <- true;
    t.stats.tier2_promotions <- t.stats.tier2_promotions + 1;
    t.stats.tier2_compile_seconds <-
      t.stats.tier2_compile_seconds +. seconds;
    let vliws =
      Hashtbl.fold
        (fun _ (p : Translate.xpage) acc -> acc + Vec.length p.vliws)
        tr.pages 0
    in
    emit t (fun () ->
        Region_promoted
          { cycle = now t; id = r.r_id; pages = Array.length members; insns;
            vliws; seconds; cached });
    Ok r
  end

(** The region (if any) currently covering tier-1 page [base]. *)
let region_of t base = Hashtbl.find_opt t.regions base

(* One-shot consumption of [promote_pending]: true iff the boundary at
   [pc] should abandon its direct-linked tier-1 chain and re-dispatch
   (the page under [pc] now belongs to a region).  Consumed either way
   — if the install raced execution into some non-member page, the
   member pages will be re-entered through [goto_base] regardless. *)
let take_redispatch t ~pc =
  t.promote_pending
  && begin
       t.promote_pending <- false;
       t.active_region = None
       && Hashtbl.mem t.regions (pc land lnot (t.tr.params.page_size - 1))
     end

(** Every live region, deduplicated, in promotion order. *)
let live_regions t =
  let seen = Hashtbl.create 8 in
  Hashtbl.fold
    (fun _ r acc ->
      if Hashtbl.mem seen r.r_id then acc
      else begin
        Hashtbl.replace seen r.r_id ();
        r :: acc
      end)
    t.regions []
  |> List.sort (fun a b -> compare a.r_id b.r_id)

(** Persist [r]'s image so warm starts come up already promoted. *)
let tcache_persist_region t (r : region) =
  match t.tcache with
  | None -> ()
  | Some store ->
    let key = tcache_region_key t store r in
    let xp =
      Hashtbl.fold (fun _ p _ -> Some p) r.r_tr.pages None |> Option.get
    in
    let spec_inhibited = Translate.load_spec_inhibited r.r_tr xp.base in
    (match
       Tcache.Store.persist_region store ~key
         ~fingerprint:(Params.fingerprint r.r_tr.params)
         ~members:r.r_members xp ~spec_inhibited
     with
    | bytes ->
      t.stats.tcache_persists <- t.stats.tcache_persists + 1;
      emit t (fun () ->
          Tcache_persist { cycle = now t; page = r.r_members.(0); bytes });
      (match t.tcache_touch with Some f -> f ~key | None -> ())
    | exception Sys_error _ -> ());
    tcache_sync_degraded t store r.r_members.(0)

(** Run translated execution starting at base address [entry] until the
    program halts; returns the exit code. *)
let run t ~entry ~fuel =
  let stats = t.stats in
  let fuel_left = ref fuel in
  (* resolve a base address to a translated position; this is the
     GO_ACROSS_PAGE path, so it consults the ITLB and maintains the
     cast-out pool *)
  let rec goto_base addr =
    spec_clear t;
    let addr = addr land lnot 1 in
    if not (Memsys.Tlb.touch t.itlb (addr / t.tr.params.page_size)) then begin
      stats.itlb_misses <- stats.itlb_misses + 1;
      stats.stall_cycles <- stats.stall_cycles + t.itlb_miss_cost
    end;
    let base = Translate.page_base t.tr addr in
    match Hashtbl.find_opt t.regions base with
    | Some r -> enter_region r addr
    | None ->
    (match t.active_region with
    | Some _ ->
      (* control left a promoted region for unpromoted code: a guarded
         soft exit, not an assumption failure — the region stays in *)
      stats.tier2_offregion_exits <- stats.tier2_offregion_exits + 1;
      t.active_region <- None
    | None -> ());
    (match page_mode t base with
    | `Interp ->
      (* quarantined or pinned: the always-correct path *)
      recover_at addr
    | (`Translate | `Retry) as mode ->
      if mode = `Retry then begin
        stats.degrade_retries <- stats.degrade_retries + 1;
        emit t (fun () -> Degrade_retry { cycle = now t; page = base })
      end;
      (* translation missing: the persistent cache is probed first, and
         only for pages with no in-memory translation at all — a page
         that merely lacks this entry point gets extended in place *)
      let gate_key = ref None in
      if
        t.tcache <> None
        && (not (Translate.has_entry t.tr addr))
        && not (Translate.translated t.tr addr)
      then begin
        tcache_probe t addr;
        (* still missing after the probe: contend for the per-key
           translate gate so a cold-cache storm translates each content
           key once instead of once per session.  A single attempt, no
           retry loop: if the winner failed to install we translate
           locally — a rare duplicate beats a livelock. *)
        match (t.translate_gate, t.tcache) with
        | Some gate, Some store
          when (not (Translate.has_entry t.tr addr))
               && not (Translate.translated t.tr addr) -> (
          let key = tcache_key t store base in
          match gate ~page:base ~key with
          | `Proceed ->
            gate_key := Some key;
            (* our miss may already be stale: a previous owner can have
               installed and released between our probe and this win.
               Installs happen before releases, so one re-probe under
               ownership closes the window — on a hit the attempt below
               takes the no-translation path and releases normally *)
            tcache_probe t addr
          | `Waited ->
            (* another session translated this key while we blocked;
               its install is visible in the store now *)
            tcache_probe t addr)
        | _ -> ()
      end;
      (* the owner must release on EVERY exit from the attempt below —
         waiters on this key block until it does *)
      let release ok =
        match (!gate_key, t.translate_release) with
        | Some key, Some f ->
          gate_key := None;
          f ~page:base ~key ~ok
        | _ -> ()
      in
      (match
         if Translate.has_entry t.tr addr then Translate.entry t.tr addr
         else begin
           (* fresh translation work: bracket it with begin/end events
              carrying the translator-total deltas for this unit, then
              persist the (new or extended) page *)
           let tot = t.tr.totals in
           let i0 = tot.insns and v0 = tot.vliws_made in
           let b0 = tot.code_bytes and g0 = tot.groups in
           (match t.translate_hook with
           | Some f -> f ~page:base ~entry:addr
           | None -> ());
           emit t (fun () ->
               Translate_begin { cycle = now t; page = base; entry = addr });
           let tb0 = Sys.time () in
           let res = Translate.entry t.tr addr in
           (match t.translate_budget with
           | Some b ->
             let dt = Sys.time () -. tb0 in
             if dt > b then raise (Translate_deadline dt)
           | None -> ());
           emit t (fun () ->
               Translate_end
                 { cycle = now t; page = base; entry = addr;
                   insns = tot.insns - i0; vliws = tot.vliws_made - v0;
                   bytes = tot.code_bytes - b0; groups = tot.groups - g0 });
           tcache_persist t (fst res);
           (match t.install_hook with Some f -> f (fst res) | None -> ());
           res
         end
       with
      | exception ((Mem.Halted _ | Out_of_fuel | Deliver _) as e) ->
        release false;
        raise e
      | exception Translate_deadline seconds ->
        release false;
        (* the translation completed but blew its wall-clock budget:
           throw the work away and quarantine the page, exactly like a
           translator fault — the ladder decides when to retry *)
        stats.deadline_hits <- stats.deadline_hits + 1;
        emit t (fun () ->
            Deadline { cycle = now t; page = base; stage = Dtranslate; seconds });
        record_failure t base;
        recover_at addr
      | exception exn ->
        release false;
        (* the translator (or an injected fault) blew up: no translated
           state exists for this page, so interpretation covers it *)
        stats.translator_faults <- stats.translator_faults + 1;
        let reason = Printexc.to_string exn in
        emit t (fun () ->
            Translator_fault { cycle = now t; page = base; entry = addr; reason });
        record_failure t base;
        recover_at addr
      | page, id -> (
        (* the persist already happened inside the attempt, so waiters
           released here re-probe straight into a hit *)
        release true;
        t.lru_tick <- t.lru_tick + 1;
        Hashtbl.replace t.lru page.base t.lru_tick;
        (match t.code_budget with
        | Some budget -> evict_to budget page.base
        | None -> ());
        t.current_page <- page.base;
        t.invalidated <- false;
        emit t (fun () ->
            Page_enter
              { cycle = now t; page = page.base; vliws_so_far = stats.vliws });
        match
          match t.page_check with Some f -> f page | None -> None
        with
        | Some reason ->
          (* the installed translation no longer matches its recorded
             digest: treat like a runtime execution fault *)
          stats.exec_faults <- stats.exec_faults + 1;
          emit t (fun () ->
              Exec_fault { cycle = now t; page = page.base; pc = addr; reason });
          tcache_evict t page.base;
          record_failure t page.base;
          recover_at addr
        | None -> dispatch page id)))
  (* Enter a promoted region at base address [addr].  The region image
     is lazily extended for entry points it has not seen (the same
     in-place extension tier-1 uses); any translator trouble demotes
     the region and re-dispatches the same address down the tier-1
     path — no state was touched, so the retry is exact. *)
  and enter_region (r : region) addr =
    let base = Translate.page_base t.tr addr in
    match Translate.entry r.r_tr addr with
    | exception ((Mem.Halted _ | Out_of_fuel | Deliver _) as e) -> raise e
    | exception exn ->
      stats.translator_faults <- stats.translator_faults + 1;
      let reason = Printexc.to_string exn in
      emit t (fun () ->
          Translator_fault { cycle = now t; page = base; entry = addr; reason });
      deopt_region t r ~page:base ~reason:("tier-2 extension: " ^ reason);
      goto_base addr
    | xp, id -> (
      t.current_page <- base;
      t.active_region <- Some r;
      stats.tier2_entries <- stats.tier2_entries + 1;
      emit t (fun () ->
          Page_enter { cycle = now t; page = base; vliws_so_far = stats.vliws });
      match t.engine with
      | Tree -> exec_at xp id
      | Compiled -> (
        match region_compiled r xp with
        | cp -> exec_c xp cp (C.get cp id)
        | exception ((Mem.Halted _ | Out_of_fuel | Deliver _) as e) -> raise e
        | exception C.Budget_exceeded seconds ->
          (* staging the region image blew its budget: demote and run
             the same address under tier-1 *)
          stats.deadline_hits <- stats.deadline_hits + 1;
          emit t (fun () ->
              Deadline { cycle = now t; page = base; stage = Dcompile; seconds });
          deopt_region t r ~page:base ~reason:"tier-2 staging deadline";
          goto_base addr
        | exception _ ->
          (* structurally corrupt region tree: the interpretive walker
             owns error containment, exactly as for tier-1 pages *)
          exec_at xp id))
  and region_compiled (r : region) (xp : Translate.xpage) : C.page =
    match r.r_staged with
    | Some (src, cp) when src == xp && C.n_staged cp = Vec.length xp.vliws ->
      cp
    | _ ->
      let t0 = Sys.time () in
      let trees = Array.init (Vec.length xp.vliws) (Vec.get xp.vliws) in
      let cp =
        C.stage ?budget:t.compile_budget ~st:t.st ~mem:t.mem
          ~scratch:t.cscratch trees
      in
      let seconds = Sys.time () -. t0 in
      stats.compiled_pages <- stats.compiled_pages + 1;
      stats.compile_seconds <- stats.compile_seconds +. seconds;
      stats.tier2_compile_seconds <- stats.tier2_compile_seconds +. seconds;
      r.r_staged <- Some (xp, cp);
      emit t (fun () ->
          Vliw_compiled
            { cycle = now t; page = t.current_page;
              vliws = Array.length trees; seconds });
      cp
  and dispatch (page : Translate.xpage) id =
    match t.engine with
    | Tree -> exec_at page id
    | Compiled -> (
      match compiled_for t page with
      | cp -> exec_c page cp (C.get cp id)
      | exception ((Mem.Halted _ | Out_of_fuel | Deliver _) as e) -> raise e
      | exception C.Budget_exceeded seconds ->
        (* staging blew its wall-clock budget: no partial page was
           installed, so quarantine and recover by interpretation *)
        stats.deadline_hits <- stats.deadline_hits + 1;
        emit t (fun () ->
            Deadline
              { cycle = now t; page = page.base; stage = Dcompile; seconds });
        record_failure t page.base;
        recover_at (Vec.get page.vliws id).precise_entry
      | exception _ ->
        (* staging itself blew up (structurally corrupt tree): the
           interpretive walker owns error containment for this page *)
        exec_at page id)
  and evict_to budget current =
    (* cast out least-recently-entered translations until within budget *)
    let live () =
      Hashtbl.fold (fun _ (p : Translate.xpage) acc -> acc + p.code_bytes)
        t.tr.pages 0
    in
    let continue_ = ref (live () > budget) in
    while !continue_ do
      let victim = ref (-1) and best = ref max_int in
      Hashtbl.iter
        (fun base (_ : Translate.xpage) ->
          if base <> current && not (Hashtbl.mem t.pinned base) then (
            let stamp =
              match Hashtbl.find_opt t.lru base with Some s -> s | None -> 0
            in
            if stamp < !best then (
              best := stamp;
              victim := base)))
        t.tr.pages;
      if !victim < 0 then continue_ := false
      else begin
        Translate.invalidate t.tr !victim;
        drop_compiled t !victim;
        Memsys.Tlb.flush t.itlb;
        t.castouts <- t.castouts + 1;
        let victim = !victim in
        emit t (fun () -> Castout { cycle = now t; page = victim });
        continue_ := live () > budget
      end
    done
  and recover_at addr =
    (* interpretation episodes burn fuel too, or a fully-pinned run
       could never exhaust its budget *)
    let i0 = stats.interp_insns in
    let next = interpret_episode t (addr land lnot 1) in
    fuel_left := !fuel_left - (stats.interp_insns - i0);
    if !fuel_left <= 0 then begin
      t.resume_pc <- next;
      raise Out_of_fuel
    end;
    (* interpretation is guaranteed architected progress: reset the
       runaway detector and tick the supervisor at this boundary *)
    t.progress_pc <- -1;
    t.progress_ticks <- 0;
    (match t.tick_hook with Some f -> f ~pc:next | None -> ());
    goto_base next
  and commit_ck ~next =
    (* shadow verification: the packet that just committed is checked
       against the reference interpreter.  [Some pc] means a divergence
       was found and repaired back to the pre-packet snapshot — resume
       there by interpretation. *)
    match t.shadow_commit with None -> None | Some f -> f ~next
  and exec_at (page : Translate.xpage) id =
    decr fuel_left;
    let vliw = Vec.get page.vliws id in
    if !fuel_left <= 0 then begin
      t.resume_pc <- vliw.precise_entry;
      raise Out_of_fuel
    end;
    if
      (match (t.tick_hook, t.progress_limit) with
      | None, None -> false
      | _ -> boundary_tick t ~pc:vliw.precise_entry)
    then recover_at vliw.precise_entry
    else if take_redispatch t ~pc:vliw.precise_entry then
      (* a region was installed under us: leave the tier-1 chain at
         this precise boundary and dispatch into the promoted image *)
      goto_base vliw.precise_entry
    else if (match t.prefault_hook with Some f -> f () | None -> false)
    then begin
      (* injected page-fault storm: the VLIW appears not to have
         executed, exactly like a real access fault *)
      stats.rollbacks <- stats.rollbacks + 1;
      emit t (fun () ->
          Rolled_back { cycle = now t; pc = vliw.precise_entry; kind = RbFault });
      recover_at vliw.precise_entry
    end
    else begin
    (match t.boundary_hook with
    | Some f when t.st.m.msr land Machine.Msr.ee <> 0 ->
      if f () then begin
        (* spurious external interrupt: VLIW boundaries are precise *)
        stats.external_interrupts <- stats.external_interrupts + 1;
        emit t (fun () -> External_interrupt { cycle = now t });
        let vliw = Vec.get page.vliws id in
        Interp.interrupt t.st.m ~return_pc:vliw.precise_entry
          Interp.Vector.external_;
        raise (Deliver t.st.m.pc)
      end
    | _ -> ());
    (match t.timer_interval with
    | Some n ->
      t.timer_count <- t.timer_count + 1;
      if t.timer_count >= n && t.st.m.msr land Machine.Msr.ee <> 0 then begin
        (* external interrupt: state at a VLIW boundary is precise *)
        t.timer_count <- 0;
        stats.external_interrupts <- stats.external_interrupts + 1;
        emit t (fun () -> External_interrupt { cycle = now t });
        let vliw = Vec.get page.vliws id in
        Interp.interrupt t.st.m ~return_pc:vliw.precise_entry
          Interp.Vector.external_;
        raise (Deliver t.st.m.pc)
      end
    | None -> ());
    if vliw.is_entry then spec_clear t;
    (match t.fetch_hook with
    | Some f -> f ~addr:(Vec.get page.addrs id) ~size:(Vec.get page.sizes id)
    | None -> ());
    (match t.shadow_arm with Some f -> f ~pc:vliw.precise_entry | None -> ());
    (match t.active_region with
    | Some _ ->
      (* track the tier-1 page each region VLIW was entered from, so
         ladder strikes, exit edges and deadline events stay
         page-granular even under a multi-page image *)
      t.current_page <-
        vliw.precise_entry land lnot (t.tr.params.page_size - 1);
      stats.tier2_vliws <- stats.tier2_vliws + 1
    | None -> ());
    stats.vliws <- stats.vliws + 1;
    match Exec.run t.st t.mem ~alias_check:(alias_check t) vliw with
    | exception Exec.Error reason -> exec_fault_at vliw.precise_entry reason
    | Rollback reason -> rolled_back_at vliw.precise_entry reason
    | Done { exit; accesses; nops = _ } ->
      List.iter
        (fun (a : Exec.access) ->
          if a.store then stats.stores <- stats.stores + 1
          else stats.loads <- stats.loads + 1;
          match t.access_hook with Some f -> f a | None -> ())
        accesses;
      List.iter
        (fun (a : Exec.access) ->
          if (not a.store) && a.passed_store then
            spec_push t a.addr a.bytes a.seq)
        accesses;
      (* note: a self-modifying store never reaches this point — the
         alias/code-mod check rolls the VLIW back first, and the store
         then happens inside the interpretation episode, where the
         memory hook invalidates the page before re-entry *)
      (match exit with
        | T.Next id' -> (
          match commit_ck ~next:(Vec.get page.vliws id').precise_entry with
          | Some p -> recover_at p
          | None -> exec_at page id')
        | T.OnPage off -> (
          stats.onpage_jumps <- stats.onpage_jumps + 1;
          match commit_ck ~next:(page.base + off) with
          | Some p -> recover_at p
          | None -> (
            match Hashtbl.find_opt page.entries off with
            | Some id' ->
              spec_clear t;
              exec_at page id'
            | None ->
              (* invalid entry exception *)
              emit t (fun () ->
                  Cross_page
                    { cycle = now t; kind = Xinvalid_entry;
                      target = page.base + off });
              goto_base (page.base + off)))
        | T.OffPage a -> exit_offpage a
        | T.Indirect (loc, kind) -> exit_indirect vliw.precise_entry loc kind
        | T.Trap tr -> exit_trap tr)
    end
  (* --- handlers shared by both execution engines.  A VLIW that
     faulted, rolled back, or exited off-page behaves identically
     whether the tree walker or the staged engine ran it. *)
  and exec_fault_at precise reason =
    (* malformed VLIW (corruption, translator bug): no write was
       applied, so the precise entry state is intact — quarantine the
       page and redo these instructions by interpretation *)
    (match t.shadow_abort with Some f -> f () | None -> ());
    stats.exec_faults <- stats.exec_faults + 1;
    emit t (fun () ->
        Exec_fault { cycle = now t; page = t.current_page; pc = precise; reason });
    tcache_evict t t.current_page;
    record_failure t t.current_page;
    recover_at precise
  and rolled_back_at precise (reason : Exec.reason) =
    (match t.shadow_abort with Some f -> f () | None -> ());
    stats.rollbacks <- stats.rollbacks + 1;
    emit t (fun () ->
        let kind =
          match reason with
          | Ralias -> if t.pending_selfmod then RbSelfmod else RbAlias
          | Rfault _ -> RbFault
          | Rtag _ -> RbTag
        in
        Rolled_back { cycle = now t; pc = precise; kind });
    (match reason with
    | Ralias when t.pending_selfmod -> t.pending_selfmod <- false
    | Ralias when t.active_region <> None ->
      stats.aliases <- stats.aliases + 1;
      (match t.active_region with
      | Some r ->
        (* under a region image, frequent aliasing deopts instead of
           adaptively retranslating: tier-1's own tally takes over once
           the member pages run unpromoted again *)
        r.r_aliases <- r.r_aliases + 1;
        if r.r_aliases >= 32 then
          deopt_region t r ~page:t.current_page ~reason:"frequent aliasing"
      | None -> ())
    | Ralias ->
      stats.aliases <- stats.aliases + 1;
      if t.tr.params.adaptive_alias then begin
        let n =
          1
          + match Hashtbl.find_opt t.alias_tally t.current_page with
            | Some n -> n
            | None -> 0
        in
        Hashtbl.replace t.alias_tally t.current_page n;
        (* frequent aliasing: retranslate this page with load
           speculation inhibited (Section 5's suggested refinement) *)
        if n = 32 then begin
          (* the persisted entry embeds speculation decisions the
             tally just disproved; drop it so the retranslation (with
             load speculation off) is what gets re-persisted *)
          tcache_evict t t.current_page;
          Translate.inhibit_load_spec t.tr t.current_page;
          Translate.invalidate t.tr t.current_page;
          drop_compiled t t.current_page;
          stats.adaptive_retranslations <- stats.adaptive_retranslations + 1;
          emit t (fun () ->
              Retranslate_adaptive { cycle = now t; page = t.current_page })
        end
      end
    | Rfault _ | Rtag _ -> ());
    recover_at precise
  and exit_offpage a =
    stats.cross_direct <- stats.cross_direct + 1;
    emit t (fun () -> Cross_page { cycle = now t; kind = Xdirect; target = a });
    (match t.event_hook with
    | None -> ()
    | Some _ ->
      let src = t.current_page in
      let dst = Translate.page_base t.tr a in
      if dst <> src then
        emit t (fun () ->
            (* landing exactly on the next page's first byte is how a
               translation falls off its page end *)
            let kind =
              if a = src + t.tr.params.page_size then Efall else Etaken
            in
            Exit_edge { cycle = now t; src; dst; kind }));
    match commit_ck ~next:a with
    | Some p -> recover_at p
    | None -> goto_base a
  and exit_indirect precise loc kind =
    (match kind with
    | `Lr -> stats.cross_lr <- stats.cross_lr + 1
    | `Ctr -> stats.cross_ctr <- stats.cross_ctr + 1
    | `Gpr -> stats.cross_gpr <- stats.cross_gpr + 1);
    let v, tag = Vliw.Vstate.get t.st loc in
    match tag with
    | Vliw.Vstate.Clean -> (
      emit t (fun () ->
          let xkind =
            match kind with `Lr -> Xlr | `Ctr -> Xctr | `Gpr -> Xgpr
          in
          Cross_page { cycle = now t; kind = xkind; target = v land lnot 1 });
      (match t.event_hook with
      | None -> ()
      | Some _ ->
        let src = t.current_page in
        let dst = Translate.page_base t.tr (v land lnot 1) in
        (* an indirect target may resolve on-page; only a genuine page
           change is an edge *)
        if dst <> src then
          emit t (fun () ->
              let ekind =
                match kind with `Lr -> Elr | `Ctr -> Ectr | `Gpr -> Egpr
              in
              Exit_edge { cycle = now t; src; dst; kind = ekind }));
      match commit_ck ~next:(v land lnot 1) with
      | Some p -> recover_at p
      | None -> goto_base (v land lnot 1))
    | _ ->
      (* cannot branch on a tagged value: recover precisely *)
      (match t.shadow_abort with Some f -> f () | None -> ());
      stats.rollbacks <- stats.rollbacks + 1;
      emit t (fun () ->
          Rolled_back { cycle = now t; pc = precise; kind = RbTagged_target });
      recover_at precise
  and exit_trap tr =
    match tr with
    | T.Tsc next -> (
      stats.syscalls <- stats.syscalls + 1;
      emit t (fun () -> Syscall_trap { cycle = now t; next });
      Interp.interrupt t.st.m ~return_pc:next Interp.Vector.syscall;
      match commit_ck ~next:t.st.m.pc with
      | Some p -> recover_at p
      | None -> goto_base t.st.m.pc)
    | T.Trfi -> (
      let m = t.st.m in
      m.msr <- m.srr1;
      let target = m.srr0 land lnot 3 in
      (* interpret briefly after rfi, as Section 3.4 prescribes *)
      match commit_ck ~next:target with
      | Some p -> recover_at p
      | None -> recover_at target)
    | T.Tillegal a ->
      (* The translator could not crack the word at [a] — but that
         conflates two architecturally distinct cases: an illegal
         word (program interrupt) and an unfetchable pc (ISI).
         Hand the pc to the interpreter, whose own fetch/decode
         delivers the correct vector.  Found by the differential
         fuzzer: a branch to an unmapped absolute address raised a
         program interrupt here where the base architecture takes
         an instruction-storage interrupt. *)
      (match commit_ck ~next:a with Some p -> recover_at p | None -> recover_at a)
  (* --- the staged (closure-compiled) engine: one [exec_c] per VLIW,
     mirroring [exec_at] step for step, with intra-page control flow
     direct-linked through the staged exits. *)
  and exec_c (page : Translate.xpage) (cp : C.page) (cv : C.cvliw) =
    decr fuel_left;
    let precise = cv.c_tree.precise_entry in
    if !fuel_left <= 0 then begin
      t.resume_pc <- precise;
      raise Out_of_fuel
    end;
    if
      (match (t.tick_hook, t.progress_limit) with
      | None, None -> false
      | _ -> boundary_tick t ~pc:precise)
    then recover_at precise
    else if take_redispatch t ~pc:precise then
      (* a region was installed under us: leave the tier-1 chain at
         this precise boundary and dispatch into the promoted image *)
      goto_base precise
    else if (match t.prefault_hook with Some f -> f () | None -> false)
    then begin
      (* injected page-fault storm: the VLIW appears not to have
         executed, exactly like a real access fault *)
      stats.rollbacks <- stats.rollbacks + 1;
      emit t (fun () ->
          Rolled_back { cycle = now t; pc = precise; kind = RbFault });
      recover_at precise
    end
    else begin
    (match t.boundary_hook with
    | Some f when t.st.m.msr land Machine.Msr.ee <> 0 ->
      if f () then begin
        (* spurious external interrupt: VLIW boundaries are precise *)
        stats.external_interrupts <- stats.external_interrupts + 1;
        emit t (fun () -> External_interrupt { cycle = now t });
        Interp.interrupt t.st.m ~return_pc:precise Interp.Vector.external_;
        raise (Deliver t.st.m.pc)
      end
    | _ -> ());
    (match t.timer_interval with
    | Some n ->
      t.timer_count <- t.timer_count + 1;
      if t.timer_count >= n && t.st.m.msr land Machine.Msr.ee <> 0 then begin
        (* external interrupt: state at a VLIW boundary is precise *)
        t.timer_count <- 0;
        stats.external_interrupts <- stats.external_interrupts + 1;
        emit t (fun () -> External_interrupt { cycle = now t });
        Interp.interrupt t.st.m ~return_pc:precise Interp.Vector.external_;
        raise (Deliver t.st.m.pc)
      end
    | None -> ());
    if cv.c_tree.is_entry then spec_clear t;
    (match t.fetch_hook with
    | Some f ->
      f ~addr:(Vec.get page.addrs cv.c_id) ~size:(Vec.get page.sizes cv.c_id)
    | None -> ());
    (match t.shadow_arm with Some f -> f ~pc:precise | None -> ());
    (match t.active_region with
    | Some _ ->
      t.current_page <- precise land lnot (t.tr.params.page_size - 1);
      stats.tier2_vliws <- stats.tier2_vliws + 1
    | None -> ());
    stats.vliws <- stats.vliws + 1;
    match C.exec_vliw cp cv ~alias_check:(alias_check_c t) with
    | exception Exec.Error reason -> exec_fault_at precise reason
    | exception Exec.Roll reason -> rolled_back_at precise reason
    | leaf ->
      let s = t.cscratch in
      (match t.access_hook with
      | None ->
        for i = 0 to s.a_n - 1 do
          if s.a_store.(i) then stats.stores <- stats.stores + 1
          else begin
            stats.loads <- stats.loads + 1;
            if s.a_passed.(i) then
              spec_push t s.a_addr.(i) s.a_bytes.(i) s.a_seq.(i)
          end
        done
      | Some f ->
        for i = 0 to s.a_n - 1 do
          if s.a_store.(i) then stats.stores <- stats.stores + 1
          else begin
            stats.loads <- stats.loads + 1;
            if s.a_passed.(i) then
              spec_push t s.a_addr.(i) s.a_bytes.(i) s.a_seq.(i)
          end;
          f
            { Exec.addr = s.a_addr.(i); bytes = s.a_bytes.(i);
              seq = s.a_seq.(i); passed_store = s.a_passed.(i);
              store = s.a_store.(i) }
        done);
      (match leaf.exit with
      | C.Cnext cv' -> (
        match commit_ck ~next:cv'.c_tree.precise_entry with
        | Some p -> recover_at p
        | None -> exec_c page cp cv')
      | C.Cnext_id id' -> (
        let cv' = C.get cp id' in
        match commit_ck ~next:cv'.c_tree.precise_entry with
        | Some p -> recover_at p
        | None -> exec_c page cp cv')
      | C.Conpage link -> (
        stats.onpage_jumps <- stats.onpage_jumps + 1;
        match commit_ck ~next:(page.base + link.l_off) with
        | Some p -> recover_at p
        | None ->
          if link.l_entry >= 0 then begin
            (* steady state: the memoized slot, no Hashtbl probe *)
            stats.direct_link_hits <- stats.direct_link_hits + 1;
            spec_clear t;
            exec_c page cp (C.get cp link.l_entry)
          end
          else (
            match Hashtbl.find_opt page.entries link.l_off with
            | Some id' ->
              link.l_entry <- id';
              spec_clear t;
              exec_c page cp (C.get cp id')
            | None ->
              (* invalid entry exception *)
              emit t (fun () ->
                  Cross_page
                    { cycle = now t; kind = Xinvalid_entry;
                      target = page.base + link.l_off });
              goto_base (page.base + link.l_off)))
      | C.Coffpage a -> exit_offpage a
      | C.Cindirect (loc, kind) -> exit_indirect precise loc kind
      | C.Ctrap tr -> exit_trap tr)
    end
  in
  let rec drive addr =
    match goto_base addr with
    | () -> None  (* unreachable: the loop exits via exceptions *)
    | exception Mem.Halted code -> Some code
    | exception Out_of_fuel -> None
    | exception Deliver vector -> drive vector
  in
  t.resume_pc <- entry;
  drive entry
