(* Measured workload runs: the harness behind every experiment.

   A run executes a workload twice — once on the reference interpreter
   (the golden model, which also provides the dynamic/static instruction
   counts and reuse factors), once under DAISY with the cache hierarchy
   attached — verifies that both executions agree exactly, and collects
   the metrics the paper's tables and figures report. *)

module Translate = Translator.Translate
module Params = Translator.Params
open Ppc

type result = {
  name : string;
  exit_code : int option;
  base_insns : int;        (** dynamic base instructions (reference run) *)
  static_insns : int;      (** distinct static instructions executed *)
  vliws : int;             (** tree VLIWs executed *)
  interp_insns : int;      (** instructions run in VMM interpretation episodes *)
  cycles_infinite : int;
  cycles_finite : int;
  stall_cycles : int;
  ilp_inf : float;         (** pathlength reduction, infinite cache *)
  ilp_fin : float;
  loads : int;
  stores : int;
  load_misses : int;       (** first-level data misses on loads *)
  store_misses : int;
  imiss : int;             (** first-level instruction misses *)
  miss_l0d : float;        (** miss rates (Figure 5.2) *)
  miss_l0i : float;
  miss_joint : float;
  stats : Monitor.stats;
  totals : Translate.totals;
  code_bytes : int;        (** total translated code *)
  pages_translated : int;
  insns_translated : int;  (** translation work, incl. re-scheduling *)
  console : string;        (** guest console output of the DAISY run *)
}

(** Run the reference interpreter only. *)
let reference (w : Workloads.Wl.t) =
  let mem, entry = Workloads.Wl.instantiate w in
  let st = Machine.create () in
  st.pc <- entry;
  let it = Interp.create st mem in
  let code = Interp.run it ~fuel:w.fuel in
  (code, st, mem, it)

exception Mismatch of string

(* Memory comparison with an exclusion list: word [addrs] are blanked
   on both sides first.  Interrupt-injecting runs exclude the mini OS's
   interrupt counter — the only memory a transparent interrupt touches. *)
let mem_equal ~ignore_mem (a : Bytes.t) (b : Bytes.t) =
  match ignore_mem with
  | [] -> Bytes.equal a b
  | addrs ->
    let a = Bytes.copy a and b = Bytes.copy b in
    List.iter
      (fun addr ->
        if addr >= 0 && addr + 4 <= Bytes.length a then begin
          Bytes.set_int32_be a addr 0l;
          Bytes.set_int32_be b addr 0l
        end)
      addrs;
    Bytes.equal a b

(** Did the degradation ladder engage during this run?  True when any
    translator/execution fault was quarantined — the run still verified
    bit-exact against the reference interpreter, but it got there by
    (partially) falling back to interpretation. *)
let degraded (s : Monitor.stats) =
  s.translator_faults > 0 || s.exec_faults > 0 || s.quarantines > 0
  || s.interp_pinned > 0 || s.deadline_hits > 0 || s.shadow_divergences > 0
  (* a dropped checkpoint is a durability promise broken: correct
     answers, degraded run.  [tcache_degraded] deliberately does NOT
     count — the cache is best-effort, so overlay fallback is routine
     operation, surfaced through stats/HEALTH instead of the verdict. *)
  || s.storage_faults > 0

(** [run ?params ?engine ?hierarchy ?instrument ?prepare ?tcache_dir
    ?ignore_mem w] executes [w] under DAISY and returns the full set of
    measurements.  [engine] selects the VLIW execution engine (tree
    walker or staged closures; defaults to {!Monitor.create}'s default).
    [instrument] is called with the freshly-created VMM before execution
    starts, so observability sinks can attach to
    {!Monitor.t.event_hook}.  [prepare] runs after instrumentation and
    may override the start point: returning [Some (entry, fuel)] makes
    the run continue from a restored mid-run state (checkpoint resume)
    instead of the workload's entry — the reference run is unaffected,
    so the differential verification at the end still checks the
    *complete* execution's architected effects.  [tcache_dir] enables
    the persistent translation cache there; [tcache_io] overrides its
    storage backend (the chaos harnesses inject faults through it).
    [ignore_mem] lists word
    addresses excluded from the differential memory comparison
    (interrupt counters under injected interrupts).  Raises {!Mismatch}
    if the translated execution diverges from the reference interpreter
    in any observable way. *)
let run ?(params = Params.default) ?engine ?hierarchy ?instrument ?prepare
    ?tcache_dir ?tcache_io ?(ignore_mem = []) (w : Workloads.Wl.t) =
  let rcode, rst, rmem, it = reference w in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Monitor.create ~params ?engine ?tcache_dir ?tcache_io mem in
  let load_misses = ref 0 and store_misses = ref 0 and imiss = ref 0 in
  let stall = ref 0 in
  (match hierarchy with
  | None -> ()
  | Some h ->
    vmm.fetch_hook <-
      Some
        (fun ~addr ~size ->
          let cycles, l1_hit = Memsys.Hierarchy.access h I addr (max 4 size) in
          if not l1_hit then incr imiss;
          stall := !stall + cycles);
    vmm.interp_fetch_hook <-
      Some
        (fun pc ->
          let cycles, l1_hit = Memsys.Hierarchy.access h I pc 4 in
          if not l1_hit then incr imiss;
          stall := !stall + cycles);
    vmm.access_hook <-
      Some
        (fun (a : Vliw.Exec.access) ->
          if Mem.is_mmio a.addr then ()
          else (
            let cycles, l1_hit = Memsys.Hierarchy.access h D a.addr a.bytes in
            if not l1_hit then
              if a.store then incr store_misses else incr load_misses;
            stall := !stall + cycles)));
  (match instrument with Some f -> f vmm | None -> ());
  let entry, fuel =
    match prepare with
    | None -> (entry, w.fuel * 2)
    | Some f -> (
      match f vmm with None -> (entry, w.fuel * 2) | Some ef -> ef)
  in
  let dcode = Monitor.run vmm ~entry ~fuel in
  if rcode <> dcode then
    raise (Mismatch (Printf.sprintf "%s: exit %s vs %s" w.name
                       (match rcode with Some c -> string_of_int c | None -> "fuel")
                       (match dcode with Some c -> string_of_int c | None -> "fuel")));
  (* When both sides ran out of fuel there is no verification point: the
     two executions were cut at unrelated places, so their intermediate
     states are incomparable.  The fuzzer reports such runs as hangs. *)
  if rcode <> None then begin
    if not (Machine.equal rst vmm.st.m) then
      raise (Mismatch (w.name ^ ": architected state diverged"));
    if not (mem_equal ~ignore_mem rmem.bytes mem.bytes) then
      raise (Mismatch (w.name ^ ": memory diverged"));
    if Mem.output rmem <> Mem.output mem then
      raise (Mismatch (w.name ^ ": console output diverged"))
  end;
  let s = vmm.stats in
  let cycles_inf = s.vliws + s.interp_insns in
  let cycles_fin = cycles_inf + !stall in
  let miss_rate (c : Memsys.Cache.t option) =
    match c with Some c -> Memsys.Cache.miss_rate c | None -> 0.0
  in
  let h0i, h0d, hj =
    match hierarchy with
    | None -> (None, None, None)
    | Some h ->
      ( Some (Memsys.Hierarchy.l0i h),
        Some (Memsys.Hierarchy.l0d h),
        Some (Memsys.Hierarchy.joint h) )
  in
  { name = w.name;
    exit_code = dcode;
    base_insns = it.icount;
    static_insns = Interp.static_touched it;
    vliws = s.vliws;
    interp_insns = s.interp_insns;
    cycles_infinite = cycles_inf;
    cycles_finite = cycles_fin;
    stall_cycles = !stall;
    ilp_inf = float_of_int it.icount /. float_of_int (max 1 cycles_inf);
    ilp_fin = float_of_int it.icount /. float_of_int (max 1 cycles_fin);
    loads = s.loads;
    stores = s.stores;
    load_misses = !load_misses;
    store_misses = !store_misses;
    imiss = !imiss;
    miss_l0d = miss_rate h0d;
    miss_l0i = miss_rate h0i;
    miss_joint = miss_rate hj;
    stats = s;
    totals = vmm.tr.totals;
    code_bytes = vmm.tr.totals.code_bytes;
    pages_translated = vmm.tr.totals.pages;
    insns_translated = vmm.tr.totals.insns;
    console = Mem.output mem }
