(* Execution of one tree VLIW instruction.

   Semantics (Chapter 2 / Section 3.5 of the paper):
   - all conditional tests read the state at VLIW entry and select one
     root-to-leaf path;
   - the operations on that path execute in parallel: every operand is
     read from the entry state, then all results are written (writes of
     in-order commits apply in program order, so multiple commits of the
     same architected register in one VLIW resolve like the base
     architecture would);
   - we give the VLIW "whole-instruction" exception semantics: if any
     non-speculative operation faults, uses a tagged register, or a
     store is found to conflict with a speculative load that bypassed it,
     the entire VLIW appears not to have executed and the VMM recovers
     from the precise base address recorded at VLIW entry. *)

open Ppc

(** Why a VLIW was rolled back with no state change. *)
type reason =
  | Rfault of { addr : int; write : bool }  (** non-speculative access fault *)
  | Rtag of Vstate.tag                      (** tagged register consumed *)
  | Ralias                                  (** store hit a bypassing load *)

(** A memory access performed by a VLIW, for cache models and the
    runtime alias check.  [seq] is the program-order sequence number the
    translator assigned; [passed_store] marks loads that were moved
    above at least one earlier store. *)
type access = {
  addr : int;
  bytes : int;
  seq : int;
  passed_store : bool;
  store : bool;
}

type outcome =
  | Done of { exit : Tree.exit; accesses : access list; nops : int }
  | Rollback of reason

exception Roll of reason

exception Error of string
(** A malformed VLIW: an open tip reached at runtime, an out-of-range
    register or condition-field location, or any other structural
    corruption of the tree.  Raised before any write is applied, so the
    architected state is exactly as it was at VLIW entry — the monitor's
    degradation ladder can quarantine the page and re-execute the same
    instructions by interpretation. *)

(* Pending writes, applied only if the whole VLIW succeeds. *)
type write =
  | Wgpr of Op.loc * int
  | Wtagged of Op.loc * int * Vstate.tag  (* speculative result + tag *)
  | Wext of Op.loc * bool
  | Wcr of Op.loc * int
  | Wcrtagged of Op.loc * int * Vstate.tag
  | Wca of bool
  | Wlr of int
  | Wctr of int
  | Wxer of int
  | Wspr of Op.slow_spr * int
  | Wmsr of int
  | Wstore of Insn.width * int * int
  | Wmmio_load of Op.loc * Insn.width * int
      (* I/O-space loads are side-effecting: defer them to the apply
         phase so a rolled-back VLIW never touches the device *)

let u32 = Interp.u32
let s32 = Interp.s32

(* Select the path: evaluate tests against entry state, collect ops. *)
let rec select (st : Vstate.t) (n : Tree.node) acc =
  (* [n.ops] is stored newest-first; the accumulator holds the whole
     path newest-first so the final reversal restores program order *)
  let acc = n.ops @ acc in
  match n.kind with
  | Tree.Open -> raise (Error "open tip reached at runtime")
  | Exit e -> (List.rev acc, e)
  | Branch { test; taken; fall } ->
    let field, tag = Vstate.get_cr_tagged st (test.bit / 4) in
    (match tag with Vstate.Clean -> () | t -> raise (Roll (Rtag t)));
    let bit = (field lsr (3 - (test.bit mod 4))) land 1 = 1 in
    select st (if bit = test.sense then taken else fall) acc

(* Read a GPR-space operand.  [spec] ops propagate tags; non-spec ops
   fault on them. *)
let rd st ~spec tagref l =
  let v, tag = Vstate.get st l in
  (match tag with
  | Vstate.Clean -> ()
  | t -> if spec then (if !tagref = Vstate.Clean then tagref := t) else raise (Roll (Rtag t)));
  v

(* Read a condition-field operand; speculative ops propagate tags. *)
let rd_cr st ~spec tagref l =
  let v, tag = Vstate.get_cr_tagged st l in
  (match tag with
  | Vstate.Clean -> ()
  | t -> if spec then (if !tagref = Vstate.Clean then tagref := t) else raise (Roll (Rtag t)));
  v

let eval_xo (op : Insn.xo_op) a b ca =
  (* result, carry_out option *)
  match op with
  | Add -> (u32 (a + b), None)
  | Addc ->
    let r = a + b in
    (u32 r, Some (r > 0xFFFF_FFFF))
  | Adde ->
    let r = a + b + if ca then 1 else 0 in
    (u32 r, Some (r > 0xFFFF_FFFF))
  | Subf -> (u32 (b - a), None)
  | Subfc -> (u32 (b - a), Some (b >= a))
  | Mullw -> (u32 (s32 a * s32 b), None)
  | Mulhw ->
    let p = Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 b)) in
    (u32 (Int64.to_int (Int64.shift_right p 32)), None)
  | Mulhwu ->
    let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
    (u32 (Int64.to_int (Int64.shift_right_logical p 32)), None)
  | Divw -> ((if s32 b = 0 then 0 else u32 (s32 a / s32 b)), None)
  | Divwu -> ((if b = 0 then 0 else a / b), None)
  | Neg -> (u32 (-s32 a), None)

let eval_logic (op : Insn.x_op) s b =
  match op with
  | And_ -> (s land b, None)
  | Or_ -> (s lor b, None)
  | Xor_ -> (s lxor b, None)
  | Nand -> (u32 (lnot (s land b)), None)
  | Nor -> (u32 (lnot (s lor b)), None)
  | Andc -> (s land u32 (lnot b), None)
  | Eqv -> (u32 (lnot (s lxor b)), None)
  | Slw ->
    let n = b land 0x3F in
    ((if n >= 32 then 0 else u32 (s lsl n)), None)
  | Srw ->
    let n = b land 0x3F in
    ((if n >= 32 then 0 else s lsr n), None)
  | Sraw ->
    let n = b land 0x3F in
    if n >= 32 then
      ( (if s land 0x8000_0000 <> 0 then 0xFFFF_FFFF else 0),
        Some (s land 0x8000_0000 <> 0 && s <> 0) )
    else
      let lost = s land ((1 lsl n) - 1) in
      (u32 (s32 s asr n), Some (s land 0x8000_0000 <> 0 && lost <> 0))

let eval_ibin (op : Op.ibin) a imm =
  match op with
  | IAdd -> (u32 (a + imm), None)
  | IAddc ->
    let r = a + u32 imm in
    (u32 r, Some (r > 0xFFFF_FFFF))
  | IMul -> (u32 (s32 a * imm), None)
  | IAnd -> (a land imm, None)
  | IOr -> (a lor imm, None)
  | IXor -> (a lxor imm, None)

let cmp_bits so lt gt =
  let eq = (not lt) && not gt in
  (if lt then 8 else 0) lor (if gt then 4 else 0) lor (if eq then 2 else 0)
  lor if so then 1 else 0

(* Carry result goes to the machine CA if the destination is
   architected (in-order placement), to the extender bit otherwise. *)
let carry_writes rt = function
  | None -> []
  | Some c -> if Op.is_nonarch_gpr rt then [ Wext (rt, c) ] else [ Wca c ]

let cr_writes ~spec ~tag crt v =
  if spec && Op.is_nonarch_cr crt then [ Wcrtagged (crt, v, tag) ]
  else [ Wcr (crt, v) ]

let result_writes ~spec ~tag rt v =
  if spec && Op.is_nonarch_gpr rt then [ Wtagged (rt, v, tag) ] else [ Wgpr (rt, v) ]

(** Compute the effect of one operation against the entry state.
    Returns pending writes and an optional memory access. *)
let eval_op (st : Vstate.t) (mem : Mem.t) seq (op : Op.t) :
    write list * access option =
  match op with
  | Bin { op; rt; ra; rb; ca; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra and b = rd st ~spec tag rb in
    let ca_in = if op = Insn.Adde then Vstate.get_ca st ca else false in
    let v, cout = eval_xo op a b ca_in in
    (result_writes ~spec ~tag:!tag rt v @ carry_writes rt cout, None)
  | BinI { op; rt; ra; imm; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra in
    let v, cout = eval_ibin op a imm in
    (result_writes ~spec ~tag:!tag rt v @ carry_writes rt cout, None)
  | Logic { op; rt; ra; rb; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra and b = rd st ~spec tag rb in
    let v, cout = eval_logic op a b in
    (result_writes ~spec ~tag:!tag rt v @ carry_writes rt cout, None)
  | Un { op; rt; ra; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra in
    (result_writes ~spec ~tag:!tag rt (Interp.alu_x1 op a), None)
  | SrawiOp { rt; ra; sh; spec } ->
    let tag = ref Vstate.Clean in
    let s = rd st ~spec tag ra in
    let lost = if sh = 0 then 0 else s land ((1 lsl sh) - 1) in
    let c = s land 0x8000_0000 <> 0 && lost <> 0 in
    (result_writes ~spec ~tag:!tag rt (u32 (s32 s asr sh)) @ carry_writes rt (Some c), None)
  | RlwinmOp { rt; ra; sh; mb; me; spec } ->
    let tag = ref Vstate.Clean in
    let s = rd st ~spec tag ra in
    let v = Interp.rotl32 s sh land Interp.mask_mb_me mb me in
    (result_writes ~spec ~tag:!tag rt v, None)
  | CmpOp { signed; crt; ra; rb; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra and b = rd st ~spec tag rb in
    let lt, gt = if signed then (s32 a < s32 b, s32 a > s32 b) else (a < b, a > b) in
    (cr_writes ~spec ~tag:!tag crt (cmp_bits st.m.xer_so lt gt), None)
  | CmpIOp { signed; crt; ra; imm; spec } ->
    let tag = ref Vstate.Clean in
    let a = rd st ~spec tag ra in
    let b = if signed then u32 imm else imm in
    let lt, gt = if signed then (s32 a < s32 b, s32 a > s32 b) else (a < b, a > b) in
    (cr_writes ~spec ~tag:!tag crt (cmp_bits st.m.xer_so lt gt), None)
  | LoadOp { w; alg; rt; base; off; spec; passed } ->
    let tag = ref Vstate.Clean in
    let b = rd st ~spec tag base in
    let o = match off with Op.OImm i -> i | OReg r -> rd st ~spec tag r in
    let addr = u32 (b + o) in
    if spec && Mem.is_mmio addr then ([ Wtagged (rt, 0, Vstate.Tmmio) ], None)
    else if Mem.is_mmio addr then ([ Wmmio_load (rt, w, addr) ], None)
    else (
      match Mem.load mem w addr with
      | v ->
        let v =
          if alg && w = Insn.Half then u32 (s32 ((v land 0xFFFF) lsl 16) asr 16)
          else v
        in
        ( result_writes ~spec ~tag:!tag rt v,
          Some { addr; bytes = Mem.width_bytes w; seq; passed_store = passed;
                 store = false } )
      | exception Mem.Data_fault _ ->
        if spec then ([ Wtagged (rt, 0, Vstate.Tfault addr) ], None)
        else raise (Roll (Rfault { addr; write = false })))
  | StoreOp { w; rs; base; off } ->
    let tag = ref Vstate.Clean in
    let v = rd st ~spec:false tag rs in
    let b = rd st ~spec:false tag base in
    let o = match off with Op.OImm i -> i | OReg r -> rd st ~spec:false tag r in
    let addr = u32 (b + o) in
    let n = Mem.width_bytes w in
    if (not (Mem.is_mmio addr)) && not (Mem.in_bounds mem addr n) then
      raise (Roll (Rfault { addr; write = true }));
    ( [ Wstore (w, addr, v) ],
      Some { addr; bytes = n; seq; passed_store = false; store = true } )
  | CropOp { op; bt; ba; bb; old; spec } ->
    let tag = ref Vstate.Clean in
    let bitval i =
      (rd_cr st ~spec tag (i / 4) lsr (3 - (i mod 4))) land 1
    in
    let a = bitval ba and b = bitval bb in
    let v =
      match op with
      | Insn.Crand -> a land b
      | Cror -> a lor b
      | Crxor -> a lxor b
      | Crnand -> 1 - (a land b)
      | Crnor -> 1 - (a lor b)
      | Crandc -> a land (1 - b)
      | Creqv -> 1 - (a lxor b)
      | Crorc -> a lor (1 - b)
    in
    let fld = bt / 4 and pos = 3 - (bt mod 4) in
    let prev = if old < 0 then 0 else rd_cr st ~spec tag old in
    (cr_writes ~spec ~tag:!tag fld (prev land lnot (1 lsl pos) lor (v lsl pos)), None)
  | McrfOp { dst; src; spec } ->
    let tag = ref Vstate.Clean in
    (cr_writes ~spec ~tag:!tag dst (rd_cr st ~spec tag src), None)
  | MfcrOp { rt; srcs } ->
    let tag = ref Vstate.Clean in
    let v = ref 0 in
    for f = 0 to 7 do
      v := (!v lsl 4) lor rd_cr st ~spec:false tag srcs.(f)
    done;
    ([ Wgpr (rt, !v) ], None)
  | CrSetOp { crt; rs; pos } ->
    let tag = ref Vstate.Clean in
    let v = rd st ~spec:false tag rs in
    ([ Wcr (crt, (v lsr (4 * (7 - pos))) land 0xF) ], None)
  | GetXer { rt } -> ([ Wgpr (rt, Machine.get_xer st.m) ], None)
  | SetXer { rs } ->
    let tag = ref Vstate.Clean in
    ([ Wxer (rd st ~spec:false tag rs) ], None)
  | GetSpr { rt; spr } ->
    let v =
      match spr with
      | Op.Xer -> Machine.get_xer st.m
      | Srr0 -> st.m.srr0
      | Srr1 -> st.m.srr1
      | Dar -> st.m.dar
      | Dsisr -> st.m.dsisr
      | Sprg0 -> st.m.sprg0
      | Sprg1 -> st.m.sprg1
      | Msr -> st.m.msr
    in
    ([ Wgpr (rt, v) ], None)
  | SetSpr { spr; rs } ->
    let tag = ref Vstate.Clean in
    ([ Wspr (spr, rd st ~spec:false tag rs) ], None)
  | GetMsr { rt } -> ([ Wgpr (rt, st.m.msr) ], None)
  | SetMsr { rs } ->
    let tag = ref Vstate.Clean in
    ([ Wmsr (rd st ~spec:false tag rs land 0xFFFF) ], None)
  | CommitG { arch; src } ->
    let tag = ref Vstate.Clean in
    ([ Wgpr (arch, rd st ~spec:false tag src) ], None)
  | CommitCr { arch; src } ->
    let tag = ref Vstate.Clean in
    ([ Wcr (arch, rd_cr st ~spec:false tag src) ], None)
  | CommitLr { src } ->
    let tag = ref Vstate.Clean in
    ([ Wlr (rd st ~spec:false tag src) ], None)
  | CommitCtr { src } ->
    let tag = ref Vstate.Clean in
    ([ Wctr (rd st ~spec:false tag src) ], None)
  | CommitCa { src } -> ([ Wca (Vstate.get_ca st src) ], None)

let apply (st : Vstate.t) (mem : Mem.t) = function
  | Wgpr (l, v) -> Vstate.set_gpr st l v
  | Wtagged (l, v, tag) ->
    Vstate.set_gpr st l v;
    Vstate.set_tag st l tag
  | Wext (l, b) -> Vstate.set_ext st l b
  | Wcr (l, v) -> Vstate.set_cr st l v
  | Wcrtagged (l, v, tag) ->
    Vstate.set_cr st l v;
    Vstate.set_cr_tag st l tag
  | Wca b -> st.m.xer_ca <- b
  | Wlr v -> st.m.lr <- v
  | Wctr v -> st.m.ctr <- v
  | Wxer v -> Machine.set_xer st.m v
  | Wspr (spr, v) -> (
    match spr with
    | Op.Xer -> Machine.set_xer st.m v
    | Srr0 -> st.m.srr0 <- v
    | Srr1 -> st.m.srr1 <- v
    | Dar -> st.m.dar <- v
    | Dsisr -> st.m.dsisr <- v
    | Sprg0 -> st.m.sprg0 <- v
    | Sprg1 -> st.m.sprg1 <- v
    | Msr -> st.m.msr <- v)
  | Wmsr v -> st.m.msr <- v
  | Wstore (w, addr, v) -> Mem.store mem w addr v
  | Wmmio_load (l, w, addr) -> Vstate.set_gpr st l (Mem.load mem w addr)

(** Execute [vliw] against [st]/[mem].  [alias_check] receives this
    VLIW's accesses (in program order of their sequence numbers is NOT
    guaranteed; callers filter by [seq]) and must return [false] to
    force an alias rollback.  On success all writes are applied.

    [Invalid_argument]/[Failure] escapes from the select/evaluate phase
    (a corrupted tree indexing a location that does not exist) surface
    as {!Error}: they happen before any write is applied, so raising is
    state-preserving, exactly like a rollback. *)
let run (st : Vstate.t) (mem : Mem.t) ?(alias_check = fun (_ : access list) -> true)
    (vliw : Tree.t) : outcome =
  match
    let ops, exit = select st vliw.root [] in
    let writes = ref [] and accesses = ref [] and nops = ref 0 in
    List.iter
      (fun (seq, op) ->
        incr nops;
        let ws, acc = eval_op st mem seq op in
        writes := ws :: !writes;
        match acc with Some a -> accesses := a :: !accesses | None -> ())
      ops;
    if not (alias_check !accesses) then raise (Roll Ralias);
    (!writes, !accesses, !nops, exit)
  with
  | exception Roll r -> Rollback r
  | exception Invalid_argument msg -> raise (Error ("Invalid_argument: " ^ msg))
  | exception Failure msg -> raise (Error ("Failure: " ^ msg))
  | writes, accesses, nops, exit ->
    (* apply in program order: [writes] was accumulated reversed *)
    List.iter (fun ws -> List.iter (apply st mem) ws) (List.rev writes);
    Done { exit; accesses; nops }
