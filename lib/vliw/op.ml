(* RISC primitives of the migrant (VLIW) architecture.

   The migrant instruction set is a superset of the base architecture
   (Section 2.2 of the paper): the same integer operations, but over a
   64-register file with exception tags and carry extender bits, plus
   16 condition fields, speculative versions of every operation, and
   the commit/copy operations the translator uses to update architected
   state in original program order.

   Operand encoding ("locations"):
   - 0..31   architected GPRs (identical to base architecture r0..r31)
   - 32..63  non-architected GPRs (renaming pool)
   - 64      LR, 65 CTR (architected, but renameable into the GPR pool)
   - 66      the machine CA bit (as a carry source for [Adde])
   - [zero]  (-1) the constant 0 (used for the absent RA=0 base register)
   Condition-field locations are 0..15; 0..7 architected, 8..15 pool. *)

type loc = int

let zero : loc = -1
let lr_loc : loc = 64
let ctr_loc : loc = 65
let ca_loc : loc = 66

let is_nonarch_gpr l = l >= 32 && l < 64
let is_nonarch_cr l = l >= 8 && l < 16

(** Immediate-operand integer operations. *)
type ibin = IAdd | IAddc | IMul | IAnd | IOr | IXor

(** Offset operand of a memory access. *)
type off = OImm of int | OReg of loc

(** SPRs handled by the serialized in-order path. *)
type slow_spr = Xer | Srr0 | Srr1 | Dar | Dsisr | Sprg0 | Sprg1 | Msr

type t =
  | Bin of { op : Ppc.Insn.xo_op; rt : loc; ra : loc; rb : loc; ca : loc; spec : bool }
      (** [ca] is read only by [Adde]: the machine CA ([ca_loc]) or the
          extender bit of a renamed GPR. *)
  | BinI of { op : ibin; rt : loc; ra : loc; imm : int; spec : bool }
  | Logic of { op : Ppc.Insn.x_op; rt : loc; ra : loc; rb : loc; spec : bool }
  | Un of { op : Ppc.Insn.x1_op; rt : loc; ra : loc; spec : bool }
  | SrawiOp of { rt : loc; ra : loc; sh : int; spec : bool }
  | RlwinmOp of { rt : loc; ra : loc; sh : int; mb : int; me : int; spec : bool }
  | CmpOp of { signed : bool; crt : loc; ra : loc; rb : loc; spec : bool }
  | CmpIOp of { signed : bool; crt : loc; ra : loc; imm : int; spec : bool }
      (** compares also copy the machine SO bit into CR bit 3, exactly
          as the base architecture does *)
  | LoadOp of { w : Ppc.Insn.width; alg : bool; rt : loc; base : loc; off : off;
               spec : bool; passed : bool }
      (** [passed]: the load was moved above at least one program-order
          earlier store and needs the runtime alias check *)
  | StoreOp of { w : Ppc.Insn.width; rs : loc; base : loc; off : off }
  | CropOp of { op : Ppc.Insn.cr_op; bt : int; ba : int; bb : int; old : loc; spec : bool }
      (** [old] = location of the previous value of the target field for
          the read-modify-write ([zero] when the target is a fresh
          temporary whose other bits are dead); bit indices are over the
          16 fields, 0..63 *)
  | McrfOp of { dst : loc; src : loc; spec : bool }
  | MfcrOp of { rt : loc; srcs : loc array }  (** 8 field locations, cr0..cr7 *)
  | CrSetOp of { crt : loc; rs : loc; pos : int }
      (** field [crt] <- bits of [rs] at field position [pos] (0..7) *)
  | GetXer of { rt : loc }
  | SetXer of { rs : loc }
  | GetSpr of { rt : loc; spr : slow_spr }
  | SetSpr of { spr : slow_spr; rs : loc }
  | GetMsr of { rt : loc }
  | SetMsr of { rs : loc }
  | CommitG of { arch : int; src : loc }       (** architected GPR <- renamed *)
  | CommitCr of { arch : int; src : loc }      (** architected CR field <- renamed *)
  | CommitLr of { src : loc }
  | CommitCtr of { src : loc }
  | CommitCa of { src : loc }                  (** CA <- extender bit of [src] *)

(** Does this op occupy a memory slot (vs an ALU slot)? *)
let is_mem = function LoadOp _ | StoreOp _ -> true | _ -> false

let is_store = function StoreOp _ -> true | _ -> false
let is_load = function LoadOp _ -> true | _ -> false

let is_commit = function
  | CommitG _ | CommitCr _ | CommitLr _ | CommitCtr _ | CommitCa _ -> true
  | _ -> false

(* Stable small-integer codes for the persistent translation cache's
   binary codec (lib/tcache).  On-disk format: append new codes, never
   renumber, and bump the codec version when the shape changes.  The
   [*_of_code] direction returns [None] for unknown codes so a corrupt
   or newer-format entry decodes to a clean failure, not a bogus op. *)

let ibin_code = function
  | IAdd -> 0 | IAddc -> 1 | IMul -> 2 | IAnd -> 3 | IOr -> 4 | IXor -> 5

let ibin_of_code = function
  | 0 -> Some IAdd | 1 -> Some IAddc | 2 -> Some IMul | 3 -> Some IAnd
  | 4 -> Some IOr | 5 -> Some IXor | _ -> None

let spr_code = function
  | Xer -> 0 | Srr0 -> 1 | Srr1 -> 2 | Dar -> 3 | Dsisr -> 4 | Sprg0 -> 5
  | Sprg1 -> 6 | Msr -> 7

let spr_of_code = function
  | 0 -> Some Xer | 1 -> Some Srr0 | 2 -> Some Srr1 | 3 -> Some Dar
  | 4 -> Some Dsisr | 5 -> Some Sprg0 | 6 -> Some Sprg1 | 7 -> Some Msr
  | _ -> None

(** Structural equality (operands of [MfcrOp] are arrays, so the
    polymorphic compare is the right notion here). *)
let equal (a : t) (b : t) = a = b

let pp_loc ppf l =
  if l = zero then Format.pp_print_string ppf "0"
  else if l = lr_loc then Format.pp_print_string ppf "lr"
  else if l = ctr_loc then Format.pp_print_string ppf "ctr"
  else if l = ca_loc then Format.pp_print_string ppf "ca"
  else Format.fprintf ppf "r%d" l

let pp_off ppf = function
  | OImm i -> Format.fprintf ppf "%d" i
  | OReg r -> pp_loc ppf r

let ibin_name = function
  | IAdd -> "addi"
  | IAddc -> "addic"
  | IMul -> "muli"
  | IAnd -> "andi"
  | IOr -> "ori"
  | IXor -> "xori"

let spr_name = function
  | Xer -> "xer"
  | Srr0 -> "srr0"
  | Srr1 -> "srr1"
  | Dar -> "dar"
  | Dsisr -> "dsisr"
  | Sprg0 -> "sprg0"
  | Sprg1 -> "sprg1"
  | Msr -> "msr"

let pp ppf op =
  let f fmt = Format.fprintf ppf fmt in
  let sp spec = if spec then "s." else "" in
  match op with
  | Bin { op; rt; ra; rb; spec; _ } ->
    f "%s%s %a,%a,%a" (sp spec) (Ppc.Insn.xo_name op) pp_loc rt pp_loc ra pp_loc rb
  | BinI { op; rt; ra; imm; spec } ->
    f "%s%s %a,%a,%d" (sp spec) (ibin_name op) pp_loc rt pp_loc ra imm
  | Logic { op; rt; ra; rb; spec } ->
    f "%s%s %a,%a,%a" (sp spec) (Ppc.Insn.x_name op) pp_loc rt pp_loc ra pp_loc rb
  | Un { op; rt; ra; spec } ->
    f "%s%s %a,%a" (sp spec) (Ppc.Insn.x1_name op) pp_loc rt pp_loc ra
  | SrawiOp { rt; ra; sh; spec } -> f "%ssrawi %a,%a,%d" (sp spec) pp_loc rt pp_loc ra sh
  | RlwinmOp { rt; ra; sh; mb; me; spec } ->
    f "%srlwinm %a,%a,%d,%d,%d" (sp spec) pp_loc rt pp_loc ra sh mb me
  | CmpOp { signed; crt; ra; rb; _ } ->
    f "cmp%s cr%d,%a,%a" (if signed then "w" else "lw") crt pp_loc ra pp_loc rb
  | CmpIOp { signed; crt; ra; imm; _ } ->
    f "cmp%si cr%d,%a,%d" (if signed then "w" else "lw") crt pp_loc ra imm
  | LoadOp { w; alg; rt; base; off; spec; _ } ->
    f "%sl%c%s %a,%a(%a)" (sp spec) (Ppc.Insn.width_letter w)
      (if alg then "a" else "z") pp_loc rt pp_off off pp_loc base
  | StoreOp { w; rs; base; off } ->
    f "st%c %a,%a(%a)" (Ppc.Insn.width_letter w) pp_loc rs pp_off off pp_loc base
  | CropOp { op; bt; ba; bb; _ } -> f "%s %d,%d,%d" (Ppc.Insn.cr_op_name op) bt ba bb
  | McrfOp { dst; src; _ } -> f "mcrf cr%d,cr%d" dst src
  | MfcrOp { rt; _ } -> f "mfcr %a" pp_loc rt
  | CrSetOp { crt; rs; pos } -> f "crset cr%d,%a[%d]" crt pp_loc rs pos
  | GetXer { rt } -> f "mfxer %a" pp_loc rt
  | SetXer { rs } -> f "mtxer %a" pp_loc rs
  | GetSpr { rt; spr } -> f "mf%s %a" (spr_name spr) pp_loc rt
  | SetSpr { spr; rs } -> f "mt%s %a" (spr_name spr) pp_loc rs
  | GetMsr { rt } -> f "mfmsr %a" pp_loc rt
  | SetMsr { rs } -> f "mtmsr %a" pp_loc rs
  | CommitG { arch; src } -> f "r%d=%a" arch pp_loc src
  | CommitCr { arch; src } -> f "cr%d=cr%d" arch src
  | CommitLr { src } -> f "lr=%a" pp_loc src
  | CommitCtr { src } -> f "ctr=%a" pp_loc src
  | CommitCa { src } -> f "ca=ext(%a)" pp_loc src

let to_string op = Format.asprintf "%a" pp op
