(* Staged execution of tree VLIW instructions.

   [Exec.run] re-walks the [Tree.t] on every execution: it re-decodes
   every operand location, allocates a fresh [ref] tag cell per op,
   builds the pending-write set with list appends, and reverses it to
   recover program order.  This module performs all of that work once,
   at page-install time, and turns each tree into OCaml closures:

   - path selection is compiled per tree node — an architected test
     becomes a direct read of [Machine.cr] with precomputed shifts, a
     pool test becomes a direct [crtags]/[crhi] array access;
   - every operand location is resolved once into a closure that reads
     the right [Vstate] array slot (or raises exactly what [Vstate]
     would for a corrupt location, so the monitor's degradation ladder
     sees the same [Exec.Error]s);
   - pending writes and memory accesses accumulate into preallocated
     scratch buffers (parallel int arrays keyed by a small write-kind
     code) that are reset by bumping a fill pointer, not reallocated;
   - each root-to-leaf path is flattened into one closure array, so the
     interpretive engine's two-phase semantics (all tests read entry
     state and pick the path, then the path's ops evaluate against
     entry state, then writes apply in program order) is preserved
     exactly;
   - tree exits are direct-linked: [Tree.Next id] is patched to a
     direct closure reference and [Tree.OnPage off] carries a memoized
     entry-id slot the monitor fills on first use, so steady-state
     intra-page execution never touches a [Hashtbl].

   Rollback and precise-exception semantics are bit-identical to
   [Exec.run]: the same [Exec.Roll] reasons, the same conversion of
   [Invalid_argument]/[Failure] escapes into [Exec.Error], the same
   deferral of I/O-space loads to the apply phase. *)

open Ppc

let u32 = Interp.u32
let s32 = Interp.s32

(* ------------------------------------------------------------------ *)
(* Scratch buffers: pending writes and accesses in program order.
   One instance is shared by every staged page of a monitor — VLIWs
   execute one at a time, so the buffers are reset at VLIW entry and
   never outlive one [exec_vliw] call. *)

type scratch = {
  (* pending writes: kind code + two int operands (+ tag for the
     speculative kinds); meaning of [w_a]/[w_b] depends on the kind *)
  mutable w_n : int;
  mutable w_kind : int array;
  mutable w_a : int array;
  mutable w_b : int array;
  mutable w_tag : Vstate.tag array;
  (* memory accesses (mirrors [Exec.access], struct-of-arrays) *)
  mutable a_n : int;
  mutable a_addr : int array;
  mutable a_bytes : int array;
  mutable a_seq : int array;
  mutable a_passed : bool array;
  mutable a_store : bool array;
  (* per-op speculative tag accumulator (the compiled counterpart of
     [Exec.eval_op]'s [tag] ref cell; first non-clean tag wins) *)
  mutable tag : Vstate.tag;
}

let create_scratch () =
  {
    w_n = 0;
    w_kind = Array.make 64 0;
    w_a = Array.make 64 0;
    w_b = Array.make 64 0;
    w_tag = Array.make 64 Vstate.Clean;
    a_n = 0;
    a_addr = Array.make 32 0;
    a_bytes = Array.make 32 0;
    a_seq = Array.make 32 0;
    a_passed = Array.make 32 false;
    a_store = Array.make 32 false;
    tag = Vstate.Clean;
  }

(* Write-kind codes.  The apply loop switches on these; the operand
   class of every destination was resolved at compile time. *)
let k_gpr_arch = 0 (* gpr.(a) <- b *)
let k_gpr_pool = 1 (* hi.(a) <- b, tag cleared *)
let k_lr = 2
let k_ctr = 3
let k_tagged = 4 (* pool: hi.(a) <- b, tag from w_tag *)
let k_tagged_any = 5 (* raw loc via Vstate setters (corrupt-loc path) *)
let k_ext = 6 (* ext.(a) <- b<>0 *)
let k_ca = 7
let k_cr_arch = 8 (* Machine.set_crf a b *)
let k_cr_pool = 9 (* crhi.(a) <- b land 0xF, tag cleared *)
let k_crtagged = 10
let k_set_gpr = 11 (* raw loc via Vstate.set_gpr (corrupt-loc path) *)
let k_set_cr = 12 (* raw loc via Vstate.set_cr (corrupt-loc path) *)
let k_xer = 13
let k_msr = 14
let k_spr = 15 (* a = Op.spr_code *)
let k_store8 = 16 (* a = addr, b = value *)
let k_store16 = 17
let k_store32 = 18
let k_mmio8 = 19 (* a = dest loc, b = addr: deferred I/O-space load *)
let k_mmio16 = 20
let k_mmio32 = 21

let grow_writes s =
  let n = Array.length s.w_kind in
  let gi a =
    let b = Array.make (2 * n) 0 in
    Array.blit a 0 b 0 n;
    b
  in
  s.w_kind <- gi s.w_kind;
  s.w_a <- gi s.w_a;
  s.w_b <- gi s.w_b;
  let gt = Array.make (2 * n) Vstate.Clean in
  Array.blit s.w_tag 0 gt 0 n;
  s.w_tag <- gt

let push_w s kind a b =
  let n = s.w_n in
  if n = Array.length s.w_kind then grow_writes s;
  s.w_kind.(n) <- kind;
  s.w_a.(n) <- a;
  s.w_b.(n) <- b;
  s.w_n <- n + 1

let push_wt s kind a b tag =
  let n = s.w_n in
  if n = Array.length s.w_kind then grow_writes s;
  s.w_kind.(n) <- kind;
  s.w_a.(n) <- a;
  s.w_b.(n) <- b;
  s.w_tag.(n) <- tag;
  s.w_n <- n + 1

let grow_accesses s =
  let n = Array.length s.a_addr in
  let gi a =
    let b = Array.make (2 * n) 0 in
    Array.blit a 0 b 0 n;
    b
  in
  s.a_addr <- gi s.a_addr;
  s.a_bytes <- gi s.a_bytes;
  s.a_seq <- gi s.a_seq;
  let gb a =
    let b = Array.make (2 * n) false in
    Array.blit a 0 b 0 n;
    b
  in
  s.a_passed <- gb s.a_passed;
  s.a_store <- gb s.a_store

let push_access s addr bytes seq passed store =
  let n = s.a_n in
  if n = Array.length s.a_addr then grow_accesses s;
  s.a_addr.(n) <- addr;
  s.a_bytes.(n) <- bytes;
  s.a_seq.(n) <- seq;
  s.a_passed.(n) <- passed;
  s.a_store.(n) <- store;
  s.a_n <- n + 1

(** The accesses of the last executed VLIW as an [Exec.access] list, in
    program order (the interpretive engine accumulates them reversed). *)
let accesses (s : scratch) : Exec.access list =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ({
           Exec.addr = s.a_addr.(i);
           bytes = s.a_bytes.(i);
           seq = s.a_seq.(i);
           passed_store = s.a_passed.(i);
           store = s.a_store.(i);
         }
        :: acc)
  in
  go (s.a_n - 1) []

(* ------------------------------------------------------------------ *)
(* Compiled operand readers.  Each mirrors its [Vstate] accessor: the
   location class is decided here, once, and corrupt locations become
   closures that raise exactly what the interpretive read would (the
   [Invalid_argument] is converted to [Exec.Error] by [exec_vliw], as
   [Exec.run] does). *)

(* [Exec.rd]: GPR-space operand; spec ops accumulate tags, non-spec
   ops roll back on them. *)
let c_rd (st : Vstate.t) (s : scratch) ~spec (l : Op.loc) : unit -> int =
  if l = Op.zero then fun () -> 0
  else if 0 <= l && l < 32 then
    let gpr = st.m.gpr in
    fun () -> Array.unsafe_get gpr l
  else if l < 32 then fun () -> st.m.gpr.(l) (* negative: faults like Vstate.get *)
  else if l < 64 then begin
    let i = l - 32 in
    let hi = st.hi and tags = st.tags in
    if spec then fun () ->
      (match Array.unsafe_get tags i with
      | Vstate.Clean -> ()
      | t -> if s.tag = Vstate.Clean then s.tag <- t);
      Array.unsafe_get hi i
    else fun () ->
      (match Array.unsafe_get tags i with
      | Vstate.Clean -> ()
      | t -> raise (Exec.Roll (Exec.Rtag t)));
      Array.unsafe_get hi i
  end
  else if l = Op.lr_loc then
    let m = st.m in
    fun () -> m.lr
  else if l = Op.ctr_loc then
    let m = st.m in
    fun () -> m.ctr
  else fun () -> invalid_arg "Vstate.get"

(* [Exec.rd_cr]: condition-field operand. *)
let c_rd_cr (st : Vstate.t) (s : scratch) ~spec (l : Op.loc) : unit -> int =
  if l < 8 then
    let m = st.m and sh = 4 * (7 - l) in
    fun () -> (m.cr lsr sh) land 0xF
  else if l < 16 then begin
    let i = l - 8 in
    let crhi = st.crhi and crtags = st.crtags in
    if spec then fun () ->
      (match Array.unsafe_get crtags i with
      | Vstate.Clean -> ()
      | t -> if s.tag = Vstate.Clean then s.tag <- t);
      Array.unsafe_get crhi i
    else fun () ->
      (match Array.unsafe_get crtags i with
      | Vstate.Clean -> ()
      | t -> raise (Exec.Roll (Exec.Rtag t)));
      Array.unsafe_get crhi i
  end
  else fun () -> st.crhi.(l - 8) (* out of range: faults like get_cr_tagged *)

let c_get_ca (st : Vstate.t) (l : Op.loc) : unit -> bool =
  if l = Op.ca_loc then
    let m = st.m in
    fun () -> m.xer_ca
  else if l >= 32 && l < 64 then
    let ext = st.ext and i = l - 32 in
    fun () -> Array.unsafe_get ext i
  else fun () -> invalid_arg "Vstate.get_ca"

(* ------------------------------------------------------------------ *)
(* Compiled write destinations.  [gpr_write]/[cr_write] mirror the
   plain [Exec.Wgpr]/[Wcr] apply paths; [result]/[cr_result] mirror
   [Exec.result_writes]/[cr_writes] (speculative pool destinations get
   the accumulated tag). *)

let gpr_write (s : scratch) (rt : Op.loc) : int -> unit =
  if 0 <= rt && rt < 32 then fun v -> push_w s k_gpr_arch rt v
  else if Op.is_nonarch_gpr rt then
    let i = rt - 32 in
    fun v -> push_w s k_gpr_pool i v
  else if rt = Op.lr_loc then fun v -> push_w s k_lr 0 v
  else if rt = Op.ctr_loc then fun v -> push_w s k_ctr 0 v
  else fun v -> push_w s k_set_gpr rt v

let result (s : scratch) ~spec (rt : Op.loc) : int -> unit =
  if spec && Op.is_nonarch_gpr rt then
    let i = rt - 32 in
    fun v -> push_wt s k_tagged i v s.tag
  else gpr_write s rt

let cr_write (s : scratch) (crt : Op.loc) : int -> unit =
  if crt < 8 then fun v -> push_w s k_cr_arch crt v
  else if crt < 16 then
    let i = crt - 8 in
    fun v -> push_w s k_cr_pool i v
  else fun v -> push_w s k_set_cr crt v

let cr_result (s : scratch) ~spec (crt : Op.loc) : int -> unit =
  if spec && Op.is_nonarch_cr crt then
    let i = crt - 8 in
    fun v -> push_wt s k_crtagged i v s.tag
  else cr_write s crt

(* [Exec.carry_writes]: carry goes to the machine CA for architected
   destinations, to the extender bit for pool destinations. *)
let carry_write (s : scratch) (rt : Op.loc) : bool -> unit =
  if Op.is_nonarch_gpr rt then
    let i = rt - 32 in
    fun c -> push_w s k_ext i (if c then 1 else 0)
  else fun c -> push_w s k_ca 0 (if c then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Per-op compilation: [c_op st mem s seq op] is the staged counterpart
   of [Exec.eval_op st mem seq op] — operand locations, immediates,
   masks, widths and destination classes are all resolved here; the
   returned closure only reads values, computes, and pushes writes. *)

let c_op (st : Vstate.t) (mem : Mem.t) (s : scratch) seq (op : Op.t) :
    unit -> unit =
  let clean () = s.tag <- Vstate.Clean in
  match op with
  | Bin { op; rt; ra; rb; ca; spec } -> (
    let fa = c_rd st s ~spec ra and fb = c_rd st s ~spec rb in
    let res = result s ~spec rt and carry = carry_write s rt in
    match op with
    | Insn.Add ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (a + b))
    | Addc ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let r = a + b in
        res (u32 r);
        carry (r > 0xFFFF_FFFF)
    | Adde ->
      let fca = c_get_ca st ca in
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let r = a + b + if fca () then 1 else 0 in
        res (u32 r);
        carry (r > 0xFFFF_FFFF)
    | Subf ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (b - a))
    | Subfc ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (b - a));
        carry (b >= a)
    | Mullw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (s32 a * s32 b))
    | Mulhw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let p = Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 b)) in
        res (u32 (Int64.to_int (Int64.shift_right p 32)))
    | Mulhwu ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
        res (u32 (Int64.to_int (Int64.shift_right_logical p 32)))
    | Divw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (if s32 b = 0 then 0 else u32 (s32 a / s32 b))
    | Divwu ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (if b = 0 then 0 else a / b)
    | Neg ->
      fun () ->
        clean ();
        let a = fa () in
        let _b = fb () in
        res (u32 (-s32 a)))
  | BinI { op; rt; ra; imm; spec } -> (
    let fa = c_rd st s ~spec ra in
    let res = result s ~spec rt and carry = carry_write s rt in
    match op with
    | Op.IAdd -> fun () -> clean (); res (u32 (fa () + imm))
    | IAddc ->
      let uimm = u32 imm in
      fun () ->
        clean ();
        let r = fa () + uimm in
        res (u32 r);
        carry (r > 0xFFFF_FFFF)
    | IMul -> fun () -> clean (); res (u32 (s32 (fa ()) * imm))
    | IAnd -> fun () -> clean (); res (fa () land imm)
    | IOr -> fun () -> clean (); res (fa () lor imm)
    | IXor -> fun () -> clean (); res (fa () lxor imm))
  | Logic { op; rt; ra; rb; spec } -> (
    let fa = c_rd st s ~spec ra and fb = c_rd st s ~spec rb in
    let res = result s ~spec rt and carry = carry_write s rt in
    match op with
    | Insn.And_ ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (a land b)
    | Or_ ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (a lor b)
    | Xor_ ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (a lxor b)
    | Nand ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (lnot (a land b)))
    | Nor ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (lnot (a lor b)))
    | Andc ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (a land u32 (lnot b))
    | Eqv ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        res (u32 (lnot (a lxor b)))
    | Slw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let n = b land 0x3F in
        res (if n >= 32 then 0 else u32 (a lsl n))
    | Srw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let n = b land 0x3F in
        res (if n >= 32 then 0 else a lsr n)
    | Sraw ->
      fun () ->
        clean ();
        let a = fa () in
        let b = fb () in
        let n = b land 0x3F in
        if n >= 32 then begin
          res (if a land 0x8000_0000 <> 0 then 0xFFFF_FFFF else 0);
          carry (a land 0x8000_0000 <> 0 && a <> 0)
        end
        else begin
          let lost = a land ((1 lsl n) - 1) in
          res (u32 (s32 a asr n));
          carry (a land 0x8000_0000 <> 0 && lost <> 0)
        end)
  | Un { op; rt; ra; spec } ->
    let fa = c_rd st s ~spec ra in
    let res = result s ~spec rt in
    let f = Interp.alu_x1 op in
    fun () ->
      clean ();
      res (f (fa ()))
  | SrawiOp { rt; ra; sh; spec } ->
    let fa = c_rd st s ~spec ra in
    let res = result s ~spec rt and carry = carry_write s rt in
    let lmask = if sh = 0 then 0 else (1 lsl sh) - 1 in
    fun () ->
      clean ();
      let v = fa () in
      let c = v land 0x8000_0000 <> 0 && v land lmask <> 0 in
      res (u32 (s32 v asr sh));
      carry c
  | RlwinmOp { rt; ra; sh; mb; me; spec } ->
    let fa = c_rd st s ~spec ra in
    let res = result s ~spec rt in
    let mask = Interp.mask_mb_me mb me in
    fun () ->
      clean ();
      res (Interp.rotl32 (fa ()) sh land mask)
  | CmpOp { signed; crt; ra; rb; spec } ->
    let fa = c_rd st s ~spec ra and fb = c_rd st s ~spec rb in
    let res = cr_result s ~spec crt in
    let m = st.m in
    if signed then fun () ->
      clean ();
      let a = fa () in
      let b = fb () in
      res (Exec.cmp_bits m.xer_so (s32 a < s32 b) (s32 a > s32 b))
    else fun () ->
      clean ();
      let a = fa () in
      let b = fb () in
      res (Exec.cmp_bits m.xer_so (a < b) (a > b))
  | CmpIOp { signed; crt; ra; imm; spec } ->
    let fa = c_rd st s ~spec ra in
    let res = cr_result s ~spec crt in
    let m = st.m in
    let b = if signed then u32 imm else imm in
    if signed then fun () ->
      clean ();
      let a = fa () in
      res (Exec.cmp_bits m.xer_so (s32 a < s32 b) (s32 a > s32 b))
    else fun () ->
      clean ();
      let a = fa () in
      res (Exec.cmp_bits m.xer_so (a < b) (a > b))
  | LoadOp { w; alg; rt; base; off; spec; passed } ->
    let fbase = c_rd st s ~spec base in
    let faddr =
      match off with
      | Op.OImm i -> fun () -> u32 (fbase () + i)
      | OReg r ->
        let fo = c_rd st s ~spec r in
        fun () ->
          let b = fbase () in
          let o = fo () in
          u32 (b + o)
    in
    let res = result s ~spec rt in
    let bytes = Mem.width_bytes w in
    let fload =
      match w with
      | Insn.Byte -> Mem.load8
      | Half -> Mem.load16
      | Word -> Mem.load32
    in
    let k_mmio =
      match w with Insn.Byte -> k_mmio8 | Half -> k_mmio16 | Word -> k_mmio32
    in
    let alg_half = alg && w = Insn.Half in
    fun () ->
      clean ();
      let addr = faddr () in
      if Mem.is_mmio addr then
        if spec then push_wt s k_tagged_any rt 0 Vstate.Tmmio
        else push_w s k_mmio rt addr
      else begin
        match fload mem addr with
        | v ->
          let v =
            if alg_half then u32 (s32 ((v land 0xFFFF) lsl 16) asr 16) else v
          in
          res v;
          push_access s addr bytes seq passed false
        | exception Mem.Data_fault _ ->
          if spec then push_wt s k_tagged_any rt 0 (Vstate.Tfault addr)
          else raise (Exec.Roll (Exec.Rfault { addr; write = false }))
      end
  | StoreOp { w; rs; base; off } ->
    let frs = c_rd st s ~spec:false rs in
    let fbase = c_rd st s ~spec:false base in
    let foff =
      match off with
      | Op.OImm i -> fun () -> i
      | OReg r -> c_rd st s ~spec:false r
    in
    let bytes = Mem.width_bytes w in
    let k_store =
      match w with
      | Insn.Byte -> k_store8
      | Half -> k_store16
      | Word -> k_store32
    in
    fun () ->
      clean ();
      let v = frs () in
      let b = fbase () in
      let o = foff () in
      let addr = u32 (b + o) in
      if (not (Mem.is_mmio addr)) && not (Mem.in_bounds mem addr bytes) then
        raise (Exec.Roll (Exec.Rfault { addr; write = true }));
      push_w s k_store addr v;
      push_access s addr bytes seq false true
  | CropOp { op; bt; ba; bb; old; spec } ->
    let c_bit i =
      let f = c_rd_cr st s ~spec (i / 4) and sh = 3 - (i mod 4) in
      fun () -> (f () lsr sh) land 1
    in
    let fba = c_bit ba and fbb = c_bit bb in
    let comb =
      match op with
      | Insn.Crand -> ( land )
      | Cror -> ( lor )
      | Crxor -> ( lxor )
      | Crnand -> fun a b -> 1 - (a land b)
      | Crnor -> fun a b -> 1 - (a lor b)
      | Crandc -> fun a b -> a land (1 - b)
      | Creqv -> fun a b -> 1 - (a lxor b)
      | Crorc -> fun a b -> a lor (1 - b)
    in
    let fprev =
      if old < 0 then fun () -> 0 else c_rd_cr st s ~spec old
    in
    let fld = bt / 4 and pos = 3 - (bt mod 4) in
    let res = cr_result s ~spec fld in
    fun () ->
      clean ();
      let a = fba () in
      let b = fbb () in
      let v = comb a b in
      let prev = fprev () in
      res (prev land lnot (1 lsl pos) lor (v lsl pos))
  | McrfOp { dst; src; spec } ->
    let fsrc = c_rd_cr st s ~spec src in
    let res = cr_result s ~spec dst in
    fun () ->
      clean ();
      res (fsrc ())
  | MfcrOp { rt; srcs } ->
    let n = Array.length srcs in
    let fs = Array.init (min 8 n) (fun f -> c_rd_cr st s ~spec:false srcs.(f)) in
    let gw = gpr_write s rt in
    if n < 8 then fun () ->
      (* mirror [Exec]: read the fields that exist (their tags can roll
         back first), then fault on the out-of-range [srcs.(f)] *)
      clean ();
      Array.iter (fun f -> ignore (f ())) fs;
      ignore srcs.(n);
      assert false
    else fun () ->
      clean ();
      let v = ref 0 in
      for f = 0 to 7 do
        v := (!v lsl 4) lor (Array.unsafe_get fs f) ()
      done;
      gw !v
  | CrSetOp { crt; rs; pos } ->
    let frs = c_rd st s ~spec:false rs in
    let cw = cr_write s crt in
    let sh = 4 * (7 - pos) in
    fun () ->
      clean ();
      cw ((frs () lsr sh) land 0xF)
  | GetXer { rt } ->
    let gw = gpr_write s rt in
    let m = st.m in
    fun () -> gw (Machine.get_xer m)
  | SetXer { rs } ->
    let frs = c_rd st s ~spec:false rs in
    fun () ->
      clean ();
      push_w s k_xer 0 (frs ())
  | GetSpr { rt; spr } ->
    let gw = gpr_write s rt in
    let m = st.m in
    (match spr with
    | Op.Xer -> fun () -> gw (Machine.get_xer m)
    | Srr0 -> fun () -> gw m.srr0
    | Srr1 -> fun () -> gw m.srr1
    | Dar -> fun () -> gw m.dar
    | Dsisr -> fun () -> gw m.dsisr
    | Sprg0 -> fun () -> gw m.sprg0
    | Sprg1 -> fun () -> gw m.sprg1
    | Msr -> fun () -> gw m.msr)
  | SetSpr { spr; rs } ->
    let frs = c_rd st s ~spec:false rs in
    let code = Op.spr_code spr in
    fun () ->
      clean ();
      push_w s k_spr code (frs ())
  | GetMsr { rt } ->
    let gw = gpr_write s rt in
    let m = st.m in
    fun () -> gw m.msr
  | SetMsr { rs } ->
    let frs = c_rd st s ~spec:false rs in
    fun () ->
      clean ();
      push_w s k_msr 0 (frs () land 0xFFFF)
  | CommitG { arch; src } ->
    let fsrc = c_rd st s ~spec:false src in
    let gw = gpr_write s arch in
    fun () ->
      clean ();
      gw (fsrc ())
  | CommitCr { arch; src } ->
    let fsrc = c_rd_cr st s ~spec:false src in
    let cw = cr_write s arch in
    fun () ->
      clean ();
      cw (fsrc ())
  | CommitLr { src } ->
    let fsrc = c_rd st s ~spec:false src in
    fun () ->
      clean ();
      push_w s k_lr 0 (fsrc ())
  | CommitCtr { src } ->
    let fsrc = c_rd st s ~spec:false src in
    fun () ->
      clean ();
      push_w s k_ctr 0 (fsrc ())
  | CommitCa { src } ->
    let fca = c_get_ca st src in
    fun () -> push_w s k_ca 0 (if fca () then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Apply phase: commit the scratch writes in program order.  Mirrors
   [Exec.apply] variant by variant; deferred I/O-space loads perform
   their side effect here, never during evaluation. *)

let apply (st : Vstate.t) (mem : Mem.t) (s : scratch) =
  let m = st.m in
  for i = 0 to s.w_n - 1 do
    let a = s.w_a.(i) and b = s.w_b.(i) in
    match s.w_kind.(i) with
    | 0 (* k_gpr_arch *) -> m.gpr.(a) <- b
    | 1 (* k_gpr_pool *) ->
      st.hi.(a) <- b;
      st.tags.(a) <- Vstate.Clean
    | 2 (* k_lr *) -> m.lr <- b
    | 3 (* k_ctr *) -> m.ctr <- b
    | 4 (* k_tagged *) ->
      st.hi.(a) <- b;
      st.tags.(a) <- s.w_tag.(i)
    | 5 (* k_tagged_any *) ->
      Vstate.set_gpr st a b;
      Vstate.set_tag st a s.w_tag.(i)
    | 6 (* k_ext *) -> st.ext.(a) <- b <> 0
    | 7 (* k_ca *) -> m.xer_ca <- b <> 0
    | 8 (* k_cr_arch *) -> Machine.set_crf m a b
    | 9 (* k_cr_pool *) ->
      st.crhi.(a) <- b land 0xF;
      st.crtags.(a) <- Vstate.Clean
    | 10 (* k_crtagged *) ->
      st.crhi.(a) <- b land 0xF;
      st.crtags.(a) <- s.w_tag.(i)
    | 11 (* k_set_gpr *) -> Vstate.set_gpr st a b
    | 12 (* k_set_cr *) -> Vstate.set_cr st a b
    | 13 (* k_xer *) -> Machine.set_xer m b
    | 14 (* k_msr *) -> m.msr <- b
    | 15 (* k_spr *) -> (
      match a with
      | 0 -> Machine.set_xer m b
      | 1 -> m.srr0 <- b
      | 2 -> m.srr1 <- b
      | 3 -> m.dar <- b
      | 4 -> m.dsisr <- b
      | 5 -> m.sprg0 <- b
      | 6 -> m.sprg1 <- b
      | _ -> m.msr <- b)
    | 16 (* k_store8 *) -> Mem.store8 mem a b
    | 17 (* k_store16 *) -> Mem.store16 mem a b
    | 18 (* k_store32 *) -> Mem.store32 mem a b
    | 19 (* k_mmio8 *) -> Vstate.set_gpr st a (Mem.load8 mem b)
    | 20 (* k_mmio16 *) -> Vstate.set_gpr st a (Mem.load16 mem b)
    | 21 (* k_mmio32 *) -> Vstate.set_gpr st a (Mem.load32 mem b)
    | _ -> assert false
  done

(* ------------------------------------------------------------------ *)
(* Staged trees. *)

type link = { l_off : int; mutable l_entry : int (* -1 = unresolved *) }

type cexit =
  | Cnext of cvliw (* direct-linked [Tree.Next] *)
  | Cnext_id of int (* out-of-range [Tree.Next]: faults on dispatch *)
  | Conpage of link (* [Tree.OnPage] with a memoized entry-id slot *)
  | Coffpage of int
  | Cindirect of Op.loc * [ `Lr | `Ctr | `Gpr ]
  | Ctrap of Tree.trap

(* Direct links and memoized on-page entries short-circuit dispatch only
   *within* a page: every [Coffpage] / [Cindirect] exit returns to the
   monitor's shared exit handlers, which is where cross-page exit edges
   ([Vmm.Monitor.Exit_edge]) are observed.  The staged engine therefore
   produces the same edge stream as the tree walker by construction —
   there is no separate emission path to keep in sync here. *)

and cleaf = {
  ops : (unit -> unit) array; (* the whole root-to-leaf path, program order *)
  nops : int;
  mutable exit : cexit;
}

and cvliw = { c_id : int; c_tree : Tree.t; select : unit -> cleaf }

(** One staged [Translate.xpage]: the closure-compiled counterparts of
    its trees, plus the state and scratch they were compiled against. *)
type page = {
  vliws : cvliw array;
  scratch : scratch;
  st : Vstate.t;
  mem : Mem.t;
}

let c_exit (e : Tree.exit) : cexit =
  match e with
  | Tree.Next id -> Cnext_id id
  | OnPage off -> Conpage { l_off = off; l_entry = -1 }
  | OffPage a -> Coffpage a
  | Indirect (l, k) -> Cindirect (l, k)
  | Trap tr -> Ctrap tr

(* Compile path selection from [node] down, with [prefix] the compiled
   ops of the path above it.  Mirrors [Exec.select]: tests read entry
   state only, ops collect in program order, an open tip is a
   structural error, a tagged pool test rolls the VLIW back. *)
let rec c_sel st mem s leaves (prefix : (unit -> unit) list) nprefix
    (n : Tree.node) : unit -> cleaf =
  let cops = List.map (fun (seq, op) -> c_op st mem s seq op) (Tree.ops_in_order n) in
  let prefix = prefix @ cops in
  let nprefix = nprefix + List.length cops in
  match n.kind with
  | Tree.Open -> fun () -> raise (Exec.Error "open tip reached at runtime")
  | Exit e ->
    let leaf = { ops = Array.of_list prefix; nops = nprefix; exit = c_exit e } in
    leaves := leaf :: !leaves;
    fun () -> leaf
  | Branch { test; taken; fall } ->
    let ftaken = c_sel st mem s leaves prefix nprefix taken in
    let ffall = c_sel st mem s leaves prefix nprefix fall in
    let fld = test.bit / 4 and sh = 3 - (test.bit mod 4) in
    let sense = test.sense in
    if fld < 8 then
      let m = st.Vstate.m and csh = 4 * (7 - fld) in
      fun () ->
        let field = (m.cr lsr csh) land 0xF in
        if (field lsr sh) land 1 = 1 = sense then ftaken () else ffall ()
    else if fld < 16 then
      let i = fld - 8 in
      let crhi = st.Vstate.crhi and crtags = st.Vstate.crtags in
      fun () ->
        (match Array.unsafe_get crtags i with
        | Vstate.Clean -> ()
        | t -> raise (Exec.Roll (Exec.Rtag t)));
        if (Array.unsafe_get crhi i lsr sh) land 1 = 1 = sense then ftaken ()
        else ffall ()
    else fun () -> invalid_arg "index out of bounds"
(* out-of-range test field: faults like [Vstate.get_cr_tagged] *)

exception Budget_exceeded of float
(** Raised by {!stage} when a [?budget] wall-clock allowance (seconds)
    is exhausted partway through staging a page; carries the elapsed
    time.  No partial page escapes — the caller sees either a complete
    staged page or this exception. *)

(** Stage every tree of a page.  In-range [Tree.Next] exits are patched
    to direct closure references afterwards, so steady-state chaining
    is one pointer dereference.  [budget], when given, bounds the wall
    time staging may take: the clock is checked between trees (one tree
    is the smallest unit of staging work), and overrunning raises
    {!Budget_exceeded} instead of letting a pathological page stall the
    whole run. *)
let stage ?budget ~(st : Vstate.t) ~(mem : Mem.t) ~(scratch : scratch)
    (trees : Tree.t array) : page =
  let t0 = Sys.time () in
  let check_budget () =
    match budget with
    | Some b ->
      let dt = Sys.time () -. t0 in
      if dt > b then raise (Budget_exceeded dt)
    | None -> ()
  in
  let leaves = ref [] in
  let vliws =
    Array.mapi
      (fun i (tree : Tree.t) ->
        check_budget ();
        { c_id = i; c_tree = tree; select = c_sel st mem scratch leaves [] 0 tree.root })
      trees
  in
  let n = Array.length vliws in
  List.iter
    (fun leaf ->
      match leaf.exit with
      | Cnext_id id when id >= 0 && id < n -> leaf.exit <- Cnext vliws.(id)
      | _ -> ())
    !leaves;
  { vliws; scratch; st; mem }

let n_staged p = Array.length p.vliws

(** The staged VLIW with tree id [id]; raises [Invalid_argument] for an
    id outside the page, as [Vec.get] would. *)
let get (p : page) id = p.vliws.(id)

(** Execute one staged VLIW.  Semantics are those of [Exec.run]: select
    a path against entry state, evaluate its ops against entry state
    into the scratch buffers, run the alias check, then apply all
    writes in program order — or raise [Exec.Roll] with no state
    change.  [Invalid_argument]/[Failure] escapes from the
    select/evaluate phase surface as [Exec.Error], exactly as in the
    interpretive engine.  Returns the selected leaf; its accesses are
    in the scratch buffers. *)
let exec_vliw (p : page) (cv : cvliw) ~(alias_check : scratch -> bool) : cleaf =
  let s = p.scratch in
  s.w_n <- 0;
  s.a_n <- 0;
  match
    let leaf = cv.select () in
    let ops = leaf.ops in
    for i = 0 to Array.length ops - 1 do
      (Array.unsafe_get ops i) ()
    done;
    if not (alias_check s) then raise (Exec.Roll Exec.Ralias);
    leaf
  with
  | exception Invalid_argument msg ->
    raise (Exec.Error ("Invalid_argument: " ^ msg))
  | exception Failure msg -> raise (Exec.Error ("Failure: " ^ msg))
  | leaf ->
    apply p.st p.mem s;
    leaf
