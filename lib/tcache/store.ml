(* The content-addressed on-disk store for translated pages.

   One entry per file, named by the hex digest of everything that
   determines the translation's bytes:

     key = MD5(frontend \0 params-fingerprint \0 page-base \0 page-bytes)

   Keying on the *exact input bytes* is what makes reuse sound (the
   deterministic-translation argument): if the base page's bytes, its
   address, the translator configuration or the front end differ in any
   way, the key differs and the entry is simply never found.  The page
   base participates because translations embed absolute addresses
   (precise entry points, OFFPAGE targets, the VLIW-space layout).

   File layout (all multi-byte integers via the codec's varints):

     magic "DTCE" | version u8 | kind u8 (0 = page, 1 = region)
     | frontend str | fingerprint str
     | [kind = 1: member count vint, member bases vint*]
     | base vint | psize vint | spec_inhibited bool
     | vliws vint | entries vint | payload_len vint
     | payload MD5 (16 raw bytes) | payload (Codec.encode_xpage)

   Region entries (tier-2 superblock images) share the directory, the
   ".dtc" suffix, the budget/LRU machinery and the quarantine path with
   page entries; they differ only in the kind tag, the member-base list
   and the key derivation — a region's key covers the *set* of member
   pages' contents, so a byte change in any member misses.  The
   fingerprint stored in a region entry is the *region scheduler's*
   params fingerprint, not the store's tier-1 one.

   Storage: all file IO goes through an {!Fsio.t} backend ([Fsio.real]
   unless the caller injects faults).  Entries are installed with
   {!Fsio.commit} — temp write, file fsync, rename, directory fsync —
   so a reader never observes a half-written entry and a killed writer
   leaves only a stray temp file (swept at open).  A truncated,
   bit-flipped or future-version entry fails the
   magic/version/checksum/decode ladder and reports as [`Corrupt]; the
   VMM then falls back to a normal translate.

   Degradation: the cache is best-effort, so a *storage fault*
   ([Fsio.Fault]: ENOSPC, EIO, readonly mount) never escapes to the
   guest.  A failed install parks the entry in an in-memory overlay —
   the session keeps its warm start, only durability is lost — and a
   failed probe read falls back to the same overlay.  Every such event
   bumps [degraded_count] so the monitor can surface it.

   Sharing: several VMMs — domains in one `daisy serve` process, or
   separate processes — may point at one directory.  Probes stay
   lock-free (rename atomicity means a reader sees a whole entry or no
   entry), but every *mutation* of the directory's file set (the
   orphan-temp sweep at open, persist's temp-create..rename window,
   eviction) runs under the directory lock: a per-directory in-process
   mutex stacked on an advisory [Unix.lockf] range lock on a
   ".dtclock" file.  Both layers are needed — fcntl locks never
   exclude the owning process, and a bare mutex never excludes another
   process.  Under the lock, a temp file seen by the sweep can only be
   a dead writer's orphan, never a live concurrent write.

   Recency: a probe hit touches the entry's mtime, so file mtime is a
   cheap persistent LRU clock; [enforce_budget] casts out the
   oldest-mtime unpinned entries when the directory exceeds a byte
   budget. *)

let magic = "DTCE"
let lock_file = ".dtclock"

(* An entry that could not reach (or be read back from) the disk,
   parked in memory: the warm start survives the fault, only
   durability is lost.  Region entries carry their own scheduler
   fingerprint and member set, exactly like the on-disk layout. *)
type overlay_entry = {
  o_kind : [ `Page | `Region ];
  o_page : Translator.Translate.xpage;
  o_si : bool;
  o_fingerprint : string;
  o_members : int array;
}

type t = {
  dir : string;
  frontend : string;
  fingerprint : string;
  swept_tmp : int;
      (** orphaned temp files from a killed writer, removed at open *)
  lock_fd : Unix.file_descr;
      (** open for the store's lifetime; see [with_dir_lock] *)
  io : Fsio.t;
  overlay : (string, overlay_entry) Hashtbl.t;
      (** keyed like the directory; entries that survived a storage
          fault in memory only *)
  olock : Mutex.t;  (** guards [overlay] and [degraded] across domains *)
  mutable degraded : int;
      (** storage faults absorbed by falling back to the overlay *)
}

(* One mutex per directory per process, created on first open and never
   dropped (the set of cache dirs a process touches is tiny).  Keyed on
   the directory path as given — callers that alias one directory under
   two spellings still get cross-process safety from lockf. *)
let dir_mutexes : (string, Mutex.t) Hashtbl.t = Hashtbl.create 8
let dir_mutexes_lock = Mutex.create ()

let dir_mutex dir =
  Mutex.lock dir_mutexes_lock;
  let m =
    match Hashtbl.find_opt dir_mutexes dir with
    | Some m -> m
    | None ->
      let m = Mutex.create () in
      Hashtbl.add dir_mutexes dir m;
      m
  in
  Mutex.unlock dir_mutexes_lock;
  m

(* Serialize directory mutations within this process (mutex) and
   against other processes (lockf on the shared lock file).  The mutex
   is taken first, so at most one fd per process holds the fcntl lock —
   which sidesteps fcntl's same-process merge/close semantics. *)
let with_dir_lock ~dir ~lock_fd f =
  let m = dir_mutex dir in
  Mutex.lock m;
  let locked =
    (* Advisory only: on a filesystem that refuses fcntl locks we still
       have in-process exclusion, which covers the serve daemon. *)
    match Unix.lockf lock_fd Unix.F_LOCK 0 with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  Fun.protect
    ~finally:(fun () ->
      if locked then
        (try Unix.lockf lock_fd Unix.F_ULOCK 0
         with Unix.Unix_error _ -> ());
      Mutex.unlock m)
    f

type probe_result =
  [ `Hit of Translator.Translate.xpage * bool  (** page, spec_inhibited *)
  | `Miss
  | `Corrupt of string   (** entry content failed validation *)
  | `Skipped of string ]
  (** not an entry at all (a directory squatting on the name), an
      entry we cannot read (permissions, I/O error) or a storage fault
      with no overlay copy — never a reason to raise; the VMM counts
      it and translates normally *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let open_store ?(io = Fsio.real) ~dir ~frontend ~fingerprint () =
  mkdir_p dir;
  let lock_fd =
    Unix.openfile
      (Filename.concat dir lock_file)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  (* A writer killed between temp-file creation and rename leaves a
     stray *.tmp behind.  No reader ever looks at temp files, so the
     store stays correct either way; sweeping them at open keeps a
     crash-looped run from accumulating garbage.  The sweep holds the
     directory lock: persist's temp-create..rename window holds the
     same lock, so a temp file seen here can only be an orphan from a
     dead writer, never another store's in-flight install. *)
  let swept_tmp =
    with_dir_lock ~dir ~lock_fd (fun () ->
        match io.Fsio.readdir dir with
        | exception Sys_error _ | (exception Fsio.Fault _) -> 0
        | files ->
          Array.fold_left
            (fun n f ->
              if Filename.check_suffix f ".tmp" then
                match io.Fsio.remove (Filename.concat dir f) with
                | () -> n + 1
                | exception Sys_error _ | (exception Fsio.Fault _) -> n
              else n)
            0 files)
  in
  { dir; frontend; fingerprint; swept_tmp; lock_fd; io;
    overlay = Hashtbl.create 8; olock = Mutex.create (); degraded = 0 }

let with_olock t f =
  Mutex.lock t.olock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.olock) f

(** Storage faults absorbed so far by degrading to the in-memory
    overlay (failed installs and unreadable probes with a live copy or
    not — every fault the store ate instead of raising). *)
let degraded_count t = with_olock t (fun () -> t.degraded)

(** Entries currently parked in the in-memory overlay (installed or
    re-served across a storage fault; durability lost). *)
let overlay_count t = with_olock t (fun () -> Hashtbl.length t.overlay)

let note_degraded t = with_olock t (fun () -> t.degraded <- t.degraded + 1)

(** The content-addressed key for a page: [bytes] are the page's exact
    base-architecture bytes, [base] its physical base address. *)
let key t ~base bytes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ t.frontend; t.fingerprint; string_of_int base; bytes ]))

(** The content-addressed key for a tier-2 region image: covers the
    region scheduler's fingerprint, the sorted member bases and every
    member page's exact bytes (in member order), so any byte change in
    any member — or a different member set — is a miss.  The "R" arm
    keeps region keys out of the page-key space even for a one-member
    region over identical inputs. *)
let region_key t ~fingerprint ~members ~bytes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([ t.frontend; fingerprint; "R" ]
          @ Array.to_list (Array.map string_of_int members)
          @ bytes)))

let path_of t k = Filename.concat t.dir (k ^ ".dtc")

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type header = {
  h_version : int;
  h_kind : [ `Page | `Region ];
  h_frontend : string;
  h_fingerprint : string;
  h_members : int array;  (** member tier-1 page bases; [||] for pages *)
  h_base : int;
  h_psize : int;
  h_spec_inhibited : bool;
  h_vliws : int;
  h_entries : int;
  h_payload : string;  (** checksum-verified encoded page *)
}

(* Whole-file read via the store's backend.  A file torn or truncated
   mid-read yields a prefix; the parse ladder rejects it as corrupt. *)
let read_file io path = io.Fsio.read_file path

(* Parse and checksum-verify one entry file; raises {!Codec.Corrupt}. *)
let parse_entry s =
  let mlen = String.length magic in
  if String.length s < mlen + 2 then Codec.corrupt "truncated header";
  if String.sub s 0 mlen <> magic then Codec.corrupt "bad magic";
  let h_version = Char.code s.[mlen] in
  if h_version <> Codec.version then
    Codec.corrupt "version %d (want %d)" h_version Codec.version;
  let h_kind =
    match Char.code s.[mlen + 1] with
    | 0 -> `Page
    | 1 -> `Region
    | n -> Codec.corrupt "bad entry kind %d" n
  in
  let r = Codec.reader s in
  r.pos <- mlen + 2;
  let h_frontend = Codec.get_str r in
  let h_fingerprint = Codec.get_str r in
  let h_members =
    match h_kind with
    | `Page -> [||]
    | `Region ->
      let n = Codec.get_count r "member" in
      if n = 0 then Codec.corrupt "region with no members";
      Array.init n (fun _ -> Codec.get_vint r)
  in
  let h_base = Codec.get_vint r in
  let h_psize = Codec.get_vint r in
  let h_spec_inhibited = Codec.get_bool r in
  let h_vliws = Codec.get_vint r in
  let h_entries = Codec.get_vint r in
  let plen = Codec.get_vint r in
  if plen < 0 || r.pos + 16 + plen <> String.length s then
    Codec.corrupt "payload length %d disagrees with file size" plen;
  let sum = String.sub s r.pos 16 in
  let h_payload = String.sub s (r.pos + 16) plen in
  if Digest.string h_payload <> sum then Codec.corrupt "checksum mismatch";
  { h_version; h_kind; h_frontend; h_fingerprint; h_members; h_base; h_psize;
    h_spec_inhibited; h_vliws; h_entries; h_payload }

(* The overlay half of a probe: serve the in-memory copy parked by a
   degraded install, if one matches. *)
let overlay_page t k =
  with_olock t (fun () ->
      match Hashtbl.find_opt t.overlay k with
      | Some { o_kind = `Page; o_page; o_si; _ } -> Some (o_page, o_si)
      | _ -> None)

let overlay_region t k ~fingerprint =
  with_olock t (fun () ->
      match Hashtbl.find_opt t.overlay k with
      | Some { o_kind = `Region; o_page; o_si; o_fingerprint; o_members }
        when o_fingerprint = fingerprint ->
        Some (o_page, o_si, o_members)
      | _ -> None)

let probe t ~key:k : probe_result =
  let path = path_of t k in
  let from_overlay ~fault msg =
    if fault then note_degraded t;
    match overlay_page t k with
    | Some (page, si) -> `Hit (page, si)
    | None -> (match msg with None -> `Miss | Some m -> `Skipped m)
  in
  if not (Sys.file_exists path) then from_overlay ~fault:false None
  else if try Sys.is_directory path with Sys_error _ -> false then
    `Skipped "is a directory"
  else
    match
      let h = parse_entry (read_file t.io path) in
      if h.h_kind <> `Page then Codec.corrupt "region entry under page key";
      if h.h_frontend <> t.frontend || h.h_fingerprint <> t.fingerprint then
        Codec.corrupt "fingerprint mismatch";
      let page = Codec.decode_xpage h.h_payload in
      if page.base <> h.h_base then Codec.corrupt "base mismatch";
      (page, h.h_spec_inhibited)
    with
    | page, si ->
      (* the persistent LRU clock: a hit marks the entry recently used,
         so [enforce_budget] casts out cold entries first.  Best
         effort — a read-only cache dir still serves hits. *)
      (try t.io.Fsio.utimes path
       with Unix.Unix_error _ | Sys_error _ | Fsio.Fault _ -> ());
      `Hit (page, si)
    | exception Codec.Corrupt msg -> `Corrupt msg
    | exception Sys_error msg -> `Skipped ("io: " ^ msg)
    | exception (Fsio.Fault _ as f) ->
      (* a storage fault, not a bad entry: degrade, serve the overlay
         copy if one exists, and let the VMM translate otherwise *)
      from_overlay ~fault:true (Some ("storage: " ^ Fsio.fault_message f))

type region_probe_result =
  [ `Hit of Translator.Translate.xpage * bool * int array
    (** region image, spec_inhibited, member bases *)
  | `Miss
  | `Corrupt of string
  | `Skipped of string ]

(** Probe for a tier-2 region image.  [fingerprint] is the *region
    scheduler's* params fingerprint (the caller derived the key with
    the same one, so a mismatch here means a colliding or tampered
    entry, not a stale config). *)
let probe_region t ~key:k ~fingerprint : region_probe_result =
  let path = path_of t k in
  let from_overlay ~fault msg =
    if fault then note_degraded t;
    match overlay_region t k ~fingerprint with
    | Some (page, si, members) -> `Hit (page, si, members)
    | None -> (match msg with None -> `Miss | Some m -> `Skipped m)
  in
  if not (Sys.file_exists path) then from_overlay ~fault:false None
  else if try Sys.is_directory path with Sys_error _ -> false then
    `Skipped "is a directory"
  else
    match
      let h = parse_entry (read_file t.io path) in
      if h.h_kind <> `Region then Codec.corrupt "page entry under region key";
      if h.h_frontend <> t.frontend || h.h_fingerprint <> fingerprint then
        Codec.corrupt "fingerprint mismatch";
      let page = Codec.decode_xpage h.h_payload in
      if page.base <> h.h_base then Codec.corrupt "base mismatch";
      (page, h.h_spec_inhibited, h.h_members)
    with
    | page, si, members ->
      (try t.io.Fsio.utimes path
       with Unix.Unix_error _ | Sys_error _ | Fsio.Fault _ -> ());
      `Hit (page, si, members)
    | exception Codec.Corrupt msg -> `Corrupt msg
    | exception Sys_error msg -> `Skipped ("io: " ^ msg)
    | exception (Fsio.Fault _ as f) ->
      from_overlay ~fault:true (Some ("storage: " ^ Fsio.fault_message f))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let persist_gen t ~key:k ~kind ~fingerprint ~members
    (page : Translator.Translate.xpage) ~spec_inhibited =
  let payload = Codec.encode_xpage page in
  let b = Buffer.create (String.length payload + 256) in
  Buffer.add_string b magic;
  Codec.put_u8 b Codec.version;
  Codec.put_u8 b (match kind with `Page -> 0 | `Region -> 1);
  Codec.put_str b t.frontend;
  Codec.put_str b fingerprint;
  (match kind with
  | `Page -> ()
  | `Region ->
    Codec.put_vint b (Array.length members);
    Array.iter (Codec.put_vint b) members);
  Codec.put_vint b page.base;
  Codec.put_vint b page.psize;
  Codec.put_bool b spec_inhibited;
  Codec.put_vint b (Translator.Vec.length page.vliws);
  Codec.put_vint b (Hashtbl.length page.entries);
  Codec.put_vint b (String.length payload);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  (match
     with_dir_lock ~dir:t.dir ~lock_fd:t.lock_fd (fun () ->
         Fsio.commit t.io ~dir:t.dir ~file:(k ^ ".dtc") (Buffer.contents b))
   with
  | () ->
    (* a durable install supersedes any overlay copy of the entry *)
    with_olock t (fun () -> Hashtbl.remove t.overlay k)
  | exception Fsio.Fault _ ->
    (* the disk refused the entry: park it in memory so this process
       keeps its warm start, and count the degradation.  The caller's
       contract is unchanged — the cache never fails an install. *)
    with_olock t (fun () ->
        t.degraded <- t.degraded + 1;
        Hashtbl.replace t.overlay k
          { o_kind = kind; o_page = page; o_si = spec_inhibited;
            o_fingerprint = fingerprint; o_members = members }));
  Buffer.length b

(** Persist [page] under [key], atomically ({!Fsio.commit}: temp write,
    file fsync, rename, directory fsync).  A storage fault degrades to
    the in-memory overlay instead of raising.  Returns the entry's
    size in bytes. *)
let persist t ~key:k (page : Translator.Translate.xpage) ~spec_inhibited =
  persist_gen t ~key:k ~kind:`Page ~fingerprint:t.fingerprint ~members:[||]
    page ~spec_inhibited

(** Persist a tier-2 region image under [key]: same atomic write, the
    region kind tag, the member-base list and the region scheduler's
    [fingerprint]. *)
let persist_region t ~key:k ~fingerprint ~members
    (page : Translator.Translate.xpage) ~spec_inhibited =
  persist_gen t ~key:k ~kind:`Region ~fingerprint ~members page
    ~spec_inhibited

(** Drop the entry under [key], if present; tells whether one was. *)
let evict t ~key:k =
  let path = path_of t k in
  with_olock t (fun () -> Hashtbl.remove t.overlay k);
  with_dir_lock ~dir:t.dir ~lock_fd:t.lock_fd (fun () ->
      match t.io.Fsio.remove path with
      | () -> true
      | exception Sys_error _ -> false
      | exception Fsio.Fault _ ->
        note_degraded t;
        false)

(** Quarantine the entry under [key]: set the file aside as
    [<key>.dtc.bad] instead of deleting it, so a corrupt or truncated
    entry found under load stops poisoning probes immediately while the
    bytes stay on disk for a post-mortem.  The next translation of the
    page persists over the entry name and heals the cache; the [.bad]
    file is invisible to probes, budgets and [stray_files], and is
    removed by [clear_dir].  Repeated quarantines of one key overwrite
    the previous corpse.  Tells whether an entry was actually there. *)
let quarantine t ~key:k =
  let path = path_of t k in
  with_dir_lock ~dir:t.dir ~lock_fd:t.lock_fd (fun () ->
      match t.io.Fsio.rename path (path ^ ".bad") with
      | () -> true
      | exception (Sys_error _ | Fsio.Fault _) -> (
        (* cross-device, readonly or odd fs: fall back to eviction *)
        match t.io.Fsio.remove path with
        | () -> true
        | exception (Sys_error _ | Fsio.Fault _) -> false))

(** Quarantined corpses ([*.dtc.bad]) currently in [dir]. *)
let quarantined_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".dtc.bad")
    |> List.sort compare
  | exception Sys_error _ -> []

(** Orphaned temp files ([*.tmp]) currently in [dir] — a dead or
    crashed writer's leavings, swept at open and by fsck. *)
let orphan_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
    |> List.sort compare
  | exception Sys_error _ -> []

(* ------------------------------------------------------------------ *)
(* Admission / eviction                                                 *)

(** Sum of entry-file sizes in [dir] (entries only — temp files, the
    lock file and strays don't count against the budget). *)
let dir_bytes dir =
  List.fold_left
    (fun n f ->
      match Unix.stat (Filename.concat dir f) with
      | st -> n + st.Unix.st_size
      | exception Unix.Unix_error _ -> n)
    0
    (match Sys.readdir dir with
    | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".dtc")
    | exception Sys_error _ -> [])

type budget_report = {
  resident_bytes : int;  (** entry bytes after enforcement *)
  evicted : int;         (** entries cast out *)
  evicted_bytes : int;
  pinned_over : bool;
      (** the budget could not be met because everything left is
          pinned — the budget is soft against live sessions *)
}

(** Cast out oldest-mtime entries until the directory's entry bytes fit
    [budget].  [pinned key] protects entries hot in a live session —
    the caller knows which keys its guests are executing from.  Runs
    under the directory lock, so concurrent installs and other
    enforcers serialize with it. *)
let enforce_budget ?(pinned = fun _ -> false) t ~budget =
  with_dir_lock ~dir:t.dir ~lock_fd:t.lock_fd (fun () ->
      let entries =
        (match Sys.readdir t.dir with
        | files -> Array.to_list files
        | exception Sys_error _ -> [])
        |> List.filter (fun f -> Filename.check_suffix f ".dtc")
        |> List.filter_map (fun f ->
               let path = Filename.concat t.dir f in
               match Unix.stat path with
               | st ->
                 Some
                   ( Filename.chop_suffix f ".dtc",
                     path, st.Unix.st_size, st.Unix.st_mtime )
               | exception Unix.Unix_error _ -> None)
      in
      let total = List.fold_left (fun n (_, _, sz, _) -> n + sz) 0 entries in
      if total <= budget then
        { resident_bytes = total; evicted = 0; evicted_bytes = 0;
          pinned_over = false }
      else begin
        (* oldest first; pinned entries sort behind everything so they
           are only reached once the unpinned pool is exhausted *)
        let victims =
          List.filter (fun (k, _, _, _) -> not (pinned k)) entries
          |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b)
        in
        let resident = ref total and evicted = ref 0 and freed = ref 0 in
        List.iter
          (fun (_, path, sz, _) ->
            if !resident > budget then
              match t.io.Fsio.remove path with
              | () ->
                resident := !resident - sz;
                incr evicted;
                freed := !freed + sz
              | exception Sys_error _ -> ()
              | exception Fsio.Fault _ -> note_degraded t)
          victims;
        { resident_bytes = !resident; evicted = !evicted;
          evicted_bytes = !freed; pinned_over = !resident > budget }
      end)

(* ------------------------------------------------------------------ *)
(* Directory tools (daisy tcache stats / ls / clear / fsck)            *)

type info = {
  key : string;
  file_bytes : int;
  version : int;
  kind : [ `Page | `Region ];
  frontend : string;
  fingerprint : string;
  members : int array;  (** region member bases; [||] for page entries *)
  base : int;
  psize : int;
  spec_inhibited : bool;
  vliws : int;
  entries : int;
  mtime : float;
      (** last probe hit or install — the LRU clock; 0 if unstattable *)
  status : [ `Ok | `Corrupt of string | `Skipped of string ];
}

let entry_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".dtc")
    |> List.sort compare
  | exception Sys_error _ -> []

(** Files in [dir] that are not cache entries, temp files or the lock
    file — left alone by every store operation, reported so tooling can
    say why. *)
let stray_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f ->
           (not (Filename.check_suffix f ".dtc"))
           && (not (Filename.check_suffix f ".tmp"))
           && (not (Filename.check_suffix f ".dtc.bad"))
           && f <> lock_file)
    |> List.sort compare
  | exception Sys_error _ -> []

(** Inspect every entry in [dir]: header fields plus checksum
    validation (payloads are not fully decoded). *)
let list_dir dir =
  List.map
    (fun f ->
      let key = Filename.chop_suffix f ".dtc" in
      let path = Filename.concat dir f in
      let mtime =
        match Unix.stat path with
        | st -> st.Unix.st_mtime
        | exception Unix.Unix_error _ -> 0.
      in
      let blank status =
        { key; file_bytes = 0; version = 0; kind = `Page; frontend = "?";
          fingerprint = "?"; members = [||]; base = 0; psize = 0;
          spec_inhibited = false; vliws = 0; entries = 0; mtime; status }
      in
      match
        if try Sys.is_directory path with Sys_error _ -> false then
          raise (Sys_error "is a directory")
        else read_file Fsio.real path
      with
      | exception Sys_error msg -> blank (`Skipped msg)
      | exception (Fsio.Fault _ as f) ->
        blank (`Skipped ("storage: " ^ Fsio.fault_message f))
      | s -> (
        match parse_entry s with
        | h ->
          { key; file_bytes = String.length s; version = h.h_version;
            kind = h.h_kind; frontend = h.h_frontend;
            fingerprint = h.h_fingerprint; members = h.h_members;
            base = h.h_base; psize = h.h_psize;
            spec_inhibited = h.h_spec_inhibited; vliws = h.h_vliws;
            entries = h.h_entries; mtime; status = `Ok }
        | exception Codec.Corrupt msg ->
          { (blank (`Corrupt msg)) with file_bytes = String.length s }))
    (entry_files dir)

(** Remove every entry and stray temp file in [dir]; returns
    [(removed, skipped)] — skipped counts entry-named paths that could
    not be removed (directories, permissions) plus files that are not
    the store's to delete.  Never raises. *)
let clear_dir dir =
  let all = match Sys.readdir dir with
    | files -> List.filter (fun f -> f <> lock_file) (Array.to_list files)
    | exception Sys_error _ -> []
  in
  let ours, strays =
    List.partition
      (fun f ->
        Filename.check_suffix f ".dtc" || Filename.check_suffix f ".tmp"
        || Filename.check_suffix f ".dtc.bad")
      all
  in
  let removed, unremovable =
    List.fold_left
      (fun (n, k) f ->
        match Sys.remove (Filename.concat dir f) with
        | () -> (n + 1, k)
        | exception Sys_error _ -> (n, k + 1))
      (0, 0) ours
  in
  (removed, unremovable + List.length strays)
