(* The content-addressed on-disk store for translated pages.

   One entry per file, named by the hex digest of everything that
   determines the translation's bytes:

     key = MD5(frontend \0 params-fingerprint \0 page-base \0 page-bytes)

   Keying on the *exact input bytes* is what makes reuse sound (the
   deterministic-translation argument): if the base page's bytes, its
   address, the translator configuration or the front end differ in any
   way, the key differs and the entry is simply never found.  The page
   base participates because translations embed absolute addresses
   (precise entry points, OFFPAGE targets, the VLIW-space layout).

   File layout (all multi-byte integers via the codec's varints):

     magic "DTCE" | version u8
     | frontend str | fingerprint str
     | base vint | psize vint | spec_inhibited bool
     | vliws vint | entries vint | payload_len vint
     | payload MD5 (16 raw bytes) | payload (Codec.encode_xpage)

   Crash safety: entries are written to a unique temp file in the same
   directory and [Sys.rename]d into place, so a reader never observes a
   half-written entry and a killed writer leaves only a stray temp file
   (swept by [clear_dir]).  A truncated, bit-flipped or future-version
   entry fails the magic/version/checksum/decode ladder and reports as
   [`Corrupt]; the VMM then falls back to a normal translate. *)

let magic = "DTCE"

type t = {
  dir : string;
  frontend : string;
  fingerprint : string;
  swept_tmp : int;
      (** orphaned temp files from a killed writer, removed at open *)
}

type probe_result =
  [ `Hit of Translator.Translate.xpage * bool  (** page, spec_inhibited *)
  | `Miss
  | `Corrupt of string   (** entry content failed validation *)
  | `Skipped of string ]
  (** not an entry at all (a directory squatting on the name) or an
      entry we cannot read (permissions, I/O error) — never a reason to
      raise; the VMM counts it and translates normally *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let open_store ~dir ~frontend ~fingerprint =
  mkdir_p dir;
  (* A writer killed between temp-file creation and rename leaves a
     stray *.tmp behind.  No reader ever looks at temp files, so the
     store stays correct either way; sweeping them at open keeps a
     crash-looped run from accumulating garbage.  The store assumes a
     single writer per directory (one VMM per tcache dir), so a temp
     file seen here can only be an orphan, never a concurrent write. *)
  let swept_tmp =
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | files ->
      Array.fold_left
        (fun n f ->
          if Filename.check_suffix f ".tmp" then
            match Sys.remove (Filename.concat dir f) with
            | () -> n + 1
            | exception Sys_error _ -> n
          else n)
        0 files
  in
  { dir; frontend; fingerprint; swept_tmp }

(** The content-addressed key for a page: [bytes] are the page's exact
    base-architecture bytes, [base] its physical base address. *)
let key t ~base bytes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ t.frontend; t.fingerprint; string_of_int base; bytes ]))

let path_of t k = Filename.concat t.dir (k ^ ".dtc")

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type header = {
  h_version : int;
  h_frontend : string;
  h_fingerprint : string;
  h_base : int;
  h_psize : int;
  h_spec_inhibited : bool;
  h_vliws : int;
  h_entries : int;
  h_payload : string;  (** checksum-verified encoded page *)
}

(* Raises [Sys_error] on unreadable paths and [Codec.Corrupt] when the
   file shrinks between the size query and the read (a torn truncate:
   [really_input_string] would otherwise leak [End_of_file]). *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try really_input_string ic (in_channel_length ic)
      with End_of_file -> Codec.corrupt "short read")

(* Parse and checksum-verify one entry file; raises {!Codec.Corrupt}. *)
let parse_entry s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 then Codec.corrupt "truncated header";
  if String.sub s 0 mlen <> magic then Codec.corrupt "bad magic";
  let h_version = Char.code s.[mlen] in
  if h_version <> Codec.version then
    Codec.corrupt "version %d (want %d)" h_version Codec.version;
  let r = Codec.reader s in
  r.pos <- mlen + 1;
  let h_frontend = Codec.get_str r in
  let h_fingerprint = Codec.get_str r in
  let h_base = Codec.get_vint r in
  let h_psize = Codec.get_vint r in
  let h_spec_inhibited = Codec.get_bool r in
  let h_vliws = Codec.get_vint r in
  let h_entries = Codec.get_vint r in
  let plen = Codec.get_vint r in
  if plen < 0 || r.pos + 16 + plen <> String.length s then
    Codec.corrupt "payload length %d disagrees with file size" plen;
  let sum = String.sub s r.pos 16 in
  let h_payload = String.sub s (r.pos + 16) plen in
  if Digest.string h_payload <> sum then Codec.corrupt "checksum mismatch";
  { h_version; h_frontend; h_fingerprint; h_base; h_psize; h_spec_inhibited;
    h_vliws; h_entries; h_payload }

let probe t ~key:k : probe_result =
  let path = path_of t k in
  if not (Sys.file_exists path) then `Miss
  else if try Sys.is_directory path with Sys_error _ -> false then
    `Skipped "is a directory"
  else
    match
      let h = parse_entry (read_file path) in
      if h.h_frontend <> t.frontend || h.h_fingerprint <> t.fingerprint then
        Codec.corrupt "fingerprint mismatch";
      let page = Codec.decode_xpage h.h_payload in
      if page.base <> h.h_base then Codec.corrupt "base mismatch";
      (page, h.h_spec_inhibited)
    with
    | page, si -> `Hit (page, si)
    | exception Codec.Corrupt msg -> `Corrupt msg
    | exception Sys_error msg -> `Skipped ("io: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

(** Persist [page] under [key], atomically (temp file + rename).
    Returns the entry's size in bytes. *)
let persist t ~key:k (page : Translator.Translate.xpage) ~spec_inhibited =
  let payload = Codec.encode_xpage page in
  let b = Buffer.create (String.length payload + 256) in
  Buffer.add_string b magic;
  Codec.put_u8 b Codec.version;
  Codec.put_str b t.frontend;
  Codec.put_str b t.fingerprint;
  Codec.put_vint b page.base;
  Codec.put_vint b page.psize;
  Codec.put_bool b spec_inhibited;
  Codec.put_vint b (Translator.Vec.length page.vliws);
  Codec.put_vint b (Hashtbl.length page.entries);
  Codec.put_vint b (String.length payload);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  let tmp = Filename.temp_file ~temp_dir:t.dir ".tcache" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> Buffer.output_buffer oc b);
     Sys.rename tmp (path_of t k)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Buffer.length b

(** Drop the entry under [key], if present; tells whether one was. *)
let evict t ~key:k =
  let path = path_of t k in
  match Sys.remove path with
  | () -> true
  | exception Sys_error _ -> false

(* ------------------------------------------------------------------ *)
(* Directory tools (daisy tcache stats / ls / clear)                   *)

type info = {
  key : string;
  file_bytes : int;
  version : int;
  frontend : string;
  fingerprint : string;
  base : int;
  psize : int;
  spec_inhibited : bool;
  vliws : int;
  entries : int;
  status : [ `Ok | `Corrupt of string | `Skipped of string ];
}

let entry_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".dtc")
    |> List.sort compare
  | exception Sys_error _ -> []

(** Files in [dir] that are not cache entries or temp files — left
    alone by every store operation, reported so tooling can say why. *)
let stray_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f ->
           (not (Filename.check_suffix f ".dtc"))
           && not (Filename.check_suffix f ".tmp"))
    |> List.sort compare
  | exception Sys_error _ -> []

(** Inspect every entry in [dir]: header fields plus checksum
    validation (payloads are not fully decoded). *)
let list_dir dir =
  List.map
    (fun f ->
      let key = Filename.chop_suffix f ".dtc" in
      let blank status =
        { key; file_bytes = 0; version = 0; frontend = "?"; fingerprint = "?";
          base = 0; psize = 0; spec_inhibited = false; vliws = 0; entries = 0;
          status }
      in
      match
        let path = Filename.concat dir f in
        if try Sys.is_directory path with Sys_error _ -> false then
          raise (Sys_error "is a directory")
        else read_file path
      with
      | exception Sys_error msg -> blank (`Skipped msg)
      | s -> (
        match parse_entry s with
        | h ->
          { key; file_bytes = String.length s; version = h.h_version;
            frontend = h.h_frontend; fingerprint = h.h_fingerprint;
            base = h.h_base; psize = h.h_psize;
            spec_inhibited = h.h_spec_inhibited; vliws = h.h_vliws;
            entries = h.h_entries; status = `Ok }
        | exception Codec.Corrupt msg ->
          { (blank (`Corrupt msg)) with file_bytes = String.length s }))
    (entry_files dir)

(** Remove every entry and stray temp file in [dir]; returns
    [(removed, skipped)] — skipped counts entry-named paths that could
    not be removed (directories, permissions) plus files that are not
    the store's to delete.  Never raises. *)
let clear_dir dir =
  let all = match Sys.readdir dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> []
  in
  let ours, strays =
    List.partition
      (fun f ->
        Filename.check_suffix f ".dtc" || Filename.check_suffix f ".tmp")
      all
  in
  let removed, unremovable =
    List.fold_left
      (fun (n, k) f ->
        match Sys.remove (Filename.concat dir f) with
        | () -> (n + 1, k)
        | exception Sys_error _ -> (n, k + 1))
      (0, 0) ours
  in
  (removed, unremovable + List.length strays)
