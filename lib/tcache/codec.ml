(* The versioned binary codec for translated pages.

   Hand-rolled, like lib/obs's JSON: the toolchain carries no
   serialization library and the cache must not pull new dependencies.
   The encoding is a tagged, byte-oriented format — one tag byte per
   variant constructor, zigzag varints for every integer — chosen so an
   entry is compact (a translated page is typically a few KB) and so
   decoding is a single linear scan with no lookahead.

   Robustness contract: [decode_xpage] either returns a structurally
   valid page or raises {!Corrupt}; it never crashes on truncated or
   bit-flipped input and never fabricates an op from an unknown tag.
   The store wraps every entry in a whole-payload checksum as well, so
   decode failures here are the second line of defense.

   Versioning: [version] names the shape of everything below.  Any
   change to the tags, the field order, or the enum codes in
   {!Ppc.Insn} / {!Vliw.Op} must bump it; the store treats a version
   mismatch as a miss, so stale caches degrade to a normal translate. *)

module T = Vliw.Tree
module Op = Vliw.Op
module Translate = Translator.Translate
module Vec = Translator.Vec

(* v2: the store header gained an entry-kind byte (page vs tier-2
   region image) and, for regions, the member-page base list.  The tree
   payload encoding itself is unchanged, but v1 headers are one byte
   shorter, so the bump is load-bearing: a v1 cache degrades to a
   normal translate instead of misparsing. *)
let version = 2

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Primitive writers / readers                                         *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

(* Zigzag varint: works for any OCaml int, negative included. *)
let put_vint b n =
  let rec go u =
    if u land lnot 0x7F <> 0 then begin
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x7F)));
      go (u lsr 7)
    end
    else Buffer.add_char b (Char.chr u)
  in
  go ((n lsl 1) lxor (n asr 62))

let put_bool b v = put_u8 b (if v then 1 else 0)

type reader = { s : string; mutable pos : int }

let reader s = { s; pos = 0 }

let get_u8 r =
  if r.pos >= String.length r.s then corrupt "truncated at byte %d" r.pos;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_vint r =
  let rec go shift acc =
    if shift > 63 then corrupt "varint too long at byte %d" r.pos;
    let c = get_u8 r in
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let u = go 0 0 in
  (u lsr 1) lxor (-(u land 1))

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool %d at byte %d" n r.pos

(* Bounded counts: no valid page holds anywhere near a million of
   anything, so a huge count is corruption, not data — reject it before
   allocating. *)
let get_count r what =
  let n = get_vint r in
  if n < 0 || n > 1 lsl 20 then corrupt "implausible %s count %d" what n;
  n

let need what = function Some v -> v | None -> corrupt "bad %s code" what

let put_str b s =
  put_vint b (String.length s);
  Buffer.add_string b s

let get_str r =
  let n = get_count r "string" in
  if r.pos + n > String.length r.s then corrupt "truncated string";
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)

let put_off b = function
  | Op.OImm i ->
    put_u8 b 0;
    put_vint b i
  | Op.OReg l ->
    put_u8 b 1;
    put_vint b l

let get_off r : Op.off =
  match get_u8 r with
  | 0 -> OImm (get_vint r)
  | 1 -> OReg (get_vint r)
  | n -> corrupt "bad offset tag %d" n

let put_op b (op : Op.t) =
  let tag n = put_u8 b n in
  let v n = put_vint b n in
  match op with
  | Bin { op; rt; ra; rb; ca; spec } ->
    tag 0; v (Ppc.Insn.xo_code op); v rt; v ra; v rb; v ca; put_bool b spec
  | BinI { op; rt; ra; imm; spec } ->
    tag 1; v (Op.ibin_code op); v rt; v ra; v imm; put_bool b spec
  | Logic { op; rt; ra; rb; spec } ->
    tag 2; v (Ppc.Insn.x_code op); v rt; v ra; v rb; put_bool b spec
  | Un { op; rt; ra; spec } ->
    tag 3; v (Ppc.Insn.x1_code op); v rt; v ra; put_bool b spec
  | SrawiOp { rt; ra; sh; spec } -> tag 4; v rt; v ra; v sh; put_bool b spec
  | RlwinmOp { rt; ra; sh; mb; me; spec } ->
    tag 5; v rt; v ra; v sh; v mb; v me; put_bool b spec
  | CmpOp { signed; crt; ra; rb; spec } ->
    tag 6; put_bool b signed; v crt; v ra; v rb; put_bool b spec
  | CmpIOp { signed; crt; ra; imm; spec } ->
    tag 7; put_bool b signed; v crt; v ra; v imm; put_bool b spec
  | LoadOp { w; alg; rt; base; off; spec; passed } ->
    tag 8; v (Ppc.Insn.width_code w); put_bool b alg; v rt; v base;
    put_off b off; put_bool b spec; put_bool b passed
  | StoreOp { w; rs; base; off } ->
    tag 9; v (Ppc.Insn.width_code w); v rs; v base; put_off b off
  | CropOp { op; bt; ba; bb; old; spec } ->
    tag 10; v (Ppc.Insn.cr_op_code op); v bt; v ba; v bb; v old;
    put_bool b spec
  | McrfOp { dst; src; spec } -> tag 11; v dst; v src; put_bool b spec
  | MfcrOp { rt; srcs } ->
    tag 12; v rt; v (Array.length srcs); Array.iter (fun l -> v l) srcs
  | CrSetOp { crt; rs; pos } -> tag 13; v crt; v rs; v pos
  | GetXer { rt } -> tag 14; v rt
  | SetXer { rs } -> tag 15; v rs
  | GetSpr { rt; spr } -> tag 16; v rt; v (Op.spr_code spr)
  | SetSpr { spr; rs } -> tag 17; v (Op.spr_code spr); v rs
  | GetMsr { rt } -> tag 18; v rt
  | SetMsr { rs } -> tag 19; v rs
  | CommitG { arch; src } -> tag 20; v arch; v src
  | CommitCr { arch; src } -> tag 21; v arch; v src
  | CommitLr { src } -> tag 22; v src
  | CommitCtr { src } -> tag 23; v src
  | CommitCa { src } -> tag 24; v src

let get_op r : Op.t =
  let v () = get_vint r in
  match get_u8 r with
  | 0 ->
    let op = need "xo_op" (Ppc.Insn.xo_of_code (v ())) in
    let rt = v () in let ra = v () in let rb = v () in let ca = v () in
    Bin { op; rt; ra; rb; ca; spec = get_bool r }
  | 1 ->
    let op = need "ibin" (Op.ibin_of_code (v ())) in
    let rt = v () in let ra = v () in let imm = v () in
    BinI { op; rt; ra; imm; spec = get_bool r }
  | 2 ->
    let op = need "x_op" (Ppc.Insn.x_of_code (v ())) in
    let rt = v () in let ra = v () in let rb = v () in
    Logic { op; rt; ra; rb; spec = get_bool r }
  | 3 ->
    let op = need "x1_op" (Ppc.Insn.x1_of_code (v ())) in
    let rt = v () in let ra = v () in
    Un { op; rt; ra; spec = get_bool r }
  | 4 ->
    let rt = v () in let ra = v () in let sh = v () in
    SrawiOp { rt; ra; sh; spec = get_bool r }
  | 5 ->
    let rt = v () in let ra = v () in let sh = v () in
    let mb = v () in let me = v () in
    RlwinmOp { rt; ra; sh; mb; me; spec = get_bool r }
  | 6 ->
    let signed = get_bool r in
    let crt = v () in let ra = v () in let rb = v () in
    CmpOp { signed; crt; ra; rb; spec = get_bool r }
  | 7 ->
    let signed = get_bool r in
    let crt = v () in let ra = v () in let imm = v () in
    CmpIOp { signed; crt; ra; imm; spec = get_bool r }
  | 8 ->
    let w = need "width" (Ppc.Insn.width_of_code (v ())) in
    let alg = get_bool r in
    let rt = v () in let base = v () in let off = get_off r in
    let spec = get_bool r in
    LoadOp { w; alg; rt; base; off; spec; passed = get_bool r }
  | 9 ->
    let w = need "width" (Ppc.Insn.width_of_code (v ())) in
    let rs = v () in let base = v () in
    StoreOp { w; rs; base; off = get_off r }
  | 10 ->
    let op = need "cr_op" (Ppc.Insn.cr_op_of_code (v ())) in
    let bt = v () in let ba = v () in let bb = v () in let old = v () in
    CropOp { op; bt; ba; bb; old; spec = get_bool r }
  | 11 ->
    let dst = v () in let src = v () in
    McrfOp { dst; src; spec = get_bool r }
  | 12 ->
    let rt = v () in
    let n = get_count r "mfcr srcs" in
    if n <> 8 then corrupt "mfcr with %d fields" n;
    MfcrOp { rt; srcs = Array.init n (fun _ -> v ()) }
  | 13 ->
    let crt = v () in let rs = v () in
    CrSetOp { crt; rs; pos = v () }
  | 14 -> GetXer { rt = v () }
  | 15 -> SetXer { rs = v () }
  | 16 ->
    let rt = v () in
    GetSpr { rt; spr = need "spr" (Op.spr_of_code (v ())) }
  | 17 ->
    let spr = need "spr" (Op.spr_of_code (v ())) in
    SetSpr { spr; rs = v () }
  | 18 -> GetMsr { rt = v () }
  | 19 -> SetMsr { rs = v () }
  | 20 -> let arch = v () in CommitG { arch; src = v () }
  | 21 -> let arch = v () in CommitCr { arch; src = v () }
  | 22 -> CommitLr { src = v () }
  | 23 -> CommitCtr { src = v () }
  | 24 -> CommitCa { src = v () }
  | n -> corrupt "bad op tag %d" n

(* ------------------------------------------------------------------ *)
(* Trees                                                               *)

let put_exit b (e : T.exit) =
  match e with
  | Next id -> put_u8 b 0; put_vint b id
  | OnPage off -> put_u8 b 1; put_vint b off
  | OffPage a -> put_u8 b 2; put_vint b a
  | Indirect (l, k) ->
    put_u8 b 3;
    put_vint b l;
    put_u8 b (match k with `Lr -> 0 | `Ctr -> 1 | `Gpr -> 2)
  | Trap (Tsc a) -> put_u8 b 4; put_vint b a
  | Trap Trfi -> put_u8 b 5
  | Trap (Tillegal a) -> put_u8 b 6; put_vint b a

let get_exit r : T.exit =
  match get_u8 r with
  | 0 -> Next (get_vint r)
  | 1 -> OnPage (get_vint r)
  | 2 -> OffPage (get_vint r)
  | 3 ->
    let l = get_vint r in
    let k =
      match get_u8 r with
      | 0 -> `Lr
      | 1 -> `Ctr
      | 2 -> `Gpr
      | n -> corrupt "bad indirect kind %d" n
    in
    Indirect (l, k)
  | 4 -> Trap (Tsc (get_vint r))
  | 5 -> Trap Trfi
  | 6 -> Trap (Tillegal (get_vint r))
  | n -> corrupt "bad exit tag %d" n

(* [node.ops] is stored in its in-memory (reversed) order so the decode
   is an exact structural round-trip. *)
let rec put_node b (n : T.node) =
  put_vint b (List.length n.ops);
  List.iter
    (fun (seq, op) ->
      put_vint b seq;
      put_op b op)
    n.ops;
  match n.kind with
  | Open -> put_u8 b 0
  | Exit e -> put_u8 b 1; put_exit b e
  | Branch { test; taken; fall } ->
    put_u8 b 2;
    put_vint b test.bit;
    put_bool b test.sense;
    put_node b taken;
    put_node b fall

let rec get_node r : T.node =
  let nops = get_count r "op" in
  let ops =
    List.init nops (fun _ ->
        let seq = get_vint r in
        (seq, get_op r))
  in
  let kind : T.kind =
    match get_u8 r with
    | 0 -> Open
    | 1 -> Exit (get_exit r)
    | 2 ->
      let bit = get_vint r in
      let sense = get_bool r in
      let taken = get_node r in
      Branch { test = { bit; sense }; taken; fall = get_node r }
    | n -> corrupt "bad node kind %d" n
  in
  { ops; kind }

let put_tree b (t : T.t) =
  put_vint b t.id;
  put_vint b t.precise_entry;
  put_bool b t.is_entry;
  put_vint b t.alu;
  put_vint b t.mem;
  put_vint b t.br;
  put_vint b t.free_gprs;
  put_vint b t.free_crs;
  put_node b t.root

let get_tree r : T.t =
  let id = get_vint r in
  let precise_entry = get_vint r in
  let is_entry = get_bool r in
  let alu = get_vint r in
  let mem = get_vint r in
  let br = get_vint r in
  let free_gprs = get_vint r in
  let free_crs = get_vint r in
  { id; precise_entry; is_entry; alu; mem; br; free_gprs; free_crs;
    root = get_node r }

(* ------------------------------------------------------------------ *)
(* Pages                                                               *)

let encode_xpage (p : Translate.xpage) =
  let b = Buffer.create 4096 in
  put_vint b p.base;
  put_vint b p.psize;
  put_vint b p.code_bytes;
  put_vint b p.next_addr;
  put_vint b p.insns_scheduled;
  put_vint b (Vec.length p.vliws);
  Vec.iteri
    (fun i v ->
      put_tree b v;
      put_vint b (Vec.get p.addrs i);
      put_vint b (Vec.get p.sizes i))
    p.vliws;
  let entries =
    Hashtbl.fold (fun off id acc -> (off, id) :: acc) p.entries []
    |> List.sort compare
  in
  put_vint b (List.length entries);
  List.iter
    (fun (off, id) ->
      put_vint b off;
      put_vint b id)
    entries;
  Buffer.contents b

let decode_xpage s : Translate.xpage =
  let r = reader s in
  let base = get_vint r in
  let psize = get_vint r in
  if base < 0 || psize <= 0 then corrupt "bad page geometry";
  let code_bytes = get_vint r in
  let next_addr = get_vint r in
  let insns_scheduled = get_vint r in
  let nv = get_count r "vliw" in
  let vliws = Vec.create () and addrs = Vec.create () and sizes = Vec.create () in
  for _ = 1 to nv do
    Vec.push vliws (get_tree r);
    Vec.push addrs (get_vint r);
    Vec.push sizes (get_vint r)
  done;
  let ne = get_count r "entry" in
  let entries = Hashtbl.create (max 16 ne) in
  for _ = 1 to ne do
    let off = get_vint r in
    let id = get_vint r in
    if off < 0 || off >= psize then corrupt "entry offset %d out of page" off;
    if id < 0 || id >= nv then corrupt "entry VLIW id %d out of range" id;
    Hashtbl.replace entries off id
  done;
  if r.pos <> String.length s then
    corrupt "%d trailing bytes" (String.length s - r.pos);
  { base; psize; vliws; addrs; sizes; entries; code_bytes; next_addr;
    insns_scheduled }
