(* Common workload infrastructure: the miniature base OS, the syscall
   conventions, and the workload type the harness consumes.

   Every workload is a complete bare-metal base-architecture program:
   the OS's first-level interrupt handlers live at the architected
   vectors (and run *translated*, like everything else), programs exit
   and print through [sc], and input data is placed in memory by an
   [init] function after assembly. *)

open Ppc

(* Memory map (code and data deliberately on disjoint pages, so stores
   never invalidate translations of the code being run):
   0x00300..        interrupt vectors (mini OS)
   0x01000..0x0EFFF program text
   0x1F000..        tables/class maps
   0x20000..        primary input data
   0x28000..        secondary input data
   0x2C000..        output buffers
   0x30000..        scratch (hash tables, explicit stacks) *)

let text_base = 0x1000
let table_base = 0x1F000

(** Where the mini OS counts external interrupts (one word).  Runs that
    inject interrupts exclude this word from differential memory
    comparison — it is the only architected footprint a transparent
    interrupt leaves. *)
let interrupt_count_addr = table_base + 0xF00
let data_base = 0x20000
let data2_base = 0x28000
let out_base = 0x2C000
let scratch_base = 0x30000
let default_mem_size = 0x40000

type t = {
  name : string;
  description : string;
  build : Asm.t -> unit;          (** program text; must define "main" *)
  init : Mem.t -> Asm.labels -> unit;  (** fill input data after assembly *)
  mem_size : int;
  fuel : int;                     (** base-instruction budget *)
}

(** Exit with the value in r3 (syscall 0). *)
let sys_exit a =
  Asm.li a 0 0;
  Asm.ins a Sc

(** Print the low byte of r3 (syscall 1). *)
let sys_putchar a =
  Asm.li a 0 1;
  Asm.ins a Sc

(* The mini OS.  Handlers clobber nothing: scratch registers are saved
   in SPRG0/SPRG1.  Unexpected interrupts halt with a recognizable
   code. *)
let dead a code =
  Asm.li32 a 3 code;
  Asm.halt a ~scratch:4 3

let mini_os a =
  Asm.org a Interp.Vector.dsi;
  dead a 0xDEAD0300;
  Asm.org a Interp.Vector.isi;
  dead a 0xDEAD0400;
  Asm.org a Interp.Vector.external_;
  (* count external interrupts at [interrupt_count_addr], resume *)
  Asm.ins a (Mtspr (SPRG0, 29));
  Asm.ins a (Mtspr (SPRG1, 30));
  Asm.li32 a 29 interrupt_count_addr;
  Asm.lwz a 30 29 0;
  Asm.addi a 30 30 1;
  Asm.stw a 30 29 0;
  Asm.ins a (Mfspr (29, SPRG0));
  Asm.ins a (Mfspr (30, SPRG1));
  Asm.ins a Rfi;
  Asm.org a Interp.Vector.program;
  dead a 0xDEAD0700;
  Asm.org a Interp.Vector.syscall;
  (* r0 = 0: exit(r3); r0 = 1: putchar(r3) *)
  Asm.cmpwi ~cr:7 a 0 0;
  Asm.bc ~cr:7 a Asm.Ne "os_putchar";
  Asm.halt a ~scratch:4 3;
  Asm.label a "os_putchar";
  Asm.ins a (Mtspr (SPRG0, 29));
  Asm.li32 a 29 Mem.mmio_putchar;
  Asm.stw a 3 29 0;
  Asm.ins a (Mfspr (29, SPRG0));
  Asm.ins a Rfi

(** Assemble a workload into a fresh memory image; returns the memory
    and the entry address. *)
let instantiate (w : t) =
  let mem = Mem.create w.mem_size in
  let a = Asm.create () in
  mini_os a;
  Asm.org a text_base;
  w.build a;
  let labels = Asm.assemble a mem in
  w.init mem labels;
  (mem, Hashtbl.find labels "main")

(** Write [s] at [addr] preceded by its length word at [addr]-4...
    actually: length word at [addr], bytes from [addr+4]. *)
let put_sized_string mem addr s =
  Mem.store32 mem addr (String.length s);
  Mem.blit_string mem (addr + 4) s

let put_int_array mem addr arr =
  Array.iteri (fun i v -> Mem.store32 mem (addr + (4 * i)) v) arr
