(* The tier-2 promotion driver: policy, background compilation and
   atomic swap-in of hot regions.

   Tier-1 is the page-at-a-time one-pass translator; tier-2 is the
   superblock scheduler ({!Baseline.Region}) applied to a hot page or
   inter-page SCC.  This module owns the loop between them:

     observe -> pick candidates -> compile off the hot path -> verify
     -> [Monitor.promote] -> (on assumption failure the monitor deopts
     and we take a strike against the candidate)

   Heat comes from two sources feeding one {!Profile}: the monitor's
   event stream (page enters, exit edges, interpretation), and — because
   a steady-state loop that never leaves its page emits no events at
   all — a committed-boundary tick that samples [vmm.stats.vliws]
   directly.  Candidates are inter-page SCCs from {!Profile.regions}
   plus hot single pages; both kinds are worth the superblock
   scheduler's wider window even without cross-page speculation.

   Compilation runs through an injected [submit] closure (the serve
   layer passes a domain-pool submit; [None] compiles inline).  The
   background job works on an immutable snapshot (member bytes, entry
   points) and never touches the VMM; results come back through a
   mutexed queue drained on the main thread, which re-verifies the
   member bytes before the swap — a self-modifying store during the
   compile simply discards the image.  The swap itself is
   [Monitor.promote]: main-thread table writes consulted only at the
   next cross-page dispatch, so execution never sees a partial
   install.

   Promoted images persist to the translation cache under a key built
   from the member-page *contents* ([Store.region_key]), so warm starts
   re-promote without recompiling ({!warm_start}). *)

module Monitor = Vmm.Monitor
module Translate = Translator.Translate
module Params = Translator.Params

type config = {
  min_heat : int;
      (** per-run execution weight (VLIWs + interpreted instructions)
          a single page must reach to be promoted on its own *)
  edge_threshold : int;
      (** per-run traversal count an exit edge must reach to
          participate in an SCC candidate *)
  max_pages : int;      (** largest member set worth one image *)
  check_every : int;    (** committed boundaries / events between
                            policy evaluations *)
  max_deopts : int;     (** strikes before a candidate is blacklisted *)
  submit : ((unit -> unit) -> unit) option;
      (** background execution; [None] compiles on the caller's
          thread (deterministic, used by tests and --tier2-sync) *)
}

(* Thresholds are deliberately low: the compile runs off the hot path
   (a few ms per region) and a mid-run promotion only pays for the
   VLIWs executed *after* the swap, so waiting for a high bar forfeits
   most of the win.  Empirically on the seed workloads, promotion at
   5k heat captures ~95% of the region's steady state; at 100k it
   captures about half and the end-to-end ILP lands below tier-1. *)
let default =
  { min_heat = 5_000; edge_threshold = 250; max_pages = 8;
    check_every = 2_048; max_deopts = 3; submit = None }

(* A candidate's identity is its member set; strikes survive deopt and
   gate re-promotion (each strike doubles the heat bar). *)
let set_key members =
  String.concat "," (List.map string_of_int (Array.to_list members))

type snapshot = {
  s_members : int array;       (** sorted tier-1 page bases *)
  s_bytes : string list;       (** member bytes at snapshot time *)
  s_entries : int list;        (** observed entry points, sorted *)
}

type outcome =
  | Compiled of Baseline.Region.compiled
  | Cached of Translate.t * Translate.xpage
  | Failed of string

type t = {
  cfg : config;
  vmm : Monitor.t;
  profile : Profile.t;
  mutable ticks : int;
  mutable events : int;
  strikes : (string, int) Hashtbl.t;       (** set key -> deopt strikes *)
  in_flight : (string, unit) Hashtbl.t;    (** compiles not yet landed *)
  promoted : (int, string) Hashtbl.t;      (** region id -> set key *)
  results : (snapshot * outcome) Queue.t;  (** background -> main thread *)
  results_lock : Mutex.t;
  mutable results_ready : bool;
      (** set by the background thread after a push; read unlocked on
          the main thread so every committed boundary can poll for a
          finished compile without taking the mutex (a one-boundary-
          late read is harmless, a 2048-boundary install delay is not) *)
  (* driver-visible counters (the bench and CLI summaries read these) *)
  mutable considered : int;    (** candidate evaluations *)
  mutable launched : int;      (** compiles started *)
  mutable installed : int;     (** images swapped in *)
  mutable rejected_stale : int;
      (** images discarded because member bytes changed under the
          compile, or the monitor refused the swap *)
}

let create ?(cfg = default) vmm =
  { cfg; vmm;
    profile = Profile.create ~page_size:vmm.Monitor.tr.params.page_size ();
    ticks = 0; events = 0; strikes = Hashtbl.create 8;
    in_flight = Hashtbl.create 8; promoted = Hashtbl.create 8;
    results = Queue.create (); results_lock = Mutex.create ();
    results_ready = false;
    considered = 0; launched = 0; installed = 0; rejected_stale = 0 }

(* --- promotion verdicts (also used by `daisy profile --regions`) ---- *)

(** Would this profiler region be promoted under [cfg]?  Pure policy —
    no VMM state, so the CLI can explain decisions offline. *)
let verdict ~cfg (r : Profile.region) =
  let heat = r.region_vliws in
  let pages = List.length r.rpages in
  if pages > cfg.max_pages then
    Error (Printf.sprintf "spans %d pages > max %d" pages cfg.max_pages)
  else if heat < cfg.min_heat then
    Error (Printf.sprintf "heat %d < min %d" heat cfg.min_heat)
  else Ok heat

(* --- candidate selection ------------------------------------------- *)

let member_bytes t base =
  let mem = t.vmm.Monitor.mem in
  let len = min t.vmm.Monitor.tr.params.page_size (Ppc.Mem.size mem - base) in
  Ppc.Mem.read_string mem base len

(* Entry points tier-1 observed for [base]: the offsets registered in
   its xpage.  A member that was only ever interpreted contributes
   none; the region image lazily extends if control enters there. *)
let observed_entries t base =
  match Hashtbl.find_opt t.vmm.Monitor.tr.pages base with
  | None -> []
  | Some (xp : Translate.xpage) ->
    Hashtbl.fold (fun off _ acc -> (base + off) :: acc) xp.entries []

let required_heat t key =
  let strikes =
    match Hashtbl.find_opt t.strikes key with Some n -> n | None -> 0
  in
  t.cfg.min_heat lsl strikes

let blacklisted t key =
  (match Hashtbl.find_opt t.strikes key with Some n -> n | None -> 0)
  >= t.cfg.max_deopts

(* Regions may grow: a candidate that covers an installed region's
   every member plus at least one more is an *upgrade* — the old image
   is deopted at install time and the wider one takes over (the way a
   hot single page later absorbed into a cross-page SCC should go).
   Anything short of strict growth is ineligible, so {A,B} vs {B,C}
   can never flap. *)
let member_mem members b = Array.exists (Int.equal b) members

let upgrade_ok t members =
  let strict_growth = ref false and ok = ref true in
  Array.iter
    (fun b ->
      match Monitor.region_of t.vmm b with
      | None -> strict_growth := true
      | Some r ->
        if not (Array.for_all (member_mem members) r.Monitor.r_members) then
          ok := false)
    members;
  !ok && !strict_growth

let eligible t members heat =
  let key = set_key members in
  (not (blacklisted t key))
  && (not (Hashtbl.mem t.in_flight key))
  && heat >= required_heat t key
  && Array.length members <= t.cfg.max_pages
  && Array.length members > 0
  && upgrade_ok t members
  && Array.for_all
       (fun b ->
         match Hashtbl.find_opt t.vmm.Monitor.page_health b with
         | Some h -> h.failures = 0 && not h.pinned_interp
         | None -> true)
       members

(* Candidates, hottest first: inter-page SCCs (the profiler's reason to
   exist), then hot single pages (whose win is the wider window alone).
   A page already inside a chosen SCC is not offered again alone. *)
let candidates t =
  let sccs =
    Profile.regions ~threshold:t.cfg.edge_threshold t.profile
    |> List.map (fun (r : Profile.region) ->
           (Array.of_list r.rpages, r.region_vliws))
  in
  let covered = Hashtbl.create 8 in
  List.iter
    (fun (ms, _) -> Array.iter (fun b -> Hashtbl.replace covered b ()) ms)
    sccs;
  let singles =
    Profile.pages_ranked t.profile
    |> List.filter_map (fun (p : Profile.page) ->
           let heat = p.vliws + p.interp_insns in
           if heat >= t.cfg.min_heat && not (Hashtbl.mem covered p.base) then
             Some ([| p.base |], heat)
           else None)
  in
  List.filter (fun (ms, heat) -> eligible t ms heat) (sccs @ singles)

(* --- background compile / cached probe ------------------------------ *)

let push_result t snap outcome =
  Mutex.lock t.results_lock;
  Queue.push (snap, outcome) t.results;
  Mutex.unlock t.results_lock;
  t.results_ready <- true

(* Runs off the main thread (or inline under [submit = None]): probe
   the persistent cache for this exact member-content set, else compile
   fresh.  Touches only the snapshot, [mem] reads of member bytes the
   install step re-verifies, and the results queue. *)
let compile_job t snap () =
  let vmm = t.vmm in
  let t1 = vmm.Monitor.tr.params in
  let outcome =
    match
      let cached =
        match vmm.Monitor.tcache with
        | None -> None
        | Some store -> (
          let fingerprint =
            Baseline.Region.fingerprint
              ~mem_size:(Ppc.Mem.size vmm.Monitor.mem) t1
          in
          let key =
            Tcache.Store.region_key store ~fingerprint
              ~members:snap.s_members ~bytes:snap.s_bytes
          in
          match Tcache.Store.probe_region store ~key ~fingerprint with
          | `Hit (xp, spec_inhibited, _members) ->
            let tr =
              Baseline.Region.translator ~t1 ~frontend:vmm.Monitor.fe
                vmm.Monitor.mem ~members:snap.s_members
            in
            Translate.install tr ~spec_inhibited xp;
            Some (Cached (tr, xp))
          | `Miss | `Corrupt _ | `Skipped _ -> None)
      in
      match cached with
      | Some c -> c
      | None ->
        Compiled
          (Baseline.Region.compile ~t1 ~frontend:vmm.Monitor.fe
             vmm.Monitor.mem ~members:snap.s_members
             ~entries:snap.s_entries)
    with
    | outcome -> outcome
    | exception exn -> Failed (Printexc.to_string exn)
  in
  push_result t snap outcome

let launch t members =
  let key = set_key members in
  (* Seeding is best-effort: the image lazily extends at runtime for
     any address the monitor dispatches into it, and converges to the
     same shape regardless of the seed, so tier-1's observed entries
     are simply a head start for the background compile. *)
  let entries =
    Array.to_list members
    |> List.concat_map (observed_entries t)
    |> List.sort_uniq compare
  in
  if entries = [] then ()
  else begin
    let snap =
      { s_members = members;
        s_bytes = Array.to_list (Array.map (member_bytes t) members);
        s_entries = entries }
    in
    Hashtbl.replace t.in_flight key ();
    t.launched <- t.launched + 1;
    match t.cfg.submit with
    | Some submit -> submit (compile_job t snap)
    | None -> compile_job t snap ()
  end

(* --- install (main thread) ------------------------------------------ *)

let try_install t snap outcome =
  let key = set_key snap.s_members in
  Hashtbl.remove t.in_flight key;
  match outcome with
  | Failed _ ->
    (* undecodable entry, injected translator fault…: strike the
       candidate so a deterministic failure can't relaunch forever *)
    Hashtbl.replace t.strikes key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.strikes key))
  | Compiled _ | Cached _ ->
    let fresh =
      List.for_all2
        (fun b bytes -> String.equal (member_bytes t b) bytes)
        (Array.to_list snap.s_members) snap.s_bytes
    in
    if not fresh then t.rejected_stale <- t.rejected_stale + 1
    else begin
      (* upgrade: retire any smaller regions this image absorbs before
         the swap — eligibility guaranteed they are strict subsets *)
      let covering =
        Array.to_list snap.s_members
        |> List.filter_map (fun b -> Monitor.region_of t.vmm b)
        |> List.sort_uniq (fun (a : Monitor.region) b ->
               compare a.r_id b.r_id)
      in
      List.iter
        (fun (r : Monitor.region) ->
          Monitor.deopt_region t.vmm r ~page:r.r_members.(0)
            ~reason:"superseded by a larger region")
        covering;
      let tr, insns, seconds, cached =
        match outcome with
        | Compiled c -> (c.c_tr, c.c_insns, c.c_seconds, false)
        | Cached (tr, xp) -> (tr, xp.insns_scheduled, 0., true)
        | Failed _ -> assert false
      in
      match
        Monitor.promote t.vmm ~members:snap.s_members ~tr ~insns ~seconds
          ~cached ()
      with
      | Error _ -> t.rejected_stale <- t.rejected_stale + 1
      | Ok r ->
        t.installed <- t.installed + 1;
        Hashtbl.replace t.promoted r.Monitor.r_id key;
        if not cached then Monitor.tcache_persist_region t.vmm r
    end

let drain t =
  let pending = ref [] in
  t.results_ready <- false;
  Mutex.lock t.results_lock;
  while not (Queue.is_empty t.results) do
    pending := Queue.pop t.results :: !pending
  done;
  Mutex.unlock t.results_lock;
  List.iter (fun (snap, outcome) -> try_install t snap outcome)
    (List.rev !pending)

(* --- the periodic policy evaluation --------------------------------- *)

let consider t =
  t.considered <- t.considered + 1;
  drain t;
  (* credit the VLIWs the current page accumulated since its enter —
     a loop that never crosses pages is otherwise invisible *)
  Profile.flush t.profile ~vliws_total:t.vmm.Monitor.stats.vliws;
  let cands = candidates t in
  if Sys.getenv_opt "DAISY_TIER_DEBUG" <> None then
    Printf.eprintf "tier: consider #%d: %d sccs, candidates [%s]\n%!"
      t.considered
      (List.length (Profile.regions ~threshold:t.cfg.edge_threshold t.profile))
      (String.concat "; "
         (List.map (fun (ms, h) -> Printf.sprintf "%s@%d" (set_key ms) h)
            cands));
  List.iter (fun (members, _) -> launch t members) cands

(* --- wiring ---------------------------------------------------------- *)

let on_event t (ev : Monitor.event) =
  (match ev with
  | Page_enter { page; vliws_so_far; _ } ->
    Profile.enter t.profile ~page ~vliws_so_far
  | Exit_edge { src; dst; kind; _ } ->
    let kind : Profile.edge_kind =
      match kind with
      | Etaken -> Taken | Efall -> Fall | Elr -> Lr | Ectr -> Ctr
      | Egpr -> Gpr | Einterp -> Interp
    in
    Profile.edge t.profile ~src ~dst ~kind
  | Interp_end { pc; insns; _ } -> Profile.interp t.profile ~pc ~insns
  | Region_deopt { id; _ } -> (
    match Hashtbl.find_opt t.promoted id with
    | None -> ()
    | Some key ->
      Hashtbl.remove t.promoted id;
      Hashtbl.replace t.strikes key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.strikes key)))
  | _ -> ());
  t.events <- t.events + 1;
  if t.results_ready then drain t;
  if t.events >= t.cfg.check_every then begin
    t.events <- 0;
    consider t
  end

let on_tick t ~pc:_ =
  t.ticks <- t.ticks + 1;
  if t.results_ready then drain t;
  if t.ticks >= t.cfg.check_every then begin
    t.ticks <- 0;
    consider t
  end

(** Re-promote from the persistent cache: scan the store directory for
    region entries whose member pages currently hold exactly the bytes
    they were compiled from, and swap each in without compiling.  Run
    once before execution starts (a warm fleet comes up already
    promoted). *)
let warm_start t =
  match t.vmm.Monitor.tcache with
  | None -> 0
  | Some store ->
    let dir = store.Tcache.Store.dir in
    let t1 = t.vmm.Monitor.tr.params in
    let fingerprint =
      Baseline.Region.fingerprint ~mem_size:(Ppc.Mem.size t.vmm.Monitor.mem)
        t1
    in
    let infos =
      (* widest image first: overlapping cached regions (a run that
         upgraded leaves both) resolve to the larger one, the smaller
         fails [promote] with [`Already_promoted] and is skipped *)
      List.sort
        (fun (a : Tcache.Store.info) (b : Tcache.Store.info) ->
          compare (Array.length b.members) (Array.length a.members))
        (Tcache.Store.list_dir dir)
    in
    List.fold_left
      (fun n (i : Tcache.Store.info) ->
        if i.kind <> `Region || i.status <> `Ok then n
        else begin
          let members = i.members in
          let bytes =
            Array.to_list (Array.map (member_bytes t) members)
          in
          let key =
            Tcache.Store.region_key store ~fingerprint ~members ~bytes
          in
          (* key recomputed from *current* bytes: a stale image (any
             member byte changed since it was persisted) simply fails
             this match and stays on disk for eviction by deopt *)
          if key <> i.key then n
          else
            match Tcache.Store.probe_region store ~key ~fingerprint with
            | `Hit (xp, spec_inhibited, _) -> (
              let tr =
                Baseline.Region.translator ~t1 ~frontend:t.vmm.Monitor.fe
                  t.vmm.Monitor.mem ~members
              in
              Translate.install tr ~spec_inhibited xp;
              match
                Monitor.promote t.vmm ~members ~tr
                  ~insns:xp.insns_scheduled ~cached:true ()
              with
              | Ok r ->
                t.installed <- t.installed + 1;
                Hashtbl.replace t.promoted r.Monitor.r_id (set_key members);
                n + 1
              | Error _ -> n)
            | `Miss | `Corrupt _ | `Skipped _ -> n
        end)
      0 infos

(** Attach the driver: chains the monitor's event hook (heat + deopt
    accounting) and tick hook (periodic policy evaluation that survives
    event-silent steady states), then re-promotes cached regions.
    Attach AFTER Bridge/Supervise so their hooks stay live. *)
let attach ?(cfg = default) vmm =
  let t = create ~cfg vmm in
  let prev_ev = vmm.Monitor.event_hook in
  vmm.Monitor.event_hook <-
    Some
      (fun ev ->
        (match prev_ev with Some h -> h ev | None -> ());
        on_event t ev);
  let prev_tick = vmm.Monitor.tick_hook in
  vmm.Monitor.tick_hook <-
    Some
      (fun ~pc ->
        (match prev_tick with Some h -> h ~pc | None -> ());
        on_tick t ~pc);
  ignore (warm_start t);
  t

(** One final drain + install pass (callers that end the run with a
    compile still in flight call this before reading stats). *)
let finish t = drain t
