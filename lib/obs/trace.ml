(* The structured event tracer: a bounded ring buffer of timestamped
   events, exportable as JSONL (one object per line) and as Chrome
   trace_event JSON, which Perfetto / chrome://tracing load directly.

   Timestamps are VLIW cycles (the simulator's clock), not wall time.
   When the buffer is full the oldest events are overwritten and
   [dropped] counts what was lost — a run's tail is always retained.

   A ring may be shared across domains (the serve layer hands one
   tracer to several sessions), so the head/len/total bookkeeping and
   the snapshot taken by [iter] are guarded by a mutex.  Emit cost
   under the lock stays two stores and two adds. *)

type phase = B  (** span begin *)
           | E  (** span end *)
           | I  (** instant *)
           | C  (** counter sample *)

type ev = {
  ts : int;  (** VLIW-cycle timestamp *)
  name : string;
  ph : phase;
  args : (string * Json.t) list;
}

type t = {
  buf : ev array;
  capacity : int;
  mutable len : int;   (* filled slots, <= capacity *)
  mutable head : int;  (* next write position *)
  mutable total : int; (* events ever emitted *)
  lock : Mutex.t;
}

let dummy = { ts = 0; name = ""; ph = I; args = [] }

let create ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; capacity; len = 0; head = 0; total = 0;
    lock = Mutex.create () }

let emit t ~ts ~name ~ph args =
  let e = { ts; name; ph; args } in
  Mutex.lock t.lock;
  t.buf.(t.head) <- e;
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.total <- t.total + 1;
  Mutex.unlock t.lock

let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

(** Iterate the retained events, oldest first.  Snapshots the retained
    range under the lock, then runs [f] outside it — [f] may itself
    emit without deadlocking, and concurrent emitters aren't stalled
    behind a slow consumer. *)
let iter f t =
  Mutex.lock t.lock;
  let snap = Array.make t.len dummy in
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for i = 0 to t.len - 1 do
    snap.(i) <- t.buf.((start + i) mod t.capacity)
  done;
  Mutex.unlock t.lock;
  Array.iter f snap

let to_list t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let phase_string = function B -> "B" | E -> "E" | I -> "i" | C -> "C"

(** Chrome trace_event JSON ("JSON object format"), loadable in
    Perfetto.  All events share pid/tid 1; instants carry thread
    scope. *)
let to_chrome t =
  let evs = ref [] in
  iter
    (fun e ->
      let base =
        [ ("name", Json.Str e.name); ("ph", Json.Str (phase_string e.ph));
          ("ts", Json.Int e.ts); ("pid", Json.Int 1); ("tid", Json.Int 1) ]
      in
      let scope = match e.ph with I -> [ ("s", Json.Str "t") ] | _ -> [] in
      let args =
        match e.args with [] -> [] | a -> [ ("args", Json.Obj a) ]
      in
      evs := Json.Obj (base @ scope @ args) :: !evs)
    t;
  Json.Obj
    [ ("traceEvents", Json.Arr (List.rev !evs));
      ("displayTimeUnit", Json.Str "ns");
      ("otherData",
       Json.Obj
         [ ("clock", Json.Str "vliw-cycles");
           ("dropped_events", Json.Int (dropped t)) ]) ]

(** One JSON object per line: {"ts":..,"ph":..,"name":..,<args>}. *)
let to_jsonl t oc =
  iter
    (fun e ->
      let j =
        Json.Obj
          (("ts", Json.Int e.ts)
          :: ("ph", Json.Str (phase_string e.ph))
          :: ("name", Json.Str e.name)
          :: e.args)
      in
      output_string oc (Json.to_string j);
      output_char oc '\n')
    t
