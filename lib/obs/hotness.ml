(* Per-page hotness profile: for every translated page, how often it
   was entered, how many VLIWs executed from it, and how much
   translation work (units, instructions, bytes, invalidations) it
   cost — the data behind Section 5.1's "is translation overhead
   amortised?" question, answered per page instead of in aggregate.

   VLIW attribution: the VMM reports the running VLIW count at every
   page switch; the delta since the previous switch is credited to the
   page that was executing.  Call [flush] with the final count when the
   run ends so the tail is credited too. *)

type page = {
  base : int;
  mutable entries : int;         (** times entered from the VMM dispatch loop *)
  mutable vliws : int;           (** VLIWs executed while this page was current *)
  mutable translations : int;    (** translation units built (>1 = re-translation) *)
  mutable insns_scheduled : int; (** base instructions scheduled, incl. re-scheduling *)
  mutable code_bytes : int;      (** translated code bytes produced *)
  mutable invalidations : int;   (** self-modifying / adaptive invalidations *)
  mutable castouts : int;        (** evictions by the code-cache budget *)
}

type t = {
  pages : (int, page) Hashtbl.t;
  mutable current : int;         (* page being executed; -1 = none *)
  mutable vliws_at_switch : int;
}

let create () = { pages = Hashtbl.create 64; current = -1; vliws_at_switch = 0 }

let page t base =
  match Hashtbl.find_opt t.pages base with
  | Some p -> p
  | None ->
    let p =
      { base; entries = 0; vliws = 0; translations = 0; insns_scheduled = 0;
        code_bytes = 0; invalidations = 0; castouts = 0 }
    in
    Hashtbl.add t.pages base p;
    p

let credit t vliws_now =
  if t.current >= 0 then (
    let p = page t t.current in
    p.vliws <- p.vliws + (vliws_now - t.vliws_at_switch))

let enter t ~page:base ~vliws_so_far =
  credit t vliws_so_far;
  let p = page t base in
  p.entries <- p.entries + 1;
  t.current <- base;
  t.vliws_at_switch <- vliws_so_far

let translated t ~page:base ~insns ~bytes =
  let p = page t base in
  p.translations <- p.translations + 1;
  p.insns_scheduled <- p.insns_scheduled + insns;
  p.code_bytes <- p.code_bytes + bytes

let invalidated t ~page:base =
  let p = page t base in
  p.invalidations <- p.invalidations + 1

let castout t ~page:base =
  let p = page t base in
  p.castouts <- p.castouts + 1

(** Credit the tail of the run to the last executing page; call once,
    with the final VLIW count, when execution ends. *)
let flush t ~vliws_total =
  credit t vliws_total;
  t.current <- -1;
  t.vliws_at_switch <- vliws_total

(** Pages by VLIWs executed, hottest first. *)
let ranked t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pages []
  |> List.sort (fun a b -> compare (b.vliws, b.base) (a.vliws, a.base))

(** VLIWs executed per base instruction scheduled — above 1.0 the
    translation of this page has paid for itself many times over. *)
let amortisation p =
  float_of_int p.vliws /. float_of_int (max 1 p.insns_scheduled)

let to_json t =
  Json.Arr
    (List.map
       (fun p ->
         Json.Obj
           [ ("page", Json.Int p.base);
             ("entries", Json.Int p.entries);
             ("vliws", Json.Int p.vliws);
             ("translations", Json.Int p.translations);
             ("insns_scheduled", Json.Int p.insns_scheduled);
             ("code_bytes", Json.Int p.code_bytes);
             ("invalidations", Json.Int p.invalidations);
             ("castouts", Json.Int p.castouts);
             ("vliws_per_insn_scheduled", Json.Float (amortisation p)) ])
       (ranked t))
