(* Minimal JSON: a value type, a compact RFC 8259 writer and a strict
   parser.  The toolchain carries no JSON library and the observability
   layer must not pull new dependencies, so this is hand-rolled.  The
   writer is what every machine-readable export (metrics, traces,
   BENCH_daisy.json) goes through; the parser exists so the tests can
   round-trip exports and CI can validate emitted artifacts without
   python. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no inf/nan; they become null rather than invalid text *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.output_buffer oc buf;
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail "bad literal"
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some cp -> add_utf8 b cp
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let is_digit c = c >= '0' && c <= '9' in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && is_digit s.[!pos] do
      incr pos
    done;
    let isfloat = ref false in
    if peek () = Some '.' then (
      isfloat := true;
      incr pos;
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done);
    (match peek () with
    | Some ('e' | 'E') ->
      isfloat := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number";
    if !isfloat then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then (
        incr pos;
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then (
        incr pos;
        Arr [])
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and tools)                                     *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
