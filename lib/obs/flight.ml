(* The flight recorder: always-on, bounded, and only interesting when
   something goes wrong.

   A small ring of recent VMM events runs alongside every instrumented
   execution; on a trigger — shadow divergence, watchdog strike,
   quarantine, fatal signal, verification mismatch — the recorder
   writes a crash-dump file with everything a post-mortem needs: the
   event tail, the metrics registry, the per-page health table, and the
   region graph.

   Overhead discipline: because the recorder is on by default, its
   record path must cost next to nothing.  The ring stores the
   {!Vmm.Monitor.event} values themselves — already allocated by the
   monitor's emit — so recording is two array/int stores and zero
   allocation.  Rendering an event to JSON ({!render}) happens only at
   dump time (and in Bridge's full tracer, which is opt-in).

   Dump policy is first-wins per reason: the first quarantine of a run
   captures the context that *led to* the failure (the trigger event is
   the newest entry in the tail); later repeats of the same reason are
   suppressed so a quarantine storm cannot turn the recorder into an
   I/O load.  Dumping is best-effort — a recorder must never take down
   the run it is recording, so I/O errors are swallowed and reported
   only through the return value. *)

module Monitor = Vmm.Monitor

type t = {
  buf : Monitor.event array;
  capacity : int;
  mutable len : int;      (* valid entries *)
  mutable head : int;     (* next write position *)
  mutable total : int;    (* events ever pushed *)
  dir : string;
  mutable metrics : Metrics.t option;
  mutable profile : Profile.t option;
  mutable health : (unit -> Json.t) option;
      (** reads the VMM's page-health table at dump time (set by
          Bridge.attach, which is when a VMM exists) *)
  mutable dumps : (string * string) list;
      (** (reason, path) already written, newest first *)
  io : Fsio.t;
  mutable io_degraded : int;
      (** storage faults absorbed while writing dumps *)
  mutable pending : (string * string) list;
      (** (file, contents) dumps a storage fault kept off the disk —
          a bounded lossy buffer so the post-mortem survives in memory
          and fsck/HEALTH can report the loss *)
}

let default_capacity = 8192

(* dumps parked in memory by storage faults: enough for every distinct
   trigger reason, small enough that a fault storm cannot grow the heap *)
let max_pending = 16

(* never surfaced: [len] bounds every read *)
let dummy_event = Monitor.External_interrupt { cycle = -1 }

let create ?(capacity = default_capacity) ?(dir = "daisy-crash")
    ?(io = Fsio.real) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity";
  { buf = Array.make capacity dummy_event; capacity; len = 0; head = 0;
    total = 0; dir; metrics = None; profile = None; health = None;
    dumps = []; io; io_degraded = 0; pending = [] }

let set_metrics t m = t.metrics <- Some m
let set_profile t p = t.profile <- Some p
let set_health t f = t.health <- Some f

(** The recorder's event feed (Bridge pushes every event): two stores,
    no allocation. *)
let push t ev =
  t.buf.(t.head) <- ev;
  t.head <- t.head + 1;
  if t.head = t.capacity then t.head <- 0;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.total <- t.total + 1

let total t = t.total
let dropped t = t.total - t.len

(** Ring contents, oldest first. *)
let events t =
  List.init t.len (fun i ->
      t.buf.((t.head - t.len + i + t.capacity) mod t.capacity))

let dumps t = List.rev t.dumps

(** Storage faults absorbed while dumping (each parked the rendered
    dump in memory instead). *)
let io_degraded t = t.io_degraded

(** Dumps currently parked in memory by storage faults: [(file,
    contents)], oldest first. *)
let pending_dumps t = List.rev t.pending

(* --- event rendering ------------------------------------------------

   The single event -> (ts, name, phase, args) mapping, shared by the
   crash dump below and by Bridge's full-size tracer, so a dump's tail
   is exactly the trace a tracer would have kept. *)

let deadline_stage_string : Monitor.deadline_stage -> string = function
  | Dtranslate -> "translate"
  | Dcompile -> "compile"
  | Dprogress -> "progress"

let cross_kind_string : Monitor.cross_kind -> string = function
  | Xdirect -> "direct"
  | Xlr -> "lr"
  | Xctr -> "ctr"
  | Xgpr -> "gpr"
  | Xinvalid_entry -> "invalid_entry"

let rollback_kind_string : Monitor.rollback_kind -> string = function
  | RbAlias -> "alias"
  | RbSelfmod -> "selfmod"
  | RbFault -> "fault"
  | RbTag -> "tag"
  | RbTagged_target -> "tagged_target"

let edge_kind_string : Monitor.edge_kind -> string = function
  | Etaken -> "taken"
  | Efall -> "fall"
  | Elr -> "lr"
  | Ectr -> "ctr"
  | Egpr -> "gpr"
  | Einterp -> "interp"

let render (ev : Monitor.event) :
    int * string * Trace.phase * (string * Json.t) list =
  match ev with
  | Translate_begin { cycle; page; entry } ->
    ( cycle, "translate", Trace.B,
      [ ("page", Json.Int page); ("entry", Json.Int entry) ] )
  | Translate_end { cycle; page; entry; insns; vliws; bytes; groups } ->
    ( cycle, "translate", Trace.E,
      [ ("page", Json.Int page); ("entry", Json.Int entry);
        ("insns", Json.Int insns); ("vliws", Json.Int vliws);
        ("bytes", Json.Int bytes); ("groups", Json.Int groups) ] )
  | Interp_begin { cycle; pc } ->
    (cycle, "interp", Trace.B, [ ("pc", Json.Int pc) ])
  | Interp_end { cycle; pc; insns; next } ->
    ( cycle, "interp", Trace.E,
      [ ("pc", Json.Int pc); ("insns", Json.Int insns);
        ("next", Json.Int next) ] )
  | Rolled_back { cycle; pc; kind } ->
    ( cycle, "rollback", Trace.I,
      [ ("pc", Json.Int pc); ("kind", Json.Str (rollback_kind_string kind)) ]
    )
  | Cross_page { cycle; kind; target } ->
    ( cycle, "cross_page", Trace.I,
      [ ("kind", Json.Str (cross_kind_string kind));
        ("target", Json.Int target) ] )
  | Exit_edge { cycle; src; dst; kind } ->
    ( cycle, "exit_edge", Trace.I,
      [ ("src", Json.Int src); ("dst", Json.Int dst);
        ("kind", Json.Str (edge_kind_string kind)) ] )
  | Page_enter { cycle; page; vliws_so_far = _ } ->
    (cycle, "page_enter", Trace.I, [ ("page", Json.Int page) ])
  | Retranslate_adaptive { cycle; page } ->
    (cycle, "adaptive_retranslation", Trace.I, [ ("page", Json.Int page) ])
  | Castout { cycle; page } ->
    (cycle, "castout", Trace.I, [ ("page", Json.Int page) ])
  | Code_invalidated { cycle; page } ->
    (cycle, "code_invalidation", Trace.I, [ ("page", Json.Int page) ])
  | Syscall_trap { cycle; next } ->
    (cycle, "syscall", Trace.I, [ ("next", Json.Int next) ])
  | External_interrupt { cycle } -> (cycle, "external_interrupt", Trace.I, [])
  | Tcache_hit { cycle; page; vliws; bytes; seconds } ->
    ( cycle, "tcache_hit", Trace.I,
      [ ("page", Json.Int page); ("vliws", Json.Int vliws);
        ("bytes", Json.Int bytes); ("ms", Json.Float (seconds *. 1000.)) ] )
  | Tcache_miss { cycle; page } ->
    (cycle, "tcache_miss", Trace.I, [ ("page", Json.Int page) ])
  | Tcache_corrupt { cycle; page; reason } ->
    ( cycle, "tcache_corrupt", Trace.I,
      [ ("page", Json.Int page); ("reason", Json.Str reason) ] )
  | Tcache_quarantine { cycle; page; reason } ->
    ( cycle, "tcache_quarantine", Trace.I,
      [ ("page", Json.Int page); ("reason", Json.Str reason) ] )
  | Tcache_persist { cycle; page; bytes } ->
    ( cycle, "tcache_persist", Trace.I,
      [ ("page", Json.Int page); ("bytes", Json.Int bytes) ] )
  | Tcache_evict { cycle; page } ->
    (cycle, "tcache_evict", Trace.I, [ ("page", Json.Int page) ])
  | Tcache_skipped { cycle; page; reason } ->
    ( cycle, "tcache_skipped", Trace.I,
      [ ("page", Json.Int page); ("reason", Json.Str reason) ] )
  | Translator_fault { cycle; page; entry; reason } ->
    ( cycle, "translator_fault", Trace.I,
      [ ("page", Json.Int page); ("entry", Json.Int entry);
        ("reason", Json.Str reason) ] )
  | Exec_fault { cycle; page; pc; reason } ->
    ( cycle, "exec_fault", Trace.I,
      [ ("page", Json.Int page); ("pc", Json.Int pc);
        ("reason", Json.Str reason) ] )
  | Quarantine { cycle; page; failures; until } ->
    ( cycle, "quarantine", Trace.I,
      [ ("page", Json.Int page); ("failures", Json.Int failures);
        ("until", Json.Int until) ] )
  | Degrade_retry { cycle; page } ->
    (cycle, "degrade_retry", Trace.I, [ ("page", Json.Int page) ])
  | Interp_pinned { cycle; page } ->
    (cycle, "interp_pinned", Trace.I, [ ("page", Json.Int page) ])
  | Vliw_compiled { cycle; page; vliws; seconds } ->
    ( cycle, "vliw_compiled", Trace.I,
      [ ("page", Json.Int page); ("vliws", Json.Int vliws);
        ("ms", Json.Float (seconds *. 1000.)) ] )
  | Deadline { cycle; page; stage; seconds } ->
    ( cycle, "deadline", Trace.I,
      [ ("page", Json.Int page);
        ("stage", Json.Str (deadline_stage_string stage));
        ("ms", Json.Float (seconds *. 1000.)) ] )
  | Shadow_divergence { cycle; page; pc; reason } ->
    ( cycle, "shadow_divergence", Trace.I,
      [ ("page", Json.Int page); ("pc", Json.Int pc);
        ("reason", Json.Str reason) ] )
  | Checkpoint_written { cycle; seq; bytes; pages; seconds } ->
    ( cycle, "checkpoint", Trace.I,
      [ ("seq", Json.Int seq); ("bytes", Json.Int bytes);
        ("pages", Json.Int pages); ("ms", Json.Float (seconds *. 1000.)) ] )
  | Region_promoted { cycle; id; pages; insns; vliws; seconds; cached } ->
    ( cycle, "region_promoted", Trace.I,
      [ ("id", Json.Int id); ("pages", Json.Int pages);
        ("insns", Json.Int insns); ("vliws", Json.Int vliws);
        ("ms", Json.Float (seconds *. 1000.)); ("cached", Json.Bool cached) ] )
  | Region_deopt { cycle; id; page; reason } ->
    ( cycle, "region_deopt", Trace.I,
      [ ("id", Json.Int id); ("page", Json.Int page);
        ("reason", Json.Str reason) ] )
  | Tcache_degraded { cycle; page } ->
    (cycle, "tcache_degraded", Trace.I, [ ("page", Json.Int page) ])
  | Storage_fault { cycle; store; op; reason } ->
    ( cycle, "storage_fault", Trace.I,
      [ ("store", Json.Str store); ("op", Json.Str op);
        ("reason", Json.Str reason) ] )

let ev_json ev =
  let ts, name, ph, args = render ev in
  Json.Obj
    (("ts", Json.Int ts)
    :: ("ph", Json.Str (Trace.phase_string ph))
    :: ("name", Json.Str name)
    :: args)

(* --- crash dumps ----------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let opt f = function Some v -> f v | None -> Json.Null

let dump_json t ~reason =
  Json.Obj
    [ ("reason", Json.Str reason);
      ("events", Json.Arr (List.map ev_json (events t)));
      ("events_total", Json.Int t.total);
      ("events_dropped", Json.Int (dropped t));
      ("metrics", opt Metrics.to_json t.metrics);
      ("health", opt (fun f -> f ()) t.health);
      ("profile", opt (fun p -> Profile.to_json p) t.profile) ]

let write_atomic ?(io = Fsio.real) ~dir ~file contents =
  Fsio.commit io ~dir ~file contents

(* A dump a storage fault kept off the disk is parked in memory — the
   post-mortem is exactly what we must not lose to the failure it
   describes — bounded so a fault storm cannot grow the heap. *)
let park t file contents =
  t.io_degraded <- t.io_degraded + 1;
  if List.length t.pending < max_pending
     && not (List.mem_assoc file t.pending)
  then t.pending <- (file, contents) :: t.pending

(** Write a crash dump for [reason] unless one was already written this
    run.  Returns the path written, [None] when suppressed or when the
    write failed (the recorder never raises — an I/O error or storage
    fault parks the dump in memory instead; see {!pending_dumps}). *)
let dump t ~reason =
  if List.mem_assoc reason t.dumps then None
  else
    let file = "crash-" ^ reason ^ ".json" in
    let contents = Json.to_string (dump_json t ~reason) in
    match
      mkdir_p t.dir;
      write_atomic ~io:t.io ~dir:t.dir ~file contents;
      (match t.profile with
      | Some p -> (
        let ffile = "crash-" ^ reason ^ ".folded" in
        let folded = Profile.to_collapsed p in
        (* the .json landed; losing only the .folded is a degradation,
           not a failed dump *)
        try write_atomic ~io:t.io ~dir:t.dir ~file:ffile folded
        with Sys_error _ | Fsio.Fault _ -> park t ffile folded)
      | None -> ());
      Filename.concat t.dir file
    with
    | path ->
      t.dumps <- (reason, path) :: t.dumps;
      Some path
    | exception (Sys_error _ | Fsio.Fault _) ->
      park t file contents;
      None
