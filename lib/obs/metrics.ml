(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, exportable as JSON.

   Overhead discipline: a counter increment is one mutable int store
   and a histogram observation is one linear bucket scan — but more
   importantly, nothing in the VMM or translator touches a registry
   unless a sink is explicitly attached (see Bridge), so the disabled
   cost is zero allocations and one [None] test per instrumented
   site. *)

module Counter = struct
  type t = { name : string; help : string; mutable value : int }

  let inc t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let set t v = t.value <- v
  let value t = t.value
end

module Gauge = struct
  type t = { name : string; help : string; mutable value : float }

  let set t v = t.value <- v
  let value t = t.value
end

module Histogram = struct
  (* [bounds] are inclusive upper bucket bounds in ascending order;
     [counts] carries one extra overflow bucket at the end. *)
  type t = {
    name : string;
    help : string;
    bounds : float array;
    counts : int array;
    mutable sum : float;
    mutable count : int;
  }

  let observe t v =
    let rec find i =
      if i >= Array.length t.bounds then i
      else if v <= t.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.sum <- t.sum +. v;
    t.count <- t.count + 1

  let observe_int t v = observe t (float_of_int v)

  (* Quantile estimation from the bucket counts: walk the cumulative
     distribution to the bucket holding rank [q * count], then
     interpolate linearly inside it (observations are non-negative, so
     the first bucket's lower edge is 0).  The overflow bucket has no
     upper edge; its estimate clamps to the largest finite bound —
     conservative, and a signal the buckets are too small. *)
  let quantile t q =
    if t.count = 0 then None
    else begin
      let nb = Array.length t.bounds in
      let target = q *. float_of_int t.count in
      let rec walk i cum =
        let here = cum + t.counts.(i) in
        if float_of_int here >= target || i >= nb then (i, cum)
        else walk (i + 1) here
      in
      let i, below = walk 0 0 in
      if i >= nb then
        Some (if nb = 0 then t.sum /. float_of_int t.count else t.bounds.(nb - 1))
      else begin
        let lo = if i = 0 then 0.0 else t.bounds.(i - 1) in
        let hi = t.bounds.(i) in
        let inside = t.counts.(i) in
        if inside = 0 then Some hi
        else
          Some
            (lo
            +. (hi -. lo)
               *. ((target -. float_of_int below) /. float_of_int inside))
      end
    end
end

type t = {
  (* reverse creation order; exports re-reverse *)
  mutable counters : Counter.t list;
  mutable gauges : Gauge.t list;
  mutable histograms : Histogram.t list;
  names : (string, unit) Hashtbl.t;
}

let create () =
  { counters = []; gauges = []; histograms = []; names = Hashtbl.create 16 }

let register t name =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" name);
  Hashtbl.add t.names name ()

let counter t ?(help = "") name =
  register t name;
  let c = { Counter.name; help; value = 0 } in
  t.counters <- c :: t.counters;
  c

let gauge t ?(help = "") name =
  register t name;
  let g = { Gauge.name; help; value = 0.0 } in
  t.gauges <- g :: t.gauges;
  g

let histogram t ?(help = "") ~buckets name =
  register t name;
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly ascending")
    bounds;
  let h =
    { Histogram.name; help; bounds;
      counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0 }
  in
  t.histograms <- h :: t.histograms;
  h

let find_counter t name =
  List.find_opt (fun (c : Counter.t) -> c.name = name) t.counters

let find_gauge t name =
  List.find_opt (fun (g : Gauge.t) -> g.name = name) t.gauges

(* Exports are in sorted-name order, not creation order: diffs between
   two exports line up, and consumers can binary-search. *)
let to_json t =
  let by_name name l = List.sort (fun a b -> compare (name a) (name b)) l in
  let counters =
    by_name (fun (c : Counter.t) -> c.name) t.counters
    |> List.map (fun (c : Counter.t) -> (c.name, Json.Int c.value))
  in
  let gauges =
    by_name (fun (g : Gauge.t) -> g.name) t.gauges
    |> List.map (fun (g : Gauge.t) -> (g.name, Json.Float g.value))
  in
  let hist (h : Histogram.t) =
    let buckets =
      List.init (Array.length h.counts) (fun i ->
          let le =
            if i < Array.length h.bounds then Json.Float h.bounds.(i)
            else Json.Str "inf"
          in
          Json.Obj [ ("le", le); ("count", Json.Int h.counts.(i)) ])
    in
    let q p =
      match Histogram.quantile h p with
      | Some v -> Json.Float v
      | None -> Json.Null
    in
    ( h.name,
      Json.Obj
        [ ("buckets", Json.Arr buckets); ("sum", Json.Float h.sum);
          ("count", Json.Int h.count); ("p50", q 0.5); ("p90", q 0.9);
          ("p99", q 0.99) ] )
  in
  Json.Obj
    [ ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms",
       Json.Obj
         (by_name (fun (h : Histogram.t) -> h.name) t.histograms
         |> List.map hist)) ]
