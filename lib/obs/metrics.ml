(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, exportable as JSON.

   Overhead discipline: a counter increment is one mutable int store
   and a histogram observation is one linear bucket scan — but more
   importantly, nothing in the VMM or translator touches a registry
   unless a sink is explicitly attached (see Bridge), so the disabled
   cost is zero allocations and one [None] test per instrumented
   site. *)

module Counter = struct
  type t = { name : string; help : string; mutable value : int }

  let inc t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let set t v = t.value <- v
  let value t = t.value
end

module Gauge = struct
  type t = { name : string; help : string; mutable value : float }

  let set t v = t.value <- v
  let value t = t.value
end

module Histogram = struct
  (* [bounds] are inclusive upper bucket bounds in ascending order;
     [counts] carries one extra overflow bucket at the end. *)
  type t = {
    name : string;
    help : string;
    bounds : float array;
    counts : int array;
    mutable sum : float;
    mutable count : int;
  }

  let observe t v =
    let rec find i =
      if i >= Array.length t.bounds then i
      else if v <= t.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.sum <- t.sum +. v;
    t.count <- t.count + 1

  let observe_int t v = observe t (float_of_int v)
end

type t = {
  (* reverse creation order; exports re-reverse *)
  mutable counters : Counter.t list;
  mutable gauges : Gauge.t list;
  mutable histograms : Histogram.t list;
  names : (string, unit) Hashtbl.t;
}

let create () =
  { counters = []; gauges = []; histograms = []; names = Hashtbl.create 16 }

let register t name =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" name);
  Hashtbl.add t.names name ()

let counter t ?(help = "") name =
  register t name;
  let c = { Counter.name; help; value = 0 } in
  t.counters <- c :: t.counters;
  c

let gauge t ?(help = "") name =
  register t name;
  let g = { Gauge.name; help; value = 0.0 } in
  t.gauges <- g :: t.gauges;
  g

let histogram t ?(help = "") ~buckets name =
  register t name;
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly ascending")
    bounds;
  let h =
    { Histogram.name; help; bounds;
      counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0 }
  in
  t.histograms <- h :: t.histograms;
  h

let find_counter t name =
  List.find_opt (fun (c : Counter.t) -> c.name = name) t.counters

let find_gauge t name =
  List.find_opt (fun (g : Gauge.t) -> g.name = name) t.gauges

let to_json t =
  let counters =
    List.rev_map (fun (c : Counter.t) -> (c.name, Json.Int c.value)) t.counters
  in
  let gauges =
    List.rev_map (fun (g : Gauge.t) -> (g.name, Json.Float g.value)) t.gauges
  in
  let hist (h : Histogram.t) =
    let buckets =
      List.init (Array.length h.counts) (fun i ->
          let le =
            if i < Array.length h.bounds then Json.Float h.bounds.(i)
            else Json.Str "inf"
          in
          Json.Obj [ ("le", le); ("count", Json.Int h.counts.(i)) ])
    in
    ( h.name,
      Json.Obj
        [ ("buckets", Json.Arr buckets); ("sum", Json.Float h.sum);
          ("count", Json.Int h.count) ] )
  in
  Json.Obj
    [ ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj (List.rev_map hist t.histograms)) ]
