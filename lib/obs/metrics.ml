(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, exportable as JSON.

   Overhead discipline: a counter increment is one atomic fetch-and-add
   and a histogram observation is one linear bucket scan under a
   per-histogram mutex — but more importantly, nothing in the VMM or
   translator touches a registry unless a sink is explicitly attached
   (see Bridge), so the disabled cost is zero allocations and one
   [None] test per instrumented site.

   Domain safety: `daisy serve` runs one session per domain and every
   session updates its own labeled registry, but nothing stops two
   domains from sharing one (the server's own registry does exactly
   that), so each primitive is safe on its own: counters and gauges are
   atomics, histograms take their own mutex per observation, and the
   registry structure (registration, lookup, export) is guarded by a
   registry-level mutex.  A [label] names the registry's owner — the
   serve layer labels each registry with its session id so exports from
   concurrent sessions stay attributable. *)

module Counter = struct
  type t = { name : string; help : string; value : int Atomic.t }

  let inc t = Atomic.incr t.value
  let add t n = ignore (Atomic.fetch_and_add t.value n)
  let set t v = Atomic.set t.value v
  let value t = Atomic.get t.value
end

module Gauge = struct
  type t = { name : string; help : string; value : float Atomic.t }

  let set t v = Atomic.set t.value v
  let value t = Atomic.get t.value
end

module Histogram = struct
  (* [bounds] are inclusive upper bucket bounds in ascending order;
     [counts] carries one extra overflow bucket at the end.  [sum],
     [count] and the bucket slots move together, so observations and
     quantile reads serialize on [lock]. *)
  type t = {
    name : string;
    help : string;
    bounds : float array;
    counts : int array;
    mutable sum : float;
    mutable count : int;
    lock : Mutex.t;
  }

  let observe t v =
    let rec find i =
      if i >= Array.length t.bounds then i
      else if v <= t.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    Mutex.lock t.lock;
    t.counts.(i) <- t.counts.(i) + 1;
    t.sum <- t.sum +. v;
    t.count <- t.count + 1;
    Mutex.unlock t.lock

  let observe_int t v = observe t (float_of_int v)

  (* Quantile estimation from the bucket counts: walk the cumulative
     distribution to the bucket holding rank [q * count], then
     interpolate linearly inside it (observations are non-negative, so
     the first bucket's lower edge is 0).  The overflow bucket has no
     upper edge; its estimate clamps to the largest finite bound —
     conservative, and a signal the buckets are too small. *)
  let quantile_locked t q =
    if t.count = 0 then None
    else begin
      let nb = Array.length t.bounds in
      let target = q *. float_of_int t.count in
      let rec walk i cum =
        let here = cum + t.counts.(i) in
        if float_of_int here >= target || i >= nb then (i, cum)
        else walk (i + 1) here
      in
      let i, below = walk 0 0 in
      if i >= nb then
        Some (if nb = 0 then t.sum /. float_of_int t.count else t.bounds.(nb - 1))
      else begin
        let lo = if i = 0 then 0.0 else t.bounds.(i - 1) in
        let hi = t.bounds.(i) in
        let inside = t.counts.(i) in
        if inside = 0 then Some hi
        else
          Some
            (lo
            +. (hi -. lo)
               *. ((target -. float_of_int below) /. float_of_int inside))
      end
    end

  let quantile t q =
    Mutex.lock t.lock;
    let r = quantile_locked t q in
    Mutex.unlock t.lock;
    r
end

type t = {
  label : string option;
      (** who this registry belongs to (e.g. a serve session id);
          carried into the JSON export *)
  (* reverse creation order; exports re-reverse *)
  mutable counters : Counter.t list;
  mutable gauges : Gauge.t list;
  mutable histograms : Histogram.t list;
  names : (string, unit) Hashtbl.t;
  lock : Mutex.t;  (* guards registration, lookup and export *)
}

let create ?label () =
  { label; counters = []; gauges = []; histograms = [];
    names = Hashtbl.create 16; lock = Mutex.create () }

let label t = t.label

let register_locked t name =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" name);
  Hashtbl.add t.names name ()

let counter t ?(help = "") name =
  Mutex.lock t.lock;
  match
    register_locked t name;
    let c = { Counter.name; help; value = Atomic.make 0 } in
    t.counters <- c :: t.counters;
    c
  with
  | c -> Mutex.unlock t.lock; c
  | exception e -> Mutex.unlock t.lock; raise e

let gauge t ?(help = "") name =
  Mutex.lock t.lock;
  match
    register_locked t name;
    let g = { Gauge.name; help; value = Atomic.make 0.0 } in
    t.gauges <- g :: t.gauges;
    g
  with
  | g -> Mutex.unlock t.lock; g
  | exception e -> Mutex.unlock t.lock; raise e

let histogram t ?(help = "") ~buckets name =
  Mutex.lock t.lock;
  match
    register_locked t name;
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Metrics.histogram: buckets must be strictly ascending")
      bounds;
    let h =
      { Histogram.name; help; bounds;
        counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0;
        lock = Mutex.create () }
    in
    t.histograms <- h :: t.histograms;
    h
  with
  | h -> Mutex.unlock t.lock; h
  | exception e -> Mutex.unlock t.lock; raise e

let find_counter t name =
  Mutex.lock t.lock;
  let r = List.find_opt (fun (c : Counter.t) -> c.name = name) t.counters in
  Mutex.unlock t.lock;
  r

let find_gauge t name =
  Mutex.lock t.lock;
  let r = List.find_opt (fun (g : Gauge.t) -> g.name = name) t.gauges in
  Mutex.unlock t.lock;
  r

(* Exports are in sorted-name order, not creation order: diffs between
   two exports line up, and consumers can binary-search. *)
let to_json t =
  Mutex.lock t.lock;
  let lcounters = t.counters and lgauges = t.gauges in
  let lhistograms = t.histograms in
  Mutex.unlock t.lock;
  let by_name name l = List.sort (fun a b -> compare (name a) (name b)) l in
  let counters =
    by_name (fun (c : Counter.t) -> c.name) lcounters
    |> List.map (fun (c : Counter.t) -> (c.name, Json.Int (Counter.value c)))
  in
  let gauges =
    by_name (fun (g : Gauge.t) -> g.name) lgauges
    |> List.map (fun (g : Gauge.t) -> (g.name, Json.Float (Gauge.value g)))
  in
  let hist (h : Histogram.t) =
    (* snapshot the whole histogram under its own lock so buckets, sum
       and quantiles are mutually consistent *)
    Mutex.lock h.lock;
    let counts = Array.copy h.counts in
    let sum = h.sum and count = h.count in
    let q p =
      match Histogram.quantile_locked h p with
      | Some v -> Json.Float v
      | None -> Json.Null
    in
    let p50 = q 0.5 and p90 = q 0.9 and p99 = q 0.99 in
    Mutex.unlock h.lock;
    let buckets =
      List.init (Array.length counts) (fun i ->
          let le =
            if i < Array.length h.bounds then Json.Float h.bounds.(i)
            else Json.Str "inf"
          in
          Json.Obj [ ("le", le); ("count", Json.Int counts.(i)) ])
    in
    ( h.name,
      Json.Obj
        [ ("buckets", Json.Arr buckets); ("sum", Json.Float sum);
          ("count", Json.Int count); ("p50", p50); ("p90", p90);
          ("p99", p99) ] )
  in
  let base =
    [ ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms",
       Json.Obj
         (by_name (fun (h : Histogram.t) -> h.name) lhistograms
         |> List.map hist)) ]
  in
  Json.Obj
    (match t.label with
    | Some l -> ("label", Json.Str l) :: base
    | None -> base)
