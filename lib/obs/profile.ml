(* The region profiler: a weighted cross-page control-flow graph.

   Hotness (lib/obs/hotness.ml) answers "which pages are hot";
   this module additionally answers "how does control move *between*
   them", which is what the tier-2 region scheduler needs to pick a
   promotion unit.  Nodes are page bases carrying execution weight
   (entries, VLIWs, interpreted instructions, translation work); edges
   are {!Vmm.Monitor.Exit_edge} events — one counter per
   (src, dst, kind) triple.

   Page counters are sums, so they merge commutatively ({!merge}): the
   persistent store (Pstore) accumulates them across runs and across
   machines without ordering constraints.  Edge counters hold *per-run
   means*: a single-run profile's raw counts are trivially its per-run
   means, and {!merge} combines two profiles by run-weighted average —
   otherwise heat accumulated over hundreds of `daisy profile merge`s
   would grow without bound and promote regions that are cold in any
   individual run.  The weighted mean is symmetric (commutative) and
   associative up to integer rounding; promotion thresholds therefore
   read as per-run heat regardless of how many runs fed the profile.

   Hot regions: a region worth promoting is a *cycle* of pages — control
   that leaves a page and comes back is what page-at-a-time translation
   cannot schedule across.  {!regions} keeps edges at or above a heat
   threshold and returns the strongly connected components of the
   surviving graph that actually loop (≥ 2 pages, or a self-edge). *)

type edge_kind = Taken | Fall | Lr | Ctr | Gpr | Interp

let edge_kind_string = function
  | Taken -> "taken"
  | Fall -> "fall"
  | Lr -> "lr"
  | Ctr -> "ctr"
  | Gpr -> "gpr"
  | Interp -> "interp"

let edge_kind_code = function
  | Taken -> 0 | Fall -> 1 | Lr -> 2 | Ctr -> 3 | Gpr -> 4 | Interp -> 5

let edge_kind_of_code = function
  | 0 -> Some Taken | 1 -> Some Fall | 2 -> Some Lr | 3 -> Some Ctr
  | 4 -> Some Gpr | 5 -> Some Interp | _ -> None

type page = {
  base : int;
  mutable entries : int;         (** times control entered the page *)
  mutable vliws : int;           (** VLIWs executed while current *)
  mutable interp_insns : int;    (** instructions interpreted on it *)
  mutable translations : int;    (** times (re)translated *)
  mutable insns_scheduled : int; (** translation work, incl. redo *)
  mutable code_bytes : int;      (** translated bytes, last translation *)
}

type t = {
  page_size : int;
  pages : (int, page) Hashtbl.t;
  edges : (int * int * edge_kind, int ref) Hashtbl.t;
  mutable runs : int;        (** runs merged into this profile *)
  (* attribution state: VLIWs executed since the last page switch are
     credited to the page we were on (same scheme as Hotness) *)
  mutable current : int;     (* -1 = none *)
  mutable vliws_at_switch : int;
}

let create ~page_size () =
  if page_size <= 0 then invalid_arg "Profile.create: page_size";
  { page_size; pages = Hashtbl.create 64; edges = Hashtbl.create 256;
    runs = 1; current = -1; vliws_at_switch = 0 }

let page t base =
  match Hashtbl.find_opt t.pages base with
  | Some p -> p
  | None ->
    let p =
      { base; entries = 0; vliws = 0; interp_insns = 0; translations = 0;
        insns_scheduled = 0; code_bytes = 0 }
    in
    Hashtbl.add t.pages base p;
    p

let page_base t addr = addr land lnot (t.page_size - 1)

(* --- feeding (Bridge calls these from Monitor events) --------------- *)

let enter t ~page:base ~vliws_so_far =
  if t.current >= 0 then begin
    let prev = page t t.current in
    prev.vliws <- prev.vliws + (vliws_so_far - t.vliws_at_switch)
  end;
  let p = page t base in
  p.entries <- p.entries + 1;
  t.current <- base;
  t.vliws_at_switch <- vliws_so_far

(** Credit the VLIWs executed since the last page switch; call once at
    the end of the run with the final total. *)
let flush t ~vliws_total =
  if t.current >= 0 then begin
    let p = page t t.current in
    p.vliws <- p.vliws + (vliws_total - t.vliws_at_switch);
    t.vliws_at_switch <- vliws_total
  end

let interp t ~pc ~insns =
  let p = page t (page_base t pc) in
  p.interp_insns <- p.interp_insns + insns

let translated t ~page:base ~insns ~bytes =
  let p = page t base in
  p.translations <- p.translations + 1;
  p.insns_scheduled <- p.insns_scheduled + insns;
  p.code_bytes <- bytes

let edge t ~src ~dst ~kind =
  (* materialize both endpoints so a page reached only through edges
     still appears in the node table *)
  ignore (page t src);
  ignore (page t dst);
  match Hashtbl.find_opt t.edges (src, dst, kind) with
  | Some c -> incr c
  | None -> Hashtbl.add t.edges (src, dst, kind) (ref 1)

let edge_n t ~src ~dst ~kind n =
  if n > 0 then begin
    ignore (page t src);
    ignore (page t dst);
    match Hashtbl.find_opt t.edges (src, dst, kind) with
    | Some c -> c := !c + n
    | None -> Hashtbl.add t.edges (src, dst, kind) (ref n)
  end

(* --- aggregate views ------------------------------------------------ *)

let pages_ranked t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pages []
  |> List.sort (fun (a : page) b ->
         compare (b.vliws + b.interp_insns, b.base)
           (a.vliws + a.interp_insns, a.base))

(** Edges as a flat list [(src, dst, kind, count)], heaviest first. *)
let edges_ranked t =
  Hashtbl.fold (fun (s, d, k) c acc -> (s, d, k, !c) :: acc) t.edges []
  |> List.sort (fun (s1, d1, _, c1) (s2, d2, _, c2) ->
         compare (c2, s1, d1) (c1, s2, d2))

let total_entries t =
  Hashtbl.fold (fun _ (p : page) acc -> acc + p.entries) t.pages 0

let total_edges t = Hashtbl.fold (fun _ c acc -> acc + !c) t.edges 0

(** Merge [src] into [into].  Page counters add; edge counters combine
    by run-weighted mean (round-to-nearest), keeping the "edge counts
    are per-run means" invariant so accumulated profiles never
    over-promote: an edge traversed 1000 times per run reads 1000
    whether one run or one hundred fed the profile.  Commutative;
    associative up to integer rounding.  Page sizes must agree; the
    store keys on page size for exactly this reason. *)
let merge ~into src =
  if into.page_size <> src.page_size then
    invalid_arg "Profile.merge: page sizes differ";
  Hashtbl.iter
    (fun base (p : page) ->
      let q = page into base in
      q.entries <- q.entries + p.entries;
      q.vliws <- q.vliws + p.vliws;
      q.interp_insns <- q.interp_insns + p.interp_insns;
      q.translations <- q.translations + p.translations;
      q.insns_scheduled <- q.insns_scheduled + p.insns_scheduled;
      q.code_bytes <- max q.code_bytes p.code_bytes)
    src.pages;
  let ri = into.runs and rs = src.runs in
  let total = ri + rs in
  let keys = Hashtbl.create (Hashtbl.length into.edges + Hashtbl.length src.edges) in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) into.edges;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) src.edges;
  let count tbl k = match Hashtbl.find_opt tbl k with Some c -> !c | None -> 0 in
  Hashtbl.iter
    (fun key () ->
      let ci = count into.edges key and cs = count src.edges key in
      let mean = ((ci * ri) + (cs * rs) + (total / 2)) / total in
      Hashtbl.remove into.edges key;
      if mean > 0 then Hashtbl.replace into.edges key (ref mean))
    keys;
  into.runs <- total

(* --- hot regions ---------------------------------------------------- *)

type region = {
  id : int;                    (** rank by heat: R0 is hottest *)
  rpages : int list;           (** member page bases, ascending *)
  internal_weight : int;       (** traversals of intra-region edges *)
  region_vliws : int;          (** VLIWs + interp insns of member pages *)
  region_entries : int;
  redges : (int * int * edge_kind * int) list;  (** internal, heaviest first *)
}

(* Tarjan's SCC over the thresholded edge graph.  Page graphs are tiny
   (a workload touches tens of pages), so the recursive formulation is
   fine. *)
let scc nodes succ =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and next = ref 0 and comps = ref [] in
  let rec strong v =
    Hashtbl.replace index v !next;
    Hashtbl.replace low v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  !comps

(** Cyclic components of the edge graph restricted to edges traversed
    at least [threshold] times, hottest first. *)
let regions ?(threshold = 1) t =
  let hot =
    List.filter (fun (_, _, _, c) -> c >= threshold) (edges_ranked t)
  in
  let nodes =
    List.concat_map (fun (s, d, _, _) -> [ s; d ]) hot
    |> List.sort_uniq compare
  in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (s, d, _, _) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj s) in
      if not (List.mem d cur) then Hashtbl.replace adj s (d :: cur))
    hot;
  let succ v = Option.value ~default:[] (Hashtbl.find_opt adj v) in
  let comps = scc nodes succ in
  let self_loop v = List.exists (fun (s, d, _, _) -> s = v && d = v) hot in
  let cyclic =
    List.filter
      (function [ v ] -> self_loop v | c -> List.length c >= 2)
      comps
  in
  let mk members =
    let members = List.sort compare members in
    let inside v = List.mem v members in
    let redges =
      List.filter (fun (s, d, _, _) -> inside s && inside d) hot
    in
    let internal_weight =
      List.fold_left (fun acc (_, _, _, c) -> acc + c) 0 redges
    in
    let region_vliws, region_entries =
      List.fold_left
        (fun (v, e) base ->
          match Hashtbl.find_opt t.pages base with
          | Some p -> (v + p.vliws + p.interp_insns, e + p.entries)
          | None -> (v, e))
        (0, 0) members
    in
    { id = 0; rpages = members; internal_weight; region_vliws;
      region_entries; redges }
  in
  List.map mk cyclic
  |> List.sort (fun a b ->
         compare (b.internal_weight, b.region_vliws)
           (a.internal_weight, a.region_vliws))
  |> List.mapi (fun i r -> { r with id = i })

(* --- exports -------------------------------------------------------- *)

let page_json (p : page) =
  Json.Obj
    [ ("base", Json.Int p.base); ("entries", Json.Int p.entries);
      ("vliws", Json.Int p.vliws);
      ("interp_insns", Json.Int p.interp_insns);
      ("translations", Json.Int p.translations);
      ("insns_scheduled", Json.Int p.insns_scheduled);
      ("code_bytes", Json.Int p.code_bytes) ]

let edge_json (s, d, k, c) =
  Json.Obj
    [ ("src", Json.Int s); ("dst", Json.Int d);
      ("kind", Json.Str (edge_kind_string k)); ("count", Json.Int c) ]

let region_json (r : region) =
  Json.Obj
    [ ("id", Json.Int r.id);
      ("pages", Json.Arr (List.map (fun b -> Json.Int b) r.rpages));
      ("internal_weight", Json.Int r.internal_weight);
      ("vliws", Json.Int r.region_vliws);
      ("entries", Json.Int r.region_entries);
      ("edges", Json.Arr (List.map edge_json r.redges)) ]

let to_json ?(threshold = 1) t =
  Json.Obj
    [ ("page_size", Json.Int t.page_size);
      ("runs", Json.Int t.runs);
      ("entries_total", Json.Int (total_entries t));
      ("edges_total", Json.Int (total_edges t));
      ("pages", Json.Arr (List.map page_json (pages_ranked t)));
      ("edges", Json.Arr (List.map edge_json (edges_ranked t)));
      ("regions",
       Json.Arr (List.map region_json (regions ~threshold t))) ]

(** Collapsed-stack ("folded") export for speedscope / inferno
    flamegraph tools: one line per page, [region_N;page_0xBASE WEIGHT]
    with pages outside every hot region filed under [cold].  Weight is
    execution cycles attributed to the page (VLIWs + interpreted
    instructions). *)
let to_collapsed ?(threshold = 1) t =
  let rs = regions ~threshold t in
  let owner = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          if not (Hashtbl.mem owner b) then Hashtbl.replace owner b r.id)
        r.rpages)
    rs;
  let b = Buffer.create 1024 in
  List.iter
    (fun (p : page) ->
      let w = p.vliws + p.interp_insns in
      if w > 0 then begin
        let stack =
          match Hashtbl.find_opt owner p.base with
          | Some id -> Printf.sprintf "region_%d;page_0x%04X" id p.base
          | None -> Printf.sprintf "cold;page_0x%04X" p.base
        in
        Buffer.add_string b (Printf.sprintf "%s %d\n" stack w)
      end)
    (List.sort (fun (a : page) b -> compare a.base b.base)
       (Hashtbl.fold (fun _ p acc -> p :: acc) t.pages []));
  Buffer.contents b
