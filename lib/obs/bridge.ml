(* The bridge between the VMM's instrumentation interface and the
   observability sinks.  The VMM publishes {!Vmm.Monitor.event}s through
   its [event_hook]; this module subscribes and fans each event out to
   whichever sinks were requested — the trace ring, the metrics
   histograms, the per-page hotness profile.  The dependency points
   obs -> vmm only: the VMM never links against this library. *)

module Monitor = Vmm.Monitor

type t = {
  tracer : Trace.t option;
  metrics : Metrics.t option;
  hotness : Hotness.t option;
  h_episode : Metrics.Histogram.t option;
      (** instructions per interpretation episode *)
  h_tr_insns : Metrics.Histogram.t option;
      (** base instructions per translation unit *)
  h_tr_vliws : Metrics.Histogram.t option;
      (** VLIWs created per translation unit *)
  h_tc_load : Metrics.Histogram.t option;
      (** milliseconds to load + decode one persistent-cache entry *)
  h_compile : Metrics.Histogram.t option;
      (** milliseconds to stage one page into closures *)
  h_checkpoint : Metrics.Histogram.t option;
      (** milliseconds to write one supervision checkpoint *)
}

let create ?tracer ?metrics ?hotness () =
  let h name buckets =
    Option.map
      (fun m -> Metrics.histogram m ~buckets name)
      metrics
  in
  { tracer; metrics; hotness;
    h_episode =
      h "interp_episode_insns" [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ];
    h_tr_insns =
      h "translate_unit_insns"
        [ 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096. ];
    h_tr_vliws =
      h "translate_unit_vliws"
        [ 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. ];
    h_tc_load =
      h "tcache_load_ms" [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10. ];
    h_compile =
      h "vliw_compile_ms" [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10. ];
    h_checkpoint =
      h "checkpoint_ms" [ 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 25. ] }

let deadline_stage_string : Monitor.deadline_stage -> string = function
  | Dtranslate -> "translate"
  | Dcompile -> "compile"
  | Dprogress -> "progress"

let cross_kind_string : Monitor.cross_kind -> string = function
  | Xdirect -> "direct"
  | Xlr -> "lr"
  | Xctr -> "ctr"
  | Xgpr -> "gpr"
  | Xinvalid_entry -> "invalid_entry"

let rollback_kind_string : Monitor.rollback_kind -> string = function
  | RbAlias -> "alias"
  | RbSelfmod -> "selfmod"
  | RbFault -> "fault"
  | RbTag -> "tag"
  | RbTagged_target -> "tagged_target"

let trace b ~ts ~name ~ph args =
  match b.tracer with Some t -> Trace.emit t ~ts ~name ~ph args | None -> ()

let observe h v =
  match h with Some h -> Metrics.Histogram.observe_int h v | None -> ()

let on_event b (ev : Monitor.event) =
  match ev with
  | Translate_begin { cycle; page; entry } ->
    trace b ~ts:cycle ~name:"translate" ~ph:Trace.B
      [ ("page", Json.Int page); ("entry", Json.Int entry) ]
  | Translate_end { cycle; page; entry; insns; vliws; bytes; groups } ->
    observe b.h_tr_insns insns;
    observe b.h_tr_vliws vliws;
    (match b.hotness with
    | Some h -> Hotness.translated h ~page ~insns ~bytes
    | None -> ());
    trace b ~ts:cycle ~name:"translate" ~ph:Trace.E
      [ ("page", Json.Int page); ("entry", Json.Int entry);
        ("insns", Json.Int insns); ("vliws", Json.Int vliws);
        ("bytes", Json.Int bytes); ("groups", Json.Int groups) ]
  | Interp_begin { cycle; pc } ->
    trace b ~ts:cycle ~name:"interp" ~ph:Trace.B [ ("pc", Json.Int pc) ]
  | Interp_end { cycle; pc; insns; next } ->
    observe b.h_episode insns;
    trace b ~ts:cycle ~name:"interp" ~ph:Trace.E
      [ ("pc", Json.Int pc); ("insns", Json.Int insns);
        ("next", Json.Int next) ]
  | Rolled_back { cycle; pc; kind } ->
    trace b ~ts:cycle ~name:"rollback" ~ph:Trace.I
      [ ("pc", Json.Int pc);
        ("kind", Json.Str (rollback_kind_string kind)) ]
  | Cross_page { cycle; kind; target } ->
    trace b ~ts:cycle ~name:"cross_page" ~ph:Trace.I
      [ ("kind", Json.Str (cross_kind_string kind));
        ("target", Json.Int target) ]
  | Page_enter { cycle = _; page; vliws_so_far } ->
    (* hotness only: page entries are far too frequent for the ring *)
    (match b.hotness with
    | Some h -> Hotness.enter h ~page ~vliws_so_far
    | None -> ())
  | Retranslate_adaptive { cycle; page } ->
    trace b ~ts:cycle ~name:"adaptive_retranslation" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Castout { cycle; page } ->
    (match b.hotness with Some h -> Hotness.castout h ~page | None -> ());
    trace b ~ts:cycle ~name:"castout" ~ph:Trace.I [ ("page", Json.Int page) ]
  | Code_invalidated { cycle; page } ->
    (match b.hotness with Some h -> Hotness.invalidated h ~page | None -> ());
    trace b ~ts:cycle ~name:"code_invalidation" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Syscall_trap { cycle; next } ->
    trace b ~ts:cycle ~name:"syscall" ~ph:Trace.I [ ("next", Json.Int next) ]
  | External_interrupt { cycle } ->
    trace b ~ts:cycle ~name:"external_interrupt" ~ph:Trace.I []
  | Tcache_hit { cycle; page; vliws; bytes; seconds } ->
    (match b.h_tc_load with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ());
    trace b ~ts:cycle ~name:"tcache_hit" ~ph:Trace.I
      [ ("page", Json.Int page); ("vliws", Json.Int vliws);
        ("bytes", Json.Int bytes);
        ("ms", Json.Float (seconds *. 1000.)) ]
  | Tcache_miss { cycle; page } ->
    trace b ~ts:cycle ~name:"tcache_miss" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Tcache_corrupt { cycle; page; reason } ->
    trace b ~ts:cycle ~name:"tcache_corrupt" ~ph:Trace.I
      [ ("page", Json.Int page); ("reason", Json.Str reason) ]
  | Tcache_persist { cycle; page; bytes } ->
    trace b ~ts:cycle ~name:"tcache_persist" ~ph:Trace.I
      [ ("page", Json.Int page); ("bytes", Json.Int bytes) ]
  | Tcache_evict { cycle; page } ->
    trace b ~ts:cycle ~name:"tcache_evict" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Tcache_skipped { cycle; page; reason } ->
    trace b ~ts:cycle ~name:"tcache_skipped" ~ph:Trace.I
      [ ("page", Json.Int page); ("reason", Json.Str reason) ]
  | Translator_fault { cycle; page; entry; reason } ->
    trace b ~ts:cycle ~name:"translator_fault" ~ph:Trace.I
      [ ("page", Json.Int page); ("entry", Json.Int entry);
        ("reason", Json.Str reason) ]
  | Exec_fault { cycle; page; pc; reason } ->
    trace b ~ts:cycle ~name:"exec_fault" ~ph:Trace.I
      [ ("page", Json.Int page); ("pc", Json.Int pc);
        ("reason", Json.Str reason) ]
  | Quarantine { cycle; page; failures; until } ->
    trace b ~ts:cycle ~name:"quarantine" ~ph:Trace.I
      [ ("page", Json.Int page); ("failures", Json.Int failures);
        ("until", Json.Int until) ]
  | Degrade_retry { cycle; page } ->
    trace b ~ts:cycle ~name:"degrade_retry" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Interp_pinned { cycle; page } ->
    trace b ~ts:cycle ~name:"interp_pinned" ~ph:Trace.I
      [ ("page", Json.Int page) ]
  | Vliw_compiled { cycle; page; vliws; seconds } ->
    (match b.h_compile with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ());
    trace b ~ts:cycle ~name:"vliw_compiled" ~ph:Trace.I
      [ ("page", Json.Int page); ("vliws", Json.Int vliws);
        ("ms", Json.Float (seconds *. 1000.)) ]
  | Deadline { cycle; page; stage; seconds } ->
    trace b ~ts:cycle ~name:"deadline" ~ph:Trace.I
      [ ("page", Json.Int page);
        ("stage", Json.Str (deadline_stage_string stage));
        ("ms", Json.Float (seconds *. 1000.)) ]
  | Shadow_divergence { cycle; page; pc; reason } ->
    trace b ~ts:cycle ~name:"shadow_divergence" ~ph:Trace.I
      [ ("page", Json.Int page); ("pc", Json.Int pc);
        ("reason", Json.Str reason) ]
  | Checkpoint_written { cycle; seq; bytes; pages; seconds } ->
    (match b.h_checkpoint with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ());
    trace b ~ts:cycle ~name:"checkpoint" ~ph:Trace.I
      [ ("seq", Json.Int seq); ("bytes", Json.Int bytes);
        ("pages", Json.Int pages);
        ("ms", Json.Float (seconds *. 1000.)) ]

(** Subscribe this bridge to a VMM's event stream. *)
let attach b (vmm : Monitor.t) = vmm.event_hook <- Some (on_event b)

(** Copy a finished run's measurements into [m] as counters and gauges,
    named after the {!Vmm.Run.result} / {!Vmm.Monitor.stats} fields so
    exports agree exactly with the numbers the CLI prints. *)
let record_result m (r : Vmm.Run.result) =
  let c name v = Metrics.Counter.set (Metrics.counter m name) v in
  let g name v = Metrics.Gauge.set (Metrics.gauge m name) v in
  let s = r.stats in
  c "base_insns" r.base_insns;
  c "static_insns" r.static_insns;
  c "vliws" s.vliws;
  c "interp_insns" s.interp_insns;
  c "interp_episodes" s.interp_episodes;
  c "rollbacks" s.rollbacks;
  c "aliases" s.aliases;
  c "cross_direct" s.cross_direct;
  c "cross_lr" s.cross_lr;
  c "cross_ctr" s.cross_ctr;
  c "cross_gpr" s.cross_gpr;
  c "onpage_jumps" s.onpage_jumps;
  c "loads" s.loads;
  c "stores" s.stores;
  c "syscalls" s.syscalls;
  c "external_interrupts" s.external_interrupts;
  c "adaptive_retranslations" s.adaptive_retranslations;
  c "code_invalidations" s.code_invalidations;
  c "stall_cycles" s.stall_cycles;
  c "itlb_misses" s.itlb_misses;
  c "vliws_with_load_miss" s.vliws_with_load_miss;
  c "tcache_hits" s.tcache_hits;
  c "tcache_misses" s.tcache_misses;
  c "tcache_corrupt" s.tcache_corrupt;
  c "tcache_persists" s.tcache_persists;
  c "tcache_evicts" s.tcache_evicts;
  c "tcache_skipped" s.tcache_skipped;
  c "translator_faults" s.translator_faults;
  c "exec_faults" s.exec_faults;
  c "quarantines" s.quarantines;
  c "degrade_retries" s.degrade_retries;
  c "interp_pinned" s.interp_pinned;
  c "compiled_pages" s.compiled_pages;
  c "direct_link_hits" s.direct_link_hits;
  c "spec_log_hwm" s.spec_log_hwm;
  c "deadline_hits" s.deadline_hits;
  c "shadow_checked" s.shadow_checked;
  c "shadow_divergences" s.shadow_divergences;
  c "checkpoints_written" s.checkpoints_written;
  c "cycles_infinite" r.cycles_infinite;
  c "cycles_finite" r.cycles_finite;
  c "pages_translated" r.pages_translated;
  c "insns_translated" r.insns_translated;
  c "code_bytes" r.code_bytes;
  c "entry_points" r.totals.entry_points;
  c "vliws_made" r.totals.vliws_made;
  c "translation_groups" r.totals.groups;
  c "translation_invalidations" r.totals.invalidations;
  c "load_misses" r.load_misses;
  c "store_misses" r.store_misses;
  c "imiss" r.imiss;
  g "ilp_inf" r.ilp_inf;
  g "ilp_fin" r.ilp_fin;
  g "miss_l0d" r.miss_l0d;
  g "miss_l0i" r.miss_l0i;
  g "miss_joint" r.miss_joint
