(* The bridge between the VMM's instrumentation interface and the
   observability sinks.  The VMM publishes {!Vmm.Monitor.event}s through
   its [event_hook]; this module subscribes and fans each event out to
   whichever sinks were requested — the trace ring, the metrics
   histograms, the per-page hotness profile.  The dependency points
   obs -> vmm only: the VMM never links against this library. *)

module Monitor = Vmm.Monitor

type t = {
  tracer : Trace.t option;
  metrics : Metrics.t option;
  hotness : Hotness.t option;
  profile : Profile.t option;
  flight : Flight.t option;
  h_episode : Metrics.Histogram.t option;
      (** instructions per interpretation episode *)
  h_tr_insns : Metrics.Histogram.t option;
      (** base instructions per translation unit *)
  h_tr_vliws : Metrics.Histogram.t option;
      (** VLIWs created per translation unit *)
  h_tc_load : Metrics.Histogram.t option;
      (** milliseconds to load + decode one persistent-cache entry *)
  h_compile : Metrics.Histogram.t option;
      (** milliseconds to stage one page into closures *)
  h_checkpoint : Metrics.Histogram.t option;
      (** milliseconds to write one supervision checkpoint *)
}

let create ?tracer ?metrics ?hotness ?profile ?flight () =
  let h name buckets =
    Option.map
      (fun m -> Metrics.histogram m ~buckets name)
      metrics
  in
  (match (flight, metrics, profile) with
  | Some f, m, p ->
    Option.iter (Flight.set_metrics f) m;
    Option.iter (Flight.set_profile f) p
  | None, _, _ -> ());
  { tracer; metrics; hotness; profile; flight;
    h_episode =
      h "interp_episode_insns" [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ];
    h_tr_insns =
      h "translate_unit_insns"
        [ 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096. ];
    h_tr_vliws =
      h "translate_unit_vliws"
        [ 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. ];
    h_tc_load =
      h "tcache_load_ms" [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10. ];
    h_compile =
      h "vliw_compile_ms" [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10. ];
    h_checkpoint =
      h "checkpoint_ms" [ 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 25. ] }

let profile_edge_kind : Monitor.edge_kind -> Profile.edge_kind = function
  | Etaken -> Profile.Taken
  | Efall -> Profile.Fall
  | Elr -> Profile.Lr
  | Ectr -> Profile.Ctr
  | Egpr -> Profile.Gpr
  | Einterp -> Profile.Interp

(* A trigger event just went into the ring; snapshot everything.  The
   dump is first-wins per reason and best-effort, so this stays cheap
   under failure storms. *)
let crash b reason =
  match b.flight with Some f -> ignore (Flight.dump f ~reason) | None -> ()

let observe h v =
  match h with Some h -> Metrics.Histogram.observe_int h v | None -> ()

(* The hot path.  The flight recorder takes the raw event (two stores,
   no allocation — the event value already exists); the sink updates
   below are counter bumps; JSON rendering happens only for the opt-in
   full-size tracer, via {!Flight.render}, so an always-on recorder
   stays cheap while a dump's tail remains exactly the trace a tracer
   would have kept. *)
let on_event b (ev : Monitor.event) =
  (match b.flight with Some f -> Flight.push f ev | None -> ());
  (match ev with
  | Translate_end { page; insns; vliws; bytes; _ } ->
    observe b.h_tr_insns insns;
    observe b.h_tr_vliws vliws;
    (match b.hotness with
    | Some h -> Hotness.translated h ~page ~insns ~bytes
    | None -> ());
    (match b.profile with
    | Some p -> Profile.translated p ~page ~insns ~bytes
    | None -> ())
  | Interp_end { pc; insns; _ } ->
    observe b.h_episode insns;
    (match b.profile with
    | Some p -> Profile.interp p ~pc ~insns
    | None -> ())
  | Exit_edge { src; dst; kind; _ } ->
    (match b.profile with
    | Some p -> Profile.edge p ~src ~dst ~kind:(profile_edge_kind kind)
    | None -> ())
  | Page_enter { page; vliws_so_far; _ } ->
    (match b.hotness with
    | Some h -> Hotness.enter h ~page ~vliws_so_far
    | None -> ());
    (match b.profile with
    | Some p -> Profile.enter p ~page ~vliws_so_far
    | None -> ())
  | Castout { page; _ } ->
    (match b.hotness with Some h -> Hotness.castout h ~page | None -> ())
  | Code_invalidated { page; _ } ->
    (match b.hotness with Some h -> Hotness.invalidated h ~page | None -> ())
  | Tcache_hit { seconds; _ } ->
    (match b.h_tc_load with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ())
  | Vliw_compiled { seconds; _ } ->
    (match b.h_compile with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ())
  | Checkpoint_written { seconds; _ } ->
    (match b.h_checkpoint with
    | Some h -> Metrics.Histogram.observe h (seconds *. 1000.)
    | None -> ())
  | Region_promoted { seconds; _ } ->
    (* tier-2 region compiles land in the same histogram as tier-1 page
       staging — one latency view of "time spent making code" *)
    (match b.h_compile with
    | Some h when seconds > 0. ->
      Metrics.Histogram.observe h (seconds *. 1000.)
    | _ -> ())
  | Quarantine _ -> crash b "quarantine"
  | Deadline _ -> crash b "deadline"
  | Shadow_divergence _ -> crash b "divergence"
  | Tcache_quarantine _ -> crash b "tcache-quarantine"
  | _ -> ());
  match b.tracer with
  | None -> ()
  | Some t -> (
    match ev with
    | Page_enter _ ->
      (* page entries are far too frequent for the main ring — but the
         flight recorder's whole job is the recent tail, so it kept
         this one above *)
      ()
    | _ ->
      let ts, name, ph, args = Flight.render ev in
      Trace.emit t ~ts ~name ~ph args)

(* A dump-time view of the VMM's degradation-ladder state: which pages
   have strikes, how long their backoff runs, which are pinned. *)
let health_json (vmm : Monitor.t) () =
  let rows =
    Hashtbl.fold
      (fun page (h : Monitor.health) acc -> (page, h) :: acc)
      vmm.page_health []
    |> List.sort compare
  in
  Json.Arr
    (List.map
       (fun (page, (h : Monitor.health)) ->
         Json.Obj
           [ ("page", Json.Int page); ("failures", Json.Int h.failures);
             ("backoff_until", Json.Int h.backoff_until);
             ("pinned_interp", Json.Bool h.pinned_interp) ])
       rows)

(** Subscribe this bridge to a VMM's event stream.  When a flight
    recorder is attached this is also the moment its health view gains
    a VMM to read. *)
let attach b (vmm : Monitor.t) =
  (match b.flight with
  | Some f -> Flight.set_health f (health_json vmm)
  | None -> ());
  vmm.event_hook <- Some (on_event b)

(** Copy a finished run's measurements into [m] as counters and gauges,
    named after the {!Vmm.Run.result} / {!Vmm.Monitor.stats} fields so
    exports agree exactly with the numbers the CLI prints. *)
let record_result m (r : Vmm.Run.result) =
  let c name v = Metrics.Counter.set (Metrics.counter m name) v in
  let g name v = Metrics.Gauge.set (Metrics.gauge m name) v in
  let s = r.stats in
  c "base_insns" r.base_insns;
  c "static_insns" r.static_insns;
  c "vliws" s.vliws;
  c "interp_insns" s.interp_insns;
  c "interp_episodes" s.interp_episodes;
  c "rollbacks" s.rollbacks;
  c "aliases" s.aliases;
  c "cross_direct" s.cross_direct;
  c "cross_lr" s.cross_lr;
  c "cross_ctr" s.cross_ctr;
  c "cross_gpr" s.cross_gpr;
  c "onpage_jumps" s.onpage_jumps;
  c "loads" s.loads;
  c "stores" s.stores;
  c "syscalls" s.syscalls;
  c "external_interrupts" s.external_interrupts;
  c "adaptive_retranslations" s.adaptive_retranslations;
  c "code_invalidations" s.code_invalidations;
  c "stall_cycles" s.stall_cycles;
  c "itlb_misses" s.itlb_misses;
  c "vliws_with_load_miss" s.vliws_with_load_miss;
  c "tcache_hits" s.tcache_hits;
  c "tcache_misses" s.tcache_misses;
  c "tcache_corrupt" s.tcache_corrupt;
  c "tcache_quarantined" s.tcache_quarantined;
  c "tcache_persists" s.tcache_persists;
  c "tcache_evicts" s.tcache_evicts;
  c "tcache_skipped" s.tcache_skipped;
  c "tcache_degraded" s.tcache_degraded;
  c "storage_faults" s.storage_faults;
  c "translator_faults" s.translator_faults;
  c "exec_faults" s.exec_faults;
  c "quarantines" s.quarantines;
  c "degrade_retries" s.degrade_retries;
  c "interp_pinned" s.interp_pinned;
  c "compiled_pages" s.compiled_pages;
  c "direct_link_hits" s.direct_link_hits;
  c "spec_log_hwm" s.spec_log_hwm;
  c "deadline_hits" s.deadline_hits;
  c "shadow_checked" s.shadow_checked;
  c "shadow_divergences" s.shadow_divergences;
  c "checkpoints_written" s.checkpoints_written;
  c "tier2_promotions" s.tier2_promotions;
  c "tier2_deopts" s.tier2_deopts;
  c "tier2_entries" s.tier2_entries;
  c "tier2_vliws" s.tier2_vliws;
  c "tier2_offregion_exits" s.tier2_offregion_exits;
  g "tier2_compile_seconds" s.tier2_compile_seconds;
  c "cycles_infinite" r.cycles_infinite;
  c "cycles_finite" r.cycles_finite;
  c "pages_translated" r.pages_translated;
  c "insns_translated" r.insns_translated;
  c "code_bytes" r.code_bytes;
  c "entry_points" r.totals.entry_points;
  c "vliws_made" r.totals.vliws_made;
  c "translation_groups" r.totals.groups;
  c "translation_invalidations" r.totals.invalidations;
  c "load_misses" r.load_misses;
  c "store_misses" r.store_misses;
  c "imiss" r.imiss;
  g "ilp_inf" r.ilp_inf;
  g "ilp_fin" r.ilp_fin;
  g "miss_l0d" r.miss_l0d;
  g "miss_l0i" r.miss_l0i;
  g "miss_joint" r.miss_joint
