(* The persistent profile store: region profiles that survive the run.

   DAISY's amortisation argument (§5.1) — translation pays for itself
   over re-execution — extends across process lifetimes only if the
   heat measurements do too, and fleet-style migration tooling (see
   PAPERS.md) merges profiles from many machines.  So profiles are kept
   on disk in the translation cache's codec style and merge
   commutatively: [accumulate] folds a fresh run into whatever is
   already there, and [merge_dirs] combines whole directories.

   One file per (frontend × fingerprint), named by the hex digest of
   both.  The fingerprint is the workload image digest plus the page
   size: edges are page-granular, so profiles taken at different page
   sizes describe different graphs and must not merge (page size is the
   one translation parameter that changes the *shape* of the profile
   rather than its weights).

   File layout (integers via the tcache codec's varints):

     magic "DPRF" | version u8
     | frontend str | fingerprint str
     | payload_len vint | payload MD5 (16 raw bytes) | payload

   payload:
     page_size vint | runs vint
     | npages vint | (base entries vliws interp_insns
                      translations insns_scheduled code_bytes)*
     | nedges vint | (src dst kind_u8 count)*

   Crash safety mirrors Tcache.Store: writes go through {!Fsio.commit}
   (temp write, file fsync, rename, directory fsync), and orphaned
   [*.tmp] files from a killed writer are swept when the store is
   opened.  Storage faults ({!Fsio.Fault}) degrade rather than raise:
   a failed save parks the profile in memory — the run's heat data
   stays mergeable for this process, only durability is lost — and a
   faulted load serves that in-memory copy when one exists.  The
   [degraded] counter records every absorbed fault. *)

module Codec = Tcache.Codec

let magic = "DPRF"
let version = 1
let suffix = ".dpf"

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let encode ~frontend ~fingerprint (p : Profile.t) =
  let pl = Buffer.create 1024 in
  Codec.put_vint pl p.page_size;
  Codec.put_vint pl p.runs;
  let pages =
    Hashtbl.fold (fun _ (q : Profile.page) acc -> q :: acc) p.pages []
    |> List.sort (fun (a : Profile.page) b -> compare a.base b.base)
  in
  Codec.put_vint pl (List.length pages);
  List.iter
    (fun (q : Profile.page) ->
      Codec.put_vint pl q.base;
      Codec.put_vint pl q.entries;
      Codec.put_vint pl q.vliws;
      Codec.put_vint pl q.interp_insns;
      Codec.put_vint pl q.translations;
      Codec.put_vint pl q.insns_scheduled;
      Codec.put_vint pl q.code_bytes)
    pages;
  let edges =
    Hashtbl.fold (fun k c acc -> (k, !c) :: acc) p.edges []
    |> List.sort compare
  in
  Codec.put_vint pl (List.length edges);
  List.iter
    (fun ((src, dst, kind), count) ->
      Codec.put_vint pl src;
      Codec.put_vint pl dst;
      Codec.put_u8 pl (Profile.edge_kind_code kind);
      Codec.put_vint pl count)
    edges;
  let payload = Buffer.contents pl in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Codec.put_u8 b version;
  Codec.put_str b frontend;
  Codec.put_str b fingerprint;
  Codec.put_vint b (String.length payload);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(** Decode a whole profile file; returns [(frontend, fingerprint,
    profile)] or raises {!Tcache.Codec.Corrupt} on anything malformed —
    wrong magic, future version, checksum mismatch, implausible
    counts. *)
let decode s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 then Codec.corrupt "truncated header";
  if String.sub s 0 mlen <> magic then Codec.corrupt "bad magic";
  let v = Char.code s.[mlen] in
  if v <> version then Codec.corrupt "version %d (want %d)" v version;
  let r = Codec.reader s in
  r.pos <- mlen + 1;
  let frontend = Codec.get_str r in
  let fingerprint = Codec.get_str r in
  let plen = Codec.get_vint r in
  if plen < 0 || r.pos + 16 + plen <> String.length s then
    Codec.corrupt "payload length %d disagrees with file size" plen;
  let sum = String.sub s r.pos 16 in
  let payload = String.sub s (r.pos + 16) plen in
  if Digest.string payload <> sum then Codec.corrupt "checksum mismatch";
  let r = Codec.reader payload in
  let page_size = Codec.get_vint r in
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    Codec.corrupt "bad page size %d" page_size;
  let runs = Codec.get_vint r in
  if runs < 0 then Codec.corrupt "negative run count";
  let p = Profile.create ~page_size () in
  p.runs <- runs;
  let npages = Codec.get_count r "page" in
  for _ = 1 to npages do
    let base = Codec.get_vint r in
    if base < 0 || base land (page_size - 1) <> 0 then
      Codec.corrupt "page base 0x%X not %d-aligned" base page_size;
    let q = Profile.page p base in
    let field what v = if v < 0 then Codec.corrupt "negative %s" what; v in
    q.entries <- field "entries" (Codec.get_vint r);
    q.vliws <- field "vliws" (Codec.get_vint r);
    q.interp_insns <- field "interp_insns" (Codec.get_vint r);
    q.translations <- field "translations" (Codec.get_vint r);
    q.insns_scheduled <- field "insns_scheduled" (Codec.get_vint r);
    q.code_bytes <- field "code_bytes" (Codec.get_vint r)
  done;
  let nedges = Codec.get_count r "edge" in
  for _ = 1 to nedges do
    let src = Codec.get_vint r in
    let dst = Codec.get_vint r in
    let kind =
      match Profile.edge_kind_of_code (Codec.get_u8 r) with
      | Some k -> k
      | None -> Codec.corrupt "bad edge kind"
    in
    let count = Codec.get_vint r in
    if count <= 0 then Codec.corrupt "non-positive edge count";
    if src < 0 || dst < 0 then Codec.corrupt "negative edge endpoint";
    Profile.edge_n p ~src ~dst ~kind count
  done;
  if r.pos <> String.length payload then
    Codec.corrupt "%d trailing payload bytes" (String.length payload - r.pos);
  (frontend, fingerprint, p)

(* ------------------------------------------------------------------ *)
(* The store                                                           *)

type t = {
  dir : string;
  frontend : string;
  fingerprint : string;
  swept_tmp : int;
      (** orphaned temp files from a killed writer, removed at open *)
  io : Fsio.t;
  mutable mem_profile : Profile.t option;
      (** the lossy in-memory fallback: the last profile a storage
          fault kept off the disk *)
  mutable degraded : int;
      (** storage faults absorbed by degrading to memory *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let sweep_tmp ?(io = Fsio.real) dir =
  match io.Fsio.readdir dir with
  | exception Sys_error _ | (exception Fsio.Fault _) -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".tmp" then
          match io.Fsio.remove (Filename.concat dir f) with
          | () -> n + 1
          | exception Sys_error _ | (exception Fsio.Fault _) -> n
        else n)
      0 files

(** Open (creating if needed) the profile store in [dir].  Sweeps
    orphaned temp files, like the translation cache.  Raises
    [Sys_error] if the directory cannot be created. *)
let open_store ?(io = Fsio.real) ~dir ~frontend ~fingerprint () =
  mkdir_p dir;
  let swept_tmp = sweep_tmp ~io dir in
  { dir; frontend; fingerprint; swept_tmp; io; mem_profile = None;
    degraded = 0 }

(** Storage faults this store absorbed by degrading to memory. *)
let degraded_count t = t.degraded

let key t =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ t.frontend; t.fingerprint ]))

let path t = Filename.concat t.dir (key t ^ suffix)

(* Whole-file read via the store's backend; a file torn mid-read yields
   a prefix the decode ladder rejects as corrupt. *)
let read_file ?(io = Fsio.real) path = io.Fsio.read_file path

type probe_result =
  [ `Hit of Profile.t
  | `Miss
  | `Corrupt of string
  | `Skipped of string ]

let load t : probe_result =
  let path = path t in
  let from_memory msg =
    match t.mem_profile with
    | Some p -> `Hit p
    | None -> (match msg with None -> `Miss | Some m -> `Skipped m)
  in
  if not (Sys.file_exists path) then from_memory None
  else if try Sys.is_directory path with Sys_error _ -> false then
    `Skipped "is a directory"
  else
    match
      let frontend, fingerprint, p = decode (read_file ~io:t.io path) in
      if frontend <> t.frontend || fingerprint <> t.fingerprint then
        Codec.corrupt "fingerprint mismatch";
      p
    with
    | p -> `Hit p
    | exception Codec.Corrupt msg -> `Corrupt msg
    | exception Sys_error msg -> `Skipped ("io: " ^ msg)
    | exception (Fsio.Fault _ as f) ->
      (* storage fault, not a bad entry: degrade to the in-memory copy
         when one exists, report skipped otherwise *)
      t.degraded <- t.degraded + 1;
      from_memory (Some ("storage: " ^ Fsio.fault_message f))

(** Write [p] as this store's entry, atomically ({!Fsio.commit}).  A
    storage fault keeps [p] in memory instead of raising — the heat
    data survives for this process, durability is lost.  Returns the
    encoded size in bytes. *)
let save t (p : Profile.t) =
  let bytes = encode ~frontend:t.frontend ~fingerprint:t.fingerprint p in
  (match Fsio.commit t.io ~dir:t.dir ~file:(key t ^ suffix) bytes with
  | () -> t.mem_profile <- None
  | exception Fsio.Fault _ ->
    t.degraded <- t.degraded + 1;
    t.mem_profile <- Some p);
  String.length bytes

(** Fold a fresh run's profile into the on-disk entry (merge with
    whatever is there; a corrupt entry is replaced).  Returns the merged
    profile and the entry size written. *)
let accumulate t (p : Profile.t) =
  let merged =
    match load t with
    | `Hit prev ->
      Profile.merge ~into:prev p;
      prev
    | `Miss | `Corrupt _ | `Skipped _ -> p
  in
  let bytes = save t merged in
  (merged, bytes)

(* ------------------------------------------------------------------ *)
(* Directory tools (daisy profile / profile merge)                     *)

type info = {
  i_file : string;
  i_frontend : string;
  i_fingerprint : string;
  i_page_size : int;
  i_runs : int;
  i_pages : int;
  i_edges : int;
  i_entries : int;
  i_bytes : int;
  i_status : [ `Ok | `Corrupt of string | `Skipped of string ];
}

let entry_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f suffix)
    |> List.sort compare
  | exception Sys_error _ -> []

let list_dir dir =
  List.map
    (fun f ->
      let blank status =
        { i_file = f; i_frontend = "?"; i_fingerprint = "?";
          i_page_size = 0; i_runs = 0; i_pages = 0; i_edges = 0;
          i_entries = 0; i_bytes = 0; i_status = status }
      in
      match read_file (Filename.concat dir f) with
      | exception Sys_error msg -> blank (`Skipped msg)
      | s -> (
        match decode s with
        | frontend, fingerprint, p ->
          { i_file = f; i_frontend = frontend; i_fingerprint = fingerprint;
            i_page_size = p.page_size; i_runs = p.runs;
            i_pages = Hashtbl.length p.pages;
            i_edges = Hashtbl.length p.edges;
            i_entries = Profile.total_entries p;
            i_bytes = String.length s; i_status = `Ok }
        | exception Codec.Corrupt msg ->
          { (blank (`Corrupt msg)) with i_bytes = String.length s }))
    (entry_files dir)

(** Merge every profile in [srcs] into [into] (created if missing):
    entries with the same key are summed, new keys are copied.  Corrupt
    or alien files are skipped, never fatal.  Returns
    [(merged_entries, skipped_files)]. *)
let merge_dirs ~into srcs =
  mkdir_p into;
  ignore (sweep_tmp into);
  let merged = ref 0 and skipped = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun f ->
          match decode (read_file (Filename.concat src f)) with
          | exception (Sys_error _ | Codec.Corrupt _) -> incr skipped
          | frontend, fingerprint, p ->
            let t =
              { dir = into; frontend; fingerprint; swept_tmp = 0;
                io = Fsio.real; mem_profile = None; degraded = 0 }
            in
            (match load t with
            | `Hit prev ->
              (* merge is commutative: direction only picks which
                 in-memory object survives *)
              Profile.merge ~into:prev p;
              ignore (save t prev)
            | `Miss | `Corrupt _ | `Skipped _ -> ignore (save t p));
            incr merged)
        (entry_files src))
    srcs;
  (!merged, !skipped)
