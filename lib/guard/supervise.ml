(* The supervision front door: one call wires checkpointing, watchdog
   deadlines and shadow verification into a VMM, and one exception
   carries a graceful SIGTERM shutdown out of it.

   The checkpoint cadence and the termination poll both live on the
   VMM's [tick_hook], which fires at committed boundaries only — so a
   snapshot is always of a precise architected state, and a SIGTERM
   never tears a packet in half: the handler just sets a flag, and the
   next boundary writes a final snapshot and unwinds with
   {!Terminated}.  The driver maps that to exit 143 (128+SIGTERM), the
   code a plainly-killed process would have — except this one left a
   resumable checkpoint behind. *)

exception Terminated
(** raised at a commit boundary after the final snapshot is written *)

(* A flag, not a callback: OCaml signal handlers run at safe points,
   and the only async-signal-safe action is setting a word. *)
let terminate = ref false

let request_termination () = terminate := true

(** Install a SIGTERM handler that requests a graceful stop at the next
    commit boundary.  No-op on platforms without signals. *)
let install_sigterm () =
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> terminate := true))
  with Invalid_argument _ | Sys_error _ -> ()

(** Attach the supervision stack to [vmm].  [checkpoint_dir] enables
    periodic snapshots every [checkpoint_every] VMM cycles (sequence
    numbering continues from [checkpoint_seq] on resume); [watchdog]
    sets the deadline budgets; [shadow] enables sampled verification;
    [flight] is dumped (reason ["sigterm"]) before the graceful-stop
    unwind, so even a killed run leaves its event tail behind.  Returns
    the checkpointer, if one was created, so callers can force a final
    snapshot. *)
let attach ?checkpoint_dir ?(checkpoint_every = 50_000) ?(checkpoint_seq = 0)
    ?(watchdog = Watchdog.none) ?shadow ?flight ~workload
    (vmm : Vmm.Monitor.t) =
  Watchdog.attach watchdog vmm;
  (match shadow with
  | Some cfg -> ignore (Shadow.attach cfg vmm)
  | None -> ());
  let ck =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
      Some
        (Checkpoint.attach ~dir ~every:checkpoint_every ~seq:checkpoint_seq
           ~workload vmm)
  in
  (match (ck, flight) with
  | None, None -> ()
  | _ ->
    let prev = vmm.tick_hook in
    vmm.tick_hook <-
      Some
        (fun ~pc ->
          (match prev with Some f -> f ~pc | None -> ());
          if !terminate then begin
            (match ck with
            | Some ck -> ignore (Checkpoint.write ck ~pc)
            | None -> ());
            (match flight with
            | Some f -> ignore (Obs.Flight.dump f ~reason:"sigterm")
            | None -> ());
            raise Terminated
          end;
          match ck with Some ck -> Checkpoint.maybe ck ~pc | None -> ()));
  ck
