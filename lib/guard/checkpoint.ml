(* Deterministic checkpoint/restore for long runs.

   DAISY's precise-exception discipline means that at every committed
   VLIW boundary the *base architecture's* state is complete and
   self-contained: registers, memory, pending-interrupt bookkeeping.
   Nothing about the translations needs saving — a restored run simply
   retranslates on demand from the restored memory image, and because
   console output and the exit code are architected effects they come
   out bit-identical whether or not the run was interrupted.

   A checkpoint directory holds a sequence of snapshot files

     ck-000000.dgck, ck-000001.dgck, ...

   written at commit boundaries every [every] VMM cycles (and once more
   on SIGTERM).  Snapshots are *incremental*: each file carries only
   the memory chunks dirtied since the previous snapshot, tracked by a
   store hook, so steady-state checkpoints are small.  Restoring folds
   the whole sequence over the workload's pristine image.

   File layout (reusing lib/tcache's varint codec and checksum
   discipline — magic | version | payload_len | MD5 | payload):

     magic "DGCK" | version u8 | payload_len vint
     | payload MD5 (16 raw bytes) | payload

   and the payload is: workload str | frontend str | fingerprint str
   | engine u8 | every vint | seq vint | pc vint | machine
   | mem seq vint | console str | timer_count vint | stats
   | health entries | dirty chunks.

   Crash safety mirrors the tcache store: snapshots are installed with
   {!Fsio.commit} (temp write, file fsync, rename, directory fsync), so
   a reader never sees a torn snapshot and a kill -9 mid-write costs at
   most one checkpoint interval of progress.  A truncated or
   bit-flipped file fails the magic/version/checksum ladder; [load]
   stops at the first invalid file and restores from the valid prefix.

   Storage faults ({!Fsio.Fault}: ENOSPC, EIO, readonly mount) are a
   *degradation*, not a crash: a failed snapshot surfaces as a typed
   Storage strike — [stats.storage_faults] plus a [Storage_fault]
   event into the ladder/flight/HEALTH plumbing — while the run keeps
   executing with its dirty bitmap intact, so the next interval retries
   a snapshot covering everything the failed one would have. *)

module Codec = Tcache.Codec
module Monitor = Vmm.Monitor
open Ppc

let magic = "DGCK"
let version = 1

(** Dirty-tracking granularity, in bytes.  Independent of the
    translator's page size: this is about snapshot volume, not about
    code invalidation. *)
let chunk = 4096

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type t = {
  dir : string;
  every : int;  (** VMM cycles between snapshots *)
  workload : string;
  vmm : Monitor.t;
  dirty : Bytes.t;
      (** one byte per memory chunk, set when touched since the last
          snapshot — a flat bitmap, not a table: the marker runs on
          every guest store, so it must cost one bounds-checked byte
          write, not a hash insert *)
  mutable seq : int;       (** next snapshot number *)
  mutable last_cycle : int;  (** VMM clock at the last snapshot *)
  io : Fsio.t;
}


let mark t addr n =
  if addr >= 0 && n > 0 then begin
    let lo = addr / chunk and hi = (addr + n - 1) / chunk in
    for i = lo to min hi (Bytes.length t.dirty - 1) do
      Bytes.unsafe_set t.dirty i '\001'
    done
  end

(** Create a checkpointer over [vmm] and hook dirty-page tracking into
    the guest store path (composing with whatever hook — the VMM's
    code-write watcher — is already installed).  [seq] continues an
    existing directory's numbering on resume; the first snapshot of a
    fresh run is made incremental against the *pristine* workload image
    by treating every chunk the run has already dirtied as dirty — for
    a fresh run that is none, and on resume the restored image already
    contains them. *)
let attach ~dir ~every ?(seq = 0) ?(io = Fsio.real) ~workload
    (vmm : Monitor.t) =
  Tcache.Store.mkdir_p dir;
  let t =
    { dir; every; workload; vmm;
      dirty = Bytes.make ((vmm.mem.size + chunk - 1) / chunk) '\000'; seq;
      last_cycle = Monitor.now vmm; io }
  in
  let mem = vmm.mem in
  (match mem.on_store with
  | Some f ->
    mem.on_store <-
      Some
        (fun addr n ->
          mark t addr n;
          f addr n)
  | None -> mem.on_store <- Some (fun addr n -> mark t addr n));
  t

let put_machine b (m : Machine.t) =
  Array.iter (Codec.put_vint b) m.gpr;
  Codec.put_vint b m.cr;
  Codec.put_vint b m.lr;
  Codec.put_vint b m.ctr;
  Codec.put_bool b m.xer_ca;
  Codec.put_bool b m.xer_ov;
  Codec.put_bool b m.xer_so;
  Codec.put_vint b m.pc;
  Codec.put_vint b m.msr;
  Codec.put_vint b m.srr0;
  Codec.put_vint b m.srr1;
  Codec.put_vint b m.dar;
  Codec.put_vint b m.dsisr;
  Codec.put_vint b m.sprg0;
  Codec.put_vint b m.sprg1

let get_machine r (m : Machine.t) =
  for i = 0 to 31 do
    m.gpr.(i) <- Codec.get_vint r
  done;
  m.cr <- Codec.get_vint r;
  m.lr <- Codec.get_vint r;
  m.ctr <- Codec.get_vint r;
  m.xer_ca <- Codec.get_bool r;
  m.xer_ov <- Codec.get_bool r;
  m.xer_so <- Codec.get_bool r;
  m.pc <- Codec.get_vint r;
  m.msr <- Codec.get_vint r;
  m.srr0 <- Codec.get_vint r;
  m.srr1 <- Codec.get_vint r;
  m.dar <- Codec.get_vint r;
  m.dsisr <- Codec.get_vint r;
  m.sprg0 <- Codec.get_vint r;
  m.sprg1 <- Codec.get_vint r

(* The counters a resumed run must continue from: the VMM clock
   ([vliws + interp_insns]) keeps fuel accounting and ladder backoffs
   continuous, and the ladder/supervision counters keep the final
   [degraded] verdict (exit code 4 vs 0) identical to an uninterrupted
   run.  Throughput-only counters restart at zero. *)
let stats_fields (s : Monitor.stats) =
  [| (fun () -> s.vliws), (fun v -> s.vliws <- v);
     (fun () -> s.interp_insns), (fun v -> s.interp_insns <- v);
     (fun () -> s.interp_episodes), (fun v -> s.interp_episodes <- v);
     (fun () -> s.rollbacks), (fun v -> s.rollbacks <- v);
     (fun () -> s.aliases), (fun v -> s.aliases <- v);
     (fun () -> s.syscalls), (fun v -> s.syscalls <- v);
     (fun () -> s.external_interrupts), (fun v -> s.external_interrupts <- v);
     (fun () -> s.translator_faults), (fun v -> s.translator_faults <- v);
     (fun () -> s.exec_faults), (fun v -> s.exec_faults <- v);
     (fun () -> s.quarantines), (fun v -> s.quarantines <- v);
     (fun () -> s.degrade_retries), (fun v -> s.degrade_retries <- v);
     (fun () -> s.interp_pinned), (fun v -> s.interp_pinned <- v);
     (fun () -> s.deadline_hits), (fun v -> s.deadline_hits <- v);
     (fun () -> s.shadow_checked), (fun v -> s.shadow_checked <- v);
     (fun () -> s.shadow_divergences), (fun v -> s.shadow_divergences <- v);
     (fun () -> s.checkpoints_written), (fun v -> s.checkpoints_written <- v)
  |]

(** Write one snapshot now, with [pc] as the precise resume point.
    Returns the snapshot's size in bytes. *)
let write t ~pc =
  let t0 = Sys.time () in
  let vmm = t.vmm in
  let mem = vmm.mem in
  let b = Buffer.create 4096 in
  Codec.put_str b t.workload;
  Codec.put_str b vmm.fe.name;
  Codec.put_str b (Translator.Params.fingerprint vmm.tr.params);
  Codec.put_u8 b (match vmm.engine with Tree -> 0 | Compiled -> 1);
  Codec.put_vint b t.every;
  Codec.put_vint b t.seq;
  Codec.put_vint b pc;
  put_machine b vmm.st.m;
  Codec.put_vint b mem.seq;
  Codec.put_str b (Mem.output mem);
  Codec.put_vint b vmm.timer_count;
  let sf = stats_fields vmm.stats in
  Codec.put_vint b (Array.length sf);
  Array.iter (fun (get, _) -> Codec.put_vint b (get ())) sf;
  Codec.put_vint b (Hashtbl.length vmm.page_health);
  Hashtbl.iter
    (fun base (h : Monitor.health) ->
      Codec.put_vint b base;
      Codec.put_vint b h.failures;
      Codec.put_vint b h.backoff_until;
      Codec.put_bool b h.pinned_interp)
    vmm.page_health;
  let chunks = ref [] in
  for i = Bytes.length t.dirty - 1 downto 0 do
    if Bytes.get t.dirty i <> '\000' then chunks := i :: !chunks
  done;
  let chunks = !chunks in
  Codec.put_vint b (List.length chunks);
  List.iter
    (fun i ->
      let off = i * chunk in
      let len = min chunk (mem.size - off) in
      Codec.put_vint b i;
      Codec.put_str b (Bytes.sub_string mem.bytes off len))
    chunks;
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 32) in
  Buffer.add_string out magic;
  Codec.put_u8 out version;
  Codec.put_vint out (String.length payload);
  Buffer.add_string out (Digest.string payload);
  Buffer.add_string out payload;
  match
    Fsio.commit t.io ~dir:t.dir
      ~file:(Printf.sprintf "ck-%06d.dgck" t.seq)
      (Buffer.contents out)
  with
  | () ->
    let bytes = Buffer.length out and pages = List.length chunks in
    Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
    t.seq <- t.seq + 1;
    t.last_cycle <- Monitor.now vmm;
    let seconds = Sys.time () -. t0 in
    vmm.stats.checkpoints_written <- vmm.stats.checkpoints_written + 1;
    vmm.stats.checkpoint_seconds <- vmm.stats.checkpoint_seconds +. seconds;
    Monitor.emit vmm (fun () ->
        Checkpoint_written
          { cycle = Monitor.now vmm; seq = t.seq - 1; bytes; pages; seconds });
    bytes
  | exception (Fsio.Fault { op; _ } as f) ->
    (* a typed Storage strike: the run keeps executing, the verdict
       degrades (exit 4), and the dirty bitmap stays set so the next
       interval's snapshot covers everything this one would have.
       [last_cycle] still advances — retrying every cycle against a
       full disk would turn one fault into a write storm. *)
    t.last_cycle <- Monitor.now vmm;
    let seconds = Sys.time () -. t0 in
    vmm.stats.storage_faults <- vmm.stats.storage_faults + 1;
    vmm.stats.checkpoint_seconds <- vmm.stats.checkpoint_seconds +. seconds;
    Monitor.emit vmm (fun () ->
        Storage_fault
          { cycle = Monitor.now vmm; store = "checkpoint"; op;
            reason = Fsio.fault_message f });
    0

(** Write a snapshot if at least [every] VMM cycles of commit progress
    have accumulated since the last one. *)
let maybe t ~pc =
  if Monitor.now t.vmm - t.last_cycle >= t.every then ignore (write t ~pc)

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)

type snapshot = {
  s_workload : string;
  s_frontend : string;
  s_fingerprint : string;
  s_engine : Monitor.engine;
  s_every : int;
  s_seq : int;
  s_pc : int;
  s_machine : Machine.t;
  s_mem_seq : int;
  s_console : string;
  s_timer_count : int;
  s_stats : int array;
  s_health : (int * int * int * bool) list;
  s_chunks : (int * string) list;
}

let parse_snapshot s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 then Codec.corrupt "truncated header";
  if String.sub s 0 mlen <> magic then Codec.corrupt "bad magic";
  let v = Char.code s.[mlen] in
  if v <> version then Codec.corrupt "version %d (want %d)" v version;
  let r = Codec.reader s in
  r.pos <- mlen + 1;
  let plen = Codec.get_vint r in
  if plen < 0 || r.pos + 16 + plen <> String.length s then
    Codec.corrupt "payload length %d disagrees with file size" plen;
  let sum = String.sub s r.pos 16 in
  let payload = String.sub s (r.pos + 16) plen in
  if Digest.string payload <> sum then Codec.corrupt "checksum mismatch";
  let r = Codec.reader payload in
  let s_workload = Codec.get_str r in
  let s_frontend = Codec.get_str r in
  let s_fingerprint = Codec.get_str r in
  let s_engine =
    match Codec.get_u8 r with
    | 0 -> Monitor.Tree
    | 1 -> Monitor.Compiled
    | n -> Codec.corrupt "bad engine %d" n
  in
  let s_every = Codec.get_vint r in
  let s_seq = Codec.get_vint r in
  let s_pc = Codec.get_vint r in
  let s_machine = Machine.create () in
  get_machine r s_machine;
  let s_mem_seq = Codec.get_vint r in
  let s_console = Codec.get_str r in
  let s_timer_count = Codec.get_vint r in
  let nstats = Codec.get_count r "stats" in
  let s_stats = Array.init nstats (fun _ -> Codec.get_vint r) in
  let nhealth = Codec.get_count r "health" in
  let s_health =
    List.init nhealth (fun _ ->
        let base = Codec.get_vint r in
        let failures = Codec.get_vint r in
        let until = Codec.get_vint r in
        let pinned = Codec.get_bool r in
        (base, failures, until, pinned))
  in
  let nchunks = Codec.get_count r "chunk" in
  let s_chunks =
    List.init nchunks (fun _ ->
        let i = Codec.get_vint r in
        let bytes = Codec.get_str r in
        (i, bytes))
  in
  { s_workload; s_frontend; s_fingerprint; s_engine; s_every; s_seq; s_pc;
    s_machine; s_mem_seq; s_console; s_timer_count; s_stats; s_health;
    s_chunks }

(* Whole-file read via the backend; a truncated or torn file yields a
   prefix the checksum ladder rejects. *)
let read_file ?(io = Fsio.real) path = io.Fsio.read_file path

let snapshot_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".dgck")
    |> List.sort compare

type loaded = {
  last : snapshot;      (** scalar state from the newest valid snapshot *)
  deltas : (int * string) list;
      (** memory chunks folded across the whole valid prefix, oldest
          first (later snapshots overwrite earlier ones) *)
  valid : int;          (** snapshots restored *)
  dropped : int;        (** trailing files ignored (corrupt/unreadable) *)
}

(** Fold the snapshot sequence in [dir].  Restoring uses the longest
    valid prefix: a corrupt or unreadable file invalidates itself and
    everything after it (later deltas assume the earlier memory image).
    [None] when the directory holds no usable snapshot. *)
let load ?(io = Fsio.real) ~dir () =
  let files = snapshot_files dir in
  let last = ref None and deltas = ref [] in
  let valid = ref 0 and dropped = ref 0 in
  let rec go = function
    | [] -> ()
    | f :: rest -> (
      match parse_snapshot (read_file ~io (Filename.concat dir f)) with
      | snap ->
        last := Some snap;
        deltas := !deltas @ snap.s_chunks;
        incr valid;
        go rest
      | exception (Codec.Corrupt _ | Sys_error _ | Fsio.Fault _) ->
        dropped := List.length (f :: rest))
  in
  go files;
  match !last with
  | None -> None
  | Some snap ->
    Some { last = snap; deltas = !deltas; valid = !valid; dropped = !dropped }

exception Incompatible of string

(** Restore [l] into a freshly-created VMM whose memory holds the
    workload's pristine image.  Returns [(pc, consumed)]: the precise
    resume address and the VMM cycles already spent (the caller
    subtracts them from the fuel budget so the total is identical to an
    uninterrupted run).  Raises {!Incompatible} on a workload /
    frontend / translator-fingerprint mismatch — resuming under
    different translation parameters would still be architecturally
    correct, but the run would no longer be comparable to the original,
    so it is refused. *)
let restore_into (l : loaded) (vmm : Monitor.t) =
  let snap = l.last in
  if snap.s_frontend <> vmm.fe.name then
    raise
      (Incompatible
         (Printf.sprintf "checkpoint is for frontend %s, VMM runs %s"
            snap.s_frontend vmm.fe.name));
  let fp = Translator.Params.fingerprint vmm.tr.params in
  if snap.s_fingerprint <> fp then
    raise
      (Incompatible
         (Printf.sprintf
            "checkpoint translator fingerprint %s does not match %s"
            snap.s_fingerprint fp));
  let mem = vmm.mem in
  List.iter
    (fun (i, bytes) ->
      let off = i * chunk in
      if off < 0 || off + String.length bytes > mem.size then
        Codec.corrupt "chunk %d outside memory" i;
      (* raw blit: restoring is not a guest store, so no hooks fire *)
      Bytes.blit_string bytes 0 mem.bytes off (String.length bytes))
    l.deltas;
  let m = vmm.st.m in
  Array.blit snap.s_machine.gpr 0 m.gpr 0 32;
  m.cr <- snap.s_machine.cr;
  m.lr <- snap.s_machine.lr;
  m.ctr <- snap.s_machine.ctr;
  m.xer_ca <- snap.s_machine.xer_ca;
  m.xer_ov <- snap.s_machine.xer_ov;
  m.xer_so <- snap.s_machine.xer_so;
  m.pc <- snap.s_machine.pc;
  m.msr <- snap.s_machine.msr;
  m.srr0 <- snap.s_machine.srr0;
  m.srr1 <- snap.s_machine.srr1;
  m.dar <- snap.s_machine.dar;
  m.dsisr <- snap.s_machine.dsisr;
  m.sprg0 <- snap.s_machine.sprg0;
  m.sprg1 <- snap.s_machine.sprg1;
  mem.seq <- snap.s_mem_seq;
  Buffer.clear mem.out;
  Buffer.add_string mem.out snap.s_console;
  vmm.timer_count <- snap.s_timer_count;
  let sf = stats_fields vmm.stats in
  Array.iteri
    (fun i (_, set) -> if i < Array.length snap.s_stats then set snap.s_stats.(i))
    sf;
  Hashtbl.reset vmm.page_health;
  List.iter
    (fun (base, failures, backoff_until, pinned_interp) ->
      Hashtbl.replace vmm.page_health base
        { Monitor.failures; backoff_until; pinned_interp })
    snap.s_health;
  (snap.s_pc, vmm.stats.vliws + vmm.stats.interp_insns)
