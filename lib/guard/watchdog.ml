(* Watchdog deadlines: bounded wall-clock budgets for the three ways a
   dynamic translator can stall a production run.

   - [translate_s]: per fresh page-translation unit.  An overrun throws
     the finished translation away, takes a ladder strike and recovers
     by interpretation (the page retries after backoff, so a transient
     host stall heals).
   - [compile_s]: per page staging in the closure-compiled engine
     ({!Vliw.Compile.stage}'s [?budget]); same recovery, and no partial
     staging is ever installed.
   - [progress]: the runaway-loop detector — this many consecutive
     committed VLIW boundaries at the *same* precise pc with no
     interpretation in between quarantines the page.  Off by default:
     a legitimate single-VLIW counted loop revisits its entry pc once
     per iteration, so any limit must exceed the largest iteration
     count the workload can legally run.

   All three fire a typed {!Vmm.Monitor.event.Deadline} into the
   degradation ladder rather than hanging or killing the run: the
   interpreter is the always-correct path, so a deadline is a
   performance event, never a correctness one. *)

type config = {
  translate_s : float option;  (** per-translation wall-clock budget *)
  compile_s : float option;    (** per-staging wall-clock budget *)
  progress : int option;       (** runaway-loop boundary limit *)
}

let none = { translate_s = None; compile_s = None; progress = None }

let attach cfg (vmm : Vmm.Monitor.t) =
  vmm.translate_budget <- cfg.translate_s;
  vmm.compile_budget <- cfg.compile_s;
  vmm.progress_limit <- cfg.progress
