(* Watchdog deadlines: bounded wall-clock budgets for the three ways a
   dynamic translator can stall a production run.

   - [translate_s]: per fresh page-translation unit.  An overrun throws
     the finished translation away, takes a ladder strike and recovers
     by interpretation (the page retries after backoff, so a transient
     host stall heals).
   - [compile_s]: per page staging in the closure-compiled engine
     ({!Vliw.Compile.stage}'s [?budget]); same recovery, and no partial
     staging is ever installed.
   - [progress]: the runaway-loop detector — this many consecutive
     committed VLIW boundaries at the *same* precise pc with no
     interpretation in between quarantines the page.  Off by default:
     a legitimate single-VLIW counted loop revisits its entry pc once
     per iteration, so any limit must exceed the largest iteration
     count the workload can legally run.

   All three fire a typed {!Vmm.Monitor.event.Deadline} into the
   degradation ladder rather than hanging or killing the run: the
   interpreter is the always-correct path, so a deadline is a
   performance event, never a correctness one.

   The fourth budget is different in kind: [session_s] bounds the WHOLE
   attached run's wall clock.  It exists for the serve layer, where a
   request carries a client deadline and a runaway guest must not hold
   a pool domain forever.  There is no ladder rung for "the run is out
   of time", so expiry raises {!Expired} from the tick hook — at a
   committed boundary, so architected state is precise — and the
   session supervisor above turns it into a typed reply and a clean
   teardown. *)

type config = {
  translate_s : float option;  (** per-translation wall-clock budget *)
  compile_s : float option;    (** per-staging wall-clock budget *)
  progress : int option;       (** runaway-loop boundary limit *)
  session_s : float option;    (** whole-run wall-clock budget *)
}

let none =
  { translate_s = None; compile_s = None; progress = None; session_s = None }

exception Expired of float
(** raised at a commit boundary once [session_s] wall-clock seconds
    have elapsed since [attach] (or the caller's [t0]); carries the
    elapsed seconds.  The run's state is precise but the run is over —
    this is a cancellation, not a ladder event. *)

let attach ?t0 cfg (vmm : Vmm.Monitor.t) =
  vmm.translate_budget <- cfg.translate_s;
  vmm.compile_budget <- cfg.compile_s;
  vmm.progress_limit <- cfg.progress;
  match cfg.session_s with
  | None -> ()
  | Some budget ->
    let t0 = match t0 with Some t -> t | None -> Unix.gettimeofday () in
    let prev = vmm.tick_hook in
    vmm.tick_hook <-
      Some
        (fun ~pc ->
          (match prev with Some f -> f ~pc | None -> ());
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed > budget then raise (Expired elapsed))
