(* Sampled shadow verification: continuous differential testing in
   production.

   The fuzzer (lib/fault) verifies translations before a release; this
   module verifies them *while they run*.  A seeded sampler picks a
   fraction of committed VLIW packets; for each, the architected state
   is snapshotted at the packet's precise entry, the packet runs
   normally, and at commit the reference interpreter replays the same
   base instructions over the snapshot.  If the interpreter cannot
   reproduce the committed architected effects — registers, memory,
   console, I/O sequence state — the packet's translation is wrong in a
   way nothing else caught (a silently corrupted branch sense, a bad
   datapath that still produces plausible values).

   On divergence the guard

   - records the page as an on-disk reproducer in the fuzzer's format
     (so `daisy fuzz replay` can re-run it standalone),
   - repairs architected state back to the pre-packet snapshot,
   - takes a ladder strike on the page (quarantine -> interpretation),
   - and resumes at the packet's entry pc by interpretation — the run
     completes correctly, degraded (exit 4), exactly like any other
     contained fault.

   Sampling is the paper's precise-exception argument turned into an
   operating policy: because every committed boundary is a precise
   base-architecture state, any single packet can be re-derived from
   its predecessor state by the golden model, at any time, at a cost
   proportional to the sampling rate. *)

module Monitor = Vmm.Monitor
open Ppc

type config = {
  sample : float;       (** fraction of committed packets to verify *)
  seed : int;           (** sampler seed (deterministic runs) *)
  out_dir : string option;  (** where divergence reproducers go *)
  max_steps : int;      (** replay step bound per packet *)
}

let default =
  { sample = 0.01; seed = 0; out_dir = None; max_steps = 4096 }

(* The pre-packet snapshot: everything the reference interpreter needs
   to replay the packet, and everything repair needs to undo it. *)
type snap = {
  pc0 : int;
  machine : Machine.t;
  bytes : Bytes.t;
  seq : int;
  console : string;
}

type t = {
  cfg : config;
  rng : Random.State.t;
  vmm : Monitor.t;
  mutable armed : snap option;
}

let take_snap (vmm : Monitor.t) ~pc =
  { pc0 = pc; machine = Machine.copy vmm.st.m; bytes = Bytes.copy vmm.mem.bytes;
    seq = vmm.mem.seq; console = Mem.output vmm.mem }

let arm t ~pc =
  if t.cfg.sample >= 1.0 || Random.State.float t.rng 1.0 < t.cfg.sample then
    t.armed <- Some (take_snap t.vmm ~pc)

let abort t = t.armed <- None

(* Does the shadow state match the committed state?  Cheap scalar
   comparisons first.  Two deliberate omissions relative to
   [Machine.equal]:

   - pc: the committed machine's pc is stale during translated
     execution, so the pc condition lives with the caller (see
     [commit]): the reference must have *visited* the boundary pc, but
     the state match itself ignores pc — the scheduler may commit an
     instruction from at-or-after the boundary early (hoisted across a
     join) when re-executing it from the boundary is idempotent, so
     the committed state can equal the reference state a few
     instructions *past* the boundary.
   - flags (CR, CA, OV, SO): the datapath commits *dead* flag writes
     from speculative ops eagerly when the destination is architected
     (Vliw.Exec.carry_writes / cr_writes), so the boundary flag state
     can mix in values from instructions past the boundary that no
     sequential replay can reproduce.  A dead flag is architecturally
     unobservable; a *live* wrong flag surfaces either as a wrong
     branch (the reference path never visits the bogus boundary pc) or
     as a wrong GPR (adde, mfcr), both of which this check does see. *)
let matches (t : t) (sm : Machine.t) (smem : Mem.t) =
  let m = t.vmm.st.m in
  sm.lr = m.lr && sm.ctr = m.ctr && sm.msr = m.msr
  && sm.gpr = m.gpr
  && smem.seq = t.vmm.mem.seq
  && Buffer.length smem.out = Buffer.length t.vmm.mem.out
  && Mem.output smem = Mem.output t.vmm.mem
  && Bytes.equal smem.bytes t.vmm.mem.bytes

let write_reproducer t snap ~base ~reason =
  match t.cfg.out_dir with
  | None -> None
  | Some dir ->
    let psize = t.vmm.tr.params.page_size in
    let nwords = psize / 4 in
    let slots =
      Array.init nwords (fun i ->
          Fault.Fuzz.Raw (Int32.to_int (Bytes.get_int32_be snap.bytes (base + 4 * i))
                          land 0xFFFF_FFFF))
    in
    Some
      (Fault.Fuzz.write_reproducer ~dir ~seed:t.cfg.seed ~index:base
         ~fuel:200_000
         ~message:
           (Printf.sprintf "shadow divergence at pc 0x%X: %s" snap.pc0 reason)
         slots)

(* Put the architected state back exactly as it was when the packet was
   armed.  Raw blits: repair is not guest execution, so no store hooks
   fire (the next checkpoint still captures the page because the
   original stores marked it dirty). *)
let repair (t : t) snap =
  let vmm = t.vmm in
  let m = vmm.st.m in
  Array.blit snap.machine.gpr 0 m.gpr 0 32;
  m.cr <- snap.machine.cr;
  m.lr <- snap.machine.lr;
  m.ctr <- snap.machine.ctr;
  m.xer_ca <- snap.machine.xer_ca;
  m.xer_ov <- snap.machine.xer_ov;
  m.xer_so <- snap.machine.xer_so;
  m.pc <- snap.machine.pc;
  m.msr <- snap.machine.msr;
  m.srr0 <- snap.machine.srr0;
  m.srr1 <- snap.machine.srr1;
  m.dar <- snap.machine.dar;
  m.dsisr <- snap.machine.dsisr;
  m.sprg0 <- snap.machine.sprg0;
  m.sprg1 <- snap.machine.sprg1;
  Bytes.blit snap.bytes 0 vmm.mem.bytes 0 (Bytes.length snap.bytes);
  vmm.mem.seq <- snap.seq;
  Buffer.clear vmm.mem.out;
  Buffer.add_string vmm.mem.out snap.console

let diverged t snap ~reason =
  let vmm = t.vmm in
  let base = Translator.Translate.page_base vmm.tr snap.pc0 in
  vmm.stats.shadow_divergences <- vmm.stats.shadow_divergences + 1;
  ignore (write_reproducer t snap ~base ~reason);
  Monitor.emit vmm (fun () ->
      Shadow_divergence
        { cycle = Monitor.now vmm; page = base; pc = snap.pc0; reason });
  repair t snap;
  Monitor.record_failure vmm base;
  Some snap.pc0

(** The commit check: replay the armed packet under the reference
    interpreter and compare architected effects.  [None] means the
    packet verified (or nothing was armed); [Some pc] means a
    divergence was found, state was repaired to the pre-packet
    snapshot, and the caller must resume at [pc] by interpretation. *)
let commit t ~next =
  match t.armed with
  | None -> None
  | Some snap -> (
    t.armed <- None;
    let vmm = t.vmm in
    vmm.stats.shadow_checked <- vmm.stats.shadow_checked + 1;
    let sm = Machine.copy snap.machine in
    sm.pc <- snap.pc0;
    let smem : Mem.t =
      { bytes = Bytes.copy snap.bytes; size = vmm.mem.size;
        out = Buffer.create (String.length snap.console + 64);
        seq = snap.seq; on_store = None }
    in
    Buffer.add_string smem.out snap.console;
    let step = vmm.fe.make_step sm smem in
    (* Check before every step: the packet may commit after zero or
       more interpreted instructions, and a committed path can pass
       through [next] mid-way — so a state match only counts once the
       reference has visited the boundary pc.  That visit is the
       soundness anchor against silently flipped branches: a wrong-path
       commit resumes at a pc the reference path never reaches, and no
       later state coincidence can hide it. *)
    let rec go steps ~visited =
      let visited = visited || sm.pc land lnot 1 = next land lnot 1 in
      if visited && matches t sm smem then None
      else if steps >= t.cfg.max_steps then
        diverged t snap
          ~reason:
            (Printf.sprintf "no state match within %d reference steps%s"
               t.cfg.max_steps
               (if visited then "" else
                  Printf.sprintf " (boundary pc 0x%X never reached)" next))
      else
        match step () with
        | () -> go (steps + 1) ~visited
        | exception Mem.Halted code ->
          diverged t snap
            ~reason:(Printf.sprintf "reference halted (%d) mid-packet" code)
        | exception exn ->
          diverged t snap
            ~reason:("reference raised " ^ Printexc.to_string exn)
    in
    go 0 ~visited:false)

(** Wire a shadow verifier into [vmm]'s arm/abort/commit hooks. *)
let attach cfg (vmm : Monitor.t) =
  let t =
    { cfg; rng = Random.State.make [| cfg.seed; 0x5AD0 |]; vmm; armed = None }
  in
  vmm.shadow_arm <- Some (fun ~pc -> arm t ~pc);
  vmm.shadow_abort <- Some (fun () -> abort t);
  vmm.shadow_commit <- Some (fun ~next -> commit t ~next);
  t
