(* Offline storage checking and repair for every durable store.

   The stores already defend themselves at run time — checksum parse
   ladders, quarantine-on-corrupt, orphan sweeps at open — but a fleet
   operator wants the complement: one pass that walks a tree after an
   incident (full disk, torn power, flaky controller) and says exactly
   which entries are torn, which temp files a dead writer left behind,
   and optionally puts the tree right.  `daisy fsck` drives this.

   One walker per store family:

   - tcache:     *.dtc entries (page + region), *.dtc.bad corpses
   - profile:    *.dpf merge-able profile entries
   - checkpoint: ck-*.dgck snapshot sequences (longest-valid-prefix —
                 a torn snapshot also invalidates everything after it)
   - crash:      crash-*.json / *.folded flight-recorder dumps

   Repair is deliberately conservative, mirroring what the stores do
   under load: a torn entry is set aside as [<file>.bad] (bytes kept
   for the post-mortem; rename falls back to removal on filesystems
   that refuse it), an orphaned temp file is removed, and nothing else
   is touched — foreign files are reported as strays and left alone.
   Every repair re-establishes the store invariant the runtime relies
   on: whatever remains parses clean. *)

type issue = {
  i_file : string;     (** basename within the store directory *)
  i_problem : string;
  i_repaired : bool;
}

type store_report = {
  r_store : string;    (** "tcache" | "profile" | "checkpoint" | "crash" *)
  r_dir : string;
  r_entries : int;     (** entries that parse clean *)
  r_torn : issue list;     (** corrupt / truncated entries *)
  r_orphans : issue list;  (** dead writers' temp files *)
  r_quarantined : int;     (** .bad corpses already set aside *)
  r_strays : int;          (** foreign files, reported and left alone *)
}

(** A store is clean when nothing is torn and no orphan remains
    (repaired issues count as resolved). *)
let clean r =
  List.for_all (fun i -> i.i_repaired) r.r_torn
  && List.for_all (fun i -> i.i_repaired) r.r_orphans

let issues r = List.length r.r_torn + List.length r.r_orphans

(* Set a torn entry aside as <file>.bad, like the runtime quarantine;
   removal is the fallback for filesystems that refuse the rename. *)
let set_aside path =
  match Sys.rename path (path ^ ".bad") with
  | () -> true
  | exception Sys_error _ -> (
    match Sys.remove path with
    | () -> true
    | exception Sys_error _ -> false)

let drop path =
  match Sys.remove path with () -> true | exception Sys_error _ -> false

let list_suffix dir suffix =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f suffix)
    |> List.sort compare

let orphan_issues ~dir ~repair =
  List.map
    (fun f ->
      { i_file = f; i_problem = "orphaned temp file";
        i_repaired = repair && drop (Filename.concat dir f) })
    (list_suffix dir ".tmp")

(* ------------------------------------------------------------------ *)
(* Walkers                                                             *)

let tcache ?(repair = false) dir =
  let infos = if Sys.file_exists dir then Tcache.Store.list_dir dir else [] in
  let torn =
    List.filter_map
      (fun (i : Tcache.Store.info) ->
        match i.status with
        | `Ok -> None
        | `Corrupt msg ->
          let f = i.key ^ ".dtc" in
          Some
            { i_file = f; i_problem = msg;
              i_repaired = repair && set_aside (Filename.concat dir f) }
        | `Skipped msg ->
          (* unreadable or not a file: report, never touch *)
          Some { i_file = i.key ^ ".dtc"; i_problem = msg;
                 i_repaired = false })
      infos
  in
  let ok =
    List.length
      (List.filter (fun (i : Tcache.Store.info) -> i.status = `Ok) infos)
  in
  { r_store = "tcache"; r_dir = dir; r_entries = ok; r_torn = torn;
    r_orphans = orphan_issues ~dir ~repair;
    r_quarantined = List.length (Tcache.Store.quarantined_files dir);
    r_strays = List.length (Tcache.Store.stray_files dir) }

let profile ?(repair = false) dir =
  let infos = if Sys.file_exists dir then Obs.Pstore.list_dir dir else [] in
  let torn =
    List.filter_map
      (fun (i : Obs.Pstore.info) ->
        match i.i_status with
        | `Ok -> None
        | `Corrupt msg ->
          Some
            { i_file = i.i_file; i_problem = msg;
              i_repaired =
                repair && set_aside (Filename.concat dir i.i_file) }
        | `Skipped msg ->
          Some { i_file = i.i_file; i_problem = msg; i_repaired = false })
      infos
  in
  let ok =
    List.length
      (List.filter (fun (i : Obs.Pstore.info) -> i.i_status = `Ok) infos)
  in
  { r_store = "profile"; r_dir = dir; r_entries = ok; r_torn = torn;
    r_orphans = orphan_issues ~dir ~repair;
    r_quarantined = List.length (list_suffix dir ".bad");
    r_strays = 0 }

(* Checkpoint sequences restore from the longest valid prefix, so a
   torn snapshot makes every later one unreachable: fsck reports the
   whole invalid tail, and repair sets all of it aside so the next
   resume sees exactly the prefix the loader would have used. *)
let checkpoint ?(repair = false) dir =
  let files = if Sys.file_exists dir then Checkpoint.snapshot_files dir else [] in
  let valid = ref 0 and torn = ref [] and broken = ref false in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match
        if !broken then `Tail
        else
          match Checkpoint.parse_snapshot (Checkpoint.read_file path) with
          | _ -> `Ok
          | exception Tcache.Codec.Corrupt msg -> `Torn msg
          | exception (Sys_error msg) -> `Torn msg
          | exception (Fsio.Fault _ as e) -> `Torn (Fsio.fault_message e)
      with
      | `Ok -> incr valid
      | `Torn msg ->
        broken := true;
        torn :=
          { i_file = f; i_problem = msg;
            i_repaired = repair && set_aside path }
          :: !torn
      | `Tail ->
        torn :=
          { i_file = f; i_problem = "after a torn snapshot (unreachable)";
            i_repaired = repair && set_aside path }
          :: !torn)
    files;
  { r_store = "checkpoint"; r_dir = dir; r_entries = !valid;
    r_torn = List.rev !torn; r_orphans = orphan_issues ~dir ~repair;
    r_quarantined = List.length (list_suffix dir ".bad");
    r_strays = 0 }

(* Crash dumps are JSON objects (plus .folded flame-graph text); a dump
   is torn when it is unreadable, empty, or visibly truncated (no
   closing brace) — the recorder writes atomically, so any of those
   means a lying filesystem or a pre-fsio writer died mid-dump. *)
let crash ?(repair = false) dir =
  let files = list_suffix dir ".json" in
  let valid = ref 0 and torn = ref [] in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Fsio.real.Fsio.read_file path with
      | exception (Sys_error msg) ->
        torn :=
          { i_file = f; i_problem = msg;
            i_repaired = repair && set_aside path }
          :: !torn
      | exception (Fsio.Fault _ as e) ->
        torn :=
          { i_file = f; i_problem = Fsio.fault_message e;
            i_repaired = repair && set_aside path }
          :: !torn
      | s ->
        let t = String.trim s in
        if String.length t >= 2 && t.[0] = '{'
           && t.[String.length t - 1] = '}'
        then incr valid
        else
          torn :=
            { i_file = f; i_problem = "truncated JSON";
              i_repaired = repair && set_aside path }
            :: !torn)
    files;
  { r_store = "crash"; r_dir = dir; r_entries = !valid;
    r_torn = List.rev !torn; r_orphans = orphan_issues ~dir ~repair;
    r_quarantined = List.length (list_suffix dir ".bad");
    r_strays = 0 }

(* ------------------------------------------------------------------ *)
(* The whole tree                                                      *)

(** Walk every store directory given; [repair] sets torn entries aside
    and removes orphans.  Missing directories report as empty clean
    stores — absence is not corruption. *)
let run ?(repair = false) ?tcache_dir ?profile_dir ?checkpoint_dir ?crash_dir
    () =
  List.filter_map Fun.id
    [ Option.map (tcache ~repair) tcache_dir;
      Option.map (profile ~repair) profile_dir;
      Option.map (checkpoint ~repair) checkpoint_dir;
      Option.map (crash ~repair) crash_dir ]

let all_clean reports = List.for_all clean reports

let report_json (r : store_report) =
  let issue i =
    Obs.Json.Obj
      [ ("file", Obs.Json.Str i.i_file);
        ("problem", Obs.Json.Str i.i_problem);
        ("repaired", Obs.Json.Bool i.i_repaired) ]
  in
  Obs.Json.Obj
    [ ("store", Obs.Json.Str r.r_store);
      ("dir", Obs.Json.Str r.r_dir);
      ("entries", Obs.Json.Int r.r_entries);
      ("torn", Obs.Json.Arr (List.map issue r.r_torn));
      ("orphans", Obs.Json.Arr (List.map issue r.r_orphans));
      ("quarantined", Obs.Json.Int r.r_quarantined);
      ("strays", Obs.Json.Int r.r_strays);
      ("clean", Obs.Json.Bool (clean r)) ]

let to_json reports =
  Obs.Json.Obj
    [ ("reports", Obs.Json.Arr (List.map report_json reports));
      ("clean", Obs.Json.Bool (all_clean reports)) ]

let pp ppf (r : store_report) =
  Format.fprintf ppf "%-10s %-28s %4d ok, %d torn, %d orphans" r.r_store
    r.r_dir r.r_entries (List.length r.r_torn)
    (List.length r.r_orphans);
  if r.r_quarantined > 0 then
    Format.fprintf ppf ", %d quarantined" r.r_quarantined;
  if r.r_strays > 0 then Format.fprintf ppf ", %d strays" r.r_strays;
  List.iter
    (fun i ->
      Format.fprintf ppf "@,  torn   %s: %s%s" i.i_file i.i_problem
        (if i.i_repaired then "  [set aside]" else ""))
    r.r_torn;
  List.iter
    (fun i ->
      Format.fprintf ppf "@,  orphan %s%s" i.i_file
        (if i.i_repaired then "  [removed]" else ""))
    r.r_orphans
