(* Tunable parameters of the dynamic translator.

   The defaults correspond to the configuration the paper evaluates;
   the boolean switches implement the ablations DESIGN.md calls out. *)

type t = {
  config : Vliw.Config.t;
  page_size : int;      (** translation unit, bytes (power of two) *)
  join_limit : int;     (** k: max times a base instruction may be re-scheduled *)
  window : int;         (** max base instructions scheduled along one path *)
  rename : bool;        (** allow out-of-order issue into renamed registers *)
  load_spec : bool;     (** allow loads to move above stores *)
  store_forward : bool; (** replace must-alias loads with register copies *)
  multipath : bool;     (** schedule down both sides of conditional branches *)
  prob_backward : float;  (** taken probability guess for backward branches *)
  prob_forward : float;   (** taken probability guess for forward branches *)
  prob_hint : float;      (** taken probability when the y-bit hints taken *)
  profile : (int, int * int) Hashtbl.t option;
      (** per-branch (taken, executed) counts from profile-directed
          feedback; used by the traditional-compiler baseline *)
  guard_indirect : bool;
      (** guard-and-inline indirect branches against the target value
          observed at translation time ("if lr==1000 goto 1000; goto
          lr" — the interpretive-compilation idea of Chapter 6) *)
  adaptive_alias : bool;
      (** retranslate a page without load speculation when run-time
          aliasing is frequent there — the refinement Section 5 proposes
          but the paper's own implementation "does not yet have" *)
  watch_code : bool;
      (** trap stores into translated pages (self-modifying code).
          Always on for DAISY; the traditional-compiler baseline turns
          it off, as a static compiler has no such mechanism (and its
          whole-program "page" would otherwise alias all of memory) *)
}

let default =
  { config = Vliw.Config.default; page_size = 4096; join_limit = 4;
    window = 128; rename = true; load_spec = true; store_forward = true;
    multipath = true;
    prob_backward = 0.7; prob_forward = 0.3; prob_hint = 0.85; profile = None;
    guard_indirect = false; adaptive_alias = false; watch_code = true }

(** The "traditional VLIW compiler" stand-in: same scheduling engine
    given whole-program scope, a huge window, a generous re-schedule
    budget and (typically) profile-derived branch probabilities. *)
let traditional ?profile () =
  { default with page_size = 1 lsl 22; join_limit = 8; window = 384; profile;
    watch_code = false }

let with_config config t = { t with config }
let with_page_size page_size t = { t with page_size }

(** A stable, human-readable digest of every parameter that can change
    the translator's output for the same input bytes.  The persistent
    translation cache (lib/tcache) keys entries on this fingerprint, so
    a cache populated under one configuration is never consulted by a
    run under another.  Profile-directed feedback changes branch
    probabilities per site; its mere presence conservatively forks the
    cache namespace. *)
let fingerprint t =
  Printf.sprintf
    "cfg=%s/%d-%d-%d-%d;page=%d;join=%d;win=%d;ren=%b;spec=%b;fwd=%b;\
     multi=%b;pb=%g;pf=%g;ph=%g;prof=%b;guard=%b;adapt=%b;watch=%b"
    t.config.name t.config.issue t.config.alu t.config.mem t.config.branches
    t.page_size t.join_limit t.window t.rename t.load_spec t.store_forward
    t.multipath t.prob_backward t.prob_forward t.prob_hint
    (t.profile <> None) t.guard_indirect t.adaptive_alias t.watch_code
