(* The DAISY dynamic translator (Chapter 2 and Appendix A).

   [entry] translates the group of base instructions reachable from an
   entry point, one page at a time, exactly as TranslateOneEntry /
   CreateVLIWGroupForEntry / DecodeAndScheduleOneInstr describe:

   - a worklist of entry offsets within the page;
   - per entry, a list of paths ordered by decreasing probability, each
     path owning a chain of tree VLIWs (sharing the prefix built before
     conditional branches split them);
   - each base instruction is decoded, cracked into RISC primitives,
     and each primitive is placed greedily: in the earliest VLIW on the
     path where its operands are available and resources remain, with
     its result renamed into a non-architected register and a commit
     appended to the last VLIW (out-of-order placement), or directly in
     the last VLIW writing its architected destination (in-order
     placement).  Stores, branches and serialized system state always
     go in order, which is what keeps exceptions precise. *)

module T = Vliw.Tree
module Op = Vliw.Op
module Cfg = Vliw.Config
open Ppc

(* ------------------------------------------------------------------ *)
(* Translated pages                                                    *)

type xpage = {
  base : int;   (** base physical address of the page (aligned) *)
  psize : int;
  vliws : T.t Vec.t;
  addrs : int Vec.t;              (** VLIW-space address per VLIW *)
  sizes : int Vec.t;
  entries : (int, int) Hashtbl.t; (** page offset -> root VLIW id *)
  mutable code_bytes : int;
  mutable next_addr : int;
  mutable insns_scheduled : int;  (** translation work on this page *)
}

type totals = {
  mutable pages : int;
  mutable groups : int;
  mutable insns : int;       (** base instructions scheduled (with re-scheduling) *)
  mutable vliws_made : int;
  mutable code_bytes : int;
  mutable entry_points : int;
  mutable invalidations : int;
}

type t = {
  params : Params.t;
  mem : Mem.t;
  fe : Frontend.t;
  pages : (int, xpage) Hashtbl.t;
  load_spec_off : (int, unit) Hashtbl.t;
      (** pages retranslated with load speculation inhibited (adaptive
          aliasing response) *)
  mutable guard_hint : (int -> int) option;
      (** current run-time value of an architected resource, provided by
          the VMM at translation time; feeds the guarded inlining of
          indirect branches (Chapter 6) *)
  mutable unit_filter : (int -> bool) option;
      (** restricts the translation unit to a subset of the page's
          address range: addresses the filter rejects close as OFFPAGE
          exits exactly like addresses beyond the page bounds.  The
          tier-2 region compiler uses this to translate a whole-memory
          "page" whose valid addresses are the member pages of one hot
          region — speculation crosses former page boundaries inside the
          region, and every escape returns to the monitor. *)
  totals : totals;
}

let create ?(frontend = Frontend.ppc) params mem =
  { params; mem; fe = frontend; pages = Hashtbl.create 64;
    load_spec_off = Hashtbl.create 4; guard_hint = None; unit_filter = None;
    totals = { pages = 0; groups = 0; insns = 0; vliws_made = 0;
               code_bytes = 0; entry_points = 0; invalidations = 0 } }

let page_base t addr = addr land lnot (t.params.page_size - 1)

let page_of t addr =
  let base = page_base t addr in
  match Hashtbl.find_opt t.pages base with
  | Some p -> p
  | None ->
    let p =
      { base; psize = t.params.page_size; vliws = Vec.create ();
        addrs = Vec.create (); sizes = Vec.create ();
        entries = Hashtbl.create 16; code_bytes = 0;
        next_addr = Vliw.Layout.vliw_base + (base * Vliw.Layout.expansion);
        insns_scheduled = 0 }
    in
    Hashtbl.add t.pages base p;
    t.totals.pages <- t.totals.pages + 1;
    p

(** Mark the page containing [addr] so its future translations inhibit
    moving loads above stores (adaptive response to frequent run-time
    aliasing). *)
let inhibit_load_spec t addr =
  Hashtbl.replace t.load_spec_off (page_base t addr) ()

(** Drop the translation of the page containing [addr] (code was
    modified, Section 3.2), if any. *)
let invalidate t addr =
  let base = page_base t addr in
  if Hashtbl.mem t.pages base then (
    Hashtbl.remove t.pages base;
    t.totals.invalidations <- t.totals.invalidations + 1)

let translated t addr = Hashtbl.mem t.pages (page_base t addr)

(** Was [addr]'s page marked to inhibit load speculation? *)
let load_spec_inhibited t addr = Hashtbl.mem t.load_spec_off (page_base t addr)

(** Install an already-translated page — decoded from the persistent
    translation cache — without doing any translation work: none of the
    [totals] move, which is what lets a warm run report zero pages
    translated.  [spec_inhibited] restores the page's adaptive
    no-load-speculation mark so a retranslation after invalidation
    reproduces the cached shape. *)
let install t ?(spec_inhibited = false) (page : xpage) =
  Hashtbl.replace t.pages page.base page;
  if spec_inhibited then Hashtbl.replace t.load_spec_off page.base ()

(** Does [addr] already have a valid translated entry point?  (Unlike
    {!entry} this never triggers translation work.) *)
let has_entry t addr =
  match Hashtbl.find_opt t.pages (page_base t addr) with
  | Some p -> Hashtbl.mem p.entries (addr - p.base)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

type path = {
  mutable vliws_on : T.t Vec.t;      (* VLIWs along this path, root..last *)
  mutable tips : T.node Vec.t;       (* this path's tip in each VLIW *)
  mutable maps : Op.loc array Vec.t; (* per VLIW: resource -> location *)
  avail : int array;                 (* resource -> first VLIW index where readable *)
  commit_at : int array;             (* resource -> VLIW index of pending/last commit *)
  defgen : int array;                (* resource -> definition counter, for
                                        value-identity stamps *)
  consts : int option array;         (* resource -> known constant value, for
                                        indirect->direct branch conversion
                                        ("crucial for S/390", Chapter 2) *)
  cur_loc : Op.loc array;            (* resource -> location holding its most
                                        recent value; seeds the map rows of
                                        newly opened VLIWs (the map rows
                                        themselves only cover VLIWs that
                                        already existed when the rename
                                        happened) *)
  mutable continuation : int;
  mutable prob : float;
  mutable budget : int;
  mutable floor : int;               (* no op may be placed below this index *)
  mutable last_store : int;          (* highest VLIW index holding a store; -1 *)
  mutable fwd : fwd_info option;     (* the most recent store, for must-alias
                                        forwarding *)
  mutable live_tg : int;             (* pool bits held by live temporaries *)
  mutable live_tc : int;
  mutable force_rename : bool;       (* current insn reads a register it also
                                        writes: its architected commits are
                                        staged and flushed atomically *)
  mutable staged : (int * Op.loc) list;  (* reversed (resource, renamed loc) *)
  mutable closed : bool;
}

(* Everything needed to prove a later load must read the last store's
   value: the access shape, plus the base/source resources and their
   availability stamps (unchanged stamps = unchanged values). *)
and fwd_info = {
  f_width : Ppc.Insn.width;
  f_base : int;        (* base resource id, or -1 for the zero register *)
  f_base_avail : int;  (* defgen stamp of the base at the store *)
  f_off : fwd_off;
  f_src : int;         (* source gpr resource *)
  f_src_avail : int;
}

and fwd_off = FImm of int | FReg of int * int  (* resource, defgen stamp *)

type group = {
  tr : t;
  page : xpage;
  mutable paths : path list;              (* sorted by decreasing prob *)
  visits : (int, int) Hashtbl.t;          (* base addr -> times scheduled *)
  mutable seq : int;                      (* program-order numbering *)
  mutable pending : int list;             (* page offsets needing entries *)
  first_vliw : int;                       (* id of first VLIW of this group *)
  hint_ok : bool;
      (* run-time register hints are only meaningful for the group the
         VMM is jumping to right now; groups translated eagerly off the
         worklist see stale state and must not plant guards *)
}

let identity_map () = Array.init Res.count Res.identity_loc

let last_index p = Vec.length p.vliws_on - 1
let last_vliw p = Vec.last p.vliws_on
let cur_tip p = Vec.last p.tips

let new_vliw g precise =
  let id = Vec.length g.page.vliws in
  let v = T.create ~id ~precise_entry:precise in
  Vec.push g.page.vliws v;
  Vec.push g.page.addrs 0;
  Vec.push g.page.sizes 0;
  g.tr.totals.vliws_made <- g.tr.totals.vliws_made + 1;
  v

(** Open a new VLIW at the end of path [p], closing its current tip
    with a fall-through exit. *)
let open_vliw g p =
  let l = Vec.length p.vliws_on in
  let v = new_vliw g p.continuation in
  if l > 0 then T.close (cur_tip p) (T.Next v.id);
  (* temporaries of the instruction being scheduled stay claimed in
     VLIWs opened while it is in flight *)
  v.free_gprs <- v.free_gprs land lnot p.live_tg;
  v.free_crs <- v.free_crs land lnot p.live_tc;
  Vec.push p.vliws_on v;
  Vec.push p.tips v.root;
  let row =
    if l = 0 then identity_map ()
    else
      Array.init Res.count (fun r ->
          if p.commit_at.(r) < l && Res.renameable r then Res.identity_loc r
          else p.cur_loc.(r))
  in
  Vec.push p.maps row

let ensure_last g p v =
  while last_index p < v do
    open_vliw g p
  done

let init_path g addr window =
  let p =
    { vliws_on = Vec.create (); tips = Vec.create (); maps = Vec.create ();
      avail = Array.make Res.count 0; commit_at = Array.make Res.count (-1);
      defgen = Array.make Res.count 0; consts = Array.make Res.count None;
      cur_loc = Array.init Res.count Res.identity_loc;
      continuation = addr; prob = 1.0;
      budget = window; floor = 0; last_store = -1; fwd = None; live_tg = 0;
      live_tc = 0; force_rename = false; staged = []; closed = false }
  in
  open_vliw g p;
  p

let clone p =
  { vliws_on = Vec.copy p.vliws_on; tips = Vec.copy p.tips;
    maps = Vec.map_copy Array.copy p.maps; avail = Array.copy p.avail;
    commit_at = Array.copy p.commit_at; defgen = Array.copy p.defgen;
    consts = Array.copy p.consts; cur_loc = Array.copy p.cur_loc;
    continuation = p.continuation;
    prob = p.prob; budget = p.budget; floor = p.floor;
    last_store = p.last_store; fwd = p.fwd; live_tg = p.live_tg;
    live_tc = p.live_tc; force_rename = p.force_rename; staged = p.staged;
    closed = p.closed }

(* ------------------------------------------------------------------ *)
(* Operand resolution                                                  *)

type temps = (int, Op.loc * int) Hashtbl.t  (* temp id -> (loc, avail) *)

let res_of_operand : Crack.operand -> int option = function
  | Gpr i -> Some (Res.gpr i)
  | Lr -> Some Res.lr
  | Ctr -> Some Res.ctr
  | Zero | TmpG _ -> None

let operand_avail p (tg : temps) = function
  | Crack.Zero -> 0
  | TmpG k -> snd (Hashtbl.find tg k)
  | o -> p.avail.(Option.get (res_of_operand o))

let operand_loc p (tg : temps) v = function
  | Crack.Zero -> Op.zero
  | TmpG k -> fst (Hashtbl.find tg k)
  | o -> (Vec.get p.maps v).(Option.get (res_of_operand o))

let crf_res = function Crack.Crf f -> Some (Res.crf f) | TmpC _ -> None

let crf_avail p (tc : temps) = function
  | Crack.Crf f -> p.avail.(Res.crf f)
  | TmpC k -> snd (Hashtbl.find tc k)

let crf_loc p (tc : temps) v = function
  | Crack.Crf f -> (Vec.get p.maps v).(Res.crf f)
  | TmpC k -> fst (Hashtbl.find tc k)

(* Earliest VLIW index where all of [prim]'s inputs are readable. *)
let sources_avail p tg tc (sh : Crack.shape) =
  let a = List.fold_left (fun acc o -> max acc (operand_avail p tg o)) 0 sh.srcs_g in
  let a = List.fold_left (fun acc c -> max acc (crf_avail p tc c)) a sh.srcs_c in
  let a = if sh.r_ca then max a p.avail.(Res.ca) else a in
  let a = if sh.r_so then max a p.avail.(Res.so) else a in
  let a = if sh.serial then max a p.avail.(Res.slow) else a in
  a

(* ------------------------------------------------------------------ *)
(* Register pools                                                      *)

(* Bit k of [free_gprs] is register 32+k; bit k of [free_crs] is field
   8+k.  A register picked at VLIW [v] must be free from [v] to the end
   of the path. *)

let free_gprs_until_end p v =
  let m = ref 0xFFFF_FFFF in
  for i = v to last_index p do
    m := !m land (Vec.get p.vliws_on i).free_gprs
  done;
  !m

let free_crs_until_end p v =
  let m = ref 0xFF in
  for i = v to last_index p do
    m := !m land (Vec.get p.vliws_on i).free_crs
  done;
  !m

let lowest_bit m =
  let rec go k = if m land (1 lsl k) <> 0 then k else go (k + 1) in
  go 0

let claim_gpr p v bit =
  for i = v to last_index p do
    let w = Vec.get p.vliws_on i in
    w.free_gprs <- w.free_gprs land lnot (1 lsl bit)
  done

let claim_cr p v bit =
  for i = v to last_index p do
    let w = Vec.get p.vliws_on i in
    w.free_crs <- w.free_crs land lnot (1 lsl bit)
  done

(* ------------------------------------------------------------------ *)
(* Building concrete ops from primitives                               *)

let build_op p tg tc v ~spec ~passed ~dst_g ~dst_c (prim : Crack.prim) : Op.t =
  let lg o = operand_loc p tg v o in
  let lc c = crf_loc p tc v c in
  let off = function Crack.OffImm i -> Op.OImm i | OffReg r -> Op.OReg (lg r) in
  match prim with
  | PBin { op; a; b; _ } ->
    let ca = if op = Insn.Adde then (Vec.get p.maps v).(Res.ca) else Op.ca_loc in
    Op.Bin { op; rt = dst_g; ra = lg a; rb = lg b; ca; spec }
  | PBinI { op; a; imm; _ } -> Op.BinI { op; rt = dst_g; ra = lg a; imm; spec }
  | PLogic { op; a; b; _ } -> Op.Logic { op; rt = dst_g; ra = lg a; rb = lg b; spec }
  | PUn { op; a; _ } -> Op.Un { op; rt = dst_g; ra = lg a; spec }
  | PSrawi { a; sh; _ } -> Op.SrawiOp { rt = dst_g; ra = lg a; sh; spec }
  | PRlwinm { a; sh; mb; me; _ } ->
    Op.RlwinmOp { rt = dst_g; ra = lg a; sh; mb; me; spec }
  | PCmp { signed; a; b; _ } ->
    Op.CmpOp { signed; crt = dst_c; ra = lg a; rb = lg b; spec }
  | PCmpI { signed; a; imm; _ } ->
    Op.CmpIOp { signed; crt = dst_c; ra = lg a; imm; spec }
  | PLoad { w; alg; base; off = o; _ } ->
    Op.LoadOp { w; alg; rt = dst_g; base = lg base; off = off o; spec; passed }
  | PStore { w; src; base; off = o } ->
    Op.StoreOp { w; rs = lg src; base = lg base; off = off o }
  | PCrop { op; t = tf, tb; a = af, ab; b = bf, bb } ->
    let old = match tf with Crack.Crf _ -> lc tf | TmpC _ -> Op.zero in
    Op.CropOp { op; bt = (dst_c * 4) + tb; ba = (lc af * 4) + ab;
                bb = (lc bf * 4) + bb; old; spec }
  | PMcrf { src; _ } -> Op.McrfOp { dst = dst_c; src = lc src; spec }
  | PMfcr _ ->
    Op.MfcrOp { rt = dst_g; srcs = Array.init 8 (fun f -> lc (Crf f)) }
  | PCrSet { field; src } -> Op.CrSetOp { crt = dst_c; rs = lg src; pos = field }
  | PGetXer _ -> Op.GetXer { rt = dst_g }
  | PSetXer { src } -> Op.SetXer { rs = lg src }
  | PGetSpr { spr; _ } -> Op.GetSpr { rt = dst_g; spr }
  | PSetSpr { spr; src } -> Op.SetSpr { spr; rs = lg src }
  | PGetMsr _ -> Op.GetMsr { rt = dst_g }
  | PSetMsr { src } -> Op.SetMsr { rs = lg src }

(* The location an architected gpr-space destination writes when placed
   in order. *)
let inorder_dst_loc = function
  | Some o -> (
    match o with
    | Crack.Gpr i -> i
    | Lr -> Op.lr_loc
    | Ctr -> Op.ctr_loc
    | Zero | TmpG _ -> invalid_arg "inorder_dst_loc")
  | None -> Op.zero

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)

(* Make sure the last VLIW can accept the op (ALU or memory slot). *)
let ensure_room g p ~mem_slot =
  let cfg = g.tr.params.config in
  let ok () =
    let v = last_vliw p in
    if mem_slot then Cfg.mem_ok cfg v else Cfg.alu_ok cfg v
  in
  while not (ok ()) do
    open_vliw g p
  done

let bump v ~mem_slot =
  if mem_slot then v.T.mem <- v.T.mem + 1 else v.T.alu <- v.T.alu + 1

(* The commit op for resource [r] from location [src]. *)
let commit_op r src : Op.t =
  if r < 32 then CommitG { arch = r; src }
  else if r = Res.lr then CommitLr { src }
  else if r = Res.ctr then CommitCtr { src }
  else if r = Res.ca then CommitCa { src }
  else if Res.is_crf r then CommitCr { arch = r - 37; src }
  else invalid_arg "commit_op"

(* Place a commit op for resource [r] whose renamed value lives at
   [src]; returns the index it was placed at. *)
let place_commit g p r src =
  ensure_room g p ~mem_slot:false;
  let l = last_index p in
  let commit = commit_op r src in
  T.add_op (cur_tip p) g.seq commit;
  bump (last_vliw p) ~mem_slot:false;
  l

(* After a rename of resource [r] into [dst] placed at index [v]:
   update maps (v+1 .. last), availability, and append the commit — or,
   when the current instruction's commits are staged (it reads a
   register it also writes), defer the commit to the end-of-instruction
   flush so a rollback can never observe it half-committed. *)
let finish_rename g p r dst v =
  for i = v + 1 to last_index p do
    (Vec.get p.maps i).(r) <- dst
  done;
  p.avail.(r) <- v + 1;
  p.commit_at.(r) <- max_int;
  p.defgen.(r) <- p.defgen.(r) + 1;
  p.cur_loc.(r) <- dst;
  if p.force_rename then begin
    (* keep the staged source claimed in VLIWs opened before the flush *)
    if Op.is_nonarch_gpr dst then p.live_tg <- p.live_tg lor (1 lsl (dst - 32))
    else if Op.is_nonarch_cr dst then p.live_tc <- p.live_tc lor (1 lsl (dst - 8));
    p.staged <- (r, dst) :: p.staged
  end
  else (
    let c = place_commit g p r dst in
    p.commit_at.(r) <- c)

(* In-order bookkeeping for resource [r] written at index [l]. *)
let finish_inorder p r l =
  p.avail.(r) <- l + 1;
  p.commit_at.(r) <- l;
  p.defgen.(r) <- p.defgen.(r) + 1;
  p.cur_loc.(r) <- Res.identity_loc r

exception No_pool  (* no free non-architected register anywhere *)

(* Allocate a non-architected GPR free from [v] to the end of the path,
   opening a fresh VLIW if the pool is exhausted.  Temporaries stay
   claimed in VLIWs opened until the end of the current instruction. *)
let alloc_gpr g p v ~temp =
  let pick v =
    let m = free_gprs_until_end p v in
    if m = 0 then None
    else (
      let bit = lowest_bit m in
      claim_gpr p v bit;
      if temp then p.live_tg <- p.live_tg lor (1 lsl bit);
      Some (32 + bit, v))
  in
  match pick v with
  | Some r -> r
  | None -> (
    open_vliw g p;
    match pick (last_index p) with Some r -> r | None -> raise No_pool)

let alloc_cr g p v ~temp =
  let pick v =
    let m = free_crs_until_end p v in
    if m = 0 then None
    else (
      let bit = lowest_bit m in
      claim_cr p v bit;
      if temp then p.live_tc <- p.live_tc lor (1 lsl bit);
      Some (8 + bit, v))
  in
  match pick v with
  | Some r -> r
  | None -> (
    open_vliw g p;
    match pick (last_index p) with Some r -> r | None -> raise No_pool)

(* Place one primitive on path [p] (the heart of ScheduleThreeRegOp
   and friends). *)
let place_prim_raw g p (tg : temps) (tc : temps) (prim : Crack.prim) =
  let params = g.tr.params in
  let cfg = params.config in
  let sh = Crack.shape prim in
  let mem_slot = sh.mem <> `No in
  let is_load = sh.mem = `Load in
  let is_store = sh.mem = `Store in
  let v0 = max (sources_avail p tg tc sh) p.floor in
  let load_spec =
    params.load_spec && not (Hashtbl.mem g.tr.load_spec_off g.page.base)
  in
  let v0 = if is_load && not load_spec then max v0 (p.last_store + 1) else v0 in
  if sh.serial then begin
    (* Serialized system state: always alone at the start of a fresh
       VLIW, reading and writing machine state directly. *)
    open_vliw g p;
    ensure_last g p v0;
    let l = last_index p in
    let dst_g = inorder_dst_loc sh.dst_g in
    let op = build_op p tg tc l ~spec:false ~passed:false ~dst_g ~dst_c:0 prim in
    T.add_op (cur_tip p) g.seq op;
    bump (last_vliw p) ~mem_slot:false;
    p.floor <- l + 1;
    (match sh.dst_g with
    | Some o -> finish_inorder p (Option.get (res_of_operand o)) l
    | None -> ());
    if sh.w_ca then (
      finish_inorder p Res.ca l;
      finish_inorder p Res.ov l;
      finish_inorder p Res.so l);
    finish_inorder p Res.slow l
  end
  else begin
    ensure_last g p v0;
    (* destination classification *)
    let dst_res_g = Option.bind sh.dst_g res_of_operand in
    let dst_res_c = Option.bind sh.dst_c crf_res in
    let dst_tmp_g =
      match sh.dst_g with Some (TmpG k) -> Some k | _ -> None
    in
    let dst_tmp_c =
      match sh.dst_c with Some (TmpC k) -> Some k | _ -> None
    in
    let is_temp = dst_tmp_g <> None || dst_tmp_c <> None in
    let wants_cr = sh.dst_c <> None in
    (* a self-updating instruction must not write architected registers
       in place: force its register effects through the rename+staged
       commit path (memory and serial effects stay in order; their
       re-execution from the instruction start is idempotent) *)
    let forced =
      p.force_rename && (not is_store) && not sh.serial
      && (dst_res_g <> None || dst_res_c <> None || sh.w_ca)
    in
    (* find an out-of-order slot strictly before the last VLIW; pool
       availability uses suffix-AND masks computed once (the naive
       free-until-end recomputation per candidate is quadratic in the
       window, which the traditional-compiler configuration exposes) *)
    let slot =
      if is_store || ((not params.rename) && not forced) then None
      else (
        let l = last_index p in
        if v0 > l then None
        else (
          let n = l - v0 + 1 in
          let suffix = Array.make (n + 1) 0xFFFF_FFFF in
          let want_pool = wants_cr || sh.dst_g <> None in
          if want_pool then
            for v = l downto v0 do
              let w = Vec.get p.vliws_on v in
              let m = if wants_cr then w.T.free_crs else w.T.free_gprs in
              suffix.(v - v0) <- suffix.(v - v0 + 1) land m
            done;
          let last_ok = is_temp || forced in
          let rec search v =
            if v >= l && not last_ok then None
            else if v > l then None
            else (
              let w = Vec.get p.vliws_on v in
              let res_ok =
                if mem_slot then Cfg.mem_ok cfg w else Cfg.alu_ok cfg w
              in
              let pool_ok = (not want_pool) || suffix.(v - v0) <> 0 in
              if res_ok && pool_ok then Some v else search (v + 1))
          in
          search v0))
    in
    let place_out v =
      let dst_g_loc, dst_c_loc, v =
        if wants_cr then (
          let loc, v = alloc_cr g p v ~temp:(dst_tmp_c <> None) in
          (Op.zero, loc, v))
        else if sh.dst_g <> None then (
          let loc, v = alloc_gpr g p v ~temp:(dst_tmp_g <> None) in
          (loc, 0, v))
        else (Op.zero, 0, v)
      in
      let passed = is_load && p.last_store >= v in
      let op =
        build_op p tg tc v ~spec:true ~passed ~dst_g:dst_g_loc ~dst_c:dst_c_loc
          prim
      in
      T.add_op (Vec.get p.tips v) g.seq op;
      bump (Vec.get p.vliws_on v) ~mem_slot;
      (match (dst_tmp_g, dst_tmp_c) with
      | Some k, _ -> Hashtbl.replace tg k (dst_g_loc, v + 1)
      | _, Some k -> Hashtbl.replace tc k (dst_c_loc, v + 1)
      | None, None -> (
        (match dst_res_g with
        | Some r -> finish_rename g p r dst_g_loc v
        | None -> ());
        (match dst_res_c with
        | Some r -> finish_rename g p r dst_c_loc v
        | None -> ());
        if sh.w_ca then (
          (* the carry travels in the extender bit of the renamed gpr *)
          for i = v + 1 to last_index p do
            (Vec.get p.maps i).(Res.ca) <- dst_g_loc
          done;
          p.avail.(Res.ca) <- v + 1;
          p.commit_at.(Res.ca) <- max_int;
          p.defgen.(Res.ca) <- p.defgen.(Res.ca) + 1;
          p.cur_loc.(Res.ca) <- dst_g_loc;
          if p.force_rename then begin
            if Op.is_nonarch_gpr dst_g_loc then
              p.live_tg <- p.live_tg lor (1 lsl (dst_g_loc - 32));
            p.staged <- (Res.ca, dst_g_loc) :: p.staged
          end
          else (
            let c = place_commit g p Res.ca dst_g_loc in
            p.commit_at.(Res.ca) <- c))))
    in
    match slot with
    | Some v -> place_out v
    | None when is_temp || forced ->
      (* a pool register is required; a fresh VLIW always has both a
         slot and a free register *)
      open_vliw g p;
      place_out (last_index p)
    | None ->
      (* in-order placement in the last VLIW *)
      ensure_room g p ~mem_slot;
      let l = last_index p in
      let dst_g = inorder_dst_loc sh.dst_g in
      let dst_c = match sh.dst_c with Some (Crf f) -> f | _ -> 0 in
      let passed = is_load && p.last_store >= l in
      let op = build_op p tg tc l ~spec:false ~passed ~dst_g ~dst_c prim in
      T.add_op (cur_tip p) g.seq op;
      bump (last_vliw p) ~mem_slot;
      if is_store then begin
        p.last_store <- l;
        p.fwd <-
          (match prim with
          | Crack.PStore { w; src = Gpr srcr; base; off } -> (
            let off_info =
              match off with
              | Crack.OffImm i -> Some (FImm i)
              | Crack.OffReg (Gpr i) ->
                Some (FReg (Res.gpr i, p.defgen.(Res.gpr i)))
              | Crack.OffReg _ -> None
            in
            match (base, off_info) with
            | Crack.Gpr i, Some f_off ->
              Some { f_width = w; f_base = Res.gpr i;
                     f_base_avail = p.defgen.(Res.gpr i); f_off;
                     f_src = Res.gpr srcr;
                     f_src_avail = p.defgen.(Res.gpr srcr) }
            | Crack.Zero, Some f_off ->
              Some { f_width = w; f_base = -1; f_base_avail = 0; f_off;
                     f_src = Res.gpr srcr;
                     f_src_avail = p.defgen.(Res.gpr srcr) }
            | _ -> None)
          | _ -> None)
      end;
      (match dst_res_g with Some r -> finish_inorder p r l | None -> ());
      (match dst_res_c with Some r -> finish_inorder p r l | None -> ());
      if sh.w_ca then finish_inorder p Res.ca l
  end

(* Constant tracking over the primitives that base-register idioms are
   made of (li/la/balr-link, address masking, shifts-as-rotates, adds of
   constants).  Temp constants live in [tconsts] for one instruction. *)
let const_operand p (tconsts : (int, int) Hashtbl.t) : Crack.operand -> int option
    = function
  | Crack.Zero -> Some 0
  | TmpG k -> Hashtbl.find_opt tconsts k
  | o -> (
    match res_of_operand o with Some r -> p.consts.(r) | None -> None)

let track_consts p (tconsts : (int, int) Hashtbl.t) (prim : Crack.prim) =
  let set_dst (dst : Crack.operand) v =
    match dst with
    | Crack.TmpG k -> (
      match v with
      | Some c -> Hashtbl.replace tconsts k c
      | None -> Hashtbl.remove tconsts k)
    | o -> (
      match res_of_operand o with
      | Some r -> p.consts.(r) <- v
      | None -> ())
  in
  let u32 = Ppc.Interp.u32 in
  match prim with
  | Crack.PBinI { op = IAdd; dst; a; imm } ->
    set_dst dst
      (Option.map (fun c -> u32 (c + imm)) (const_operand p tconsts a))
  | PBin { op = Ppc.Insn.Add; dst; a; b } -> (
    match (const_operand p tconsts a, const_operand p tconsts b) with
    | Some x, Some y -> set_dst dst (Some (u32 (x + y)))
    | _ -> set_dst dst None)
  | PRlwinm { dst; a; sh; mb; me } ->
    set_dst dst
      (Option.map
         (fun c ->
           Ppc.Interp.rotl32 c sh land Ppc.Interp.mask_mb_me mb me)
         (const_operand p tconsts a))
  | other -> (
    (* anything else clobbers its destination's constant *)
    let sh = Crack.shape other in
    match sh.dst_g with Some o -> set_dst o None | None -> ())

(** Place one primitive, first applying the must-alias store-to-load
    forwarding of Section 5: a load that provably reads the most recent
    store's bytes becomes a register copy of the stored value. *)
let place_prim g p (tg : temps) (tc : temps) tconsts (prim : Crack.prim) =
  let prim =
    if not g.tr.params.store_forward then prim
    else
      let off_matches f = function
        | Crack.OffImm i -> f.f_off = FImm i
        | Crack.OffReg (Gpr i) ->
          f.f_off = FReg (Res.gpr i, p.defgen.(Res.gpr i))
        | Crack.OffReg _ -> false
      in
      match (prim, p.fwd) with
      | Crack.PLoad { w; alg; dst; base; off }, Some f
        when f.f_width = w && off_matches f off
             && (match base with
                | Crack.Gpr i ->
                  f.f_base = Res.gpr i
                  && p.defgen.(Res.gpr i) = f.f_base_avail
                | Crack.Zero -> f.f_base = -1
                | Lr | Ctr | TmpG _ -> false)
             && p.defgen.(f.f_src) = f.f_src_avail ->
        let src = Crack.Gpr f.f_src in
        (match (w, alg) with
        | Ppc.Insn.Word, _ -> Crack.PBinI { op = IAdd; dst; a = src; imm = 0 }
        | Byte, _ -> Crack.PBinI { op = IAnd; dst; a = src; imm = 0xFF }
        | Half, false -> Crack.PBinI { op = IAnd; dst; a = src; imm = 0xFFFF }
        | Half, true -> Crack.PUn { op = Extsh; dst; a = src })
      | _ -> prim
  in
  place_prim_raw g p tg tc prim;
  track_consts p tconsts prim

(* Speculatively evaluate the target snapshot (TmpG 0) of an indirect
   branch, plugging in run-time values from [hint] for unknown
   architected registers.  Returns the would-be target together with
   the set of registers whose hinted values it depends on; a one-element
   set can be turned into a guard. *)
let spec_eval_target p (prims : Crack.prim list) hint =
  let module IS = Set.Make (Int) in
  let tmp : (int, int * IS.t) Hashtbl.t = Hashtbl.create 4 in
  let u32 = Ppc.Interp.u32 in
  let operand : Crack.operand -> (int * IS.t) option = function
    | Crack.Zero -> Some (0, IS.empty)
    | TmpG k -> Hashtbl.find_opt tmp k
    | o -> (
      let r = Option.get (res_of_operand o) in
      match p.consts.(r) with
      | Some c -> Some (c, IS.empty)
      | None -> Some (hint r, IS.singleton r))
  in
  let set_dst (dst : Crack.operand) v =
    match dst with
    | Crack.TmpG k -> (
      match v with
      | Some x -> Hashtbl.replace tmp k x
      | None -> Hashtbl.remove tmp k)
    | _ -> ()
  in
  let killed = ref IS.empty in
  List.iter
    (fun (prim : Crack.prim) ->
      (match prim with
      | Crack.PBinI { op = IAdd; dst; a; imm } ->
        set_dst dst
          (Option.map (fun (c, d) -> (u32 (c + imm), d)) (operand a))
      | PBin { op = Ppc.Insn.Add; dst; a; b } -> (
        match (operand a, operand b) with
        | Some (x, dx), Some (y, dy) ->
          set_dst dst (Some (u32 (x + y), IS.union dx dy))
        | _ -> set_dst dst None)
      | PRlwinm { dst; a; sh; mb; me } ->
        set_dst dst
          (Option.map
             (fun (c, d) ->
               (Ppc.Interp.rotl32 c sh land Ppc.Interp.mask_mb_me mb me, d))
             (operand a))
      | other -> set_dst (match (Crack.shape other).dst_g with Some o -> o | None -> Crack.Zero) None);
      (* a write to an architected register invalidates hints taken
         from it earlier in this instruction *)
      match (Crack.shape prim).dst_g with
      | Some o -> (
        match res_of_operand o with
        | Some r -> killed := IS.add r !killed
        | None -> ())
      | None -> ())
    prims;
  (!killed, Hashtbl.find_opt tmp 0)

(* The would-be target and its single register dependency, either from
   the cracked snapshot expression or synthesized for a bare LR/CTR
   branch using the front end's architected target masking. *)
let spec_target g p prims (target : Crack.target) hint =
  let module IS = Set.Make (Int) in
  let killed, snap = spec_eval_target p prims hint in
  match snap with
  | Some (v, deps) when IS.is_empty (IS.inter deps killed) -> (
    match IS.elements deps with
    | [] -> None  (* pure constant: rewrite_target already covers it *)
    | [ r ] -> Some (v land lnot 1, r)
    | _ -> None)
  | Some _ -> None
  | None -> (
    let bare r =
      if IS.mem r killed || p.consts.(r) <> None then None
      else Some (hint r land g.tr.fe.Frontend.target_mask, r)
    in
    match target with
    | Crack.ViaLr -> bare Res.lr
    | ViaCtr -> bare Res.ctr
    | ViaReg _ | Direct _ -> None)

(* The indirect-to-direct branch conversion: if the target register (or
   the snapshot temporary the cracker computed the target into) holds a
   known constant on this path, the branch becomes direct — without
   this, S/390 code never straightens (all its branches are indirect). *)
let rewrite_target p (tconsts : (int, int) Hashtbl.t) (target : Crack.target) =
  match target with
  | Crack.Direct _ -> target
  | ViaReg _ | ViaLr | ViaCtr -> (
    let v =
      match Hashtbl.find_opt tconsts 0 with
      | Some c -> Some c
      | None -> (
        match target with
        | Crack.ViaReg r -> p.consts.(Res.gpr r)
        | ViaLr -> p.consts.(Res.lr)
        | ViaCtr -> p.consts.(Res.ctr)
        | Direct _ -> None)
    in
    match v with
    | Some c -> Crack.Direct (c land lnot 1)
    | None -> target)

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)

let in_page g addr =
  addr >= g.page.base
  && addr < g.page.base + g.page.psize
  && (match g.tr.unit_filter with None -> true | Some f -> f addr)

let offset_of g addr = addr - g.page.base

(* Close the current tip of [p] with [exit]. *)
let close_tip g p exit =
  (match exit with
  | T.OnPage off ->
    if not (Hashtbl.mem g.page.entries off) then
      g.pending <- off :: g.pending
  | _ -> ());
  T.close (cur_tip p) exit;
  p.closed <- true

(* Close [p] jumping to base address [addr] (on- or off-page). *)
let close_to g p addr =
  if in_page g addr then close_tip g p (T.OnPage (offset_of g addr))
  else close_tip g p (T.OffPage addr)

(* Close with an indirect branch through LR or CTR (or a temporary
   holding the pre-link value). *)
let close_indirect g p (tg : temps) target =
  let r, kind =
    match target with
    | Crack.ViaLr -> (Res.lr, `Lr)
    | ViaCtr -> (Res.ctr, `Ctr)
    | ViaReg i -> (Res.gpr i, `Gpr)
    | Direct _ -> invalid_arg "close_indirect"
  in
  match Hashtbl.find_opt tg 0 with
  | Some (loc, av) when kind <> `Ctr ->
    (* branch-and-link through the target register: the pre-link value
       was snapshotted into temp 0 by the cracker *)
    ensure_last g p (av - 1);
    close_tip g p (T.Indirect (loc, kind))
  | _ ->
    (* all commits for r must have landed *)
    if p.commit_at.(r) <> -1 && p.commit_at.(r) <> max_int then
      ensure_last g p p.commit_at.(r);
    ensure_last g p (p.avail.(r) - 1);
    close_tip g p (T.Indirect (Res.identity_loc r, kind))

let guess_prob params ~hint ~backward ~pc =
  let from_profile =
    match params.Params.profile with
    | None -> None
    | Some tbl -> (
      match Hashtbl.find_opt tbl pc with
      | Some (t, n) when n > 0 ->
        Some (Float.max 0.02 (Float.min 0.98 (float_of_int t /. float_of_int n)))
      | _ -> None)
  in
  match from_profile with
  | Some p -> p
  | None ->
    if hint then params.Params.prob_hint
    else if backward then params.Params.prob_backward
    else params.Params.prob_forward

(* Schedule a conditional branch: split the tree at the last VLIW and
   fork the path (ScheduleBranchCond).  [ctr_commit] places the commit
   of the decremented CTR (left in TmpG Crack.ctr_tmp) in the branch's
   own VLIW, above the split, so the branch instruction commits
   atomically with respect to precise points. *)
let sched_cond_branch ?(close_taken = true) g p (tg : temps) (tc : temps)
    ~test:(cop, bitpos) ~sense ~target ~hint ~late_commit ~len pc =
  let params = g.tr.params in
  ensure_last g p (crf_avail p tc cop);
  if late_commit <> None then
    ensure_last g p (snd (Hashtbl.find tg Crack.ctr_tmp) - 1);
  let room_ok () =
    Cfg.br_ok params.config (last_vliw p)
    && (late_commit = None || Cfg.alu_ok params.config (last_vliw p))
  in
  while not (room_ok ()) do
    open_vliw g p
  done;
  (match late_commit with
  | None -> ()
  | Some operand ->
    (* the decremented register is committed in the branch's own VLIW
       so the instruction commits atomically at precise points *)
    let r = Option.get (res_of_operand operand) in
    let loc, av = Hashtbl.find tg Crack.ctr_tmp in
    T.add_op (cur_tip p) g.seq (commit_op r loc);
    bump (last_vliw p) ~mem_slot:false;
    let l = last_index p in
    for i = av to l do
      (Vec.get p.maps i).(r) <- loc
    done;
    p.avail.(r) <- av;
    p.commit_at.(r) <- l;
    p.defgen.(r) <- p.defgen.(r) + 1;
    p.cur_loc.(r) <- loc;
    p.consts.(r) <- None);
  let l = last_index p in
  let floc = crf_loc p tc l cop in
  let test : T.test = { bit = (floc * 4) + bitpos; sense } in
  let taken, fall = T.split (cur_tip p) test in
  (last_vliw p).br <- (last_vliw p).br + 1;
  let p2 = clone p in
  Vec.set p2.tips l taken;
  Vec.set p.tips l fall;
  let backward = match target with Crack.Direct t -> t <= pc | _ -> false in
  let pt = guess_prob params ~hint ~backward ~pc in
  p2.prob <- p.prob *. pt;
  p.prob <- p.prob *. (1. -. pt);
  p.continuation <- pc + len;
  (match target with
  | Crack.Direct t ->
    p2.continuation <- t;
    if not (in_page g t) then close_tip g p2 (T.OffPage t)
  | ViaLr | ViaCtr | ViaReg _ ->
    if close_taken then close_indirect g p2 tg target);
  if not params.multipath then begin
    (* keep only the more probable side *)
    let keep_taken = pt >= 0.5 in
    let doomed = if keep_taken then p else p2 in
    if not doomed.closed then close_to g doomed doomed.continuation
  end;
  p2

(* Flush the staged architected commits of a self-updating instruction:
   commits whose destination is not an input of the instruction may
   spill across VLIWs (re-execution from the instruction start is then
   idempotent), but every input-modifying commit lands in one final
   VLIW, so no precise point ever sees the instruction half-applied. *)
let flush_staged g p (reads : int list) =
  match p.staged with
  | [] -> ()
  | staged ->
    let staged = List.rev staged in
    let ready =
      List.fold_left (fun acc (r, _) -> max acc p.avail.(r)) 0 staged
    in
    ensure_last g p ready;
    let safe, unsafe = List.partition (fun (r, _) -> not (List.mem r reads)) staged in
    List.iter
      (fun (r, src) ->
        let c = place_commit g p r src in
        p.commit_at.(r) <- c)
      safe;
    (match unsafe with
    | [] -> ()
    | _ ->
      let n = List.length unsafe in
      let cfg = g.tr.params.config in
      let fits_block () =
        let v = last_vliw p in
        Vliw.Config.fits cfg ~alu:(v.T.alu + n) ~mem:v.T.mem ~br:v.T.br
      in
      while not (fits_block ()) do
        open_vliw g p
      done;
      List.iter
        (fun (r, src) ->
          let c = place_commit g p r src in
          p.commit_at.(r) <- c)
        unsafe);
    p.staged <- []

(* Guarded inlining of an indirect branch (Chapter 6): compare the one
   register the target depends on against its value observed at
   translation time; on a match continue straight-line at the observed
   target, otherwise exit indirect.  Returns the matching-side path. *)
let try_guard g p (tg : temps) (tc : temps) tconsts prims target pc =
  if (not g.tr.params.guard_indirect) || (not g.hint_ok) || p.closed then None
  else
    match g.tr.guard_hint with
    | None -> None
    | Some hint -> (
      match spec_target g p prims target hint with
      | None -> None
      | Some (tgt_val, dep) ->
        if not (in_page g tgt_val) then None
        else (
          let dep_operand =
            if dep < 32 then Crack.Gpr dep
            else if dep = Res.lr then Crack.Lr
            else Crack.Ctr
          in
          if Sys.getenv_opt "DAISY_DEBUG_GUARD" <> None then
            Printf.printf "GUARD pc=%x dep=%d imm=%x tgt=%x\n%!" pc dep
              (hint dep) tgt_val;
          match
            place_prim g p tg tc tconsts
              (Crack.PCmpI
                 { signed = true; dst = TmpC 2; a = dep_operand; imm = hint dep })
          with
          | exception No_pool -> None
          | () ->
            if p.closed then None
            else begin
              let p3 =
                sched_cond_branch g p tg tc
                  ~test:(Crack.TmpC 2, Ppc.Insn.Crbit.eq) ~sense:true
                  ~target:(Crack.Direct tgt_val) ~hint:true ~late_commit:None
                  ~len:0 pc
              in
              (* [p] is now the mismatch side *)
              if not p.closed then close_indirect g p tg target;
              Some p3
            end))

(* ------------------------------------------------------------------ *)
(* Per-instruction driver                                              *)

(* Schedule the instruction at the continuation of [p]; may close [p]
   and may return a freshly forked path. *)
let step g p : path option =
  let params = g.tr.params in
  let pc = p.continuation in
  if not (in_page g pc) then (
    close_tip g p (T.OffPage pc);
    None)
  else if
    (match Hashtbl.find_opt g.visits pc with Some n -> n | None -> 0)
    > params.join_limit
  then (
    close_to g p pc;
    None)
  else if p.budget <= 0 then (
    close_to g p pc;
    None)
  else begin
    match g.tr.fe.decode_crack g.tr.mem pc with
    | None ->
      close_tip g p (T.Trap (Tillegal pc));
      None
    | Some (cracked, len) ->
      (* temporaries of the previous instruction are dead now *)
      p.live_tg <- 0;
      p.live_tc <- 0;
      (* does this instruction read any architected register it also
         writes?  then its commits must be staged (precise exceptions) *)
      let reads, writes =
        List.fold_left
          (fun (rs, ws) prim ->
            let sh = Crack.shape prim in
            let rs =
              List.fold_left
                (fun acc o ->
                  match res_of_operand o with Some r -> r :: acc | None -> acc)
                rs sh.srcs_g
            in
            let rs =
              List.fold_left
                (fun acc c ->
                  match crf_res c with Some r -> r :: acc | None -> acc)
                rs sh.srcs_c
            in
            let rs = if sh.r_ca then Res.ca :: rs else rs in
            let ws =
              match Option.bind sh.dst_g res_of_operand with
              | Some r -> r :: ws
              | None -> ws
            in
            let ws =
              match Option.bind sh.dst_c crf_res with
              | Some r -> r :: ws
              | None -> ws
            in
            let ws = if sh.w_ca then Res.ca :: ws else ws in
            (rs, ws))
          ([], []) cracked.prims
      in
      p.force_rename <- List.exists (fun w -> List.mem w reads) writes;
      p.staged <- [];
      Hashtbl.replace g.visits pc
        (1 + match Hashtbl.find_opt g.visits pc with Some n -> n | None -> 0);
      p.budget <- p.budget - 1;
      g.seq <- g.seq + 1;
      g.tr.totals.insns <- g.tr.totals.insns + 1;
      g.page.insns_scheduled <- g.page.insns_scheduled + 1;
      let tg : temps = Hashtbl.create 4 and tc : temps = Hashtbl.create 4 in
      let tconsts : (int, int) Hashtbl.t = Hashtbl.create 4 in
      (try
         List.iter (place_prim g p tg tc tconsts) cracked.prims;
         flush_staged g p reads;
         p.force_rename <- false
       with No_pool ->
         (* pool exhausted even in a fresh VLIW: give up on this path *)
         p.staged <- [];
         p.force_rename <- false;
         close_to g p pc);
      if p.closed then None
      else (
        match cracked.control with
        | Fallthru ->
          p.continuation <- pc + len;
          None
        | Jump target -> (
          match rewrite_target p tconsts target with
          | Direct t ->
            if in_page g t then (
              p.continuation <- t;
              None)
            else (
              close_tip g p (T.OffPage t);
              None)
          | target -> (
            match try_guard g p tg tc tconsts cracked.prims target pc with
            | Some p3 -> Some p3
            | None ->
              close_indirect g p tg target;
              None))
        | CondJump { test; sense; target; hint; late_commit } -> (
          let target = rewrite_target p tconsts target in
          match target with
          | Direct _ ->
            Some
              (sched_cond_branch g p tg tc ~test ~sense ~target ~hint
                 ~late_commit ~len pc)
          | _ when late_commit <> None ->
            (* no guarding for decrement-and-branch: the decrement is
               committed above the split, so any VLIW opened while
               composing the guard would carry a stale precise point
               and a rollback there would re-decrement *)
            Some
              (sched_cond_branch g p tg tc ~test ~sense ~target ~hint
                 ~late_commit ~len pc)
          | _ ->
            let p2 =
              sched_cond_branch ~close_taken:false g p tg tc ~test ~sense
                ~target ~hint ~late_commit ~len pc
            in
            if p2.closed then Some p2
            else (
              match
                try_guard g p2 tg tc tconsts cracked.prims target pc
              with
              | Some p3 ->
                (* the mismatch side p2 was closed by try_guard *)
                Some p3
              | None ->
                close_indirect g p2 tg target;
                Some p2))
        | TrapC trap ->
          close_tip g p (T.Trap trap);
          None)
  end

(* ------------------------------------------------------------------ *)
(* Groups, entries, worklist                                           *)

let insert_sorted paths p =
  let rec go = function
    | [] -> [ p ]
    | q :: rest when q.prob >= p.prob -> q :: go rest
    | rest -> p :: rest
  in
  go paths

(* CreateVLIWGroupForEntry. *)
let translate_group ?(hint_ok = false) t page off =
  let g =
    { tr = t; page; paths = []; visits = Hashtbl.create 64; seq = 0;
      pending = []; first_vliw = Vec.length page.vliws; hint_ok }
  in
  let p0 = init_path g (page.base + off) t.params.window in
  let root = Vec.get p0.vliws_on 0 in
  root.is_entry <- true;
  Hashtbl.replace page.entries off root.id;
  t.totals.entry_points <- t.totals.entry_points + 1;
  t.totals.groups <- t.totals.groups + 1;
  g.paths <- [ p0 ];
  let rec loop () =
    match g.paths with
    | [] -> ()
    | p :: rest ->
      g.paths <- rest;
      let forked = step g p in
      if not p.closed then g.paths <- insert_sorted g.paths p;
      (match forked with
      | Some p2 when not p2.closed -> g.paths <- insert_sorted g.paths p2
      | _ -> ());
      loop ()
  in
  loop ();
  (* lay the new VLIWs out in the translated-code area *)
  for id = g.first_vliw to Vec.length page.vliws - 1 do
    let v = Vec.get page.vliws id in
    let sz = Vliw.Layout.size v in
    Vec.set page.addrs id page.next_addr;
    Vec.set page.sizes id sz;
    page.next_addr <- page.next_addr + sz;
    page.code_bytes <- page.code_bytes + sz;
    t.totals.code_bytes <- t.totals.code_bytes + sz
  done;
  g.pending

(** Ensure base address [addr] has a valid translated entry point;
    translates its group (and, eagerly, the groups its paths stop at)
    if needed.  Returns the page and root VLIW id. *)
let entry t addr =
  let page = page_of t addr in
  let off = addr - page.base in
  (match Hashtbl.find_opt page.entries off with
  | Some _ -> ()
  | None ->
    let wl = Queue.create () in
    Queue.add off wl;
    let first = ref true in
    while not (Queue.is_empty wl) do
      let o = Queue.pop wl in
      let hint_ok = !first in
      first := false;
      if not (Hashtbl.mem page.entries o) then
        List.iter (fun o' -> Queue.add o' wl)
          (translate_group ~hint_ok t page o)
    done);
  (page, Hashtbl.find page.entries off)
