(* Instruction set of the base architecture: a 32-bit big-endian PowerPC
   subset, rich enough to compile real integer workloads and to exercise
   every mechanism DAISY needs (condition-register fields, LR/CTR indirect
   branches, carry/overflow bits, load/store-multiple CISC decomposition,
   privileged state and rfi).

   Instructions are kept in a structured form; {!Encode} and {!Decode} map
   them to and from the architected 32-bit words (I, B, D, X, XO, XL, XFX
   and M forms), so that translated programs live in simulated memory
   exactly as a real PowerPC binary would. *)

(** General purpose register number, 0..31. *)
type gpr = int

(** Condition register field, 0..7. Each field holds 4 bits: LT GT EQ SO. *)
type crf = int

(** Condition register bit, 0..31; bit [4*f + b] is bit [b] of field [f]. *)
type crb = int

(** Special purpose registers we architect. *)
type spr =
  | XER   (** carry / overflow / summary-overflow bits *)
  | LR    (** link register *)
  | CTR   (** count register *)
  | SRR0  (** save-restore register 0: interrupted address *)
  | SRR1  (** save-restore register 1: saved MSR *)
  | DAR   (** data address register: faulting data address *)
  | DSISR (** data storage interrupt status *)
  | SPRG0 (** scratch for the base OS *)
  | SPRG1

(** Three-register integer operations (XO-form, opcode 31). *)
type xo_op =
  | Add
  | Addc   (** add carrying: also sets XER.CA *)
  | Adde   (** add extended: adds XER.CA, sets XER.CA *)
  | Subf   (** subtract from: rt <- rb - ra *)
  | Subfc  (** subtract from carrying *)
  | Mullw
  | Mulhw
  | Mulhwu
  | Divw
  | Divwu
  | Neg    (** rt <- -ra (rb ignored) *)

(** Two-source logical / shift operations (X-form, opcode 31). *)
type x_op =
  | And_
  | Or_
  | Xor_
  | Nand
  | Nor
  | Andc
  | Eqv
  | Slw
  | Srw
  | Sraw  (** arithmetic shift right: sets XER.CA *)

(** Single-source register operations (X-form). *)
type x1_op =
  | Cntlzw
  | Extsb
  | Extsh

(** Memory access width. *)
type width = Byte | Half | Word

(** CR-bit logical operations (XL-form, opcode 19). *)
type cr_op = Crand | Cror | Crxor | Crnand | Crnor | Crandc | Creqv | Crorc

type insn =
  (* D-form immediates *)
  | Addi of gpr * gpr * int      (** rt, ra, simm16.  ra = 0 means literal. *)
  | Addis of gpr * gpr * int     (** rt, ra, simm16 << 16 *)
  | Addic of gpr * gpr * int     (** like addi but sets XER.CA *)
  | Mulli of gpr * gpr * int
  | Cmpi of crf * gpr * int      (** signed compare immediate *)
  | Cmpli of crf * gpr * int     (** unsigned compare immediate *)
  | Andi of gpr * gpr * int      (** rs, ra; andi. always sets CR0 *)
  | Ori of gpr * gpr * int
  | Xori of gpr * gpr * int
  | Oris of gpr * gpr * int
  (* register-register integer *)
  | Xo of xo_op * gpr * gpr * gpr * bool      (** op, rt, ra, rb, rc *)
  | X of x_op * gpr * gpr * gpr * bool        (** op, ra(dst), rs, rb, rc *)
  | X1 of x1_op * gpr * gpr * bool            (** op, ra(dst), rs, rc *)
  | Srawi of gpr * gpr * int * bool           (** ra(dst), rs, sh, rc *)
  | Cmp of crf * gpr * gpr
  | Cmpl of crf * gpr * gpr
  | Rlwinm of gpr * gpr * int * int * int * bool
      (** ra(dst), rs, sh, mb, me, rc: rotate-left word then AND with mask *)
  (* memory *)
  | Load of width * bool * gpr * gpr * int
      (** width, algebraic(sign-extend), rt, ra, disp. [ra]=0 means base 0. *)
  | Store of width * gpr * gpr * int          (** width, rs, ra, disp *)
  | Loadx of width * bool * gpr * gpr * gpr   (** indexed form *)
  | Storex of width * gpr * gpr * gpr
  | Lwzu of gpr * gpr * int                   (** load word with update *)
  | Stwu of gpr * gpr * int                   (** store word with update *)
  | Lmw of gpr * gpr * int                    (** load multiple: rt..r31 *)
  | Stmw of gpr * gpr * int                   (** store multiple: rs..r31 *)
  (* branches *)
  | B of int * bool * bool                    (** LI (byte offset), AA, LK *)
  | Bc of int * int * int * bool * bool       (** BO, BI, BD, AA, LK *)
  | Bclr of int * int * bool                  (** BO, BI, LK: branch to LR *)
  | Bcctr of int * int * bool                 (** BO, BI, LK: branch to CTR *)
  (* condition register *)
  | Crop of cr_op * crb * crb * crb           (** op, bt, ba, bb *)
  | Mcrf of crf * crf                         (** dst field <- src field *)
  | Mfcr of gpr
  | Mtcrf of int * gpr                        (** 8-bit field mask, rs *)
  (* special registers *)
  | Mfspr of gpr * spr
  | Mtspr of spr * gpr
  | Mfmsr of gpr
  | Mtmsr of gpr
  (* system *)
  | Sc                                        (** system call *)
  | Rfi                                       (** return from interrupt *)
  | Isync                                     (** context sync / icbi stand-in *)

type t = insn

let spr_num = function
  | XER -> 1
  | LR -> 8
  | CTR -> 9
  | DSISR -> 18
  | DAR -> 19
  | SRR0 -> 26
  | SRR1 -> 27
  | SPRG0 -> 272
  | SPRG1 -> 273

let spr_of_num = function
  | 1 -> Some XER
  | 8 -> Some LR
  | 9 -> Some CTR
  | 18 -> Some DSISR
  | 19 -> Some DAR
  | 26 -> Some SRR0
  | 27 -> Some SRR1
  | 272 -> Some SPRG0
  | 273 -> Some SPRG1
  | _ -> None

let spr_name = function
  | XER -> "xer"
  | LR -> "lr"
  | CTR -> "ctr"
  | SRR0 -> "srr0"
  | SRR1 -> "srr1"
  | DAR -> "dar"
  | DSISR -> "dsisr"
  | SPRG0 -> "sprg0"
  | SPRG1 -> "sprg1"

let xo_name = function
  | Add -> "add"
  | Addc -> "addc"
  | Adde -> "adde"
  | Subf -> "subf"
  | Subfc -> "subfc"
  | Mullw -> "mullw"
  | Mulhw -> "mulhw"
  | Mulhwu -> "mulhwu"
  | Divw -> "divw"
  | Divwu -> "divwu"
  | Neg -> "neg"

let x_name = function
  | And_ -> "and"
  | Or_ -> "or"
  | Xor_ -> "xor"
  | Nand -> "nand"
  | Nor -> "nor"
  | Andc -> "andc"
  | Eqv -> "eqv"
  | Slw -> "slw"
  | Srw -> "srw"
  | Sraw -> "sraw"

let x1_name = function Cntlzw -> "cntlzw" | Extsb -> "extsb" | Extsh -> "extsh"

let cr_op_name = function
  | Crand -> "crand"
  | Cror -> "cror"
  | Crxor -> "crxor"
  | Crnand -> "crnand"
  | Crnor -> "crnor"
  | Crandc -> "crandc"
  | Creqv -> "creqv"
  | Crorc -> "crorc"

let width_letter = function Byte -> 'b' | Half -> 'h' | Word -> 'w'

(* --- Stable small-integer codes ------------------------------------

   Used by the persistent translation cache's binary codec
   (lib/tcache).  These are an on-disk format: when a constructor is
   added, append a fresh code — never renumber existing ones — and bump
   the codec version.  The [*_of_code] direction returns [None] for
   unknown codes so the codec can degrade gracefully on corrupt or
   newer-version entries. *)

let xo_code = function
  | Add -> 0 | Addc -> 1 | Adde -> 2 | Subf -> 3 | Subfc -> 4 | Mullw -> 5
  | Mulhw -> 6 | Mulhwu -> 7 | Divw -> 8 | Divwu -> 9 | Neg -> 10

let xo_of_code = function
  | 0 -> Some Add | 1 -> Some Addc | 2 -> Some Adde | 3 -> Some Subf
  | 4 -> Some Subfc | 5 -> Some Mullw | 6 -> Some Mulhw | 7 -> Some Mulhwu
  | 8 -> Some Divw | 9 -> Some Divwu | 10 -> Some Neg | _ -> None

let x_code = function
  | And_ -> 0 | Or_ -> 1 | Xor_ -> 2 | Nand -> 3 | Nor -> 4 | Andc -> 5
  | Eqv -> 6 | Slw -> 7 | Srw -> 8 | Sraw -> 9

let x_of_code = function
  | 0 -> Some And_ | 1 -> Some Or_ | 2 -> Some Xor_ | 3 -> Some Nand
  | 4 -> Some Nor | 5 -> Some Andc | 6 -> Some Eqv | 7 -> Some Slw
  | 8 -> Some Srw | 9 -> Some Sraw | _ -> None

let x1_code = function Cntlzw -> 0 | Extsb -> 1 | Extsh -> 2

let x1_of_code = function
  | 0 -> Some Cntlzw | 1 -> Some Extsb | 2 -> Some Extsh | _ -> None

let width_code = function Byte -> 0 | Half -> 1 | Word -> 2

let width_of_code = function
  | 0 -> Some Byte | 1 -> Some Half | 2 -> Some Word | _ -> None

let cr_op_code = function
  | Crand -> 0 | Cror -> 1 | Crxor -> 2 | Crnand -> 3 | Crnor -> 4
  | Crandc -> 5 | Creqv -> 6 | Crorc -> 7

let cr_op_of_code = function
  | 0 -> Some Crand | 1 -> Some Cror | 2 -> Some Crxor | 3 -> Some Crnand
  | 4 -> Some Crnor | 5 -> Some Crandc | 6 -> Some Creqv | 7 -> Some Crorc
  | _ -> None

let rc_dot rc = if rc then "." else ""

(** [pp ppf insn] prints [insn] in a conventional assembly syntax. *)
let pp ppf insn =
  let f fmt = Format.fprintf ppf fmt in
  match insn with
  | Addi (rt, ra, si) ->
    if ra = 0 then f "li r%d,%d" rt si else f "addi r%d,r%d,%d" rt ra si
  | Addis (rt, ra, si) -> f "addis r%d,r%d,%d" rt ra si
  | Addic (rt, ra, si) -> f "addic r%d,r%d,%d" rt ra si
  | Mulli (rt, ra, si) -> f "mulli r%d,r%d,%d" rt ra si
  | Cmpi (bf, ra, si) -> f "cmpwi cr%d,r%d,%d" bf ra si
  | Cmpli (bf, ra, ui) -> f "cmplwi cr%d,r%d,%d" bf ra ui
  | Andi (rs, ra, ui) -> f "andi. r%d,r%d,%d" ra rs ui
  | Ori (rs, ra, ui) -> f "ori r%d,r%d,%d" ra rs ui
  | Xori (rs, ra, ui) -> f "xori r%d,r%d,%d" ra rs ui
  | Oris (rs, ra, ui) -> f "oris r%d,r%d,%d" ra rs ui
  | Xo (op, rt, ra, rb, rc) ->
    if op = Neg then f "neg%s r%d,r%d" (rc_dot rc) rt ra
    else f "%s%s r%d,r%d,r%d" (xo_name op) (rc_dot rc) rt ra rb
  | X (op, ra, rs, rb, rc) ->
    f "%s%s r%d,r%d,r%d" (x_name op) (rc_dot rc) ra rs rb
  | X1 (op, ra, rs, rc) -> f "%s%s r%d,r%d" (x1_name op) (rc_dot rc) ra rs
  | Srawi (ra, rs, sh, rc) -> f "srawi%s r%d,r%d,%d" (rc_dot rc) ra rs sh
  | Cmp (bf, ra, rb) -> f "cmpw cr%d,r%d,r%d" bf ra rb
  | Cmpl (bf, ra, rb) -> f "cmplw cr%d,r%d,r%d" bf ra rb
  | Rlwinm (ra, rs, sh, mb, me, rc) ->
    f "rlwinm%s r%d,r%d,%d,%d,%d" (rc_dot rc) ra rs sh mb me
  | Load (w, alg, rt, ra, d) ->
    f "l%c%s r%d,%d(r%d)" (width_letter w) (if alg then "a" else "z") rt d ra
  | Store (w, rs, ra, d) -> f "st%c r%d,%d(r%d)" (width_letter w) rs d ra
  | Loadx (w, alg, rt, ra, rb) ->
    f "l%c%sx r%d,r%d,r%d" (width_letter w) (if alg then "a" else "z") rt ra rb
  | Storex (w, rs, ra, rb) ->
    f "st%cx r%d,r%d,r%d" (width_letter w) rs ra rb
  | Lwzu (rt, ra, d) -> f "lwzu r%d,%d(r%d)" rt d ra
  | Stwu (rs, ra, d) -> f "stwu r%d,%d(r%d)" rs d ra
  | Lmw (rt, ra, d) -> f "lmw r%d,%d(r%d)" rt d ra
  | Stmw (rs, ra, d) -> f "stmw r%d,%d(r%d)" rs d ra
  | B (li, aa, lk) ->
    f "b%s%s 0x%x" (if lk then "l" else "") (if aa then "a" else "") li
  | Bc (bo, bi, bd, aa, lk) ->
    f "bc%s%s %d,%d,0x%x" (if lk then "l" else "") (if aa then "a" else "") bo
      bi bd
  | Bclr (bo, bi, lk) -> f "bclr%s %d,%d" (if lk then "l" else "") bo bi
  | Bcctr (bo, bi, lk) -> f "bcctr%s %d,%d" (if lk then "l" else "") bo bi
  | Crop (op, bt, ba, bb) -> f "%s %d,%d,%d" (cr_op_name op) bt ba bb
  | Mcrf (bf, bfa) -> f "mcrf cr%d,cr%d" bf bfa
  | Mfcr rt -> f "mfcr r%d" rt
  | Mtcrf (fxm, rs) -> f "mtcrf 0x%x,r%d" fxm rs
  | Mfspr (rt, spr) -> f "mf%s r%d" (spr_name spr) rt
  | Mtspr (spr, rs) -> f "mt%s r%d" (spr_name spr) rs
  | Mfmsr rt -> f "mfmsr r%d" rt
  | Mtmsr rs -> f "mtmsr r%d" rs
  | Sc -> f "sc"
  | Rfi -> f "rfi"
  | Isync -> f "isync"

let to_string insn = Format.asprintf "%a" pp insn

(** Branch-option field helpers (PowerPC BO encoding, bits numbered from
    the most significant of the 5-bit field). *)
module Bo = struct
  let always = 0b10100
  let if_true = 0b01100   (* branch if CR bit set *)
  let if_false = 0b00100  (* branch if CR bit clear *)
  let dnz = 0b10000       (* decrement CTR, branch if CTR <> 0 *)
  let dz = 0b10010        (* decrement CTR, branch if CTR = 0 *)

  let ignores_cond bo = bo land 0b10000 <> 0
  let cond_sense bo = bo land 0b01000 <> 0
  let no_ctr_dec bo = bo land 0b00100 <> 0
  let ctr_zero_sense bo = bo land 0b00010 <> 0

  (** The static-prediction hint bit ('y' bit). *)
  let hint bo = bo land 0b00001 <> 0
end

(** CR bit indices within a field. *)
module Crbit = struct
  let lt = 0
  let gt = 1
  let eq = 2
  let so = 3

  let of_field crf bit = (4 * crf) + bit
end
