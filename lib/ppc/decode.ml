(* Decoding of 32-bit PowerPC words back into {!Insn.t}.

   [decode] is total: words outside the implemented subset decode to
   [None], which the interpreter and translator treat as an illegal
   instruction (program interrupt). *)

let bits w hi_width shift = (w lsr shift) land ((1 lsl hi_width) - 1)

let sext v width =
  let sign = 1 lsl (width - 1) in
  (v land (sign - 1)) - (v land sign)

let opcd w = bits w 6 26
let rt w = bits w 5 21
let ra w = bits w 5 16
let rb w = bits w 5 11
let d_imm w = w land 0xFFFF
let d_simm w = sext (d_imm w) 16
let xo10 w = bits w 10 1
let xo9 w = bits w 9 1
let rc w = w land 1 <> 0
let lk = rc

let spr_of w =
  (* two swapped 5-bit halves *)
  Insn.spr_of_num ((bits w 5 16) lor (bits w 5 11 lsl 5))

let decode_31 w : Insn.t option =
  let rt = rt w and ra = ra w and rb = rb w and rc = rc w in
  match xo10 w with
  | 0 when not rc -> Some (Cmp (rt lsr 2, ra, rb))
  | 32 when not rc -> Some (Cmpl (rt lsr 2, ra, rb))
  | 28 -> Some (X (And_, ra, rt, rb, rc))
  | 444 -> Some (X (Or_, ra, rt, rb, rc))
  | 316 -> Some (X (Xor_, ra, rt, rb, rc))
  | 476 -> Some (X (Nand, ra, rt, rb, rc))
  | 124 -> Some (X (Nor, ra, rt, rb, rc))
  | 60 -> Some (X (Andc, ra, rt, rb, rc))
  | 284 -> Some (X (Eqv, ra, rt, rb, rc))
  | 24 -> Some (X (Slw, ra, rt, rb, rc))
  | 536 -> Some (X (Srw, ra, rt, rb, rc))
  | 792 -> Some (X (Sraw, ra, rt, rb, rc))
  | 824 -> Some (Srawi (ra, rt, rb, rc))
  | 26 -> Some (X1 (Cntlzw, ra, rt, rc))
  | 954 -> Some (X1 (Extsb, ra, rt, rc))
  | 922 -> Some (X1 (Extsh, ra, rt, rc))
  | 23 -> Some (Loadx (Word, false, rt, ra, rb))
  | 87 -> Some (Loadx (Byte, false, rt, ra, rb))
  | 279 -> Some (Loadx (Half, false, rt, ra, rb))
  | 343 -> Some (Loadx (Half, true, rt, ra, rb))
  | 151 -> Some (Storex (Word, rt, ra, rb))
  | 215 -> Some (Storex (Byte, rt, ra, rb))
  | 407 -> Some (Storex (Half, rt, ra, rb))
  | 19 when not rc -> Some (Mfcr rt)
  | 144 when not rc -> Some (Mtcrf (bits w 8 12, rt))
  | 339 -> Option.map (fun s -> Insn.Mfspr (rt, s)) (spr_of w)
  | 467 -> Option.map (fun s -> Insn.Mtspr (s, rt)) (spr_of w)
  | 83 when not rc -> Some (Mfmsr rt)
  | 146 when not rc -> Some (Mtmsr rt)
  | _ -> (
    match xo9 w with
    | 266 -> Some (Xo (Add, rt, ra, rb, rc))
    | 10 -> Some (Xo (Addc, rt, ra, rb, rc))
    | 138 -> Some (Xo (Adde, rt, ra, rb, rc))
    | 40 -> Some (Xo (Subf, rt, ra, rb, rc))
    | 8 -> Some (Xo (Subfc, rt, ra, rb, rc))
    | 235 -> Some (Xo (Mullw, rt, ra, rb, rc))
    | 75 -> Some (Xo (Mulhw, rt, ra, rb, rc))
    | 11 -> Some (Xo (Mulhwu, rt, ra, rb, rc))
    | 491 -> Some (Xo (Divw, rt, ra, rb, rc))
    | 459 -> Some (Xo (Divwu, rt, ra, rb, rc))
    | 104 -> Some (Xo (Neg, rt, ra, rb, rc))
    | _ -> None)

let decode_19 w : Insn.t option =
  let bt = rt w and ba = ra w and bb = rb w in
  match xo10 w with
  | 16 -> Some (Bclr (bt, ba, lk w))
  | 528 -> Some (Bcctr (bt, ba, lk w))
  | 50 -> Some Rfi
  | 150 -> Some Isync
  | 0 -> Some (Mcrf (bt lsr 2, ba lsr 2))
  | 257 -> Some (Crop (Crand, bt, ba, bb))
  | 449 -> Some (Crop (Cror, bt, ba, bb))
  | 193 -> Some (Crop (Crxor, bt, ba, bb))
  | 225 -> Some (Crop (Crnand, bt, ba, bb))
  | 33 -> Some (Crop (Crnor, bt, ba, bb))
  | 129 -> Some (Crop (Crandc, bt, ba, bb))
  | 289 -> Some (Crop (Creqv, bt, ba, bb))
  | 417 -> Some (Crop (Crorc, bt, ba, bb))
  | _ -> None

(** [decode w] is the instruction encoded by the 32-bit word [w], or
    [None] if [w] is outside the implemented subset.  Total for any
    [int]: values outside the 32-bit range are no instruction at all. *)
let decode (w : int) : Insn.t option =
  if w < 0 || w > 0xFFFF_FFFF then None
  else
  match opcd w with
  | 14 -> Some (Addi (rt w, ra w, d_simm w))
  | 15 -> Some (Addis (rt w, ra w, d_simm w))
  | 12 -> Some (Addic (rt w, ra w, d_simm w))
  | 7 -> Some (Mulli (rt w, ra w, d_simm w))
  | 11 -> Some (Cmpi (rt w lsr 2, ra w, d_simm w))
  | 10 -> Some (Cmpli (rt w lsr 2, ra w, d_imm w))
  | 28 -> Some (Andi (rt w, ra w, d_imm w))
  | 24 -> Some (Ori (rt w, ra w, d_imm w))
  | 25 -> Some (Oris (rt w, ra w, d_imm w))
  | 26 -> Some (Xori (rt w, ra w, d_imm w))
  | 32 -> Some (Load (Word, false, rt w, ra w, d_simm w))
  | 34 -> Some (Load (Byte, false, rt w, ra w, d_simm w))
  | 40 -> Some (Load (Half, false, rt w, ra w, d_simm w))
  | 42 -> Some (Load (Half, true, rt w, ra w, d_simm w))
  | 36 -> Some (Store (Word, rt w, ra w, d_simm w))
  | 38 -> Some (Store (Byte, rt w, ra w, d_simm w))
  | 44 -> Some (Store (Half, rt w, ra w, d_simm w))
  | 33 -> Some (Lwzu (rt w, ra w, d_simm w))
  | 37 -> Some (Stwu (rt w, ra w, d_simm w))
  | 46 -> Some (Lmw (rt w, ra w, d_simm w))
  | 47 -> Some (Stmw (rt w, ra w, d_simm w))
  | 18 -> Some (B (sext (bits w 24 2) 24 lsl 2, bits w 1 1 <> 0, lk w))
  | 16 ->
    Some
      (Bc (rt w, ra w, sext (bits w 14 2) 14 lsl 2, bits w 1 1 <> 0, lk w))
  | 17 when w land 2 <> 0 -> Some Sc
  | 21 -> Some (Rlwinm (ra w, rt w, rb w, bits w 5 6, bits w 5 1, rc w))
  | 19 -> decode_19 w
  | 31 -> decode_31 w
  | _ -> None
