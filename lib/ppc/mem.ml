(* Simulated physical memory of the base architecture.

   Byte-addressable, big-endian, with a small memory-mapped I/O window
   used by the miniature base OS (halt and console output), and a store
   hook through which the VMM watches for writes into pages whose
   translation it holds (the per-unit read-only bit of Section 3.2). *)

(** Raised by a store to the HALT MMIO word; carries the exit code. *)
exception Halted of int

(** Raised on an access outside implemented memory (the base
    architecture's data storage interrupt). [write] distinguishes store
    faults from load faults. *)
exception Data_fault of { addr : int; write : bool }

(** Base of the memory-mapped I/O window.  Loads from this window are
    side-effecting and must not be performed speculatively. *)
let mmio_base = 0x0FFF_F000

let mmio_halt = mmio_base
let mmio_putchar = mmio_base + 4

(** A monotonically increasing sequence register: each load returns the
    previous value plus one.  Exists to verify that speculative loads
    from I/O space are deferred and re-executed exactly once. *)
let mmio_seq = mmio_base + 8

type t = {
  bytes : Bytes.t;
  size : int;
  out : Buffer.t;  (** console output accumulated via [mmio_putchar] *)
  mutable seq : int;
  mutable on_store : (int -> int -> unit) option;
      (** called as [f addr nbytes] before every ordinary store *)
}

let create size =
  { bytes = Bytes.make size '\000'; size; out = Buffer.create 256; seq = 0;
    on_store = None }

let size t = t.size
let output t = Buffer.contents t.out
let clear_output t = Buffer.clear t.out

let is_mmio addr = addr >= mmio_base && addr < mmio_base + 0x1000

let in_bounds t addr n = addr >= 0 && addr + n <= t.size

let width_bytes : Insn.width -> int = function Byte -> 1 | Half -> 2 | Word -> 4

(* One decode rule for all widths: MMIO registers are word-sized, so a
   load of any width whose enclosing word is the sequence register ticks
   it once and returns the new value masked to the load's width; every
   other MMIO load reads as 0.  (The three loaders used to disagree —
   [load8] accepted any byte of the seq word, [load16] always returned
   0, [load32] required exact equality — so a halfword read of the seq
   register silently dropped the side effect.) *)
let mmio_load t addr mask =
  if addr land lnot 3 = mmio_seq then (
    t.seq <- t.seq + 1;
    t.seq land mask)
  else 0

(** [load8 t addr] .. [load32 t addr]: big-endian zero-extended loads. *)
let load8 t addr =
  if is_mmio addr then mmio_load t addr 0xFF
  else if in_bounds t addr 1 then Char.code (Bytes.get t.bytes addr)
  else raise (Data_fault { addr; write = false })

let load16 t addr =
  if is_mmio addr then mmio_load t addr 0xFFFF
  else if in_bounds t addr 2 then Bytes.get_uint16_be t.bytes addr
  else raise (Data_fault { addr; write = false })

let load32 t addr =
  if is_mmio addr then mmio_load t addr 0xFFFF_FFFF
  else if in_bounds t addr 4 then
    Int32.to_int (Bytes.get_int32_be t.bytes addr) land 0xFFFF_FFFF
  else raise (Data_fault { addr; write = false })

let store8 t addr v =
  if is_mmio addr then (
    if addr = mmio_putchar + 3 then Buffer.add_char t.out (Char.chr (v land 0xFF)))
  else if in_bounds t addr 1 then (
    (match t.on_store with Some f -> f addr 1 | None -> ());
    Bytes.set t.bytes addr (Char.chr (v land 0xFF)))
  else raise (Data_fault { addr; write = true })

let store16 t addr v =
  if is_mmio addr then ()
  else if in_bounds t addr 2 then (
    (match t.on_store with Some f -> f addr 2 | None -> ());
    Bytes.set_uint16_be t.bytes addr (v land 0xFFFF))
  else raise (Data_fault { addr; write = true })

let store32 t addr v =
  if is_mmio addr then (
    if addr = mmio_halt then raise (Halted (v land 0xFFFF_FFFF))
    else if addr = mmio_putchar then Buffer.add_char t.out (Char.chr (v land 0xFF)))
  else if in_bounds t addr 4 then (
    (match t.on_store with Some f -> f addr 4 | None -> ());
    Bytes.set_int32_be t.bytes addr (Int32.of_int v))
  else raise (Data_fault { addr; write = true })

(** [load t w addr] is the zero-extended value of width [w] at [addr]. *)
let load t (w : Insn.width) addr =
  match w with Byte -> load8 t addr | Half -> load16 t addr | Word -> load32 t addr

let store t (w : Insn.width) addr v =
  match w with Byte -> store8 t addr v | Half -> store16 t addr v | Word -> store32 t addr v

(** [fetch t addr] is the 32-bit instruction word at [addr] (which must
    be word aligned); raises [Data_fault] outside memory. *)
let fetch t addr =
  if addr land 3 <> 0 || not (in_bounds t addr 4) then
    raise (Data_fault { addr; write = false })
  else Int32.to_int (Bytes.get_int32_be t.bytes addr) land 0xFFFF_FFFF

(** [store_insn t addr insn] assembles [insn] into memory at [addr]. *)
let store_insn t addr insn =
  Bytes.set_int32_be t.bytes addr (Int32.of_int (Encode.encode insn))

(** [blit_string t addr s] copies [s] into memory starting at [addr]. *)
let blit_string t addr s =
  Bytes.blit_string s 0 t.bytes addr (String.length s)

let read_string t addr len = Bytes.sub_string t.bytes addr len
